// Command tigabench regenerates the tables and figures of the Tiga paper's
// evaluation (§5) on the simulated geo-distributed testbed.
//
// Usage:
//
//	tigabench -exp table1            # Table 1: max throughput
//	tigabench -exp fig7              # Figs 7+8: rate sweep, local + remote
//	tigabench -exp fig9              # Fig 9: skew sweep
//	tigabench -exp fig10             # Fig 10: TPC-C rate sweep
//	tigabench -exp fig11             # Fig 11: leader failure recovery
//	tigabench -exp table2            # Table 2: server rotation
//	tigabench -exp fig12             # Fig 12: colocate vs separate
//	tigabench -exp fig13             # Fig 13: headroom sensitivity
//	tigabench -exp table3            # Table 3: clock ablation
//	tigabench -exp fig14             # Fig 14: latency per clock model
//	tigabench -exp ablations         # extra ablations (ε-mode, Appendix E)
//	tigabench -exp all               # everything
//
// Add -quick for a reduced sweep (seconds instead of minutes per figure).
// Independent sweep points run on the parallel driver; -workers bounds the
// pool (0 = all cores, 1 = the old serial behavior — output is identical
// either way). -protocols restricts multi-protocol sweeps to a subset of the
// registered protocols. Throughput is reported in simulated-testbed units:
// per-operation CPU costs are scaled by harness.CPUScale (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tiga/internal/harness"
	"tiga/internal/protocol"
)

// experiments lists every runnable experiment in presentation order. fig8 is
// an alias: the harness records both regions in the fig7 pass.
var experiments = []struct {
	name string
	run  func(w *os.File, o harness.Options)
}{
	{"table1", func(w *os.File, o harness.Options) { harness.Table1(w, o) }},
	{"fig7", func(w *os.File, o harness.Options) { harness.Fig7And8(w, o) }},
	{"fig9", func(w *os.File, o harness.Options) { harness.Fig9(w, o) }},
	{"fig10", func(w *os.File, o harness.Options) { harness.Fig10(w, o) }},
	{"fig11", func(w *os.File, o harness.Options) { harness.Fig11(w, o) }},
	{"table2", func(w *os.File, o harness.Options) { harness.Table2(w, o) }},
	{"fig12", func(w *os.File, o harness.Options) { harness.Fig12(w, o) }},
	{"fig13", func(w *os.File, o harness.Options) { harness.Fig13(w, o) }},
	{"table3", func(w *os.File, o harness.Options) { harness.Table3(w, o) }},
	{"fig14", func(w *os.File, o harness.Options) { harness.Fig14(w, o) }},
	{"ablations", func(w *os.File, o harness.Options) {
		harness.AblationEpsilon(w, o)
		harness.AblationSlowReply(w, o)
	}},
}

func experimentNames() []string {
	names := make([]string, 0, len(experiments)+2)
	for _, e := range experiments {
		names = append(names, e.name)
		if e.name == "fig7" {
			names = append(names, "fig8")
		}
	}
	return append(names, "all")
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experimentNames(), "|"))
	quick := flag.Bool("quick", false, "reduced sweeps and durations")
	seed := flag.Int64("seed", 42, "simulation seed")
	keys := flag.Int("keys", 0, "MicroBench keys per shard (0 = default)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = all cores, 1 = serial)")
	protocols := flag.String("protocols", "",
		"comma-separated protocol subset for the sweeps (default: all registered)")
	flag.Parse()

	if *exp != "all" {
		valid := false
		for _, name := range experimentNames() {
			if *exp == name {
				valid = true
				break
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "tigabench: unknown experiment %q\nvalid experiments: %s\n",
				*exp, strings.Join(experimentNames(), ", "))
			os.Exit(2)
		}
	}

	var subset []string
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !protocol.Registered(p) {
				fmt.Fprintf(os.Stderr, "tigabench: unknown protocol %q\nregistered protocols: %s\n",
					p, strings.Join(protocol.Names(), ", "))
				os.Exit(2)
			}
			subset = append(subset, p)
		}
	}

	o := harness.Options{Seed: *seed, Quick: *quick, Keys: *keys,
		Workers: *workers, Protocols: subset}
	w := os.Stdout
	start := time.Now()

	for _, e := range experiments {
		if *exp != "all" && *exp != e.name && !(e.name == "fig7" && *exp == "fig8") {
			continue
		}
		t0 := time.Now()
		e.run(w, o)
		fmt.Fprintf(w, "[%s done in %v]\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
