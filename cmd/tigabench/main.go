// Command tigabench regenerates the tables and figures of the Tiga paper's
// evaluation (§5) on the simulated geo-distributed testbed.
//
// Usage:
//
//	tigabench -exp table1            # Table 1: max throughput
//	tigabench -exp fig7              # Figs 7+8: rate sweep, local + remote
//	tigabench -exp fig9              # Fig 9: skew sweep
//	tigabench -exp fig10             # Fig 10: TPC-C rate sweep
//	tigabench -exp fig11             # Fig 11: leader failure recovery
//	tigabench -exp table2            # Table 2: server rotation
//	tigabench -exp fig12             # Fig 12: colocate vs separate
//	tigabench -exp fig13             # Fig 13: headroom sensitivity
//	tigabench -exp table3            # Table 3: clock ablation
//	tigabench -exp fig14             # Fig 14: latency per clock model
//	tigabench -exp ablations         # extra ablations (ε-mode, Appendix E)
//	tigabench -exp all               # everything
//
// Add -quick for a reduced sweep (seconds instead of minutes per figure).
// Throughput is reported in simulated-testbed units: per-operation CPU costs
// are scaled by harness.CPUScale (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tiga/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig7|fig8|fig9|fig10|fig11|table2|fig12|fig13|table3|fig14|ablations|all")
	quick := flag.Bool("quick", false, "reduced sweeps and durations")
	seed := flag.Int64("seed", 42, "simulation seed")
	keys := flag.Int("keys", 0, "MicroBench keys per shard (0 = default)")
	flag.Parse()

	o := harness.Options{Seed: *seed, Quick: *quick, Keys: *keys}
	w := os.Stdout
	start := time.Now()

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name && !(name == "fig7" && *exp == "fig8") {
			return
		}
		t0 := time.Now()
		fn()
		fmt.Fprintf(w, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() { harness.Table1(w, o) })
	run("fig7", func() { harness.Fig7And8(w, o) })
	run("fig9", func() { harness.Fig9(w, o) })
	run("fig10", func() { harness.Fig10(w, o) })
	run("fig11", func() { harness.Fig11(w, o) })
	run("table2", func() { harness.Table2(w, o) })
	run("fig12", func() { harness.Fig12(w, o) })
	run("fig13", func() { harness.Fig13(w, o) })
	run("table3", func() { harness.Table3(w, o) })
	run("fig14", func() { harness.Fig14(w, o) })
	run("ablations", func() {
		harness.AblationEpsilon(w, o)
		harness.AblationSlowReply(w, o)
	})
	fmt.Fprintf(w, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
