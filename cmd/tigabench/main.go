// Command tigabench regenerates the tables and figures of the Tiga paper's
// evaluation (§5) on the simulated geo-distributed testbed.
//
// Usage:
//
//	tigabench -exp table1            # Table 1: max throughput
//	tigabench -exp fig7              # Figs 7+8: rate sweep, local + remote
//	tigabench -exp fig9              # Fig 9: skew sweep
//	tigabench -exp fig10             # Fig 10: TPC-C rate sweep
//	tigabench -exp fig11             # Fig 11: leader failure recovery
//	tigabench -exp fig11b            # Fig 11 analogue: 2PL+Paxos leader crash + reboot
//	tigabench -exp fig11c            # Fig 11 analogue: NCC+ crash + reboot (outage txns hang)
//	tigabench -exp table2            # Table 2: server rotation
//	tigabench -exp fig12             # Fig 12: colocate vs separate
//	tigabench -exp fig13             # Fig 13: headroom sensitivity
//	tigabench -exp table3            # Table 3: clock ablation
//	tigabench -exp fig14             # Fig 14: latency per clock model
//	tigabench -exp ablations         # extra ablations (ε-mode, Appendix E)
//	tigabench -exp scenarios         # protocol × topology × workload matrix
//	tigabench -exp chaos             # protocol × fault-plan matrix
//	tigabench -exp localreads        # 0-WRTT local snapshot reads vs the coordinator path
//	tigabench -exp scaleout          # shards × replication, open-loop arrivals, admission gates
//	tigabench -exp breakdown         # critical-path latency decomposition by phase
//	tigabench -exp all               # everything
//	tigabench -exp list              # list the registered experiments
//
// Output:
//
//	Every experiment builds a typed report (internal/report); -format picks
//	the renderer:
//
//	tigabench -exp fig7                        # text, the paper's layout (default)
//	tigabench -exp all -format json            # one self-describing JSON document
//	tigabench -exp table1 -format csv          # flattened CSV blocks
//	tigabench -exp all -format json -out BENCH.json   # write the artifact to a file
//
// Tuning:
//
//	tigabench -knobs                           # list every protocol's knobs
//	tigabench -set Tiga.delta=20ms -exp fig13  # override a knob (repeatable)
//	tigabench -op 2PL+Paxos=1500,200 -exp table1
//	                                 # per-protocol operating point:
//	                                 # saturation rate[,outstanding cap]
//	tigabench -op Tiga@us-eu3=2000 -exp scenarios
//	                                 # per-cell operating point for the
//	                                 # scenario matrix (protocol × topology)
//
// Scenarios:
//
//	tigabench -topo list             # list the registered WAN topologies
//	tigabench -workload list         # list the registered workloads
//	tigabench -exp scenarios -topo us-eu3,planet5 -workload ycsbt,hotwrite
//	tigabench -exp fig7 -topo us-eu3 # classic experiment on another WAN
//	                                 # (region labels follow the topology)
//
// Chaos:
//
//	tigabench -chaos list            # list the registered fault plans
//	tigabench -exp chaos -chaos leader-crash,clock-step
//	                                 # fault-plan subset for the chaos matrix
//
// Tracing:
//
//	tigabench -exp table1 -trace out.json
//	                                 # record every transaction's lifecycle
//	                                 # spans and write the per-run phase
//	                                 # summaries — critical-path breakdowns
//	                                 # plus tail exemplars — as Chrome
//	                                 # trace-event JSON (load in Perfetto or
//	                                 # chrome://tracing)
//
// Add -quick for a reduced sweep (seconds instead of minutes per figure).
// Independent sweep points run on the parallel driver; -workers bounds the
// in-flight points per experiment (0 = all cores, 1 = the old serial
// behavior — output is identical either way). Experiments share one
// work-stealing worker pool and run concurrently under -exp all, so one
// experiment's tail no longer idles the cores; output is still printed in
// presentation order. -protocols restricts multi-protocol sweeps to a subset
// of the registered protocols. Throughput is reported in simulated-testbed
// units: per-operation CPU costs are scaled by harness.CPUScale (see
// EXPERIMENTS.md).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"sync"
	"time"

	"tiga/internal/chaos"
	"tiga/internal/harness"
	"tiga/internal/protocol"
	"tiga/internal/report"
	"tiga/internal/simnet"
	"tiga/internal/trace"
	"tiga/internal/workload"
)

// experimentNames returns the registry's names plus the CLI-level extras:
// the fig8 alias (the harness records both regions in the fig7 pass) and
// "all".
func experimentNames() []string {
	names := make([]string, 0, 16)
	for _, n := range harness.ExperimentNames() {
		names = append(names, n)
		if n == "fig7" {
			names = append(names, "fig8")
		}
	}
	return append(names, "all")
}

// jobWriter buffers an experiment's output until the presentation order
// reaches it; promote flushes the backlog and streams every subsequent
// write straight through (the head-of-queue experiment prints live).
type jobWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
	out io.Writer // nil while buffering
}

func (w *jobWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.out != nil {
		return w.out.Write(p)
	}
	return w.buf.Write(p)
}

func (w *jobWriter) promote(dst io.Writer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	dst.Write(w.buf.Bytes())
	w.buf.Reset()
	w.out = dst
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tigabench: "+format+"\n", args...)
	os.Exit(2)
}

// printExperiments lists every registered experiment (-exp list).
func printExperiments(w io.Writer) {
	for _, e := range harness.Experiments() {
		fmt.Fprintf(w, "%-10s %s\n", e.Name, e.Doc)
		if e.Name == "fig7" {
			fmt.Fprintf(w, "%-10s (alias of fig7: both regions are recorded in one pass)\n", "fig8")
		}
	}
}

// printTopologies lists every registered WAN topology (-topo list).
func printTopologies(w io.Writer) {
	for _, name := range simnet.TopologyNames() {
		topo, _ := simnet.LookupTopology(name)
		def := ""
		if name == simnet.DefaultTopology {
			def = "  (default)"
		}
		fmt.Fprintf(w, "%s%s\n  %s\n  regions: %s (servers in the first %d; remote coordinators in %s)\n",
			name, def, topo.Doc, strings.Join(topo.RegionNames, ", "),
			topo.ServerRegions, topo.RegionName(topo.RemoteCoordRegion))
	}
}

// printChaosPlans lists every registered fault plan (-chaos list).
func printChaosPlans(w io.Writer) {
	for _, name := range chaos.Names() {
		p, _ := chaos.Lookup(name)
		kind := ""
		if p.Crashes {
			kind = "  (crash plan: runs only against protocols with fault hooks)"
		}
		fmt.Fprintf(w, "%s%s\n  %s\n  fault window: %v-%v\n", name, kind, p.Doc, p.Window.Start, p.Window.End)
	}
}

// printWorkloads lists every registered workload with its parameter schema
// (-workload list).
func printWorkloads(w io.Writer) {
	for _, name := range workload.Names() {
		def, _ := workload.Lookup(name)
		fmt.Fprintf(w, "%s\n  %s\n", name, def.Doc)
		for _, k := range def.Params {
			dv := fmt.Sprintf("%v", k.Default)
			if d, ok := k.Default.(time.Duration); ok {
				dv = d.String()
			}
			fmt.Fprintf(w, "  param %s=<%s>  (default %s)\n      %s\n", k.Name, k.Type, dv, k.Doc)
		}
	}
}

// parseNameList validates a comma-separated -topo/-workload subset against a
// registry, exiting 2 with the valid list on an unknown name (mirroring
// -set/-protocols).
func parseNameList(singular, plural, raw string, known func(string) bool, valid []string) []string {
	var out []string
	for _, name := range strings.Split(raw, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known(name) {
			fail("unknown %s %q\nregistered %s: %s", singular, name, plural, strings.Join(valid, ", "))
		}
		out = append(out, name)
	}
	return out
}

// printKnobs lists every registered protocol's knob schema.
func printKnobs(w io.Writer) {
	for _, p := range protocol.Names() {
		schema, _ := protocol.Knobs(p)
		fmt.Fprintf(w, "%s\n", p)
		if len(schema) == 0 {
			fmt.Fprintf(w, "  (no knobs)\n")
			continue
		}
		for _, k := range schema {
			def := fmt.Sprintf("%v", k.Default)
			if d, ok := k.Default.(time.Duration); ok {
				def = d.String()
			}
			fmt.Fprintf(w, "  -set %s.%s=<%s>  (default %s)\n      %s\n",
				p, k.Name, k.Type, def, k.Doc)
		}
	}
}

// parseSets turns repeated -set proto.knob=value flags into the harness knob
// map, validating the protocol, the knob name, and the value's type against
// the registered schema. Any mistake exits 2 with the valid alternatives,
// mirroring the -exp/-protocols validation.
func parseSets(sets []string) map[string]map[string]any {
	if len(sets) == 0 {
		return nil
	}
	out := make(map[string]map[string]any)
	for _, s := range sets {
		assign := strings.SplitN(s, "=", 2)
		if len(assign) != 2 {
			fail("-set %q: want proto.knob=value", s)
		}
		path := strings.SplitN(assign[0], ".", 2)
		if len(path) != 2 {
			fail("-set %q: want proto.knob=value", s)
		}
		proto, name, raw := path[0], path[1], assign[1]
		schema, ok := protocol.Knobs(proto)
		if !ok {
			fail("-set %q: unknown protocol %q\nregistered protocols: %s",
				s, proto, strings.Join(protocol.Names(), ", "))
		}
		knob, found := schema.Find(name)
		if !found {
			fail("-set %q: protocol %s has no knob %q\nvalid knobs: %s (see -knobs)",
				s, proto, name, strings.Join(schema.Names(), ", "))
		}
		v, err := protocol.ParseValue(knob, raw)
		if err != nil {
			fail("-set %q: %v", s, err)
		}
		m := out[proto]
		if m == nil {
			m = make(map[string]any)
			out[proto] = m
		}
		m[name] = v
	}
	return out
}

// parseOps turns repeated -op proto[@topo]=rate[,outstanding] flags into the
// operating-point map. A @topo suffix keys the point to one protocol ×
// topology cell of the scenario matrix; the bare protocol key applies
// everywhere else.
func parseOps(ops []string) map[string]harness.OpPoint {
	if len(ops) == 0 {
		return nil
	}
	out := make(map[string]harness.OpPoint)
	for _, s := range ops {
		assign := strings.SplitN(s, "=", 2)
		if len(assign) != 2 {
			fail("-op %q: want proto[@topo]=rate[,outstanding]", s)
		}
		key := assign[0]
		proto, topo := key, ""
		if at := strings.IndexByte(key, '@'); at >= 0 {
			proto, topo = key[:at], key[at+1:]
			if topo == "" {
				fail("-op %q: empty topology after '@' (want proto[@topo]=rate[,outstanding])", s)
			}
		}
		if !protocol.Registered(proto) {
			fail("-op %q: unknown protocol %q\nregistered protocols: %s",
				s, proto, strings.Join(protocol.Names(), ", "))
		}
		if topo != "" {
			if _, ok := simnet.LookupTopology(topo); !ok {
				fail("-op %q: unknown topology %q\nregistered topologies: %s",
					s, topo, strings.Join(simnet.TopologyNames(), ", "))
			}
		}
		parts := strings.Split(assign[1], ",")
		if len(parts) > 2 {
			fail("-op %q: want proto[@topo]=rate[,outstanding]", s)
		}
		var op harness.OpPoint
		rate, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || rate <= 0 {
			fail("-op %q: %q is not a positive rate", s, parts[0])
		}
		op.SaturationRate = rate
		if len(parts) == 2 {
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 {
				fail("-op %q: %q is not a positive outstanding cap", s, parts[1])
			}
			op.Outstanding = n
		}
		out[key] = op
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experimentNames(), "|")+", or 'list' to enumerate")
	quick := flag.Bool("quick", false, "reduced sweeps and durations")
	seed := flag.Int64("seed", 42, "simulation seed")
	keys := flag.Int("keys", 0, "MicroBench keys per shard (0 = default)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = all cores, 1 = serial)")
	format := flag.String("format", "text", "output format: text|json|csv")
	outPath := flag.String("out", "", "write the rendered output to a file instead of stdout")
	protocols := flag.String("protocols", "",
		"comma-separated protocol subset for the sweeps (default: all registered)")
	topo := flag.String("topo", "",
		"comma-separated topology subset (classic experiments deploy on the first; the scenario matrix sweeps all), or 'list' to enumerate")
	wl := flag.String("workload", "",
		"comma-separated workload subset for the scenario matrix, or 'list' to enumerate")
	chaosPlans := flag.String("chaos", "",
		"comma-separated fault-plan subset for the chaos matrix, or 'list' to enumerate")
	listKnobs := flag.Bool("knobs", false, "list every protocol's knobs with defaults and exit")
	simbench := flag.Bool("simbench", false,
		"append the sim-core microbenchmarks (ns/event, allocs/event) and the txn-path allocation rows (allocs per committed txn, peak heap) as an extra experiment")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocation) profile to this file at exit")
	tracePath := flag.String("trace", "",
		"trace every transaction's lifecycle and write the per-run phase summaries (critical-path breakdowns + tail exemplars) as Chrome trace-event JSON to this file (load in Perfetto)")
	execTracePath := flag.String("exectrace", "", "write a Go runtime execution trace of the run to this file")
	var sets multiFlag
	flag.Var(&sets, "set", "knob override proto.knob=value (repeatable; see -knobs)")
	var ops multiFlag
	flag.Var(&ops, "op", "operating-point override proto[@topo]=rate[,outstanding] (repeatable)")
	flag.Parse()

	if *listKnobs {
		printKnobs(os.Stdout)
		return
	}
	if *exp == "list" {
		printExperiments(os.Stdout)
		return
	}
	if *topo == "list" {
		printTopologies(os.Stdout)
		return
	}
	if *wl == "list" {
		printWorkloads(os.Stdout)
		return
	}
	if *chaosPlans == "list" {
		printChaosPlans(os.Stdout)
		return
	}

	if *exp != "all" {
		valid := false
		for _, name := range experimentNames() {
			if *exp == name {
				valid = true
				break
			}
		}
		if !valid {
			fail("unknown experiment %q\nvalid experiments: %s",
				*exp, strings.Join(experimentNames(), ", "))
		}
	}
	if *format != "text" && *format != "json" && *format != "csv" {
		fail("unknown format %q\nvalid formats: text, json, csv", *format)
	}

	// Profiling taps (-cpuprofile/-memprofile/-exectrace): every path is
	// opened up front so an unwritable location exits 2 before minutes of
	// sweeping, and the profiles cover the experiment runs end to end. See
	// README "Simulator performance" for the capture-and-inspect workflow.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *execTracePath != "" {
		f, err := os.Create(*execTracePath)
		if err != nil {
			fail("-exectrace: %v", err)
		}
		if err := rtrace.Start(f); err != nil {
			fail("-exectrace: %v", err)
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	// Txn-lifecycle tracing (-trace): arm the harness's trace sink so every
	// run records per-txn phase spans; the collected summaries are exported
	// as Chrome trace-event JSON after the experiments finish. The output
	// path is opened up front (same unwritable-location rule as the
	// profiling taps).
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("-trace: %v", err)
		}
		traceFile = f
		harness.EnableTracing(trace.Config{Seed: *seed})
		defer func() {
			sums := harness.CollectTraces()
			if err := trace.WriteChrome(traceFile, sums); err != nil {
				fmt.Fprintf(os.Stderr, "tigabench: -trace: %v\n", err)
			}
			traceFile.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (%d traced runs, Chrome trace-event JSON)\n", *tracePath, len(sums))
		}()
	}
	var memFile *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("-memprofile: %v", err)
		}
		memFile = f
		defer func() {
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				fmt.Fprintf(os.Stderr, "tigabench: -memprofile: %v\n", err)
			}
			memFile.Close()
		}()
	}

	var subset []string
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !protocol.Registered(p) {
				fail("unknown protocol %q\nregistered protocols: %s",
					p, strings.Join(protocol.Names(), ", "))
			}
			subset = append(subset, p)
		}
	}

	topos := parseNameList("topology", "topologies", *topo, func(n string) bool {
		_, ok := simnet.LookupTopology(n)
		return ok
	}, simnet.TopologyNames())
	wls := parseNameList("workload", "workloads", *wl, func(n string) bool {
		_, ok := workload.Lookup(n)
		return ok
	}, workload.Names())
	plans := parseNameList("chaos plan", "chaos plans", *chaosPlans, func(n string) bool {
		_, ok := chaos.Lookup(n)
		return ok
	}, chaos.Names())

	// The classic experiments deploy on one WAN — the first -topo entry;
	// only the scenario matrix sweeps the rest. Say so instead of silently
	// using the first (mirroring the -protocols exclusion note).
	if len(topos) > 1 && *exp != "all" && *exp != "scenarios" {
		fmt.Fprintf(os.Stderr,
			"tigabench: note: %s deploys on the first selected topology (%s); only -exp scenarios sweeps all of them\n",
			*exp, topos[0])
	}
	// -workload shapes only the scenario matrix; the classic experiments
	// run the paper's fixed workloads.
	if len(wls) > 0 && *exp != "all" && *exp != "scenarios" {
		fmt.Fprintf(os.Stderr,
			"tigabench: note: -workload only affects the scenario matrix (-exp scenarios); %s runs the paper's workloads\n", *exp)
	}
	// -chaos shapes only the chaos matrix; the Fig 11 figures run their
	// fixed plans.
	if len(plans) > 0 && *exp != "all" && *exp != "chaos" {
		fmt.Fprintf(os.Stderr,
			"tigabench: note: -chaos only affects the chaos matrix (-exp chaos); %s runs its fixed fault plan\n", *exp)
	}

	o := harness.Options{Seed: *seed, Quick: *quick, Keys: *keys,
		Workers: *workers, Protocols: subset, Topologies: topos, Workloads: wls,
		Plans: plans, Knobs: parseSets(sets), Ops: parseOps(ops)}

	var selected []harness.Experiment
	for _, e := range harness.Experiments() {
		if *exp != "all" && *exp != e.Name && !(e.Name == "fig7" && *exp == "fig8") {
			continue
		}
		selected = append(selected, e)
	}

	// Progress lines go to stdout for the classic text stream and to stderr
	// when a machine-readable format would be corrupted by them.
	progress := io.Writer(os.Stdout)
	if *format != "text" || *outPath != "" {
		progress = os.Stderr
	}
	start := time.Now()

	// Selected experiments run concurrently on the harness's shared worker
	// pool (one experiment's tail points no longer idle the cores while the
	// next experiment waits). For the default text stream the head of the
	// presentation order renders to stdout as soon as it finishes while
	// later experiments buffer until promoted, so the output order never
	// changes and finished output survives a panic in a later experiment.
	type job struct {
		name    string
		w       jobWriter
		rep     *report.Report
		done    chan struct{}
		elapsed time.Duration
	}
	var jobs []*job
	for _, e := range selected {
		j := &job{name: e.Name, done: make(chan struct{})}
		jobs = append(jobs, j)
		run := e.Run
		go func() {
			defer close(j.done)
			t0 := time.Now()
			j.rep = run(o)
			if *format == "text" {
				report.Render(&j.w, j.rep)
			}
			j.elapsed = time.Since(t0)
		}()
	}
	var reports []*report.Report
	textDst := io.Writer(os.Stdout)
	var textBuf bytes.Buffer
	if *format == "text" && *outPath != "" {
		textDst = &textBuf
	}
	for _, j := range jobs {
		if *format == "text" {
			j.w.promote(textDst)
		}
		<-j.done
		reports = append(reports, j.rep)
		fmt.Fprintf(progress, "[%s done in %v]\n", j.name, j.elapsed.Round(time.Millisecond))
	}
	// The sim-core microbenchmarks run after the experiments (they want idle
	// cores) and append their report, so the default output stays identical
	// unless -simbench asked for the extra rows.
	if *simbench {
		t0 := time.Now()
		rep := runSimBench()
		reports = append(reports, rep)
		if *format == "text" {
			report.Render(textDst, rep)
		}
		fmt.Fprintf(progress, "[simbench done in %v]\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(progress, "total: %v\n", time.Since(start).Round(time.Millisecond))

	var rendered bytes.Buffer
	switch *format {
	case "text":
		rendered = textBuf // empty unless -out buffered the stream
	case "json":
		doc := &report.Document{
			Generated:   report.Generated{Seed: *seed, Quick: *quick, CPUScale: harness.CPUScale},
			Experiments: reports,
		}
		if err := doc.Encode(&rendered); err != nil {
			fail("encoding JSON: %v", err)
		}
	case "csv":
		if err := report.RenderCSV(&rendered, reports...); err != nil {
			fail("encoding CSV: %v", err)
		}
	}
	switch {
	case *outPath != "":
		if err := os.WriteFile(*outPath, rendered.Bytes(), 0o644); err != nil {
			fail("writing %s: %v", *outPath, err)
		}
		fmt.Fprintf(progress, "wrote %s (%d bytes, %s)\n", *outPath, rendered.Len(), *format)
	case *format != "text":
		os.Stdout.Write(rendered.Bytes())
	}
}
