// Command tigabench regenerates the tables and figures of the Tiga paper's
// evaluation (§5) on the simulated geo-distributed testbed.
//
// Usage:
//
//	tigabench -exp table1            # Table 1: max throughput
//	tigabench -exp fig7              # Figs 7+8: rate sweep, local + remote
//	tigabench -exp fig9              # Fig 9: skew sweep
//	tigabench -exp fig10             # Fig 10: TPC-C rate sweep
//	tigabench -exp fig11             # Fig 11: leader failure recovery
//	tigabench -exp fig11b            # Fig 11 analogue: 2PL+Paxos leader crash + reboot
//	tigabench -exp table2            # Table 2: server rotation
//	tigabench -exp fig12             # Fig 12: colocate vs separate
//	tigabench -exp fig13             # Fig 13: headroom sensitivity
//	tigabench -exp table3            # Table 3: clock ablation
//	tigabench -exp fig14             # Fig 14: latency per clock model
//	tigabench -exp ablations         # extra ablations (ε-mode, Appendix E)
//	tigabench -exp all               # everything
//
// Tuning:
//
//	tigabench -knobs                           # list every protocol's knobs
//	tigabench -set Tiga.delta=20ms -exp fig13  # override a knob (repeatable)
//	tigabench -op 2PL+Paxos=1500,200 -exp table1
//	                                 # per-protocol operating point:
//	                                 # saturation rate[,outstanding cap]
//
// Add -quick for a reduced sweep (seconds instead of minutes per figure).
// Independent sweep points run on the parallel driver; -workers bounds the
// pool (0 = all cores, 1 = the old serial behavior — output is identical
// either way). -protocols restricts multi-protocol sweeps to a subset of the
// registered protocols. Throughput is reported in simulated-testbed units:
// per-operation CPU costs are scaled by harness.CPUScale (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tiga/internal/harness"
	"tiga/internal/protocol"
)

// experiments lists every runnable experiment in presentation order. fig8 is
// an alias: the harness records both regions in the fig7 pass.
var experiments = []struct {
	name string
	run  func(w *os.File, o harness.Options)
}{
	{"table1", func(w *os.File, o harness.Options) { harness.Table1(w, o) }},
	{"fig7", func(w *os.File, o harness.Options) { harness.Fig7And8(w, o) }},
	{"fig9", func(w *os.File, o harness.Options) { harness.Fig9(w, o) }},
	{"fig10", func(w *os.File, o harness.Options) { harness.Fig10(w, o) }},
	{"fig11", func(w *os.File, o harness.Options) { harness.Fig11(w, o) }},
	{"fig11b", func(w *os.File, o harness.Options) { harness.Fig11Baseline(w, o) }},
	{"table2", func(w *os.File, o harness.Options) { harness.Table2(w, o) }},
	{"fig12", func(w *os.File, o harness.Options) { harness.Fig12(w, o) }},
	{"fig13", func(w *os.File, o harness.Options) { harness.Fig13(w, o) }},
	{"table3", func(w *os.File, o harness.Options) { harness.Table3(w, o) }},
	{"fig14", func(w *os.File, o harness.Options) { harness.Fig14(w, o) }},
	{"ablations", func(w *os.File, o harness.Options) {
		harness.AblationEpsilon(w, o)
		harness.AblationSlowReply(w, o)
	}},
}

func experimentNames() []string {
	names := make([]string, 0, len(experiments)+2)
	for _, e := range experiments {
		names = append(names, e.name)
		if e.name == "fig7" {
			names = append(names, "fig8")
		}
	}
	return append(names, "all")
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tigabench: "+format+"\n", args...)
	os.Exit(2)
}

// printKnobs lists every registered protocol's knob schema.
func printKnobs(w *os.File) {
	for _, p := range protocol.Names() {
		schema, _ := protocol.Knobs(p)
		fmt.Fprintf(w, "%s\n", p)
		if len(schema) == 0 {
			fmt.Fprintf(w, "  (no knobs)\n")
			continue
		}
		for _, k := range schema {
			def := fmt.Sprintf("%v", k.Default)
			if d, ok := k.Default.(time.Duration); ok {
				def = d.String()
			}
			fmt.Fprintf(w, "  -set %s.%s=<%s>  (default %s)\n      %s\n",
				p, k.Name, k.Type, def, k.Doc)
		}
	}
}

// parseSets turns repeated -set proto.knob=value flags into the harness knob
// map, validating the protocol, the knob name, and the value's type against
// the registered schema. Any mistake exits 2 with the valid alternatives,
// mirroring the -exp/-protocols validation.
func parseSets(sets []string) map[string]map[string]any {
	if len(sets) == 0 {
		return nil
	}
	out := make(map[string]map[string]any)
	for _, s := range sets {
		assign := strings.SplitN(s, "=", 2)
		if len(assign) != 2 {
			fail("-set %q: want proto.knob=value", s)
		}
		path := strings.SplitN(assign[0], ".", 2)
		if len(path) != 2 {
			fail("-set %q: want proto.knob=value", s)
		}
		proto, name, raw := path[0], path[1], assign[1]
		schema, ok := protocol.Knobs(proto)
		if !ok {
			fail("-set %q: unknown protocol %q\nregistered protocols: %s",
				s, proto, strings.Join(protocol.Names(), ", "))
		}
		knob, found := schema.Find(name)
		if !found {
			fail("-set %q: protocol %s has no knob %q\nvalid knobs: %s (see -knobs)",
				s, proto, name, strings.Join(schema.Names(), ", "))
		}
		v, err := protocol.ParseValue(knob, raw)
		if err != nil {
			fail("-set %q: %v", s, err)
		}
		m := out[proto]
		if m == nil {
			m = make(map[string]any)
			out[proto] = m
		}
		m[name] = v
	}
	return out
}

// parseOps turns repeated -op proto=rate[,outstanding] flags into the
// per-protocol operating-point map.
func parseOps(ops []string) map[string]harness.OpPoint {
	if len(ops) == 0 {
		return nil
	}
	out := make(map[string]harness.OpPoint)
	for _, s := range ops {
		assign := strings.SplitN(s, "=", 2)
		if len(assign) != 2 {
			fail("-op %q: want proto=rate[,outstanding]", s)
		}
		proto := assign[0]
		if !protocol.Registered(proto) {
			fail("-op %q: unknown protocol %q\nregistered protocols: %s",
				s, proto, strings.Join(protocol.Names(), ", "))
		}
		parts := strings.Split(assign[1], ",")
		if len(parts) > 2 {
			fail("-op %q: want proto=rate[,outstanding]", s)
		}
		var op harness.OpPoint
		rate, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || rate <= 0 {
			fail("-op %q: %q is not a positive rate", s, parts[0])
		}
		op.SaturationRate = rate
		if len(parts) == 2 {
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 {
				fail("-op %q: %q is not a positive outstanding cap", s, parts[1])
			}
			op.Outstanding = n
		}
		out[proto] = op
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experimentNames(), "|"))
	quick := flag.Bool("quick", false, "reduced sweeps and durations")
	seed := flag.Int64("seed", 42, "simulation seed")
	keys := flag.Int("keys", 0, "MicroBench keys per shard (0 = default)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = all cores, 1 = serial)")
	protocols := flag.String("protocols", "",
		"comma-separated protocol subset for the sweeps (default: all registered)")
	listKnobs := flag.Bool("knobs", false, "list every protocol's knobs with defaults and exit")
	var sets multiFlag
	flag.Var(&sets, "set", "knob override proto.knob=value (repeatable; see -knobs)")
	var ops multiFlag
	flag.Var(&ops, "op", "operating-point override proto=rate[,outstanding] (repeatable)")
	flag.Parse()

	if *listKnobs {
		printKnobs(os.Stdout)
		return
	}

	if *exp != "all" {
		valid := false
		for _, name := range experimentNames() {
			if *exp == name {
				valid = true
				break
			}
		}
		if !valid {
			fail("unknown experiment %q\nvalid experiments: %s",
				*exp, strings.Join(experimentNames(), ", "))
		}
	}

	var subset []string
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !protocol.Registered(p) {
				fail("unknown protocol %q\nregistered protocols: %s",
					p, strings.Join(protocol.Names(), ", "))
			}
			subset = append(subset, p)
		}
	}

	o := harness.Options{Seed: *seed, Quick: *quick, Keys: *keys,
		Workers: *workers, Protocols: subset,
		Knobs: parseSets(sets), Ops: parseOps(ops)}
	w := os.Stdout
	start := time.Now()

	for _, e := range experiments {
		if *exp != "all" && *exp != e.name && !(e.name == "fig7" && *exp == "fig8") {
			continue
		}
		t0 := time.Now()
		e.run(w, o)
		fmt.Fprintf(w, "[%s done in %v]\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
