// Sim-core microbenchmark rows for the BENCH artifact (-simbench): the same
// three hot-path measurements as the `go test -bench` suite (BenchmarkSimSend,
// BenchmarkEventQueue, BenchmarkRunOnCPU in bench_test.go), run in-process via
// testing.Benchmark and emitted as a report experiment so benchdiff tracks
// ns/event and allocs/event across PR artifacts alongside the domain metrics.
package main

import (
	"math/rand"
	"testing"
	"time"

	"tiga/internal/report"
	"tiga/internal/simnet"
)

// simBenchConfig mirrors the bench_test.go fixture: a two-region, 1 ms
// symmetric WAN with no jitter or loss, so delays are deterministic and the
// measurement isolates queue and dispatch cost.
func simBenchConfig() simnet.Config {
	return simnet.Config{OWD: simnet.SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
}

// simBenchCases are the measured hot paths, one row each.
var simBenchCases = []struct {
	name string
	doc  string
	run  func(b *testing.B)
}{
	{"send", "message delivery: Send -> queue -> dispatch -> handler", func(b *testing.B) {
		s := simnet.NewSim(1)
		n := simnet.NewNetwork(s, simBenchConfig())
		src := n.AddNode(0, nil)
		n.AddNode(1, func(from simnet.NodeID, msg simnet.Message) {})
		msg := simnet.Message(&struct{ payload int }{payload: 7})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Send(1, msg)
			s.Step()
		}
	}},
	{"queue", "bare event queue: push + pop at steady heap depth", func(b *testing.B) {
		s := simnet.NewSim(1)
		fn := func() {}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 1024; i++ {
			s.At(time.Duration(rng.Int63n(int64(time.Second))), fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.At(s.Now()+time.Duration(rng.Int63n(int64(time.Millisecond))), fn)
			s.Step()
		}
	}},
	{"runOnCPU", "node timer: After -> timer event -> CPU queue", func(b *testing.B) {
		s := simnet.NewSim(1)
		n := simnet.NewNetwork(s, simBenchConfig())
		nd := n.AddNode(0, nil)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd.After(time.Microsecond, fn)
			for s.Step() {
			}
		}
	}},
}

// runSimBench measures the sim-core hot paths and builds the "simbench"
// report appended to the document when -simbench is set. Wall-clock numbers
// vary with the host, so the rows are tracked by benchdiff informationally
// like every other artifact metric; allocs/event is the stable signal (the
// steady-state paths are allocation-free by design).
func runSimBench() *report.Report {
	rep := report.New("simbench")
	t := rep.Add(&report.Table{
		ID:    "simcore",
		Title: "Sim-core microbenchmarks (steady state; ns/op is ns/event)",
		Columns: []report.Column{
			report.Col("path", "Path", report.String, report.None, 10).AlignLeft(),
			report.Col("ns_per_event", "ns/event", report.Float, report.Nanos, 10).WithPrec(1),
			report.Col("events_per_sec", "Events/s", report.Float, report.Events, 12),
			report.Col("allocs_per_event", "Allocs", report.Int, report.Allocs, 7),
			report.Col("bytes_per_event", "B/event", report.Int, report.Bytes, 8),
		},
	})
	for _, c := range simBenchCases {
		r := testing.Benchmark(c.run)
		ns := float64(r.NsPerOp())
		if r.N > 0 {
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		eventsPerSec := 0.0
		if ns > 0 {
			eventsPerSec = 1e9 / ns
		}
		t.AddRow(
			report.Str(c.name),
			report.Num(ns),
			report.Num(eventsPerSec),
			report.CountOf(r.AllocsPerOp()),
			report.CountOf(r.AllocedBytesPerOp()),
		)
		t.Note("%s: %s", c.name, c.doc)
	}
	return rep
}
