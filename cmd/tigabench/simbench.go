// Sim-core microbenchmark rows for the BENCH artifact (-simbench): the same
// three hot-path measurements as the `go test -bench` suite (BenchmarkSimSend,
// BenchmarkEventQueue, BenchmarkRunOnCPU in bench_test.go), run in-process via
// testing.Benchmark and emitted as a report experiment so benchdiff tracks
// ns/event and allocs/event across PR artifacts alongside the domain metrics.
package main

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/harness"
	"tiga/internal/report"
	"tiga/internal/simnet"
)

// simBenchConfig mirrors the bench_test.go fixture: a two-region, 1 ms
// symmetric WAN with no jitter or loss, so delays are deterministic and the
// measurement isolates queue and dispatch cost.
func simBenchConfig() simnet.Config {
	return simnet.Config{OWD: simnet.SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
}

// simBenchCases are the measured hot paths, one row each.
var simBenchCases = []struct {
	name string
	doc  string
	run  func(b *testing.B)
}{
	{"send", "message delivery: Send -> queue -> dispatch -> handler", func(b *testing.B) {
		s := simnet.NewSim(1)
		n := simnet.NewNetwork(s, simBenchConfig())
		src := n.AddNode(0, nil)
		n.AddNode(1, func(from simnet.NodeID, msg simnet.Message) {})
		msg := simnet.Message(&struct{ payload int }{payload: 7})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Send(1, msg)
			s.Step()
		}
	}},
	{"queue", "bare event queue: push + pop at steady heap depth", func(b *testing.B) {
		s := simnet.NewSim(1)
		fn := func() {}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 1024; i++ {
			s.At(time.Duration(rng.Int63n(int64(time.Second))), fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.At(s.Now()+time.Duration(rng.Int63n(int64(time.Millisecond))), fn)
			s.Step()
		}
	}},
	{"runOnCPU", "node timer: After -> timer event -> CPU queue", func(b *testing.B) {
		s := simnet.NewSim(1)
		n := simnet.NewNetwork(s, simBenchConfig())
		nd := n.AddNode(0, nil)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd.After(time.Microsecond, fn)
			for s.Step() {
			}
		}
	}},
}

// runSimBench measures the sim-core hot paths and builds the "simbench"
// report appended to the document when -simbench is set. Wall-clock numbers
// vary with the host, so the rows are tracked by benchdiff informationally
// like every other artifact metric; allocs/event is the stable signal (the
// steady-state paths are allocation-free by design).
func runSimBench() *report.Report {
	rep := report.New("simbench")
	t := rep.Add(&report.Table{
		ID:    "simcore",
		Title: "Sim-core microbenchmarks (steady state; ns/op is ns/event)",
		Columns: []report.Column{
			report.Col("path", "Path", report.String, report.None, 10).AlignLeft(),
			report.Col("ns_per_event", "ns/event", report.Float, report.Nanos, 10).WithPrec(1),
			report.Col("events_per_sec", "Events/s", report.Float, report.Events, 12),
			report.Col("allocs_per_event", "Allocs", report.Int, report.Allocs, 7),
			report.Col("bytes_per_event", "B/event", report.Int, report.Bytes, 8),
		},
	})
	for _, c := range simBenchCases {
		r := testing.Benchmark(c.run)
		ns := float64(r.NsPerOp())
		if r.N > 0 {
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		eventsPerSec := 0.0
		if ns > 0 {
			eventsPerSec = 1e9 / ns
		}
		t.AddRow(
			report.Str(c.name),
			report.Num(ns),
			report.Num(eventsPerSec),
			report.CountOf(r.AllocsPerOp()),
			report.CountOf(r.AllocedBytesPerOp()),
		)
		t.Note("%s: %s", c.name, c.doc)
	}
	rep.Tables = append(rep.Tables, txnPathBench().Tables...)
	return rep
}

// txnPathStats is one end-to-end transaction-path measurement: a small
// in-process Tiga deployment driven for one short run with the Go allocator
// observed around it.
type txnPathStats struct {
	committed int64
	allocs    float64 // heap allocations per committed txn
	bytes     float64 // bytes allocated per committed txn
	peakHeap  uint64  // max HeapAlloc sampled mid-run, bytes
}

// measureTxnPath runs one small deployment and attributes the allocator
// deltas to its committed transactions. The run is serial and self-contained,
// so Mallocs/TotalAlloc deltas are the run's own; peak HeapAlloc is sampled
// every 100 ms of simulated time (live heap is GC-timing dependent, so the
// peak is indicative — allocs/txn is the stable signal benchdiff tracks).
func measureTxnPath(arrival string) txnPathStats {
	spec := harness.ClusterSpec{
		Protocol: "Tiga", Workload: "micro", WorkloadKeys: 2000,
		Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 42,
		CostScale: harness.CPUScale,
	}
	if err := spec.EnsureGen(); err != nil {
		panic(err)
	}
	d := harness.Build(spec)
	var peak uint64
	var sample func()
	sample = func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		d.Sim.At(d.Sim.Now()+100*time.Millisecond, sample)
	}
	d.Sim.At(0, sample)
	load := harness.LoadSpec{
		RatePerCoord: 500, Outstanding: 100, Arrival: arrival,
		Warmup: 200 * time.Millisecond, Duration: time.Second, Seed: 43,
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := harness.RunLoad(d, spec.Gen, load)
	runtime.ReadMemStats(&m1)
	st := txnPathStats{committed: res.Run.Counters.Committed, peakHeap: peak}
	if st.committed > 0 {
		st.allocs = float64(m1.Mallocs-m0.Mallocs) / float64(st.committed)
		st.bytes = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(st.committed)
	}
	return st
}

// txnPathBench builds the transaction-path allocation table: the full
// deployment cost per committed transaction (generator, coordinator,
// protocol, replication, metrics — everything the serving path allocates),
// measured on the closed loop and on the open-loop Poisson path the
// scale-out sweeps drive.
func txnPathBench() *report.Report {
	rep := report.New("simbench-txnpath")
	t := rep.Add(&report.Table{
		ID: "txnpath", Gap: true,
		Title: "Transaction-path allocation (Tiga, micro 3-shard, one short in-process run)",
		Columns: []report.Column{
			report.Col("loop", "Loop", report.String, report.None, 11).AlignLeft(),
			report.Col("committed", "Committed", report.Int, report.None, 10),
			report.Col("allocs_per_txn", "Allocs/txn", report.Float, report.Allocs, 11).WithPrec(1),
			report.Col("bytes_per_txn", "B/txn", report.Float, report.Bytes, 10).WithPrec(0),
			report.Col("peak_heap", "PeakHeap", report.Int, report.Bytes, 12),
		},
	})
	for _, c := range []struct{ loop, arrival string }{
		{"closed", ""},
		{"open", "poisson"},
	} {
		st := measureTxnPath(c.arrival)
		t.AddRow(report.Str(c.loop), report.CountOf(st.committed),
			report.Num(st.allocs), report.Num(st.bytes),
			report.CountOf(int64(st.peakHeap)))
	}
	t.Note("(allocs/txn and B/txn are allocator deltas over the whole run divided by commits; peak heap is sampled every 100 ms of sim time)")
	return rep
}
