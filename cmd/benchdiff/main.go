// Command benchdiff compares two archived benchmark artifacts
// (tigabench -format json -out BENCH_*.json) and reports every numeric cell
// that moved beyond a noise threshold, turning the per-PR artifacts into a
// regression gate.
//
// Usage:
//
//	benchdiff OLD.json NEW.json             # deltas beyond 5% (the default)
//	benchdiff -threshold 10 OLD.json NEW.json
//	benchdiff -notes OLD.json NEW.json      # also print structural notes
//	benchdiff -only simbench -units allocs OLD.json NEW.json
//	                                        # gate on one experiment's
//	                                        # allocation columns only
//
// Documents are joined experiment-by-name, table-by-id, row-by-label-column
// (repeated labels join by occurrence, so sweep tables line up point by
// point). Each unit carries a good direction — throughput and commit rate
// up, latency down — and a beyond-threshold move against it is a REGRESSION.
//
// -only and -units narrow the comparison, so CI can split one artifact pair
// into a blocking gate over the stable counters (allocation columns are
// deterministic per seed) and an informational pass over the wall-clock-noisy
// rest (latency, throughput).
//
// Exit status: 0 when no regressions were found, 1 when at least one was,
// 2 on usage or decode errors — so a CI step can gate on it directly (or
// record it informationally with `|| true` while thresholds are being
// calibrated).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"tiga/internal/report"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) *report.Document {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	doc, err := report.Decode(f)
	if err != nil {
		fail("%s: %v", path, err)
	}
	return doc
}

// fmtValue renders a numeric cell value in its unit's natural presentation.
func fmtValue(v float64, u report.Unit) string {
	switch u {
	case report.Nanos:
		return time.Duration(int64(v)).Round(time.Millisecond).String()
	case report.Percent:
		return fmt.Sprintf("%.1f%%", v)
	case report.Millis:
		return fmt.Sprintf("%.3fms", v)
	default:
		return fmt.Sprintf("%g", v)
	}
}

func fmtPct(pct float64) string {
	if math.IsInf(pct, 1) {
		return "+inf%"
	}
	if math.IsInf(pct, -1) {
		return "-inf%"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

func main() {
	threshold := flag.Float64("threshold", 5, "noise floor: ignore relative changes below this percent")
	notes := flag.Bool("notes", false, "also print structural notes (experiments/tables/rows on one side only)")
	only := flag.String("only", "", "restrict the comparison to one experiment name (empty = all)")
	units := flag.String("units", "", "comma-separated unit filter, e.g. allocs,bytes (empty = all units)")
	flag.Parse()
	if flag.NArg() != 2 {
		fail("want exactly two artifacts: benchdiff [-threshold pct] OLD.json NEW.json")
	}
	if *threshold < 0 {
		fail("-threshold must be >= 0")
	}
	oldDoc, newDoc := load(flag.Arg(0)), load(flag.Arg(1))
	res := report.DiffDocuments(oldDoc, newDoc, *threshold)

	if *only != "" || *units != "" {
		keepUnit := map[report.Unit]bool{}
		for _, u := range strings.Split(*units, ",") {
			if u = strings.TrimSpace(u); u != "" {
				keepUnit[report.Unit(u)] = true
			}
		}
		kept := res.Deltas[:0]
		for _, d := range res.Deltas {
			if *only != "" && d.Experiment != *only {
				continue
			}
			if len(keepUnit) > 0 && !keepUnit[d.Unit] {
				continue
			}
			kept = append(kept, d)
		}
		res.Deltas = kept
	}

	if *notes {
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
	}
	for _, d := range res.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Printf("%s/%s [%s] %s: %s -> %s (%s)%s\n",
			d.Experiment, d.Table, d.Row, d.Column,
			fmtValue(d.Old, d.Unit), fmtValue(d.New, d.Unit), fmtPct(d.Pct), mark)
	}
	reg := res.Regressions()
	fmt.Printf("%d deltas beyond %.1f%% (%d regressions, %d structural notes)\n",
		len(res.Deltas), *threshold, reg, len(res.Notes))
	if reg > 0 {
		os.Exit(1)
	}
}
