// allocprof is the transaction-path allocation profiler: it drives the same
// small in-process deployment as tigabench's -simbench txn-path table with the
// Go heap profiler armed and writes a pprof profile attributing every
// allocation on the serving path (generator, coordinator, protocol,
// replication, metrics). Inspect with
//
//	go tool pprof -top -sample_index=alloc_objects allocprof.out
//
// The per-txn allocation budget is a first-class serving-path metric (see
// EXPERIMENTS.md "Allocation budget"); this harness is how regressions get
// localized once the simbench benchdiff gate trips.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/harness"
)

func main() {
	out := flag.String("out", "allocprof.out", "pprof heap profile output path")
	proto := flag.String("protocol", "Tiga", "protocol to profile")
	arrival := flag.String("arrival", "", "arrival process (empty = closed loop)")
	rate := flag.Float64("rate", 500, "offered rate per coordinator (txn/s)")
	dur := flag.Duration("duration", time.Second, "measured window of simulated time")
	flag.Parse()

	// MemProfileRate 1 records every allocation, so small runs attribute the
	// full budget instead of a sample.
	runtime.MemProfileRate = 1

	spec := harness.ClusterSpec{
		Protocol: *proto, Workload: "micro", WorkloadKeys: 2000,
		Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 42,
		CostScale: harness.CPUScale,
	}
	if err := spec.EnsureGen(); err != nil {
		fmt.Fprintln(os.Stderr, "allocprof:", err)
		os.Exit(2)
	}
	d := harness.Build(spec)
	load := harness.LoadSpec{
		RatePerCoord: *rate, Outstanding: 100, Arrival: *arrival,
		Warmup: 200 * time.Millisecond, Duration: *dur, Seed: 43,
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := harness.RunLoad(d, spec.Gen, load)
	runtime.ReadMemStats(&m1)

	committed := res.Run.Counters.Committed
	if committed > 0 {
		fmt.Printf("committed=%d allocs/txn=%.1f bytes/txn=%.0f\n", committed,
			float64(m1.Mallocs-m0.Mallocs)/float64(committed),
			float64(m1.TotalAlloc-m0.TotalAlloc)/float64(committed))
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocprof:", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // flush outstanding profile records
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "allocprof:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
