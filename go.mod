module tiga

go 1.22
