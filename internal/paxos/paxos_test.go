package paxos

import (
	"testing"
	"time"

	"tiga/internal/simnet"
)

func group(t *testing.T) (*simnet.Sim, []*Replica, [][]Command) {
	t.Helper()
	sim := simnet.NewSim(3)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(time.Millisecond, 0))
	var nodes []simnet.NodeID
	for r := 0; r < 3; r++ {
		nodes = append(nodes, net.AddNode(simnet.Region(r), nil).ID())
	}
	reps := make([]*Replica, 3)
	applied := make([][]Command, 3)
	for r := 0; r < 3; r++ {
		r := r
		reps[r] = NewReplica("g", net.Node(nodes[r]), nodes, r, 0, 1)
		reps[r].OnCommit = func(slot int, cmd Command) { applied[r] = append(applied[r], cmd) }
		net.Node(nodes[r]).SetHandler(func(from simnet.NodeID, msg simnet.Message) {
			reps[r].Handle(from, msg)
		})
	}
	return sim, reps, applied
}

func TestReplicationCommitsEverywhere(t *testing.T) {
	sim, reps, applied := group(t)
	sim.At(0, func() {
		for i := 0; i < 10; i++ {
			reps[0].Propose(i)
		}
	})
	sim.Run(2 * time.Second)
	for r := 0; r < 3; r++ {
		if len(applied[r]) != 10 {
			t.Fatalf("replica %d applied %d of 10", r, len(applied[r]))
		}
		for i, c := range applied[r] {
			if c.(int) != i {
				t.Fatalf("replica %d applied out of order: %v", r, applied[r])
			}
		}
	}
	if reps[0].Committed() != 10 {
		t.Fatalf("leader commit point %d", reps[0].Committed())
	}
}

func TestCommitLatencyIsOneWRTT(t *testing.T) {
	sim, reps, _ := group(t)
	var committedAt time.Duration
	reps[0].OnCommit = func(slot int, cmd Command) { committedAt = sim.Now() }
	sim.At(0, func() { reps[0].Propose("x") })
	sim.Run(time.Second)
	// Leader in SC; nearest majority partner is Finland (55 ms OWD):
	// accept out + ack back ≈ 110 ms (+jitter).
	if committedAt < 105*time.Millisecond || committedAt > 130*time.Millisecond {
		t.Fatalf("commit at %v; want ~110ms (1 WRTT to nearest majority)", committedAt)
	}
}

func TestLossRecoveryViaLaterCommits(t *testing.T) {
	// With message loss, later accepts carry the commit point so followers
	// converge.
	sim := simnet.NewSim(9)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(time.Millisecond, 0.2))
	var nodes []simnet.NodeID
	for r := 0; r < 3; r++ {
		nodes = append(nodes, net.AddNode(simnet.Region(r), nil).ID())
	}
	reps := make([]*Replica, 3)
	applied := make([]int, 3)
	for r := 0; r < 3; r++ {
		r := r
		reps[r] = NewReplica("g", net.Node(nodes[r]), nodes, r, 0, 1)
		reps[r].OnCommit = func(slot int, cmd Command) { applied[r]++ }
		net.Node(nodes[r]).SetHandler(func(from simnet.NodeID, msg simnet.Message) {
			reps[r].Handle(from, msg)
		})
	}
	for i := 0; i < 50; i++ {
		i := i
		sim.At(time.Duration(i*10)*time.Millisecond, func() { reps[0].Propose(i) })
	}
	net.Node(nodes[0]).Every(100*time.Millisecond, func() bool { reps[0].Tick(); return true })
	sim.Run(5 * time.Second)
	// The leader must commit everything (each accept retried implicitly by
	// subsequent proposals; with 20% loss a majority eventually acks).
	if reps[0].Committed() < 45 {
		t.Fatalf("leader committed only %d of 50 under loss", reps[0].Committed())
	}
}
