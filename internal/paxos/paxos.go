// Package paxos implements the steady-state of Multi-Paxos: a stable leader
// replicates commands to 2f+1 replicas and commits them after f
// acknowledgements (one WAN round trip when replicas are geo-distributed).
// It is the consensus layer underneath the layered baselines (2PL+Paxos,
// OCC+Paxos, NCC+), exactly the "stacked" design whose extra WRTTs Tiga's
// consolidation removes (§1, §2).
//
// Leader election is out of scope here: the leader is fixed at construction.
// What IS supported is rebooting that fixed leader — Snapshot/InstallLog let
// a crashed leader rebuild its log from the surviving followers and resume,
// which powers the baseline recovery experiment (the Fig 11 analogue for
// 2PL+Paxos).
package paxos

import (
	"tiga/internal/simnet"
)

// Command is an opaque replicated command.
type Command any

// accept is the leader's phase-2a message.
type accept struct {
	GroupTag string
	Slot     int
	Cmd      Command
	CommitTo int
}

// ack is the phase-2b acknowledgement.
type ack struct {
	GroupTag string
	Slot     int
	From     int
}

// commit propagates the commit point to followers.
type commit struct {
	GroupTag string
	CommitTo int
}

// Replica is one member of a replication group. The owning protocol server
// must forward messages to Handle; Paxos traffic shares the server's node.
type Replica struct {
	Tag    string // distinguishes multiple groups sharing nodes
	node   *simnet.Node
	peers  []simnet.NodeID // all members, index = replica id
	me     int
	leader int
	f      int

	log      []Command
	acks     map[int]map[int]bool
	commitTo int
	applied  int

	// OnCommit fires in slot order on every replica once a slot commits.
	OnCommit func(slot int, cmd Command)
}

// NewReplica creates a group member. peers[leader] is the stable leader.
func NewReplica(tag string, node *simnet.Node, peers []simnet.NodeID, me, leader, f int) *Replica {
	return &Replica{Tag: tag, node: node, peers: peers, me: me, leader: leader, f: f,
		acks: make(map[int]map[int]bool)}
}

// IsLeader reports whether this replica is the group leader.
func (r *Replica) IsLeader() bool { return r.me == r.leader }

// Propose replicates cmd (leader only) and returns its slot. Each proposal
// also retransmits the oldest uncommitted slots, so lost accepts/acks are
// recovered as long as traffic keeps flowing (call Tick during idle periods).
func (r *Replica) Propose(cmd Command) int {
	slot := len(r.log)
	r.log = append(r.log, cmd)
	r.acks[slot] = map[int]bool{r.me: true}
	for i, p := range r.peers {
		if i == r.me {
			continue
		}
		r.node.Send(p, accept{GroupTag: r.Tag, Slot: slot, Cmd: cmd, CommitTo: r.commitTo})
	}
	r.retransmit(4)
	r.maybeCommit(slot)
	return slot
}

// Tick retransmits stalled slots; owners should call it periodically when
// running over lossy links.
func (r *Replica) Tick() {
	if r.IsLeader() {
		r.retransmit(16)
		r.maybeCommit(r.commitTo)
	}
}

func (r *Replica) retransmit(max int) {
	for s := r.commitTo; s < len(r.log) && s < r.commitTo+max; s++ {
		if s == len(r.log)-1 {
			break // just sent
		}
		for i, p := range r.peers {
			if i == r.me || r.acks[s][i] {
				continue
			}
			r.node.Send(p, accept{GroupTag: r.Tag, Slot: s, Cmd: r.log[s], CommitTo: r.commitTo})
		}
	}
}

// Handle processes a message if it belongs to this group, reporting whether
// it was consumed.
func (r *Replica) Handle(from simnet.NodeID, msg simnet.Message) bool {
	switch m := msg.(type) {
	case accept:
		if m.GroupTag != r.Tag {
			return false
		}
		for len(r.log) <= m.Slot {
			r.log = append(r.log, nil)
		}
		r.log[m.Slot] = m.Cmd
		r.advanceCommit(m.CommitTo)
		r.node.Send(from, ack{GroupTag: r.Tag, Slot: m.Slot, From: r.me})
		return true
	case ack:
		if m.GroupTag != r.Tag {
			return false
		}
		if r.acks[m.Slot] != nil {
			r.acks[m.Slot][m.From] = true
			r.maybeCommit(m.Slot)
		}
		return true
	case commit:
		if m.GroupTag != r.Tag {
			return false
		}
		r.advanceCommit(m.CommitTo)
		return true
	}
	return false
}

func (r *Replica) maybeCommit(slot int) {
	if !r.IsLeader() || slot != r.commitTo {
		return
	}
	for r.commitTo < len(r.log) && len(r.acks[r.commitTo]) >= r.f+1 {
		delete(r.acks, r.commitTo)
		r.commitTo++
	}
	r.apply()
	if r.commitTo > 0 {
		for i, p := range r.peers {
			if i != r.me {
				r.node.Send(p, commit{GroupTag: r.Tag, CommitTo: r.commitTo})
			}
		}
	}
}

func (r *Replica) advanceCommit(to int) {
	if to > r.commitTo {
		r.commitTo = to
		r.apply()
	}
}

func (r *Replica) apply() {
	for r.applied < r.commitTo && r.applied < len(r.log) {
		if r.log[r.applied] == nil {
			return // gap: wait for retransmission via later accepts
		}
		if r.OnCommit != nil {
			r.OnCommit(r.applied, r.log[r.applied])
		}
		r.applied++
	}
}

// Committed returns the number of committed slots (tests).
func (r *Replica) Committed() int { return r.commitTo }

// Applied returns the number of slots applied to the state machine — at most
// Committed, lagging it across log gaps awaiting retransmission. Safe-time
// watermark adoption keys off this: a watermark published for a log prefix
// only becomes valid here once that prefix has actually reached the store.
func (r *Replica) Applied() int { return r.applied }

// LogLen returns the log length, committed or not (recovery catch-up gate).
func (r *Replica) LogLen() int { return len(r.log) }

// Snapshot returns a copy of the replica's log and its commit point, for
// recovery state transfer to a rebooting peer.
func (r *Replica) Snapshot() ([]Command, int) {
	return append([]Command(nil), r.log...), r.commitTo
}

// InstallLog adopts a log merged from the surviving replicas onto a freshly
// constructed leader: the committed prefix is applied locally (OnCommit
// replay), the commit point is pushed to followers, and adopted-but-
// uncommitted tail entries are re-proposed under fresh acks. The tail is
// truncated at the first gap — commit order is sequential, so a slot missing
// from every survivor cannot have committed and neither can anything after
// it. Leader only.
func (r *Replica) InstallLog(log []Command, commitTo int) {
	r.log = append(r.log[:0], log...)
	if commitTo > len(r.log) {
		commitTo = len(r.log) // defensive: a commit point past every survivor's log
	}
	for s := commitTo; s < len(r.log); s++ {
		if r.log[s] == nil {
			r.log = r.log[:s]
			break
		}
	}
	r.commitTo = commitTo
	r.applied = 0
	r.apply()
	for i, p := range r.peers {
		if i != r.me {
			r.node.Send(p, commit{GroupTag: r.Tag, CommitTo: r.commitTo})
		}
	}
	for s := r.commitTo; s < len(r.log); s++ {
		r.acks[s] = map[int]bool{r.me: true}
		for i, p := range r.peers {
			if i != r.me {
				r.node.Send(p, accept{GroupTag: r.Tag, Slot: s, Cmd: r.log[s], CommitTo: r.commitTo})
			}
		}
	}
}
