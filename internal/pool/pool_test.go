package pool

import "testing"

type obj struct{ n int }

func TestReuseLIFO(t *testing.T) {
	f := New[obj]()
	a := f.Get()
	b := f.Get()
	if a == b {
		t.Fatal("distinct Gets returned the same object")
	}
	f.Put(a)
	f.Put(b)
	// LIFO: most recently freed comes back first.
	if got := f.Get(); got != b {
		t.Fatal("expected LIFO reuse of b")
	}
	if got := f.Get(); got != a {
		t.Fatal("expected LIFO reuse of a")
	}
	if f.News != 2 || f.Gets != 4 {
		t.Fatalf("News=%d Gets=%d, want 2/4", f.News, f.Gets)
	}
}

// TestDoubleRecyclePanics is the satellite pin: with the Check detector
// armed, recycling the same object twice must panic instead of silently
// handing one struct to two owners.
func TestDoubleRecyclePanics(t *testing.T) {
	defer func(prev bool) { Check = prev }(Check)
	Check = true
	f := New[obj]()
	a := f.Get()
	f.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under pool.Check")
		}
	}()
	f.Put(a)
}

func TestPutForeignObjectPanics(t *testing.T) {
	defer func(prev bool) { Check = prev }(Check)
	Check = true
	f := New[obj]()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of never-checked-out object did not panic")
		}
	}()
	f.Put(&obj{})
}

func TestNilPutIgnored(t *testing.T) {
	f := New[obj]()
	f.Put(nil)
	if f.Get() == nil {
		t.Fatal("Get returned nil after Put(nil)")
	}
}
