// Package pool provides deterministic freelists for the transaction path.
//
// The simulator's goldens are byte-identical across -workers settings because
// every simulation is single-threaded and driven by one seeded rng; a
// sync.Pool would break that (its hit rate depends on GC timing and the
// P the goroutine happens to run on, so recycled-object identity — and any
// latent state bug — would vary run to run). A Free[T] is instead owned by
// exactly one simulated cluster (coordinator, server, or protocol instance)
// and used only from that simulation's event loop, so Get/Put order is a pure
// function of the seed. Objects handed back via Put are fully overwritten by
// the next Get site before reuse; the pool itself does not zero them.
//
// Lifecycle discipline (see README "Allocation budget"): a pooled object may
// be recycled only by code that can prove no other reference outlives the
// Put. In practice that means
//   - unicast wire messages: the receiving handler recycles after decoding,
//   - multicast payloads: each destination gets its own pooled copy,
//   - coordinator-local records: recycled when the txn finishes,
//   - anything retained by a server log (e.g. *txn.Txn): never pooled.
//
// Double frees corrupt simulations silently (two live txns sharing one
// struct), so Check mode — enabled by tests — makes Put panic on an object
// already in the pool.
package pool

// Check enables the debug double-free detector on pools created while it is
// set. Tests flip it on; the serving path leaves it off (the id map costs an
// allocation per tracked Put).
var Check bool

// Free is a LIFO freelist of *T. The zero value is NOT ready to use; create
// pools with New so the Check snapshot is taken consistently.
type Free[T any] struct {
	free  []*T
	inUse map[*T]bool // nil unless Check was set at New time

	// Gets / News count pool hits and misses for the alloc-profile
	// harness; they are not part of any golden output.
	Gets, News int
}

// New returns an empty freelist, arming the double-free detector if
// pool.Check is set.
func New[T any]() *Free[T] {
	f := &Free[T]{}
	if Check {
		f.inUse = make(map[*T]bool)
	}
	return f
}

// Get pops the most recently freed object, or allocates a fresh one when the
// freelist is empty. The caller must overwrite every field it reads.
func (f *Free[T]) Get() *T {
	f.Gets++
	n := len(f.free)
	if n == 0 {
		f.News++
		p := new(T)
		if f.inUse != nil {
			f.inUse[p] = true
		}
		return p
	}
	p := f.free[n-1]
	f.free[n-1] = nil
	f.free = f.free[:n-1]
	if f.inUse != nil {
		f.inUse[p] = true
	}
	return p
}

// Put returns an object to the freelist. With pool.Check armed, putting an
// object that is already free (or that this pool never handed out) panics —
// that is the double-recycle bug class this exists to catch.
func (f *Free[T]) Put(p *T) {
	if p == nil {
		return
	}
	if f.inUse != nil {
		if !f.inUse[p] {
			panic("pool: double free (object not checked out)")
		}
		delete(f.inUse, p)
	}
	f.free = append(f.free, p)
}
