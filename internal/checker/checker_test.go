package checker

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiga/internal/txn"
)

func c(id uint64, ts, submit, complete int64) Commit {
	return Commit{
		ID:       txn.ID{Coord: 1, Seq: id},
		TS:       txn.Timestamp{Time: time.Duration(ts), Coord: 1, Seq: id},
		Submit:   time.Duration(submit),
		Complete: time.Duration(complete),
	}
}

func TestStrictSerializabilityAccepts(t *testing.T) {
	// Sequential: 1 completes before 2 submits, ts order matches.
	if err := StrictSerializability([]Commit{
		c(1, 10, 0, 5),
		c(2, 20, 6, 12),
	}); err != nil {
		t.Fatal(err)
	}
	// Concurrent transactions may serialize either way.
	if err := StrictSerializability([]Commit{
		c(1, 20, 0, 10),
		c(2, 10, 5, 9),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStrictSerializabilityRejectsInversion(t *testing.T) {
	// 1 completes at 5; 2 submits at 6 but serializes BEFORE 1 — the
	// timestamp inversion of §3.6 / Fig 5.
	err := StrictSerializability([]Commit{
		c(1, 100, 0, 5),
		c(2, 50, 6, 12),
	})
	if err == nil {
		t.Fatal("inversion not detected")
	}
}

func TestStrictSerializabilityTies(t *testing.T) {
	// Completion at the same instant as submission is not "before".
	if err := StrictSerializability([]Commit{
		c(1, 100, 0, 5),
		c(2, 50, 5, 12),
	}); err != nil {
		t.Fatal("equal-time events must not be treated as ordered:", err)
	}
}

func TestUniqueTimestamps(t *testing.T) {
	if err := UniqueTimestamps([]Commit{c(1, 10, 0, 1), c(2, 20, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	dup := []Commit{c(1, 10, 0, 1), c(2, 10, 0, 1)}
	dup[1].TS = dup[0].TS
	if UniqueTimestamps(dup) == nil {
		t.Fatal("duplicate timestamps not detected")
	}
}

// Property: histories whose timestamp order equals completion order and
// whose transactions never overlap are always accepted.
func TestSequentialHistoriesAccepted(t *testing.T) {
	check := func(gaps []uint8) bool {
		var commits []Commit
		now := int64(0)
		for i, g := range gaps {
			start := now + int64(g)%7 + 1
			end := start + int64(g)%5 + 1
			commits = append(commits, c(uint64(i+1), end, start, end))
			now = end
		}
		return StrictSerializability(commits) == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping the timestamps of two non-overlapping transactions is
// always detected.
func TestInversionAlwaysDetected(t *testing.T) {
	check := func(a, b uint8) bool {
		s1 := int64(a)%50 + 1
		e1 := s1 + 5
		s2 := e1 + int64(b)%50 + 1
		e2 := s2 + 5
		commits := []Commit{
			c(1, e2, s1, e1), // first txn gets the LATER timestamp
			c(2, e1, s2, e2),
		}
		return StrictSerializability(commits) != nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	cnt := NewCounter()
	tx := &txn.Txn{Pieces: map[int]*txn.Piece{
		0: {WriteSet: []string{"a"}},
		1: {WriteSet: []string{"b"}},
	}}
	cnt.Committed(tx)
	cnt.Committed(tx)
	vals := map[string]int64{"a": 2, "b": 2}
	if err := cnt.Verify(func(k string) int64 { return vals[k] }); err != nil {
		t.Fatal(err)
	}
	vals["b"] = 1
	if cnt.Verify(func(k string) int64 { return vals[k] }) == nil {
		t.Fatal("lost effect not detected")
	}
	if cnt.Expected() != 2 {
		t.Fatal("Expected")
	}
}

func wts(n int64) txn.Timestamp {
	return txn.Timestamp{Time: time.Duration(n), Coord: 1, Seq: uint64(n)}
}

func TestSnapshotReadsAccepts(t *testing.T) {
	writes := []WriteEvent{{"k", wts(10)}, {"k", wts(30)}, {"q", wts(5)}}
	reads := []SnapshotRead{
		{Key: "k", At: 20, Saw: wts(10)},        // newest write at or below the snapshot
		{Key: "k", At: 30, Saw: wts(30)},        // inclusive boundary
		{Key: "k", At: 5},                       // before any write: the seeded (zero-ts) value
		{Key: "fresh", At: 50},                  // key never written
		{Key: "k", At: 40, Saw: wts(30)},        //
		{Key: "unrecorded", At: 9, Saw: wts(7)}, // writer's commit event outside the window
	}
	if err := SnapshotReads(reads, writes); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotReadsRejectsStaleReplica(t *testing.T) {
	writes := []WriteEvent{{"k", wts(10)}, {"k", wts(30)}}
	// A lying replica answered At=35 before applying the ts-30 write.
	reads := []SnapshotRead{{Key: "k", At: 35, Saw: wts(10)}}
	if SnapshotReads(reads, writes) == nil {
		t.Fatal("missed committed write not detected")
	}
	// Missing even the first write (seed returned) is detected too.
	reads = []SnapshotRead{{Key: "k", At: 15}}
	if SnapshotReads(reads, writes) == nil {
		t.Fatal("missed first write not detected")
	}
}

func TestSnapshotReadsRejectsFutureVersion(t *testing.T) {
	reads := []SnapshotRead{{Key: "k", At: 10, Saw: wts(12)}}
	if SnapshotReads(reads, nil) == nil {
		t.Fatal("future read not detected")
	}
}
