// Package checker validates Tiga's correctness properties on committed
// histories (Appendix C): strict serializability — the agreed-timestamp order
// (the serialization order, Lemma C.4) must not contradict real-time order —
// and effect completeness (every committed increment is reflected exactly
// once in the final state).
package checker

import (
	"fmt"
	"sort"
	"time"

	"tiga/internal/txn"
)

// Commit records one committed transaction as observed by a client.
type Commit struct {
	ID       txn.ID
	TS       txn.Timestamp // agreed serialization timestamp
	Submit   time.Duration // real time the transaction started
	Complete time.Duration // real time the client learned the commit
}

// StrictSerializability checks that the timestamp (serialization) order
// respects real time: if transaction i completed before transaction j was
// submitted, then ts_i < ts_j. It returns the first violation found.
//
// The check sweeps events in time order, maintaining the maximum timestamp
// among completed transactions; every submission must be assigned a larger
// timestamp than that running maximum.
func StrictSerializability(commits []Commit) error {
	type ev struct {
		at       time.Duration
		isSubmit bool
		c        *Commit
	}
	evs := make([]ev, 0, 2*len(commits))
	for i := range commits {
		c := &commits[i]
		evs = append(evs, ev{at: c.Submit, isSubmit: true, c: c})
		evs = append(evs, ev{at: c.Complete, isSubmit: false, c: c})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		// Completions before submissions at the same instant: "completed
		// before submitted" requires strictly earlier completion, so process
		// ties conservatively (completion first would be stricter; we choose
		// submission first so equal times are not treated as ordered).
		return evs[i].isSubmit && !evs[j].isSubmit
	})
	var maxTS txn.Timestamp
	var maxID txn.ID
	seen := false
	for _, e := range evs {
		if e.isSubmit {
			if seen && !maxTS.Less(e.c.TS) {
				return fmt.Errorf("strict serializability violated: txn %v (ts %v) submitted at %v after txn %v (ts %v) completed, but is serialized earlier",
					e.c.ID, e.c.TS, e.c.Submit, maxID, maxTS)
			}
		} else if !seen || maxTS.Less(e.c.TS) {
			maxTS, maxID, seen = e.c.TS, e.c.ID, true
		}
	}
	return nil
}

// UniqueTimestamps verifies the serialization order is total (no duplicate
// agreed timestamps among committed transactions).
func UniqueTimestamps(commits []Commit) error {
	seen := make(map[txn.Timestamp]txn.ID, len(commits))
	for _, c := range commits {
		if prev, dup := seen[c.TS]; dup {
			return fmt.Errorf("duplicate serialization timestamp %v for txns %v and %v", c.TS, prev, c.ID)
		}
		seen[c.TS] = c.ID
	}
	return nil
}

// SnapshotRead records one key read by a local read-only transaction: the
// snapshot timestamp the coordinator picked and the commit timestamp of the
// version the serving replica returned (zero for seeded initial values).
type SnapshotRead struct {
	Key string
	At  time.Duration
	Saw txn.Timestamp
}

// WriteEvent records one committed write to a key at its agreed
// serialization timestamp, forming the history snapshot reads are validated
// against.
type WriteEvent struct {
	Key string
	TS  txn.Timestamp
}

// SnapshotReads validates local read-only transactions against the commit
// history: a replica may delay a read, but it must never lie. Two lies are
// detectable from the observations alone:
//
//   - a future read: the returned version's commit timestamp exceeds the
//     requested snapshot (the replica served past its own promise), and
//   - a missed committed write: some transaction committed a version of the
//     key at ts <= At, yet the replica returned an older version — it
//     answered before its safe-time watermark actually covered At.
//
// The write history only includes commits the clients observed, so the
// check is sound (no false alarms) though not complete for writes still in
// flight when the run ended. It returns the first violation found.
func SnapshotReads(reads []SnapshotRead, writes []WriteEvent) error {
	byKey := make(map[string][]txn.Timestamp)
	for _, w := range writes {
		byKey[w.Key] = append(byKey[w.Key], w.TS)
	}
	for _, tss := range byKey {
		sort.Slice(tss, func(i, j int) bool { return tss[i].Less(tss[j]) })
	}
	for _, r := range reads {
		if r.Saw.Time > r.At {
			return fmt.Errorf("snapshot read of %s at %v observed a future version (committed %v)",
				r.Key, r.At, r.Saw)
		}
		tss := byKey[r.Key]
		// The newest committed write at or below the snapshot is what the
		// read must have seen (or something at least as new, when the
		// writer's client-side commit event was never recorded).
		i := sort.Search(len(tss), func(i int) bool { return tss[i].Time > r.At }) - 1
		if i >= 0 && r.Saw.Less(tss[i]) {
			return fmt.Errorf("snapshot read of %s at %v returned a stale version (saw %v, but a write committed at %v): the replica served below its safe time",
				r.Key, r.At, r.Saw, tss[i])
		}
	}
	return nil
}

// Counter tracks expected increment counts per key so the final store state
// can be validated: exactly-once application of every committed transaction.
type Counter struct {
	expected map[string]int64
}

// NewCounter returns an empty tracker.
func NewCounter() *Counter { return &Counter{expected: make(map[string]int64)} }

// Committed registers one committed increment transaction's write keys.
func (c *Counter) Committed(t *txn.Txn) {
	for _, p := range t.Pieces {
		for _, k := range p.WriteSet {
			c.expected[k]++
		}
	}
}

// Verify compares expectations against a read function (e.g. a store getter).
func (c *Counter) Verify(get func(key string) int64) error {
	for k, want := range c.expected {
		if got := get(k); got != want {
			return fmt.Errorf("key %s: value %d, want %d (lost or duplicated effects)", k, got, want)
		}
	}
	return nil
}

// Expected exposes the number of tracked keys (tests).
func (c *Counter) Expected() int { return len(c.expected) }

// VerifyAtLeast checks no committed effect was lost: each key's value must be
// at least the tracked count (use when effects outside the measurement
// window — warmup or in-flight at shutdown — may also be present).
func (c *Counter) VerifyAtLeast(get func(key string) int64) error {
	for k, want := range c.expected {
		if got := get(k); got < want {
			return fmt.Errorf("key %s: value %d < %d committed (lost effects)", k, got, want)
		}
	}
	return nil
}
