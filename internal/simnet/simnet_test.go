package simnet

import (
	"testing"
	"time"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.At(3*time.Millisecond, func() { got = append(got, 3) })
	s.At(1*time.Millisecond, func() { got = append(got, 1) })
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.At(1*time.Millisecond, func() { got = append(got, 10) }) // same time: FIFO
	s.Run(time.Second)
	want := []int{1, 10, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimAfterAndNow(t *testing.T) {
	s := NewSim(1)
	var at time.Duration
	s.After(5*time.Millisecond, func() {
		at = s.Now()
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run(time.Second)
	if at != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
	if s.Now() != time.Second {
		t.Fatalf("Run should advance to the limit; now=%v", s.Now())
	}
}

func TestSimPastEventRunsNow(t *testing.T) {
	s := NewSim(1)
	s.After(time.Millisecond, func() {
		fired := false
		s.At(0, func() { fired = true })
		s.Step()
		if !fired {
			t.Error("past-scheduled event did not run immediately")
		}
	})
	s.Run(time.Second)
}

func twoNodeNet(t *testing.T, cfg Config) (*Sim, *Network, *Node, *Node, *[]time.Duration) {
	t.Helper()
	s := NewSim(42)
	n := NewNetwork(s, cfg)
	var arrivals []time.Duration
	a := n.AddNode(0, nil)
	b := n.AddNode(1, func(from NodeID, msg Message) { arrivals = append(arrivals, s.Now()) })
	return s, n, a, b, &arrivals
}

func TestNetworkDelay(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, 10 * time.Millisecond},
		{10 * time.Millisecond, time.Millisecond},
	}, 0)}
	s, _, a, b, arrivals := twoNodeNet(t, cfg)
	a.Send(b.ID(), "hello")
	s.Run(time.Second)
	if len(*arrivals) != 1 || (*arrivals)[0] != 10*time.Millisecond {
		t.Fatalf("arrivals = %v, want [10ms]", *arrivals)
	}
}

func TestNetworkJitterBounds(t *testing.T) {
	jit := 2 * time.Millisecond
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{0, 10 * time.Millisecond},
		{10 * time.Millisecond, 0},
	}, jit)}
	s, _, a, b, arrivals := twoNodeNet(t, cfg)
	for i := 0; i < 100; i++ {
		a.Send(b.ID(), i)
	}
	s.Run(time.Second)
	if len(*arrivals) != 100 {
		t.Fatalf("got %d arrivals", len(*arrivals))
	}
	for _, at := range *arrivals {
		if at < 10*time.Millisecond || at >= 10*time.Millisecond+jit {
			t.Fatalf("arrival %v outside [10ms, 12ms)", at)
		}
	}
}

func TestNetworkLoss(t *testing.T) {
	cfg := Config{LossRate: 0.5, OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
	s, n, a, b, arrivals := twoNodeNet(t, cfg)
	for i := 0; i < 1000; i++ {
		a.Send(b.ID(), i)
	}
	s.Run(time.Second)
	got := len(*arrivals)
	if got < 350 || got > 650 {
		t.Fatalf("with 50%% loss, got %d of 1000", got)
	}
	if n.Dropped != int64(1000-got) {
		t.Fatalf("dropped counter %d, want %d", n.Dropped, 1000-got)
	}
}

func TestNodeCrashDropsTraffic(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
	s, _, a, b, arrivals := twoNodeNet(t, cfg)
	a.Send(b.ID(), 1)
	s.Run(10 * time.Millisecond)
	b.Crash()
	a.Send(b.ID(), 2)
	s.Run(20 * time.Millisecond)
	b.Restart()
	a.Send(b.ID(), 3)
	s.Run(40 * time.Millisecond)
	if len(*arrivals) != 2 {
		t.Fatalf("crashed node received %d messages, want 2", len(*arrivals))
	}
}

func TestCrashCancelsTimers(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, Config{OWD: SymmetricOWD([][]time.Duration{{0}}, 0)})
	nd := n.AddNode(0, nil)
	fired := 0
	nd.After(5*time.Millisecond, func() { fired++ })
	nd.Every(3*time.Millisecond, func() bool { fired++; return true })
	s.Run(4 * time.Millisecond) // one Every tick fires
	nd.Crash()
	s.Run(100 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("timers fired %d times after crash, want 1", fired)
	}
}

func TestPartition(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
	s, n, a, b, arrivals := twoNodeNet(t, cfg)
	n.BlockPair(a.ID(), b.ID())
	a.Send(b.ID(), 1)
	s.Run(10 * time.Millisecond)
	n.UnblockPair(a.ID(), b.ID())
	a.Send(b.ID(), 2)
	s.Run(20 * time.Millisecond)
	if len(*arrivals) != 1 {
		t.Fatalf("partition leaked: %d arrivals, want 1", len(*arrivals))
	}
}

// TestCPUSerialization: a node is a single-server queue; two messages
// arriving together are serviced back to back, and Work extends occupancy.
func TestCPUSerialization(t *testing.T) {
	s := NewSim(1)
	cfg := Config{DefaultCost: time.Millisecond, OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
	n := NewNetwork(s, cfg)
	var served []time.Duration
	a := n.AddNode(0, nil)
	b := n.AddNode(0, func(from NodeID, msg Message) {
		served = append(served, s.Now())
		if msg == 0 {
			b := n.Node(1)
			b.Work(5 * time.Millisecond)
		}
	})
	_ = b
	a.Send(1, 0)
	a.Send(1, 1)
	a.Send(1, 2)
	s.Run(time.Second)
	if len(served) != 3 {
		t.Fatalf("served %d", len(served))
	}
	// msg0 at 1ms; msg1 must wait base cost (1ms) + Work (5ms) => 7ms;
	// msg2 at 8ms.
	if served[1] != 7*time.Millisecond || served[2] != 8*time.Millisecond {
		t.Fatalf("service times %v; want [1ms 7ms 8ms]", served)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewSim(77)
		n := NewNetwork(s, GeoConfig(time.Millisecond, 0.1))
		var arrivals []time.Duration
		a := n.AddNode(RegionSouthCarolina, nil)
		n.AddNode(RegionHongKong, func(from NodeID, msg Message) { arrivals = append(arrivals, s.Now()) })
		for i := 0; i < 50; i++ {
			a.Send(1, i)
		}
		s.Run(time.Second)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic arrival count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeoConfigSymmetry(t *testing.T) {
	n := NewNetwork(NewSim(1), GeoConfig(0, 0))
	for a := Region(0); a < NumGeoRegions; a++ {
		for b := Region(0); b < NumGeoRegions; b++ {
			if n.BaseOWD(a, b) != n.BaseOWD(b, a) {
				t.Errorf("asymmetric OWD %v<->%v", RegionName(a), RegionName(b))
			}
		}
		if n.BaseOWD(a, a) != LANDelay {
			t.Errorf("intra-region OWD for %v = %v, want %v", RegionName(a), n.BaseOWD(a, a), LANDelay)
		}
	}
	// The paper: cross-region delays range from tens to ~150 ms.
	for a := Region(0); a < NumGeoRegions; a++ {
		for b := Region(0); b < NumGeoRegions; b++ {
			if a == b {
				continue
			}
			d := n.BaseOWD(a, b)
			if d < 50*time.Millisecond || d > 160*time.Millisecond {
				t.Errorf("OWD %v->%v = %v outside the paper's range", RegionName(a), RegionName(b), d)
			}
		}
	}
}

// TestRegionPartition: messages crossing a region partition are dropped (and
// counted), intra-set and third-party traffic is unaffected, and traffic
// flows again after HealRegions — the contract the chaos layer's
// wan-partition plan is built on.
func TestRegionPartition(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond, time.Millisecond},
	}, 0)}
	s := NewSim(42)
	n := NewNetwork(s, cfg)
	got := make(map[NodeID]int)
	mk := func(r Region) *Node {
		nd := n.AddNode(r, nil)
		nd.SetHandler(func(from NodeID, msg Message) { got[nd.ID()]++ })
		return nd
	}
	a, b, c := mk(0), mk(1), mk(2)

	n.PartitionRegions([]Region{0}, []Region{1})
	if !n.Partitioned(0, 1) || !n.Partitioned(1, 0) || n.Partitioned(0, 2) {
		t.Fatalf("partition state wrong: 0-1 should be cut both ways, 0-2 open")
	}
	a.Send(b.ID(), "cut")     // dropped: crosses the partition
	b.Send(a.ID(), "cut too") // dropped: partitions are bidirectional
	a.Send(c.ID(), "open")    // delivered: region 2 is on neither side
	c.Send(b.ID(), "open")    // delivered
	s.Run(10 * time.Millisecond)
	if got[b.ID()] != 1 || got[c.ID()] != 1 || got[a.ID()] != 0 {
		t.Fatalf("during partition: got %v, want only c->b and a->c delivered", got)
	}
	if n.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", n.Dropped)
	}

	n.HealRegions([]Region{0}, []Region{1})
	if n.Partitioned(0, 1) {
		t.Fatal("heal did not remove the partition")
	}
	a.Send(b.ID(), "after heal")
	b.Send(a.ID(), "after heal")
	s.Run(20 * time.Millisecond)
	if got[b.ID()] != 2 || got[a.ID()] != 1 {
		t.Fatalf("after heal: got %v, want both directions delivered", got)
	}
}

// TestDegradeLink: a runtime link fault adds one-way delay and loss to one
// region pair only, and RestoreLink returns the link to its built-in
// distribution.
func TestDegradeLink(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, 10 * time.Millisecond},
		{10 * time.Millisecond, time.Millisecond},
	}, 0)}
	s, n, a, b, arrivals := twoNodeNet(t, cfg)
	n.DegradeLink(0, 1, LinkFault{Extra: Latency{Base: 25 * time.Millisecond}})
	a.Send(b.ID(), 1)
	s.Run(50 * time.Millisecond)
	if len(*arrivals) != 1 || (*arrivals)[0] != 35*time.Millisecond {
		t.Fatalf("degraded arrivals = %v, want [35ms]", *arrivals)
	}
	n.RestoreLink(0, 1)
	a.Send(b.ID(), 2)
	s.Run(100 * time.Millisecond)
	if len(*arrivals) != 2 || (*arrivals)[1] != 60*time.Millisecond {
		t.Fatalf("restored arrivals = %v, want second at 60ms (10ms link)", *arrivals)
	}
}

// TestDegradeLinkLoss: the fault's loss probability drops messages on the
// degraded link and counts them, while other links stay lossless.
func TestDegradeLinkLoss(t *testing.T) {
	cfg := Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)}
	s, n, a, b, arrivals := twoNodeNet(t, cfg)
	n.DegradeLink(0, 1, LinkFault{Loss: 0.5})
	for i := 0; i < 1000; i++ {
		a.Send(b.ID(), i)
	}
	s.Run(time.Second)
	got := len(*arrivals)
	if got < 350 || got > 650 {
		t.Fatalf("with a 50%% faulty link, got %d of 1000", got)
	}
	if n.Dropped != int64(1000-got) {
		t.Fatalf("dropped counter %d, want %d", n.Dropped, 1000-got)
	}
}
