package simnet

import (
	"fmt"
	"sort"
	"strings"
	"time"
	"unicode"
)

// Topology is a named WAN layout: the region roster, the one-way-delay
// matrix builder, how many of the leading regions host server replicas, and
// where remote coordinators are placed by default. Topologies register
// themselves by name (mirroring the protocol registry in internal/protocol),
// so experiments select a WAN by name instead of wiring a Config by hand —
// protocol rankings are known to flip as the WAN geometry changes, which is
// exactly what the scenario-matrix experiment sweeps.
type Topology struct {
	// Name is the registry key (see TopologyNames).
	Name string
	// Doc is a one-line description surfaced by discovery tooling
	// (cmd/tigabench -topo list).
	Doc string
	// RegionNames names every region; Region r indexes into it.
	RegionNames []string
	// RegionCodes are short labels for column headers ("SC p50"); when nil,
	// codes are derived from the region names' word initials. When set, the
	// registry requires one code per region.
	RegionCodes []string
	// ServerRegions is how many of the leading regions host server
	// replicas (shard leaders rotate among these under §5.5 rotation); any
	// remaining regions host only coordinators.
	ServerRegions int
	// RemoteCoordRegion is the default placement for remote coordinators
	// (ClusterSpec.CoordsRemote) — the paper's Hong Kong analogue.
	RemoteCoordRegion Region
	// OWD builds the one-way-delay matrix with the given per-link jitter.
	OWD func(jitter time.Duration) [][]Latency
	// DefaultJitter and DefaultLoss apply when the deployment spec leaves
	// jitter/loss at zero; the degraded-WAN variants carry elevated values
	// here so selecting them by name is enough.
	DefaultJitter time.Duration
	DefaultLoss   float64
}

// NumRegions returns the total region count.
func (t *Topology) NumRegions() int { return len(t.RegionNames) }

// RegionName returns the topology's human-readable name for r.
func (t *Topology) RegionName(r Region) string {
	if int(r) < 0 || int(r) >= len(t.RegionNames) {
		return "Unknown"
	}
	return t.RegionNames[r]
}

// RegionCode returns the short column-header label for r ("SC", "HK"):
// the registered code, or the region name's word initials when none was
// declared.
func (t *Topology) RegionCode(r Region) string {
	if int(r) < 0 || int(r) >= len(t.RegionNames) {
		return "??"
	}
	if len(t.RegionCodes) == len(t.RegionNames) {
		return t.RegionCodes[r]
	}
	var code []rune
	for _, word := range strings.Fields(t.RegionNames[r]) {
		for _, c := range word {
			code = append(code, unicode.ToUpper(c))
			break
		}
	}
	return string(code)
}

// Config materializes the simulated-network configuration. Zero jitter/loss
// select the topology's defaults, so the caller only overrides what an
// experiment actually sweeps.
func (t *Topology) Config(jitter time.Duration, loss float64) Config {
	if jitter == 0 {
		jitter = t.DefaultJitter
	}
	if loss == 0 {
		loss = t.DefaultLoss
	}
	return Config{OWD: t.OWD(jitter), LossRate: loss, DefaultCost: time.Microsecond}
}

// DefaultTopology names the paper's 4-region GCP WAN, the registry's default.
const DefaultTopology = "geo4"

var topologies = map[string]*Topology{}

// RegisterTopology makes a topology available under its name. It is intended
// to be called from package init functions and panics on duplicate names or
// malformed layouts (so a topology cannot come up inconsistent, mirroring
// protocol.Register).
func RegisterTopology(t Topology) {
	if t.Name == "" || t.OWD == nil {
		panic("simnet: RegisterTopology requires a name and an OWD builder")
	}
	if _, dup := topologies[t.Name]; dup {
		panic(fmt.Sprintf("simnet: duplicate topology registration of %q", t.Name))
	}
	n := len(t.RegionNames)
	if n == 0 {
		panic(fmt.Sprintf("simnet: topology %q has no regions", t.Name))
	}
	if t.ServerRegions < 1 || t.ServerRegions > n {
		panic(fmt.Sprintf("simnet: topology %q: ServerRegions %d out of range [1, %d]", t.Name, t.ServerRegions, n))
	}
	if int(t.RemoteCoordRegion) < 0 || int(t.RemoteCoordRegion) >= n {
		panic(fmt.Sprintf("simnet: topology %q: RemoteCoordRegion %d out of range", t.Name, t.RemoteCoordRegion))
	}
	if len(t.RegionCodes) != 0 && len(t.RegionCodes) != n {
		panic(fmt.Sprintf("simnet: topology %q has %d region codes for %d regions", t.Name, len(t.RegionCodes), n))
	}
	owd := t.OWD(0)
	if len(owd) != n {
		panic(fmt.Sprintf("simnet: topology %q: OWD matrix has %d rows for %d regions", t.Name, len(owd), n))
	}
	for i, row := range owd {
		if len(row) != n {
			panic(fmt.Sprintf("simnet: topology %q: OWD row %d has %d columns for %d regions", t.Name, i, len(row), n))
		}
	}
	cp := t
	topologies[t.Name] = &cp
}

// TopologyNames returns every registered topology name, the default first,
// then alphabetically — a stable order for discovery listings and errors.
func TopologyNames() []string {
	out := make([]string, 0, len(topologies))
	for name := range topologies {
		if name != DefaultTopology {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	if _, ok := topologies[DefaultTopology]; ok {
		out = append([]string{DefaultTopology}, out...)
	}
	return out
}

// LookupTopology returns the registered topology for name.
func LookupTopology(name string) (*Topology, bool) {
	t, ok := topologies[name]
	return t, ok
}
