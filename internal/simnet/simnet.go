// Package simnet provides a deterministic discrete-event network simulator.
//
// It substitutes for the paper's Google Cloud geo-distributed testbed: nodes
// are placed in regions, messages between regions experience configurable
// one-way delays (OWDs) with jitter and loss, and each node is modeled as a
// single-server queue so that per-message CPU cost translates into throughput
// limits. All randomness flows from one seeded source, so every run is
// reproducible.
package simnet

import (
	"math/rand"
	"time"
)

// NodeID identifies a node in the simulated network.
type NodeID int

// Region identifies a geographic region (datacenter).
type Region int

// Message is an opaque payload delivered between nodes. Protocols define
// their own message structs; the simulator never inspects them.
type Message any

// Handler processes a message delivered to a node.
type Handler func(from NodeID, msg Message)

// Sim is the discrete-event simulation core: a virtual clock plus an ordered
// event queue. Events scheduled for the same instant run in scheduling order,
// which keeps runs deterministic. The queue is a specialized 4-ary heap of
// tagged event structs (see queue.go): the hot-path cases — message delivery,
// node timers, deferred CPU starts — schedule and dispatch without allocating
// a closure or boxing through an interface.
type Sim struct {
	now time.Duration
	q   eventQueue
	seq uint64
	rng *rand.Rand
}

// NewSim returns a simulator whose randomness is derived from seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// schedule stamps e with the clamped fire time and the next global sequence
// number and pushes it. Every scheduling path funnels through here, so seq
// assignment — and with it the order of same-instant events — is exactly the
// scheduling order.
func (s *Sim) schedule(t time.Duration, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	s.q.push(e)
}

// At schedules fn to run at virtual time t. Times in the past run "now".
func (s *Sim) At(t time.Duration, fn func()) {
	s.schedule(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the next pending event. It reports false when the queue is empty.
func (s *Sim) Step() bool {
	if s.q.len() == 0 {
		return false
	}
	e := s.q.pop()
	s.now = e.at
	s.dispatch(&e)
	return true
}

// dispatch fires one event by kind. Events that reached a crashed node (or a
// node that crashed and restarted since they were scheduled — the epoch
// check) are silently dropped, matching the delivery and timer contracts.
func (s *Sim) dispatch(e *event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evDeliver:
		nd := e.node
		if nd.down || nd.handler == nil {
			return
		}
		// Reserve the node's CPU (inlined runOnCPU): run the handler now
		// when the CPU is free, else once it frees up.
		start := s.now
		if nd.busyUntil > start {
			start = nd.busyUntil
		}
		nd.busyUntil = start + nd.cost
		if start == s.now {
			nd.handler(NodeID(e.from), e.msg)
			return
		}
		s.schedule(start, event{kind: evHandlerStart, node: nd, from: e.from, msg: e.msg, epoch: nd.epoch})
	case evHandlerStart:
		nd := e.node
		if nd.down || nd.epoch != e.epoch {
			return
		}
		nd.handler(NodeID(e.from), e.msg)
	case evTimer:
		nd := e.node
		if nd.down || nd.epoch != e.epoch {
			return
		}
		nd.runOnCPU(e.fn)
	case evCPUStart:
		nd := e.node
		if nd.down || nd.epoch != e.epoch {
			return
		}
		e.fn()
	case evGatedTimer:
		nd := e.node
		if nd.down || nd.epoch != e.epoch {
			return
		}
		// Reserve the CPU like any timer (a superseded arm still costs a
		// no-op callback's service time); check the gate only when fn is
		// about to run, after any CPU-queue wait.
		start := s.now
		if nd.busyUntil > start {
			start = nd.busyUntil
		}
		nd.busyUntil = start + nd.cost
		if start == s.now {
			if *e.gate == e.gseq {
				e.fn()
			}
			return
		}
		s.schedule(start, event{kind: evGatedCPUStart, node: nd, fn: e.fn, epoch: nd.epoch, gate: e.gate, gseq: e.gseq})
	case evGatedCPUStart:
		nd := e.node
		if nd.down || nd.epoch != e.epoch || *e.gate != e.gseq {
			return
		}
		e.fn()
	}
}

// Run executes events until virtual time passes `until` or the queue drains.
func (s *Sim) Run(until time.Duration) {
	for s.q.len() > 0 && s.q.min() <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll drains every pending event (useful in tests). The limit guards
// against livelock from self-rescheduling timers.
func (s *Sim) RunAll(limit int) {
	for i := 0; i < limit && s.Step(); i++ {
	}
}

// Latency describes the one-way delay distribution of a link.
type Latency struct {
	Base   time.Duration // median one-way delay
	Jitter time.Duration // uniform jitter in [0, Jitter)
}

func (l Latency) sample(rng *rand.Rand) time.Duration {
	if l.Jitter <= 0 {
		return l.Base
	}
	return l.Base + time.Duration(rng.Int63n(int64(l.Jitter)))
}

// Config describes the simulated WAN topology.
type Config struct {
	// OWD[a][b] is the one-way delay from region a to region b.
	OWD [][]Latency
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// DefaultCost is the CPU service time charged per delivered message in
	// addition to any explicit Work calls by the handler.
	DefaultCost time.Duration
}

// LinkFault is a runtime degradation installed on one directed region link:
// extra one-way delay (with its own jitter) and extra loss probability, on
// top of whatever the topology configured at build time. The chaos layer
// installs and removes these mid-run (DegradeLink / RestoreLink).
type LinkFault struct {
	Extra Latency // added to every sampled one-way delay
	Loss  float64 // additional drop probability on this link
}

// Network delivers messages between nodes placed in regions.
type Network struct {
	sim     *Sim
	cfg     Config
	nodes   []*Node
	blocked map[[2]NodeID]bool
	// partitioned blocks directed region pairs (chaos partitions). Faults
	// and partitions are looked up per send but consume no randomness while
	// absent, so a run without chaos is byte-identical to one built on a
	// network that never heard of either map.
	partitioned map[[2]Region]bool
	faults      map[[2]Region]LinkFault
	// Stats
	Sent    int64
	Dropped int64
}

// NewNetwork creates a network on top of sim.
func NewNetwork(sim *Sim, cfg Config) *Network {
	if cfg.DefaultCost <= 0 {
		cfg.DefaultCost = time.Microsecond
	}
	return &Network{sim: sim, cfg: cfg, blocked: make(map[[2]NodeID]bool),
		partitioned: make(map[[2]Region]bool), faults: make(map[[2]Region]LinkFault)}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *Sim { return n.sim }

// AddNode registers a node in a region with a message handler and returns it.
// The handler may be nil and installed later with SetHandler.
func (n *Network) AddNode(region Region, h Handler) *Node {
	nd := &Node{id: NodeID(len(n.nodes)), region: region, net: n, handler: h, cost: n.cfg.DefaultCost}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// NumNodes returns how many nodes are registered.
func (n *Network) NumNodes() int { return len(n.nodes) }

// BlockPair drops all traffic between a and b (both directions) until
// UnblockPair is called; it models a network partition between two nodes.
func (n *Network) BlockPair(a, b NodeID) {
	n.blocked[[2]NodeID{a, b}] = true
	n.blocked[[2]NodeID{b, a}] = true
}

// UnblockPair restores traffic between a and b.
func (n *Network) UnblockPair(a, b NodeID) {
	delete(n.blocked, [2]NodeID{a, b})
	delete(n.blocked, [2]NodeID{b, a})
}

// Isolate blocks traffic between node a and every other node.
func (n *Network) Isolate(a NodeID) {
	for _, nd := range n.nodes {
		if nd.id != a {
			n.BlockPair(a, nd.id)
		}
	}
}

// Heal removes all pairwise blocks involving node a.
func (n *Network) Heal(a NodeID) {
	for _, nd := range n.nodes {
		if nd.id != a {
			n.UnblockPair(a, nd.id)
		}
	}
}

// PartitionRegions cuts all traffic between region set a and region set b
// (both directions): messages crossing the cut are silently dropped, exactly
// as if the WAN link failed. Intra-set traffic is unaffected. The partition
// holds until HealRegions removes it.
func (n *Network) PartitionRegions(a, b []Region) {
	for _, ra := range a {
		for _, rb := range b {
			n.partitioned[[2]Region{ra, rb}] = true
			n.partitioned[[2]Region{rb, ra}] = true
		}
	}
}

// HealRegions removes the partition between region set a and region set b.
func (n *Network) HealRegions(a, b []Region) {
	for _, ra := range a {
		for _, rb := range b {
			delete(n.partitioned, [2]Region{ra, rb})
			delete(n.partitioned, [2]Region{rb, ra})
		}
	}
}

// Partitioned reports whether traffic from region a to region b is currently
// cut by a partition.
func (n *Network) Partitioned(a, b Region) bool {
	return n.partitioned[[2]Region{a, b}]
}

// DegradeLink installs a runtime fault on the region link a<->b (both
// directions): every message crossing it pays the extra sampled delay and is
// additionally dropped with the fault's loss probability. Installing a new
// fault on a degraded link replaces the previous fault.
func (n *Network) DegradeLink(a, b Region, f LinkFault) {
	n.faults[[2]Region{a, b}] = f
	n.faults[[2]Region{b, a}] = f
}

// RestoreLink removes any runtime fault from the region link a<->b.
func (n *Network) RestoreLink(a, b Region) {
	delete(n.faults, [2]Region{a, b})
	delete(n.faults, [2]Region{b, a})
}

// Delay samples the one-way delay from node a to node b.
func (n *Network) Delay(a, b NodeID) time.Duration {
	ra, rb := n.nodes[a].region, n.nodes[b].region
	return n.cfg.OWD[ra][rb].sample(n.sim.rng)
}

// BaseOWD returns the configured median one-way delay between two regions.
func (n *Network) BaseOWD(a, b Region) time.Duration { return n.cfg.OWD[a][b].Base }

// Send delivers msg from -> to after the link's sampled one-way delay.
// Messages depart no earlier than the sender finishes its current CPU work.
func (n *Network) Send(from, to NodeID, msg Message) {
	src, dst := n.nodes[from], n.nodes[to]
	if src.down || dst.down || n.blocked[[2]NodeID{from, to}] ||
		n.partitioned[[2]Region{src.region, dst.region}] {
		n.Dropped++
		return
	}
	if n.cfg.LossRate > 0 && n.sim.rng.Float64() < n.cfg.LossRate {
		n.Dropped++
		return
	}
	// Runtime link faults draw from the rng only while installed, so a run
	// that never degrades a link consumes the exact same random stream as
	// one on a fault-free network.
	fault, faulty := n.faults[[2]Region{src.region, dst.region}]
	if faulty && fault.Loss > 0 && n.sim.rng.Float64() < fault.Loss {
		n.Dropped++
		return
	}
	n.Sent++
	depart := n.sim.now
	if src.busyUntil > depart {
		depart = src.busyUntil
	}
	arrive := depart + n.cfg.OWD[src.region][dst.region].sample(n.sim.rng)
	if faulty {
		arrive += fault.Extra.sample(n.sim.rng)
	}
	n.sim.schedule(arrive, event{kind: evDeliver, node: dst, from: int32(from), msg: msg})
}

// Node is a simulated machine: it has a region, a message handler, and a
// single-server CPU queue. Delivered messages and timers are serviced in
// order; each charges at least the node's per-message cost, and handlers can
// charge extra via Work.
type Node struct {
	id        NodeID
	region    Region
	net       *Network
	handler   Handler
	cost      time.Duration
	busyUntil time.Duration
	down      bool
	epoch     int32 // incremented on crash to cancel in-flight timers
}

// ID returns the node's network identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Region returns the node's region.
func (nd *Node) Region() Region { return nd.region }

// SetHandler installs the message handler (for construction cycles).
func (nd *Node) SetHandler(h Handler) { nd.handler = h }

// SetCost overrides the per-message CPU cost for this node.
func (nd *Node) SetCost(d time.Duration) { nd.cost = d }

// Down reports whether the node is crashed.
func (nd *Node) Down() bool { return nd.down }

// Crash stops the node: all queued and future deliveries and timers are
// dropped until Restart.
func (nd *Node) Crash() {
	nd.down = true
	nd.epoch++
}

// Restart brings a crashed node back (protocol-level recovery is up to the
// protocol; the simulator only resumes delivery).
func (nd *Node) Restart() {
	nd.down = false
	nd.epoch++
	nd.busyUntil = nd.net.sim.now
}

// Work charges d of CPU time to the node, delaying subsequent message
// processing and the departure of messages sent later in this handler.
func (nd *Node) Work(d time.Duration) { nd.busyUntil += d }

// Busy returns the time until which the node's CPU is occupied.
func (nd *Node) Busy() time.Duration { return nd.busyUntil }

// Send sends a message from this node.
func (nd *Node) Send(to NodeID, msg Message) { nd.net.Send(nd.id, to, msg) }

// After schedules fn to run on this node's CPU after d. The timer dies if the
// node crashes before it fires.
func (nd *Node) After(d time.Duration, fn func()) {
	sim := nd.net.sim
	sim.schedule(sim.now+d, event{kind: evTimer, node: nd, fn: fn, epoch: nd.epoch})
}

// AfterGate schedules fn to run on this node's CPU after d, but only if
// *gate still equals seq when fn is about to execute. A caller that re-arms a deadline bumps
// the gate to invalidate every earlier pending arm, so a single long-lived
// closure serves all arms instead of one capturing closure per arm — the
// pattern behind Tiga's pump and safe-flush timers.
func (nd *Node) AfterGate(d time.Duration, gate *uint64, seq uint64, fn func()) {
	sim := nd.net.sim
	sim.schedule(sim.now+d, event{kind: evGatedTimer, node: nd, fn: fn, epoch: nd.epoch, gate: gate, gseq: seq})
}

// Every schedules fn to run every interval until the node crashes or fn
// returns false. The CPU-queue wrapper is hoisted out of the tick so a
// long-running loop allocates nothing per firing; `cont` is reset before each
// run because a deferred execution (busy CPU) reports through the same cell.
func (nd *Node) Every(interval time.Duration, fn func() bool) {
	epoch := nd.epoch
	cont := true
	run := func() { cont = fn() }
	var tick func()
	tick = func() {
		if nd.down || nd.epoch != epoch {
			return
		}
		cont = true
		nd.runOnCPU(run)
		if cont {
			nd.net.sim.After(interval, tick)
		}
	}
	nd.net.sim.After(interval, tick)
}

// runOnCPU serializes execution through the node's single-server queue:
// fn starts when the CPU frees up and reserves the base per-message cost.
// Message deliveries take the equivalent inlined path in dispatch (evDeliver)
// without wrapping the handler in a closure.
func (nd *Node) runOnCPU(fn func()) {
	sim := nd.net.sim
	start := sim.now
	if nd.busyUntil > start {
		start = nd.busyUntil
	}
	nd.busyUntil = start + nd.cost
	if start == sim.now {
		fn()
		return
	}
	sim.schedule(start, event{kind: evCPUStart, node: nd, fn: fn, epoch: nd.epoch})
}

// SymmetricOWD builds an OWD matrix from a symmetric distance table expressed
// as one-way delays, applying the same jitter to every link.
func SymmetricOWD(owd [][]time.Duration, jitter time.Duration) [][]Latency {
	n := len(owd)
	m := make([][]Latency, n)
	for i := range m {
		m[i] = make([]Latency, n)
		for j := range m[i] {
			m[i][j] = Latency{Base: owd[i][j], Jitter: jitter}
		}
	}
	return m
}
