package simnet

import "time"

// The non-default topologies: real geo-distributed systems are evaluated
// across heterogeneous region counts, link asymmetries, and WAN quality, and
// protocol rankings are known to flip with the geometry. Each layout below
// registers the same contract as geo4 (OWD matrix, region roster, default
// coordinator placement) so every experiment can select it by name.

// usEU3OWD is a 3-region US/EU triangle: two US coasts plus Frankfurt. The
// delays are calibrated to public inter-region RTT measurements (~60 ms
// coast-to-coast, ~90 ms Virginia–Frankfurt, ~150 ms Oregon–Frankfurt).
func usEU3OWD(jitter time.Duration) [][]Latency {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	owd := make([][]time.Duration, 3)
	for i := range owd {
		owd[i] = make([]time.Duration, 3)
		owd[i][i] = LANDelay
	}
	set := func(a, b int, d time.Duration) { owd[a][b], owd[b][a] = d, d }
	set(0, 1, ms(30)) // Virginia–Oregon: ~60 ms RTT
	set(0, 2, ms(45)) // Virginia–Frankfurt: ~90 ms RTT
	set(1, 2, ms(75)) // Oregon–Frankfurt: ~150 ms RTT
	return SymmetricOWD(owd, jitter)
}

// planet5OWD is a 5-region planet-scale layout with ASYMMETRIC links: the
// return direction runs ~15% longer than the forward direction, modeling
// routes that traverse different cables each way. Servers live in Virginia,
// Frankfurt, and Tokyo; São Paulo and Sydney host only coordinators.
func planet5OWD(jitter time.Duration) [][]Latency {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	const n = 5
	owd := make([][]Latency, n)
	for i := range owd {
		owd[i] = make([]Latency, n)
		owd[i][i] = Latency{Base: LANDelay, Jitter: jitter}
	}
	// set records an asymmetric pair: a→b at the forward delay, b→a 15% longer.
	set := func(a, b int, d time.Duration) {
		owd[a][b] = Latency{Base: d, Jitter: jitter}
		owd[b][a] = Latency{Base: d * 115 / 100, Jitter: jitter}
	}
	va, fr, tk, sp, sy := 0, 1, 2, 3, 4
	set(va, fr, ms(42))  // Virginia–Frankfurt
	set(va, tk, ms(75))  // Virginia–Tokyo
	set(va, sp, ms(60))  // Virginia–São Paulo
	set(va, sy, ms(100)) // Virginia–Sydney
	set(fr, tk, ms(115)) // Frankfurt–Tokyo
	set(fr, sp, ms(95))  // Frankfurt–São Paulo
	set(fr, sy, ms(140)) // Frankfurt–Sydney
	set(tk, sp, ms(135)) // Tokyo–São Paulo
	set(tk, sy, ms(55))  // Tokyo–Sydney
	set(sp, sy, ms(160)) // São Paulo–Sydney
	return owd
}

func init() {
	RegisterTopology(Topology{
		Name:              "us-eu3",
		Doc:               "3-region US/EU triangle (Virginia, Oregon, Frankfurt); all regions host servers, remote coordinators in Frankfurt",
		RegionNames:       []string{"Virginia", "Oregon", "Frankfurt"},
		RegionCodes:       []string{"VA", "OR", "FR"},
		ServerRegions:     3,
		RemoteCoordRegion: 2, // Frankfurt
		OWD:               usEU3OWD,
		DefaultJitter:     500 * time.Microsecond,
	})
	RegisterTopology(Topology{
		Name:              "planet5",
		Doc:               "5-region planet-scale layout with asymmetric links (return paths ~15% longer); servers in Virginia/Frankfurt/Tokyo, remote coordinators in Sydney",
		RegionNames:       []string{"Virginia", "Frankfurt", "Tokyo", "São Paulo", "Sydney"},
		RegionCodes:       []string{"VA", "FR", "TK", "SP", "SY"},
		ServerRegions:     3,
		RemoteCoordRegion: 4, // Sydney
		OWD:               planet5OWD,
		DefaultJitter:     time.Millisecond,
	})
	RegisterTopology(Topology{
		Name:              "geo4-degraded",
		Doc:               "the geo4 WAN under degraded conditions: 5 ms link jitter and 1% message loss by default",
		RegionNames:       []string{"South Carolina", "Finland", "Brazil", "Hong Kong"},
		RegionCodes:       []string{"SC", "FI", "BR", "HK"},
		ServerRegions:     3,
		RemoteCoordRegion: RegionHongKong,
		OWD:               GeoOWD,
		DefaultJitter:     5 * time.Millisecond,
		DefaultLoss:       0.01,
	})
}
