package simnet

import "time"

// eventKind tags what a scheduled event does when it fires. The common cases
// of the simulation hot path — message delivery, deferred CPU starts, node
// timers — are encoded as tagged fields on the event struct and dispatched by
// a switch, so scheduling them allocates no closure; evFunc remains as the
// escape hatch for the rare harness, chaos, and load-generator events.
type eventKind uint8

const (
	// evFunc runs fn() — the generic Sim.At/After escape hatch.
	evFunc eventKind = iota
	// evDeliver delivers msg from `from` to `node`: if the node is up and
	// has a handler, the handler runs through the node's single-server CPU
	// queue (immediately when the CPU is free, else via evHandlerStart).
	evDeliver
	// evHandlerStart runs node.handler(from, msg) once the node's CPU has
	// freed up; stale if the node crashed since (epoch mismatch).
	evHandlerStart
	// evTimer is a node timer (Node.After): epoch-checked, then fn runs
	// through the node's CPU queue.
	evTimer
	// evCPUStart runs fn once the node's CPU has freed up; stale if the
	// node crashed since (epoch mismatch).
	evCPUStart
	// evGatedTimer is a supersedable node timer (Node.AfterGate): like
	// evTimer, but fn runs only while *gate still equals gseq, so one
	// persistent closure serves every re-arm of a deadline. The gate is
	// checked when fn would RUN, not when the timer fires: a superseded
	// timer still reserves the node's CPU exactly like a timer whose
	// callback no-ops, keeping service times independent of how the
	// supersede check is expressed.
	evGatedTimer
	// evGatedCPUStart is evGatedTimer's deferred-start twin of evCPUStart:
	// the gate is re-checked once the CPU frees up.
	evGatedCPUStart
)

// event is one scheduled occurrence, ordered by (at, seq): seq is the global
// scheduling counter, so same-instant events fire in scheduling order. The
// struct is stored flat in the queue's slice — pushing and popping moves
// values, never boxes them into an interface — and is laid out to fit one
// 64-byte cache line.
type event struct {
	at   time.Duration
	seq  uint64
	node *Node
	fn   func()
	msg  Message
	// from is the sending NodeID of a delivery (narrowed: node ids are
	// slice indices, they cannot overflow int32 in any feasible topology).
	from int32
	// epoch snapshots node.epoch at scheduling time; a mismatch at fire
	// time means the node crashed in between and the event is stale.
	epoch int32
	kind  eventKind
	// gate/gseq implement evGatedTimer: the event is live only while *gate
	// still holds gseq. Callers bump the gate to supersede pending timers
	// without scheduling a fresh closure per arm.
	gate *uint64
	gseq uint64
}

// before is the queue's strict total order: time, then scheduling order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a hand-inlined 4-ary min-heap over a flat event slice. A
// 4-ary layout halves the tree depth of a binary heap and keeps each node's
// children on one cache line, and the flat slice doubles as the free list:
// pop vacates a zeroed slot at the tail that the next push reuses, so
// steady-state scheduling allocates nothing once the queue has reached its
// high-water capacity.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// min returns the earliest pending time; the queue must be non-empty.
func (q *eventQueue) min() time.Duration { return q.ev[0].at }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift the new tail up to its slot.
	ev := q.ev
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&ev[p]) {
			break
		}
		ev[i] = ev[p]
		i = p
	}
	ev[i] = e
}

func (q *eventQueue) pop() event {
	ev := q.ev
	top := ev[0]
	n := len(ev) - 1
	e := ev[n]
	ev[n] = event{} // zero the vacated slot: drop msg/fn/node references
	q.ev = ev[:n]
	if n == 0 {
		return top
	}
	// Sift the displaced tail element down from the root.
	ev = q.ev
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if ev[c].before(&ev[m]) {
				m = c
			}
		}
		if !ev[m].before(&e) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
	return top
}
