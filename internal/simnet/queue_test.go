package simnet

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap is a container/heap reference implementation with the
// exact comparison the pre-rewrite simulator used: order by (at, seq). The
// specialized 4-ary queue must pop in the identical total order — that
// equivalence is what keeps every golden output byte-identical across the
// rewrite.
type refEvent struct {
	at  time.Duration
	seq uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventQueueMatchesHeapReference drives the 4-ary queue and the
// container/heap reference through randomized interleaved push/pop workloads
// with heavy timestamp ties and checks every popped (at, seq) pair matches.
func TestEventQueueMatchesHeapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var q eventQueue
		var ref refHeap
		seq := uint64(0)
		check := func() {
			got := q.pop()
			want := heap.Pop(&ref).(refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: pop = (%v, %d), reference heap = (%v, %d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		for i := 0; i < 400; i++ {
			// A tiny time domain forces same-instant ties, the case the
			// seq tie-break exists for.
			at := time.Duration(rng.Intn(16)) * time.Millisecond
			seq++
			q.push(event{at: at, seq: seq})
			heap.Push(&ref, refEvent{at: at, seq: seq})
			if rng.Intn(3) == 0 {
				check()
			}
		}
		for q.len() > 0 {
			check()
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference heap has %d leftover events", trial, ref.Len())
		}
	}
}

// TestEventQueueSameInstantFIFO pins the determinism contract at the queue
// level: events pushed for the same instant pop in push order, regardless of
// what else is in flight.
func TestEventQueueSameInstantFIFO(t *testing.T) {
	var q eventQueue
	const at = 5 * time.Millisecond
	for seq := uint64(1); seq <= 64; seq++ {
		q.push(event{at: at, seq: seq})
		// Interleave events at other instants to shuffle the heap shape.
		q.push(event{at: time.Duration(seq%7) * time.Millisecond, seq: 1000 + seq})
	}
	last := uint64(0)
	for q.len() > 0 {
		e := q.pop()
		if e.seq >= 1000 { // filler event
			continue
		}
		if e.at != at {
			t.Fatalf("tracked event %d popped with at=%v, want %v", e.seq, e.at, at)
		}
		if e.seq <= last {
			t.Fatalf("same-instant events out of scheduling order: seq %d after %d", e.seq, last)
		}
		last = e.seq
	}
	if last != 64 {
		t.Fatalf("drained up to seq %d, want 64", last)
	}
}

// TestEventQueueSteadyStateAllocFree is the free-list contract: once the
// queue has hit its high-water capacity, schedule/fire cycles reuse vacated
// slots and allocate nothing.
func TestEventQueueSteadyStateAllocFree(t *testing.T) {
	s := NewSim(1)
	fn := func() {}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1024; i++ {
		s.At(time.Duration(rng.Int63n(int64(time.Second))), fn)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		s.After(time.Duration(rng.Int63n(int64(time.Millisecond))), fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects per event, want 0", allocs)
	}
}

// TestSendSteadyStateAllocFree covers the full message-delivery hot path:
// Send -> tagged deliver event -> handler dispatch must not allocate once
// the queue capacity has warmed up.
func TestSendSteadyStateAllocFree(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, Config{OWD: SymmetricOWD([][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}, 0)})
	src := n.AddNode(0, nil)
	n.AddNode(1, func(from NodeID, msg Message) {})
	msg := Message(&struct{ x int }{x: 1})
	allocs := testing.AllocsPerRun(2000, func() {
		src.Send(1, msg)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Send+deliver allocates %.1f objects per message, want 0", allocs)
	}
}

// TestCrashDropsDeferredHandler: a message whose handler is queued behind a
// busy CPU dies with the node — the epoch check on the deferred handler-start
// event, which replaced the closure's captured epoch.
func TestCrashDropsDeferredHandler(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, Config{DefaultCost: 5 * time.Millisecond,
		OWD: SymmetricOWD([][]time.Duration{
			{time.Millisecond, time.Millisecond},
			{time.Millisecond, time.Millisecond},
		}, 0)})
	src := n.AddNode(0, nil)
	handled := 0
	dst := n.AddNode(1, func(from NodeID, msg Message) { handled++ })
	// Both messages arrive at 1ms; the first runs immediately and occupies
	// the CPU until 6ms, so the second's handler is deferred to 6ms.
	src.Send(1, "a")
	src.Send(1, "b")
	s.At(3*time.Millisecond, func() { dst.Crash() })
	s.Run(20 * time.Millisecond)
	if handled != 1 {
		t.Fatalf("handled %d messages, want 1 (deferred handler must die with the crash)", handled)
	}

	// A crash+restart cycle before the deferred start must also drop it:
	// the epoch advanced, the reservation belongs to the dead incarnation.
	handled = 0
	dst.Restart()
	s.Run(30 * time.Millisecond)
	src.Send(1, "c")
	src.Send(1, "d")
	s.At(s.Now()+3*time.Millisecond, func() { dst.Crash(); dst.Restart() })
	s.Run(s.Now() + 20*time.Millisecond)
	if handled != 1 {
		t.Fatalf("handled %d messages after crash+restart, want 1", handled)
	}
}
