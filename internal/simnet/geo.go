package simnet

import "time"

// The paper's deployment: servers replicated across South Carolina (us-east1),
// Finland (europe-north1), and Brazil (southamerica-east1), plus remote
// coordinators in Hong Kong (asia-east2). The one-way delays below are
// calibrated to public GCP inter-region RTT measurements and match the
// paper's statement that cross-region delays range from 60 ms to 150 ms.
const (
	RegionSouthCarolina Region = iota
	RegionFinland
	RegionBrazil
	RegionHongKong
	NumGeoRegions
)

// RegionName returns a human-readable region name.
func RegionName(r Region) string {
	switch r {
	case RegionSouthCarolina:
		return "South Carolina"
	case RegionFinland:
		return "Finland"
	case RegionBrazil:
		return "Brazil"
	case RegionHongKong:
		return "Hong Kong"
	}
	return "Unknown"
}

// LANDelay is the intra-region one-way delay.
const LANDelay = 250 * time.Microsecond

// GeoOWD returns the 4-region one-way delay matrix used by every experiment.
func GeoOWD(jitter time.Duration) [][]Latency {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	sc, fi, br, hk := RegionSouthCarolina, RegionFinland, RegionBrazil, RegionHongKong
	owd := make([][]time.Duration, NumGeoRegions)
	for i := range owd {
		owd[i] = make([]time.Duration, NumGeoRegions)
		owd[i][i] = LANDelay
	}
	set := func(a, b Region, d time.Duration) { owd[a][b], owd[b][a] = d, d }
	set(sc, fi, ms(55))  // ~110 ms RTT
	set(sc, br, ms(62))  // ~124 ms RTT
	set(fi, br, ms(105)) // ~210 ms RTT
	set(hk, sc, ms(100)) // ~200 ms RTT
	set(hk, fi, ms(92))  // ~184 ms RTT
	set(hk, br, ms(150)) // ~300 ms RTT
	return SymmetricOWD(owd, jitter)
}

// GeoConfig is the standard 4-region WAN used throughout the evaluation.
func GeoConfig(jitter time.Duration, loss float64) Config {
	return Config{OWD: GeoOWD(jitter), LossRate: loss, DefaultCost: time.Microsecond}
}

func init() {
	RegisterTopology(Topology{
		Name:              DefaultTopology, // "geo4"
		Doc:               "the paper's §5.1 GCP WAN: South Carolina, Finland, Brazil servers; Hong Kong remote coordinators (60–150 ms OWDs)",
		RegionNames:       []string{"South Carolina", "Finland", "Brazil", "Hong Kong"},
		RegionCodes:       []string{"SC", "FI", "BR", "HK"},
		ServerRegions:     3,
		RemoteCoordRegion: RegionHongKong,
		OWD:               GeoOWD,
		DefaultJitter:     500 * time.Microsecond,
	})
}
