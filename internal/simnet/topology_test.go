package simnet

import (
	"strings"
	"testing"
	"time"
)

// TestTopologyRegistryComplete pins the canonical topology set: a layout
// missing here was either renamed or lost its init-time registration. The
// default comes first so discovery listings lead with the paper's WAN.
func TestTopologyRegistryComplete(t *testing.T) {
	want := []string{"geo4", "geo4-degraded", "planet5", "us-eu3"}
	got := TopologyNames()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopologyNames()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	for _, name := range want {
		topo, ok := LookupTopology(name)
		if !ok {
			t.Fatalf("LookupTopology(%q) = false", name)
		}
		if topo.NumRegions() < 3 || topo.ServerRegions < 1 || topo.ServerRegions > topo.NumRegions() {
			t.Fatalf("%s: implausible shape: %d regions, %d server regions", name, topo.NumRegions(), topo.ServerRegions)
		}
		if topo.RegionName(Region(topo.NumRegions())) != "Unknown" {
			t.Fatalf("%s: out-of-range region did not map to Unknown", name)
		}
	}
	if _, ok := LookupTopology("nosuch"); ok {
		t.Fatal("LookupTopology accepted an unregistered name")
	}
}

// TestGeo4TopologyMatchesGeoConfig guards the byte-for-byte default: the
// registered geo4 topology must materialize exactly the Config every
// pre-registry experiment built via GeoConfig, including the 500 µs jitter
// default the harness used to apply by hand.
func TestGeo4TopologyMatchesGeoConfig(t *testing.T) {
	topo, _ := LookupTopology(DefaultTopology)
	got := topo.Config(0, 0)
	want := GeoConfig(500*time.Microsecond, 0)
	if got.LossRate != want.LossRate || got.DefaultCost != want.DefaultCost {
		t.Fatalf("geo4 config differs: %+v vs %+v", got, want)
	}
	for i := range want.OWD {
		for j := range want.OWD[i] {
			if got.OWD[i][j] != want.OWD[i][j] {
				t.Fatalf("geo4 OWD[%d][%d] = %+v, want %+v", i, j, got.OWD[i][j], want.OWD[i][j])
			}
		}
	}
	for r := 0; r < topo.NumRegions(); r++ {
		if topo.RegionName(Region(r)) != RegionName(Region(r)) {
			t.Fatalf("geo4 region %d named %q, want %q", r, topo.RegionName(Region(r)), RegionName(Region(r)))
		}
	}
}

// TestPlanet5Asymmetry pins the planet5 layout's defining property: the
// return direction of every inter-region link is slower than the forward
// direction.
func TestPlanet5Asymmetry(t *testing.T) {
	topo, _ := LookupTopology("planet5")
	owd := topo.OWD(0)
	asym := 0
	for a := 0; a < topo.NumRegions(); a++ {
		for b := a + 1; b < topo.NumRegions(); b++ {
			if owd[a][b].Base != owd[b][a].Base {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("planet5 has no asymmetric links")
	}
}

// TestDegradedTopologyDefaults verifies selecting the degraded WAN by name is
// enough to get elevated jitter and loss — no per-spec overrides needed.
func TestDegradedTopologyDefaults(t *testing.T) {
	topo, _ := LookupTopology("geo4-degraded")
	cfg := topo.Config(0, 0)
	if cfg.LossRate == 0 {
		t.Fatal("degraded WAN has no default loss")
	}
	if cfg.OWD[0][1].Jitter < time.Millisecond {
		t.Fatalf("degraded WAN jitter %v not elevated", cfg.OWD[0][1].Jitter)
	}
	// An explicit override still wins.
	cfg = topo.Config(100*time.Microsecond, 0.2)
	if cfg.LossRate != 0.2 || cfg.OWD[0][1].Jitter != 100*time.Microsecond {
		t.Fatalf("explicit jitter/loss did not override the defaults: %+v", cfg.OWD[0][1])
	}
}

// TestRegisterTopologyValidation pins the registration failure modes.
func TestRegisterTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		want string
	}{
		{"missing owd", Topology{Name: "x", RegionNames: []string{"a"}, ServerRegions: 1}, "OWD builder"},
		{"duplicate", Topology{Name: "geo4", RegionNames: []string{"a"}, ServerRegions: 1,
			OWD: func(j time.Duration) [][]Latency { return [][]Latency{{{}}} }}, "duplicate"},
		{"bad server regions", Topology{Name: "x", RegionNames: []string{"a"}, ServerRegions: 2,
			OWD: func(j time.Duration) [][]Latency { return [][]Latency{{{}}} }}, "ServerRegions"},
		{"bad coord region", Topology{Name: "x", RegionNames: []string{"a"}, ServerRegions: 1, RemoteCoordRegion: 5,
			OWD: func(j time.Duration) [][]Latency { return [][]Latency{{{}}} }}, "RemoteCoordRegion"},
		{"bad matrix", Topology{Name: "x", RegionNames: []string{"a", "b"}, ServerRegions: 1,
			OWD: func(j time.Duration) [][]Latency { return [][]Latency{{{}}} }}, "OWD matrix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("RegisterTopology accepted %q", tc.name)
				}
				if s, _ := r.(string); !strings.Contains(s, tc.want) {
					t.Fatalf("panic %q does not mention %q", r, tc.want)
				}
			}()
			RegisterTopology(tc.topo)
		})
	}
}

// TestRegionCodes pins the short column-header labels: registered codes win,
// the paper's WAN keeps its SC/HK initials, and topologies without declared
// codes fall back to word initials.
func TestRegionCodes(t *testing.T) {
	geo4, _ := LookupTopology(DefaultTopology)
	if geo4.RegionCode(0) != "SC" || geo4.RegionCode(geo4.RemoteCoordRegion) != "HK" {
		t.Fatalf("geo4 codes = %q/%q, want SC/HK",
			geo4.RegionCode(0), geo4.RegionCode(geo4.RemoteCoordRegion))
	}
	useu, _ := LookupTopology("us-eu3")
	if useu.RegionCode(2) != "FR" {
		t.Fatalf("us-eu3 Frankfurt code = %q, want FR", useu.RegionCode(2))
	}
	// Fallback derivation: no declared codes → word initials, upper-cased.
	anon := Topology{RegionNames: []string{"South Carolina", "tokyo"}}
	if got := anon.RegionCode(0); got != "SC" {
		t.Fatalf("derived code = %q, want SC", got)
	}
	if got := anon.RegionCode(1); got != "T" {
		t.Fatalf("derived code = %q, want T", got)
	}
	if got := anon.RegionCode(9); got != "??" {
		t.Fatalf("out-of-range code = %q, want ??", got)
	}
}
