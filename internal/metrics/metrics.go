// Package metrics collects the measurements reported in the paper's
// evaluation: throughput, commit rate, latency percentiles (p50/p90), and
// per-second time series for the failure-recovery experiment (Fig 11).
package metrics

import (
	"fmt"
	"slices"
	"time"
)

// Latency accumulates latency samples and answers percentile queries.
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Grow ensures capacity for n further samples, so a run that knows its
// expected commit count up front (open-loop rate × duration × coordinators)
// records every sample without reallocating the buffer.
func (l *Latency) Grow(n int) {
	if n <= 0 || cap(l.samples)-len(l.samples) >= n {
		return
	}
	grown := make([]time.Duration, len(l.samples), len(l.samples)+n)
	copy(grown, l.samples)
	l.samples = grown
}

// Percentile returns the p-th percentile (p in [0,100]); 0 with no samples.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		slices.Sort(l.samples)
		l.sorted = true
	}
	idx := int(p / 100 * float64(len(l.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Mean returns the average sample.
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Series buckets counts into fixed-width time bins — the throughput-vs-time
// view in Fig 11.
type Series struct {
	Bucket time.Duration
	counts []int64
}

// NewSeries returns a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series { return &Series{Bucket: bucket} }

// Add increments the bin containing t. Events from before the series origin
// (negative t — e.g. a completion stamped against a window that started
// later) clamp into bucket 0 instead of indexing off the front of the slice.
func (s *Series) Add(t time.Duration) {
	i := int(t / s.Bucket)
	if i < 0 {
		i = 0
	}
	for len(s.counts) <= i {
		s.counts = append(s.counts, 0)
	}
	s.counts[i]++
}

// Rate returns per-bucket counts converted to events/second.
func (s *Series) Rate() []float64 {
	out := make([]float64, len(s.counts))
	for i, c := range s.counts {
		out[i] = float64(c) / s.Bucket.Seconds()
	}
	return out
}

// Counters tracks outcome counts for one run.
type Counters struct {
	Submitted int64
	Committed int64
	Aborted   int64
	FastPath  int64
	SlowPath  int64
	Rollbacks int64 // Tiga Case-3 revocations
	Retries   int64
	// LocalReads counts read-only transactions served from a nearby
	// replica at their snapshot timestamp instead of via the coordinator
	// path. They are included in Committed.
	LocalReads int64
	// Shed counts transactions refused by a coordinator admission gate
	// under overload. They are included in Aborted.
	Shed int64
}

// CommitRate returns committed/submitted as a percentage.
func (c *Counters) CommitRate() float64 {
	if c.Submitted == 0 {
		return 0
	}
	return 100 * float64(c.Committed) / float64(c.Submitted)
}

// RollbackRate returns rollbacks/committed as a percentage (Fig 13).
func (c *Counters) RollbackRate() float64 {
	if c.Committed == 0 {
		return 0
	}
	return 100 * float64(c.Rollbacks) / float64(c.Committed)
}

// Run aggregates the metrics for one experiment run, optionally keeping
// separate latency recorders per region (Figs 7, 8, 12, 14).
type Run struct {
	Counters Counters
	Lat      Latency
	ByRegion map[string]*Latency
	Thpt     *Series
	Start    time.Duration
	End      time.Duration
	// ReadLat samples end-to-end latency of read-only transactions on
	// whichever path served them (coordinator or local), so the two paths
	// compare like for like.
	ReadLat Latency
	// LocalWait samples the SAFETIME delay local reads spent blocked
	// behind a lagging replica watermark (zero when served immediately).
	LocalWait Latency
	// QueueLat samples the admission-queue wait of committed transactions
	// in open-loop runs; Lat then holds service latency (queue excluded),
	// so the two decompose end-to-end time.
	QueueLat Latency
	// Phase accumulates the critical-path latency decomposition of traced
	// committed transactions (internal/trace bucket order: wrtt, queue,
	// headroom, lockval, repl, other). Zero unless the run was traced.
	Phase PhaseLat
}

// PhaseLat sums per-bucket critical-path time over committed transactions.
// The array is indexed by trace.Bucket; metrics stays taxonomy-agnostic (the
// breakdown experiment names the columns) so the dependency points from the
// trace layer to metrics, never back.
type PhaseLat struct {
	NS    [6]time.Duration
	Count int64
}

// Add accumulates one transaction's bucket breakdown.
func (p *PhaseLat) Add(bd [6]time.Duration) {
	for i, d := range bd {
		p.NS[i] += d
	}
	p.Count++
}

// Mean returns the average per-transaction time in bucket i.
func (p *PhaseLat) Mean(i int) time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.NS[i] / time.Duration(p.Count)
}

// Total returns the summed attribution across buckets.
func (p *PhaseLat) Total() time.Duration {
	var t time.Duration
	for _, d := range p.NS {
		t += d
	}
	return t
}

// NewRun returns an initialized Run with 1-second throughput bins.
func NewRun() *Run {
	return &Run{ByRegion: make(map[string]*Latency), Thpt: NewSeries(time.Second)}
}

// RecordCommit records a commit observed at virtual time now with the given
// latency, attributed to a region label.
func (r *Run) RecordCommit(now, lat time.Duration, region string, fastPath bool) {
	r.Counters.Committed++
	if fastPath {
		r.Counters.FastPath++
	} else {
		r.Counters.SlowPath++
	}
	r.Lat.Add(lat)
	rl := r.ByRegion[region]
	if rl == nil {
		rl = &Latency{}
		r.ByRegion[region] = rl
	}
	rl.Add(lat)
	r.Thpt.Add(now)
}

// RecordLocalRead records a read-only transaction served from a nearby
// replica: it counts as a commit (local-read bucket), samples the read-path
// latency, and tracks the SAFETIME wait separately.
func (r *Run) RecordLocalRead(now, lat, waited time.Duration, region string) {
	r.RecordCommit(now, lat, region, true)
	r.Counters.LocalReads++
	r.ReadLat.Add(lat)
	r.LocalWait.Add(waited)
}

// Throughput returns committed transactions per second over the run window.
func (r *Run) Throughput() float64 {
	dur := (r.End - r.Start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(r.Counters.Committed) / dur
}

// String summarizes the run with the figures the experiments actually
// report: the tail percentile (p99) alongside p50/p90, and the serving-layer
// outcomes (shed, local reads) next to the path split.
func (r *Run) String() string {
	return fmt.Sprintf("thpt=%.0f txn/s commit=%.1f%% p50=%s p90=%s p99=%s fast=%d slow=%d rollback=%d shed=%d local=%d",
		r.Throughput(), r.Counters.CommitRate(), r.Lat.Percentile(50), r.Lat.Percentile(90),
		r.Lat.Percentile(99), r.Counters.FastPath, r.Counters.SlowPath, r.Counters.Rollbacks,
		r.Counters.Shed, r.Counters.LocalReads)
}
