package metrics

import (
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if p := l.Percentile(50); p < 49*time.Millisecond || p > 51*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(90); p < 89*time.Millisecond || p > 91*time.Millisecond {
		t.Fatalf("p90 = %v", p)
	}
	if l.Percentile(0) != time.Millisecond || l.Percentile(100) != 100*time.Millisecond {
		t.Fatal("extremes")
	}
	if l.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v", l.Mean())
	}
}

func TestPercentileEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(50) != 0 || l.Mean() != 0 {
		t.Fatal("empty recorder should return 0")
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var l Latency
	l.Add(3 * time.Millisecond)
	l.Add(time.Millisecond)
	_ = l.Percentile(50)
	l.Add(2 * time.Millisecond) // invalidates sort
	if l.Percentile(100) != 3*time.Millisecond {
		t.Fatal("re-sort after Add failed")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(100 * time.Millisecond)
	s.Add(900 * time.Millisecond)
	s.Add(1500 * time.Millisecond)
	r := s.Rate()
	if len(r) != 2 || r[0] != 2 || r[1] != 1 {
		t.Fatalf("rate = %v", r)
	}
}

func TestCounters(t *testing.T) {
	c := Counters{Submitted: 200, Committed: 150, Rollbacks: 30}
	if c.CommitRate() != 75 {
		t.Fatalf("commit rate %v", c.CommitRate())
	}
	if c.RollbackRate() != 20 {
		t.Fatalf("rollback rate %v", c.RollbackRate())
	}
	var zero Counters
	if zero.CommitRate() != 0 || zero.RollbackRate() != 0 {
		t.Fatal("zero division")
	}
}

func TestRunAggregation(t *testing.T) {
	r := NewRun()
	r.Start, r.End = 0, 2*time.Second
	r.RecordCommit(500*time.Millisecond, 100*time.Millisecond, "SC", true)
	r.RecordCommit(1500*time.Millisecond, 200*time.Millisecond, "HK", false)
	if r.Throughput() != 1 {
		t.Fatalf("throughput %v", r.Throughput())
	}
	if r.Counters.FastPath != 1 || r.Counters.SlowPath != 1 {
		t.Fatal("path counters")
	}
	if r.ByRegion["SC"].Count() != 1 || r.ByRegion["HK"].Count() != 1 {
		t.Fatal("region split")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}
