package metrics

import (
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if p := l.Percentile(50); p < 49*time.Millisecond || p > 51*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(90); p < 89*time.Millisecond || p > 91*time.Millisecond {
		t.Fatalf("p90 = %v", p)
	}
	if l.Percentile(0) != time.Millisecond || l.Percentile(100) != 100*time.Millisecond {
		t.Fatal("extremes")
	}
	if l.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v", l.Mean())
	}
}

func TestPercentileEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(50) != 0 || l.Mean() != 0 {
		t.Fatal("empty recorder should return 0")
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var l Latency
	l.Add(3 * time.Millisecond)
	l.Add(time.Millisecond)
	_ = l.Percentile(50)
	l.Add(2 * time.Millisecond) // invalidates sort
	if l.Percentile(100) != 3*time.Millisecond {
		t.Fatal("re-sort after Add failed")
	}
}

// TestPercentilePin pins exact percentile outputs over a fixed LCG-shuffled
// sample set, so sort-implementation changes (sort.Slice → slices.Sort) that
// alter results — not just speed — fail loudly.
func TestPercentilePin(t *testing.T) {
	var l Latency
	l.Grow(1000)
	x := uint64(42)
	for i := 0; i < 1000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		l.Add(time.Duration(x%1_000_000) * time.Microsecond)
	}
	pins := []struct {
		p    float64
		want time.Duration
	}{
		{0, 607 * time.Microsecond},
		{50, 522102 * time.Microsecond},
		{90, 915936 * time.Microsecond},
		{99, 987411 * time.Microsecond},
		{100, 999594 * time.Microsecond},
	}
	for _, pin := range pins {
		if got := l.Percentile(pin.p); got != pin.want {
			t.Errorf("p%v = %v, want %v", pin.p, got, pin.want)
		}
	}
}

func TestGrowPreservesSamplesAndCapacity(t *testing.T) {
	var l Latency
	l.Add(7 * time.Millisecond)
	l.Grow(100)
	if cap(l.samples)-len(l.samples) < 100 {
		t.Fatalf("Grow(100) left headroom %d", cap(l.samples)-len(l.samples))
	}
	before := cap(l.samples)
	for i := 0; i < 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if cap(l.samples) != before {
		t.Fatal("Adds within grown capacity reallocated")
	}
	if l.Percentile(100) != 99*time.Millisecond || l.Percentile(0) != 0 {
		t.Fatal("samples corrupted by Grow")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(100 * time.Millisecond)
	s.Add(900 * time.Millisecond)
	s.Add(1500 * time.Millisecond)
	r := s.Rate()
	if len(r) != 2 || r[0] != 2 || r[1] != 1 {
		t.Fatalf("rate = %v", r)
	}
}

// Pre-window events (negative t) must clamp into bucket 0, not panic on a
// negative index.
func TestSeriesNegativeTimeClamps(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(-1500 * time.Millisecond) // would index bucket -2
	s.Add(-1 * time.Nanosecond)
	s.Add(500 * time.Millisecond)
	r := s.Rate()
	if len(r) != 1 || r[0] != 3 {
		t.Fatalf("rate = %v, want all three events clamped into bucket 0", r)
	}
}

func TestPhaseLat(t *testing.T) {
	var p PhaseLat
	p.Add([6]time.Duration{100 * time.Millisecond, 0, 20 * time.Millisecond, 0, 40 * time.Millisecond, 10 * time.Millisecond})
	p.Add([6]time.Duration{200 * time.Millisecond, 0, 40 * time.Millisecond, 0, 0, 0})
	if p.Count != 2 {
		t.Fatalf("count %d", p.Count)
	}
	if p.Mean(0) != 150*time.Millisecond || p.Mean(2) != 30*time.Millisecond {
		t.Fatalf("means %v %v", p.Mean(0), p.Mean(2))
	}
	if p.Total() != 410*time.Millisecond {
		t.Fatalf("total %v", p.Total())
	}
	var zero PhaseLat
	if zero.Mean(0) != 0 {
		t.Fatal("zero-count mean")
	}
}

func TestCounters(t *testing.T) {
	c := Counters{Submitted: 200, Committed: 150, Rollbacks: 30}
	if c.CommitRate() != 75 {
		t.Fatalf("commit rate %v", c.CommitRate())
	}
	if c.RollbackRate() != 20 {
		t.Fatalf("rollback rate %v", c.RollbackRate())
	}
	var zero Counters
	if zero.CommitRate() != 0 || zero.RollbackRate() != 0 {
		t.Fatal("zero division")
	}
}

func TestRunAggregation(t *testing.T) {
	r := NewRun()
	r.Start, r.End = 0, 2*time.Second
	r.RecordCommit(500*time.Millisecond, 100*time.Millisecond, "SC", true)
	r.RecordCommit(1500*time.Millisecond, 200*time.Millisecond, "HK", false)
	if r.Throughput() != 1 {
		t.Fatalf("throughput %v", r.Throughput())
	}
	if r.Counters.FastPath != 1 || r.Counters.SlowPath != 1 {
		t.Fatal("path counters")
	}
	if r.ByRegion["SC"].Count() != 1 || r.ByRegion["HK"].Count() != 1 {
		t.Fatal("region split")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}
