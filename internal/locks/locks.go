// Package locks implements a shared/exclusive lock table with the wound-wait
// deadlock-prevention policy used by the 2PL+Paxos baseline (§5.1) and the
// lock stages of decomposed interactive transactions (Appendix F).
//
// Wound-wait: lock requests carry a priority (lower value = older = higher
// priority). An older requester "wounds" (aborts) younger holders; a younger
// requester waits behind older holders.
package locks

import "tiga/internal/txn"

// Mode is the lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

type holder struct {
	id   txn.ID
	prio uint64
	mode Mode
}

type waiter struct {
	holder
	grant func()
}

type lock struct {
	holders []holder
	queue   []waiter
}

// Table is a per-shard lock table.
type Table struct {
	locks map[string]*lock
	// Wound is invoked when an older transaction wounds a younger holder;
	// the protocol must abort that holder and eventually ReleaseAll it.
	Wound func(victim txn.ID)
	held  map[txn.ID][]string
	// queued tracks the keys on which a transaction has waiting (never
	// granted) requests, in request order, so ReleaseAll can purge them
	// deterministically — grant callbacks run synchronously and feed the
	// simulation's event order, so map-iteration order here would make whole
	// runs diverge.
	queued map[txn.ID][]string
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{locks: make(map[string]*lock), held: make(map[txn.ID][]string),
		queued: make(map[txn.ID][]string)}
}

func compatible(hs []holder, m Mode) bool {
	if len(hs) == 0 {
		return true
	}
	if m == Exclusive {
		return false
	}
	for _, h := range hs {
		if h.mode == Exclusive {
			return false
		}
	}
	return true
}

// Acquire requests key in mode m for transaction id with priority prio.
// It returns true when granted immediately. Otherwise wound-wait applies:
// if id is older than every incompatible holder, those holders are wounded
// (via the Wound callback) and id waits for the grant callback; if id is
// younger than any incompatible holder it also waits. Acquire never returns
// false for a queued request — cancellation happens via ReleaseAll.
func (t *Table) Acquire(key string, m Mode, id txn.ID, prio uint64, grant func()) bool {
	l := t.locks[key]
	if l == nil {
		l = &lock{}
		t.locks[key] = l
	}
	// Re-entrant upgrade-free fast path.
	for i, h := range l.holders {
		if h.id == id {
			if m == Exclusive && h.mode == Shared {
				if len(l.holders) == 1 {
					l.holders[i].mode = Exclusive
					return true
				}
				break
			}
			return true
		}
	}
	if compatible(l.holders, m) && len(l.queue) == 0 {
		l.holders = append(l.holders, holder{id: id, prio: prio, mode: m})
		t.held[id] = append(t.held[id], key)
		return true
	}
	// Wound younger incompatible holders.
	if t.Wound != nil {
		for _, h := range l.holders {
			if h.prio > prio && !(m == Shared && h.mode == Shared) {
				t.Wound(h.id)
			}
		}
	}
	l.queue = append(l.queue, waiter{holder: holder{id: id, prio: prio, mode: m}, grant: grant})
	t.queued[id] = append(t.queued[id], key)
	return false
}

// ReleaseAll drops every lock and queued request owned by id, granting any
// now-compatible waiters (their grant callbacks run synchronously, in the
// deterministic order the requests were made).
func (t *Table) ReleaseAll(id txn.ID) {
	keys := t.held[id]
	queued := t.queued[id]
	delete(t.held, id)
	delete(t.queued, id)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		t.release(k, id)
	}
	// Also purge queued (never-granted) requests on other keys.
	for _, key := range queued {
		if seen[key] {
			continue
		}
		seen[key] = true
		l := t.locks[key]
		if l == nil {
			continue
		}
		for i := 0; i < len(l.queue); {
			if l.queue[i].id == id {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
			} else {
				i++
			}
		}
		t.grantWaiters(key, l)
	}
}

func (t *Table) release(key string, id txn.ID) {
	l := t.locks[key]
	if l == nil {
		return
	}
	for i := 0; i < len(l.holders); {
		if l.holders[i].id == id {
			l.holders = append(l.holders[:i], l.holders[i+1:]...)
		} else {
			i++
		}
	}
	for i := 0; i < len(l.queue); {
		if l.queue[i].id == id {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
		} else {
			i++
		}
	}
	t.grantWaiters(key, l)
}

func (t *Table) grantWaiters(key string, l *lock) {
	for len(l.queue) > 0 && compatible(l.holders, l.queue[0].mode) {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.holders = append(l.holders, w.holder)
		t.held[w.id] = append(t.held[w.id], key)
		if w.grant != nil {
			w.grant()
		}
	}
	if len(l.holders) == 0 && len(l.queue) == 0 {
		delete(t.locks, key)
	}
}

// Holds reports whether id currently holds key.
func (t *Table) Holds(key string, id txn.ID) bool {
	l := t.locks[key]
	if l == nil {
		return false
	}
	for _, h := range l.holders {
		if h.id == id {
			return true
		}
	}
	return false
}

// Outstanding returns the number of keys with holders or waiters.
func (t *Table) Outstanding() int { return len(t.locks) }
