package locks

import (
	"testing"

	"tiga/internal/txn"
)

func id(n uint64) txn.ID { return txn.ID{Coord: 1, Seq: n} }

func TestSharedCompatible(t *testing.T) {
	lt := NewTable()
	if !lt.Acquire("k", Shared, id(1), 1, nil) {
		t.Fatal("first shared lock should grant")
	}
	if !lt.Acquire("k", Shared, id(2), 2, nil) {
		t.Fatal("second shared lock should grant")
	}
	if !lt.Holds("k", id(1)) || !lt.Holds("k", id(2)) {
		t.Fatal("Holds")
	}
}

func TestExclusiveBlocks(t *testing.T) {
	lt := NewTable()
	lt.Acquire("k", Exclusive, id(1), 1, nil)
	granted := false
	// Younger (higher prio value) waits.
	if lt.Acquire("k", Exclusive, id(2), 2, func() { granted = true }) {
		t.Fatal("conflicting exclusive lock must not grant immediately")
	}
	if granted {
		t.Fatal("grant callback fired too early")
	}
	lt.ReleaseAll(id(1))
	if !granted {
		t.Fatal("waiter not granted after release")
	}
	if !lt.Holds("k", id(2)) {
		t.Fatal("waiter should hold the lock now")
	}
}

func TestWoundWait(t *testing.T) {
	lt := NewTable()
	var wounded []txn.ID
	lt.Wound = func(v txn.ID) { wounded = append(wounded, v) }
	// Younger txn (prio 10) holds; older (prio 1) requests: wound.
	lt.Acquire("k", Exclusive, id(2), 10, nil)
	lt.Acquire("k", Exclusive, id(1), 1, func() {})
	if len(wounded) != 1 || wounded[0] != id(2) {
		t.Fatalf("wounded = %v, want [id(2)]", wounded)
	}
	// Older holds; younger requests: no wound, just wait.
	wounded = nil
	lt2 := NewTable()
	lt2.Wound = func(v txn.ID) { wounded = append(wounded, v) }
	lt2.Acquire("k", Exclusive, id(1), 1, nil)
	lt2.Acquire("k", Exclusive, id(2), 10, func() {})
	if len(wounded) != 0 {
		t.Fatalf("young requester wounded the old holder: %v", wounded)
	}
}

func TestSharedHoldersNotWoundedByOlderShared(t *testing.T) {
	lt := NewTable()
	var wounded []txn.ID
	lt.Wound = func(v txn.ID) { wounded = append(wounded, v) }
	lt.Acquire("k", Shared, id(2), 10, nil)
	lt.Acquire("k", Shared, id(1), 1, nil) // shared-shared compatible
	if len(wounded) != 0 {
		t.Fatalf("shared-shared should not wound: %v", wounded)
	}
}

func TestUpgrade(t *testing.T) {
	lt := NewTable()
	lt.Acquire("k", Shared, id(1), 1, nil)
	if !lt.Acquire("k", Exclusive, id(1), 1, nil) {
		t.Fatal("sole shared holder should upgrade")
	}
	if lt.Acquire("k", Shared, id(2), 2, func() {}) {
		t.Fatal("upgraded lock should exclude others")
	}
}

func TestReleaseAllPurgesQueuedRequests(t *testing.T) {
	lt := NewTable()
	lt.Acquire("a", Exclusive, id(1), 1, nil)
	fired := false
	lt.Acquire("a", Exclusive, id(2), 2, func() { fired = true })
	// id(2) also holds b.
	lt.Acquire("b", Exclusive, id(2), 2, nil)
	lt.ReleaseAll(id(2))
	// Releasing id(1) must NOT grant the purged waiter.
	lt.ReleaseAll(id(1))
	if fired {
		t.Fatal("purged waiter was granted")
	}
	if lt.Outstanding() != 0 {
		t.Fatalf("%d locks left, want 0", lt.Outstanding())
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	lt := NewTable()
	lt.Acquire("k", Exclusive, id(1), 1, nil)
	var order []uint64
	lt.Acquire("k", Exclusive, id(2), 2, func() { order = append(order, 2) })
	lt.Acquire("k", Exclusive, id(3), 3, func() { order = append(order, 3) })
	lt.ReleaseAll(id(1))
	lt.ReleaseAll(id(2))
	lt.ReleaseAll(id(3))
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("grant order %v, want [2 3]", order)
	}
}

func TestQueuedRequestBlocksNewShared(t *testing.T) {
	lt := NewTable()
	lt.Acquire("k", Shared, id(1), 1, nil)
	lt.Acquire("k", Exclusive, id(2), 2, func() {})
	// A new shared request must queue behind the waiting exclusive one
	// (no starvation of writers).
	if lt.Acquire("k", Shared, id(3), 3, func() {}) {
		t.Fatal("shared request jumped the exclusive waiter")
	}
}
