package protocol

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// KnobType is the declared type of a tuning knob.
type KnobType int

// Knob value types.
const (
	KnobBool KnobType = iota
	KnobInt
	KnobFloat
	KnobDuration
)

func (t KnobType) String() string {
	switch t {
	case KnobBool:
		return "bool"
	case KnobInt:
		return "int"
	case KnobFloat:
		return "float"
	case KnobDuration:
		return "duration"
	}
	return fmt.Sprintf("KnobType(%d)", int(t))
}

// Knob declares one named tunable of a protocol: its type, the default the
// protocol runs with when the knob is not set, and a doc string surfaced by
// discovery tooling (cmd/tigabench -knobs).
type Knob struct {
	Name    string
	Type    KnobType
	Default any
	Doc     string
}

// Schema is the ordered set of knobs a protocol registers alongside its
// factory. Order is presentation order; names must be unique.
type Schema []Knob

// Validate panics on malformed schemas — Register runs it at init time so a
// protocol cannot come up with an inconsistent knob declaration. `owner`
// names the registrant in the panic message; other registries reusing the
// schema machinery (the workload registry) run it with their own prefix.
func (s Schema) Validate(owner string) {
	seen := make(map[string]bool, len(s))
	for _, k := range s {
		if k.Name == "" {
			panic(fmt.Sprintf("%s: knob with empty name", owner))
		}
		if seen[k.Name] {
			panic(fmt.Sprintf("%s: duplicate knob %q", owner, k.Name))
		}
		seen[k.Name] = true
		if _, err := coerce(k.Type, k.Default); err != nil {
			panic(fmt.Sprintf("%s: knob %q default %v: %v", owner, k.Name, k.Default, err))
		}
	}
}

// Find returns the declared knob with the given name.
func (s Schema) Find(name string) (Knob, bool) {
	for _, k := range s {
		if k.Name == name {
			return k, true
		}
	}
	return Knob{}, false
}

// Names returns the knob names in declaration order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, k := range s {
		out[i] = k.Name
	}
	return out
}

// Values is a validated knob assignment: after Schema.Resolve every declared
// knob is present with its canonical Go type, so the typed getters below
// cannot fail at run time — a panic from one means the factory asked for a
// knob its schema never declared, which is a programming error.
type Values map[string]any

// Resolve validates a raw knob override map against the schema: unknown
// names and type mismatches are errors, and knobs absent from raw are filled
// with their declared defaults. raw may be nil.
func (s Schema) Resolve(raw map[string]any) (Values, error) {
	out := make(Values, len(s))
	for _, k := range s {
		v, _ := coerce(k.Type, k.Default)
		out[k.Name] = v
	}
	// Deterministic error selection: report the alphabetically first bad key.
	keys := make([]string, 0, len(raw))
	for name := range raw {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	for _, name := range keys {
		k, ok := s.Find(name)
		if !ok {
			return nil, fmt.Errorf("unknown knob %q (valid: %s)", name, strings.Join(s.Names(), ", "))
		}
		v, err := coerce(k.Type, raw[name])
		if err != nil {
			return nil, fmt.Errorf("knob %q: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// coerce normalizes v to the canonical Go type for t (bool, int, float64,
// time.Duration), accepting only the conversions that cannot lose meaning.
func coerce(t KnobType, v any) (any, error) {
	switch t {
	case KnobBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case KnobInt:
		switch n := v.(type) {
		case int:
			return n, nil
		case int64:
			return int(n), nil
		}
	case KnobFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case int:
			return float64(n), nil
		}
	case KnobDuration:
		if d, ok := v.(time.Duration); ok {
			return d, nil
		}
	}
	return nil, fmt.Errorf("want %s, got %T (%v)", t, v, v)
}

// ParseValue parses a CLI string into the knob's declared type (used by
// cmd/tigabench -set).
func ParseValue(k Knob, s string) (any, error) {
	switch k.Type {
	case KnobBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("knob %q: %q is not a bool", k.Name, s)
		}
		return b, nil
	case KnobInt:
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("knob %q: %q is not an int", k.Name, s)
		}
		return n, nil
	case KnobFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("knob %q: %q is not a float", k.Name, s)
		}
		return f, nil
	case KnobDuration:
		d, err := time.ParseDuration(s)
		if err != nil {
			return nil, fmt.Errorf("knob %q: %q is not a duration (try 10ms, 2s)", k.Name, s)
		}
		return d, nil
	}
	return nil, fmt.Errorf("knob %q: unsupported type %v", k.Name, k.Type)
}

// Bool returns a validated bool knob.
func (v Values) Bool(name string) bool { return v[name].(bool) }

// Int returns a validated int knob.
func (v Values) Int(name string) int { return v[name].(int) }

// Float returns a validated float knob.
func (v Values) Float(name string) float64 { return v[name].(float64) }

// Duration returns a validated duration knob.
func (v Values) Duration(name string) time.Duration { return v[name].(time.Duration) }
