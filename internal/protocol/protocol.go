// Package protocol defines the protocol-independent contract between the
// experiment harness and the transaction protocols, and a registry through
// which protocols make themselves available by name.
//
// Each protocol package registers itself in an init function, declaring its
// tunable knobs alongside the factory:
//
//	func init() {
//		protocol.Register("Tapir", protocol.CostProfile{Exec: 5, Rank: 30},
//			protocol.Schema{
//				{Name: "max-retries", Type: protocol.KnobInt, Default: 5,
//					Doc: "client retries before reporting an abort"},
//			},
//			func(ctx *protocol.BuildContext) protocol.System { ... })
//	}
//
// The harness resolves a deployment with protocol.Build, which looks up the
// factory, converts the protocol's CostProfile into absolute CPU costs,
// type-checks the knob overrides in BuildContext.Knobs against the schema
// (filling declared defaults), and hands the factory a BuildContext carrying
// the network, placement, seeding, and validated knob values. Nothing in the
// harness names a concrete protocol type; optional abilities (serialization-
// timestamp checking, fault injection) are discovered through the capability
// interfaces below.
package protocol

import (
	"fmt"
	"sort"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// System is the protocol-independent submission interface every registered
// protocol implements.
type System interface {
	// Submit routes a transaction through the given coordinator index.
	Submit(coord int, t *txn.Txn, done func(txn.Result))
	// NumCoords returns the coordinator count.
	NumCoords() int
	// Start launches the system's periodic tasks; call once before running
	// the simulator.
	Start()
}

// Checkable is implemented by systems whose commit results carry globally
// agreed serialization timestamps (txn.Result.TS), making them eligible for
// the strict-serializability checker, and which expose per-shard leader
// stores for effect verification against committed history.
type Checkable interface {
	System
	// LeaderStore returns the current leader replica's store for a shard.
	LeaderStore(shard int) *store.Store
}

// Faultable is implemented by systems that support the paper's failure and
// recovery experiments (Fig 11) and the chaos layer's crash plans: crashing
// a replica mid-run and rebooting it with empty state. ServerGrid reports
// the addressable server grid, so a generic fault driver (the chaos applier)
// can enumerate targets — "every replica of shard 1", "all servers in
// region 0" — without naming a concrete protocol type.
type Faultable interface {
	System
	// ServerGrid returns the replica grid: shards × replicas per shard.
	// KillServer/RestartServer accept any (shard, replica) inside it;
	// replicas a deployment does not materialize are no-ops.
	ServerGrid() (shards, replicas int)
	KillServer(shard, replica int)
	RestartServer(shard, replica int)
}

// RollbackReporter is implemented by systems that execute speculatively and
// can revoke tentative executions; the count feeds the Fig 13 rollback-rate
// column.
type RollbackReporter interface {
	TotalRollbacks() int64
}

// SnapshotReadable is implemented by systems that maintain a monotonic
// safe-time watermark per replica and can serve read-only transactions from
// the nearest replica of each shard at 0 WRTT: the coordinator picks a
// snapshot timestamp, each touched replica answers from its multi-version
// store once its watermark passes the snapshot (blocking only for that
// SAFETIME delay), and the result reports which committed versions were
// observed so the snapshot-read checker can validate them against the
// commit history. The machinery is knob-gated per protocol ("local-reads",
// default off); SubmitLocalRead on a system built without the knob is
// undefined.
type SnapshotReadable interface {
	System
	// SubmitLocalRead routes a read-only transaction from coordinator
	// coord to the nearest replica of each shard it touches.
	SubmitLocalRead(coord int, t *txn.Txn, done func(txn.Result))
	// SafeTimes returns every replica's current safe-time watermark in
	// shard-major order (shard*replicas + replica), for staleness
	// measurement.
	SafeTimes() []time.Duration
}

// CostProfile declares a protocol's CPU-cost multipliers relative to the
// harness base units — the per-piece execution budget calibrated once against
// Table 1's MicroBench saturation throughputs (the paper's n2-standard-16
// testbed) and held fixed across every experiment. The multipliers reflect
// each protocol's per-transaction server work: Tiga's timestamp ordering is
// the cheapest; lock managers, per-replica OCC validation, RTC bookkeeping,
// and dependency graphs cost more.
type CostProfile struct {
	// Exec scales the base per-piece execution cost.
	Exec int
	// Aux scales the base tick cost charged to auxiliary bookkeeping
	// (dependency-graph visits, priority-queue maintenance). Zero if the
	// protocol has no such component.
	Aux int
	// Rank orders Names() into the paper's canonical Table 1 column order.
	Rank int
}

// BuildContext carries everything a Factory needs to assemble a deployment.
// ExecCost and AuxCost arrive already resolved from the protocol's
// CostProfile and the harness base units.
type BuildContext struct {
	Net *simnet.Network
	// Shards is the shard count m; F the tolerated failures per shard
	// (2f+1 replicas where the protocol replicates).
	Shards int
	F      int
	// Regions is the number of distinct server regions (3 in the paper's
	// testbed).
	Regions int
	// Rotated separates leaders (or home shards) across regions (§5.5,
	// Table 2); each protocol applies its own placement policy.
	Rotated bool
	// CoordRegions lists one region per coordinator.
	CoordRegions []simnet.Region
	// ServerRegion maps (shard, replica) to a region under the current
	// rotation policy.
	ServerRegion func(shard, replica int) simnet.Region
	// SeedStore pre-populates one shard's store (also used to rebuild
	// stores during recovery replay).
	SeedStore func(shard int, st *store.Store)
	// Clocks supplies per-node synchronized clocks for protocols that use
	// them.
	Clocks *clocks.Factory
	// ExecCost is the resolved per-piece execution budget
	// (CostProfile.Exec × base unit).
	ExecCost time.Duration
	// AuxCost is the resolved auxiliary tick cost (CostProfile.Aux × base
	// tick unit).
	AuxCost time.Duration
	// Knobs carries the knob overrides for the protocol being built, keyed
	// by knob name. Callers may leave it nil or sparse; Build validates it
	// against the protocol's registered Schema (rejecting unknown names and
	// type mismatches), fills the declared defaults, and replaces the field
	// with the resolved Values — so factories read it through the typed
	// getters (ctx.Knobs.Duration("delta"), ...) without nil checks.
	Knobs Values
}

// Factory assembles a ready-to-start System from a BuildContext.
type Factory func(ctx *BuildContext) System

type entry struct {
	cost  CostProfile
	knobs Schema
	build Factory
}

var registry = map[string]entry{}

// Register makes a protocol available under name, with the given knob
// schema. It is intended to be called from package init functions and panics
// on duplicate names, nil factories, or malformed schemas.
func Register(name string, cost CostProfile, knobs Schema, build Factory) {
	if name == "" || build == nil {
		panic("protocol: Register requires a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", name))
	}
	knobs.Validate("protocol " + name)
	registry[name] = entry{cost: cost, knobs: knobs, build: build}
}

// Names returns every registered protocol in the paper's canonical order
// (CostProfile.Rank, then name).
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := registry[out[i]].cost.Rank, registry[out[j]].cost.Rank
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}

// Registered reports whether name has a registered factory.
func Registered(name string) bool {
	_, ok := registry[name]
	return ok
}

// Profile returns the registered cost profile for name.
func Profile(name string) (CostProfile, bool) {
	e, ok := registry[name]
	return e.cost, ok
}

// Knobs returns the registered knob schema for name (discovery: the CLI's
// -knobs listing and -set validation).
func Knobs(name string) (Schema, bool) {
	e, ok := registry[name]
	return e.knobs, ok
}

// ResolveKnobs validates raw knob overrides for name against its registered
// schema without building anything (CLI validation, tests).
func ResolveKnobs(name string, raw map[string]any) (Values, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %v)", name, Names())
	}
	return e.knobs.Resolve(raw)
}

// Build looks up name's factory, resolves the protocol's CostProfile against
// the given base units into ctx.ExecCost / ctx.AuxCost, validates ctx.Knobs
// against the registered knob schema (filling defaults), and invokes the
// factory. It returns an error naming the valid protocols when name is
// unknown, or the valid knobs when an override does not type-check.
func Build(name string, ctx *BuildContext, execUnit, auxUnit time.Duration) (System, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %v)", name, Names())
	}
	vals, err := e.knobs.Resolve(ctx.Knobs)
	if err != nil {
		return nil, fmt.Errorf("protocol %s: %w", name, err)
	}
	ctx.Knobs = vals
	ctx.ExecCost = time.Duration(e.cost.Exec) * execUnit
	ctx.AuxCost = time.Duration(e.cost.Aux) * auxUnit
	return e.build(ctx), nil
}
