// Knob-schema validation tests. Like the registry smoke test, this lives in
// an external test package and imports the harness so every protocol's
// init-time registration (and knob schema) is present.
package protocol_test

import (
	"strings"
	"testing"
	"time"

	_ "tiga/internal/harness"
	"tiga/internal/protocol"
	"tiga/internal/tiga"
)

// TestEveryProtocolDeclaresKnobs pins the PR acceptance bar: every
// registered protocol exposes at least one documented, type-checked knob.
func TestEveryProtocolDeclaresKnobs(t *testing.T) {
	for _, name := range protocol.Names() {
		schema, ok := protocol.Knobs(name)
		if !ok {
			t.Fatalf("Knobs(%q) not found", name)
		}
		if len(schema) == 0 {
			t.Fatalf("protocol %s registers no knobs", name)
		}
		for _, k := range schema {
			if k.Doc == "" {
				t.Errorf("%s.%s has no doc string", name, k.Name)
			}
		}
	}
}

// TestKnobValidationPerProtocol exercises the three validation outcomes for
// every registered protocol: unknown knob names are rejected with the valid
// list, type mismatches are rejected naming the expected type, and an empty
// override resolves to the declared defaults.
func TestKnobValidationPerProtocol(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			schema, _ := protocol.Knobs(name)

			// Unknown knob name.
			_, err := protocol.ResolveKnobs(name, map[string]any{"no-such-knob": 1})
			if err == nil {
				t.Fatal("unknown knob accepted")
			}
			if !strings.Contains(err.Error(), schema[0].Name) {
				t.Fatalf("unknown-knob error %q does not list the valid knobs", err)
			}

			// Wrong type for every declared knob (struct{}{} matches none).
			for _, k := range schema {
				if _, err := protocol.ResolveKnobs(name, map[string]any{k.Name: struct{}{}}); err == nil {
					t.Fatalf("knob %s accepted a struct{} value", k.Name)
				} else if !strings.Contains(err.Error(), k.Type.String()) {
					t.Fatalf("type error %q does not name the expected type %s", err, k.Type)
				}
			}

			// Default fill-in: nil resolves to every declared default.
			vals, err := protocol.ResolveKnobs(name, nil)
			if err != nil {
				t.Fatalf("defaults do not resolve: %v", err)
			}
			if len(vals) != len(schema) {
				t.Fatalf("resolved %d values for %d declared knobs", len(vals), len(schema))
			}
			for _, k := range schema {
				if _, ok := vals[k.Name]; !ok {
					t.Fatalf("knob %s missing from resolved defaults", k.Name)
				}
			}

			// Partial override: one knob set, the rest defaulted.
			first := schema[0]
			over := differentValue(first)
			vals, err = protocol.ResolveKnobs(name, map[string]any{first.Name: over})
			if err != nil {
				t.Fatalf("override rejected: %v", err)
			}
			if vals[first.Name] == defaultOf(first) {
				t.Fatalf("override of %s did not take", first.Name)
			}
			for _, k := range schema[1:] {
				if vals[k.Name] != defaultOf(k) {
					t.Fatalf("knob %s lost its default under a partial override", k.Name)
				}
			}
		})
	}
}

// differentValue returns a valid value for k that differs from its default.
func differentValue(k protocol.Knob) any {
	switch k.Type {
	case protocol.KnobBool:
		return !k.Default.(bool)
	case protocol.KnobInt:
		return k.Default.(int) + 7
	case protocol.KnobFloat:
		return k.Default.(float64) + 7
	case protocol.KnobDuration:
		return k.Default.(time.Duration) + 7*time.Millisecond
	}
	panic("unhandled knob type")
}

func defaultOf(k protocol.Knob) any { return k.Default }

// TestParseValue covers the CLI string parser for every knob type.
func TestParseValue(t *testing.T) {
	cases := []struct {
		typ  protocol.KnobType
		in   string
		want any
		bad  string
	}{
		{protocol.KnobBool, "true", true, "maybe"},
		{protocol.KnobInt, "42", 42, "4.5"},
		{protocol.KnobFloat, "2.5", 2.5, "fast"},
		{protocol.KnobDuration, "15ms", 15 * time.Millisecond, "15"},
	}
	for _, c := range cases {
		k := protocol.Knob{Name: "k", Type: c.typ}
		got, err := protocol.ParseValue(k, c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseValue(%s, %q) = %v, %v; want %v", c.typ, c.in, got, err, c.want)
		}
		if _, err := protocol.ParseValue(k, c.bad); err == nil {
			t.Errorf("ParseValue(%s, %q) accepted garbage", c.typ, c.bad)
		}
	}
}

// TestTigaKnobDefaultsMatchConfig pins the knob schema's defaults to
// tiga.DefaultConfig, so the two cannot drift apart silently (building with
// no overrides must reproduce the evaluation configuration).
func TestTigaKnobDefaultsMatchConfig(t *testing.T) {
	cfg := tiga.DefaultConfig(3, 1)
	vals, err := protocol.ResolveKnobs("Tiga", nil)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]any{
		"delta":                cfg.Delta,
		"headroom-delta":       cfg.HeadroomDelta,
		"zero-headroom":        cfg.ZeroHeadroom,
		"epsilon-bound":        cfg.EpsilonBound,
		"colocation-threshold": cfg.ColocationThreshold,
		"retry-timeout":        cfg.RetryTimeout,
		"sync-point-every":     cfg.SyncPointEvery,
		"batch-slow-replies":   cfg.BatchSlowReplies,
		"checkpoint-every":     cfg.CheckpointEvery,
	}
	for name, want := range checks {
		if vals[name] != want {
			t.Errorf("Tiga knob %s default %v drifted from DefaultConfig %v", name, vals[name], want)
		}
	}
}
