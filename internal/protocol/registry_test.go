// The smoke test lives in an external test package so it can drive the
// registry through the harness (which imports protocol) without a cycle.
// Importing the harness also pulls in every protocol's self-registration.
package protocol_test

import (
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/harness"
	"tiga/internal/protocol"
	"tiga/internal/workload"
)

// TestRegistryComplete pins the canonical registration set: a protocol
// missing here was either renamed or lost its init-time Register call.
func TestRegistryComplete(t *testing.T) {
	want := []string{"2PL+Paxos", "OCC+Paxos", "Tapir", "Janus", "Calvin+", "NCC", "NCC+", "Detock", "Tiga"}
	got := protocol.Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	for _, name := range want {
		if !protocol.Registered(name) {
			t.Fatalf("Registered(%q) = false", name)
		}
		if p, ok := protocol.Profile(name); !ok || p.Exec <= 0 {
			t.Fatalf("Profile(%q) = %+v, %v; want a positive Exec multiplier", name, p, ok)
		}
	}
}

// TestRegistrySmoke builds every registered protocol on a tiny cluster,
// commits transactions through it, and requires nonzero commits — so a new
// protocol cannot register without actually working end to end.
func TestRegistrySmoke(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			gen := workload.NewMicroBench(3, 500, 0.5)
			d := harness.Build(harness.ClusterSpec{
				Protocol: name, Shards: 3, F: 1, Clock: clocks.ModelChrony,
				CoordsPerRegion: 1, Seed: 31, Gen: gen,
			})
			if d.Sys == nil {
				t.Fatal("Build returned a nil system")
			}
			if got := d.Sys.NumCoords(); got != 3 {
				t.Fatalf("NumCoords() = %d, want 3", got)
			}
			res := harness.RunLoad(d, gen, harness.LoadSpec{
				RatePerCoord: 20, Warmup: 500 * time.Millisecond,
				Duration: 2 * time.Second, Seed: 5,
			})
			if res.Run.Counters.Committed == 0 {
				t.Fatalf("%s committed no transactions (submitted %d)",
					name, res.Run.Counters.Submitted)
			}
		})
	}
}

// TestBuildUnknownProtocol verifies the registry rejects unknown names with
// an error listing the valid ones.
func TestBuildUnknownProtocol(t *testing.T) {
	_, err := protocol.Build("NoSuchProtocol", &protocol.BuildContext{}, time.Microsecond, time.Nanosecond)
	if err == nil {
		t.Fatal("Build accepted an unregistered protocol")
	}
}
