package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The JSON emitter produces one self-describing document per tigabench run:
// schema tag, run-wide generation parameters, and every experiment's report
// with typed, unit-carrying columns. Cells are emitted as bare JSON values
// (durations as integer nanoseconds) and decoded back through the column
// declarations, so Encode → Decode → Render reproduces the text output
// byte-for-byte — the property the round-trip test pins.

// Schema tags the document layout. Bump on incompatible changes so artifact
// diffing across PRs can refuse mismatched generations.
const Schema = "tiga-report/v1"

// Generated records the run-wide parameters the document was produced under.
type Generated struct {
	Seed     int64 `json:"seed"`
	Quick    bool  `json:"quick,omitempty"`
	CPUScale int   `json:"cpu_scale,omitempty"`
}

// Document is the machine-readable artifact: every experiment of one
// tigabench invocation.
type Document struct {
	Schema      string    `json:"schema"`
	Generated   Generated `json:"generated"`
	Experiments []*Report `json:"experiments"`
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	if d.Schema == "" {
		d.Schema = Schema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Decode parses a document and validates its schema tag.
func Decode(r io.Reader) (*Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("report: document schema %q, want %q", d.Schema, Schema)
	}
	return &d, nil
}

// MarshalJSON emits the kind's stable string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON inverts MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kk, err := kindFromString(s)
	if err != nil {
		return err
	}
	*k = kk
	return nil
}

// MarshalJSON emits the cell as its bare value: string, integer, float, or
// integer nanoseconds for durations. The column carries the kind, so no
// per-cell type tag is needed.
func (c Cell) MarshalJSON() ([]byte, error) {
	switch c.Kind {
	case String:
		return json.Marshal(c.Str)
	case Int:
		return json.Marshal(c.Int)
	case Float:
		return json.Marshal(c.Float)
	case Duration:
		return json.Marshal(int64(c.Dur))
	}
	return nil, fmt.Errorf("report: cell kind %v", c.Kind)
}

// tableJSON mirrors Table with rows as raw values, so UnmarshalJSON can
// coerce each cell through its column's declared kind.
type tableJSON struct {
	ID      string            `json:"id,omitempty"`
	Title   string            `json:"title,omitempty"`
	Gap     bool              `json:"gap,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
	Columns []Column          `json:"columns,omitempty"`
	Rows    [][]any           `json:"rows,omitempty"`
	Notes   []string          `json:"notes,omitempty"`
}

// UnmarshalJSON rebuilds typed cells from bare JSON values using the column
// declarations.
func (t *Table) UnmarshalJSON(b []byte) error {
	var raw tableJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*t = Table{ID: raw.ID, Title: raw.Title, Gap: raw.Gap, Meta: raw.Meta,
		Columns: raw.Columns, Notes: raw.Notes}
	for ri, row := range raw.Rows {
		if len(row) != len(raw.Columns) {
			return fmt.Errorf("report: table %q row %d has %d cells for %d columns",
				raw.ID, ri, len(row), len(raw.Columns))
		}
		cells := make([]Cell, len(row))
		for i, v := range row {
			c, err := cellFromJSON(raw.Columns[i].Kind, v)
			if err != nil {
				return fmt.Errorf("report: table %q row %d column %q: %w",
					raw.ID, ri, raw.Columns[i].Name, err)
			}
			cells[i] = c
		}
		t.Rows = append(t.Rows, cells)
	}
	return nil
}

// cellFromJSON coerces one decoded JSON value to the column's kind.
// encoding/json hands every number over as float64; integers and durations
// in the experiments' range (well under 2^53) convert back exactly.
func cellFromJSON(k Kind, v any) (Cell, error) {
	switch k {
	case String:
		s, ok := v.(string)
		if !ok {
			return Cell{}, fmt.Errorf("want string, got %T", v)
		}
		return Str(s), nil
	case Int:
		f, ok := v.(float64)
		if !ok {
			return Cell{}, fmt.Errorf("want number, got %T", v)
		}
		return CountOf(int64(f)), nil
	case Float:
		f, ok := v.(float64)
		if !ok {
			return Cell{}, fmt.Errorf("want number, got %T", v)
		}
		return Num(f), nil
	case Duration:
		f, ok := v.(float64)
		if !ok {
			return Cell{}, fmt.Errorf("want number, got %T", v)
		}
		return Dur(time.Duration(int64(f))), nil
	}
	return Cell{}, fmt.Errorf("unknown kind %v", k)
}
