// Package report is the typed result model every experiment builds instead
// of printing: a Report is an ordered list of named tables whose rows hold
// typed cells (strings, counts, floats, durations) under unit-carrying
// columns. Renderers turn the same model into the paper's text presentation
// (byte-identical to the pre-model fmt output on defaults), a self-describing
// JSON document CI archives and future PRs diff against, or CSV for
// spreadsheet tooling. The model is the contract: experiments know nothing
// about presentation, renderers know nothing about protocols.
package report

import (
	"fmt"
	"time"
)

// Kind is the value type of a column (and of every cell under it).
type Kind int

// Cell value kinds.
const (
	String Kind = iota
	Int
	Float
	Duration
)

func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Duration:
		return "duration"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindFromString inverts Kind.String (JSON decoding).
func kindFromString(s string) (Kind, error) {
	for _, k := range []Kind{String, Int, Float, Duration} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("report: unknown column kind %q", s)
}

// Unit names what a column measures, carried into the JSON/CSV emitters so
// the artifact is self-describing. Text rendering ignores units (the headers
// already spell them out, e.g. "Thpt(txn/s)").
type Unit string

// The units the experiments report.
const (
	None    Unit = ""
	Rate    Unit = "txn/s"
	Percent Unit = "percent"
	Count   Unit = "count"
	Nanos   Unit = "ns" // durations; JSON/CSV cell values are nanoseconds
	Millis  Unit = "ms" // float columns already scaled to milliseconds
	Seconds Unit = "s"
	Allocs  Unit = "allocs"   // heap allocations per event (sim-core microbenchmarks)
	Bytes   Unit = "bytes"    // heap bytes per event (sim-core microbenchmarks)
	Events  Unit = "events/s" // simulator event throughput (sim-core microbenchmarks)
)

// Column declares one table column: a machine name for the structured
// emitters, the text header, the value kind and unit, and the fixed-width
// text format (width, float precision, alignment, explicit sign).
type Column struct {
	Name   string `json:"name"`
	Header string `json:"header"`
	Kind   Kind   `json:"kind"`
	Unit   Unit   `json:"unit,omitempty"`
	Width  int    `json:"width"`
	Prec   int    `json:"prec,omitempty"`
	Left   bool   `json:"left,omitempty"`
	Sign   bool   `json:"sign,omitempty"`
}

// Col builds a right-aligned column; the fluent modifiers below cover the
// few deviations so experiment code stays one line per column.
func Col(name, header string, kind Kind, unit Unit, width int) Column {
	return Column{Name: name, Header: header, Kind: kind, Unit: unit, Width: width}
}

// WithPrec sets the float precision.
func (c Column) WithPrec(p int) Column { c.Prec = p; return c }

// AlignLeft left-aligns the column (string label columns).
func (c Column) AlignLeft() Column { c.Left = true; return c }

// WithSign always renders the sign (delta columns).
func (c Column) WithSign() Column { c.Sign = true; return c }

// Cell is one typed value. Exactly the field selected by Kind is meaningful;
// the constructors below are the only intended way to build one.
type Cell struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
	Dur   time.Duration
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: String, Str: s} }

// Num builds a float cell.
func Num(f float64) Cell { return Cell{Kind: Float, Float: f} }

// CountOf builds an int cell.
func CountOf(n int64) Cell { return Cell{Kind: Int, Int: n} }

// Dur builds a duration cell. Structured emitters keep full nanosecond
// precision; the text renderer rounds to milliseconds, matching the paper's
// presentation.
func Dur(d time.Duration) Cell { return Cell{Kind: Duration, Dur: d} }

// Table is one named block of a report: an optional title line, an optional
// header row derived from the columns, typed rows, and trailing note lines.
// A table with no columns and only a title or notes is a free-standing text
// element (section banners, "(no rows: ...)" remarks), so a report's tables
// in order reproduce the experiment's full text output.
type Table struct {
	// ID names the table for machine consumers; note-only tables may leave
	// it empty.
	ID string `json:"id,omitempty"`
	// Title is the text line printed above the header ("" = none).
	Title string `json:"title,omitempty"`
	// Gap prints a blank line before the title (every table but the first
	// of a report, in the paper's presentation).
	Gap bool `json:"gap,omitempty"`
	// Meta records the run conditions the rows were produced under:
	// protocol(s), topology, workload, clock, rates, seed, knob and
	// operating-point overrides. Keys are free-form but stable per table.
	Meta    map[string]string `json:"meta,omitempty"`
	Columns []Column          `json:"columns,omitempty"`
	Rows    [][]Cell          `json:"rows,omitempty"`
	// Notes are lines printed after the rows (e.g. "recovery time: 3.8 s").
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends one row. It panics when the cell count or a cell kind does
// not match the declared columns — a mismatch is a bug in the experiment,
// and catching it at build time keeps every renderer trivially total.
func (t *Table) AddRow(cells ...Cell) *Table {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: table %q row has %d cells for %d columns", t.ID, len(cells), len(t.Columns)))
	}
	for i, c := range cells {
		if c.Kind != t.Columns[i].Kind {
			panic(fmt.Sprintf("report: table %q column %q wants %v, got %v",
				t.ID, t.Columns[i].Name, t.Columns[i].Kind, c.Kind))
		}
	}
	t.Rows = append(t.Rows, cells)
	return t
}

// Note appends a trailing note line.
func (t *Table) Note(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// SetMeta records one metadata key, allocating the map as needed.
func (t *Table) SetMeta(key, value string) *Table {
	if t.Meta == nil {
		t.Meta = make(map[string]string)
	}
	t.Meta[key] = value
	return t
}

// Report is one experiment's full result: named tables in presentation
// order.
type Report struct {
	// Name is the experiment's registry name (e.g. "fig7").
	Name   string   `json:"name"`
	Tables []*Table `json:"tables"`
}

// New starts an empty report.
func New(name string) *Report { return &Report{Name: name} }

// Add appends a table and returns it for chaining.
func (r *Report) Add(t *Table) *Table {
	r.Tables = append(r.Tables, t)
	return t
}

// AddNote appends a free-standing note line as its own table element.
func (r *Report) AddNote(line string) {
	r.Add(&Table{Notes: []string{line}})
}

// Find returns the first table with the given ID.
func (r *Report) Find(id string) *Table {
	for _, t := range r.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}
