package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// The text renderer reproduces the paper's fixed-width presentation — the
// exact bytes the experiments used to fmt.Fprintf directly. Layout is fully
// determined by the column declarations (width, precision, alignment, sign),
// so a report decoded from the JSON artifact re-renders byte-identically.

// Render writes the report's canonical text form to w.
func Render(w io.Writer, r *Report) {
	for _, t := range r.Tables {
		t.render(w)
	}
}

func (t *Table) render(w io.Writer) {
	if t.Gap {
		fmt.Fprintln(w)
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	if len(t.Columns) > 0 {
		cells := make([]string, len(t.Columns))
		for i, col := range t.Columns {
			cells[i] = pad(col.Header, col.Width, col.Left)
		}
		fmt.Fprintln(w, strings.Join(cells, " "))
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.text(t.Columns[i])
		}
		fmt.Fprintln(w, strings.Join(cells, " "))
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, n)
	}
}

func pad(s string, width int, left bool) string {
	if left {
		return fmt.Sprintf("%-*s", width, s)
	}
	return fmt.Sprintf("%*s", width, s)
}

// text formats one cell under its column's fixed-width spec.
func (c Cell) text(col Column) string {
	switch c.Kind {
	case String:
		return pad(c.Str, col.Width, col.Left)
	case Int:
		return fmt.Sprintf("%*d", col.Width, c.Int)
	case Float:
		if col.Sign {
			return fmt.Sprintf("%+*.*f", col.Width, col.Prec, c.Float)
		}
		return fmt.Sprintf("%*.*f", col.Width, col.Prec, c.Float)
	case Duration:
		return fmt.Sprintf("%*v", col.Width, c.Dur.Round(time.Millisecond))
	}
	return pad(fmt.Sprintf("%v", c), col.Width, col.Left)
}
