package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV emitter flattens every row-bearing table into one stream for
// spreadsheet tooling: each table becomes a block led by a header row of
// `experiment,table` plus the column names (with units), one record per data
// row, blocks separated by a blank line. Tables without data rows — banners
// (with or without declared columns), remarks, empty selections — are
// skipped.

// RenderCSV writes every table with data rows across the given reports.
func RenderCSV(w io.Writer, reports ...*Report) error {
	cw := csv.NewWriter(w)
	first := true
	for _, r := range reports {
		for _, t := range r.Tables {
			if len(t.Columns) == 0 || len(t.Rows) == 0 {
				continue
			}
			if !first {
				// Blank separator line between blocks.
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			first = false
			header := []string{"experiment", "table"}
			for _, col := range t.Columns {
				name := col.Name
				if col.Unit != None {
					name = fmt.Sprintf("%s(%s)", name, col.Unit)
				}
				header = append(header, name)
			}
			if err := cw.Write(header); err != nil {
				return err
			}
			for _, row := range t.Rows {
				rec := []string{r.Name, t.ID}
				for _, c := range row {
					rec = append(rec, c.csv())
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
		}
	}
	return nil
}

// csv renders the cell's bare value, mirroring the JSON emitter (durations
// as integer nanoseconds).
func (c Cell) csv() string {
	switch c.Kind {
	case String:
		return c.Str
	case Int:
		return strconv.FormatInt(c.Int, 10)
	case Float:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	case Duration:
		return strconv.FormatInt(int64(c.Dur), 10)
	}
	return ""
}
