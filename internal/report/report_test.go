package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCellFormatting pins every fixed-width cell format the experiments use
// against the fmt verbs the pre-model code printed with. A regression here
// means the text renderer no longer reproduces the paper's presentation.
func TestCellFormatting(t *testing.T) {
	d := 1702*time.Millisecond + 345*time.Microsecond
	cases := []struct {
		name string
		col  Column
		cell Cell
		want string
	}{
		// %-12s: protocol labels.
		{"proto", Col("protocol", "Protocol", String, None, 12).AlignLeft(), Str("2PL+Paxos"), fmt.Sprintf("%-12s", "2PL+Paxos")},
		// %12.0f: throughput columns.
		{"thpt", Col("thpt", "Thpt(txn/s)", Float, Rate, 12), Num(11452.49), fmt.Sprintf("%12.0f", 11452.49)},
		// %10.2f: sweep X axis (rate or skew).
		{"x", Col("rate", "rate/coord", Float, Rate, 10).WithPrec(2), Num(250), fmt.Sprintf("%10.2f", 250.0)},
		// %9.1f: commit rate.
		{"commit", Col("commit", "Commit%", Float, Percent, 9).WithPrec(1), Num(99.95), fmt.Sprintf("%9.1f", 99.95)},
		// %12v with ms rounding: latency percentiles.
		{"p50", Col("p50", "p50", Duration, Nanos, 12), Dur(d), fmt.Sprintf("%12v", d.Round(time.Millisecond))},
		// %+8.1f: Table 2 deltas.
		{"delta", Col("dthpt", "Δthpt%", Float, Percent, 8).WithPrec(1).WithSign(), Num(-3.25), fmt.Sprintf("%+8.1f", -3.25)},
		{"delta+", Col("dthpt", "Δthpt%", Float, Percent, 8).WithPrec(1).WithSign(), Num(4.0), fmt.Sprintf("%+8.1f", 4.0)},
		// %16.3f: Table 3 clock error.
		{"clockerr", Col("err", "clock err (ms)", Float, Millis, 16).WithPrec(3), Num(0.123456), fmt.Sprintf("%16.3f", 0.123456)},
		// %5d: Fig 11 second index; %14d: message counts.
		{"sec", Col("sec", "sec", Int, Count, 5), CountOf(12), fmt.Sprintf("%5d", 12)},
		{"msgs", Col("msgs", "msgs sent", Int, Count, 14), CountOf(123456), fmt.Sprintf("%14d", 123456)},
		// %6.2f: Fig 12 skew.
		{"skew", Col("skew", "skew", Float, None, 6).WithPrec(2), Num(0.99), fmt.Sprintf("%6.2f", 0.99)},
		// Zero duration renders 0s, as the pre-model output did.
		{"zerodur", Col("p50", "p50", Duration, Nanos, 12), Dur(0), fmt.Sprintf("%12v", time.Duration(0))},
	}
	for _, tc := range cases {
		if got := tc.cell.text(tc.col); got != tc.want {
			t.Errorf("%s: text = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestHeaderAlignment pins the header row format: left-aligned columns pad
// right, everything else pads left, single-space separators.
func TestHeaderAlignment(t *testing.T) {
	tab := &Table{ID: "sweep", Columns: []Column{
		Col("protocol", "Protocol", String, None, 12).AlignLeft(),
		Col("rate", "rate/coord", Float, Rate, 10).WithPrec(2),
		Col("thpt", "Thpt(txn/s)", Float, Rate, 12),
		Col("commit", "Commit%", Float, Percent, 9).WithPrec(1),
		Col("p50", "p50", Duration, Nanos, 12),
		Col("p90", "p90", Duration, Nanos, 12),
	}}
	var buf bytes.Buffer
	tab.render(&buf)
	want := fmt.Sprintf("%-12s %10s %12s %9s %12s %12s\n",
		"Protocol", "rate/coord", "Thpt(txn/s)", "Commit%", "p50", "p90")
	if buf.String() != want {
		t.Fatalf("header = %q, want %q", buf.String(), want)
	}
}

// TestTableLayout pins the element order: gap line, title, header, rows,
// notes — and that note-only tables render as bare lines.
func TestTableLayout(t *testing.T) {
	r := New("demo")
	tab := r.Add(&Table{ID: "t", Title: "Demo — two rows", Gap: true, Columns: []Column{
		Col("name", "Name", String, None, 6).AlignLeft(),
		Col("n", "N", Int, Count, 4),
	}})
	tab.AddRow(Str("a"), CountOf(1))
	tab.AddRow(Str("b"), CountOf(22))
	tab.Note("done in %d steps", 2)
	r.AddNote("(free-standing note)")

	var buf bytes.Buffer
	Render(&buf, r)
	want := "\nDemo — two rows\n" +
		fmt.Sprintf("%-6s %4s\n", "Name", "N") +
		fmt.Sprintf("%-6s %4d\n", "a", 1) +
		fmt.Sprintf("%-6s %4d\n", "b", 22) +
		"done in 2 steps\n" +
		"(free-standing note)\n"
	if buf.String() != want {
		t.Fatalf("render:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestAddRowValidation pins the build-time shape checks.
func TestAddRowValidation(t *testing.T) {
	tab := &Table{ID: "t", Columns: []Column{Col("n", "N", Int, Count, 4)}}
	for name, fn := range map[string]func(){
		"arity": func() { tab.AddRow(CountOf(1), CountOf(2)) },
		"kind":  func() { tab.AddRow(Str("x")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// buildDoc constructs a synthetic document exercising every cell kind,
// column attribute, and table shape (banner, notes, meta).
func buildDoc() *Document {
	r := New("synthetic")
	r.Add(&Table{Title: "Banner only", Gap: true})
	// A fig7-style announce table: columns for the text header, no rows.
	r.Add(&Table{ID: "announce", Title: "Banner with header", Gap: true,
		Columns: []Column{Col("x", "X", Int, Count, 4)}})
	tab := r.Add(&Table{ID: "main", Title: "Synthetic — all kinds", Gap: true,
		Meta: map[string]string{"topology": "geo4", "seed": "42"},
		Columns: []Column{
			Col("label", "Label", String, None, 10).AlignLeft(),
			Col("thpt", "Thpt(txn/s)", Float, Rate, 12),
			Col("commit", "Commit%", Float, Percent, 9).WithPrec(1),
			Col("dthpt", "Δ%", Float, Percent, 8).WithPrec(1).WithSign(),
			Col("p50", "p50", Duration, Nanos, 12),
			Col("n", "count", Int, Count, 7),
		}})
	tab.AddRow(Str("fast"), Num(11452.3), Num(99.95), Num(-12.5), Dur(55*time.Millisecond+123*time.Microsecond), CountOf(42))
	tab.AddRow(Str("slow"), Num(8.0002), Num(0), Num(3.75), Dur(1702*time.Millisecond), CountOf(0))
	tab.Note("recovery time: %.1f s", 3.8)
	r.AddNote("(no rows: none of the selected protocols run in this experiment)")
	return &Document{Generated: Generated{Seed: 42, Quick: true, CPUScale: 10},
		Experiments: []*Report{r}}
}

// TestJSONRoundTrip pins the artifact contract: Encode → Decode → Render is
// byte-identical to rendering the original model, and the decoded model
// preserves full (sub-millisecond) duration precision.
func TestJSONRoundTrip(t *testing.T) {
	doc := buildDoc()
	var orig bytes.Buffer
	for _, r := range doc.Experiments {
		Render(&orig, r)
	}

	var enc bytes.Buffer
	if err := doc.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Generated != doc.Generated {
		t.Fatalf("generated block %+v, want %+v", back.Generated, doc.Generated)
	}
	var rerender bytes.Buffer
	for _, r := range back.Experiments {
		Render(&rerender, r)
	}
	if rerender.String() != orig.String() {
		t.Fatalf("re-render differs:\n%q\nwant:\n%q", rerender.String(), orig.String())
	}
	// Full fidelity, not render-time rounding: the 55.123 ms cell survives.
	got := back.Experiments[0].Find("main").Rows[0][4].Dur
	if want := 55*time.Millisecond + 123*time.Microsecond; got != want {
		t.Fatalf("duration cell = %v, want %v", got, want)
	}
}

// TestDecodeRejectsWrongSchema pins the schema gate.
func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"tiga-report/v0","experiments":[]}`)); err == nil {
		t.Fatal("decoded a document with a mismatched schema tag")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("decoded garbage")
	}
}

// TestCSV pins the flattened block shape and the bare-value cell encoding.
func TestCSV(t *testing.T) {
	doc := buildDoc()
	var buf bytes.Buffer
	if err := RenderCSV(&buf, doc.Experiments...); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "experiment,table,label,thpt(txn/s),commit(percent),dthpt(percent),p50(ns),n(count)" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "synthetic,main,fast,11452.3,99.95,-12.5,55123000,42") {
		t.Fatalf("csv row = %q", lines[1])
	}
	// Row-less tables contribute nothing — neither note-only banners nor
	// announce tables that declare columns purely for their text header.
	if strings.Contains(out, "Banner") || strings.Contains(out, "no rows") || strings.Contains(out, "announce") {
		t.Fatalf("csv leaked row-less tables:\n%s", out)
	}
}
