package report

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// The diff layer turns the archived BENCH artifacts into a regression gate:
// two tiga-report/v1 documents are joined — experiments by name, tables by
// id, rows by the label column — and every numeric cell is compared against
// a relative noise threshold. Each unit carries a "good" direction (txn/s
// up, latency down), so a delta beyond the threshold in the bad direction is
// flagged as a regression; cmd/benchdiff exits non-zero on any.

// Delta is one numeric cell that moved beyond the noise threshold.
type Delta struct {
	Experiment string
	Table      string
	Row        string // the joined row label (e.g. "Tiga", "Janus#3")
	Column     string
	Unit       Unit
	Old, New   float64 // durations in nanoseconds
	// Pct is the relative change in percent; ±Inf when Old is zero.
	Pct float64
	// Regression marks a move beyond the threshold against the unit's good
	// direction (throughput down, commit rate down, latency up). Deltas in
	// neutral columns (counts, unitless axes) are informational only.
	Regression bool
}

// DiffResult is the full comparison: the beyond-threshold deltas in
// document order plus structural notes (experiments, tables, or rows
// present on only one side).
type DiffResult struct {
	Deltas []Delta
	Notes  []string
}

// Regressions counts the flagged deltas.
func (r *DiffResult) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// direction classifies a column's good direction from its unit (and, for
// percentages, its name: commit% up is good; Δ% and rollback% columns are
// informational).
func direction(u Unit, name string) int { // +1 up-good, -1 down-good, 0 neutral
	switch u {
	case Rate, Events:
		return 1
	case Nanos, Millis, Seconds, Allocs, Bytes:
		return -1
	case Percent:
		if name == "commit" {
			return 1
		}
	}
	return 0
}

// numeric extracts a comparable value from a cell (durations as
// nanoseconds); ok is false for strings.
func numeric(c Cell) (float64, bool) {
	switch c.Kind {
	case Int:
		return float64(c.Int), true
	case Float:
		return c.Float, true
	case Duration:
		return float64(c.Dur), true
	}
	return 0, false
}

// rowLabel derives the join label of one row: the first string column (the
// tables' protocol/variant/clock label column), or the first cell rendered
// as text when a table has no string column (fig11's per-second timelines
// label rows by their leading second counter).
func rowLabel(t *Table, row []Cell) string {
	for i, col := range t.Columns {
		if col.Kind == String {
			return row[i].Str
		}
	}
	if len(row) == 0 {
		return ""
	}
	switch c := row[0]; c.Kind {
	case Int:
		return strconv.FormatInt(c.Int, 10)
	case Float:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	case Duration:
		return c.Dur.String()
	}
	return ""
}

// rowKeys assigns every row a unique join key: the label, suffixed with its
// occurrence index when a label repeats (sweep tables emit one row per
// protocol per swept point; occurrence k on one side joins occurrence k on
// the other, which matches when both documents were generated at the same
// configuration).
func rowKeys(t *Table) []string {
	seen := map[string]int{}
	keys := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		label := rowLabel(t, row)
		n := seen[label]
		seen[label] = n + 1
		if n > 0 {
			label = fmt.Sprintf("%s#%d", label, n+1)
		}
		keys[i] = label
	}
	return keys
}

// DiffDocuments joins two decoded artifacts and returns every numeric delta
// whose relative change exceeds thresholdPct (a percentage; 0 reports every
// change). Structural mismatches — experiments, tables, or rows on one side
// only — become notes, not errors: the comparison covers the intersection.
func DiffDocuments(a, b *Document, thresholdPct float64) *DiffResult {
	res := &DiffResult{}
	if a.Generated.Seed != b.Generated.Seed || a.Generated.Quick != b.Generated.Quick {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"generation parameters differ (seed %d quick=%v vs seed %d quick=%v): deltas may reflect configuration, not code",
			a.Generated.Seed, a.Generated.Quick, b.Generated.Seed, b.Generated.Quick))
	}
	byName := map[string]*Report{}
	for _, r := range a.Experiments {
		byName[r.Name] = r
	}
	matched := map[string]bool{}
	for _, rb := range b.Experiments {
		ra, ok := byName[rb.Name]
		if !ok {
			res.Notes = append(res.Notes, fmt.Sprintf("experiment %q only in the new document", rb.Name))
			continue
		}
		matched[rb.Name] = true
		diffReport(res, ra, rb, thresholdPct)
	}
	for _, ra := range a.Experiments {
		if !matched[ra.Name] {
			res.Notes = append(res.Notes, fmt.Sprintf("experiment %q only in the old document", ra.Name))
		}
	}
	return res
}

func diffReport(res *DiffResult, a, b *Report, thresholdPct float64) {
	for _, tb := range b.Tables {
		if tb.ID == "" || len(tb.Columns) == 0 {
			continue // banners and note-only tables carry no data
		}
		ta := a.Find(tb.ID)
		if ta == nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: table %q only in the new document", b.Name, tb.ID))
			continue
		}
		diffTable(res, b.Name, ta, tb, thresholdPct)
	}
	for _, ta := range a.Tables {
		if ta.ID != "" && len(ta.Columns) > 0 && b.Find(ta.ID) == nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: table %q only in the old document", a.Name, ta.ID))
		}
	}
}

func diffTable(res *DiffResult, exp string, a, b *Table, thresholdPct float64) {
	aRows := map[string][]Cell{}
	for i, key := range rowKeys(a) {
		aRows[key] = a.Rows[i]
	}
	aCols := map[string]int{}
	for i, c := range a.Columns {
		aCols[c.Name] = i
	}
	bKeys := rowKeys(b)
	for ri, rowB := range b.Rows {
		rowA, ok := aRows[bKeys[ri]]
		if !ok {
			res.Notes = append(res.Notes, fmt.Sprintf("%s/%s: row %q only in the new document", exp, b.ID, bKeys[ri]))
			continue
		}
		delete(aRows, bKeys[ri])
		for ci, col := range b.Columns {
			ai, ok := aCols[col.Name]
			if !ok || ai >= len(rowA) {
				continue
			}
			newV, ok := numeric(rowB[ci])
			if !ok {
				continue
			}
			oldV, ok := numeric(rowA[ai])
			if !ok {
				continue
			}
			if oldV == newV {
				continue
			}
			pct := math.Inf(1)
			if newV < oldV {
				pct = math.Inf(-1)
			}
			if oldV != 0 {
				pct = 100 * (newV - oldV) / math.Abs(oldV)
			}
			if math.Abs(pct) < thresholdPct {
				continue
			}
			dir := direction(col.Unit, col.Name)
			res.Deltas = append(res.Deltas, Delta{
				Experiment: exp, Table: b.ID, Row: bKeys[ri], Column: col.Name,
				Unit: col.Unit, Old: oldV, New: newV, Pct: pct,
				Regression: (dir > 0 && pct < 0) || (dir < 0 && pct > 0),
			})
		}
	}
	leftover := make([]string, 0, len(aRows))
	for key := range aRows {
		leftover = append(leftover, key)
	}
	sort.Strings(leftover)
	for _, key := range leftover {
		res.Notes = append(res.Notes, fmt.Sprintf("%s/%s: row %q only in the old document", exp, a.ID, key))
	}
}
