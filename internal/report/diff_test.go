package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// diffDoc builds a one-experiment document with the sweep-table shape the
// experiments emit: a string label column, a float axis, and measures in
// rate/percent/duration units.
func diffDoc(thpt1, thpt2 float64, commit float64, p50 time.Duration) *Document {
	tab := &Table{
		ID: "fig7",
		Columns: []Column{
			Col("protocol", "Protocol", String, None, 12),
			Col("rate", "rate/coord", Float, Rate, 10),
			Col("thpt", "Thpt(txn/s)", Float, Rate, 12),
			Col("commit", "Commit%", Float, Percent, 9),
			Col("p50", "p50", Duration, Nanos, 12),
		},
	}
	// Two rows with the same label: sweep points join by occurrence.
	tab.AddRow(Str("Tiga"), Num(250), Num(thpt1), Num(commit), Dur(p50))
	tab.AddRow(Str("Tiga"), Num(500), Num(thpt2), Num(commit), Dur(p50))
	rep := New("fig7")
	rep.Add(tab)
	return &Document{Schema: Schema, Generated: Generated{Seed: 42}, Experiments: []*Report{rep}}
}

func TestDiffFlagsRegressionsByDirection(t *testing.T) {
	oldDoc := diffDoc(1000, 2000, 100, 300*time.Millisecond)
	newDoc := diffDoc(900, 2000, 100, 400*time.Millisecond) // thpt -10%, p50 +33%
	res := DiffDocuments(oldDoc, newDoc, 5)
	// thpt moved on the first Tiga row only; p50 moved on both occurrences.
	if len(res.Deltas) != 3 {
		t.Fatalf("deltas = %+v, want thpt@Tiga plus p50 on both occurrences", res.Deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range res.Deltas {
		byKey[d.Row+"/"+d.Column] = d
		if !d.Regression {
			t.Errorf("%s moved against its good direction but was not flagged: %+v", d.Column, d)
		}
	}
	if d, ok := byKey["Tiga/thpt"]; !ok || math.Abs(d.Pct+10) > 1e-9 {
		t.Errorf("thpt delta = %+v, want -10%% on the first Tiga occurrence", d)
	}
	if d, ok := byKey["Tiga#2/p50"]; !ok || d.Pct < 33 || d.Pct > 34 {
		t.Errorf("p50 delta = %+v, want ~+33.3%% on the second occurrence", d)
	}
	if res.Regressions() != 3 {
		t.Errorf("Regressions() = %d, want 3", res.Regressions())
	}
}

func TestDiffImprovementIsNotRegression(t *testing.T) {
	oldDoc := diffDoc(1000, 2000, 90, 400*time.Millisecond)
	newDoc := diffDoc(1200, 2000, 99, 300*time.Millisecond) // all improvements
	res := DiffDocuments(oldDoc, newDoc, 5)
	if res.Regressions() != 0 {
		t.Fatalf("improvements flagged as regressions: %+v", res.Deltas)
	}
	// thpt on row 1, commit+p50 on both occurrences: all informational.
	if len(res.Deltas) != 5 {
		t.Fatalf("deltas = %+v, want 5 informational improvements", res.Deltas)
	}
}

func TestDiffThresholdFiltersNoise(t *testing.T) {
	oldDoc := diffDoc(1000, 2000, 100, 300*time.Millisecond)
	newDoc := diffDoc(980, 2000, 100, 300*time.Millisecond) // -2%: under the floor
	if res := DiffDocuments(oldDoc, newDoc, 5); len(res.Deltas) != 0 {
		t.Fatalf("2%% noise survived a 5%% threshold: %+v", res.Deltas)
	}
	if res := DiffDocuments(oldDoc, newDoc, 1); len(res.Deltas) != 1 {
		t.Fatal("a 1% threshold should report the -2% move")
	}
}

func TestDiffStructuralNotes(t *testing.T) {
	oldDoc := diffDoc(1000, 2000, 100, 300*time.Millisecond)
	newDoc := diffDoc(1000, 2000, 100, 300*time.Millisecond)
	extra := New("chaos")
	extra.Add(&Table{ID: "chaos/leader-crash", Columns: []Column{Col("protocol", "Protocol", String, None, 12)}})
	newDoc.Experiments = append(newDoc.Experiments, extra)
	newDoc.Generated.Seed = 7
	res := DiffDocuments(oldDoc, newDoc, 5)
	if len(res.Deltas) != 0 {
		t.Fatalf("identical tables produced deltas: %+v", res.Deltas)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, `experiment "chaos" only in the new document`) {
		t.Errorf("missing new-experiment note: %v", res.Notes)
	}
	if !strings.Contains(joined, "generation parameters differ") {
		t.Errorf("missing seed-mismatch note: %v", res.Notes)
	}
}

// TestDiffRoundTripThroughJSON: the diff consumes exactly what the CI
// archives — encode both documents, decode them back, and diff the decoded
// forms.
func TestDiffRoundTripThroughJSON(t *testing.T) {
	oldDoc := diffDoc(1000, 2000, 100, 300*time.Millisecond)
	newDoc := diffDoc(800, 2000, 100, 300*time.Millisecond)
	var bufA, bufB bytes.Buffer
	if err := oldDoc.Encode(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := newDoc.Encode(&bufB); err != nil {
		t.Fatal(err)
	}
	a, err := Decode(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	res := DiffDocuments(a, b, 5)
	if res.Regressions() != 1 {
		t.Fatalf("decoded diff found %d regressions, want the -20%% thpt: %+v", res.Regressions(), res.Deltas)
	}
}

// TestDiffLabellessTable: tables with no string column (fig11's per-second
// timelines) join rows by their leading counter cell.
func TestDiffLabellessTable(t *testing.T) {
	mk := func(thpt float64) *Document {
		tab := &Table{
			ID: "fig11",
			Columns: []Column{
				Col("sec", "sec", Int, Seconds, 5),
				Col("thpt", "thpt(txn/s)", Float, Rate, 12),
			},
		}
		tab.AddRow(CountOf(0), Num(1000))
		tab.AddRow(CountOf(1), Num(thpt))
		rep := New("fig11")
		rep.Add(tab)
		return &Document{Schema: Schema, Experiments: []*Report{rep}}
	}
	res := DiffDocuments(mk(1000), mk(500), 5)
	if len(res.Deltas) != 1 || res.Deltas[0].Row != "1" {
		t.Fatalf("deltas = %+v, want one on the sec=1 row", res.Deltas)
	}
}
