package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiga/internal/txn"
)

func ts(n int64) txn.Timestamp { return txn.Timestamp{Time: time.Duration(n)} }
func id(n uint64) txn.ID       { return txn.ID{Coord: 1, Seq: n} }

func TestSeedAndGet(t *testing.T) {
	s := New()
	if s.Get("x") != nil {
		t.Fatal("missing key should be nil")
	}
	s.Seed("x", txn.EncodeInt(7))
	if txn.DecodeInt(s.Get("x")) != 7 {
		t.Fatal("Seed/Get")
	}
}

func TestExecuteAtMostOnce(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(0))
	p := txn.IncrementPiece("x")
	s.Execute(id(1), ts(1), p)
	s.Execute(id(1), ts(1), p) // duplicate: must be a no-op
	if got := txn.DecodeInt(s.Get("x")); got != 1 {
		t.Fatalf("x = %d after duplicate execute, want 1", got)
	}
	if !s.Executed(id(1)) {
		t.Fatal("Executed should report true")
	}
}

func TestRevokeRestoresState(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(10))
	s.Execute(id(1), ts(1), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 11 {
		t.Fatal("execute failed")
	}
	s.Revoke(id(1))
	if txn.DecodeInt(s.Get("x")) != 10 {
		t.Fatal("revoke did not restore the previous version")
	}
	if s.Executed(id(1)) {
		t.Fatal("revoked txn must be re-executable")
	}
	// Re-execution after revoke works (Case-3 §3.5).
	s.Execute(id(1), ts(5), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 11 {
		t.Fatal("re-execution failed")
	}
}

func TestRevokeBlindWriteRemovesKey(t *testing.T) {
	s := New()
	s.Execute(id(2), ts(1), txn.WritePiece("fresh", txn.EncodeInt(5)))
	if s.Get("fresh") == nil {
		t.Fatal("write missing")
	}
	s.Revoke(id(2))
	if s.Get("fresh") != nil {
		t.Fatal("revoking the only version should delete the key")
	}
}

func TestCommitGCsVersions(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(0))
	for i := uint64(1); i <= 10; i++ {
		s.Execute(id(i), ts(int64(i)), txn.IncrementPiece("x"))
		s.Commit(id(i))
	}
	if got := len(s.data["x"].vs); got != 1 {
		t.Fatalf("committed key holds %d versions, want 1", got)
	}
	if txn.DecodeInt(s.Get("x")) != 10 {
		t.Fatal("value wrong after GC")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(1))
	cp := s.Snapshot()
	s.Execute(id(1), ts(1), txn.IncrementPiece("x"))
	if txn.DecodeInt(cp.Get("x")) != 1 {
		t.Fatal("snapshot saw later write")
	}
	cp.Execute(id(9), ts(9), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 2 {
		t.Fatal("snapshot write leaked into original")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Seed("x", txn.EncodeInt(1))
	b.Seed("x", txn.EncodeInt(1))
	if !a.Equal(b) {
		t.Fatal("identical stores not equal")
	}
	b.Seed("y", txn.EncodeInt(2))
	if a.Equal(b) {
		t.Fatal("different stores equal")
	}
}

// Property: any sequence of execute/revoke operations on disjoint-key
// transactions leaves exactly the committed increments applied.
func TestExecuteRevokeProperty(t *testing.T) {
	check := func(ops []bool) bool {
		s := New()
		s.Seed("k", txn.EncodeInt(0))
		var want int64
		for i, commit := range ops {
			tid := id(uint64(i + 1))
			s.Execute(tid, ts(int64(i+1)), txn.IncrementPiece("k"))
			if commit {
				s.Commit(tid)
				want++
			} else {
				s.Revoke(tid)
			}
		}
		return txn.DecodeInt(s.Get("k")) == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Reserve after a seed must grow the map without losing data — it used to
// be a silent no-op on any non-empty store, defeating two-pass pre-sizing.
func TestReserveGrowsNonEmptyMap(t *testing.T) {
	s := New()
	s.SeedBulk([]string{"a", "b"}, txn.EncodeInt(1))
	s.Reserve(100)
	if txn.DecodeInt(s.Get("a")) != 1 || txn.DecodeInt(s.Get("b")) != 1 {
		t.Fatal("Reserve dropped existing keys")
	}
	s.SeedBulk([]string{"c", "d"}, txn.EncodeInt(2))
	if s.Len() != 4 {
		t.Fatalf("store holds %d keys after two-pass seed, want 4", s.Len())
	}
	if txn.DecodeInt(s.Get("a")) != 1 || txn.DecodeInt(s.Get("c")) != 2 {
		t.Fatal("second seed pass corrupted values")
	}
	s.Reserve(0) // degenerate sizes are no-ops
	s.Reserve(-1)
	if s.Len() != 4 {
		t.Fatal("degenerate Reserve changed the store")
	}
}

func TestGetAtOrdering(t *testing.T) {
	s := New()
	s.EnableSnapshots()
	s.Seed("x", txn.EncodeInt(0))
	for i := uint64(1); i <= 5; i++ {
		s.Execute(id(i), ts(int64(i*10)), txn.IncrementPiece("x"))
		s.Commit(id(i))
	}
	cases := []struct {
		at   int64
		want int64
	}{
		{5, 0},   // before every write: the seeded value
		{10, 1},  // exactly at a commit timestamp: inclusive
		{15, 1},  // between commits: newest at or below
		{49, 4},  //
		{50, 5},  //
		{999, 5}, // after everything: the newest committed version
	}
	for _, c := range cases {
		val, seen, ok := s.GetAt("x", time.Duration(c.at))
		if !ok {
			t.Fatalf("GetAt(%d) found nothing", c.at)
		}
		if got := txn.DecodeInt(val); got != c.want {
			t.Fatalf("GetAt(%d) = %d, want %d", c.at, got, c.want)
		}
		if seen.Time > time.Duration(c.at) {
			t.Fatalf("GetAt(%d) returned a future version ts %v", c.at, seen)
		}
	}
	if _, _, ok := s.GetAt("missing", 100); ok {
		t.Fatal("GetAt found a key that does not exist")
	}
	if hw := s.HighWater("x"); hw.Time != 50 {
		t.Fatalf("high-water = %v, want 50ns", hw.Time)
	}
}

func TestGetAtSkipsUncommittedVersions(t *testing.T) {
	s := New()
	s.EnableSnapshots()
	s.Seed("x", txn.EncodeInt(0))
	s.Execute(id(1), ts(10), txn.IncrementPiece("x"))
	s.Commit(id(1))
	// An optimistic execution past the snapshot point must stay invisible
	// until committed, even though Get (protocol execution) sees it.
	s.Execute(id(2), ts(20), txn.IncrementPiece("x"))
	if val, _, _ := s.GetAt("x", 30); txn.DecodeInt(val) != 1 {
		t.Fatal("snapshot read observed an uncommitted version")
	}
	if txn.DecodeInt(s.Get("x")) != 2 {
		t.Fatal("Get no longer reads optimistic state")
	}
	s.Commit(id(2))
	if val, _, _ := s.GetAt("x", 30); txn.DecodeInt(val) != 2 {
		t.Fatal("committed version still invisible")
	}
	// A revoked execution never becomes visible.
	s.Execute(id(3), ts(25), txn.IncrementPiece("x"))
	s.Revoke(id(3))
	if val, _, _ := s.GetAt("x", 30); txn.DecodeInt(val) != 2 {
		t.Fatal("revoked version leaked into a snapshot read")
	}
}

func TestPutCommittedAndRetainedHistory(t *testing.T) {
	s := New()
	s.EnableSnapshots()
	s.PutCommitted("k", txn.Timestamp{Time: 10}, txn.EncodeInt(1))
	s.PutCommitted("k", txn.Timestamp{Time: 20}, txn.EncodeInt(2))
	if val, seen, ok := s.GetAt("k", 15); !ok || txn.DecodeInt(val) != 1 || seen.Time != 10 {
		t.Fatalf("GetAt(15) = %v @%v ok=%v, want 1 @10", val, seen, ok)
	}
	if txn.DecodeInt(s.Get("k")) != 2 {
		t.Fatal("Get should return the newest version")
	}
	if hw := s.HighWater("k"); hw.Time != 20 {
		t.Fatalf("high-water = %v, want 20", hw.Time)
	}
	cp := s.Snapshot()
	cp.PutCommitted("k", txn.Timestamp{Time: 30}, txn.EncodeInt(3))
	if val, _, _ := s.GetAt("k", 40); txn.DecodeInt(val) != 2 {
		t.Fatal("snapshot write leaked into the original")
	}
	if val, _, _ := cp.GetAt("k", 40); txn.DecodeInt(val) != 3 {
		t.Fatal("snapshot copy lost retain mode")
	}
}

// In retain mode commits keep the whole history instead of collapsing it.
func TestRetainModeKeepsVersions(t *testing.T) {
	s := New()
	s.EnableSnapshots()
	s.Seed("x", txn.EncodeInt(0))
	for i := uint64(1); i <= 10; i++ {
		s.Execute(id(i), ts(int64(i)), txn.IncrementPiece("x"))
		s.Commit(id(i))
	}
	if got := len(s.data["x"].vs); got != 11 {
		t.Fatalf("retained key holds %d versions, want 11", got)
	}
	if txn.DecodeInt(s.Get("x")) != 10 {
		t.Fatal("newest value wrong in retain mode")
	}
	for at := int64(1); at <= 10; at++ {
		if val, _, _ := s.GetAt("x", time.Duration(at)); txn.DecodeInt(val) != at {
			t.Fatalf("GetAt(%d) = %d in retain mode", at, txn.DecodeInt(val))
		}
	}
}

// Property: Snapshot + replay of the same transactions reproduces the store.
func TestSnapshotReplayProperty(t *testing.T) {
	check := func(keys []uint8, split uint8) bool {
		s := New()
		for i := 0; i < 16; i++ {
			s.Seed(fmt.Sprintf("k%d", i), txn.EncodeInt(0))
		}
		var pieces []*txn.Piece
		for _, k := range keys {
			pieces = append(pieces, txn.IncrementPiece(fmt.Sprintf("k%d", k%16)))
		}
		cut := 0
		if len(pieces) > 0 {
			cut = int(split) % (len(pieces) + 1)
		}
		for i := 0; i < cut; i++ {
			s.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			s.Commit(id(uint64(i + 1)))
		}
		cp := s.Snapshot()
		for i := cut; i < len(pieces); i++ {
			s.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			s.Commit(id(uint64(i + 1)))
			cp.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			cp.Commit(id(uint64(i + 1)))
		}
		return s.Equal(cp)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
