package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiga/internal/txn"
)

func ts(n int64) txn.Timestamp { return txn.Timestamp{Time: time.Duration(n)} }
func id(n uint64) txn.ID       { return txn.ID{Coord: 1, Seq: n} }

func TestSeedAndGet(t *testing.T) {
	s := New()
	if s.Get("x") != nil {
		t.Fatal("missing key should be nil")
	}
	s.Seed("x", txn.EncodeInt(7))
	if txn.DecodeInt(s.Get("x")) != 7 {
		t.Fatal("Seed/Get")
	}
}

func TestExecuteAtMostOnce(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(0))
	p := txn.IncrementPiece("x")
	s.Execute(id(1), ts(1), p)
	s.Execute(id(1), ts(1), p) // duplicate: must be a no-op
	if got := txn.DecodeInt(s.Get("x")); got != 1 {
		t.Fatalf("x = %d after duplicate execute, want 1", got)
	}
	if !s.Executed(id(1)) {
		t.Fatal("Executed should report true")
	}
}

func TestRevokeRestoresState(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(10))
	s.Execute(id(1), ts(1), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 11 {
		t.Fatal("execute failed")
	}
	s.Revoke(id(1))
	if txn.DecodeInt(s.Get("x")) != 10 {
		t.Fatal("revoke did not restore the previous version")
	}
	if s.Executed(id(1)) {
		t.Fatal("revoked txn must be re-executable")
	}
	// Re-execution after revoke works (Case-3 §3.5).
	s.Execute(id(1), ts(5), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 11 {
		t.Fatal("re-execution failed")
	}
}

func TestRevokeBlindWriteRemovesKey(t *testing.T) {
	s := New()
	s.Execute(id(2), ts(1), txn.WritePiece("fresh", txn.EncodeInt(5)))
	if s.Get("fresh") == nil {
		t.Fatal("write missing")
	}
	s.Revoke(id(2))
	if s.Get("fresh") != nil {
		t.Fatal("revoking the only version should delete the key")
	}
}

func TestCommitGCsVersions(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(0))
	for i := uint64(1); i <= 10; i++ {
		s.Execute(id(i), ts(int64(i)), txn.IncrementPiece("x"))
		s.Commit(id(i))
	}
	if got := len(s.data["x"]); got != 1 {
		t.Fatalf("committed key holds %d versions, want 1", got)
	}
	if txn.DecodeInt(s.Get("x")) != 10 {
		t.Fatal("value wrong after GC")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New()
	s.Seed("x", txn.EncodeInt(1))
	cp := s.Snapshot()
	s.Execute(id(1), ts(1), txn.IncrementPiece("x"))
	if txn.DecodeInt(cp.Get("x")) != 1 {
		t.Fatal("snapshot saw later write")
	}
	cp.Execute(id(9), ts(9), txn.IncrementPiece("x"))
	if txn.DecodeInt(s.Get("x")) != 2 {
		t.Fatal("snapshot write leaked into original")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Seed("x", txn.EncodeInt(1))
	b.Seed("x", txn.EncodeInt(1))
	if !a.Equal(b) {
		t.Fatal("identical stores not equal")
	}
	b.Seed("y", txn.EncodeInt(2))
	if a.Equal(b) {
		t.Fatal("different stores equal")
	}
}

// Property: any sequence of execute/revoke operations on disjoint-key
// transactions leaves exactly the committed increments applied.
func TestExecuteRevokeProperty(t *testing.T) {
	check := func(ops []bool) bool {
		s := New()
		s.Seed("k", txn.EncodeInt(0))
		var want int64
		for i, commit := range ops {
			tid := id(uint64(i + 1))
			s.Execute(tid, ts(int64(i+1)), txn.IncrementPiece("k"))
			if commit {
				s.Commit(tid)
				want++
			} else {
				s.Revoke(tid)
			}
		}
		return txn.DecodeInt(s.Get("k")) == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot + replay of the same transactions reproduces the store.
func TestSnapshotReplayProperty(t *testing.T) {
	check := func(keys []uint8, split uint8) bool {
		s := New()
		for i := 0; i < 16; i++ {
			s.Seed(fmt.Sprintf("k%d", i), txn.EncodeInt(0))
		}
		var pieces []*txn.Piece
		for _, k := range keys {
			pieces = append(pieces, txn.IncrementPiece(fmt.Sprintf("k%d", k%16)))
		}
		cut := 0
		if len(pieces) > 0 {
			cut = int(split) % (len(pieces) + 1)
		}
		for i := 0; i < cut; i++ {
			s.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			s.Commit(id(uint64(i + 1)))
		}
		cp := s.Snapshot()
		for i := cut; i < len(pieces); i++ {
			s.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			s.Commit(id(uint64(i + 1)))
			cp.Execute(id(uint64(i+1)), ts(int64(i+1)), pieces[i])
			cp.Commit(id(uint64(i + 1)))
		}
		return s.Equal(cp)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
