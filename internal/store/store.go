// Package store implements the per-shard multi-version key-value store.
//
// Tiga's optimistic execution creates new versions of data items; when
// timestamp agreement invalidates an execution (Case-3, §3.5), the versions
// written by that transaction are revoked. Because conflicting transactions
// are blocked while a transaction is at the head of the queue, a revoked
// transaction's versions are always the newest version of each key it wrote,
// so revocation never cascades.
package store

import (
	"sort"

	"tiga/internal/txn"
)

type version struct {
	writer txn.ID
	ts     txn.Timestamp
	val    []byte
}

// Store is a multi-version key-value store for one shard.
type Store struct {
	data    map[string][]version
	pending map[txn.ID][]string // uncommitted writer -> keys written
	// Executed tracks at-most-once execution (paper Appendix B).
	executed map[txn.ID]bool
}

// New returns an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string][]version),
		pending:  make(map[txn.ID][]string),
		executed: make(map[txn.ID]bool),
	}
}

// Get returns the newest version of key, or nil when absent.
func (s *Store) Get(key string) []byte {
	vs := s.data[key]
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1].val
}

// Seed installs an initial committed value (workload pre-population).
func (s *Store) Seed(key string, val []byte) {
	s.data[key] = []version{{val: val}}
}

// Reserve sizes the version map for n keys ahead of a per-key bulk seed,
// avoiding incremental rehashing while an empty store is pre-populated.
func (s *Store) Reserve(n int) {
	if len(s.data) == 0 && n > 0 {
		s.data = make(map[string][]version, n)
	}
}

// SeedBulk installs the same initial committed value for every key in one
// pass. It sizes the version map for the whole batch up front and lays the
// initial versions out in one shared backing array (each entry capacity-
// clipped, so a later Put reallocates instead of aliasing its neighbor) —
// seeding a replica's keyspace costs two allocations instead of one per key.
func (s *Store) SeedBulk(keys []string, val []byte) {
	if len(s.data) == 0 && len(keys) > 0 {
		s.data = make(map[string][]version, len(keys))
	}
	vs := make([]version, len(keys))
	for i, k := range keys {
		vs[i] = version{val: val}
		s.data[k] = vs[i : i+1 : i+1]
	}
}

// Len returns the number of keys present.
func (s *Store) Len() int { return len(s.data) }

// Executed reports whether the transaction already executed here.
func (s *Store) Executed(id txn.ID) bool { return s.executed[id] }

type txnView struct {
	s      *Store
	writer txn.ID
	ts     txn.Timestamp
	keys   []string
}

func (v *txnView) Get(key string) []byte { return v.s.Get(key) }

func (v *txnView) Put(key string, val []byte) {
	v.s.data[key] = append(v.s.data[key], version{writer: v.writer, ts: v.ts, val: val})
	v.keys = append(v.keys, key)
}

// Execute runs a piece as transaction id at timestamp ts, creating pending
// versions for its writes. It enforces at-most-once execution: re-executing
// an id that already ran is a no-op returning nil, unless it was revoked.
func (s *Store) Execute(id txn.ID, ts txn.Timestamp, p *txn.Piece) []byte {
	if s.executed[id] {
		return nil
	}
	view := &txnView{s: s, writer: id, ts: ts}
	out := p.Exec(view)
	if len(view.keys) > 0 {
		s.pending[id] = view.keys
	}
	s.executed[id] = true
	return out
}

// Revoke erases all pending versions written by id so the transaction can be
// re-executed later with a corrected timestamp.
func (s *Store) Revoke(id txn.ID) {
	keys := s.pending[id]
	for _, k := range keys {
		vs := s.data[k]
		// The revoked version is at (or near) the top: conflicting writers
		// were blocked while this transaction was outstanding.
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].writer == id {
				vs = append(vs[:i], vs[i+1:]...)
				break
			}
		}
		if len(vs) == 0 {
			delete(s.data, k)
		} else {
			s.data[k] = vs
		}
	}
	delete(s.pending, id)
	delete(s.executed, id)
}

// Commit finalizes id's writes: its versions become durable and older
// versions of those keys are garbage-collected.
func (s *Store) Commit(id txn.ID) {
	keys := s.pending[id]
	for _, k := range keys {
		vs := s.data[k]
		if len(vs) > 1 {
			top := vs[len(vs)-1]
			if top.writer == id {
				s.data[k] = []version{top}
			}
		}
	}
	delete(s.pending, id)
}

// Snapshot deep-copies the store — the checkpoint mechanism used to
// accelerate failure recovery (§4).
func (s *Store) Snapshot() *Store {
	cp := New()
	for k, vs := range s.data {
		nvs := make([]version, len(vs))
		copy(nvs, vs)
		cp.data[k] = nvs
	}
	for id, keys := range s.pending {
		cp.pending[id] = append([]string(nil), keys...)
	}
	for id := range s.executed {
		cp.executed[id] = true
	}
	return cp
}

// Keys returns all keys in sorted order (test/debug helper).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two stores hold identical newest values — used by
// replica-consistency checks in tests.
func (s *Store) Equal(o *Store) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k := range s.data {
		a, b := s.Get(k), o.Get(k)
		if string(a) != string(b) {
			return false
		}
	}
	return true
}
