// Package store implements the per-shard multi-version key-value store.
//
// Tiga's optimistic execution creates new versions of data items; when
// timestamp agreement invalidates an execution (Case-3, §3.5), the versions
// written by that transaction are revoked. Because conflicting transactions
// are blocked while a transaction is at the head of the queue, a revoked
// transaction's versions are always the newest version of each key it wrote,
// so revocation never cascades.
//
// The store is allocation-lean on the serving path: keys seeded through
// SeedBulk are interned as dense txn.KeyID indices into a slot slice, so hot
// loops (GetID/PutID through Execute's view, GetAtID) never hash a string;
// the default-mode Commit garbage-collects in place, reusing each key's
// version slice instead of reallocating it; and Execute reuses one
// transaction view plus freelisted write-set slices across transactions.
package store

import (
	"sort"
	"time"

	"tiga/internal/txn"
)

type version struct {
	writer txn.ID
	ts     txn.Timestamp
	val    []byte
	// uncommitted marks a version written by Execute that Commit has not
	// yet finalized. Snapshot reads (GetAt) never observe such versions;
	// Get still does, because optimistic execution reads its own writes.
	uncommitted bool
}

// slot holds one key's version chain. Both indexes — the string map and the
// dense KeyID slice — point at the same slot, so a mutation through either
// path is visible to both without writing back two slice headers.
type slot struct {
	vs []version
}

// pend tracks the keys one uncommitted transaction wrote, in whichever form
// the writes arrived (interned IDs from PutID, strings from Put). The two
// slices are freelisted: Commit and Revoke hand them back for the next
// Execute, so steady-state execution allocates no write-set tracking.
type pend struct {
	keys []string
	ids  []txn.KeyID
}

// Store is a multi-version key-value store for one shard.
type Store struct {
	data map[string]*slot
	// byID is the interned fast path: byID[i] is the slot of the key seeded
	// at position i of the SeedBulk batch (the workload's dense key index).
	// idNames maps an id back to its name (aliases the seeder's name slice)
	// for the bookkeeping that is string-keyed (retain-mode high/multi).
	byID    []*slot
	idNames []string
	pending map[txn.ID]pend
	// Executed tracks at-most-once execution (paper Appendix B).
	executed map[txn.ID]bool
	// view and pendFree are the Execute scratch: one reusable transaction
	// view and a freelist of retired write-set slice pairs.
	view     txnView
	pendFree []pend
	// retain switches Commit from garbage-collecting old versions to
	// keeping the full committed history, which snapshot reads need.
	retain bool
	// high is the committed-timestamp high-water per key (retain mode).
	high map[string]txn.Timestamp
	// multi is the GC dirty-set (retain mode): keys currently holding more
	// than one version. PruneTo walks only this set, so watermark GC stays
	// O(rewritten keys) per tick instead of O(keyspace) — the difference
	// between tractable and catastrophic at million-key scale.
	multi map[string]struct{}
}

// New returns an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string]*slot),
		pending:  make(map[txn.ID]pend),
		executed: make(map[txn.ID]bool),
	}
}

// EnableSnapshots switches the store into version-retaining mode: Commit
// marks versions committed (recording a per-key high-water timestamp)
// instead of garbage-collecting history, so GetAt can serve reads at any
// past timestamp. Protocols enable this only when local snapshot reads are
// on; the default GC behavior is byte-identical to before.
func (s *Store) EnableSnapshots() {
	s.retain = true
	if s.high == nil {
		s.high = make(map[string]txn.Timestamp)
	}
	if s.multi == nil {
		s.multi = make(map[string]struct{})
	}
}

// Get returns the newest version of key, or nil when absent.
func (s *Store) Get(key string) []byte {
	e := s.data[key]
	if e == nil || len(e.vs) == 0 {
		return nil
	}
	return e.vs[len(e.vs)-1].val
}

// GetID is Get over an interned key: a slice index instead of a string hash.
func (s *Store) GetID(id txn.KeyID) []byte {
	vs := s.byID[id].vs
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1].val
}

// Seed installs an initial committed value (workload pre-population). Keys
// seeded one at a time are not interned; use SeedBulk for the ID fast path.
func (s *Store) Seed(key string, val []byte) {
	e := s.data[key]
	if e == nil {
		e = &slot{}
		s.data[key] = e
	}
	e.vs = []version{{val: val}}
}

// Reserve sizes the key map for n additional keys ahead of a per-key bulk
// seed, avoiding incremental rehashing while a store is pre-populated. A
// non-empty store is rebuilt at the combined size with its contents
// preserved, so workloads that seed in multiple passes still benefit.
func (s *Store) Reserve(n int) {
	if n <= 0 {
		return
	}
	data := make(map[string]*slot, len(s.data)+n)
	for k, e := range s.data {
		data[k] = e
	}
	s.data = data
}

// SeedBulk installs the same initial committed value for every key in one
// pass and interns the batch: key keys[i] becomes txn.KeyID(base+i), where
// base is the number of keys interned by earlier SeedBulk calls (zero for the
// usual single-pass seed), so a workload's dense key index doubles as its
// KeyID. The slots and initial versions are laid out in shared backing arrays
// (each version capacity-clipped, so a later Put reallocates instead of
// aliasing its neighbor) — seeding a replica's keyspace costs a handful of
// allocations instead of several per key.
func (s *Store) SeedBulk(keys []string, val []byte) {
	s.Reserve(len(keys))
	vs := make([]version, len(keys))
	slots := make([]slot, len(keys))
	if s.byID == nil {
		s.byID = make([]*slot, 0, len(keys))
		s.idNames = make([]string, 0, len(keys))
	}
	for i, k := range keys {
		vs[i] = version{val: val}
		slots[i].vs = vs[i : i+1 : i+1]
		s.data[k] = &slots[i]
		s.byID = append(s.byID, &slots[i])
	}
	s.idNames = append(s.idNames, keys...)
}

// Interned returns the number of keys on the ID fast path (test helper).
func (s *Store) Interned() int { return len(s.byID) }

// Len returns the number of keys present.
func (s *Store) Len() int { return len(s.data) }

// Executed reports whether the transaction already executed here.
func (s *Store) Executed(id txn.ID) bool { return s.executed[id] }

// txnView is the KV a piece executes against. It implements both the string
// interface and txn.IDKV; interned writes record ids, string writes record
// keys, and Commit/Revoke consume whichever lists are non-empty.
type txnView struct {
	s      *Store
	writer txn.ID
	ts     txn.Timestamp
	keys   []string
	ids    []txn.KeyID
}

func (v *txnView) Get(key string) []byte { return v.s.Get(key) }

func (v *txnView) GetID(id txn.KeyID) []byte { return v.s.GetID(id) }

func (v *txnView) Put(key string, val []byte) {
	e := v.s.data[key]
	if e == nil {
		e = &slot{}
		v.s.data[key] = e
	}
	e.vs = append(e.vs, version{writer: v.writer, ts: v.ts, val: val, uncommitted: true})
	v.keys = append(v.keys, key)
}

func (v *txnView) PutID(id txn.KeyID, val []byte) {
	e := v.s.byID[id]
	e.vs = append(e.vs, version{writer: v.writer, ts: v.ts, val: val, uncommitted: true})
	v.ids = append(v.ids, id)
}

// GetAt returns the newest committed version of key with a timestamp at or
// below at, together with that version's commit timestamp (zero for seeded
// initial values). Uncommitted versions are invisible: a snapshot read never
// observes optimistic state. Committed versions of one key are appended in
// timestamp order (conflicting writers are serialized by the protocol), so
// the newest qualifying version is the first committed one at or below at
// when scanning from the top.
func (s *Store) GetAt(key string, at time.Duration) ([]byte, txn.Timestamp, bool) {
	e := s.data[key]
	if e == nil {
		return nil, txn.Timestamp{}, false
	}
	return getAt(e.vs, at)
}

// GetAtID is GetAt over an interned key.
func (s *Store) GetAtID(id txn.KeyID, at time.Duration) ([]byte, txn.Timestamp, bool) {
	return getAt(s.byID[id].vs, at)
}

func getAt(vs []version, at time.Duration) ([]byte, txn.Timestamp, bool) {
	for i := len(vs) - 1; i >= 0; i-- {
		v := &vs[i]
		if v.uncommitted || v.ts.Time > at {
			continue
		}
		return v.val, v.ts, true
	}
	return nil, txn.Timestamp{}, false
}

// HighWater returns the committed-timestamp high-water for key: the largest
// commit timestamp any committed version of the key carries (zero when only
// the seeded value exists). Only meaningful in snapshot-retaining mode.
func (s *Store) HighWater(key string) txn.Timestamp { return s.high[key] }

// getPend pops a retired write-set pair off the freelist (empty, capacity
// retained) or returns a zero pair that will allocate on first append.
func (s *Store) getPend() pend {
	if n := len(s.pendFree); n > 0 {
		p := s.pendFree[n-1]
		s.pendFree = s.pendFree[:n-1]
		return p
	}
	return pend{}
}

func (s *Store) putPend(p pend) {
	p.keys = p.keys[:0]
	p.ids = p.ids[:0]
	s.pendFree = append(s.pendFree, p)
}

// Execute runs a piece as transaction id at timestamp ts, creating pending
// versions for its writes. It enforces at-most-once execution: re-executing
// an id that already ran is a no-op returning nil, unless it was revoked.
// Pieces carrying interned key ids (txn.Piece.ReadIDs/WriteIDs) reach the
// store through the view's GetID/PutID slice path and never hash a key.
func (s *Store) Execute(id txn.ID, ts txn.Timestamp, p *txn.Piece) []byte {
	if s.executed[id] {
		return nil
	}
	v := &s.view
	wp := s.getPend()
	v.s, v.writer, v.ts, v.keys, v.ids = s, id, ts, wp.keys, wp.ids
	out := p.Exec(v)
	if len(v.keys) > 0 || len(v.ids) > 0 {
		s.pending[id] = pend{keys: v.keys, ids: v.ids}
	} else {
		s.putPend(pend{keys: v.keys, ids: v.ids})
	}
	v.keys, v.ids = nil, nil
	s.executed[id] = true
	return out
}

// ExecuteID is Execute for call sites holding interned pieces; the two are
// interchangeable (the view dispatches per write), the name documents that
// the piece's hot path is the ID one.
func (s *Store) ExecuteID(id txn.ID, ts txn.Timestamp, p *txn.Piece) []byte {
	return s.Execute(id, ts, p)
}

// Revoke erases all pending versions written by id so the transaction can be
// re-executed later with a corrected timestamp.
func (s *Store) Revoke(id txn.ID) {
	wp, ok := s.pending[id]
	if !ok {
		delete(s.executed, id)
		return
	}
	for _, kid := range wp.ids {
		s.revokeSlot(s.byID[kid], s.idNames[kid], id)
	}
	for _, k := range wp.keys {
		if e := s.data[k]; e != nil {
			s.revokeSlot(e, k, id)
		}
	}
	delete(s.pending, id)
	delete(s.executed, id)
	s.putPend(wp)
}

func (s *Store) revokeSlot(e *slot, key string, id txn.ID) {
	vs := e.vs
	// The revoked version is at (or near) the top: conflicting writers
	// were blocked while this transaction was outstanding.
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].writer == id {
			copy(vs[i:], vs[i+1:])
			vs[len(vs)-1] = version{}
			vs = vs[:len(vs)-1]
			break
		}
	}
	e.vs = vs
	if len(vs) == 0 {
		// Interned keys always retain their seed version, so only a
		// string-path blind write on a fresh key can empty a slot; drop the
		// key so Len/Keys/Equal reflect the revert.
		delete(s.data, key)
	}
}

// Commit finalizes id's writes. In the default mode its versions become
// durable and older versions of those keys are garbage-collected in place
// (the key's version slice is truncated and reused, not reallocated); in
// snapshot-retaining mode (EnableSnapshots) the versions are marked
// committed, history is kept for GetAt, and the per-key high-water advances.
// Committing an id twice is a no-op either way.
func (s *Store) Commit(id txn.ID) {
	wp, ok := s.pending[id]
	if !ok {
		return
	}
	if s.retain {
		for _, kid := range wp.ids {
			s.commitRetain(s.byID[kid], s.idNames[kid], id)
		}
		for _, k := range wp.keys {
			if e := s.data[k]; e != nil {
				s.commitRetain(e, k, id)
			}
		}
	} else {
		for _, kid := range wp.ids {
			commitGC(s.byID[kid], id)
		}
		for _, k := range wp.keys {
			if e := s.data[k]; e != nil {
				commitGC(e, id)
			}
		}
	}
	delete(s.pending, id)
	s.putPend(wp)
}

func (s *Store) commitRetain(e *slot, key string, id txn.ID) {
	vs := e.vs
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].writer == id {
			vs[i].uncommitted = false
			if s.high[key].Less(vs[i].ts) {
				s.high[key] = vs[i].ts
			}
			break
		}
	}
	if len(vs) > 1 {
		s.multi[key] = struct{}{}
	}
}

// commitGC collapses the chain to the committed top version in place,
// keeping the slice's capacity so the key's next optimistic write appends
// without reallocating.
func commitGC(e *slot, id txn.ID) {
	vs := e.vs
	if len(vs) <= 1 {
		return
	}
	top := vs[len(vs)-1]
	if top.writer != id {
		return
	}
	top.uncommitted = false
	vs[0] = top
	for i := 1; i < len(vs); i++ {
		vs[i] = version{}
	}
	e.vs = vs[:1]
}

// PutCommitted appends an already-committed version of key directly — the
// install path for replicated write sets that arrive with their commit
// timestamp attached (lockocc's commit records), bypassing the
// Execute/Commit pending cycle.
func (s *Store) PutCommitted(key string, ts txn.Timestamp, val []byte) {
	e := s.data[key]
	if e == nil {
		e = &slot{}
		s.data[key] = e
	}
	e.vs = append(e.vs, version{ts: ts, val: val})
	if s.retain {
		if s.high[key].Less(ts) {
			s.high[key] = ts
		}
		if len(e.vs) > 1 {
			s.multi[key] = struct{}{}
		}
	}
}

// Versions returns the total number of versions held across all keys — the
// memory-growth signal the watermark-GC plateau test pins.
func (s *Store) Versions() int {
	n := 0
	for _, e := range s.data {
		n += len(e.vs)
	}
	return n
}

// PruneTo garbage-collects committed history no snapshot read at or above
// `horizon` can observe: for each key it keeps the newest committed version
// with timestamp ≤ horizon (the version GetAt(key, horizon) returns) and
// drops all committed versions strictly older. Uncommitted (optimistic)
// versions are never touched, and a key's newest committed state always
// survives, so Get and any GetAt(·, at ≥ horizon) are invariant under
// pruning. The caller (a protocol's safe-time tick) derives horizon from the
// minimum replica watermark minus the read-staleness bound. Only the dirty
// set of rewritten keys is visited. Returns the number of versions dropped.
func (s *Store) PruneTo(horizon time.Duration) int {
	if !s.retain || len(s.multi) == 0 {
		return 0
	}
	pruned := 0
	for k := range s.multi {
		e := s.data[k]
		vs := e.vs
		// Find the pivot: the newest committed version at or below the
		// horizon (same scan GetAt performs).
		pivot := -1
		for i := len(vs) - 1; i >= 0; i-- {
			if !vs[i].uncommitted && vs[i].ts.Time <= horizon {
				pivot = i
				break
			}
		}
		if pivot > 0 {
			kept := vs[:0]
			for i := range vs {
				if i < pivot && !vs[i].uncommitted {
					pruned++
					continue
				}
				kept = append(kept, vs[i])
			}
			// Zero the vacated tail so dropped values release their
			// backing buffers.
			for i := len(kept); i < len(vs); i++ {
				vs[i] = version{}
			}
			vs = kept
			e.vs = vs
		}
		if len(vs) <= 1 {
			delete(s.multi, k)
		}
	}
	return pruned
}

// Snapshot deep-copies the store — the checkpoint mechanism used to
// accelerate failure recovery (§4). Every destination structure is pre-sized
// from the source and the copied version chains share one backing array
// (capacity-clipped per key), so checkpointing a replica costs a few large
// allocations instead of re-hashing and re-allocating the whole keyspace.
func (s *Store) Snapshot() *Store {
	cp := &Store{
		data:     make(map[string]*slot, len(s.data)),
		pending:  make(map[txn.ID]pend, len(s.pending)),
		executed: make(map[txn.ID]bool, len(s.executed)),
	}
	slots := make([]slot, len(s.data))
	all := make([]version, 0, s.Versions())
	n := 0
	copySlot := func(e *slot) *slot {
		ne := &slots[n]
		n++
		start := len(all)
		all = append(all, e.vs...)
		ne.vs = all[start:len(all):len(all)]
		return ne
	}
	// Copy the interned keys through the dense index first (their names come
	// from idNames, so no reverse map is needed), then sweep the string map
	// for whatever keys arrived outside SeedBulk.
	if s.byID != nil {
		cp.byID = make([]*slot, len(s.byID))
		cp.idNames = s.idNames
		for i, e := range s.byID {
			ne := copySlot(e)
			cp.data[s.idNames[i]] = ne
			cp.byID[i] = ne
		}
	}
	for k, e := range s.data {
		if _, done := cp.data[k]; !done {
			cp.data[k] = copySlot(e)
		}
	}
	for id, wp := range s.pending {
		cp.pending[id] = pend{
			keys: append([]string(nil), wp.keys...),
			ids:  append([]txn.KeyID(nil), wp.ids...),
		}
	}
	for id := range s.executed {
		cp.executed[id] = true
	}
	if s.retain {
		cp.retain = true
		cp.high = make(map[string]txn.Timestamp, len(s.high))
		cp.multi = make(map[string]struct{}, len(s.multi))
		for k, ts := range s.high {
			cp.high[k] = ts
		}
		for k := range s.multi {
			cp.multi[k] = struct{}{}
		}
	}
	return cp
}

// Keys returns all keys in sorted order (test/debug helper).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two stores hold identical newest values — used by
// replica-consistency checks in tests.
func (s *Store) Equal(o *Store) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k := range s.data {
		a, b := s.Get(k), o.Get(k)
		if string(a) != string(b) {
			return false
		}
	}
	return true
}
