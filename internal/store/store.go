// Package store implements the per-shard multi-version key-value store.
//
// Tiga's optimistic execution creates new versions of data items; when
// timestamp agreement invalidates an execution (Case-3, §3.5), the versions
// written by that transaction are revoked. Because conflicting transactions
// are blocked while a transaction is at the head of the queue, a revoked
// transaction's versions are always the newest version of each key it wrote,
// so revocation never cascades.
package store

import (
	"sort"
	"time"

	"tiga/internal/txn"
)

type version struct {
	writer txn.ID
	ts     txn.Timestamp
	val    []byte
	// uncommitted marks a version written by Execute that Commit has not
	// yet finalized. Snapshot reads (GetAt) never observe such versions;
	// Get still does, because optimistic execution reads its own writes.
	uncommitted bool
}

// Store is a multi-version key-value store for one shard.
type Store struct {
	data    map[string][]version
	pending map[txn.ID][]string // uncommitted writer -> keys written
	// Executed tracks at-most-once execution (paper Appendix B).
	executed map[txn.ID]bool
	// retain switches Commit from garbage-collecting old versions to
	// keeping the full committed history, which snapshot reads need.
	retain bool
	// high is the committed-timestamp high-water per key (retain mode).
	high map[string]txn.Timestamp
	// multi is the GC dirty-set (retain mode): keys currently holding more
	// than one version. PruneTo walks only this set, so watermark GC stays
	// O(rewritten keys) per tick instead of O(keyspace) — the difference
	// between tractable and catastrophic at million-key scale.
	multi map[string]struct{}
}

// New returns an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string][]version),
		pending:  make(map[txn.ID][]string),
		executed: make(map[txn.ID]bool),
	}
}

// EnableSnapshots switches the store into version-retaining mode: Commit
// marks versions committed (recording a per-key high-water timestamp)
// instead of garbage-collecting history, so GetAt can serve reads at any
// past timestamp. Protocols enable this only when local snapshot reads are
// on; the default GC behavior is byte-identical to before.
func (s *Store) EnableSnapshots() {
	s.retain = true
	if s.high == nil {
		s.high = make(map[string]txn.Timestamp)
	}
	if s.multi == nil {
		s.multi = make(map[string]struct{})
	}
}

// Get returns the newest version of key, or nil when absent.
func (s *Store) Get(key string) []byte {
	vs := s.data[key]
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1].val
}

// Seed installs an initial committed value (workload pre-population).
func (s *Store) Seed(key string, val []byte) {
	s.data[key] = []version{{val: val}}
}

// Reserve sizes the version map for n additional keys ahead of a per-key
// bulk seed, avoiding incremental rehashing while a store is pre-populated.
// A non-empty store is rebuilt at the combined size with its contents
// preserved, so workloads that seed in multiple passes still benefit.
func (s *Store) Reserve(n int) {
	if n <= 0 {
		return
	}
	data := make(map[string][]version, len(s.data)+n)
	for k, vs := range s.data {
		data[k] = vs
	}
	s.data = data
}

// SeedBulk installs the same initial committed value for every key in one
// pass. It sizes the version map for the whole batch up front and lays the
// initial versions out in one shared backing array (each entry capacity-
// clipped, so a later Put reallocates instead of aliasing its neighbor) —
// seeding a replica's keyspace costs two allocations instead of one per key.
func (s *Store) SeedBulk(keys []string, val []byte) {
	s.Reserve(len(keys))
	vs := make([]version, len(keys))
	for i, k := range keys {
		vs[i] = version{val: val}
		s.data[k] = vs[i : i+1 : i+1]
	}
}

// Len returns the number of keys present.
func (s *Store) Len() int { return len(s.data) }

// Executed reports whether the transaction already executed here.
func (s *Store) Executed(id txn.ID) bool { return s.executed[id] }

type txnView struct {
	s      *Store
	writer txn.ID
	ts     txn.Timestamp
	keys   []string
}

func (v *txnView) Get(key string) []byte { return v.s.Get(key) }

func (v *txnView) Put(key string, val []byte) {
	v.s.data[key] = append(v.s.data[key], version{writer: v.writer, ts: v.ts, val: val, uncommitted: true})
	v.keys = append(v.keys, key)
}

// GetAt returns the newest committed version of key with a timestamp at or
// below at, together with that version's commit timestamp (zero for seeded
// initial values). Uncommitted versions are invisible: a snapshot read never
// observes optimistic state. Committed versions of one key are appended in
// timestamp order (conflicting writers are serialized by the protocol), so
// the newest qualifying version is the first committed one at or below at
// when scanning from the top.
func (s *Store) GetAt(key string, at time.Duration) ([]byte, txn.Timestamp, bool) {
	vs := s.data[key]
	for i := len(vs) - 1; i >= 0; i-- {
		v := &vs[i]
		if v.uncommitted || v.ts.Time > at {
			continue
		}
		return v.val, v.ts, true
	}
	return nil, txn.Timestamp{}, false
}

// HighWater returns the committed-timestamp high-water for key: the largest
// commit timestamp any committed version of the key carries (zero when only
// the seeded value exists). Only meaningful in snapshot-retaining mode.
func (s *Store) HighWater(key string) txn.Timestamp { return s.high[key] }

// Execute runs a piece as transaction id at timestamp ts, creating pending
// versions for its writes. It enforces at-most-once execution: re-executing
// an id that already ran is a no-op returning nil, unless it was revoked.
func (s *Store) Execute(id txn.ID, ts txn.Timestamp, p *txn.Piece) []byte {
	if s.executed[id] {
		return nil
	}
	view := &txnView{s: s, writer: id, ts: ts}
	out := p.Exec(view)
	if len(view.keys) > 0 {
		s.pending[id] = view.keys
	}
	s.executed[id] = true
	return out
}

// Revoke erases all pending versions written by id so the transaction can be
// re-executed later with a corrected timestamp.
func (s *Store) Revoke(id txn.ID) {
	keys := s.pending[id]
	for _, k := range keys {
		vs := s.data[k]
		// The revoked version is at (or near) the top: conflicting writers
		// were blocked while this transaction was outstanding.
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].writer == id {
				vs = append(vs[:i], vs[i+1:]...)
				break
			}
		}
		if len(vs) == 0 {
			delete(s.data, k)
		} else {
			s.data[k] = vs
		}
	}
	delete(s.pending, id)
	delete(s.executed, id)
}

// Commit finalizes id's writes. In the default mode its versions become
// durable and older versions of those keys are garbage-collected; in
// snapshot-retaining mode (EnableSnapshots) the versions are marked
// committed, history is kept for GetAt, and the per-key high-water advances.
// Committing an id twice is a no-op either way.
func (s *Store) Commit(id txn.ID) {
	keys := s.pending[id]
	if s.retain {
		for _, k := range keys {
			vs := s.data[k]
			for i := len(vs) - 1; i >= 0; i-- {
				if vs[i].writer == id {
					vs[i].uncommitted = false
					if s.high[k].Less(vs[i].ts) {
						s.high[k] = vs[i].ts
					}
					break
				}
			}
			if len(vs) > 1 {
				s.multi[k] = struct{}{}
			}
		}
		delete(s.pending, id)
		return
	}
	for _, k := range keys {
		vs := s.data[k]
		if len(vs) > 1 {
			top := vs[len(vs)-1]
			if top.writer == id {
				top.uncommitted = false
				s.data[k] = []version{top}
			}
		}
	}
	delete(s.pending, id)
}

// PutCommitted appends an already-committed version of key directly — the
// install path for replicated write sets that arrive with their commit
// timestamp attached (lockocc's commit records), bypassing the
// Execute/Commit pending cycle.
func (s *Store) PutCommitted(key string, ts txn.Timestamp, val []byte) {
	s.data[key] = append(s.data[key], version{ts: ts, val: val})
	if s.retain {
		if s.high[key].Less(ts) {
			s.high[key] = ts
		}
		if len(s.data[key]) > 1 {
			s.multi[key] = struct{}{}
		}
	}
}

// Versions returns the total number of versions held across all keys — the
// memory-growth signal the watermark-GC plateau test pins.
func (s *Store) Versions() int {
	n := 0
	for _, vs := range s.data {
		n += len(vs)
	}
	return n
}

// PruneTo garbage-collects committed history no snapshot read at or above
// `horizon` can observe: for each key it keeps the newest committed version
// with timestamp ≤ horizon (the version GetAt(key, horizon) returns) and
// drops all committed versions strictly older. Uncommitted (optimistic)
// versions are never touched, and a key's newest committed state always
// survives, so Get and any GetAt(·, at ≥ horizon) are invariant under
// pruning. The caller (a protocol's safe-time tick) derives horizon from the
// minimum replica watermark minus the read-staleness bound. Only the dirty
// set of rewritten keys is visited. Returns the number of versions dropped.
func (s *Store) PruneTo(horizon time.Duration) int {
	if !s.retain || len(s.multi) == 0 {
		return 0
	}
	pruned := 0
	for k := range s.multi {
		vs := s.data[k]
		// Find the pivot: the newest committed version at or below the
		// horizon (same scan GetAt performs).
		pivot := -1
		for i := len(vs) - 1; i >= 0; i-- {
			if !vs[i].uncommitted && vs[i].ts.Time <= horizon {
				pivot = i
				break
			}
		}
		if pivot > 0 {
			kept := vs[:0]
			for i := range vs {
				if i < pivot && !vs[i].uncommitted {
					pruned++
					continue
				}
				kept = append(kept, vs[i])
			}
			// Zero the vacated tail so dropped values release their
			// backing buffers.
			for i := len(kept); i < len(vs); i++ {
				vs[i] = version{}
			}
			vs = kept
			s.data[k] = vs
		}
		if len(vs) <= 1 {
			delete(s.multi, k)
		}
	}
	return pruned
}

// Snapshot deep-copies the store — the checkpoint mechanism used to
// accelerate failure recovery (§4).
func (s *Store) Snapshot() *Store {
	cp := New()
	for k, vs := range s.data {
		nvs := make([]version, len(vs))
		copy(nvs, vs)
		cp.data[k] = nvs
	}
	for id, keys := range s.pending {
		cp.pending[id] = append([]string(nil), keys...)
	}
	for id := range s.executed {
		cp.executed[id] = true
	}
	if s.retain {
		cp.EnableSnapshots()
		for k, ts := range s.high {
			cp.high[k] = ts
		}
		for k := range s.multi {
			cp.multi[k] = struct{}{}
		}
	}
	return cp
}

// Keys returns all keys in sorted order (test/debug helper).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two stores hold identical newest values — used by
// replica-consistency checks in tests.
func (s *Store) Equal(o *Store) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k := range s.data {
		a, b := s.Get(k), o.Get(k)
		if string(a) != string(b) {
			return false
		}
	}
	return true
}
