package store

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/txn"
)

// gcStore builds a retain-mode store with one key carrying committed versions
// at the given timestamps (plus the timestamp-zero seed).
func gcStore(t *testing.T, stamps ...int64) *Store {
	t.Helper()
	s := New()
	s.EnableSnapshots()
	s.Seed("k", txn.EncodeInt(0))
	for i, at := range stamps {
		s.PutCommitted("k", ts(at), txn.EncodeInt(int64(i+1)))
	}
	return s
}

// TestPruneToKeepsSnapshotPivot pins PruneTo's contract: GetAt at or above
// the horizon is invariant, and everything older than the horizon's pivot
// version is dropped.
func TestPruneToKeepsSnapshotPivot(t *testing.T) {
	s := gcStore(t, 10, 20, 30)
	// Pre-prune observations at and above the horizon.
	type obs struct {
		val int64
		at  txn.Timestamp
	}
	var before []obs
	for at := time.Duration(25); at <= 40; at += 5 {
		v, vts, ok := s.GetAt("k", at)
		if !ok {
			t.Fatalf("GetAt(25..40) missing at %v", at)
		}
		before = append(before, obs{txn.DecodeInt(v), vts})
	}
	if n := s.PruneTo(25); n != 2 { // seed + ts10 drop; ts20 is the pivot
		t.Fatalf("PruneTo(25) dropped %d versions, want 2", n)
	}
	for i, at := 0, time.Duration(25); at <= 40; i, at = i+1, at+5 {
		v, vts, ok := s.GetAt("k", at)
		if !ok || txn.DecodeInt(v) != before[i].val || vts != before[i].at {
			t.Fatalf("GetAt(k, %v) changed across PruneTo: got %d@%v, want %d@%v",
				at, txn.DecodeInt(v), vts, before[i].val, before[i].at)
		}
	}
	// Reads below the horizon may now fail — that history is gone.
	if _, _, ok := s.GetAt("k", 5); ok {
		t.Fatal("pre-horizon history should have been pruned")
	}
	if got := txn.DecodeInt(s.Get("k")); got != 3 {
		t.Fatalf("newest value = %d, want 3", got)
	}
}

// TestPruneToSnapshotAtHorizonExact pins the boundary: the newest committed
// version with ts ≤ horizon survives even when it is exactly at the horizon.
func TestPruneToSnapshotAtHorizonExact(t *testing.T) {
	s := gcStore(t, 10, 20)
	s.PruneTo(20)
	v, vts, ok := s.GetAt("k", 20)
	if !ok || txn.DecodeInt(v) != 2 || vts.Time != 20 {
		t.Fatalf("GetAt at the exact horizon = %v@%v ok=%v, want 2@20", v, vts, ok)
	}
}

// TestPruneToNeverTouchesUncommitted: optimistic pending versions survive any
// horizon, and committing them afterwards works.
func TestPruneToNeverTouchesUncommitted(t *testing.T) {
	s := gcStore(t, 10)
	s.Execute(id(9), ts(50), txn.IncrementPiece("k"))
	s.PruneTo(100) // horizon far beyond every version
	if got := txn.DecodeInt(s.Get("k")); got != 2 {
		t.Fatalf("pending optimistic version lost: Get = %d, want 2", got)
	}
	s.Commit(id(9))
	v, _, ok := s.GetAt("k", 50)
	if !ok || txn.DecodeInt(v) != 2 {
		t.Fatalf("committed-after-prune version unreadable: %v ok=%v", v, ok)
	}
}

// TestPruneToNoopOutsideRetainMode: the default (non-snapshot) store already
// garbage-collects on Commit; PruneTo must not touch it.
func TestPruneToNoopOutsideRetainMode(t *testing.T) {
	s := New()
	s.Seed("k", txn.EncodeInt(0))
	if n := s.PruneTo(100); n != 0 {
		t.Fatalf("PruneTo on a non-retaining store pruned %d versions", n)
	}
}

// TestPruneToDirtySet: a fully-pruned key leaves the dirty set, so repeated
// ticks over a quiescent store do no per-key work.
func TestPruneToDirtySet(t *testing.T) {
	s := gcStore(t, 10, 20)
	if n := s.PruneTo(30); n != 2 {
		t.Fatalf("first prune dropped %d, want 2", n)
	}
	if len(s.multi) != 0 {
		t.Fatalf("dirty set still holds %d keys after full prune", len(s.multi))
	}
	if n := s.PruneTo(40); n != 0 {
		t.Fatalf("second prune over quiescent store dropped %d", n)
	}
}

// TestVersionsPlateauUnderPruning is the memory-plateau invariant in
// miniature: sustained writes with a trailing pruning horizon hold the
// version count at a constant plateau instead of growing with the write
// count.
func TestVersionsPlateauUnderPruning(t *testing.T) {
	s := New()
	s.EnableSnapshots()
	const keys = 32
	for k := 0; k < keys; k++ {
		s.Seed(fmt.Sprintf("k%d", k), txn.EncodeInt(0))
	}
	plateau := 0
	for round := 1; round <= 200; round++ {
		at := time.Duration(round) * time.Millisecond
		for k := 0; k < keys; k++ {
			s.PutCommitted(fmt.Sprintf("k%d", k), txn.Timestamp{Time: at}, txn.EncodeInt(int64(round)))
		}
		// The horizon trails the writes by 10 rounds, like a safe-time
		// watermark trails real time.
		s.PruneTo(at - 10*time.Millisecond)
		if round == 50 {
			plateau = s.Versions()
		}
	}
	if got := s.Versions(); plateau == 0 || got > plateau {
		t.Fatalf("version count grew past its plateau: %d at round 50, %d at round 200", plateau, got)
	}
	// Without pruning the same write stream grows ~keys×rounds versions;
	// the plateau must be far below that.
	if limit := keys * 20; s.Versions() > limit {
		t.Fatalf("plateau %d exceeds %d (horizon lag ×2)", s.Versions(), limit)
	}
}

// TestSnapshotCopiesDirtySet: checkpoint/restore keeps pruning working on
// the copy.
func TestSnapshotCopiesDirtySet(t *testing.T) {
	s := gcStore(t, 10, 20)
	cp := s.Snapshot()
	if n := cp.PruneTo(30); n != 2 {
		t.Fatalf("pruning a snapshot copy dropped %d, want 2", n)
	}
	// The original is untouched.
	if _, _, ok := s.GetAt("k", 5); !ok {
		t.Fatal("pruning the copy mutated the original's history")
	}
}
