package store

import (
	"fmt"
	"testing"

	"tiga/internal/txn"
)

func seedN(n int) (*Store, []string) {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k0-%d", i)
	}
	s := New()
	s.SeedBulk(keys, txn.EncodeInt(0))
	return s, keys
}

// TestInternedPathsMatchStringPaths: every ID accessor must observe exactly
// the state the string accessors do — the two are indexes over one slot.
func TestInternedPathsMatchStringPaths(t *testing.T) {
	s, keys := seedN(10)
	if s.Interned() != 10 {
		t.Fatalf("Interned() = %d, want 10", s.Interned())
	}
	// Write through the ID path, read through both.
	p := &txn.Piece{
		ReadSet: keys[3:4], WriteSet: keys[3:4],
		ReadIDs: []txn.KeyID{3}, WriteIDs: []txn.KeyID{3},
		Exec: func(kv txn.KV) []byte {
			ikv := kv.(txn.IDKV)
			v := txn.EncodeInt(txn.DecodeInt(ikv.GetID(3)) + 1)
			ikv.PutID(3, v)
			return v
		},
	}
	s.Execute(id(1), ts(5), p)
	if txn.DecodeInt(s.Get(keys[3])) != 1 || txn.DecodeInt(s.GetID(3)) != 1 {
		t.Fatal("ID write invisible through one of the two indexes")
	}
	s.Commit(id(1))
	if txn.DecodeInt(s.Get(keys[3])) != 1 {
		t.Fatal("commit lost the ID write")
	}
	// Write through the string path, read through the ID path.
	s.Execute(id(2), ts(6), txn.IncrementPiece(keys[7]))
	if txn.DecodeInt(s.GetID(7)) != 1 {
		t.Fatal("string write invisible through GetID")
	}
	s.Revoke(id(2))
	if txn.DecodeInt(s.GetID(7)) != 0 {
		t.Fatal("revoke invisible through GetID")
	}
}

// TestInternedRevokeAndRetain drives the ID write path through retain mode:
// high-water and GetAtID must behave exactly like their string twins.
func TestInternedRevokeAndRetain(t *testing.T) {
	s, keys := seedN(4)
	s.EnableSnapshots()
	inc := func(kid txn.KeyID) *txn.Piece {
		return &txn.Piece{
			ReadSet: keys[kid : kid+1], WriteSet: keys[kid : kid+1],
			ReadIDs: []txn.KeyID{kid}, WriteIDs: []txn.KeyID{kid},
			Exec: func(kv txn.KV) []byte {
				ikv := kv.(txn.IDKV)
				v := txn.EncodeInt(txn.DecodeInt(ikv.GetID(kid)) + 1)
				ikv.PutID(kid, v)
				return v
			},
		}
	}
	for i := uint64(1); i <= 3; i++ {
		s.Execute(id(i), ts(int64(i*10)), inc(2))
		s.Commit(id(i))
	}
	if hw := s.HighWater(keys[2]); hw.Time != 30 {
		t.Fatalf("high-water via ID commits = %v, want 30", hw.Time)
	}
	if val, seen, ok := s.GetAtID(2, 15); !ok || txn.DecodeInt(val) != 1 || seen.Time != 10 {
		t.Fatalf("GetAtID(2, 15) = %d @%v ok=%v, want 1 @10", txn.DecodeInt(val), seen.Time, ok)
	}
	// A revoked ID write disappears from both views.
	s.Execute(id(9), ts(40), inc(2))
	s.Revoke(id(9))
	if txn.DecodeInt(s.GetID(2)) != 3 || txn.DecodeInt(s.Get(keys[2])) != 3 {
		t.Fatal("revoked ID write leaked")
	}
	// Pivot is the ts30 version; the seed and the ts10/ts20 versions drop.
	if n := s.PruneTo(30); n != 3 {
		t.Fatalf("PruneTo dropped %d versions, want 3", n)
	}
	if txn.DecodeInt(s.GetID(2)) != 3 {
		t.Fatal("prune damaged newest version")
	}
}

// TestSnapshotRoundTrip100k is the satellite pin: a 100k-key snapshot must
// round-trip Equal against its source, preserve the ID index, and stay
// isolated from later writes on either side.
func TestSnapshotRoundTrip100k(t *testing.T) {
	s, keys := seedN(100_000)
	// Dirty a few keys so the copy carries real version chains and pending
	// state, not just seeds.
	for i := uint64(1); i <= 50; i++ {
		s.Execute(id(i), ts(int64(i)), txn.IncrementPiece(keys[i*7%100_000]))
		if i%2 == 0 {
			s.Commit(id(i))
		}
	}
	cp := s.Snapshot()
	if !s.Equal(cp) || !cp.Equal(s) {
		t.Fatal("snapshot does not round-trip Equal")
	}
	if cp.Interned() != s.Interned() {
		t.Fatalf("snapshot lost the ID index: %d vs %d", cp.Interned(), s.Interned())
	}
	if txn.DecodeInt(cp.GetID(777)) != txn.DecodeInt(s.GetID(777)) {
		t.Fatal("snapshot GetID disagrees")
	}
	// Pending state carried over: committing an odd (uncommitted) txn on the
	// copy must work and must not touch the original.
	before := txn.DecodeInt(s.Get(keys[7]))
	cp.Commit(id(1))
	if txn.DecodeInt(s.Get(keys[7])) != before {
		t.Fatal("copy commit leaked into original")
	}
	cp.Execute(id(1000), ts(1000), txn.IncrementPiece(keys[0]))
	if s.Equal(cp) {
		t.Fatal("Equal blind to post-snapshot divergence")
	}
}
