package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	comps := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("comps = %v, want one 3-cycle", comps)
	}
}

func TestSCCChainIsReverseTopological(t *testing.T) {
	g := New()
	// 3 depends on 2 depends on 1 (edges point at dependencies).
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	comps := g.SCC()
	if len(comps) != 3 {
		t.Fatalf("want 3 singleton components, got %v", comps)
	}
	// Dependencies first: 1, 2, 3.
	for i, want := range []uint64{1, 2, 3} {
		if comps[i][0] != want {
			t.Fatalf("comps = %v, want deps-first order", comps)
		}
	}
}

func TestSCCTwoCyclesBridge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(3, 1) // second cycle depends on first
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %v", comps)
	}
	if comps[0][0] != 1 || comps[1][0] != 3 {
		t.Fatalf("dependency order wrong: %v", comps)
	}
}

func TestSCCDeterministic(t *testing.T) {
	build := func(perm []int) [][]uint64 {
		g := New()
		edges := [][2]uint64{{1, 2}, {2, 3}, {3, 1}, {4, 1}, {5, 4}, {6, 6}}
		for _, i := range perm {
			g.AddEdge(edges[i][0], edges[i][1])
		}
		return g.SCC()
	}
	a := build([]int{0, 1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 0, 2})
	if len(a) != len(b) {
		t.Fatal("non-deterministic SCC count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("component %d differs: %v vs %v", i, a, b)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("component %d differs: %v vs %v", i, a, b)
			}
		}
	}
}

func TestHasCycleFrom(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.HasCycleFrom(1) {
		t.Fatal("chain has no cycle")
	}
	g.AddEdge(3, 1)
	if !g.HasCycleFrom(1) {
		t.Fatal("cycle undetected")
	}
	if !g.HasCycleFrom(2) {
		t.Fatal("cycle undetected from 2")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge(7, 7)
	if !g.HasCycleFrom(7) {
		t.Fatal("self-loop is a cycle")
	}
	comps := g.SCC()
	if len(comps) != 1 || comps[0][0] != 7 {
		t.Fatalf("comps = %v", comps)
	}
}

func TestRemove(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	g.Remove(2)
	if g.Len() != 2 || g.Edges() != 0 {
		t.Fatalf("after Remove: len=%d edges=%d", g.Len(), g.Edges())
	}
}

func TestReady(t *testing.T) {
	g := New()
	g.AddEdge(2, 1)
	g.AddNode(3)
	ready := g.Ready()
	if len(ready) != 2 || ready[0] != 1 || ready[1] != 3 {
		t.Fatalf("ready = %v, want [1 3]", ready)
	}
}

// Property: every vertex appears in exactly one SCC, and the SCC partition
// covers the graph.
func TestSCCPartitionProperty(t *testing.T) {
	check := func(edges [][2]uint8) bool {
		g := New()
		for _, e := range edges {
			g.AddEdge(uint64(e[0]%32), uint64(e[1]%32))
		}
		seen := make(map[uint64]int)
		for _, comp := range g.SCC() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != g.Len() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: components appear in dependency order — no component contains an
// edge pointing to a later component.
func TestSCCTopologicalProperty(t *testing.T) {
	check := func(edges [][2]uint8) bool {
		g := New()
		for _, e := range edges {
			g.AddEdge(uint64(e[0]%24), uint64(e[1]%24))
		}
		comps := g.SCC()
		pos := make(map[uint64]int)
		for i, comp := range comps {
			for _, v := range comp {
				pos[v] = i
			}
		}
		for i, comp := range comps {
			for _, v := range comp {
				for _, w := range g.Neighbors(v) {
					if pos[w] > i {
						return false // dependency ordered after dependent
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
