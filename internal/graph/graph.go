// Package graph implements the dependency-graph machinery used by the Janus
// and Detock baselines: strongly-connected-component computation (Tarjan) for
// deterministic execution of conflict cycles, and cycle detection for
// deadlock resolution. These are the "intensive graph algorithms" whose CPU
// cost Tiga's evaluation contrasts against timestamp ordering (§1, §5.2).
package graph

import "sort"

// Graph is a directed graph over transaction vertices identified by uint64.
type Graph struct {
	adj map[uint64]map[uint64]struct{}
}

// New returns an empty graph.
func New() *Graph { return &Graph{adj: make(map[uint64]map[uint64]struct{})} }

// AddNode ensures v exists.
func (g *Graph) AddNode(v uint64) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[uint64]struct{})
	}
}

// AddEdge adds a dependency edge u -> v (u must execute before v... or, in
// Janus terms, v depends on u).
func (g *Graph) AddEdge(u, v uint64) {
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] = struct{}{}
}

// Remove deletes v and all incident edges.
func (g *Graph) Remove(v uint64) {
	delete(g.adj, v)
	for _, out := range g.adj {
		delete(out, v)
	}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.adj) }

// Edges returns the out-degree sum (test helper / cost model input).
func (g *Graph) Edges() int {
	n := 0
	for _, out := range g.adj {
		n += len(out)
	}
	return n
}

// Neighbors returns v's out-neighbors in sorted order.
func (g *Graph) Neighbors(v uint64) []uint64 {
	out := make([]uint64, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SCC computes strongly connected components with Tarjan's algorithm,
// returned in reverse topological order (dependencies first). Vertices inside
// a component are sorted ascending, giving the deterministic tie-break Janus
// uses to execute cyclic conflicts identically on every server.
func (g *Graph) SCC() [][]uint64 {
	index := make(map[uint64]int, len(g.adj))
	low := make(map[uint64]int, len(g.adj))
	onStack := make(map[uint64]bool, len(g.adj))
	var stack []uint64
	var comps [][]uint64
	next := 0

	vertices := make([]uint64, 0, len(g.adj))
	for v := range g.adj {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })

	// Iterative Tarjan to avoid deep recursion on long dependency chains.
	type frame struct {
		v     uint64
		succs []uint64
		i     int
	}
	for _, root := range vertices {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root, succs: g.Neighbors(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: g.Neighbors(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors processed: pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []uint64
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// HasCycleFrom reports whether v participates in a cycle reachable from
// itself — Detock's deadlock-detection primitive.
func (g *Graph) HasCycleFrom(v uint64) bool {
	visited := make(map[uint64]bool)
	var stack []uint64
	stack = append(stack, v)
	first := true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == v && !first {
			return true
		}
		first = false
		if visited[u] {
			continue
		}
		visited[u] = true
		for w := range g.adj[u] {
			if w == v {
				return true
			}
			if !visited[w] {
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Ready returns vertices with no outstanding dependencies (empty adjacency
// after dependency removal), sorted ascending.
func (g *Graph) Ready() []uint64 {
	var out []uint64
	for v, deps := range g.adj {
		if len(deps) == 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
