package chaos

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func testEnv(seed int64) Env {
	return Env{
		Seed: seed, Horizon: 16 * time.Second,
		Shards: 3, Replicas: 3, ServerRegions: 3,
		ServerRegion: func(shard, replica int) int { return replica },
		Clocks:       17,
		Rand:         rand.New(rand.NewSource(seed)),
	}
}

func TestRegistryDiscovery(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("want at least 6 canned plans, have %d: %v", len(names), names)
	}
	for _, want := range []string{"leader-crash", "leader-kill", "region-outage",
		"wan-partition", "flaky-link", "clock-step", "ntp-insanity"} {
		p, ok := Lookup(want)
		if !ok {
			t.Fatalf("canned plan %q not registered (have %v)", want, names)
		}
		if p.Doc == "" {
			t.Errorf("plan %q has no doc line", want)
		}
		if p.Window.End <= p.Window.Start {
			t.Errorf("plan %q has an empty window", want)
		}
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Fatal("Lookup invented a plan")
	}
	// Names is sorted (stable CLI listings and error messages).
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// TestPlansDeterministic: instantiating any plan twice against equal
// environments yields the identical event schedule — the property that makes
// every chaos run replayable from its seed.
func TestPlansDeterministic(t *testing.T) {
	for _, name := range Names() {
		p, _ := Lookup(name)
		a := p.Events(testEnv(42))
		b := p.Events(testEnv(42))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %q is not deterministic for a fixed env", name)
		}
		c := p.Events(testEnv(43))
		_ = c // a different seed may or may not change the schedule; it must not panic
	}
}

// TestPlanEventsInsideRun: every canned event fires inside the fig11-family
// horizon and within (or at the edges of) the plan's declared window, so the
// chaos matrix's phase accounting covers every event.
func TestPlanEventsInsideRun(t *testing.T) {
	for _, name := range Names() {
		p, _ := Lookup(name)
		for _, e := range p.Events(testEnv(42)) {
			if e.At < p.Window.Start || e.At > p.Window.End {
				t.Errorf("plan %q: event %v at %v outside window [%v,%v]",
					name, e.Op, e.At, p.Window.Start, p.Window.End)
			}
		}
	}
}

// TestLeaderCrashSchedule pins the schedule the fig11b/c rewrite depends on:
// crash shard 1 replica 0 at 5s, reboot at 9s, in that order.
func TestLeaderCrashSchedule(t *testing.T) {
	p, _ := Lookup("leader-crash")
	evs := p.Events(testEnv(42))
	want := []Event{
		{At: 5 * time.Second, Op: OpCrash, Shard: 1, Replica: 0},
		{At: 9 * time.Second, Op: OpReboot, Shard: 1, Replica: 0},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("leader-crash schedule = %+v, want %+v", evs, want)
	}
	k, _ := Lookup("leader-kill")
	kevs := k.Events(testEnv(42))
	if !reflect.DeepEqual(kevs, want[:1]) {
		t.Fatalf("leader-kill schedule = %+v, want the crash only", kevs)
	}
}

// TestRegionOutageTargetsRegion0: with co-located placement (replica r in
// region r) the outage crashes exactly replica 0 of every shard.
func TestRegionOutageTargetsRegion0(t *testing.T) {
	p, _ := Lookup("region-outage")
	evs := p.Events(testEnv(42))
	crashes := 0
	for _, e := range evs {
		if e.Op == OpCrash {
			crashes++
			if e.Replica != 0 {
				t.Errorf("outage crashed replica %d of shard %d; co-located region 0 is replica 0", e.Replica, e.Shard)
			}
		}
	}
	if crashes != 3 {
		t.Fatalf("outage crashed %d servers, want one per shard (3)", crashes)
	}
}
