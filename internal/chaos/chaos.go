// Package chaos is the declarative fault-plan model: a Plan is a named,
// seed-deterministic schedule of timed Events — crash/reboot a server,
// partition and heal region sets, degrade specific WAN links, and step or
// freeze per-node clocks. Plans register themselves by name (mirroring the
// topology and workload registries), so experiments select a fault scenario
// the same way they select a WAN or a mix, and the chaos-matrix experiment
// sweeps protocol × plan.
//
// The package is pure data: an Event says what happens and when, never how.
// The harness owns the applier that schedules events on a deployment's
// simulator and dispatches them to the capability that implements each kind
// (protocol.Faultable for crashes, simnet.Network for partitions and link
// faults, clocks.Adjustable for clock misbehavior). That split keeps plans
// portable across protocols and leaves every plan replayable from its seed.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Op is the kind of one fault event.
type Op int

// The event kinds a plan can schedule.
const (
	// OpCrash / OpReboot kill and revive one server replica through
	// protocol.Faultable (reboot triggers the protocol's own recovery).
	OpCrash Op = iota
	OpReboot
	// OpPartition / OpHeal cut and restore all traffic between two region
	// sets (simnet.Network.PartitionRegions / HealRegions).
	OpPartition
	OpHeal
	// OpDegradeLink / OpRestoreLink install and remove extra one-way delay,
	// jitter, and loss on one region link (simnet.Network.DegradeLink).
	OpDegradeLink
	OpRestoreLink
	// OpClockStep / OpClockFreeze / OpClockUnfreeze misbehave one node clock
	// (or every clock, Clock == AllClocks) via clocks.Adjustable. They can
	// only hurt performance: protocols that never read a clock are
	// untouched, and clock-dependent protocols must stay correct — the
	// paper's correctness-without-clocks claim, which the chaos matrix
	// re-checks with the serializability checker under every plan.
	OpClockStep
	OpClockFreeze
	OpClockUnfreeze
)

func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpReboot:
		return "reboot"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpDegradeLink:
		return "degrade-link"
	case OpRestoreLink:
		return "restore-link"
	case OpClockStep:
		return "clock-step"
	case OpClockFreeze:
		return "clock-freeze"
	case OpClockUnfreeze:
		return "clock-unfreeze"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AllClocks targets every deployment clock in a clock event.
const AllClocks = -1

// Event is one timed fault. Only the operand group selected by Op is
// meaningful; the zero value of the rest is ignored by the applier.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	Op Op
	// Shard/Replica address one server (OpCrash, OpReboot).
	Shard, Replica int
	// GroupA/GroupB are the region-id sets of a partition (OpPartition,
	// OpHeal — heal must name the same sets the partition did).
	GroupA, GroupB []int
	// LinkA/LinkB name the region pair of a link fault (OpDegradeLink,
	// OpRestoreLink); ExtraOWD/ExtraJitter/Loss are the fault parameters.
	LinkA, LinkB          int
	ExtraOWD, ExtraJitter time.Duration
	Loss                  float64
	// Clock indexes a deployment clock in creation order (AllClocks = every
	// clock); Step is the offset jump for OpClockStep.
	Clock int
	Step  time.Duration
}

// Window is the nominal fault window of a plan: the chaos matrix reports
// throughput, commit rate, and tail latency separately for the phases
// before Start, inside [Start, End), and after End.
type Window struct {
	Start, End time.Duration
}

// Env describes the deployment a plan is instantiated against, so canned
// plans scale to any shape. Rand is seeded deterministically per run; a
// plan that draws from it is replayable from the seed.
type Env struct {
	// Seed is the run's chaos seed (Rand is already seeded with it).
	Seed int64
	// Horizon is the run's total driven duration.
	Horizon time.Duration
	// Shards and Replicas give the server grid (protocol.Faultable shape
	// when the system supports faults; the spec's shape otherwise).
	Shards, Replicas int
	// ServerRegions is how many regions host server replicas.
	ServerRegions int
	// ServerRegion maps (shard, replica) to its region id.
	ServerRegion func(shard, replica int) int
	// Clocks is how many per-node clocks the deployment created (0 for
	// protocols that never read one).
	Clocks int
	// Rand is the plan's deterministic randomness source.
	Rand *rand.Rand
}

// Plan is one named fault scenario.
type Plan struct {
	// Name is the registry key (tigabench -chaos).
	Name string
	// Doc is a one-line description for discovery tooling (-chaos list).
	Doc string
	// Window is the nominal fault window for phase reporting.
	Window Window
	// Crashes marks plans containing OpCrash/OpReboot events: they apply
	// only to systems implementing protocol.Faultable, and the chaos matrix
	// excludes the rest by design (with a note, mirroring the sweeps'
	// exclusion remarks).
	Crashes bool
	// Events instantiates the schedule for a deployment shape. It must be
	// deterministic given env (draw randomness only from env.Rand).
	Events func(env Env) []Event
}

var registry = map[string]Plan{}

// Register makes a plan available under its name. It is intended to be
// called from package init functions and panics on duplicate names, missing
// event builders, or an empty window (mirroring the other registries).
func Register(p Plan) {
	if p.Name == "" || p.Events == nil {
		panic("chaos: Register requires a name and an event builder")
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("chaos: duplicate registration of %q", p.Name))
	}
	if p.Window.End <= p.Window.Start {
		panic(fmt.Sprintf("chaos: plan %q has an empty fault window", p.Name))
	}
	registry[p.Name] = p
}

// Names returns every registered plan name in alphabetical order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the registered plan for name.
func Lookup(name string) (Plan, bool) {
	p, ok := registry[name]
	return p, ok
}
