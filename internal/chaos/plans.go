package chaos

import "time"

// The canned plan library. Every plan shares the Fig 11 family's timing —
// the fault strikes at 5 s and clears at 9 s — so runs of the chaos matrix
// report the same pre/fault/post phases for every scenario, and the
// leader-crash plan reproduces fig11b/c's crash-plus-reboot schedule
// exactly.
const (
	faultAt = 5 * time.Second
	healAt  = 9 * time.Second
)

func window() Window { return Window{Start: faultAt, End: healAt} }

// crashShard picks the shard the single-server crash plans target: shard 1
// (the Fig 11 victim), clamped for single-shard deployments.
func crashShard(env Env) int {
	if env.Shards > 1 {
		return 1
	}
	return 0
}

func init() {
	Register(Plan{
		Name:    "leader-crash",
		Doc:     "crash shard 1's serving replica at 5s, reboot it at 9s (the fig11b/c schedule: recovery is the protocol's problem)",
		Window:  window(),
		Crashes: true,
		Events: func(env Env) []Event {
			s := crashShard(env)
			return []Event{
				{At: faultAt, Op: OpCrash, Shard: s, Replica: 0},
				{At: healAt, Op: OpReboot, Shard: s, Replica: 0},
			}
		},
	})
	Register(Plan{
		Name:    "leader-kill",
		Doc:     "crash shard 1's serving replica at 5s and never reboot it (the fig11 schedule: only a view change can restore service)",
		Window:  window(),
		Crashes: true,
		Events: func(env Env) []Event {
			return []Event{{At: faultAt, Op: OpCrash, Shard: crashShard(env), Replica: 0}}
		},
	})
	Register(Plan{
		Name:    "region-outage",
		Doc:     "crash every server replica in region 0 at 5s (all co-located leaders at once), reboot them at 9s",
		Window:  window(),
		Crashes: true,
		Events: func(env Env) []Event {
			var evs []Event
			for s := 0; s < env.Shards; s++ {
				for r := 0; r < env.Replicas; r++ {
					if env.ServerRegion(s, r) != 0 {
						continue
					}
					evs = append(evs,
						Event{At: faultAt, Op: OpCrash, Shard: s, Replica: r},
						Event{At: healAt, Op: OpReboot, Shard: s, Replica: r})
				}
			}
			return evs
		},
	})
	Register(Plan{
		Name:   "wan-partition",
		Doc:    "cut all traffic between server regions 0 and 1 at 5s, heal at 9s (replication reroutes through the surviving region)",
		Window: window(),
		Events: func(env Env) []Event {
			if env.ServerRegions < 2 {
				return nil
			}
			a, b := []int{0}, []int{1}
			return []Event{
				{At: faultAt, Op: OpPartition, GroupA: a, GroupB: b},
				{At: healAt, Op: OpHeal, GroupA: a, GroupB: b},
			}
		},
	})
	Register(Plan{
		Name:   "flaky-link",
		Doc:    "degrade the region 0<->1 link at 5s (+20ms OWD, 10ms jitter, 5% loss), restore at 9s",
		Window: window(),
		Events: func(env Env) []Event {
			if env.ServerRegions < 2 {
				return nil
			}
			return []Event{
				{At: faultAt, Op: OpDegradeLink, LinkA: 0, LinkB: 1,
					ExtraOWD: 20 * time.Millisecond, ExtraJitter: 10 * time.Millisecond, Loss: 0.05},
				{At: healAt, Op: OpRestoreLink, LinkA: 0, LinkB: 1},
			}
		},
	})
	Register(Plan{
		Name:   "clock-step",
		Doc:    "step the first server's clock +60ms at 5s and -60ms at 9s (the back-step plateaus at the monotonic high-water mark)",
		Window: window(),
		Events: func(env Env) []Event {
			return []Event{
				{At: faultAt, Op: OpClockStep, Clock: 0, Step: 60 * time.Millisecond},
				{At: healAt, Op: OpClockStep, Clock: 0, Step: -60 * time.Millisecond},
			}
		},
	})
	Register(Plan{
		Name:   "ntp-insanity",
		Doc:    "freeze one clock and step a random clock by up to ±75ms every 250ms for the whole fault window (seed-deterministic)",
		Window: window(),
		Events: func(env Env) []Event {
			clocks := env.Clocks
			if clocks < 1 {
				clocks = 1 // still emit the schedule; clockless systems no-op
			}
			frozen := 1 % clocks
			evs := []Event{{At: faultAt, Op: OpClockFreeze, Clock: frozen}}
			for at := faultAt + 250*time.Millisecond; at < healAt; at += 250 * time.Millisecond {
				step := time.Duration(env.Rand.Int63n(int64(150*time.Millisecond))) - 75*time.Millisecond
				evs = append(evs, Event{
					At: at, Op: OpClockStep,
					Clock: env.Rand.Intn(clocks), Step: step,
				})
			}
			return append(evs, Event{At: healAt, Op: OpClockUnfreeze, Clock: frozen})
		},
	})
}
