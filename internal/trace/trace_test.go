package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

const ms = time.Millisecond

// The walk must attribute exactly End-Start no matter how marks are placed:
// in order, out of order, before Start, past End, or absent entirely.
func TestBreakdownSumsExactly(t *testing.T) {
	cases := []struct {
		name  string
		start time.Duration
		end   time.Duration
		marks []Mark
	}{
		{"ordinary chain", 10 * ms, 100 * ms, []Mark{
			{20 * ms, PhaseDispatch}, {50 * ms, PhaseFlight}, {70 * ms, PhaseHeadroom}, {100 * ms, PhaseFlight}}},
		{"no marks", 0, 42 * ms, nil},
		{"mark before start", 50 * ms, 80 * ms, []Mark{{10 * ms, PhaseFlight}, {60 * ms, PhaseExec}}},
		{"mark past end", 0, 30 * ms, []Mark{{10 * ms, PhaseFlight}, {90 * ms, PhaseRepl}}},
		{"non-monotone marks", 0, 40 * ms, []Mark{
			{30 * ms, PhaseFlight}, {10 * ms, PhaseExec}, {40 * ms, PhaseRepl}}},
		{"zero-length trace", 5 * ms, 5 * ms, []Mark{{5 * ms, PhaseFlight}}},
	}
	for _, c := range cases {
		tr := &T{Start: c.start, End: c.end, Marks: c.marks}
		bd := tr.Breakdown()
		if got, want := bd.Total(), c.end-c.start; got != want {
			t.Errorf("%s: breakdown sums to %v, want %v (%+v)", c.name, got, want, bd)
		}
		fine := tr.Phases()
		var ft time.Duration
		for _, d := range fine {
			ft += d
		}
		if want := c.end - c.start; ft != want {
			t.Errorf("%s: fine phases sum to %v, want %v", c.name, ft, want)
		}
	}
}

func TestWalkAttribution(t *testing.T) {
	tr := &T{Start: 0, End: 100 * ms, Marks: []Mark{
		{10 * ms, PhaseDispatch}, // 10ms dispatch -> other
		{40 * ms, PhaseFlight},   // 30ms flight -> wrtt
		{60 * ms, PhaseHeadroom}, // 20ms headroom
		{70 * ms, PhaseRepl},     // 10ms repl
		// 30ms tail unattributed -> other
	}}
	bd := tr.Breakdown()
	if bd[BucketWRTT] != 30*ms || bd[BucketHeadroom] != 20*ms || bd[BucketRepl] != 10*ms ||
		bd[BucketOther] != 40*ms || bd[BucketQueue] != 0 || bd[BucketLockVal] != 0 {
		t.Fatalf("unexpected attribution: %+v", bd)
	}
}

func TestPhaseBucketRollup(t *testing.T) {
	for p := 0; p < NumPhases; p++ {
		if int(Phase(p).Bucket()) >= NumBuckets {
			t.Fatalf("phase %v maps outside the bucket range", Phase(p))
		}
	}
	if PhaseFlight.Bucket() != BucketWRTT || PhaseQueue.Bucket() != BucketQueue ||
		PhaseHeadroom.Bucket() != BucketHeadroom || PhasePQ.Bucket() != BucketHeadroom ||
		PhaseSafeTime.Bucket() != BucketHeadroom || PhaseLockWait.Bucket() != BucketLockVal ||
		PhaseRepl.Bucket() != BucketRepl {
		t.Fatal("phase->bucket mapping drifted from the documented taxonomy")
	}
}

// Disabled tracing is a nil tracer and nil traces: every hook must be a
// no-op, and none may allocate.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tt := tr.Begin("x", 0)
	if tt != nil {
		t.Fatal("nil tracer handed out a trace")
	}
	tt.Mark(10*ms, PhaseFlight) // must not panic
	if bd := tr.Finish(tt, 20*ms, true); bd != (Breakdown{}) {
		t.Fatalf("nil finish returned %+v", bd)
	}
	if tr.Summary() != nil {
		t.Fatal("nil tracer produced a summary")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tt := tr.Begin("x", 0)
		tt.Mark(10*ms, PhaseFlight)
		tr.Finish(tt, 20*ms, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per txn, want 0", allocs)
	}
}

func TestTopKRetention(t *testing.T) {
	tr := New("run", Config{Seed: 1, TopK: 3, SampleEvery: -1})
	lats := []time.Duration{50 * ms, 10 * ms, 90 * ms, 30 * ms, 90 * ms, 70 * ms}
	for _, lat := range lats {
		tt := tr.Begin("txn", 0)
		tr.Finish(tt, lat, true)
	}
	s := tr.Summary()
	if s.Count != len(lats) {
		t.Fatalf("count %d, want %d", s.Count, len(lats))
	}
	if len(s.Exemplars) != 3 {
		t.Fatalf("retained %d exemplars, want 3", len(s.Exemplars))
	}
	// Top-3 latencies are 90 (idx 2), 90 (idx 4), 70 (idx 5); exemplars are
	// reported in submission order. The 90ms tie keeps the earlier index.
	wantIdx := []int{2, 4, 5}
	for i, ex := range s.Exemplars {
		if ex.Idx != wantIdx[i] {
			t.Fatalf("exemplar %d has idx %d, want %d", i, ex.Idx, wantIdx[i])
		}
	}
}

// The 1-in-N sample must be a pure function of (seed, submission index).
func TestSamplingDeterminism(t *testing.T) {
	pick := func() []int {
		tr := New("run", Config{Seed: 42, SampleEvery: 4, TopK: -1})
		var got []int
		for i := 0; i < 256; i++ {
			tt := tr.Begin("txn", 0)
			tr.Finish(tt, time.Duration(i)*ms, true)
		}
		for _, ex := range tr.Summary().Exemplars {
			got = append(got, ex.Idx)
		}
		return got
	}
	a, b := pick(), pick()
	if len(a) == 0 {
		t.Fatal("1-in-4 sample retained nothing out of 256")
	}
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed picks a different slice (overwhelmingly likely).
	tr := New("run", Config{Seed: 43, SampleEvery: 4, TopK: -1})
	for i := 0; i < 256; i++ {
		tr.Finish(tr.Begin("txn", 0), time.Duration(i)*ms, true)
	}
	var c []int
	for _, ex := range tr.Summary().Exemplars {
		c = append(c, ex.Idx)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 sampled identical index sets")
	}
}

// Uncommitted traces are recycled, never retained, and recycled envelopes
// are reused (pool behavior).
func TestRecycling(t *testing.T) {
	tr := New("run", Config{Seed: 1, TopK: 1, SampleEvery: -1})
	t1 := tr.Begin("a", 0)
	t1.Mark(10*ms, PhaseFlight)
	tr.Finish(t1, 10*ms, false) // aborted -> recycled
	t2 := tr.Begin("b", 0)
	if t2 != t1 {
		t.Fatal("aborted trace was not recycled")
	}
	if len(t2.Marks) != 0 || t2.Label != "b" || t2.Idx != 1 {
		t.Fatalf("recycled trace kept stale state: %+v", t2)
	}
	if tr.Summary().Count != 0 {
		t.Fatal("aborted trace counted as committed")
	}
}

func TestChromeExport(t *testing.T) {
	tr := New("Tiga seed=42", Config{Seed: 42, TopK: 2, SampleEvery: -1})
	tt := tr.Begin("micro", 5*ms)
	tt.Mark(10*ms, PhaseDispatch)
	tt.Mark(60*ms, PhaseFlight)
	tt.Mark(80*ms, PhaseHeadroom)
	tt.Mark(100*ms, PhaseFlight)
	tr.Finish(tt, 100*ms, true)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*Summary{tr.Summary()}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	known := make(map[string]bool)
	for _, n := range PhaseNames() {
		known[n] = true
	}
	var taxonomy, slices int
	var sliceUS float64
	for _, e := range doc.TraceEvents {
		if e.Name == "phase_taxonomy" {
			taxonomy++
			phases := e.Args["phases"].([]any)
			if len(phases) != NumPhases {
				t.Fatalf("taxonomy lists %d phases, want %d", len(phases), NumPhases)
			}
		}
		if e.Ph == "X" && e.Cat != "txn" {
			slices++
			sliceUS += e.Dur
			if !known[e.Name] {
				t.Fatalf("slice %q is not a known phase name", e.Name)
			}
		}
	}
	if taxonomy != 1 {
		t.Fatalf("want exactly one phase_taxonomy event, got %d", taxonomy)
	}
	if slices == 0 {
		t.Fatal("export has no phase slices")
	}
	if want := us(95 * ms); sliceUS != want {
		t.Fatalf("phase slices tile %vus, want %vus (the whole envelope)", sliceUS, want)
	}
}

// A trace's breakdown and the Chrome export's slices are two views of the
// same walk; Summary phase accumulators must agree with per-trace breakdowns.
func TestSummaryAccumulators(t *testing.T) {
	tr := New("run", Config{Seed: 7, TopK: -1, SampleEvery: -1})
	var want Breakdown
	for i := 0; i < 10; i++ {
		tt := tr.Begin("txn", 0)
		tt.Mark(time.Duration(i)*ms, PhaseFlight)
		tt.Mark(time.Duration(2*i)*ms, PhaseRepl)
		bd := tr.Finish(tt, time.Duration(3*i)*ms, true)
		bd.AddTo(&want)
		if bd.Total() != time.Duration(3*i)*ms {
			t.Fatalf("trace %d: total %v, want %v", i, bd.Total(), time.Duration(3*i)*ms)
		}
	}
	s := tr.Summary()
	if s.Phase != want {
		t.Fatalf("summary phase %+v, want %+v", s.Phase, want)
	}
	var fineTotal time.Duration
	for _, d := range s.ByPhase {
		fineTotal += d
	}
	if fineTotal != want.Total() {
		t.Fatalf("fine accumulator sums to %v, want %v", fineTotal, want.Total())
	}
}
