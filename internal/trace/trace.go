// Package trace is the observability layer's span recorder: a
// seed-deterministic, zero-cost-when-disabled record of where each
// transaction's end-to-end latency went, phase by phase, shared across Tiga
// and the layered baselines so protocols decompose like for like.
//
// # Model
//
// A transaction's trace is a *T carrying an ordered list of Marks. Each mark
// (At, Phase) means "attribute the interval from the previous mark (or Start)
// up to At to Phase". Protocol code appends marks from two sources:
//
//   - live, as coordinator events happen (admission-queue exit, dispatch,
//     retry firings), and
//   - at finish, from server-side timestamps carried back inside reply
//     messages (arrival, headroom expiry, release, execution end, Paxos
//     commit) — the decisive reply of the final attempt reconstructs the
//     critical path with no tracker-side maps and no per-message state.
//
// All timestamps are simulator time (one global domain), so the chain needs
// no clock translation. The breakdown walk is clamped and monotone: a mark at
// or before the cursor contributes zero, a mark past End is truncated, and
// any unattributed tail goes to PhaseOther — so the per-bucket sums equal
// End-Start EXACTLY, by construction, for every trace (the property the
// harness exactness test pins).
//
// # Determinism and cost
//
// Tracing is enabled per run by handing the load driver a Config; the
// resulting Tracer is owned by that run's single-threaded simulation loop
// (like internal/pool freelists), so retained exemplars, phase accumulators,
// and the 1-in-N sample — selected by a hash of (seed, submission index),
// never by wall-clock or map order — are byte-identical across -workers.
// Disabled tracing is a nil *T on the transaction: every hook is a
// nil-receiver method call or a pointer test, with zero allocations on the
// disabled path (the PR 9 allocation gate covers it).
package trace

import (
	"time"
)

// Phase is the fine-grained lifecycle phase taxonomy. It is shared by every
// protocol: a phase a protocol does not have (Tiga never waits on locks, the
// layered baselines never wait out clock headroom) simply never appears.
type Phase uint8

const (
	// PhaseQueue is time spent in a coordinator admission queue before the
	// protocol started working on the transaction.
	PhaseQueue Phase = iota
	// PhaseDispatch is coordinator-side work between admission and the first
	// request leaving the node (timestamp minting, multicast fan-out).
	PhaseDispatch
	// PhaseFlight is network flight: request and reply propagation including
	// the simnet jitter draw and any CPU-queue departure delay.
	PhaseFlight
	// PhaseHeadroom is the server-side wait for the transaction's future
	// timestamp to pass the server's synchronized clock (Tiga §3.1).
	PhaseHeadroom
	// PhasePQ is priority-queue reorder delay: time between a transaction's
	// timestamp expiring and its actual release from the pq.
	PhasePQ
	// PhaseExec is piece execution on the server CPU.
	PhaseExec
	// PhaseLockWait is lock acquisition (2PL) or validation (OCC) time,
	// including execution under locks for the layered baselines.
	PhaseLockWait
	// PhaseRepl is replication: Tiga's slow-path wait for follower sync
	// points, or the layered baselines' Paxos commit-record round.
	PhaseRepl
	// PhaseDecision is coordinator-side quorum evaluation: the gap between
	// the decisive reply's arrival and the commit decision (normally zero —
	// the decision happens in the reply's own handler event).
	PhaseDecision
	// PhaseRetry is wasted attempts: everything between submission (or the
	// previous attempt) and a retry firing — timeout waits, abort backoff,
	// and the discarded attempt's own phases.
	PhaseRetry
	// PhaseSafeTime is the SAFETIME wait of a local snapshot read blocked
	// behind a lagging replica watermark.
	PhaseSafeTime
	// PhaseOther is the residual: any interval no mark claimed.
	PhaseOther

	// NumPhases is the taxonomy size.
	NumPhases = int(PhaseOther) + 1
)

var phaseNames = [NumPhases]string{
	"queue", "dispatch", "flight", "headroom", "pq", "exec",
	"lockwait", "repl", "decision", "retry", "safetime", "other",
}

// String returns the phase's stable lower-case name (golden output, Chrome
// export, CI validation all key on these).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "other"
}

// Bucket is the coarse reporting rollup of the phase taxonomy: the six
// columns of the breakdown tables.
type Bucket uint8

const (
	// BucketWRTT is network time (flight both ways, all attempts' sends).
	BucketWRTT Bucket = iota
	// BucketQueue is admission-queue wait.
	BucketQueue
	// BucketHeadroom is time waiting for a timestamp or watermark to pass:
	// clock headroom, pq reorder, and SAFETIME waits.
	BucketHeadroom
	// BucketLockVal is lock acquisition or validation work.
	BucketLockVal
	// BucketRepl is replication (Paxos rounds, slow-path sync waits).
	BucketRepl
	// BucketOther is everything else: dispatch, execution, decision gaps,
	// retry waste, and unattributed residue.
	BucketOther

	// NumBuckets is the rollup size.
	NumBuckets = int(BucketOther) + 1
)

var bucketNames = [NumBuckets]string{
	"wrtt", "queue", "headroom", "lockval", "repl", "other",
}

// String returns the bucket's stable lower-case name.
func (b Bucket) String() string {
	if int(b) < NumBuckets {
		return bucketNames[b]
	}
	return "other"
}

var phaseBucket = [NumPhases]Bucket{
	PhaseQueue:    BucketQueue,
	PhaseDispatch: BucketOther,
	PhaseFlight:   BucketWRTT,
	PhaseHeadroom: BucketHeadroom,
	PhasePQ:       BucketHeadroom,
	PhaseExec:     BucketOther,
	PhaseLockWait: BucketLockVal,
	PhaseRepl:     BucketRepl,
	PhaseDecision: BucketOther,
	PhaseRetry:    BucketOther,
	PhaseSafeTime: BucketHeadroom,
	PhaseOther:    BucketOther,
}

// Bucket returns the reporting bucket the phase rolls up into.
func (p Phase) Bucket() Bucket {
	if int(p) < NumPhases {
		return phaseBucket[p]
	}
	return BucketOther
}

// Breakdown is a per-bucket latency attribution. For a finished trace its
// entries sum exactly to End-Start.
type Breakdown [NumBuckets]time.Duration

// Total returns the sum over buckets.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// AddTo accumulates b into dst.
func (b *Breakdown) AddTo(dst *Breakdown) {
	for i, d := range b {
		dst[i] += d
	}
}

// Mark is one attribution point: the interval from the previous mark up to At
// belongs to Phase.
type Mark struct {
	At    time.Duration
	Phase Phase
}

// T is one transaction's trace. Protocol hooks call Mark on it; a nil *T
// (tracing disabled) makes every hook a no-op.
type T struct {
	// Idx is the run-local submission index (the tracer's Begin count) —
	// the deterministic identity sampling and tie-breaks key on.
	Idx int
	// Label tags the transaction type (workload label; "txn" when unset).
	Label string
	// Start and End bound the trace in simulator time.
	Start, End time.Duration
	// Committed reports whether the transaction committed.
	Committed bool
	// Marks is the attribution chain, in append order.
	Marks []Mark

	sampled bool
}

// Mark appends an attribution point. Safe on a nil receiver (tracing
// disabled): the hook costs one branch and nothing else.
func (t *T) Mark(at time.Duration, p Phase) {
	if t == nil {
		return
	}
	t.Marks = append(t.Marks, Mark{At: at, Phase: p})
}

// Latency returns End-Start.
func (t *T) Latency() time.Duration { return t.End - t.Start }

// walk attributes the trace's [Start, End] interval across fine-grained
// phases with a clamped monotone cursor: marks never move the cursor
// backwards or past End, and the unclaimed tail is PhaseOther. The result
// sums to End-Start exactly.
func (t *T) walk() (fine [NumPhases]time.Duration) {
	cur := t.Start
	for _, m := range t.Marks {
		at := m.At
		if at > t.End {
			at = t.End
		}
		if at <= cur {
			continue
		}
		fine[m.Phase] += at - cur
		cur = at
	}
	if t.End > cur {
		fine[PhaseOther] += t.End - cur
	}
	return fine
}

// Phases returns the fine-grained phase attribution (sums to End-Start).
func (t *T) Phases() [NumPhases]time.Duration { return t.walk() }

// Breakdown rolls the fine-grained walk into reporting buckets (sums to
// End-Start).
func (t *T) Breakdown() Breakdown {
	fine := t.walk()
	var bd Breakdown
	for p, d := range fine {
		bd[Phase(p).Bucket()] += d
	}
	return bd
}

// Config selects what a run's tracer retains.
type Config struct {
	// Seed feeds the deterministic 1-in-N sampler (hash of seed and
	// submission index — never an rng draw, so enabling tracing perturbs no
	// simulation randomness).
	Seed int64
	// SampleEvery retains every transaction whose sample hash lands in a
	// 1-in-SampleEvery slice (0 = 256; negative disables sampling).
	SampleEvery int
	// TopK retains the K slowest committed transactions' full span trees
	// (0 = 8; negative disables).
	TopK int
}

func (c Config) sampleEvery() int {
	if c.SampleEvery == 0 {
		return 256
	}
	return c.SampleEvery
}

func (c Config) topK() int {
	if c.TopK == 0 {
		return 8
	}
	return c.TopK
}

// Tracer records one run's traces. It is owned by the run's single-threaded
// simulation loop; the zero-cost disabled path is a nil *Tracer (Begin then
// returns nil, and every *T hook no-ops).
type Tracer struct {
	// Label names the run in exports (protocol, seed, operating point).
	Label string

	cfg   Config
	begun int

	// Accumulators over committed, finished traces.
	count   int
	phase   Breakdown
	byPhase [NumPhases]time.Duration

	top     []*T // K slowest committed, sorted slowest-first
	samples []*T // deterministic 1-in-N retained span trees
	free    []*T
}

// New returns a tracer for one run. A nil receiver everywhere downstream
// means "disabled", so callers can pass through a nil *Tracer untouched.
func New(label string, cfg Config) *Tracer {
	return &Tracer{Label: label, cfg: cfg}
}

// Begin starts a trace at the submission time. Returns nil (disabled) on a
// nil tracer.
func (tr *Tracer) Begin(label string, now time.Duration) *T {
	if tr == nil {
		return nil
	}
	var t *T
	if n := len(tr.free); n > 0 {
		t = tr.free[n-1]
		tr.free[n-1] = nil
		tr.free = tr.free[:n-1]
	} else {
		t = &T{}
	}
	if label == "" {
		label = "txn"
	}
	t.Idx = tr.begun
	t.Label = label
	t.Start = now
	t.End = now
	t.Committed = false
	t.Marks = t.Marks[:0]
	t.sampled = false
	tr.begun++
	return t
}

// Finish seals the trace at now and returns its bucket breakdown (which sums
// exactly to now-Start). When keep is set (committed inside the measurement
// window) the breakdown is accumulated and the trace considered for
// retention; otherwise the trace is recycled immediately. Nil-safe.
func (tr *Tracer) Finish(t *T, now time.Duration, keep bool) Breakdown {
	if tr == nil || t == nil {
		return Breakdown{}
	}
	t.End = now
	t.Committed = keep
	fine := t.walk()
	var bd Breakdown
	for p, d := range fine {
		bd[Phase(p).Bucket()] += d
	}
	if !keep {
		tr.recycle(t)
		return bd
	}
	tr.count++
	bd.AddTo(&tr.phase)
	for p, d := range fine {
		tr.byPhase[p] += d
	}
	tr.retain(t)
	return bd
}

// retain keeps t if it is hash-sampled or among the K slowest; otherwise it
// is recycled. All comparisons tie-break on submission index, so retention is
// a pure function of the seed.
func (tr *Tracer) retain(t *T) {
	if n := tr.cfg.sampleEvery(); n > 0 && sampleHash(tr.cfg.Seed, t.Idx)%uint64(n) == 0 {
		t.sampled = true
		tr.samples = append(tr.samples, t)
	}
	k := tr.cfg.topK()
	if k <= 0 {
		if !t.sampled {
			tr.recycle(t)
		}
		return
	}
	// Insert into the slowest-first top list; ties prefer the earlier
	// submission (deterministic and stable across workers).
	pos := len(tr.top)
	for pos > 0 && slower(t, tr.top[pos-1]) {
		pos--
	}
	if pos >= k {
		if !t.sampled {
			tr.recycle(t)
		}
		return
	}
	tr.top = append(tr.top, nil)
	copy(tr.top[pos+1:], tr.top[pos:])
	tr.top[pos] = t
	if len(tr.top) > k {
		evicted := tr.top[k]
		tr.top = tr.top[:k]
		if !evicted.sampled {
			tr.recycle(evicted)
		}
	}
}

// slower reports whether a outranks b in the top list: strictly higher
// latency, or equal latency and earlier submission.
func slower(a, b *T) bool {
	la, lb := a.Latency(), b.Latency()
	if la != lb {
		return la > lb
	}
	return a.Idx < b.Idx
}

func (tr *Tracer) recycle(t *T) {
	tr.free = append(tr.free, t)
}

// Summary is a run's sealed trace output: phase accumulators plus the
// retained exemplar span trees, ordered by submission index.
type Summary struct {
	// Label names the run (protocol, seed, operating point).
	Label string
	// Begun counts traces started; Count counts committed traces that were
	// accumulated (inside the measurement window).
	Begun, Count int
	// Phase sums the bucket breakdowns of the Count committed traces;
	// ByPhase is the same sum at fine phase granularity.
	Phase   Breakdown
	ByPhase [NumPhases]time.Duration
	// Exemplars are the retained span trees (top-K slowest plus the 1-in-N
	// sample), sorted by submission index and deduplicated.
	Exemplars []*T
}

// Mean returns the average per-transaction time in bucket b (0 with no
// committed traces).
func (s *Summary) Mean(b Bucket) time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Phase[b] / time.Duration(s.Count)
}

// Share returns bucket b's percentage of total attributed time.
func (s *Summary) Share(b Bucket) float64 {
	tot := s.Phase.Total()
	if tot == 0 {
		return 0
	}
	return 100 * float64(s.Phase[b]) / float64(tot)
}

// MeanTotal returns the average end-to-end latency of committed traces.
func (s *Summary) MeanTotal() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Phase.Total() / time.Duration(s.Count)
}

// Summary seals the tracer into its exportable form. Nil-safe (returns nil).
func (tr *Tracer) Summary() *Summary {
	if tr == nil {
		return nil
	}
	s := &Summary{
		Label: tr.Label, Begun: tr.begun, Count: tr.count,
		Phase: tr.phase, ByPhase: tr.byPhase,
	}
	seen := make(map[int]bool, len(tr.top)+len(tr.samples))
	for _, t := range tr.top {
		if !seen[t.Idx] {
			seen[t.Idx] = true
			s.Exemplars = append(s.Exemplars, t)
		}
	}
	for _, t := range tr.samples {
		if !seen[t.Idx] {
			seen[t.Idx] = true
			s.Exemplars = append(s.Exemplars, t)
		}
	}
	// Submission-index order: deterministic, and the Chrome export keeps
	// a stable thread layout.
	for i := 1; i < len(s.Exemplars); i++ {
		for j := i; j > 0 && s.Exemplars[j].Idx < s.Exemplars[j-1].Idx; j-- {
			s.Exemplars[j], s.Exemplars[j-1] = s.Exemplars[j-1], s.Exemplars[j]
		}
	}
	return s
}

// sampleHash mixes the tracer seed and a submission index (splitmix64
// finalizer) for the 1-in-N exemplar sample: deterministic, uniform, and
// independent of every simulation rng.
func sampleHash(seed int64, idx int) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(idx)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
