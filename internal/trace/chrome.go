package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome trace-event export: the retained exemplar span trees serialized in
// the Trace Event Format (the JSON object form with a traceEvents array), so
// `tigabench -trace out.json` produces a file Perfetto and chrome://tracing
// load directly. Each run summary becomes one process (pid), each exemplar
// transaction one thread (tid), and each attributed phase segment one
// complete ("X") event whose category is the reporting bucket.
//
// Output is deterministic: callers pass summaries in a stable order (the
// harness sorts by label), exemplars are ordered by submission index, and the
// segment walk is the same clamped monotone walk the breakdowns use.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// PhaseNames returns the full phase taxonomy in declaration order — the list
// the export's taxonomy metadata carries and CI validates slice names
// against.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	for i := range out {
		out[i] = Phase(i).String()
	}
	return out
}

// BucketNames returns the reporting-bucket names in declaration order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	for i := range out {
		out[i] = Bucket(i).String()
	}
	return out
}

// WriteChrome serializes the summaries' exemplar span trees as Chrome trace
// events. One metadata event per process names the run; a process-wide
// "phase_taxonomy" instant event lists every phase and bucket name so
// consumers (and the CI smoke check) can validate slice names without
// knowing the taxonomy a priori.
func WriteChrome(w io.Writer, sums []*Summary) error {
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "phase_taxonomy", Ph: "M", Pid: 0,
		Args: map[string]any{"phases": PhaseNames(), "buckets": BucketNames()},
	})
	for pid, s := range sums {
		if s == nil {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid + 1,
			Args: map[string]any{"name": s.Label},
		})
		for tid, t := range s.Exemplars {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid + 1, Tid: tid + 1,
				Args: map[string]any{
					"name": t.Label, "txn": t.Idx,
					"latency_ms": float64(t.Latency()) / float64(time.Millisecond),
				},
			})
			// The whole-transaction envelope, then the phase segments it
			// nests (same walk as the breakdown, so the slices tile the
			// envelope exactly).
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.Label, Cat: "txn", Ph: "X", Pid: pid + 1, Tid: tid + 1,
				Ts: us(t.Start), Dur: us(t.End - t.Start),
			})
			cur := t.Start
			emit := func(at time.Duration, p Phase) {
				if at > t.End {
					at = t.End
				}
				if at <= cur {
					return
				}
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: p.String(), Cat: p.Bucket().String(), Ph: "X",
					Pid: pid + 1, Tid: tid + 1, Ts: us(cur), Dur: us(at - cur),
				})
				cur = at
			}
			for _, m := range t.Marks {
				emit(m.At, m.Phase)
			}
			emit(t.End, PhaseOther)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
