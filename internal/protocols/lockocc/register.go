package lockocc

import (
	"time"

	"tiga/internal/protocol"
)

// The layered baselines pay for a lock manager (2PL) or per-replica
// validation (OCC) on top of Paxos replication, the highest per-transaction
// CPU work in Table 1's calibration.
//
// The vote-timeout default (10 s) is deliberately longer than any experiment
// horizon: the presumed-abort escape hatch exists (breaking cross-shard
// wound-wait cycles and finishing 2PCs across leader reboots) without
// perturbing the steady-state sweeps, which never leave a healthy
// transaction undecided that long. Recovery experiments dial it down.
func init() {
	register("2PL+Paxos", TwoPL, protocol.CostProfile{Exec: 17, Rank: 10})
	register("OCC+Paxos", OCC, protocol.CostProfile{Exec: 18, Rank: 20})
}

// The layered baselines support leader crash/reboot recovery (the Fig 11
// analogue for Paxos-backed systems).
var _ protocol.Faultable = (*System)(nil)

func register(name string, cc CC, cost protocol.CostProfile) {
	protocol.Register(name, cost,
		protocol.Schema{
			{Name: "max-retries", Type: protocol.KnobInt, Default: 4,
				Doc: "coordinator retries after an abort (wound, OCC conflict, or presumed abort) before reporting failure"},
			{Name: "retry-backoff", Type: protocol.KnobDuration, Default: 25 * time.Millisecond,
				Doc: "base backoff before a retry; multiplied by the attempt number"},
			{Name: "vote-timeout", Type: protocol.KnobDuration, Default: 10 * time.Second,
				Doc: "coordinator progress timer per attempt: presumed abort while gathering votes, commit-record re-send after the decision; 0 disables"},
			{Name: "local-reads", Type: protocol.KnobBool, Default: false,
				Doc: "serve read-only transactions from the nearest replica, gated by safe-time watermarks held below in-flight 2PC prepares"},
			{Name: "read-staleness", Type: protocol.KnobDuration, Default: time.Duration(0),
				Doc: "snapshot age for local reads: 0 = strong reads that wait out watermark lag; positive bounds trade staleness for near-zero waits"},
			{Name: "version-gc", Type: protocol.KnobBool, Default: false,
				Doc: "with local-reads: prune committed version history below the min replica watermark − read-staleness, piggybacked on the safe-time tick"},
			{Name: "admit-cap", Type: protocol.KnobInt, Default: 0,
				Doc: "max admitted in-flight transactions per coordinator (0 = no admission control)"},
			{Name: "admit-queue", Type: protocol.KnobInt, Default: 0,
				Doc: "admission wait-queue depth once admit-cap is reached; overflow is shed"},
			{Name: "shed-oldest", Type: protocol.KnobBool, Default: false,
				Doc: "shed policy on queue overflow: evict the oldest queued transaction instead of refusing the newcomer"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				CC: cc, Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
				ServerRegion: ctx.ServerRegion, CoordRegions: ctx.CoordRegions,
				Seed: ctx.SeedStore, ExecCost: ctx.ExecCost,
				MaxRetries:    ctx.Knobs.Int("max-retries"),
				RetryBackoff:  ctx.Knobs.Duration("retry-backoff"),
				VoteTimeout:   ctx.Knobs.Duration("vote-timeout"),
				LocalReads:    ctx.Knobs.Bool("local-reads"),
				ReadStaleness: ctx.Knobs.Duration("read-staleness"),
				VersionGC:     ctx.Knobs.Bool("version-gc"),
				AdmitCap:      ctx.Knobs.Int("admit-cap"),
				AdmitQueue:    ctx.Knobs.Int("admit-queue"),
				ShedOldest:    ctx.Knobs.Bool("shed-oldest"),
			})
		})
}
