package lockocc

import "tiga/internal/protocol"

// The layered baselines pay for a lock manager (2PL) or per-replica
// validation (OCC) on top of Paxos replication, the highest per-transaction
// CPU work in Table 1's calibration.
func init() {
	register("2PL+Paxos", TwoPL, protocol.CostProfile{Exec: 17, Rank: 10})
	register("OCC+Paxos", OCC, protocol.CostProfile{Exec: 18, Rank: 20})
}

func register(name string, cc CC, cost protocol.CostProfile) {
	protocol.Register(name, cost, func(ctx *protocol.BuildContext) protocol.System {
		return New(Spec{
			CC: cc, Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
			ServerRegion: ctx.ServerRegion, CoordRegions: ctx.CoordRegions,
			Seed: ctx.SeedStore, ExecCost: ctx.ExecCost,
		})
	})
}
