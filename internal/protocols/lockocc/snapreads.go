package lockocc

import (
	"time"

	"tiga/internal/protocol"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/trace"
	"tiga/internal/txn"
)

// Local snapshot reads for the layered baselines (Spec.LocalReads).
//
// The watermark rule instantiated for 2PL/OCC over Multi-Paxos: commit
// timestamps are minted by the coordinator at the 2PC decision, so the shard
// leader's watermark is held one tick below the arrival time of its OLDEST
// in-flight transaction (prepTS): anything that ever commits here gets a
// timestamp later than its own arrival. That is the structural contrast with
// Tiga — a lock-based leader's watermark lags by the full prepare window
// (~1 WRTT under load, unboundedly under lock waits), where Tiga's leader
// watermark tracks its synchronized clock and lags only by queued headroom.
// Followers adopt the leader's watermark once they have applied the Paxos
// prefix it was published for, exactly as in Tiga.

// safeT is the leader's periodic watermark broadcast: W is valid once the
// first N Paxos slots are applied (every commit with timestamp <= W is in
// that prefix; everything later carries a larger timestamp by the prepTS
// argument above). GC piggybacks the leader's version-GC horizon (zero
// unless Spec.VersionGC): followers prune committed history to it when they
// adopt the watermark.
type safeT struct {
	W  time.Duration
	N  int
	GC time.Duration
}

// safeTAck is a follower's watermark report back to the leader, sent only
// with Spec.VersionGC (so default local-read runs keep their exact message
// schedule). The leader's GC horizon is capped below the minimum acked
// watermark: a read waiting at a follower always has a snapshot timestamp
// above that follower's watermark, so pruning below it is invisible.
type safeTAck struct {
	Replica int
	W       time.Duration
}

// gcSlack is the fixed safety margin subtracted from the version-GC horizon
// on top of the read-staleness bound. It covers snapshot reads already in
// flight when the horizon advances: between minting a read's snapshot
// timestamp and serving it lie one network delivery plus at most one
// coordinator re-drive (readRetryEvery, 400 ms), both well under a second.
// Strictly more conservative than the min-watermark − staleness horizon
// alone — see EXPERIMENTS.md deviations.
const gcSlack = time.Second

// advanceSafeT recomputes the leader watermark: one tick below now, capped
// below every in-flight transaction's arrival time. Monotonic — prepTS
// entries only disappear forward in time, and now only grows.
func (s *server) advanceSafeT() {
	w := s.sys.spec.Net.Sim().Now() - 1
	for _, p := range s.pending {
		if p.prepTS-1 < w {
			w = p.prepTS - 1
		}
	}
	if w > s.safeTime {
		s.safeTime = w
		s.flushWaiters()
	}
}

func (s *server) broadcastSafeT() {
	if s.recovering {
		return
	}
	// Leader-driven retransmission: follower watermark adoption is gated on
	// Paxos apply progress, so a follower cut off by a partition must be
	// caught up even when new proposals are scarce — reads queued on its
	// frozen watermark throttle the very write load that would otherwise
	// carry the retransmissions.
	s.pax.Tick()
	s.advanceSafeT()
	if s.sys.spec.VersionGC {
		s.advanceGCHorizon()
	}
	m := safeT{W: s.safeTime, N: s.pax.Applied(), GC: s.gcHorizon}
	for r, id := range s.sys.nodes[s.shard] {
		if r != s.replica {
			s.node.Send(id, m)
		}
	}
}

// advanceGCHorizon recomputes the leader's version-GC horizon: the minimum
// watermark across all replicas (followers ack theirs via safeTAck) minus
// the read-staleness bound and gcSlack. Any snapshot read, live or future,
// carries a snapshot timestamp above that, and store.PruneTo keeps the
// newest committed version at or below the horizon, so GetAt results are
// invariant under the prune. Until every follower has acked, there is no
// safe horizon and the leader keeps full history.
func (s *server) advanceGCHorizon() {
	h := s.safeTime
	for r := range s.sys.nodes[s.shard] {
		if r == s.replica {
			continue
		}
		w, ok := s.followerW[r]
		if !ok {
			return
		}
		if w < h {
			h = w
		}
	}
	h -= s.sys.spec.ReadStaleness + gcSlack
	if h > s.gcHorizon {
		s.gcHorizon = h
		s.st.PruneTo(h)
	}
}

// onSafeTAck records a follower's watermark at the leader (Spec.VersionGC).
func (s *server) onSafeTAck(m safeTAck) {
	if !s.sys.spec.VersionGC || s.replica != 0 {
		return
	}
	if m.W > s.followerW[m.Replica] {
		s.followerW[m.Replica] = m.W
	}
}

// pruneTo applies a leader-published GC horizon on a follower (monotonic).
func (s *server) pruneTo(gc time.Duration) {
	if !s.sys.spec.VersionGC || gc <= s.gcHorizon {
		return
	}
	s.gcHorizon = gc
	s.st.PruneTo(gc)
}

func (s *server) onSafeT(m safeT) {
	if !s.sys.spec.LocalReads || s.replica == 0 {
		return
	}
	if s.sys.spec.VersionGC {
		defer s.node.Send(s.sys.nodes[s.shard][0], safeTAck{Replica: s.replica, W: s.safeTime})
	}
	if s.pax.Applied() >= m.N {
		if m.W > s.safeTime {
			s.safeTime = m.W
			s.flushWaiters()
		}
		s.pruneTo(m.GC)
		return
	}
	s.safePairs = append(s.safePairs, m)
}

// adoptSafeT folds buffered watermark pairs whose Paxos prefixes this
// follower has now applied (called from onPaxosCommit).
func (s *server) adoptSafeT() {
	if len(s.safePairs) == 0 {
		return
	}
	keep := s.safePairs[:0]
	advanced := false
	gc := time.Duration(0)
	for _, p := range s.safePairs {
		if s.pax.Applied() >= p.N {
			if p.W > s.safeTime {
				s.safeTime = p.W
				advanced = true
			}
			if p.GC > gc {
				gc = p.GC
			}
		} else {
			keep = append(keep, p)
		}
	}
	s.safePairs = keep
	if advanced {
		s.flushWaiters()
	}
	s.pruneTo(gc)
}

// decisionQuery asks a coordinator for the outcome of a voted prepare whose
// decision never arrived: the abort path is fire-and-forget, so a partition
// can eat it, leaking the prepare's locks — and, worse for local reads,
// pinning the shard's safe-time watermark below the orphan's prepTS forever.
// A coordinator with no trace of the transaction answers presumed-abort.
// Commit decisions need no query: checkProgress already re-sends commit
// records until every shard confirms.
type decisionQuery struct{ ID txn.ID }

func (co *coordinator) onDecisionQuery(from simnet.NodeID, m decisionQuery) {
	if co.pending[m.ID] == nil {
		co.node.Send(from, abortReq{ID: m.ID})
	}
}

// armDecisionQuery starts the server-side orphan watch for a prepare that
// just voted OK. It trails the coordinator's own vote-timeout cycle by half
// a period so an in-flight decision usually wins the race, and re-arms until
// the prepare is decided. Active only with local reads (the watermark is
// what makes orphans expensive) and a finite vote timeout.
func (s *server) armDecisionQuery(id txn.ID) {
	vt := s.sys.spec.VoteTimeout
	if vt <= 0 || !s.sys.spec.LocalReads {
		return
	}
	s.node.After(vt+vt/2, func() {
		p := s.pending[id]
		if p == nil || !p.voted || p.proposed || p.relocking {
			return
		}
		s.node.Send(p.coord, decisionQuery{ID: id})
		s.armDecisionQuery(id)
	})
}

func (s *server) flushWaiters() {
	if s.waiters.Len() == 0 {
		return
	}
	s.waiters.Flush(s.safeTime+s.safeLie, s.sys.spec.Net.Sim().Now())
}

// onSnapRead serves a snapshot read once the watermark covers it. Leaders
// blocked only on wall-clock progress are flushed by the periodic broadcast
// tick; followers are flushed by watermark adoption.
func (s *server) onSnapRead(from simnet.NodeID, m snapread.Req) {
	if !s.sys.spec.LocalReads {
		return
	}
	if s.replica == 0 {
		s.advanceSafeT()
	}
	arriveS := s.sys.spec.Net.Sim().Now()
	if m.At <= s.safeTime+s.safeLie {
		s.serveSnapRead(from, m, 0, arriveS)
		return
	}
	s.waiters.Add(m.At, arriveS, func(waited time.Duration) {
		s.serveSnapRead(from, m, waited, arriveS)
	})
}

func (s *server) serveSnapRead(to simnet.NodeID, m snapread.Req, waited time.Duration, arriveS time.Duration) {
	s.node.Work(s.sys.spec.ExecCost)
	vals := make([][]byte, len(m.Keys))
	seen := make([]txn.Timestamp, len(m.Keys))
	if len(m.KeyIDs) == len(m.Keys) {
		for i, id := range m.KeyIDs {
			vals[i], seen[i], _ = s.st.GetAtID(id, m.At)
		}
	} else {
		for i, k := range m.Keys {
			vals[i], seen[i], _ = s.st.GetAt(k, m.At)
		}
	}
	s.node.Send(to, snapread.Rep{Shard: s.shard, Seq: m.Seq, Vals: vals, Seen: seen, Waited: waited,
		ArriveS: arriveS, ServedS: s.node.Busy()})
}

// ---- coordinator read path ----

// readRetryEvery re-drives snapshot requests lost to a crashed or
// partitioned replica: delayed until the fault heals, never silently lost.
const readRetryEvery = 400 * time.Millisecond

type pendingRead struct {
	t       *txn.Txn
	at      time.Duration
	start   time.Duration
	done    func(txn.Result)
	got     map[int]bool
	vals    map[int][]byte
	waited  time.Duration
	reads   []txn.ReadObs
	retries int
}

func (co *coordinator) submitRead(t *txn.Txn, done func(txn.Result)) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	at := co.sys.spec.Net.Sim().Now() - co.sys.spec.ReadStaleness
	if at < 0 {
		at = 0
	}
	pr := &pendingRead{
		t: t, at: at, start: co.sys.spec.Net.Sim().Now(), done: done,
		got: make(map[int]bool),
	}
	co.reads[co.seq] = pr
	co.sendReadReqs(pr)
	co.armReadRetry(pr)
}

func (co *coordinator) sendReadReqs(pr *pendingRead) {
	for _, sh := range pr.t.Shards() {
		if pr.got[sh] {
			continue
		}
		piece := pr.t.Pieces[sh]
		req := snapread.Req{
			Shard: sh, Coord: co.idx, Seq: pr.t.ID.Seq, At: pr.at, Keys: piece.ReadSet,
		}
		if piece.Interned() {
			req.KeyIDs = piece.ReadIDs
		}
		co.node.Send(co.sys.nodes[sh][co.nearestReplica(sh)], req)
	}
}

func (co *coordinator) armReadRetry(pr *pendingRead) {
	seq := pr.t.ID.Seq
	co.node.After(readRetryEvery, func() {
		cur, ok := co.reads[seq]
		if !ok || cur != pr {
			return
		}
		pr.retries++
		pr.t.Trace.Mark(co.sys.spec.Net.Sim().Now(), trace.PhaseRetry)
		co.sendReadReqs(pr)
		co.armReadRetry(pr)
	})
}

func (co *coordinator) onSnapRep(m snapread.Rep) {
	pr, ok := co.reads[m.Seq]
	if !ok || pr.got[m.Shard] {
		return
	}
	pr.got[m.Shard] = true
	if m.Waited > pr.waited {
		pr.waited = m.Waited
	}
	keys := pr.t.Pieces[m.Shard].ReadSet
	for i := range keys {
		if i < len(m.Seen) {
			pr.reads = append(pr.reads, txn.ReadObs{Key: keys[i], TS: m.Seen[i]})
		}
	}
	if pr.vals == nil {
		pr.vals = make(map[int][]byte, len(pr.t.Pieces))
	}
	if len(m.Vals) > 0 {
		pr.vals[m.Shard] = m.Vals[0]
	}
	if len(pr.got) < len(pr.t.Pieces) {
		return
	}
	delete(co.reads, m.Seq)
	// Decisive reply = this one (it completed the read): flight out,
	// SAFETIME wait at the replica, flight back.
	if tr := pr.t.Trace; tr != nil {
		tr.Mark(m.ArriveS, trace.PhaseFlight)
		tr.Mark(m.ServedS, trace.PhaseSafeTime)
		tr.Mark(co.sys.spec.Net.Sim().Now(), trace.PhaseFlight)
	}
	pr.done(txn.Result{
		OK: true, FastPath: true, Retries: pr.retries, PerShard: pr.vals,
		SnapshotAt: pr.at, Waited: pr.waited, Reads: pr.reads,
	})
}

func (co *coordinator) nearestReplica(sh int) int {
	if co.nearest == nil {
		co.nearest = make([]int, co.sys.spec.Shards)
		for i := range co.nearest {
			co.nearest[i] = -1
		}
	}
	if co.nearest[sh] < 0 {
		net := co.sys.spec.Net
		co.nearest[sh] = snapread.Nearest(net, co.node.Region(), 2*co.sys.spec.F+1,
			func(rep int) simnet.Region {
				return net.Node(co.sys.nodes[sh][rep]).Region()
			})
	}
	return co.nearest[sh]
}

// SubmitLocalRead implements protocol.SnapshotReadable.
func (sys *System) SubmitLocalRead(coord int, t *txn.Txn, done func(txn.Result)) {
	sys.coords[coord].submitRead(t, done)
}

// SafeTimes implements protocol.SnapshotReadable: every replica's current
// watermark in shard-major order.
func (sys *System) SafeTimes() []time.Duration {
	n := 2*sys.spec.F + 1
	out := make([]time.Duration, 0, sys.spec.Shards*n)
	for _, shard := range sys.servers {
		for _, s := range shard {
			out = append(out, s.safeTime)
		}
	}
	return out
}

// LieSafeTime makes one replica advertise a watermark ahead of its real one —
// fault injection for the snapshot-read checker tests.
func (sys *System) LieSafeTime(shard, replica int, ahead time.Duration) {
	sys.servers[shard][replica].safeLie = ahead
}

var _ protocol.SnapshotReadable = (*System)(nil)
