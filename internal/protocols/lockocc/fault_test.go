package lockocc

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

const faultKeys = 40

// TestLeaderCrashRecovery exercises the protocol.Faultable path end to end:
// the shard-1 Paxos leader is crashed mid-run and rebooted 1.5 s later.
// Transactions caught in the outage presume-abort and retry (phase 0) or
// have their commit records re-sent until the rebooted leader answers
// (phase 1); the reboot rebuilds the log from the surviving replicas. The
// test requires progress on both sides of the outage, exactly-once effects,
// and replica convergence.
func TestLeaderCrashRecovery(t *testing.T) {
	sim := simnet.NewSim(17)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0))
	sys := New(Spec{
		CC: TwoPL, Shards: 2, F: 1, Net: net,
		ServerRegion: func(_, r int) simnet.Region { return simnet.Region(r) },
		CoordRegions: []simnet.Region{0, 1},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < faultKeys; i++ {
				st.Seed(fmt.Sprintf("f%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
		// Short timer + generous retry budget: outage-window transactions
		// must survive ~1.5 s of presumed aborts and then succeed.
		VoteTimeout: 400 * time.Millisecond, MaxRetries: 10, RetryBackoff: 20 * time.Millisecond,
	})
	sys.Start()

	killAt := time.Second
	restartAt := 2500 * time.Millisecond
	sim.At(killAt, func() { sys.KillServer(1, 0) })
	sim.At(restartAt, func() { sys.RestartServer(1, 0) })

	type outcome struct {
		at time.Duration
		ok bool
	}
	var results []outcome
	perKey := make([]int64, faultKeys)
	submitted := 0
	for i := 0; i < 200; i++ {
		i := i
		at := time.Duration(50+i*25) * time.Millisecond // 50ms .. 5.03s
		submitted++
		sim.At(at, func() {
			k := i % faultKeys
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{
				0: txn.IncrementPiece(fmt.Sprintf("f0-%d", k)),
				1: txn.IncrementPiece(fmt.Sprintf("f1-%d", k)),
			}}
			sys.Submit(i%2, tx, func(r txn.Result) {
				results = append(results, outcome{at: sim.Now(), ok: r.OK})
				if r.OK {
					perKey[k]++
				}
			})
		})
	}
	sim.Run(15 * time.Second)

	if len(results) != submitted {
		t.Fatalf("%d of %d transactions never reached a final result (hung across the outage)",
			submitted-len(results), submitted)
	}
	var preOK, postOK, aborted int
	for _, r := range results {
		switch {
		case !r.ok:
			aborted++
		case r.at < killAt:
			preOK++
		case r.at > restartAt+500*time.Millisecond:
			postOK++
		}
	}
	if preOK == 0 {
		t.Fatal("no commits before the crash")
	}
	if postOK == 0 {
		t.Fatal("no commits after the reboot: recovery did not restore service")
	}
	if sys.PresumedAborts == 0 {
		t.Fatal("no presumed aborts during a 1.5 s leader outage?")
	}
	t.Logf("pre=%d post=%d aborted=%d presumed=%d", preOK, postOK, aborted, sys.PresumedAborts)

	// Exactly-once effects: every committed increment applied once, despite
	// re-sent commit records and re-proposed recovered slots.
	for k := 0; k < faultKeys; k++ {
		for sh := 0; sh < 2; sh++ {
			got := txn.DecodeInt(sys.Store(sh).Get(fmt.Sprintf("f%d-%d", sh, k)))
			if got != perKey[k] {
				t.Fatalf("f%d-%d = %d, want %d commits (lost or double-applied writes)", sh, k, got, perKey[k])
			}
		}
	}
	// Replica convergence: the rebooted leader's store matches its
	// followers' on every key (the merged log replay lost nothing).
	for sh := 0; sh < 2; sh++ {
		for rep := 1; rep < 3; rep++ {
			lead, fol := sys.servers[sh][0].st, sys.servers[sh][rep].st
			for k := 0; k < faultKeys; k++ {
				key := fmt.Sprintf("f%d-%d", sh, k)
				if string(lead.Get(key)) != string(fol.Get(key)) {
					t.Fatalf("shard %d replica %d diverges on %s after recovery", sh, rep, key)
				}
			}
		}
	}
}
