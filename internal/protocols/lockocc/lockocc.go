// Package lockocc implements the two classic layered baselines from the
// paper's evaluation (§5.1): 2PL+Paxos (wound-wait two-phase locking with
// two-phase commit over Multi-Paxos) and OCC+Paxos (optimistic execution with
// validation at prepare time, over the same consensus layer).
//
// Both stack a concurrency-control round on top of a consensus round, so a
// geo-distributed commit costs ~3 WRTTs: request/vote (1), commit + Paxos
// replication (1.5–2), and the reply (0.5). The long lock/validation window
// across WAN round trips is what drives their abort rates under contention
// (§5.2, §5.3).
package lockocc

import (
	"time"

	"tiga/internal/locks"
	"tiga/internal/paxos"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// CC selects the concurrency-control flavor.
type CC int

// Concurrency control flavors.
const (
	TwoPL CC = iota
	OCC
)

func (c CC) String() string {
	if c == TwoPL {
		return "2PL+Paxos"
	}
	return "OCC+Paxos"
}

// Spec describes the deployment.
type Spec struct {
	CC           CC
	Shards       int
	F            int
	Net          *simnet.Network
	ServerRegion func(shard, replica int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	MaxRetries   int
	RetryBackoff time.Duration
}

// ---- messages ----

type reqExec struct {
	T     *txn.Txn
	Prio  uint64
	Coord simnet.NodeID
}

type voteMsg struct {
	Shard  int
	ID     txn.ID
	OK     bool
	Ret    []byte
	Writes map[string][]byte
}

type commitReq struct {
	ID    txn.ID
	Coord simnet.NodeID
}

type abortReq struct{ ID txn.ID }

// committedMsg reports a shard's replicated apply. The commit phase is
// infallible (validation happens at vote time), so it carries no failure
// flag.
type committedMsg struct {
	Shard int
	ID    txn.ID
}

// commitRec is the Paxos-replicated commit record.
type commitRec struct {
	ID     txn.ID
	Writes map[string][]byte
}

type pendingSrv struct {
	t       *txn.Txn
	prio    uint64
	coord   simnet.NodeID
	wounded bool
	voted   bool
	writes  map[string][]byte
	waiting int      // outstanding lock grants (2PL)
	occHeld []string // OCC: write-locked keys
	occRead []string // OCC: read-marked keys
}

// server is a shard leader plus its Paxos group membership.
type server struct {
	sys     *System
	shard   int
	replica int
	node    *simnet.Node
	st      *store.Store
	lt      *locks.Table
	occLock map[string]txn.ID          // OCC: key -> in-flight writer
	occRead map[string]map[txn.ID]bool // OCC: key -> in-flight readers
	pax     *paxos.Replica
	pending map[txn.ID]*pendingSrv
	onSlot  map[int]txn.ID // slot -> awaiting commit reply
}

// System is a running 2PL/OCC deployment.
type System struct {
	spec    Spec
	servers [][]*server // [shard][replica]; replica 0 leads
	coords  []*coordinator
	// Aborts counts client-visible aborts after retries were exhausted.
	Aborts int64
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.MaxRetries == 0 {
		spec.MaxRetries = 4
	}
	if spec.RetryBackoff == 0 {
		spec.RetryBackoff = 25 * time.Millisecond
	}
	sys := &System{spec: spec}
	n := 2*spec.F + 1
	nodes := make([][]simnet.NodeID, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		nodes[s] = make([]simnet.NodeID, n)
		for r := 0; r < n; r++ {
			nodes[s][r] = spec.Net.AddNode(spec.ServerRegion(s, r), nil).ID()
		}
	}
	sys.servers = make([][]*server, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		sys.servers[s] = make([]*server, n)
		for r := 0; r < n; r++ {
			node := spec.Net.Node(nodes[s][r])
			srv := &server{
				sys: sys, shard: s, replica: r, node: node,
				st: store.New(), lt: locks.NewTable(),
				occLock: make(map[string]txn.ID), occRead: make(map[string]map[txn.ID]bool),
				pending: make(map[txn.ID]*pendingSrv), onSlot: make(map[int]txn.ID),
			}
			srv.pax = paxos.NewReplica("pax", node, nodes[s], r, 0, spec.F)
			srv.pax.OnCommit = srv.onPaxosCommit
			srv.lt.Wound = srv.onWound
			if spec.Seed != nil {
				spec.Seed(s, srv.st)
			}
			node.SetHandler(srv.handle)
			sys.servers[s][r] = srv
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pendingCo)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// Start is a no-op (no periodic tasks); present for interface symmetry.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a shard leader's store (tests).
func (sys *System) Store(shard int) *store.Store { return sys.servers[shard][0].st }

func (sys *System) leaderNode(shard int) simnet.NodeID { return sys.servers[shard][0].node.ID() }

// ---- server ----

func (s *server) handle(from simnet.NodeID, msg simnet.Message) {
	if s.pax.Handle(from, msg) {
		return
	}
	if s.replica != 0 {
		return // followers only participate in Paxos
	}
	switch m := msg.(type) {
	case reqExec:
		s.onReqExec(m)
	case commitReq:
		s.onCommitReq(m)
	case abortReq:
		s.abortLocal(m.ID)
	}
}

func (s *server) onWound(victim txn.ID) {
	// A transaction that already voted OK on THIS shard must not be wounded:
	// its coordinator may already be committing it elsewhere, so aborting it
	// here would break 2PC atomicity. The immunity is per-shard only — the
	// same transaction can still be queued on another shard, so a wound-wait
	// cycle spanning shards is not broken by this path and would need
	// coordinator-side vote timeouts to resolve (see ROADMAP open items).
	if p := s.pending[victim]; p != nil && !p.voted {
		p.wounded = true
	}
}

func (s *server) onReqExec(m reqExec) {
	id := m.T.ID
	if _, dup := s.pending[id]; dup {
		return
	}
	p := &pendingSrv{t: m.T, prio: m.Prio, coord: m.Coord}
	s.pending[id] = p
	piece := m.T.Pieces[s.shard]
	if s.sys.spec.CC == OCC {
		// Optimistic execution with validation at prepare time: conflicts
		// with in-flight transactions (write-write, read-write) fail the
		// vote here, before any shard has applied anything, so the commit
		// phase below is infallible and 2PC stays atomic.
		s.node.Work(s.sys.spec.ExecCost)
		if s.occConflict(id, piece) {
			delete(s.pending, id)
			s.node.Send(m.Coord, voteMsg{Shard: s.shard, ID: id, OK: false})
			return
		}
		for _, k := range piece.WriteSet {
			s.occLock[k] = id
			p.occHeld = append(p.occHeld, k)
		}
		for _, k := range piece.ReadSet {
			if contains(piece.WriteSet, k) {
				continue
			}
			rd := s.occRead[k]
			if rd == nil {
				rd = make(map[txn.ID]bool)
				s.occRead[k] = rd
			}
			rd[id] = true
			p.occRead = append(p.occRead, k)
		}
		p.voted = true
		ret, writes := executeBuffered(s.st, piece)
		p.writes = writes
		s.node.Send(m.Coord, voteMsg{Shard: s.shard, ID: id, OK: true, Ret: ret, Writes: writes})
		return
	}
	// 2PL: acquire all locks (wound-wait), then execute.
	p.waiting = 0
	grant := func() {
		p.waiting--
		if p.waiting == 0 {
			s.finishLock(id)
		}
	}
	for _, k := range piece.ReadSet {
		if !contains(piece.WriteSet, k) && !s.lt.Acquire(k, locks.Shared, id, m.Prio, grant) {
			p.waiting++
		}
	}
	for _, k := range piece.WriteSet {
		if !s.lt.Acquire(k, locks.Exclusive, id, m.Prio, grant) {
			p.waiting++
		}
	}
	if p.waiting == 0 {
		s.finishLock(id)
	}
}

func (s *server) finishLock(id txn.ID) {
	p := s.pending[id]
	if p == nil || p.voted {
		return
	}
	if p.wounded {
		s.lt.ReleaseAll(id)
		delete(s.pending, id)
		s.node.Send(p.coord, voteMsg{Shard: s.shard, ID: id, OK: false})
		return
	}
	p.voted = true
	s.node.Work(s.sys.spec.ExecCost)
	ret, writes := executeBuffered(s.st, p.t.Pieces[s.shard])
	p.writes = writes
	s.node.Send(p.coord, voteMsg{Shard: s.shard, ID: id, OK: true, Ret: ret, Writes: writes})
}

// occConflict reports whether the piece conflicts with any in-flight
// transaction: its writes against their reads or writes, its reads against
// their writes.
func (s *server) occConflict(id txn.ID, piece *txn.Piece) bool {
	for _, k := range piece.WriteSet {
		if w, ok := s.occLock[k]; ok && w != id {
			return true
		}
		for r := range s.occRead[k] {
			if r != id {
				return true
			}
		}
	}
	for _, k := range piece.ReadSet {
		if w, ok := s.occLock[k]; ok && w != id {
			return true
		}
	}
	return false
}

// onCommitReq starts the replicated apply. Validation already happened at
// vote time (OCC) or is guaranteed by held locks (2PL, wounds are rejected
// after voting), so this phase cannot fail and commitment is atomic across
// shards.
func (s *server) onCommitReq(m commitReq) {
	p := s.pending[m.ID]
	if p == nil {
		return
	}
	p.coord = m.Coord
	slot := s.pax.Propose(commitRec{ID: m.ID, Writes: p.writes})
	s.onSlot[slot] = m.ID
}

func (s *server) abortLocal(id txn.ID) {
	p := s.pending[id]
	if p == nil {
		return
	}
	s.releaseOCC(p, id)
	s.lt.ReleaseAll(id)
	delete(s.pending, id)
}

// releaseOCC drops the transaction's OCC read marks and write locks.
func (s *server) releaseOCC(p *pendingSrv, id txn.ID) {
	for _, k := range p.occHeld {
		if s.occLock[k] == id {
			delete(s.occLock, k)
		}
	}
	for _, k := range p.occRead {
		if rd := s.occRead[k]; rd != nil {
			delete(rd, id)
			if len(rd) == 0 {
				delete(s.occRead, k)
			}
		}
	}
}

// onPaxosCommit applies a replicated commit record on every replica; the
// leader additionally finishes the 2PC and answers the coordinator.
func (s *server) onPaxosCommit(slot int, cmd paxos.Command) {
	rec := cmd.(commitRec)
	for k, v := range rec.Writes {
		s.st.Seed(k, v)
	}
	if s.replica != 0 {
		return
	}
	if id, ok := s.onSlot[slot]; ok {
		delete(s.onSlot, slot)
		if p := s.pending[id]; p != nil {
			s.releaseOCC(p, id)
			s.lt.ReleaseAll(id)
			delete(s.pending, id)
			s.node.Send(p.coord, committedMsg{Shard: s.shard, ID: id})
		}
	}
}

// executeBuffered runs a piece reading the store but buffering writes.
func executeBuffered(st *store.Store, p *txn.Piece) ([]byte, map[string][]byte) {
	v := &bufView{st: st, writes: make(map[string][]byte)}
	ret := p.Exec(v)
	return ret, v.writes
}

type bufView struct {
	st     *store.Store
	writes map[string][]byte
}

func (v *bufView) Get(k string) []byte {
	if w, ok := v.writes[k]; ok {
		return w
	}
	return v.st.Get(k)
}

func (v *bufView) Put(k string, val []byte) { v.writes[k] = val }

func contains(set []string, k string) bool {
	for _, s := range set {
		if s == k {
			return true
		}
	}
	return false
}

// ---- coordinator ----

type pendingCo struct {
	t       *txn.Txn
	done    func(txn.Result)
	prio    uint64
	votes   map[int]voteMsg
	commits map[int]bool
	phase   int // 0 = exec, 1 = commit
	retries int
	start   time.Duration
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pendingCo
}

// Submit runs the layered commit protocol for t.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	sys.coords[coord].submit(t, done, 0, 0)
}

func (co *coordinator) submit(t *txn.Txn, done func(txn.Result), retries int, prio uint64) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := &pendingCo{t: t, done: done, votes: make(map[int]voteMsg), commits: make(map[int]bool),
		retries: retries, start: co.sys.spec.Net.Sim().Now()}
	// Wound-wait priority: older transactions (earlier first submission)
	// win; retries keep their original priority so victims make progress.
	p.prio = prio
	if p.prio == 0 {
		p.prio = uint64(co.sys.spec.Net.Sim().Now())<<8 | uint64(co.idx)
	}
	co.pending[t.ID] = p
	for _, sh := range t.Shards() {
		co.node.Send(co.sys.leaderNode(sh), reqExec{T: t, Prio: p.prio, Coord: co.node.ID()})
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case voteMsg:
		co.onVote(m)
	case committedMsg:
		co.onCommitted(m)
	}
}

func (co *coordinator) onVote(m voteMsg) {
	p := co.pending[m.ID]
	if p == nil || p.phase != 0 {
		return
	}
	if !m.OK {
		co.abort(p)
		return
	}
	p.votes[m.Shard] = m
	if len(p.votes) < len(p.t.Pieces) {
		return
	}
	p.phase = 1
	// Shard order must be deterministic: the simulation's event order (and
	// thus the whole run) follows message send order.
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.leaderNode(sh), commitReq{ID: m.ID, Coord: co.node.ID()})
	}
}

func (co *coordinator) onCommitted(m committedMsg) {
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.commits[m.Shard] = true
	if len(p.commits) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	res := txn.Result{OK: true, Retries: p.retries, PerShard: make(map[int][]byte)}
	for sh, v := range p.votes {
		res.PerShard[sh] = v.Ret
	}
	p.done(res)
}

func (co *coordinator) abort(p *pendingCo) {
	delete(co.pending, p.t.ID)
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.leaderNode(sh), abortReq{ID: p.t.ID})
	}
	if p.retries >= co.sys.spec.MaxRetries {
		co.sys.Aborts++
		p.done(txn.Result{Aborted: true, Retries: p.retries})
		return
	}
	backoff := co.sys.spec.RetryBackoff * time.Duration(p.retries+1)
	co.node.After(backoff, func() { co.submit(p.t, p.done, p.retries+1, p.prio) })
}
