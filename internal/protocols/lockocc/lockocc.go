// Package lockocc implements the two classic layered baselines from the
// paper's evaluation (§5.1): 2PL+Paxos (wound-wait two-phase locking with
// two-phase commit over Multi-Paxos) and OCC+Paxos (optimistic execution with
// validation at prepare time, over the same consensus layer).
//
// Both stack a concurrency-control round on top of a consensus round, so a
// geo-distributed commit costs ~3 WRTTs: request/vote (1), commit + Paxos
// replication (1.5–2), and the reply (0.5). The long lock/validation window
// across WAN round trips is what drives their abort rates under contention
// (§5.2, §5.3).
package lockocc

import (
	"sort"
	"time"

	"tiga/internal/admit"
	"tiga/internal/locks"
	"tiga/internal/paxos"
	"tiga/internal/pool"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/store"
	"tiga/internal/trace"
	"tiga/internal/txn"
)

// CC selects the concurrency-control flavor.
type CC int

// Concurrency control flavors.
const (
	TwoPL CC = iota
	OCC
)

func (c CC) String() string {
	if c == TwoPL {
		return "2PL+Paxos"
	}
	return "OCC+Paxos"
}

// Spec describes the deployment.
type Spec struct {
	CC           CC
	Shards       int
	F            int
	Net          *simnet.Network
	ServerRegion func(shard, replica int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	MaxRetries   int
	RetryBackoff time.Duration
	// VoteTimeout arms a coordinator-side progress timer per submission
	// attempt (Spanner-style presumed abort). A transaction still gathering
	// votes when the timer fires is aborted and retried — which breaks
	// wound-wait cycles spanning shards, where per-shard vote immunity
	// otherwise deadlocks both transactions forever. A transaction already
	// past the commit decision instead re-sends its commit records to the
	// shards that have not confirmed, so a rebooted shard leader can finish
	// the 2PC. 0 disables the timer (the pre-knob behavior).
	VoteTimeout time.Duration
	// LocalReads enables the local snapshot-read path (see snapreads.go):
	// commit records carry coordinator-minted timestamps, stores retain
	// version history, leaders publish safe-time watermarks held below their
	// in-flight 2PC prepares, and read-only transactions are served from the
	// nearest replica. Default off; the machinery adds timers and messages.
	LocalReads bool
	// ReadStaleness is how far in the past local reads pick their snapshot
	// (0 = strong reads that wait out the watermark lag).
	ReadStaleness time.Duration
	// SafeTimeEvery is the leader's watermark broadcast interval.
	SafeTimeEvery time.Duration
	// VersionGC prunes committed version history below the minimum replica
	// watermark − ReadStaleness (− a fixed in-flight slack), piggybacked on
	// the safe-time broadcast; followers report their watermarks back via
	// safeTAck. Only meaningful with LocalReads.
	VersionGC bool
	// AdmitCap bounds a coordinator's admitted in-flight transactions
	// (<= 0 disables admission control); AdmitQueue bounds the wait queue
	// beyond the cap, and ShedOldest picks which end of the queue to shed
	// on overflow. See internal/admit.
	AdmitCap   int
	AdmitQueue int
	ShedOldest bool
}

// ---- messages ----

type reqExec struct {
	T     *txn.Txn
	Prio  uint64
	Coord simnet.NodeID
}

type voteMsg struct {
	Shard  int
	ID     txn.ID
	OK     bool
	Ret    []byte
	Writes map[string][]byte
	// Span stamps (internal/trace), in sim time: ArriveS = reqExec arrival
	// at the shard leader, LockS = every lock granted (2PL; equals ArriveS
	// for OCC's immediate validation), DoneS = execution departure. RecvS
	// is stamped by the coordinator when the vote arrives. The stamps ride
	// the votes the coordinator retains anyway, so the commit path needs no
	// tracker-side state to reconstruct its critical path.
	ArriveS, LockS, DoneS, RecvS time.Duration
}

type commitReq struct {
	ID    txn.ID
	Coord simnet.NodeID
	// T and Prio let a shard leader that lost its pending state in a crash
	// re-acquire the transaction's locks and re-execute the decided commit
	// (the pre-crash write buffer would be stale against anything committed
	// since the reboot).
	T    *txn.Txn
	Prio uint64
	// TS is the commit timestamp the coordinator minted at the decision
	// (Spec.LocalReads only; zero otherwise). Per key, decision order equals
	// apply order — a later writer of the same key can only vote after the
	// earlier one's locks are released at apply — so versions enter the
	// store in timestamp order.
	TS txn.Timestamp
}

type abortReq struct{ ID txn.ID }

// recoverReq asks a surviving replica for its Paxos state; recoverRep
// answers. A rebooted leader merges the replies (every committed record is
// on at least one survivor) and adopts them via paxos.InstallLog.
type recoverReq struct{}

type recoverRep struct {
	Replica  int
	Log      []paxos.Command
	CommitTo int
}

// committedMsg reports a shard's replicated apply. The commit phase is
// infallible (validation happens at vote time), so it carries no failure
// flag.
type committedMsg struct {
	Shard int
	ID    txn.ID
	// Span stamps (see voteMsg): ArriveS = commitReq arrival at the leader,
	// CommitS = Paxos replication reached the commit point. Zero on the
	// dedup re-acknowledgement paths — the breakdown walk clamps them.
	ArriveS, CommitS time.Duration
}

// commitRec is the Paxos-replicated commit record.
type commitRec struct {
	ID     txn.ID
	TS     txn.Timestamp // coordinator-minted commit timestamp (LocalReads)
	Writes map[string][]byte
}

type pendingSrv struct {
	t        *txn.Txn
	prio     uint64
	coord    simnet.NodeID
	wounded  bool
	voted    bool
	proposed bool // commit record handed to Paxos (dedup for re-sent commitReqs)
	// relocking marks a commit decision being reconstructed after a leader
	// reboot: locks are re-acquired and the piece re-executed before the
	// commit record is proposed.
	relocking bool
	writes    map[string][]byte
	waiting   int      // outstanding lock grants (2PL)
	occHeld   []string // OCC: write-locked keys
	occRead   []string // OCC: read-marked keys
	// prepTS pins the leader's safe-time watermark below this in-flight
	// transaction (LocalReads): its eventual commit timestamp, minted at the
	// coordinator's decision, is necessarily later than its arrival here.
	// It doubles as the arrival span stamp on outgoing votes.
	prepTS time.Duration
	// lockS/cReqS are span stamps (internal/trace) copied onto outgoing
	// votes and commit acknowledgements: every-lock-granted time and
	// commitReq arrival time.
	lockS, cReqS time.Duration
	ts           txn.Timestamp // decided commit timestamp (from commitReq)
	// id is the transaction ID this record was created under, latched at
	// creation. The grant callback must dispatch on it rather than p.t.ID:
	// t points at the coordinator's Txn object, whose ID field submit
	// reassigns in place on retry — so after a lost abortReq orphans this
	// attempt, a late lock grant would otherwise finish the RETRY's id on a
	// shard still tracking this one (s.pending, lt.held, lt.queued are all
	// keyed by the creation-time id).
	id txn.ID
	// grant is the lock-grant callback, bound once per record (the record is
	// pooled; see server.getPend). It replaces the per-transaction closures
	// the 2PL and relock paths used to allocate, dispatching on id and
	// relockPath, both latched at creation.
	grant func()
	// relockPath latches which acquire loop the grants belong to: false =
	// the 2PL prepare loop (onReqExec), true = the post-reboot relock loop
	// (onCommitReq). A record lifetime runs exactly one of the two.
	relockPath bool
}

// server is a shard leader plus its Paxos group membership.
type server struct {
	sys     *System
	shard   int
	replica int
	node    *simnet.Node
	st      *store.Store
	lt      *locks.Table
	occLock map[string]txn.ID          // OCC: key -> in-flight writer
	occRead map[string]map[txn.ID]bool // OCC: key -> in-flight readers
	pax     *paxos.Replica
	pending map[txn.ID]*pendingSrv
	// pend recycles pendingSrv records. Safe because every removal path
	// either never queued lock requests (OCC) or runs lt.ReleaseAll first,
	// which purges queued grant callbacks — so no reference outlives the Put.
	pend   *pool.Free[pendingSrv]
	onSlot map[int]txn.ID // slot -> awaiting commit reply
	// applied records every Paxos-applied commit, so re-sent commit requests
	// (after a leader reboot) are answered instead of re-proposed.
	applied map[txn.ID]bool
	// recovering gates all processing while a rebooted leader is still
	// merging survivor logs; recovered collects the replies by replica.
	// catchingUp then gates 2PC traffic (but not Paxos) until the re-proposed
	// tail has committed — serving earlier would let new transactions
	// validate against a store still missing those pending writes.
	recovering bool
	recovered  map[int]recoverRep
	catchingUp bool

	// Local snapshot-read state (Spec.LocalReads, see snapreads.go).
	safeTime  time.Duration
	safeLie   time.Duration // test hook: fault-injected watermark inflation
	safePairs []safeT       // follower: (W, N) pairs awaiting applied >= N
	waiters   snapread.Waiters
	followerW map[int]time.Duration // leader: replica -> acked watermark (version GC)
	gcHorizon time.Duration         // monotonic version-GC horizon (Spec.VersionGC)
}

// System is a running 2PL/OCC deployment.
type System struct {
	spec    Spec
	nodes   [][]simnet.NodeID // [shard][replica]
	servers [][]*server       // [shard][replica]; replica 0 leads
	coords  []*coordinator
	// Aborts counts client-visible aborts after retries were exhausted.
	Aborts int64
	// PresumedAborts counts vote-timeout firings that presumed-aborted a
	// transaction still gathering votes (the cross-shard liveness escape).
	PresumedAborts int64
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.MaxRetries == 0 {
		spec.MaxRetries = 4
	}
	if spec.RetryBackoff == 0 {
		spec.RetryBackoff = 25 * time.Millisecond
	}
	if spec.SafeTimeEvery == 0 {
		spec.SafeTimeEvery = 5 * time.Millisecond
	}
	sys := &System{spec: spec}
	n := 2*spec.F + 1
	sys.nodes = make([][]simnet.NodeID, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		sys.nodes[s] = make([]simnet.NodeID, n)
		for r := 0; r < n; r++ {
			sys.nodes[s][r] = spec.Net.AddNode(spec.ServerRegion(s, r), nil).ID()
		}
	}
	sys.servers = make([][]*server, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		sys.servers[s] = make([]*server, n)
		for r := 0; r < n; r++ {
			sys.servers[s][r] = newServer(sys, s, r)
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pendingCo), pend: pool.New[pendingCo](),
			reads: make(map[uint64]*pendingRead)}
		co.gate = admit.Gate{
			Cap: spec.AdmitCap, Queue: spec.AdmitQueue, ShedOldest: spec.ShedOldest,
			Now: func() time.Duration { return spec.Net.Sim().Now() },
		}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// newServer assembles one shard replica on its (already-added) network node,
// with a freshly seeded store and an empty Paxos replica. It is used both at
// construction and to rebuild a crashed server on restart.
func newServer(sys *System, s, r int) *server {
	node := sys.spec.Net.Node(sys.nodes[s][r])
	srv := &server{
		sys: sys, shard: s, replica: r, node: node,
		st: store.New(), lt: locks.NewTable(),
		occLock: make(map[string]txn.ID), occRead: make(map[string]map[txn.ID]bool),
		pending: make(map[txn.ID]*pendingSrv), pend: pool.New[pendingSrv](),
		onSlot:  make(map[int]txn.ID),
		applied: make(map[txn.ID]bool),
	}
	srv.pax = paxos.NewReplica("pax", node, sys.nodes[s], r, 0, sys.spec.F)
	srv.pax.OnCommit = srv.onPaxosCommit
	srv.lt.Wound = srv.onWound
	if sys.spec.LocalReads {
		srv.st.EnableSnapshots()
		srv.followerW = make(map[int]time.Duration)
		if r == 0 {
			// Leader watermark broadcast; re-armed here so a restarted
			// leader (whose crash cancelled all timers) resumes publishing.
			node.Every(sys.spec.SafeTimeEvery, func() bool {
				srv.broadcastSafeT()
				return true
			})
		}
	}
	if sys.spec.Seed != nil {
		sys.spec.Seed(s, srv.st)
	}
	node.SetHandler(srv.handle)
	return srv
}

// Start is a no-op (no periodic tasks); present for interface symmetry.
func (sys *System) Start() {}

// ServerGrid reports the replica grid (protocol.Faultable).
func (sys *System) ServerGrid() (shards, replicas int) { return sys.spec.Shards, 2*sys.spec.F + 1 }

// KillServer crashes a replica: all queued and future deliveries and timers
// are dropped until RestartServer (protocol.Faultable).
func (sys *System) KillServer(shard, replica int) {
	sys.servers[shard][replica].node.Crash()
}

// RestartServer reboots a crashed replica with empty state. The fresh server
// re-seeds its store, then asks the surviving replicas for their Paxos logs;
// once every survivor has answered it adopts the merged log (replaying the
// committed commit records against the store) and resumes service. In-flight
// 2PC decisions finish via the coordinators' vote-timeout re-sends; lock
// state of prepared-but-undecided transactions is NOT restored (prepare
// records are not replicated — a documented deviation from Spanner-style
// 2PL, see EXPERIMENTS.md).
func (sys *System) RestartServer(shard, replica int) {
	old := sys.servers[shard][replica]
	old.node.Restart()
	srv := newServer(sys, shard, replica)
	sys.servers[shard][replica] = srv
	srv.recovering = true
	srv.recovered = make(map[int]recoverRep)
	for r, id := range sys.nodes[shard] {
		if r != replica {
			srv.node.Send(id, recoverReq{})
		}
	}
}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a shard leader's store (tests).
func (sys *System) Store(shard int) *store.Store { return sys.servers[shard][0].st }

// TotalVersions sums retained committed-version counts across every replica
// store — the version-GC tests' memory signal (leaders prune on the safe-time
// tick, followers at watermark adoption, so the total is what must plateau
// under sustained writes).
func (sys *System) TotalVersions() int {
	var n int
	for _, shard := range sys.servers {
		for _, s := range shard {
			n += s.st.Versions()
		}
	}
	return n
}

func (sys *System) leaderNode(shard int) simnet.NodeID { return sys.servers[shard][0].node.ID() }

// ---- server ----

func (s *server) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case recoverReq:
		log, commitTo := s.pax.Snapshot()
		s.node.Send(from, recoverRep{Replica: s.replica, Log: log, CommitTo: commitTo})
		return
	case recoverRep:
		s.onRecoverRep(m)
		return
	}
	if s.recovering {
		return // not serving until the survivor logs are merged
	}
	// Snapshot-read traffic is handled on EVERY replica — followers serve
	// local reads too — so it must precede the replica-0 gate below. Dropped
	// requests (recovering replicas) are re-driven by coordinator retries.
	switch m := msg.(type) {
	case safeT:
		s.onSafeT(m)
		return
	case safeTAck:
		s.onSafeTAck(m)
		return
	case snapread.Req:
		s.onSnapRead(from, m)
		return
	}
	if s.pax.Handle(from, msg) {
		return
	}
	if s.replica != 0 {
		return // followers only participate in Paxos
	}
	if s.catchingUp {
		return // dropped requests are re-driven by coordinator timers
	}
	switch m := msg.(type) {
	case reqExec:
		s.onReqExec(m)
	case commitReq:
		s.onCommitReq(m)
	case abortReq:
		s.abortLocal(m.ID)
	}
}

// onRecoverRep collects survivor snapshots; once all have answered, the
// merged log is installed. Any record committed before the crash gathered
// f+1 acks, so it is present on at least one of the 2f survivors — the union
// is gap-free up to the highest survivor commit point.
func (s *server) onRecoverRep(m recoverRep) {
	if !s.recovering {
		return
	}
	s.recovered[m.Replica] = m
	if len(s.recovered) < len(s.sys.nodes[s.shard])-1 {
		return
	}
	var merged []paxos.Command
	commitTo := 0
	for r := 0; r < len(s.sys.nodes[s.shard]); r++ {
		rep, ok := s.recovered[r]
		if !ok {
			continue
		}
		if rep.CommitTo > commitTo {
			commitTo = rep.CommitTo
		}
		for i, c := range rep.Log {
			if i >= len(merged) {
				merged = append(merged, c)
			} else if merged[i] == nil {
				merged[i] = c
			}
		}
	}
	s.recovering = false
	s.recovered = nil
	s.pax.InstallLog(merged, commitTo)
	s.catchingUp = s.pax.Committed() < s.pax.LogLen()
}

// getPend draws a reset pendingSrv from the server's freelist, binding its
// grant callback on first use. The bound closure replaces the per-transaction
// grant literals the 2PL and relock paths used to allocate.
func (s *server) getPend() *pendingSrv {
	p := s.pend.Get()
	grant := p.grant
	occHeld, occRead := p.occHeld[:0], p.occRead[:0]
	*p = pendingSrv{occHeld: occHeld, occRead: occRead, grant: grant}
	if p.grant == nil {
		p.grant = func() {
			p.waiting--
			if p.waiting == 0 {
				if p.relockPath {
					s.finishRelock(p.id)
				} else {
					s.finishLock(p.id)
				}
			}
		}
	}
	return p
}

func (s *server) onWound(victim txn.ID) {
	// A transaction that already voted OK on THIS shard must not be wounded:
	// its coordinator may already be committing it elsewhere, so aborting it
	// here would break 2PC atomicity. The immunity is per-shard only — the
	// same transaction can still be queued on another shard, so a wound-wait
	// cycle spanning shards is not broken by this path; the coordinator's
	// vote timeout (Spec.VoteTimeout, presumed abort) is what resolves it.
	if p := s.pending[victim]; p != nil && !p.voted {
		p.wounded = true
	}
}

func (s *server) onReqExec(m reqExec) {
	id := m.T.ID
	if _, dup := s.pending[id]; dup {
		return
	}
	p := s.getPend()
	p.id, p.t, p.prio, p.coord, p.prepTS = id, m.T, m.Prio, m.Coord, s.sys.spec.Net.Sim().Now()
	s.pending[id] = p
	piece := m.T.Pieces[s.shard]
	if s.sys.spec.CC == OCC {
		// Optimistic execution with validation at prepare time: conflicts
		// with in-flight transactions (write-write, read-write) fail the
		// vote here, before any shard has applied anything, so the commit
		// phase below is infallible and 2PC stays atomic.
		s.node.Work(s.sys.spec.ExecCost)
		if s.occConflict(id, piece) {
			delete(s.pending, id)
			s.pend.Put(p)
			s.node.Send(m.Coord, voteMsg{Shard: s.shard, ID: id, OK: false})
			return
		}
		for _, k := range piece.WriteSet {
			s.occLock[k] = id
			p.occHeld = append(p.occHeld, k)
		}
		for _, k := range piece.ReadSet {
			if contains(piece.WriteSet, k) {
				continue
			}
			rd := s.occRead[k]
			if rd == nil {
				rd = make(map[txn.ID]bool)
				s.occRead[k] = rd
			}
			rd[id] = true
			p.occRead = append(p.occRead, k)
		}
		p.voted = true
		ret, writes := executeBuffered(s.st, piece)
		p.writes = writes
		s.node.Send(m.Coord, voteMsg{Shard: s.shard, ID: id, OK: true, Ret: ret, Writes: writes,
			ArriveS: p.prepTS, LockS: p.prepTS, DoneS: s.node.Busy()})
		s.armDecisionQuery(id)
		return
	}
	// 2PL: acquire all locks (wound-wait), then execute.
	p.waiting = 0
	for _, k := range piece.ReadSet {
		if !contains(piece.WriteSet, k) && !s.lt.Acquire(k, locks.Shared, id, m.Prio, p.grant) {
			p.waiting++
		}
	}
	for _, k := range piece.WriteSet {
		if !s.lt.Acquire(k, locks.Exclusive, id, m.Prio, p.grant) {
			p.waiting++
		}
	}
	if p.waiting == 0 {
		s.finishLock(id)
	}
}

func (s *server) finishLock(id txn.ID) {
	p := s.pending[id]
	if p == nil || p.voted {
		return
	}
	if p.wounded {
		s.lt.ReleaseAll(id)
		delete(s.pending, id)
		coord := p.coord
		s.pend.Put(p)
		s.node.Send(coord, voteMsg{Shard: s.shard, ID: id, OK: false})
		return
	}
	p.voted = true
	p.lockS = s.sys.spec.Net.Sim().Now()
	s.node.Work(s.sys.spec.ExecCost)
	ret, writes := executeBuffered(s.st, p.t.Pieces[s.shard])
	p.writes = writes
	s.node.Send(p.coord, voteMsg{Shard: s.shard, ID: id, OK: true, Ret: ret, Writes: writes,
		ArriveS: p.prepTS, LockS: p.lockS, DoneS: s.node.Busy()})
	s.armDecisionQuery(id)
}

// occConflict reports whether the piece conflicts with any in-flight
// transaction: its writes against their reads or writes, its reads against
// their writes.
func (s *server) occConflict(id txn.ID, piece *txn.Piece) bool {
	for _, k := range piece.WriteSet {
		if w, ok := s.occLock[k]; ok && w != id {
			return true
		}
		for r := range s.occRead[k] {
			if r != id {
				return true
			}
		}
	}
	for _, k := range piece.ReadSet {
		if w, ok := s.occLock[k]; ok && w != id {
			return true
		}
	}
	return false
}

// onCommitReq starts the replicated apply. Validation already happened at
// vote time (OCC) or is guaranteed by held locks (2PL, wounds are rejected
// after voting), so this phase cannot fail and commitment is atomic across
// shards. Re-sent requests (coordinator vote-timeout after a leader reboot)
// are deduplicated: an already-applied commit is acknowledged directly and
// an in-flight proposal or re-lock is left alone. An unknown transaction is
// a decided commit whose prepare state died with the old leader — it is
// re-locked and re-executed before proposing, because its pre-crash write
// buffer is stale against anything committed since the reboot.
func (s *server) onCommitReq(m commitReq) {
	if s.applied[m.ID] {
		s.node.Send(m.Coord, committedMsg{Shard: s.shard, ID: m.ID})
		return
	}
	p := s.pending[m.ID]
	if p == nil {
		p = s.getPend()
		p.t, p.prio, p.coord, p.voted, p.relocking = m.T, m.Prio, m.Coord, true, true
		p.id, p.relockPath = m.ID, true
		p.prepTS, p.ts = s.sys.spec.Net.Sim().Now(), m.TS
		s.pending[m.ID] = p
		s.relock(m.ID, p)
		return
	}
	p.coord = m.Coord
	p.ts = m.TS
	if p.proposed || p.relocking {
		return
	}
	p.proposed = true
	p.cReqS = s.sys.spec.Net.Sim().Now()
	slot := s.pax.Propose(commitRec{ID: m.ID, TS: p.ts, Writes: p.writes})
	s.onSlot[slot] = m.ID
}

// relock re-acquires a reconstructed commit decision's locks (wound-wait at
// its original priority; having voted, it is itself immune to wounds) and
// proposes once they are granted. The piece is re-executed under the fresh
// locks so the commit applies on top of the current store state.
func (s *server) relock(id txn.ID, p *pendingSrv) {
	piece := p.t.Pieces[s.shard]
	for _, k := range piece.ReadSet {
		if !contains(piece.WriteSet, k) && !s.lt.Acquire(k, locks.Shared, id, p.prio, p.grant) {
			p.waiting++
		}
	}
	for _, k := range piece.WriteSet {
		if !s.lt.Acquire(k, locks.Exclusive, id, p.prio, p.grant) {
			p.waiting++
		}
	}
	if p.waiting == 0 {
		s.finishRelock(id)
	}
}

func (s *server) finishRelock(id txn.ID) {
	p := s.pending[id]
	if p == nil || !p.relocking {
		return
	}
	p.relocking = false
	if s.applied[id] {
		// A recovered slot committed this transaction while we waited for
		// the locks (InstallLog re-proposes the adopted tail).
		s.lt.ReleaseAll(id)
		delete(s.pending, id)
		coord := p.coord
		s.pend.Put(p)
		s.node.Send(coord, committedMsg{Shard: s.shard, ID: id})
		return
	}
	s.node.Work(s.sys.spec.ExecCost)
	ret, writes := executeBuffered(s.st, p.t.Pieces[s.shard])
	_ = ret // the coordinator already holds the pre-crash vote result
	p.writes = writes
	p.proposed = true
	slot := s.pax.Propose(commitRec{ID: id, TS: p.ts, Writes: p.writes})
	s.onSlot[slot] = id
}

func (s *server) abortLocal(id txn.ID) {
	p := s.pending[id]
	if p == nil {
		return
	}
	s.releaseOCC(p, id)
	s.lt.ReleaseAll(id)
	delete(s.pending, id)
	s.pend.Put(p)
}

// releaseOCC drops the transaction's OCC read marks and write locks.
func (s *server) releaseOCC(p *pendingSrv, id txn.ID) {
	for _, k := range p.occHeld {
		if s.occLock[k] == id {
			delete(s.occLock, k)
		}
	}
	for _, k := range p.occRead {
		if rd := s.occRead[k]; rd != nil {
			delete(rd, id)
			if len(rd) == 0 {
				delete(s.occRead, k)
			}
		}
	}
}

// onPaxosCommit applies a replicated commit record on every replica; the
// leader additionally finishes the 2PC and answers the coordinator. The
// applied set makes the apply idempotent: after a leader reboot the same
// transaction can reach commit through both a re-proposed recovered slot and
// a re-sent commit request, and only the first may touch the store.
func (s *server) onPaxosCommit(slot int, cmd paxos.Command) {
	rec := cmd.(commitRec)
	if !s.applied[rec.ID] {
		s.applied[rec.ID] = true
		if s.sys.spec.LocalReads {
			// Versioned install at the minted commit timestamp, in sorted
			// key order (map iteration order must not leak into store
			// version layout).
			keys := make([]string, 0, len(rec.Writes))
			for k := range rec.Writes {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				s.st.PutCommitted(k, rec.TS, rec.Writes[k])
			}
		} else {
			for k, v := range rec.Writes {
				s.st.Seed(k, v)
			}
		}
	}
	if s.replica != 0 {
		if s.sys.spec.LocalReads {
			s.adoptSafeT()
		}
		return
	}
	if s.catchingUp && s.pax.Committed() >= s.pax.LogLen() {
		s.catchingUp = false
	}
	if id, ok := s.onSlot[slot]; ok {
		delete(s.onSlot, slot)
		if p := s.pending[id]; p != nil {
			s.releaseOCC(p, id)
			s.lt.ReleaseAll(id)
			delete(s.pending, id)
			coord, cReqS := p.coord, p.cReqS
			s.pend.Put(p)
			s.node.Send(coord, committedMsg{Shard: s.shard, ID: id,
				ArriveS: cReqS, CommitS: s.sys.spec.Net.Sim().Now()})
		}
	}
}

// executeBuffered runs a piece reading the store but buffering writes.
func executeBuffered(st *store.Store, p *txn.Piece) ([]byte, map[string][]byte) {
	v := &bufView{st: st, writes: make(map[string][]byte)}
	ret := p.Exec(v)
	return ret, v.writes
}

type bufView struct {
	st     *store.Store
	writes map[string][]byte
}

func (v *bufView) Get(k string) []byte {
	if w, ok := v.writes[k]; ok {
		return w
	}
	return v.st.Get(k)
}

func (v *bufView) Put(k string, val []byte) { v.writes[k] = val }

func contains(set []string, k string) bool {
	for _, s := range set {
		if s == k {
			return true
		}
	}
	return false
}

// ---- coordinator ----

type pendingCo struct {
	t       *txn.Txn
	done    func(txn.Result)
	prio    uint64
	votes   map[int]voteMsg
	commits map[int]bool
	phase   int // 0 = exec, 1 = commit
	retries int
	start   time.Duration
	ts      txn.Timestamp // minted at the commit decision (LocalReads)
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pendingCo
	// pend recycles pendingCo records (maps cleared, not remade, on reuse).
	// Recycle happens only after the record left co.pending and everything a
	// later callback needs was copied out — retry closures capture fields,
	// never the record itself.
	pend *pool.Free[pendingCo]

	// gate is the admission-control gate (Spec.AdmitCap etc.); disabled by
	// default, it passes submissions straight through.
	gate admit.Gate

	// Local snapshot reads (Spec.LocalReads, see snapreads.go).
	reads   map[uint64]*pendingRead
	nearest []int
}

// Submit runs the layered commit protocol for t, behind the coordinator's
// admission gate. Protocol-internal retries reuse the admitted slot (the
// wrapped done survives across co.submit re-invocations), so one logical
// transaction holds exactly one slot until its final outcome.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.gate.Submit(t, done, func(t *txn.Txn, done func(txn.Result)) {
		co.submit(t, done, 0, 0)
	})
}

func (co *coordinator) submit(t *txn.Txn, done func(txn.Result), retries int, prio uint64) {
	if retries > 0 {
		// The failed attempt plus its backoff are retry-attributed; the mark
		// also advances the trace cursor past the dead attempt's stamps.
		t.Trace.Mark(co.sys.spec.Net.Sim().Now(), trace.PhaseRetry)
	}
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := co.pend.Get()
	if p.votes == nil {
		p.votes, p.commits = make(map[int]voteMsg), make(map[int]bool)
	} else {
		clear(p.votes)
		clear(p.commits)
	}
	p.t, p.done, p.phase, p.ts = t, done, 0, txn.Timestamp{}
	p.retries, p.start = retries, co.sys.spec.Net.Sim().Now()
	// Wound-wait priority: older transactions (earlier first submission)
	// win; retries keep their original priority so victims make progress.
	p.prio = prio
	if p.prio == 0 {
		p.prio = uint64(co.sys.spec.Net.Sim().Now())<<8 | uint64(co.idx)
	}
	co.pending[t.ID] = p
	for _, sh := range t.Shards() {
		co.node.Send(co.sys.leaderNode(sh), reqExec{T: t, Prio: p.prio, Coord: co.node.ID()})
	}
	if vt := co.sys.spec.VoteTimeout; vt > 0 {
		id := t.ID
		co.node.After(vt, func() { co.checkProgress(id) })
	}
}

// checkProgress fires when the vote timeout elapses for a submission attempt.
// Still gathering votes: presumed abort — release every shard and retry,
// which is what breaks a wound-wait cycle spanning shards (the per-shard
// vote immunity in onWound cannot). Past the commit decision: re-send the
// commit records (with their writes) to the shards that have not confirmed,
// so a rebooted leader can finish the 2PC, and keep watching.
func (co *coordinator) checkProgress(id txn.ID) {
	p := co.pending[id]
	if p == nil {
		return // completed (or aborted and re-submitted under a fresh ID)
	}
	if p.phase == 0 {
		co.sys.PresumedAborts++
		// Presumed-abort retries add a per-coordinator stagger on top of the
		// shared backoff: two coordinators whose transactions deadlocked each
		// other timed out together, and with identical backoffs their retries
		// would re-collide in lockstep forever. The stagger is the
		// deterministic simulator's stand-in for randomized backoff.
		co.abort(p, co.sys.spec.RetryBackoff*time.Duration(co.idx)/2)
		return
	}
	for _, sh := range p.t.Shards() {
		if !p.commits[sh] {
			co.node.Send(co.sys.leaderNode(sh),
				commitReq{ID: id, Coord: co.node.ID(), T: p.t, Prio: p.prio, TS: p.ts})
		}
	}
	co.node.After(co.sys.spec.VoteTimeout, func() { co.checkProgress(id) })
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case voteMsg:
		co.onVote(m)
	case committedMsg:
		co.onCommitted(m)
	case snapread.Rep:
		co.onSnapRep(m)
	case decisionQuery:
		co.onDecisionQuery(from, m)
	}
}

func (co *coordinator) onVote(m voteMsg) {
	p := co.pending[m.ID]
	if p == nil || p.phase != 0 {
		return
	}
	if !m.OK {
		co.abort(p, 0)
		return
	}
	m.RecvS = co.sys.spec.Net.Sim().Now()
	p.votes[m.Shard] = m
	if len(p.votes) < len(p.t.Pieces) {
		return
	}
	p.phase = 1
	// The commit timestamp is minted at the decision: it is later than every
	// shard's vote (hence every prepTS pinning a leader watermark), and
	// unique via the (Coord, Seq) tie-break.
	if co.sys.spec.LocalReads {
		p.ts = txn.Timestamp{Time: co.sys.spec.Net.Sim().Now(), Coord: co.idx, Seq: m.ID.Seq}
	}
	// Shard order must be deterministic: the simulation's event order (and
	// thus the whole run) follows message send order.
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.leaderNode(sh),
			commitReq{ID: m.ID, Coord: co.node.ID(), T: p.t, Prio: p.prio, TS: p.ts})
	}
}

func (co *coordinator) onCommitted(m committedMsg) {
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.commits[m.Shard] = true
	if len(p.commits) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	if tr := p.t.Trace; tr != nil {
		// Critical path: the decisive (latest-arriving) vote decomposes the
		// prepare round into flight out, lock wait, execution, and flight
		// back; this committedMsg — the one completing the 2PC — carries
		// the commit round's stamps, with the Paxos wait as replication.
		// Iterate shards in sorted order so RecvS ties break identically
		// across runs (map order must not leak into the marks).
		var dv voteMsg
		for _, sh := range p.t.Shards() {
			if v, ok := p.votes[sh]; ok && v.RecvS > dv.RecvS {
				dv = v
			}
		}
		tr.Mark(dv.ArriveS, trace.PhaseFlight)
		tr.Mark(dv.LockS, trace.PhaseLockWait)
		tr.Mark(dv.DoneS, trace.PhaseExec)
		tr.Mark(dv.RecvS, trace.PhaseFlight)
		tr.Mark(m.ArriveS, trace.PhaseFlight)
		tr.Mark(m.CommitS, trace.PhaseRepl)
		tr.Mark(co.sys.spec.Net.Sim().Now(), trace.PhaseFlight)
	}
	res := txn.Result{OK: true, Retries: p.retries, PerShard: make(map[int][]byte), TS: p.ts}
	for sh, v := range p.votes {
		res.PerShard[sh] = v.Ret
	}
	done := p.done
	// Recycle before the callback: done may synchronously submit the next
	// transaction (closed-loop clients), which draws from the same pool;
	// everything res needs was copied out above.
	co.pend.Put(p)
	done(res)
}

// abort releases every shard and retries with backoff (plus the caller's
// stagger; 0 for ordinary wound/validation aborts) until the budget runs out.
func (co *coordinator) abort(p *pendingCo, stagger time.Duration) {
	delete(co.pending, p.t.ID)
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.leaderNode(sh), abortReq{ID: p.t.ID})
	}
	// Copy out what the continuations need: the record returns to the pool
	// now, and the retry closure must not read it later.
	t, done, retries, prio := p.t, p.done, p.retries, p.prio
	co.pend.Put(p)
	if retries >= co.sys.spec.MaxRetries {
		co.sys.Aborts++
		done(txn.Result{Aborted: true, Retries: retries})
		return
	}
	backoff := co.sys.spec.RetryBackoff*time.Duration(retries+1) + stagger
	co.node.After(backoff, func() { co.submit(t, done, retries+1, prio) })
}
