package lockocc

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, cc CC, seed int64) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		CC: cc, Shards: 2, F: 1, Net: net,
		ServerRegion: func(_, r int) simnet.Region { return simnet.Region(r) },
		CoordRegions: []simnet.Region{0, 1},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 10; i++ {
				st.Seed(fmt.Sprintf("x%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	return sim, sys
}

func crossTxn(i int) *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece(fmt.Sprintf("x0-%d", i)),
		1: txn.IncrementPiece(fmt.Sprintf("x1-%d", i)),
	}}
}

func TestCommitAndReplicate(t *testing.T) {
	for _, cc := range []CC{TwoPL, OCC} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			sim, sys := build(t, cc, 1)
			committed := 0
			for i := 0; i < 8; i++ {
				i := i
				sim.At(time.Duration(50+i*40)*time.Millisecond, func() {
					sys.Submit(i%2, crossTxn(i), func(r txn.Result) {
						if r.OK {
							committed++
						}
					})
				})
			}
			sim.Run(5 * time.Second)
			if committed != 8 {
				t.Fatalf("committed %d of 8", committed)
			}
			// Paxos replicated the writes to followers of each shard.
			for sh := 0; sh < 2; sh++ {
				for rep := 1; rep < 3; rep++ {
					lead, fol := sys.servers[sh][0].st, sys.servers[sh][rep].st
					for i := 0; i < 8; i++ {
						k := fmt.Sprintf("x%d-%d", sh, i)
						if string(lead.Get(k)) != string(fol.Get(k)) {
							t.Fatalf("shard %d replica %d diverges on %s", sh, rep, k)
						}
					}
				}
			}
		})
	}
}

func TestCommitLatencyIsLayered(t *testing.T) {
	// The layered design costs ~3 WRTTs: req + vote (1), commit + Paxos
	// (1.5), reply (0.5). The coordinator is co-located with the leaders
	// (region 0), so a WRTT here is to the nearest majority (~110 ms).
	sim, sys := build(t, TwoPL, 2)
	var lat time.Duration
	sim.At(50*time.Millisecond, func() {
		start := sim.Now()
		sys.Submit(0, crossTxn(0), func(r txn.Result) { lat = sim.Now() - start })
	})
	sim.Run(3 * time.Second)
	if lat < 100*time.Millisecond {
		t.Fatalf("2PL+Paxos latency %v implausibly low (no consensus round?)", lat)
	}
}

func TestContentionAborts(t *testing.T) {
	// Firing many conflicting transactions simultaneously wounds/invalidates
	// some; the retry budget is exhausted for a few, yielding client aborts.
	for _, cc := range []CC{TwoPL, OCC} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			sim := simnet.NewSim(3)
			net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
			sys := New(Spec{
				CC: cc, Shards: 2, F: 1, Net: net,
				ServerRegion: func(_, r int) simnet.Region { return simnet.Region(r) },
				CoordRegions: []simnet.Region{0, 1, 2},
				Seed: func(shard int, st *store.Store) {
					st.Seed(fmt.Sprintf("hot%d", shard), txn.EncodeInt(0))
				},
				ExecCost: time.Microsecond, MaxRetries: 2, RetryBackoff: 5 * time.Millisecond,
			})
			committed, aborted := 0, 0
			hot := func() *txn.Txn {
				return &txn.Txn{Pieces: map[int]*txn.Piece{
					0: txn.IncrementPiece("hot0"),
					1: txn.IncrementPiece("hot1"),
				}}
			}
			for i := 0; i < 30; i++ {
				i := i
				sim.At(time.Duration(50+i)*time.Millisecond, func() {
					sys.Submit(i%3, hot(), func(r txn.Result) {
						if r.OK {
							committed++
						} else {
							aborted++
						}
					})
				})
			}
			sim.Run(10 * time.Second)
			if committed+aborted != 30 {
				t.Fatalf("lost transactions: %d+%d != 30", committed, aborted)
			}
			if committed == 0 {
				t.Fatal("livelock: nothing committed")
			}
			// Committed increments are applied exactly once.
			got := txn.DecodeInt(sys.Store(0).Get("hot0"))
			if got != int64(committed) {
				t.Fatalf("hot0 = %d, want %d commits", got, committed)
			}
		})
	}
}
