package lockocc

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// buildCycleDeployment places the two shard leaders in different regions
// (shard 0 -> region 0, shard 1 -> region 1) with one coordinator co-located
// with each, so a transaction submitted near its "home" shard locks it
// before the rival's WAN request arrives — the geometry that produces the
// cross-shard wound-wait cycle from the ROADMAP:
//
//	T1 (older) votes on shard 0, waits on shard 1;
//	T2 (younger) votes on shard 1, waits on shard 0 — T1's wound is ignored
//	because T2 already voted there.
//
// Per-shard vote immunity can never break this cycle; only the coordinator's
// vote timeout (presumed abort) can.
func buildCycleDeployment(voteTimeout time.Duration) (*simnet.Sim, *System) {
	sim := simnet.NewSim(11)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0)) // no jitter: exact geometry
	sys := New(Spec{
		CC: TwoPL, Shards: 2, F: 1, Net: net,
		ServerRegion: func(shard, r int) simnet.Region { return simnet.Region((shard + r) % 3) },
		CoordRegions: []simnet.Region{0, 1},
		Seed: func(shard int, st *store.Store) {
			st.Seed(fmt.Sprintf("cyc%d", shard), txn.EncodeInt(0))
		},
		ExecCost: time.Microsecond, VoteTimeout: voteTimeout,
	})
	sys.Start()
	return sim, sys
}

func cycleTxn() *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece("cyc0"),
		1: txn.IncrementPiece("cyc1"),
	}}
}

// submitCycle arms the T1/T2 collision and returns completion flags:
// done[i] is set when transaction i's final result arrives, ok[i] when it
// committed. T2 starts 20 ms after T1 — late enough that T1 has locked its
// home shard, early enough that T2 locks shard 1 before T1's WAN request
// lands there.
func submitCycle(sim *simnet.Sim, sys *System) (done, ok *[2]bool) {
	done, ok = new([2]bool), new([2]bool)
	sim.At(10*time.Millisecond, func() {
		sys.Submit(0, cycleTxn(), func(r txn.Result) { done[0] = true; ok[0] = r.OK })
	})
	sim.At(30*time.Millisecond, func() {
		sys.Submit(1, cycleTxn(), func(r txn.Result) { done[1] = true; ok[1] = r.OK })
	})
	return done, ok
}

// TestCrossShardWoundWaitCycleHangsWithoutTimeout documents the liveness
// hole the vote timeout exists to close: with the timer disabled, the cycle
// never resolves, and later transactions queue behind the stuck locks
// forever.
func TestCrossShardWoundWaitCycleHangsWithoutTimeout(t *testing.T) {
	sim, sys := buildCycleDeployment(0)
	done, _ := submitCycle(sim, sys)
	probeDone := false
	sim.At(2*time.Second, func() {
		sys.Submit(0, cycleTxn(), func(txn.Result) { probeDone = true })
	})
	sim.Run(20 * time.Second)
	if done[0] || done[1] {
		t.Fatalf("cycle resolved without a vote timeout (done=%v) — the regression geometry no longer deadlocks", *done)
	}
	if probeDone {
		t.Fatal("probe transaction completed although the cycle holds its locks")
	}
}

// TestVoteTimeoutResolvesCrossShardWoundWaitCycle is the regression test for
// the fix: the same deadlock geometry, with the coordinator vote timeout
// armed, resolves — both transactions reach a final result, at least one
// commits, the presumed-abort counter shows the escape fired, and later
// transactions on the same keys proceed.
func TestVoteTimeoutResolvesCrossShardWoundWaitCycle(t *testing.T) {
	sim, sys := buildCycleDeployment(300 * time.Millisecond)
	done, ok := submitCycle(sim, sys)
	probeOK := false
	sim.At(8*time.Second, func() {
		sys.Submit(0, cycleTxn(), func(r txn.Result) { probeOK = r.OK })
	})
	sim.Run(20 * time.Second)
	if !done[0] || !done[1] {
		t.Fatalf("cycle did not resolve under the vote timeout (done=%v)", *done)
	}
	if !ok[0] && !ok[1] {
		t.Fatalf("both transactions aborted permanently; presumed abort should let at least one retry win")
	}
	if sys.PresumedAborts == 0 {
		t.Fatal("PresumedAborts = 0: the cycle resolved without the vote timeout firing?")
	}
	if !probeOK {
		t.Fatal("probe transaction after the cycle did not commit")
	}
	// Exactly-once effects despite the presumed-abort retries.
	commits := int64(0)
	for i, o := range ok {
		_ = i
		if o {
			commits++
		}
	}
	if probeOK {
		commits++
	}
	for sh := 0; sh < 2; sh++ {
		if got := txn.DecodeInt(sys.Store(sh).Get(fmt.Sprintf("cyc%d", sh))); got != commits {
			t.Fatalf("cyc%d = %d increments, want %d (retry double-apply?)", sh, got, commits)
		}
	}
}
