package calvin

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, seed int64, epoch time.Duration) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		Shards: 2, Regions: 3, Net: net,
		CoordRegions: []simnet.Region{0, 1, simnet.RegionHongKong},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("c%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond, Epoch: epoch,
	})
	sys.Start()
	return sim, sys
}

func tx(i int) *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece(fmt.Sprintf("c0-%d", i%8)),
		1: txn.IncrementPiece(fmt.Sprintf("c1-%d", i%8)),
	}}
}

// TestDeterministicExecution: all regions' replicas converge on the same
// state — the merged epoch order is deterministic.
func TestDeterministicExecution(t *testing.T) {
	sim, sys := build(t, 1, 10*time.Millisecond)
	const n = 30
	committed := 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i*7)*time.Millisecond, func() {
			sys.Submit(i%3, tx(i), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(5 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	for sh := 0; sh < 2; sh++ {
		base := sys.Store(0, sh)
		for reg := 1; reg < 3; reg++ {
			if !base.Equal(sys.Store(reg, sh)) {
				t.Fatalf("region %d shard %d diverged from region 0", reg, sh)
			}
		}
	}
}

// TestEpochBarrierLatency: commit latency includes the epoch wait plus the
// cross-region batch propagation (the merge barrier needs every region's
// batch), so a larger epoch visibly raises latency.
func TestEpochBarrierLatency(t *testing.T) {
	lat := func(epoch time.Duration) time.Duration {
		sim, sys := build(t, 2, epoch)
		var l time.Duration
		sim.At(100*time.Millisecond, func() {
			s := sim.Now()
			sys.Submit(0, tx(0), func(r txn.Result) { l = sim.Now() - s })
		})
		sim.Run(3 * time.Second)
		return l
	}
	small, big := lat(5*time.Millisecond), lat(80*time.Millisecond)
	if small == 0 || big == 0 {
		t.Fatal("no commits")
	}
	if big < small+30*time.Millisecond {
		t.Fatalf("epoch 80ms latency (%v) should exceed epoch 5ms (%v)", big, small)
	}
	// The barrier requires the slowest inbound region batch: for a region-0
	// executor that is max(FI→SC, BR→SC) ≈ 62 ms one-way.
	if small < 60*time.Millisecond {
		t.Fatalf("latency %v below the cross-region barrier bound", small)
	}
}

// TestAbortFree: deterministic ordering never aborts, even under total
// conflict.
func TestAbortFree(t *testing.T) {
	sim, sys := build(t, 3, 10*time.Millisecond)
	hot := func() *txn.Txn {
		return &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("c0-0"),
			1: txn.IncrementPiece("c1-0"),
		}}
	}
	const n = 25
	committed := 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i)*time.Millisecond, func() {
			sys.Submit(i%3, hot(), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(5 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	if got := txn.DecodeInt(sys.Store(0, 0).Get("c0-0")); got != n {
		t.Fatalf("c0-0 = %d, want %d", got, n)
	}
}

// buildLossy deploys Calvin+ on the geo4-degraded WAN (5 ms jitter, 1%
// message loss — the registered topology's defaults) with the given
// retransmission timeout.
func buildLossy(t *testing.T, seed int64, resend time.Duration) (*simnet.Sim, *System) {
	t.Helper()
	topo, ok := simnet.LookupTopology("geo4-degraded")
	if !ok {
		t.Fatal("geo4-degraded topology not registered")
	}
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, topo.Config(0, 0))
	sys := New(Spec{
		Shards: 2, Regions: 3, Net: net,
		CoordRegions: []simnet.Region{0, 1, simnet.RegionHongKong},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("c%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond, Epoch: 10 * time.Millisecond,
		Resend: resend,
	})
	sys.Start()
	return sim, sys
}

// TestResendSurvivesLoss is the geo4-degraded regression for the sequencer
// retransmission knob. Without it, the first dropped epochBatch jams the
// merge barrier: every executor behind the gap stalls forever and commits
// stop. With a resend timeout armed, stuck executors re-request the missing
// region batches and the run commits essentially everything — and the
// deterministic replicas still converge (retransmitted duplicates are
// suppressed, never re-executed).
func TestResendSurvivesLoss(t *testing.T) {
	const n = 150
	drive := func(resend time.Duration) (int, *System) {
		sim, sys := buildLossy(t, 7, resend)
		committed := 0
		for i := 0; i < n; i++ {
			i := i
			sim.At(time.Duration(50+i*20)*time.Millisecond, func() {
				sys.Submit(i%3, tx(i), func(r txn.Result) {
					if r.OK {
						committed++
					}
				})
			})
		}
		sim.Run(8 * time.Second)
		return committed, sys
	}

	stalled, _ := drive(0)
	recovered, sys := drive(40 * time.Millisecond)
	t.Logf("commits under 1%% loss: resend off = %d/%d, resend 40ms = %d/%d",
		stalled, n, recovered, n)
	// The lossless-faithful default stalls: the barrier jams at the first
	// dropped batch, so only the epochs before the gap ever execute.
	if stalled > n/2 {
		t.Fatalf("resend-off run committed %d of %d — loss no longer stalls the barrier; is this test still driving the documented failure?", stalled, n)
	}
	// The armed timer repairs the gaps. (Individual submit/result messages
	// can still be lost — those transactions hang at the coordinator — so
	// require "almost all", not all.)
	if recovered < 9*n/10 {
		t.Fatalf("resend-on run committed only %d of %d", recovered, n)
	}
	if recovered <= stalled {
		t.Fatalf("retransmission did not help: %d <= %d", recovered, stalled)
	}
	// Determinism survives retransmission: all regions converge per shard.
	for sh := 0; sh < 2; sh++ {
		base := sys.Store(0, sh)
		for reg := 1; reg < 3; reg++ {
			if !base.Equal(sys.Store(reg, sh)) {
				t.Fatalf("region %d shard %d diverged under retransmission", reg, sh)
			}
		}
	}
}
