// Package calvin implements the Calvin+ baseline (§5.1): Calvin's
// deterministic epoch-based ordering with its Paxos consensus layer replaced
// by a Nezha-style 1-WRTT batch replication, saving at least one WRTT per
// commit.
//
// Each region runs a sequencer that batches incoming transactions into fixed
// epochs and broadcasts each epoch batch to every region. A region's
// schedulers merge the per-region batches of an epoch in a deterministic
// order and execute them serially per shard. The merge barrier — epoch e
// cannot run until ALL regions' epoch-e batches have arrived — is Calvin's
// straggler problem: one slow region or overloaded shard delays everyone
// (§5.2, §5.3).
package calvin

import (
	"sort"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards       int
	Regions      int // replication degree; one full replica per region
	Net          *simnet.Network
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	Epoch        time.Duration
	// Resend arms the sequencer retransmission path: an executor stuck at
	// the merge barrier re-requests the missing region batches after this
	// timeout, and sequencers retain flushed batches to answer. 0 disables
	// it (the original behavior — correct on reliable links, but a single
	// dropped epochBatch under loss stalls the barrier, and every epoch
	// after it, forever). Calvin proper reaches the same guarantee by
	// running its sequencers through Paxos; a retransmission timer is the
	// Nezha-style equivalent for the 1-WRTT batch replication this
	// baseline models.
	Resend time.Duration
}

type submitMsg struct {
	T     *txn.Txn
	Coord simnet.NodeID
	// HomeRegion is the region whose executors answer this coordinator.
	HomeRegion int
}

type epochBatch struct {
	Region int
	Epoch  int
	Txns   []submitMsg
}

type resultMsg struct {
	Shard int
	ID    txn.ID
	Ret   []byte
}

// fetchMsg asks a region's sequencer to retransmit one flushed epoch batch
// to the requesting executor (merge-barrier gap repair under loss).
type fetchMsg struct {
	Epoch int
}

// sequencer batches submissions per region.
type sequencer struct {
	sys    *System
	region int
	node   *simnet.Node
	buf    []submitMsg
	epoch  int
	// history retains flushed batches for retransmission when Spec.Resend
	// is armed (runs are bounded, so retention is too).
	history map[int]epochBatch
}

// executor executes one shard's pieces at one region, in global epoch order.
type executor struct {
	sys     *System
	region  int
	shard   int
	node    *simnet.Node
	st      *store.Store
	batches map[int]map[int]epochBatch // epoch -> region -> batch
	next    int                        // next epoch to run
}

// System is a running Calvin+ deployment.
type System struct {
	spec   Spec
	seqs   []*sequencer
	execs  [][]*executor // [region][shard]
	coords []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.Epoch == 0 {
		spec.Epoch = 10 * time.Millisecond
	}
	if spec.Regions == 0 {
		spec.Regions = 3
	}
	sys := &System{spec: spec}
	for reg := 0; reg < spec.Regions; reg++ {
		node := spec.Net.AddNode(simnet.Region(reg), nil)
		sq := &sequencer{sys: sys, region: reg, node: node}
		if spec.Resend > 0 {
			sq.history = make(map[int]epochBatch)
		}
		node.SetHandler(sq.handle)
		sys.seqs = append(sys.seqs, sq)
	}
	sys.execs = make([][]*executor, spec.Regions)
	for reg := 0; reg < spec.Regions; reg++ {
		sys.execs[reg] = make([]*executor, spec.Shards)
		for sh := 0; sh < spec.Shards; sh++ {
			node := spec.Net.AddNode(simnet.Region(reg), nil)
			ex := &executor{sys: sys, region: reg, shard: sh, node: node,
				st: store.New(), batches: make(map[int]map[int]epochBatch)}
			if spec.Seed != nil {
				spec.Seed(sh, ex.st)
			}
			node.SetHandler(ex.handle)
			sys.execs[reg][sh] = ex
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		// Coordinators use the nearest server region's replica for results.
		co.home = nearestRegion(spec.Net, reg, spec.Regions)
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

func nearestRegion(net *simnet.Network, from simnet.Region, regions int) int {
	best, bestD := 0, time.Duration(1<<62)
	for r := 0; r < regions; r++ {
		if d := net.BaseOWD(from, simnet.Region(r)); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// Start launches the epoch tickers, and — when retransmission is armed —
// the executors' merge-barrier gap detectors.
func (sys *System) Start() {
	for _, sq := range sys.seqs {
		sq := sq
		sq.node.Every(sys.spec.Epoch, func() bool {
			sq.flush()
			return true
		})
	}
	if sys.spec.Resend <= 0 {
		return
	}
	for _, regExecs := range sys.execs {
		for _, ex := range regExecs {
			ex := ex
			ex.node.Every(sys.spec.Resend, func() bool {
				ex.fetchMissing()
				return true
			})
		}
	}
}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a region's shard store (tests).
func (sys *System) Store(region, shard int) *store.Store { return sys.execs[region][shard].st }

// ---- sequencer ----

func (sq *sequencer) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case submitMsg:
		sq.buf = append(sq.buf, m)
	case fetchMsg:
		// Gap repair: retransmit a flushed batch to the stuck executor.
		// An epoch not yet flushed is not a gap — the executor's next tick
		// re-asks if the regular broadcast is lost too.
		if b, ok := sq.history[m.Epoch]; ok {
			sq.node.Send(from, b)
		}
	}
}

// flush closes the current epoch and broadcasts its batch (possibly empty —
// every region must see every epoch for the merge barrier) to all executors
// in all regions.
func (sq *sequencer) flush() {
	b := epochBatch{Region: sq.region, Epoch: sq.epoch, Txns: sq.buf}
	sq.epoch++
	sq.buf = nil
	if sq.history != nil {
		sq.history[b.Epoch] = b
	}
	for reg := 0; reg < sq.sys.spec.Regions; reg++ {
		for sh := 0; sh < sq.sys.spec.Shards; sh++ {
			sq.node.Send(sq.sys.execs[reg][sh].node.ID(), b)
		}
	}
}

// ---- executor ----

// fetchMissing asks the sequencers of the regions whose batch for the next
// epoch has not arrived to retransmit it. Harmless when the epoch simply has
// not been flushed yet: the sequencer ignores unknown epochs and the next
// tick re-asks.
func (ex *executor) fetchMissing() {
	byRegion := ex.batches[ex.next]
	for reg := 0; reg < ex.sys.spec.Regions; reg++ {
		if _, ok := byRegion[reg]; !ok {
			ex.node.Send(ex.sys.seqs[reg].node.ID(), fetchMsg{Epoch: ex.next})
		}
	}
}

func (ex *executor) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(epochBatch)
	if !ok {
		return
	}
	if m.Epoch < ex.next {
		// A retransmission raced the original delivery; the epoch already
		// ran. (Never reached on reliable links: an epoch below next has
		// been merged, so its batches were all delivered exactly once.)
		return
	}
	byRegion := ex.batches[m.Epoch]
	if byRegion == nil {
		byRegion = make(map[int]epochBatch)
		ex.batches[m.Epoch] = byRegion
	}
	byRegion[m.Region] = m
	// Merge barrier: run epochs in order once all regions' batches arrived.
	for {
		br, ok := ex.batches[ex.next]
		if !ok || len(br) < ex.sys.spec.Regions {
			return
		}
		ex.runEpoch(br)
		delete(ex.batches, ex.next)
		ex.next++
	}
}

// runEpoch merges the per-region batches deterministically (region id, then
// submission order) and executes this shard's pieces serially.
func (ex *executor) runEpoch(byRegion map[int]epochBatch) {
	regions := make([]int, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	for _, r := range regions {
		for _, sm := range byRegion[r].Txns {
			piece := sm.T.Pieces[ex.shard]
			if piece == nil {
				continue
			}
			ex.node.Work(ex.sys.spec.ExecCost)
			ret := ex.st.Execute(sm.T.ID, txn.Timestamp{}, piece)
			ex.st.Commit(sm.T.ID)
			if sm.HomeRegion == ex.region {
				ex.node.Send(sm.Coord, resultMsg{Shard: ex.shard, ID: sm.T.ID, Ret: ret})
			}
		}
	}
}

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	results map[int][]byte
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	home    int
	pending map[txn.ID]*pending
}

// Submit hands t to the coordinator's nearest sequencer.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	co.pending[t.ID] = &pending{t: t, done: done, results: make(map[int][]byte)}
	co.node.Send(co.sys.seqs[co.home].node.ID(), submitMsg{T: t, Coord: co.node.ID(), HomeRegion: co.home})
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(resultMsg)
	if !ok {
		return
	}
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.results[m.Shard] = m.Ret
	if len(p.results) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	p.done(txn.Result{OK: true, PerShard: p.results})
}
