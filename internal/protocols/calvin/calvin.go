// Package calvin implements the Calvin+ baseline (§5.1): Calvin's
// deterministic epoch-based ordering with its Paxos consensus layer replaced
// by a Nezha-style 1-WRTT batch replication, saving at least one WRTT per
// commit.
//
// Each region runs a sequencer that batches incoming transactions into fixed
// epochs and broadcasts each epoch batch to every region. A region's
// schedulers merge the per-region batches of an epoch in a deterministic
// order and execute them serially per shard. The merge barrier — epoch e
// cannot run until ALL regions' epoch-e batches have arrived — is Calvin's
// straggler problem: one slow region or overloaded shard delays everyone
// (§5.2, §5.3).
package calvin

import (
	"sort"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards       int
	Regions      int // replication degree; one full replica per region
	Net          *simnet.Network
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	Epoch        time.Duration
}

type submitMsg struct {
	T     *txn.Txn
	Coord simnet.NodeID
	// HomeRegion is the region whose executors answer this coordinator.
	HomeRegion int
}

type epochBatch struct {
	Region int
	Epoch  int
	Txns   []submitMsg
}

type resultMsg struct {
	Shard int
	ID    txn.ID
	Ret   []byte
}

// sequencer batches submissions per region.
type sequencer struct {
	sys    *System
	region int
	node   *simnet.Node
	buf    []submitMsg
	epoch  int
}

// executor executes one shard's pieces at one region, in global epoch order.
type executor struct {
	sys     *System
	region  int
	shard   int
	node    *simnet.Node
	st      *store.Store
	batches map[int]map[int]epochBatch // epoch -> region -> batch
	next    int                        // next epoch to run
}

// System is a running Calvin+ deployment.
type System struct {
	spec   Spec
	seqs   []*sequencer
	execs  [][]*executor // [region][shard]
	coords []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.Epoch == 0 {
		spec.Epoch = 10 * time.Millisecond
	}
	if spec.Regions == 0 {
		spec.Regions = 3
	}
	sys := &System{spec: spec}
	for reg := 0; reg < spec.Regions; reg++ {
		node := spec.Net.AddNode(simnet.Region(reg), nil)
		sq := &sequencer{sys: sys, region: reg, node: node}
		node.SetHandler(sq.handle)
		sys.seqs = append(sys.seqs, sq)
	}
	sys.execs = make([][]*executor, spec.Regions)
	for reg := 0; reg < spec.Regions; reg++ {
		sys.execs[reg] = make([]*executor, spec.Shards)
		for sh := 0; sh < spec.Shards; sh++ {
			node := spec.Net.AddNode(simnet.Region(reg), nil)
			ex := &executor{sys: sys, region: reg, shard: sh, node: node,
				st: store.New(), batches: make(map[int]map[int]epochBatch)}
			if spec.Seed != nil {
				spec.Seed(sh, ex.st)
			}
			node.SetHandler(ex.handle)
			sys.execs[reg][sh] = ex
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		// Coordinators use the nearest server region's replica for results.
		co.home = nearestRegion(spec.Net, reg, spec.Regions)
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

func nearestRegion(net *simnet.Network, from simnet.Region, regions int) int {
	best, bestD := 0, time.Duration(1<<62)
	for r := 0; r < regions; r++ {
		if d := net.BaseOWD(from, simnet.Region(r)); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// Start launches the epoch tickers.
func (sys *System) Start() {
	for _, sq := range sys.seqs {
		sq := sq
		sq.node.Every(sys.spec.Epoch, func() bool {
			sq.flush()
			return true
		})
	}
}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a region's shard store (tests).
func (sys *System) Store(region, shard int) *store.Store { return sys.execs[region][shard].st }

// ---- sequencer ----

func (sq *sequencer) handle(from simnet.NodeID, msg simnet.Message) {
	if m, ok := msg.(submitMsg); ok {
		sq.buf = append(sq.buf, m)
	}
}

// flush closes the current epoch and broadcasts its batch (possibly empty —
// every region must see every epoch for the merge barrier) to all executors
// in all regions.
func (sq *sequencer) flush() {
	b := epochBatch{Region: sq.region, Epoch: sq.epoch, Txns: sq.buf}
	sq.epoch++
	sq.buf = nil
	for reg := 0; reg < sq.sys.spec.Regions; reg++ {
		for sh := 0; sh < sq.sys.spec.Shards; sh++ {
			sq.node.Send(sq.sys.execs[reg][sh].node.ID(), b)
		}
	}
}

// ---- executor ----

func (ex *executor) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(epochBatch)
	if !ok {
		return
	}
	byRegion := ex.batches[m.Epoch]
	if byRegion == nil {
		byRegion = make(map[int]epochBatch)
		ex.batches[m.Epoch] = byRegion
	}
	byRegion[m.Region] = m
	// Merge barrier: run epochs in order once all regions' batches arrived.
	for {
		br, ok := ex.batches[ex.next]
		if !ok || len(br) < ex.sys.spec.Regions {
			return
		}
		ex.runEpoch(br)
		delete(ex.batches, ex.next)
		ex.next++
	}
}

// runEpoch merges the per-region batches deterministically (region id, then
// submission order) and executes this shard's pieces serially.
func (ex *executor) runEpoch(byRegion map[int]epochBatch) {
	regions := make([]int, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	for _, r := range regions {
		for _, sm := range byRegion[r].Txns {
			piece := sm.T.Pieces[ex.shard]
			if piece == nil {
				continue
			}
			ex.node.Work(ex.sys.spec.ExecCost)
			ret := ex.st.Execute(sm.T.ID, txn.Timestamp{}, piece)
			ex.st.Commit(sm.T.ID)
			if sm.HomeRegion == ex.region {
				ex.node.Send(sm.Coord, resultMsg{Shard: ex.shard, ID: sm.T.ID, Ret: ret})
			}
		}
	}
}

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	results map[int][]byte
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	home    int
	pending map[txn.ID]*pending
}

// Submit hands t to the coordinator's nearest sequencer.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	co.pending[t.ID] = &pending{t: t, done: done, results: make(map[int][]byte)}
	co.node.Send(co.sys.seqs[co.home].node.ID(), submitMsg{T: t, Coord: co.node.ID(), HomeRegion: co.home})
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(resultMsg)
	if !ok {
		return
	}
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.results[m.Shard] = m.Ret
	if len(p.results) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	p.done(txn.Result{OK: true, PerShard: p.results})
}
