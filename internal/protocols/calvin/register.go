package calvin

import (
	"time"

	"tiga/internal/protocol"
)

// Calvin+ sequences epochs deterministically; its per-replica scheduler and
// lock acquisition dominate per-transaction work. The 10 ms epoch matches the
// paper's configuration.
func init() {
	protocol.Register("Calvin+", protocol.CostProfile{Exec: 9, Rank: 50},
		protocol.Schema{
			{Name: "epoch", Type: protocol.KnobDuration, Default: 10 * time.Millisecond,
				Doc: "sequencer epoch length: shorter cuts batching latency, longer amortizes the merge barrier"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, Regions: ctx.Regions, Net: ctx.Net,
				CoordRegions: ctx.CoordRegions, Seed: ctx.SeedStore,
				ExecCost: ctx.ExecCost, Epoch: ctx.Knobs.Duration("epoch"),
			})
		})
}
