package calvin

import (
	"time"

	"tiga/internal/protocol"
)

// Calvin+ sequences epochs deterministically; its per-replica scheduler and
// lock acquisition dominate per-transaction work. The 10 ms epoch matches the
// paper's configuration.
func init() {
	protocol.Register("Calvin+", protocol.CostProfile{Exec: 9, Rank: 50},
		protocol.Schema{
			{Name: "epoch", Type: protocol.KnobDuration, Default: 10 * time.Millisecond,
				Doc: "sequencer epoch length: shorter cuts batching latency, longer amortizes the merge barrier"},
			{Name: "resend-timeout", Type: protocol.KnobDuration, Default: 40 * time.Millisecond,
				Doc: "sequencer batch retransmission: executors stuck at the merge barrier re-request missing region batches after this timeout (0 disables, restoring the pre-PR 5 lossless-link model under which any message loss stalls the sequencer at the first dropped batch; Calvin proper gets the same guarantee by running sequencers through Paxos)"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, Regions: ctx.Regions, Net: ctx.Net,
				CoordRegions: ctx.CoordRegions, Seed: ctx.SeedStore,
				ExecCost: ctx.ExecCost, Epoch: ctx.Knobs.Duration("epoch"),
				Resend: ctx.Knobs.Duration("resend-timeout"),
			})
		})
}
