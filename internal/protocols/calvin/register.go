package calvin

import (
	"time"

	"tiga/internal/protocol"
)

// Calvin+ sequences epochs deterministically; its per-replica scheduler and
// lock acquisition dominate per-transaction work. The 10 ms epoch matches the
// paper's configuration.
func init() {
	protocol.Register("Calvin+", protocol.CostProfile{Exec: 9, Rank: 50},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, Regions: ctx.Regions, Net: ctx.Net,
				CoordRegions: ctx.CoordRegions, Seed: ctx.SeedStore,
				ExecCost: ctx.ExecCost, Epoch: 10 * time.Millisecond,
			})
		})
}
