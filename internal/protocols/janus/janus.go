// Package janus implements the Janus baseline (Mu et al., OSDI 2016): a
// consolidated protocol that tracks dependencies among conflicting
// transactions during a pre-accept round and executes strongly connected
// components of the dependency graph in a deterministic order.
//
// Fast path (consistent dependencies at a super quorum of every shard):
// pre-accept (1 WRTT) + commit broadcast and execution (1 WRTT) = 2 WRTTs.
// Inconsistent dependencies add an accept round (3 WRTTs). Janus never
// aborts, but its graph computation is CPU-intensive under contention — the
// throughput collapse Tiga's timestamp ordering avoids (§5.2, Fig 9).
package janus

import (
	"sort"
	"time"

	"tiga/internal/graph"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards       int
	F            int
	Net          *simnet.Network
	ServerRegion func(shard, replica int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	// GraphCost is the CPU charged per graph node visited during SCC.
	GraphCost time.Duration
	// NoFastPath forces the accept round even when a super quorum reports
	// identical dependencies (the "fast-path" knob, inverted so the zero
	// value keeps Janus's normal 2-WRTT fast path).
	NoFastPath bool
}

func tid(id txn.ID) uint64 { return uint64(id.Coord)<<40 | id.Seq }

type preaccept struct {
	T     *txn.Txn
	Coord simnet.NodeID
}

type preacceptRep struct {
	Shard   int
	Replica int
	ID      txn.ID
	Deps    []uint64
}

type acceptMsg struct {
	ID    txn.ID
	Deps  []uint64
	Coord simnet.NodeID
}

type acceptRep struct {
	Shard   int
	Replica int
	ID      txn.ID
}

type commitMsg struct {
	ID    txn.ID
	T     *txn.Txn
	Deps  []uint64
	Coord simnet.NodeID
}

type execResult struct {
	Shard int
	ID    txn.ID
	Ret   []byte
}

type jtxn struct {
	t         *txn.Txn
	deps      []uint64
	committed bool
	executed  bool
	pending   int // unexecuted local dependencies
	coord     simnet.NodeID
}

type replica struct {
	sys     *System
	shard   int
	rep     int
	node    *simnet.Node
	st      *store.Store
	lastKey map[string]uint64 // key -> last conflicting txn seen
	txns    map[uint64]*jtxn
	unexec  map[uint64]bool
	// waiters maps an unexecuted dependency to the transactions waiting on
	// it, so a commit only wakes its dependents instead of rescanning the
	// whole graph.
	waiters map[uint64][]uint64
}

// System is a running Janus deployment.
type System struct {
	spec     Spec
	replicas [][]*replica
	coords   []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.GraphCost == 0 {
		spec.GraphCost = 150 * time.Nanosecond
	}
	sys := &System{spec: spec}
	n := 2*spec.F + 1
	sys.replicas = make([][]*replica, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		sys.replicas[s] = make([]*replica, n)
		for r := 0; r < n; r++ {
			node := spec.Net.AddNode(spec.ServerRegion(s, r), nil)
			rp := &replica{sys: sys, shard: s, rep: r, node: node, st: store.New(),
				lastKey: make(map[string]uint64), txns: make(map[uint64]*jtxn),
				unexec: make(map[uint64]bool), waiters: make(map[uint64][]uint64)}
			if spec.Seed != nil {
				spec.Seed(s, rp.st)
			}
			node.SetHandler(rp.handle)
			sys.replicas[s][r] = rp
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// Start is a no-op.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a replica store (tests).
func (sys *System) Store(shard, rep int) *store.Store { return sys.replicas[shard][rep].st }

func (sys *System) superQuorum() int { return 1 + sys.spec.F + (sys.spec.F+1)/2 }

// ---- replica ----

func (rp *replica) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case preaccept:
		rp.onPreaccept(m)
	case acceptMsg:
		rp.onAccept(m)
	case commitMsg:
		rp.onCommit(m)
	}
}

// onPreaccept records the transaction and returns its direct dependencies:
// the last conflicting transaction seen on each accessed key.
func (rp *replica) onPreaccept(m preaccept) {
	id := tid(m.T.ID)
	piece := m.T.Pieces[rp.shard]
	depSet := make(map[uint64]bool)
	for _, k := range append(append([]string(nil), piece.ReadSet...), piece.WriteSet...) {
		if d, ok := rp.lastKey[k]; ok && d != id {
			depSet[d] = true
		}
		rp.lastKey[k] = id
	}
	deps := make([]uint64, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	if rp.txns[id] == nil {
		rp.txns[id] = &jtxn{t: m.T, deps: deps, coord: m.Coord}
	}
	rp.node.Work(rp.sys.spec.GraphCost * time.Duration(1+len(deps)))
	rp.node.Send(m.Coord, preacceptRep{Shard: rp.shard, Replica: rp.rep, ID: m.T.ID, Deps: deps})
}

func (rp *replica) onAccept(m acceptMsg) {
	id := tid(m.ID)
	if jt := rp.txns[id]; jt != nil {
		jt.deps = m.Deps
	}
	rp.node.Send(m.Coord, acceptRep{Shard: rp.shard, Replica: rp.rep, ID: m.ID})
}

// onCommit finalizes the dependencies and triggers execution once every
// local dependency has executed. Dependents are woken through the waiter
// index; conflict cycles are resolved by Tarjan SCC over the committed
// closure — the expensive graph work the paper contrasts with Tiga's
// timestamps.
func (rp *replica) onCommit(m commitMsg) {
	id := tid(m.ID)
	jt := rp.txns[id]
	if jt == nil {
		jt = &jtxn{t: m.T, coord: m.Coord}
		rp.txns[id] = jt
	}
	if jt.committed {
		return
	}
	jt.committed = true
	jt.coord = m.Coord
	jt.deps = m.Deps
	rp.unexec[id] = true
	rp.node.Work(rp.sys.spec.GraphCost * time.Duration(1+len(jt.deps)))
	for _, d := range jt.deps {
		dt := rp.txns[d]
		if dt == nil || dt.executed {
			continue // foreign or already-executed dependency
		}
		jt.pending++
		rp.waiters[d] = append(rp.waiters[d], id)
	}
	if jt.pending == 0 {
		rp.execute(id)
		return
	}
	rp.maybeResolveCycle(id)
}

// maybeResolveCycle runs when a committed transaction is blocked: if every
// transitively reachable unexecuted dependency is itself committed, the
// blockage is a conflict cycle; resolve it deterministically via SCC.
func (rp *replica) maybeResolveCycle(start uint64) {
	// Collect the committed closure reachable from start.
	closure := map[uint64]bool{start: true}
	stack := []uint64{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range rp.txns[id].deps {
			dt := rp.txns[d]
			if dt == nil || dt.executed || closure[d] {
				continue
			}
			if !dt.committed {
				return // genuinely waiting on an uncommitted dependency
			}
			closure[d] = true
			stack = append(stack, d)
		}
	}
	g := graph.New()
	for id := range closure {
		g.AddNode(id)
		for _, d := range rp.txns[id].deps {
			if closure[d] {
				g.AddEdge(id, d)
			}
		}
	}
	rp.node.Work(rp.sys.spec.GraphCost * time.Duration(g.Len()+g.Edges()))
	for _, comp := range g.SCC() {
		ok := true
		for _, id := range comp {
			for _, d := range rp.txns[id].deps {
				dt := rp.txns[d]
				if dt != nil && !dt.executed && !inComp(comp, d) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			return // an earlier component is still blocked
		}
		for _, id := range comp {
			if !rp.txns[id].executed {
				rp.execute(id)
			}
		}
	}
}

func inComp(comp []uint64, id uint64) bool {
	for _, c := range comp {
		if c == id {
			return true
		}
	}
	return false
}

func (rp *replica) execute(id uint64) {
	jt := rp.txns[id]
	if jt.executed {
		return
	}
	jt.executed = true
	delete(rp.unexec, id)
	rp.node.Work(rp.sys.spec.ExecCost)
	ret := rp.st.Execute(jt.t.ID, txn.Timestamp{Time: time.Duration(id)}, jt.t.Pieces[rp.shard])
	rp.st.Commit(jt.t.ID)
	if rp.rep == 0 { // the shard leader reports the execution result
		rp.node.Send(jt.coord, execResult{Shard: rp.shard, ID: jt.t.ID, Ret: ret})
	}
	// Wake dependents.
	ws := rp.waiters[id]
	delete(rp.waiters, id)
	for _, w := range ws {
		wt := rp.txns[w]
		wt.pending--
		if wt.pending == 0 && wt.committed && !wt.executed {
			rp.execute(w)
		}
	}
}

// ---- coordinator ----

type pending struct {
	t        *txn.Txn
	done     func(txn.Result)
	votes    map[int]map[int]preacceptRep
	accepts  map[int]map[int]bool
	results  map[int][]byte
	deps     []uint64
	phase    int // 0 preaccept, 1 accept, 2 commit
	fastPath bool
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pending
}

// Submit runs Janus's pre-accept/accept/commit protocol for t.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := &pending{t: t, done: done, fastPath: !sys.spec.NoFastPath,
		votes:   make(map[int]map[int]preacceptRep),
		accepts: make(map[int]map[int]bool),
		results: make(map[int][]byte)}
	co.pending[t.ID] = p
	m := preaccept{T: t, Coord: co.node.ID()}
	for _, sh := range t.Shards() {
		for r := 0; r < 2*sys.spec.F+1; r++ {
			co.node.Send(sys.replicas[sh][r].node.ID(), m)
		}
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case preacceptRep:
		co.onPreacceptRep(m)
	case acceptRep:
		co.onAcceptRep(m)
	case execResult:
		co.onResult(m)
	}
}

func (co *coordinator) onPreacceptRep(m preacceptRep) {
	p := co.pending[m.ID]
	if p == nil || p.phase != 0 {
		return
	}
	byRep := p.votes[m.Shard]
	if byRep == nil {
		byRep = make(map[int]preacceptRep)
		p.votes[m.Shard] = byRep
	}
	byRep[m.Replica] = m
	// Per shard: fast if a super quorum reports identical deps.
	n := 2*co.sys.spec.F + 1
	sq := co.sys.superQuorum()
	union := make(map[uint64]bool)
	for _, sh := range p.t.Shards() {
		votes := p.votes[sh]
		if len(votes) < sq {
			return
		}
		counts := make(map[string]int)
		fastQuorum := false
		for _, v := range votes {
			k := depsKey(v.Deps)
			counts[k]++
			if counts[k] >= sq {
				// A super quorum reported identical dependencies — including
				// the legitimate EMPTY dependency list, whose key is "". (An
				// earlier version used a `bestKey == ""` sentinel here, which
				// collided with that empty-deps key: dependency-free
				// transactions always paid the accept round, +1 WRTT.)
				fastQuorum = true
			}
		}
		if !fastQuorum {
			if len(votes) < n {
				return // more votes may still form a fast quorum
			}
			p.fastPath = false
		}
		for _, v := range votes {
			for _, d := range v.Deps {
				union[d] = true
			}
		}
	}
	p.deps = sortedDeps(union)
	if p.fastPath {
		co.commit(p)
		return
	}
	// Accept round with the union dependencies.
	p.phase = 1
	am := acceptMsg{ID: p.t.ID, Deps: p.deps, Coord: co.node.ID()}
	for _, sh := range p.t.Shards() {
		for r := 0; r < n; r++ {
			co.node.Send(co.sys.replicas[sh][r].node.ID(), am)
		}
	}
}

func (co *coordinator) onAcceptRep(m acceptRep) {
	p := co.pending[m.ID]
	if p == nil || p.phase != 1 {
		return
	}
	byRep := p.accepts[m.Shard]
	if byRep == nil {
		byRep = make(map[int]bool)
		p.accepts[m.Shard] = byRep
	}
	byRep[m.Replica] = true
	for _, sh := range p.t.Shards() {
		if len(p.accepts[sh]) < co.sys.spec.F+1 {
			return
		}
	}
	co.commit(p)
}

func (co *coordinator) commit(p *pending) {
	p.phase = 2
	m := commitMsg{ID: p.t.ID, T: p.t, Deps: p.deps, Coord: co.node.ID()}
	for _, sh := range p.t.Shards() {
		for r := 0; r < 2*co.sys.spec.F+1; r++ {
			co.node.Send(co.sys.replicas[sh][r].node.ID(), m)
		}
	}
}

func (co *coordinator) onResult(m execResult) {
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.results[m.Shard] = m.Ret
	if len(p.results) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	p.done(txn.Result{OK: true, FastPath: p.fastPath, PerShard: p.results})
}

func depsKey(deps []uint64) string {
	b := make([]byte, 0, len(deps)*8)
	for _, d := range deps {
		for i := 0; i < 8; i++ {
			b = append(b, byte(d>>(8*i)))
		}
	}
	return string(b)
}

func sortedDeps(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
