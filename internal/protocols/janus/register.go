package janus

import "tiga/internal/protocol"

// Janus tracks dependencies and runs SCC-based deterministic execution; the
// Aux component charges per graph node visited.
func init() {
	protocol.Register("Janus", protocol.CostProfile{Exec: 5, Aux: 3, Rank: 40},
		protocol.Schema{
			{Name: "fast-path", Type: protocol.KnobBool, Default: true,
				Doc: "commit on identical super-quorum dependencies in 2 WRTTs; false forces the accept round (3 WRTTs)"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
				ServerRegion: ctx.ServerRegion, CoordRegions: ctx.CoordRegions,
				Seed: ctx.SeedStore, ExecCost: ctx.ExecCost, GraphCost: ctx.AuxCost,
				NoFastPath: !ctx.Knobs.Bool("fast-path"),
			})
		})
}
