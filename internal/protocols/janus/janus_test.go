package janus

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, seed int64) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		Shards: 2, F: 1, Net: net,
		ServerRegion: func(_, r int) simnet.Region { return simnet.Region(r) },
		CoordRegions: []simnet.Region{0},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("j%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	return sim, sys
}

func hotTxn() *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece("j0-0"),
		1: txn.IncrementPiece("j1-0"),
	}}
}

// TestAbortFree: Janus never aborts — every submitted transaction commits,
// even a burst of fully conflicting ones (they serialize via dependencies).
func TestAbortFree(t *testing.T) {
	sim, sys := build(t, 1)
	const n = 20
	committed, fast := 0, 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i)*time.Millisecond, func() {
			sys.Submit(0, hotTxn(), func(r txn.Result) {
				if r.OK {
					committed++
					if r.FastPath {
						fast++
					}
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d — Janus must be abort-free", committed, n)
	}
	// Conflicting concurrent transactions produce divergent dependency sets
	// at some replicas, so not everything can ride the fast path.
	if fast == n {
		t.Log("note: all conflicting txns took the fast path (arrival orders happened to agree)")
	}
	// All effects applied exactly once, in a consistent order.
	if got := txn.DecodeInt(sys.Store(0, 0).Get("j0-0")); got != n {
		t.Fatalf("j0-0 = %d, want %d", got, n)
	}
}

// TestTwoWRTTLatency: an uncontended commit costs pre-accept (1 WRTT) +
// commit/execute + result (≥0.5 WRTT), measured from the SC coordinator.
func TestTwoWRTTLatency(t *testing.T) {
	sim, sys := build(t, 2)
	var lat time.Duration
	sim.At(50*time.Millisecond, func() {
		s := sim.Now()
		tx := &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("j0-1"),
			1: txn.IncrementPiece("j1-1"),
		}}
		sys.Submit(0, tx, func(r txn.Result) { lat = sim.Now() - s })
	})
	sim.Run(3 * time.Second)
	// Pre-accept to all replicas (farthest Brazil, 124 ms RTT) + commit
	// 0.5 + leader result 0.5 (leader co-located with the coordinator).
	if lat < 120*time.Millisecond || lat > 300*time.Millisecond {
		t.Fatalf("latency %v, want ~1.5–2 WRTTs", lat)
	}
}

// TestEmptyDepsFastPath is the fast-quorum sentinel regression: a
// dependency-free transaction (fresh keys, no prior conflicts) gathers a
// super quorum of identical EMPTY dependency lists, whose deps-key is "" —
// the same value the old code used as its "no fast quorum" sentinel. It must
// commit on the 2-WRTT fast path, not pay the accept round.
func TestEmptyDepsFastPath(t *testing.T) {
	sim, sys := build(t, 4)
	var res txn.Result
	var lat time.Duration
	sim.At(50*time.Millisecond, func() {
		s := sim.Now()
		tx := &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("j0-7"),
			1: txn.IncrementPiece("j1-7"),
		}}
		sys.Submit(0, tx, func(r txn.Result) { res, lat = r, sim.Now()-s })
	})
	sim.Run(3 * time.Second)
	if !res.OK {
		t.Fatal("dependency-free transaction did not commit")
	}
	if !res.FastPath {
		t.Fatalf("dependency-free transaction missed the fast path (latency %v)", lat)
	}
	// Fast path: pre-accept (farthest replica Brazil, ~124 ms RTT) + commit
	// 0.5 + co-located leader result 0.5 ≈ 190 ms. The accept round would
	// add another full WRTT (~124 ms) on top.
	if lat > 250*time.Millisecond {
		t.Fatalf("fast-path latency %v looks like it paid the accept round", lat)
	}
}

// TestReplicasExecuteIdentically: every replica's store converges despite
// concurrent conflicts — the deterministic SCC order is replica-independent.
func TestReplicasExecuteIdentically(t *testing.T) {
	sim, sys := build(t, 3)
	const n = 15
	done := 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i*2)*time.Millisecond, func() {
			sys.Submit(0, hotTxn(), func(r txn.Result) {
				if r.OK {
					done++
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if done != n {
		t.Fatalf("committed %d of %d", done, n)
	}
	for sh := 0; sh < 2; sh++ {
		lead := sys.Store(sh, 0)
		for rep := 1; rep < 3; rep++ {
			if !lead.Equal(sys.Store(sh, rep)) {
				t.Fatalf("shard %d replica %d diverged", sh, rep)
			}
		}
	}
}
