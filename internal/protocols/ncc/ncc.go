// Package ncc implements the NCC baseline (Lu et al., OSDI 2023): Natural
// Concurrency Control for strictly serializable single-region datastores.
// Servers execute transactions in arrival order; Response Time Control (RTC)
// guarantees strict serializability by holding a transaction's response until
// the previous conflicting transaction's commit notification arrives —
// artificially creating a ~1 WRTT gap between conflicting transactions.
//
// Per the paper's setup (§5.1), NCC's servers all live in one region (South
// Carolina) without replication; NCC+ places NCC on top of a Paxos layer
// replicated across three regions for fault tolerance, which degrades it
// further (§5.2). RTC's queueing delay is what limits NCC's throughput under
// load and contention.
package ncc

import (
	"time"

	"tiga/internal/paxos"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards     int
	F          int  // used only when Replicated (NCC+)
	Replicated bool // NCC+ = NCC atop Paxos
	Net        *simnet.Network
	HomeRegion simnet.Region // region hosting the servers
	// HomeRegionOf overrides HomeRegion per shard (the §5.5 rotation, which
	// spreads NCC's servers across regions).
	HomeRegionOf func(shard int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	// NoRTC disables Response Time Control gating (the "rtc" knob, inverted
	// so the zero value keeps NCC's strict-serializability mechanism):
	// replies go out as soon as execution (and replication, for NCC+)
	// finishes, without waiting for conflicting predecessors to commit.
	NoRTC bool
}

type execReq struct {
	T     *txn.Txn
	Coord simnet.NodeID
}

type execRep struct {
	Shard int
	ID    txn.ID
	Ret   []byte
}

type commitNote struct{ ID txn.ID }

type pendingSrv struct {
	t     *txn.Txn
	coord simnet.NodeID
	ret   []byte
	// Gating state for RTC + (optionally) replication.
	waitingOn  int  // conflicting predecessors not yet committed
	replicated bool // Paxos slot committed (always true for plain NCC)
	sent       bool
	committed  bool
	waiters    []txn.ID // successors gated on our commit note
}

// server executes one shard's transactions in arrival order with RTC.
type server struct {
	sys     *System
	shard   int
	node    *simnet.Node
	st      *store.Store
	lastKey map[string]txn.ID // key -> last conflicting uncommitted txn
	pending map[txn.ID]*pendingSrv
	pax     *paxos.Replica
	onSlot  map[int]txn.ID
}

// System is a running NCC or NCC+ deployment.
type System struct {
	spec    Spec
	servers []*server
	coords  []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	sys := &System{spec: spec}
	n := 1
	if spec.Replicated {
		n = 2*spec.F + 1
	}
	for sh := 0; sh < spec.Shards; sh++ {
		var nodes []simnet.NodeID
		home := spec.HomeRegion
		if spec.HomeRegionOf != nil {
			home = spec.HomeRegionOf(sh)
		}
		for r := 0; r < n; r++ {
			reg := home
			if spec.Replicated {
				reg = simnet.Region((int(home) + r) % 3) // replicas across regions
			}
			nodes = append(nodes, spec.Net.AddNode(reg, nil).ID())
		}
		srv := &server{sys: sys, shard: sh, node: spec.Net.Node(nodes[0]),
			st: store.New(), lastKey: make(map[string]txn.ID),
			pending: make(map[txn.ID]*pendingSrv), onSlot: make(map[int]txn.ID)}
		if spec.Seed != nil {
			spec.Seed(sh, srv.st)
		}
		if spec.Replicated {
			srv.pax = paxos.NewReplica("ncc", srv.node, nodes, 0, 0, spec.F)
			srv.pax.OnCommit = srv.onPaxosCommit
			for r := 1; r < n; r++ {
				rep := paxos.NewReplica("ncc", spec.Net.Node(nodes[r]), nodes, r, 0, spec.F)
				node := spec.Net.Node(nodes[r])
				node.SetHandler(func(from simnet.NodeID, msg simnet.Message) { rep.Handle(from, msg) })
			}
		}
		srv.node.SetHandler(srv.handle)
		sys.servers = append(sys.servers, srv)
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// Start is a no-op.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a shard store (tests).
func (sys *System) Store(shard int) *store.Store { return sys.servers[shard].st }

// ---- server ----

func (s *server) handle(from simnet.NodeID, msg simnet.Message) {
	if s.pax != nil && s.pax.Handle(from, msg) {
		return
	}
	switch m := msg.(type) {
	case execReq:
		s.onExec(m)
	case commitNote:
		s.onCommitNote(m)
	}
}

// onExec executes in arrival order and applies RTC gating.
func (s *server) onExec(m execReq) {
	id := m.T.ID
	if _, dup := s.pending[id]; dup {
		return
	}
	piece := m.T.Pieces[s.shard]
	s.node.Work(s.sys.spec.ExecCost)
	p := &pendingSrv{t: m.T, coord: m.Coord, replicated: !s.sys.spec.Replicated}
	s.pending[id] = p
	// RTC: gate on every uncommitted conflicting predecessor.
	if !s.sys.spec.NoRTC {
		keys := append(append([]string(nil), piece.ReadSet...), piece.WriteSet...)
		gated := make(map[txn.ID]bool)
		for _, k := range keys {
			if prev, ok := s.lastKey[k]; ok && prev != id && !gated[prev] {
				if pp := s.pending[prev]; pp != nil && !pp.committed {
					gated[prev] = true
					pp.waiters = append(pp.waiters, id)
					p.waitingOn++
				}
			}
		}
	}
	for _, k := range piece.WriteSet {
		s.lastKey[k] = id
	}
	for _, k := range piece.ReadSet {
		s.lastKey[k] = id
	}
	p.ret = s.st.Execute(id, txn.Timestamp{}, piece)
	s.st.Commit(id)
	if s.pax != nil {
		slot := s.pax.Propose(execReq{T: m.T})
		s.onSlot[slot] = id
	}
	s.maybeReply(p)
}

func (s *server) maybeReply(p *pendingSrv) {
	if p.sent || p.waitingOn > 0 || !p.replicated {
		return
	}
	p.sent = true
	s.node.Send(p.coord, execRep{Shard: s.shard, ID: p.t.ID, Ret: p.ret})
}

func (s *server) onPaxosCommit(slot int, cmd paxos.Command) {
	if id, ok := s.onSlot[slot]; ok {
		delete(s.onSlot, slot)
		if p := s.pending[id]; p != nil {
			p.replicated = true
			s.maybeReply(p)
		}
	}
}

// onCommitNote releases RTC-gated successors.
func (s *server) onCommitNote(m commitNote) {
	p := s.pending[m.ID]
	if p == nil || p.committed {
		return
	}
	p.committed = true
	for _, wid := range p.waiters {
		if wp := s.pending[wid]; wp != nil {
			wp.waitingOn--
			s.maybeReply(wp)
		}
	}
	p.waiters = nil
}

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	results map[int][]byte
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pending
}

// Submit sends t to its shard servers and commits once all reply.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	co.pending[t.ID] = &pending{t: t, done: done, results: make(map[int][]byte)}
	m := execReq{T: t, Coord: co.node.ID()}
	for _, sh := range t.Shards() {
		co.node.Send(sys.servers[sh].node.ID(), m)
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(execRep)
	if !ok {
		return
	}
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.results[m.Shard] = m.Ret
	if len(p.results) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	// Commit: notify servers (releases RTC-gated successors), then reply.
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.servers[sh].node.ID(), commitNote{ID: m.ID})
	}
	p.done(txn.Result{OK: true, PerShard: p.results})
}
