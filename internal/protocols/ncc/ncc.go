// Package ncc implements the NCC baseline (Lu et al., OSDI 2023): Natural
// Concurrency Control for strictly serializable single-region datastores.
// Servers execute transactions in arrival order; Response Time Control (RTC)
// guarantees strict serializability by holding a transaction's response until
// the previous conflicting transaction's commit notification arrives —
// artificially creating a ~1 WRTT gap between conflicting transactions.
//
// Per the paper's setup (§5.1), NCC's servers all live in one region (South
// Carolina) without replication; NCC+ places NCC on top of a Paxos layer
// replicated across three regions for fault tolerance, which degrades it
// further (§5.2). RTC's queueing delay is what limits NCC's throughput under
// load and contention.
package ncc

import (
	"time"

	"tiga/internal/paxos"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards     int
	F          int  // used only when Replicated (NCC+)
	Replicated bool // NCC+ = NCC atop Paxos
	Net        *simnet.Network
	HomeRegion simnet.Region // region hosting the servers
	// HomeRegionOf overrides HomeRegion per shard (the §5.5 rotation, which
	// spreads NCC's servers across regions).
	HomeRegionOf func(shard int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	// NoRTC disables Response Time Control gating (the "rtc" knob, inverted
	// so the zero value keeps NCC's strict-serializability mechanism):
	// replies go out as soon as execution (and replication, for NCC+)
	// finishes, without waiting for conflicting predecessors to commit.
	NoRTC bool
}

type execReq struct {
	T     *txn.Txn
	Coord simnet.NodeID
}

type execRep struct {
	Shard int
	ID    txn.ID
	Ret   []byte
}

type commitNote struct{ ID txn.ID }

// recoverReq asks a surviving NCC+ replica for its Paxos state; recoverRep
// answers. A rebooted server merges the replies (every committed slot is on
// at least one survivor) and adopts them via paxos.InstallLog, re-executing
// the logged transactions to rebuild its store.
type recoverReq struct{}

type recoverRep struct {
	Replica  int
	Log      []paxos.Command
	CommitTo int
}

type pendingSrv struct {
	t     *txn.Txn
	coord simnet.NodeID
	ret   []byte
	// Gating state for RTC + (optionally) replication.
	waitingOn  int  // conflicting predecessors not yet committed
	replicated bool // Paxos slot committed (always true for plain NCC)
	sent       bool
	committed  bool
	waiters    []txn.ID // successors gated on our commit note
}

// server executes one shard's transactions in arrival order with RTC.
type server struct {
	sys     *System
	shard   int
	node    *simnet.Node
	st      *store.Store
	lastKey map[string]txn.ID // key -> last conflicting uncommitted txn
	pending map[txn.ID]*pendingSrv
	pax     *paxos.Replica
	onSlot  map[int]txn.ID
	// recovering gates all processing while a rebooted server is merging
	// survivor logs; recovered collects the replies by replica.
	recovering bool
	recovered  map[int]recoverRep
}

// follower is an NCC+ Paxos group member: it only participates in
// replication and answers recovery snapshot requests.
type follower struct {
	idx  int
	node *simnet.Node
	pax  *paxos.Replica
}

func (f *follower) handle(from simnet.NodeID, msg simnet.Message) {
	if _, ok := msg.(recoverReq); ok {
		log, commitTo := f.pax.Snapshot()
		f.node.Send(from, recoverRep{Replica: f.idx, Log: log, CommitTo: commitTo})
		return
	}
	f.pax.Handle(from, msg)
}

// System is a running NCC or NCC+ deployment.
type System struct {
	spec      Spec
	nodes     [][]simnet.NodeID // [shard][replica]; replica 0 is the server
	servers   []*server
	followers [][]*follower // [shard][replica]; index 0 unused (NCC+ only)
	coords    []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	sys := &System{spec: spec}
	n := 1
	if spec.Replicated {
		n = 2*spec.F + 1
	}
	for sh := 0; sh < spec.Shards; sh++ {
		var nodes []simnet.NodeID
		home := spec.HomeRegion
		if spec.HomeRegionOf != nil {
			home = spec.HomeRegionOf(sh)
		}
		for r := 0; r < n; r++ {
			reg := home
			if spec.Replicated {
				reg = simnet.Region((int(home) + r) % 3) // replicas across regions
			}
			nodes = append(nodes, spec.Net.AddNode(reg, nil).ID())
		}
		sys.nodes = append(sys.nodes, nodes)
		sys.servers = append(sys.servers, newServer(sys, sh))
		fs := make([]*follower, n)
		for r := 1; r < n; r++ {
			f := &follower{idx: r, node: spec.Net.Node(nodes[r]),
				pax: paxos.NewReplica("ncc", spec.Net.Node(nodes[r]), nodes, r, 0, spec.F)}
			f.node.SetHandler(f.handle)
			fs[r] = f
		}
		sys.followers = append(sys.followers, fs)
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// newServer assembles one shard's server on its (already-added) network
// node, with a freshly seeded store and an empty Paxos replica. It is used
// both at construction and to rebuild a crashed server on restart.
func newServer(sys *System, sh int) *server {
	nodes := sys.nodes[sh]
	srv := &server{sys: sys, shard: sh, node: sys.spec.Net.Node(nodes[0]),
		st: store.New(), lastKey: make(map[string]txn.ID),
		pending: make(map[txn.ID]*pendingSrv), onSlot: make(map[int]txn.ID)}
	if sys.spec.Seed != nil {
		sys.spec.Seed(sh, srv.st)
	}
	if sys.spec.Replicated {
		srv.pax = paxos.NewReplica("ncc", srv.node, nodes, 0, 0, sys.spec.F)
		srv.pax.OnCommit = srv.onPaxosCommit
	}
	srv.node.SetHandler(srv.handle)
	return srv
}

// Start is a no-op.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a shard store (tests).
func (sys *System) Store(shard int) *store.Store { return sys.servers[shard].st }

// ServerGrid reports the replica grid (protocol.Faultable): every shard
// exposes the full 2F+1 addresses even under plain NCC, whose unmaterialized
// followers make the extra addresses no-ops.
func (sys *System) ServerGrid() (shards, replicas int) { return sys.spec.Shards, 2*sys.spec.F + 1 }

// KillServer crashes a replica: all queued and future deliveries and timers
// are dropped until RestartServer (protocol.Faultable). Replica 0 is the
// shard's serving node; higher replicas are NCC+ Paxos followers. Replicas
// the deployment does not have (plain NCC runs exactly one per shard) are a
// no-op, so generic fault experiments can enumerate 0..2F on any protocol.
func (sys *System) KillServer(shard, replica int) {
	if replica == 0 {
		sys.servers[shard].node.Crash()
		return
	}
	if replica < 0 || replica >= len(sys.followers[shard]) {
		return
	}
	sys.followers[shard][replica].node.Crash()
}

// RestartServer reboots a crashed replica. A follower resumes with its Paxos
// state intact (only its node was down; lost slots are refilled by the
// leader's retransmission). The serving replica reboots with empty state:
// under NCC+ it re-seeds its store, asks the surviving followers for their
// Paxos logs, and — once every survivor has answered — adopts the merged log
// via paxos.InstallLog, re-executing the committed transactions in slot
// order to rebuild the store (each exactly once; the pre-crash store is
// discarded whole) and re-sending their replies. Plain NCC has no
// replication to recover from: the store reboots seeded-but-empty of every
// pre-crash effect, which is the unreplicated design's documented exposure.
func (sys *System) RestartServer(shard, replica int) {
	if replica != 0 {
		if replica >= 0 && replica < len(sys.followers[shard]) {
			sys.followers[shard][replica].node.Restart()
		}
		return
	}
	old := sys.servers[shard]
	old.node.Restart()
	srv := newServer(sys, shard)
	sys.servers[shard] = srv
	if !sys.spec.Replicated {
		return
	}
	srv.recovering = true
	srv.recovered = make(map[int]recoverRep)
	ask := func() {
		for r, id := range sys.nodes[shard] {
			if r != 0 {
				if _, have := srv.recovered[r]; !have {
					srv.node.Send(id, recoverReq{})
				}
			}
		}
	}
	ask()
	// Re-request until enough survivors answered: a lost recoverReq/Rep (the
	// degraded topologies drop messages) must delay recovery, not wedge the
	// shard forever.
	srv.node.Every(500*time.Millisecond, func() bool {
		if !srv.recovering {
			return false
		}
		ask()
		return true
	})
}

// ---- server ----

func (s *server) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case recoverReq:
		if s.pax != nil {
			log, commitTo := s.pax.Snapshot()
			s.node.Send(from, recoverRep{Replica: 0, Log: log, CommitTo: commitTo})
		}
		return
	case recoverRep:
		s.onRecoverRep(m)
		return
	}
	if s.recovering {
		return // not serving until the survivor logs are merged
	}
	if s.pax != nil && s.pax.Handle(from, msg) {
		return
	}
	switch m := msg.(type) {
	case execReq:
		s.onExec(m)
	case commitNote:
		s.onCommitNote(m)
	}
}

// onRecoverRep collects survivor snapshots; once a quorum of f+1 followers
// has answered, the merged log is installed. Any slot committed before the
// crash gathered f+1 acks — f of them on followers — so every committed
// slot intersects any f+1 of the 2f followers: the merge is gap-free up to
// the true commit point, and InstallLog replays it through onPaxosCommit
// (the recovery path there re-executes each logged transaction against the
// fresh store). Waiting for all 2f would let one crashed follower wedge
// recovery forever; a higher commit point known only to a non-replying
// follower is harmless — those slots are adopted as tail entries and
// re-proposed, and the replay path deduplicates.
func (s *server) onRecoverRep(m recoverRep) {
	if !s.recovering {
		return
	}
	s.recovered[m.Replica] = m
	if len(s.recovered) < s.sys.spec.F+1 {
		return
	}
	var merged []paxos.Command
	commitTo := 0
	for r := 1; r < len(s.sys.nodes[s.shard]); r++ {
		rep, ok := s.recovered[r]
		if !ok {
			continue
		}
		if rep.CommitTo > commitTo {
			commitTo = rep.CommitTo
		}
		for i, c := range rep.Log {
			if i >= len(merged) {
				merged = append(merged, c)
			} else if merged[i] == nil {
				merged[i] = c
			}
		}
	}
	s.recovering = false
	s.recovered = nil
	s.pax.InstallLog(merged, commitTo)
}

// onExec executes in arrival order and applies RTC gating.
func (s *server) onExec(m execReq) {
	id := m.T.ID
	if _, dup := s.pending[id]; dup {
		return
	}
	piece := m.T.Pieces[s.shard]
	s.node.Work(s.sys.spec.ExecCost)
	p := &pendingSrv{t: m.T, coord: m.Coord, replicated: !s.sys.spec.Replicated}
	s.pending[id] = p
	// RTC: gate on every uncommitted conflicting predecessor.
	if !s.sys.spec.NoRTC {
		keys := append(append([]string(nil), piece.ReadSet...), piece.WriteSet...)
		gated := make(map[txn.ID]bool)
		for _, k := range keys {
			if prev, ok := s.lastKey[k]; ok && prev != id && !gated[prev] {
				if pp := s.pending[prev]; pp != nil && !pp.committed {
					gated[prev] = true
					pp.waiters = append(pp.waiters, id)
					p.waitingOn++
				}
			}
		}
	}
	for _, k := range piece.WriteSet {
		s.lastKey[k] = id
	}
	for _, k := range piece.ReadSet {
		s.lastKey[k] = id
	}
	p.ret = s.st.Execute(id, txn.Timestamp{}, piece)
	s.st.Commit(id)
	if s.pax != nil {
		// The replicated command carries the coordinator so a rebooted
		// server can re-answer replayed slots during recovery.
		slot := s.pax.Propose(execReq{T: m.T, Coord: m.Coord})
		s.onSlot[slot] = id
	}
	s.maybeReply(p)
}

func (s *server) maybeReply(p *pendingSrv) {
	if p.sent || p.waitingOn > 0 || !p.replicated {
		return
	}
	p.sent = true
	s.node.Send(p.coord, execRep{Shard: s.shard, ID: p.t.ID, Ret: p.ret})
}

func (s *server) onPaxosCommit(slot int, cmd paxos.Command) {
	if id, ok := s.onSlot[slot]; ok {
		delete(s.onSlot, slot)
		if p := s.pending[id]; p != nil {
			p.replicated = true
			s.maybeReply(p)
		}
		return
	}
	// A slot this server did not propose in its current life: recovery
	// replay (InstallLog replaying the merged survivor log, or a recovered
	// tail slot committing later). Re-execute the logged transaction against
	// the fresh store — the pre-crash store was discarded whole, so each
	// logged slot applies exactly once — and re-send the reply; a
	// coordinator that already completed ignores it. The entry is recorded
	// as committed so RTC gates new transactions correctly and duplicate
	// commit notes stay idempotent.
	m := cmd.(execReq)
	id := m.T.ID
	if _, dup := s.pending[id]; dup {
		return
	}
	piece := m.T.Pieces[s.shard]
	s.node.Work(s.sys.spec.ExecCost)
	ret := s.st.Execute(id, txn.Timestamp{}, piece)
	s.st.Commit(id)
	s.pending[id] = &pendingSrv{t: m.T, coord: m.Coord, ret: ret,
		replicated: true, sent: true, committed: true}
	for _, k := range piece.WriteSet {
		s.lastKey[k] = id
	}
	for _, k := range piece.ReadSet {
		s.lastKey[k] = id
	}
	s.node.Send(m.Coord, execRep{Shard: s.shard, ID: id, Ret: ret})
}

// onCommitNote releases RTC-gated successors.
func (s *server) onCommitNote(m commitNote) {
	p := s.pending[m.ID]
	if p == nil || p.committed {
		return
	}
	p.committed = true
	for _, wid := range p.waiters {
		if wp := s.pending[wid]; wp != nil {
			wp.waitingOn--
			s.maybeReply(wp)
		}
	}
	p.waiters = nil
}

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	results map[int][]byte
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pending
}

// Submit sends t to its shard servers and commits once all reply.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	co.pending[t.ID] = &pending{t: t, done: done, results: make(map[int][]byte)}
	m := execReq{T: t, Coord: co.node.ID()}
	for _, sh := range t.Shards() {
		co.node.Send(sys.servers[sh].node.ID(), m)
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(execRep)
	if !ok {
		return
	}
	p := co.pending[m.ID]
	if p == nil {
		return
	}
	p.results[m.Shard] = m.Ret
	if len(p.results) < len(p.t.Pieces) {
		return
	}
	delete(co.pending, m.ID)
	// Commit: notify servers (releases RTC-gated successors), then reply.
	for _, sh := range p.t.Shards() {
		co.node.Send(co.sys.servers[sh].node.ID(), commitNote{ID: m.ID})
	}
	p.done(txn.Result{OK: true, PerShard: p.results})
}
