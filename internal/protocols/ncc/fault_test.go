package ncc

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

const faultKeys = 20

// TestNCCPlusLeaderCrashRecovery exercises the protocol.Faultable path for
// NCC+: the shard-0 serving replica is crashed mid-run and rebooted later,
// rebuilding its store from the surviving Paxos followers' logs
// (Snapshot/InstallLog — the same recovery path the lockocc baselines use).
//
// NCC coordinators have no retry timer, so requests swallowed by the outage
// hang by design; the test therefore drives load in three phases — before
// the crash, during the outage, after recovery — and pins:
//   - progress on both sides of the outage (shard 1 stays up throughout),
//   - exactly-once effects: every committed increment is applied exactly
//     once on the rebuilt store (the replayed log covers all pre-crash
//     commits; outage-phase requests to the dead node were dropped whole),
//   - hung outage-phase transactions never produce effects or results.
func TestNCCPlusLeaderCrashRecovery(t *testing.T) {
	sim := simnet.NewSim(23)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0))
	sys := New(Spec{
		Shards: 2, F: 1, Replicated: true, Net: net,
		HomeRegion:   simnet.RegionSouthCarolina,
		CoordRegions: []simnet.Region{simnet.RegionSouthCarolina},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < faultKeys; i++ {
				st.Seed(fmt.Sprintf("n%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()

	killAt := 2 * time.Second
	restartAt := 3500 * time.Millisecond
	sim.At(killAt, func() { sys.KillServer(0, 0) })
	sim.At(restartAt, func() { sys.RestartServer(0, 0) })

	type phase int
	const (
		pre phase = iota
		outage
		post
	)
	phaseOf := func(at time.Duration) phase {
		switch {
		case at < killAt:
			return pre
		case at < restartAt:
			return outage
		default:
			return post
		}
	}
	committed := make(map[phase]int)
	perKey := make([]int64, faultKeys) // shard-0 committed increments
	var submitted, finished int
	submit := func(at time.Duration, shard, key int) {
		submitted++
		sim.At(at, func() {
			ph := phaseOf(sim.Now())
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{
				shard: txn.IncrementPiece(fmt.Sprintf("n%d-%d", shard, key)),
			}}
			sys.Submit(0, tx, func(r txn.Result) {
				finished++
				if !r.OK {
					t.Errorf("NCC aborted a transaction (phase %d)", ph)
					return
				}
				committed[phaseOf(at)]++
				if shard == 0 {
					perKey[key]++
				}
			})
		})
	}
	// Phase 1: both shards, fully drained before the crash (RTT << gaps).
	for i := 0; i < 40; i++ {
		submit(time.Duration(50+i*25)*time.Millisecond, i%2, i%faultKeys)
	}
	// Phase 2 (outage): shard-0 requests are dropped at the dead node and
	// hang forever; shard-1 keeps committing.
	for i := 0; i < 20; i++ {
		submit(killAt+time.Duration(100+i*50)*time.Millisecond, i%2, i%faultKeys)
	}
	// Phase 3: after the reboot + recovery settle.
	for i := 0; i < 40; i++ {
		submit(restartAt+time.Duration(500+i*25)*time.Millisecond, i%2, i%faultKeys)
	}
	sim.Run(15 * time.Second)

	if committed[pre] == 0 {
		t.Fatal("no commits before the crash")
	}
	if committed[post] == 0 {
		t.Fatal("no commits after the reboot: recovery did not restore service")
	}
	// Outage-phase shard-0 requests hang (no coordinator retry in NCC);
	// shard-1's half still commits.
	hung := submitted - finished
	if hung == 0 {
		t.Fatal("expected outage-phase shard-0 transactions to hang (dropped at the dead node)")
	}
	if hung > 10 {
		t.Fatalf("%d transactions hung; only the 10 outage-phase shard-0 requests should", hung)
	}
	t.Logf("pre=%d outage=%d post=%d hung=%d", committed[pre], committed[outage], committed[post], hung)

	// Exactly-once effects on the rebuilt store: every committed shard-0
	// increment applied once — the replayed survivor log restored the
	// pre-crash commits, and nothing applied twice through the
	// replay + re-reply path.
	for k := 0; k < faultKeys; k++ {
		got := txn.DecodeInt(sys.Store(0).Get(fmt.Sprintf("n0-%d", k)))
		if got != perKey[k] {
			t.Fatalf("n0-%d = %d, want %d (lost or double-applied writes across recovery)", k, got, perKey[k])
		}
	}
}

// TestNCCPlusRecoveryRetriesUnreachableSurvivor pins the recovery
// re-request loop: the rebooting server's first recoverReq to a
// still-crashed follower is dropped, so recovery must stall — not wedge —
// until the follower returns and a retried request reaches it.
func TestNCCPlusRecoveryRetriesUnreachableSurvivor(t *testing.T) {
	sim := simnet.NewSim(31)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0))
	sys := New(Spec{
		Shards: 1, F: 1, Replicated: true, Net: net,
		HomeRegion:   simnet.RegionSouthCarolina,
		CoordRegions: []simnet.Region{simnet.RegionSouthCarolina},
		Seed: func(shard int, st *store.Store) {
			st.Seed("k", txn.EncodeInt(0))
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	preCommits := 0
	for i := 0; i < 10; i++ {
		sim.At(time.Duration(100+i*50)*time.Millisecond, func() {
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{0: txn.IncrementPiece("k")}}
			sys.Submit(0, tx, func(r txn.Result) {
				if r.OK {
					preCommits++
				}
			})
		})
	}
	// Crash a follower, then the leader; reboot the leader while the
	// follower is still down (its recoverReq is dropped), and bring the
	// follower back 2 s later — several re-request intervals after.
	sim.At(time.Second, func() { sys.KillServer(0, 1) })
	sim.At(1500*time.Millisecond, func() { sys.KillServer(0, 0) })
	sim.At(2*time.Second, func() { sys.RestartServer(0, 0) })
	sim.At(4*time.Second, func() { sys.RestartServer(0, 1) })
	postCommits := 0
	for i := 0; i < 10; i++ {
		sim.At(5*time.Second+time.Duration(i*50)*time.Millisecond, func() {
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{0: txn.IncrementPiece("k")}}
			sys.Submit(0, tx, func(r txn.Result) {
				if r.OK {
					postCommits++
				}
			})
		})
	}
	sim.Run(15 * time.Second)
	if preCommits != 10 {
		t.Fatalf("pre-crash commits = %d, want 10", preCommits)
	}
	if postCommits != 10 {
		t.Fatalf("post-recovery commits = %d, want 10 — recovery wedged on the initially unreachable survivor", postCommits)
	}
	if got := txn.DecodeInt(sys.Store(0).Get("k")); got != int64(preCommits+postCommits) {
		t.Fatalf("k = %d, want %d (lost or double-applied writes across the double fault)", got, preCommits+postCommits)
	}
}

// TestNCCPlusFollowerCrash: losing one follower of three leaves a Paxos
// majority, so replication (and thus replies) keep flowing; the follower
// resumes after a restart.
func TestNCCPlusFollowerCrash(t *testing.T) {
	sim := simnet.NewSim(29)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0))
	sys := New(Spec{
		Shards: 1, F: 1, Replicated: true, Net: net,
		HomeRegion:   simnet.RegionSouthCarolina,
		CoordRegions: []simnet.Region{simnet.RegionSouthCarolina},
		Seed: func(shard int, st *store.Store) {
			st.Seed("k", txn.EncodeInt(0))
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	sim.At(time.Second, func() { sys.KillServer(0, 1) })
	sim.At(3*time.Second, func() { sys.RestartServer(0, 1) })
	committed := 0
	for i := 0; i < 30; i++ {
		sim.At(time.Duration(200+i*150)*time.Millisecond, func() {
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{0: txn.IncrementPiece("k")}}
			sys.Submit(0, tx, func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if committed != 30 {
		t.Fatalf("committed %d of 30 with one follower down (majority held)", committed)
	}
}
