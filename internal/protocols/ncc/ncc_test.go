package ncc

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, replicated bool, seed int64) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		Shards: 2, F: 1, Replicated: replicated, Net: net,
		HomeRegion:   simnet.RegionSouthCarolina,
		CoordRegions: []simnet.Region{0, simnet.RegionHongKong},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("n%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	return sim, sys
}

func tx(i int) *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece(fmt.Sprintf("n0-%d", i)),
		1: txn.IncrementPiece(fmt.Sprintf("n1-%d", i)),
	}}
}

func TestCommits(t *testing.T) {
	for _, repl := range []bool{false, true} {
		repl := repl
		name := "NCC"
		if repl {
			name = "NCC+"
		}
		t.Run(name, func(t *testing.T) {
			sim, sys := build(t, repl, 1)
			committed := 0
			for i := 0; i < 8; i++ {
				i := i
				sim.At(time.Duration(50+i*30)*time.Millisecond, func() {
					sys.Submit(i%2, tx(i), func(r txn.Result) {
						if r.OK {
							committed++
						}
					})
				})
			}
			sim.Run(5 * time.Second)
			if committed != 8 {
				t.Fatalf("committed %d of 8", committed)
			}
		})
	}
}

// TestRTCGatesConflicts: a conflicting successor's reply is held until the
// predecessor's commit notification arrives, creating the ~1 WRTT gap
// between conflicting transactions (§5.2's NCC analysis).
func TestRTCGatesConflicts(t *testing.T) {
	sim, sys := build(t, false, 2)
	hot := func() *txn.Txn {
		return &txn.Txn{Pieces: map[int]*txn.Piece{0: txn.IncrementPiece("n0-0")}}
	}
	var lat1, lat2 time.Duration
	// Both from the Hong Kong coordinator (index 1): server round trip is
	// ~200 ms. The second transaction conflicts and is submitted right
	// behind the first, so its reply waits for the first's commit note.
	sim.At(50*time.Millisecond, func() {
		s := sim.Now()
		sys.Submit(1, hot(), func(r txn.Result) { lat1 = sim.Now() - s })
	})
	sim.At(51*time.Millisecond, func() {
		s := sim.Now()
		sys.Submit(1, hot(), func(r txn.Result) { lat2 = sim.Now() - s })
	})
	sim.Run(3 * time.Second)
	if lat1 == 0 || lat2 == 0 {
		t.Fatal("transactions did not commit")
	}
	// lat2 ≈ lat1 + ~1 WRTT (the RTC gap: commit note must travel back).
	if lat2 < lat1+80*time.Millisecond {
		t.Fatalf("RTC gap missing: lat1=%v lat2=%v", lat1, lat2)
	}
	// Non-conflicting transactions are NOT gated.
	var lat3, lat4 time.Duration
	sim.At(2100*time.Millisecond, func() {
		s := sim.Now()
		sys.Submit(1, tx(3), func(r txn.Result) { lat3 = sim.Now() - s })
	})
	sim.At(2101*time.Millisecond, func() {
		s := sim.Now()
		sys.Submit(1, tx(4), func(r txn.Result) { lat4 = sim.Now() - s })
	})
	sim.Run(5 * time.Second)
	if lat4 > lat3+50*time.Millisecond {
		t.Fatalf("non-conflicting transactions gated: lat3=%v lat4=%v", lat3, lat4)
	}
}

// TestNCCPlusPaysReplication: NCC+ replies only after Paxos replication, so
// its latency strictly exceeds plain NCC's from the same coordinator.
func TestNCCPlusPaysReplication(t *testing.T) {
	lat := func(repl bool) time.Duration {
		sim, sys := build(t, repl, 3)
		var l time.Duration
		sim.At(50*time.Millisecond, func() {
			s := sim.Now()
			sys.Submit(0, tx(0), func(r txn.Result) { l = sim.Now() - s })
		})
		sim.Run(3 * time.Second)
		return l
	}
	plain, plus := lat(false), lat(true)
	if plain == 0 || plus == 0 {
		t.Fatal("no commits")
	}
	if plus < plain+80*time.Millisecond {
		t.Fatalf("NCC+ (%v) should pay ~1 WRTT over NCC (%v)", plus, plain)
	}
}
