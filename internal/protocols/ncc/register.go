package ncc

import (
	"tiga/internal/protocol"
	"tiga/internal/simnet"
)

// NCC serves every shard from a single home region (South Carolina); NCC+
// adds Paxos replication on top. Under the §5.5 rotation the homes spread
// across regions instead.
func init() {
	register("NCC", false, protocol.CostProfile{Exec: 13, Rank: 60})
	register("NCC+", true, protocol.CostProfile{Exec: 13, Rank: 70})
}

// NCC+ supports server crash/reboot recovery through its Paxos layer
// (Snapshot/InstallLog, the same path the lockocc baselines use): the
// rebooted server rebuilds its store by re-executing the merged survivor
// log. Plain NCC accepts the fault hooks too, but with nothing replicated a
// reboot loses every pre-crash effect — the unreplicated design's exposure,
// not a recovery.
var _ protocol.Faultable = (*System)(nil)

func register(name string, replicated bool, cost protocol.CostProfile) {
	protocol.Register(name, cost,
		protocol.Schema{
			{Name: "rtc", Type: protocol.KnobBool, Default: true,
				Doc: "Response Time Control gating (the strict-serializability mechanism); false replies immediately — an ablation of RTC's queueing cost"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			s := Spec{
				Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
				HomeRegion: simnet.RegionSouthCarolina, CoordRegions: ctx.CoordRegions,
				Seed: ctx.SeedStore, ExecCost: ctx.ExecCost,
				Replicated: replicated,
				NoRTC:      !ctx.Knobs.Bool("rtc"),
			}
			if ctx.Rotated {
				regions := ctx.Regions
				s.HomeRegionOf = func(shard int) simnet.Region { return simnet.Region(shard % regions) }
			}
			return New(s)
		})
}
