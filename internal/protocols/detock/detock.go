// Package detock implements the Detock baseline (Nguyen et al., SIGMOD 2023):
// data items have per-region home directories; each home region orders the
// transactions touching its data in a local log; multi-home transactions
// exchange ordering information between their home regions and are ordered by
// deterministic deadlock resolution over the dependency graph. Per the
// paper's setup (§5.1), geo-replication at commit is synchronous (so region
// failures are tolerated) and home directories are spread evenly across
// regions.
//
// Costs: dependency collection across home regions (0.5–1 WRTT), graph-based
// cycle resolution (CPU), and synchronous replication (1 WRTT) — 2.5+ WRTTs
// for multi-home transactions.
package detock

import (
	"sort"
	"time"

	"tiga/internal/graph"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards       int
	Regions      int
	Net          *simnet.Network
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	GraphCost    time.Duration
	// Home maps a shard to its home region (default: shard % regions).
	Home func(shard int) int
	// DDRScan caps the pending transactions examined per arrival when
	// building the deadlock-resolution conflict graph (default 256), so
	// saturated queues do not turn per-arrival ordering into quadratic work.
	DDRScan int
}

func tid(id txn.ID) uint64 { return uint64(id.Coord)<<40 | id.Seq }

type homeReq struct {
	T     *txn.Txn
	Coord simnet.NodeID
	Homes []int
}

// seqInfo carries one home region's local sequence number for a transaction.
type seqInfo struct {
	ID     txn.ID
	Region int
	Seq    uint64
}

type replWrite struct {
	ID     txn.ID
	Shard  int
	Writes map[string][]byte
}

type replAck struct {
	ID     txn.ID
	Region int
}

type resultMsg struct {
	Region int
	ID     txn.ID
	Ret    map[int][]byte // shard -> result, for shards homed here
}

type dtxn struct {
	t       *txn.Txn
	coord   simnet.NodeID
	queued  bool
	homes   []int
	seqs    map[int]uint64 // region -> local sequence
	key     uint64         // deterministic global order key
	ordered bool
	done    bool
	acks    map[int]bool
	rets    map[int][]byte
}

// engine is one region's Detock server: it orders and executes transactions
// whose home is this region and holds a replica of all data.
type engine struct {
	sys    *System
	region int
	node   *simnet.Node
	sts    map[int]*store.Store // shard -> store (full copy per region)
	seq    uint64
	txns   map[uint64]*dtxn
	queue  []*dtxn
}

// System is a running Detock deployment.
type System struct {
	spec    Spec
	engines []*engine
	coords  []*coordinator
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.Regions == 0 {
		spec.Regions = 3
	}
	if spec.Home == nil {
		regions := spec.Regions
		spec.Home = func(shard int) int { return shard % regions }
	}
	if spec.GraphCost == 0 {
		spec.GraphCost = 150 * time.Nanosecond
	}
	if spec.DDRScan == 0 {
		spec.DDRScan = 256
	}
	sys := &System{spec: spec}
	for reg := 0; reg < spec.Regions; reg++ {
		node := spec.Net.AddNode(simnet.Region(reg), nil)
		en := &engine{sys: sys, region: reg, node: node,
			sts: make(map[int]*store.Store), txns: make(map[uint64]*dtxn)}
		for sh := 0; sh < spec.Shards; sh++ {
			en.sts[sh] = store.New()
			if spec.Seed != nil {
				spec.Seed(sh, en.sts[sh])
			}
		}
		node.SetHandler(en.handle)
		sys.engines = append(sys.engines, en)
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// Start is a no-op.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a region's copy of a shard (tests).
func (sys *System) Store(region, shard int) *store.Store { return sys.engines[region].sts[shard] }

// homesOf returns the sorted home regions involved in t.
func (sys *System) homesOf(t *txn.Txn) []int {
	set := make(map[int]bool)
	for _, sh := range t.Shards() {
		set[sys.spec.Home(sh)] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ---- engine ----

func (en *engine) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case homeReq:
		en.onHomeReq(m)
	case seqInfo:
		en.onSeqInfo(m)
	case replWrite:
		en.onReplWrite(from, m)
	case replAck:
		en.onReplAck(m)
	}
}

// onHomeReq assigns the local sequence number and exchanges it with the other
// home regions of a multi-home transaction.
func (en *engine) onHomeReq(m homeReq) {
	id := tid(m.T.ID)
	d := en.txns[id]
	if d == nil {
		d = &dtxn{seqs: make(map[int]uint64), acks: make(map[int]bool), rets: make(map[int][]byte)}
		en.txns[id] = d
	}
	// The sequence exchange may have raced ahead of the home request:
	// enqueue exactly once, whenever the body becomes known.
	d.t = m.T
	d.homes = m.Homes
	if !d.queued {
		d.queued = true
		en.queue = append(en.queue, d)
	}
	d.coord = m.Coord
	en.seq++
	d.seqs[en.region] = en.seq
	for _, h := range m.Homes {
		if h != en.region {
			en.node.Send(en.sys.engines[h].node.ID(), seqInfo{ID: m.T.ID, Region: en.region, Seq: en.seq})
		}
	}
	en.tryOrder(d)
}

func (en *engine) onSeqInfo(m seqInfo) {
	id := tid(m.ID)
	d := en.txns[id]
	if d == nil {
		d = &dtxn{seqs: make(map[int]uint64), acks: make(map[int]bool), rets: make(map[int][]byte)}
		en.txns[id] = d
	}
	d.seqs[m.Region] = m.Seq
	en.tryOrder(d)
}

// tryOrder computes the deterministic global order key once all home regions'
// sequence numbers are known, resolving cross-region ordering cycles (DDR).
func (en *engine) tryOrder(d *dtxn) {
	if d.t == nil || d.ordered || len(d.seqs) < len(d.homes) {
		return
	}
	d.ordered = true
	var max uint64
	for _, s := range d.seqs {
		if s > max {
			max = s
		}
	}
	d.key = max<<16 | (tid(d.t.ID) & 0xffff)
	// Model the deadlock-resolution cost: build the conflict graph over
	// pending ordered transactions and check for cycles through d.
	g := graph.New()
	me := tid(d.t.ID)
	g.AddNode(me)
	// Cap the modeled deadlock-detection scan so saturated queues do not turn
	// per-arrival ordering into quadratic work (DDR only needs the recent
	// conflicting window).
	scan := en.queue
	if max := en.sys.spec.DDRScan; len(scan) > max {
		scan = scan[:max]
	}
	for _, o := range scan {
		if o == d || o.t == nil || o.done {
			continue
		}
		if o.t.ConflictsWith(d.t) {
			oid := tid(o.t.ID)
			if o.key < d.key {
				g.AddEdge(oid, me)
			} else {
				g.AddEdge(me, oid)
			}
		}
	}
	en.node.Work(en.sys.spec.GraphCost * time.Duration(g.Len()+g.Edges()))
	_ = g.HasCycleFrom(me)
	en.tryExecute()
}

// tryExecute runs ordered transactions in global key order: a transaction
// executes once every conflicting pending transaction with a smaller key has
// finished. A single pass with accumulated blocked-key sets makes this
// O(queue × keys) rather than O(queue²).
func (en *engine) tryExecute() {
	sort.SliceStable(en.queue, func(i, j int) bool { return en.queue[i].key < en.queue[j].key })
	blockedR := make(map[string]bool)
	blockedW := make(map[string]bool)
	addKeys := func(d *dtxn) {
		for _, p := range d.t.Pieces {
			for _, k := range p.ReadSet {
				blockedR[k] = true
			}
			for _, k := range p.WriteSet {
				blockedW[k] = true
			}
		}
	}
	conflicts := func(d *dtxn) bool {
		for _, p := range d.t.Pieces {
			for _, k := range p.WriteSet {
				if blockedR[k] || blockedW[k] {
					return true
				}
			}
			for _, k := range p.ReadSet {
				if blockedW[k] {
					return true
				}
			}
		}
		return false
	}
	for _, d := range en.queue {
		if d.t == nil || d.done {
			continue
		}
		if !d.ordered || conflicts(d) {
			// Unordered or blocked entries gate later conflicting ones.
			addKeys(d)
			continue
		}
		en.execute(d)
	}
	// Compact completed entries.
	live := en.queue[:0]
	for _, d := range en.queue {
		if !d.done {
			live = append(live, d)
		}
	}
	en.queue = live
}

// execute runs the pieces homed in this region and starts synchronous
// geo-replication of their writes.
func (en *engine) execute(d *dtxn) {
	d.done = true
	writes := make(map[int]map[string][]byte)
	for _, sh := range d.t.Shards() {
		if en.sys.spec.Home(sh) != en.region {
			continue
		}
		en.node.Work(en.sys.spec.ExecCost)
		piece := d.t.Pieces[sh]
		v := &bufView{st: en.sts[sh], writes: make(map[string][]byte)}
		d.rets[sh] = piece.Exec(v)
		for k, val := range v.writes {
			en.sts[sh].Seed(k, val)
		}
		writes[sh] = v.writes
	}
	// Synchronous geo-replication: wait for f=1 remote ack before reporting.
	// Replicate in shard order — send order feeds the simulation's event
	// order, so map iteration here would diverge runs.
	repShards := make([]int, 0, len(writes))
	for sh := range writes {
		repShards = append(repShards, sh)
	}
	sort.Ints(repShards)
	d.acks[en.region] = true
	for reg := 0; reg < en.sys.spec.Regions; reg++ {
		if reg == en.region {
			continue
		}
		for _, sh := range repShards {
			en.node.Send(en.sys.engines[reg].node.ID(), replWrite{ID: d.t.ID, Shard: sh, Writes: writes[sh]})
		}
	}
}

func (en *engine) onReplWrite(from simnet.NodeID, m replWrite) {
	for k, v := range m.Writes {
		en.sts[m.Shard].Seed(k, v)
	}
	en.node.Send(from, replAck{ID: m.ID, Region: en.region})
}

func (en *engine) onReplAck(m replAck) {
	d := en.txns[tid(m.ID)]
	if d == nil || !d.done {
		return
	}
	d.acks[m.Region] = true
	if len(d.acks) >= 2 && len(d.rets) > 0 { // self + 1 remote = majority of 3
		en.node.Send(d.coord, resultMsg{Region: en.region, ID: m.ID, Ret: d.rets})
		d.rets = make(map[int][]byte) // reply once
	}
}

type bufView struct {
	st     *store.Store
	writes map[string][]byte
}

func (v *bufView) Get(k string) []byte {
	if w, ok := v.writes[k]; ok {
		return w
	}
	return v.st.Get(k)
}

func (v *bufView) Put(k string, val []byte) { v.writes[k] = val }

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	results map[int][]byte
	homes   int
	got     map[int]bool
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pending
}

// Submit dispatches t to the engines of its home regions.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	co := sys.coords[coord]
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	homes := sys.homesOf(t)
	co.pending[t.ID] = &pending{t: t, done: done, results: make(map[int][]byte),
		homes: len(homes), got: make(map[int]bool)}
	m := homeReq{T: t, Coord: co.node.ID(), Homes: homes}
	for _, h := range homes {
		co.node.Send(sys.engines[h].node.ID(), m)
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(resultMsg)
	if !ok {
		return
	}
	p := co.pending[m.ID]
	if p == nil || p.got[m.Region] {
		return
	}
	p.got[m.Region] = true
	for sh, ret := range m.Ret {
		p.results[sh] = ret
	}
	if len(p.got) < p.homes {
		return
	}
	delete(co.pending, m.ID)
	p.done(txn.Result{OK: true, PerShard: p.results})
}
