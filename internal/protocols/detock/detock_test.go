package detock

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, seed int64) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		Shards: 3, Regions: 3, Net: net,
		CoordRegions: []simnet.Region{0, 1, 2},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("d%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	return sim, sys
}

// TestSingleHomeCommit: a transaction touching one home region commits with
// local ordering plus synchronous geo-replication.
func TestSingleHomeCommit(t *testing.T) {
	sim, sys := build(t, 1)
	var res *txn.Result
	var lat time.Duration
	sim.At(50*time.Millisecond, func() {
		s := sim.Now()
		tx := &txn.Txn{Pieces: map[int]*txn.Piece{0: txn.IncrementPiece("d0-0")}}
		// Shard 0 is homed in region 0; submit from the region-0 coordinator.
		sys.Submit(0, tx, func(r txn.Result) { res, lat = &r, sim.Now()-s })
	})
	sim.Run(3 * time.Second)
	if res == nil || !res.OK {
		t.Fatal("no commit")
	}
	// Local ordering (LAN) + sync replication to the nearest remote region
	// (SC↔FI, 110 ms RTT) + local reply.
	if lat < 100*time.Millisecond || lat > 200*time.Millisecond {
		t.Fatalf("single-home latency %v, want ~1 WRTT for sync replication", lat)
	}
}

// TestMultiHomeCommit: spanning all three home regions costs the sequence
// exchange plus replication (≥2 WRTTs from the farthest pair).
func TestMultiHomeCommit(t *testing.T) {
	sim, sys := build(t, 2)
	committed := 0
	const n = 10
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i*30)*time.Millisecond, func() {
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{
				0: txn.IncrementPiece(fmt.Sprintf("d0-%d", i%8)),
				1: txn.IncrementPiece(fmt.Sprintf("d1-%d", i%8)),
				2: txn.IncrementPiece(fmt.Sprintf("d2-%d", i%8)),
			}}
			sys.Submit(i%3, tx, func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(8 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d multi-home txns", committed, n)
	}
	// Synchronous replication propagated writes to every region's copy.
	for reg := 1; reg < 3; reg++ {
		for sh := 0; sh < 3; sh++ {
			if !sys.Store(0, sh).Equal(sys.Store(reg, sh)) {
				t.Fatalf("region %d shard %d copy diverged", reg, sh)
			}
		}
	}
}

// TestConflictingMultiHomeSerialize: conflicting multi-home transactions from
// different regions are ordered deterministically (no lost updates).
func TestConflictingMultiHomeSerialize(t *testing.T) {
	sim, sys := build(t, 3)
	hot := func() *txn.Txn {
		return &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("d0-0"),
			1: txn.IncrementPiece("d1-0"),
		}}
	}
	const n = 20
	committed := 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i)*time.Millisecond, func() {
			sys.Submit(i%3, hot(), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	if got := txn.DecodeInt(sys.Store(0, 0).Get("d0-0")); got != n {
		t.Fatalf("d0-0 = %d, want %d (lost updates)", got, n)
	}
}
