package detock

import "tiga/internal/protocol"

// Detock's deadlock-resolving dependency graph is the most expensive Aux
// component of the evaluated protocols. Its home directories are already
// spread across regions, so rotation (§5.5) changes nothing for it.
func init() {
	protocol.Register("Detock", protocol.CostProfile{Exec: 10, Aux: 5, Rank: 80},
		protocol.Schema{
			{Name: "ddr-scan", Type: protocol.KnobInt, Default: 256,
				Doc: "deadlock-resolution scan window: pending transactions examined per arrival when building the conflict graph"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, Regions: ctx.Regions, Net: ctx.Net,
				CoordRegions: ctx.CoordRegions, Seed: ctx.SeedStore,
				ExecCost: ctx.ExecCost, GraphCost: ctx.AuxCost,
				DDRScan: ctx.Knobs.Int("ddr-scan"),
			})
		})
}
