package tapir

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func build(t *testing.T, seed int64) (*simnet.Sim, *System) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	sys := New(Spec{
		Shards: 2, F: 1, Net: net,
		ServerRegion: func(_, r int) simnet.Region { return simnet.Region(r) },
		CoordRegions: []simnet.Region{0},
		Seed: func(shard int, st *store.Store) {
			for i := 0; i < 8; i++ {
				st.Seed(fmt.Sprintf("t%d-%d", shard, i), txn.EncodeInt(0))
			}
		},
		ExecCost: time.Microsecond,
	})
	sys.Start()
	return sim, sys
}

func tx(i int) *txn.Txn {
	return &txn.Txn{Pieces: map[int]*txn.Piece{
		0: txn.IncrementPiece(fmt.Sprintf("t0-%d", i)),
		1: txn.IncrementPiece(fmt.Sprintf("t1-%d", i)),
	}}
}

// TestFastPathOneWRTT: an uncontended transaction commits on the fast path
// in one wide-area round trip to the farthest replica.
func TestFastPathOneWRTT(t *testing.T) {
	sim, sys := build(t, 1)
	var res *txn.Result
	var lat time.Duration
	sim.At(50*time.Millisecond, func() {
		s := sim.Now()
		sys.Submit(0, tx(0), func(r txn.Result) { res, lat = &r, sim.Now()-s })
	})
	sim.Run(3 * time.Second)
	if res == nil || !res.OK {
		t.Fatal("no commit")
	}
	if !res.FastPath {
		t.Fatal("uncontended prepare should take the fast path")
	}
	// Farthest replica from SC is Brazil (62 ms OWD): ~124 ms RTT.
	if lat < 120*time.Millisecond || lat > 180*time.Millisecond {
		t.Fatalf("fast-path latency %v, want ~1 WRTT (124ms)", lat)
	}
}

// TestConflictAborts: simultaneous conflicting prepares make replicas vote
// against the later arrival; it aborts and retries.
func TestConflictAborts(t *testing.T) {
	sim, sys := build(t, 2)
	hot := func() *txn.Txn {
		return &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("t0-0"),
			1: txn.IncrementPiece("t1-0"),
		}}
	}
	committed, retried := 0, 0
	for i := 0; i < 10; i++ {
		i := i
		sim.At(time.Duration(50+i)*time.Millisecond, func() {
			sys.Submit(0, hot(), func(r txn.Result) {
				if r.OK {
					committed++
					retried += r.Retries
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	if retried == 0 {
		t.Fatal("conflicting prepares should force aborts and retries")
	}
	// Exactly-once on commits.
	if got := txn.DecodeInt(sys.Store(0, 0).Get("t0-0")); got != int64(committed) {
		t.Fatalf("t0-0 = %d, want %d", got, committed)
	}
}

func TestReplicasConverge(t *testing.T) {
	sim, sys := build(t, 3)
	n := 6
	done := 0
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(50+i*40)*time.Millisecond, func() {
			sys.Submit(0, tx(i), func(r txn.Result) {
				if r.OK {
					done++
				}
			})
		})
	}
	sim.Run(5 * time.Second)
	if done != n {
		t.Fatalf("committed %d of %d", done, n)
	}
	for sh := 0; sh < 2; sh++ {
		for rep := 1; rep < 3; rep++ {
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("t%d-%d", sh, i)
				if string(sys.Store(sh, 0).Get(k)) != string(sys.Store(sh, rep).Get(k)) {
					t.Fatalf("shard %d replica %d diverges on %s", sh, rep, k)
				}
			}
		}
	}
}
