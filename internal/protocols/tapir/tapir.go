// Package tapir implements the TAPIR baseline (Zhang et al., SOSP 2015): a
// consolidated protocol built on inconsistent replication. The coordinator
// multicasts PREPARE to every replica of every involved shard; each replica
// independently runs OCC validation against its local state. If a super
// quorum of replicas in each shard returns matching PREPARE-OK votes, the
// transaction commits in 1 WRTT. Mismatched votes force a slow path (one
// more round), and conflicts abort and retry.
//
// TAPIR's fast path is optimistic about arrival order: under concurrency,
// transactions reach replicas in different orders, votes diverge, and the
// commit rate collapses — the failure mode Figure 1 of the Tiga paper
// illustrates and Tiga's proactive ordering avoids.
package tapir

import (
	"sort"
	"time"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Spec describes the deployment.
type Spec struct {
	Shards       int
	F            int
	Net          *simnet.Network
	ServerRegion func(shard, replica int) simnet.Region
	CoordRegions []simnet.Region
	Seed         func(shard int, st *store.Store)
	ExecCost     time.Duration
	MaxRetries   int
	RetryBackoff time.Duration
}

type prepareMsg struct {
	T     *txn.Txn
	Coord simnet.NodeID
	Try   int
}

type prepareRep struct {
	Shard   int
	Replica int
	ID      txn.ID
	Try     int
	OK      bool
	Ret     []byte
	Reads   map[string]uint64
}

// decideMsg is the coordinator's final decision (commit or abort), also used
// as the slow-path consensus round.
type decideMsg struct {
	ID     txn.ID
	T      *txn.Txn
	Commit bool
	Slow   bool
	Coord  simnet.NodeID
	Try    int
}

type decideAck struct {
	Shard   int
	Replica int
	ID      txn.ID
	Try     int
}

type replica struct {
	sys      *System
	shard    int
	rep      int
	node     *simnet.Node
	st       *store.Store
	vers     map[string]uint64
	prepared map[txn.ID]*txn.Txn
	pkeys    map[string]txn.ID // prepared-key write locks
	applied  map[txn.ID]bool
}

// System is a running TAPIR deployment.
type System struct {
	spec     Spec
	replicas [][]*replica
	coords   []*coordinator
	Aborts   int64
}

// New builds the deployment.
func New(spec Spec) *System {
	if spec.MaxRetries == 0 {
		spec.MaxRetries = 5
	}
	if spec.RetryBackoff == 0 {
		spec.RetryBackoff = 20 * time.Millisecond
	}
	sys := &System{spec: spec}
	n := 2*spec.F + 1
	sys.replicas = make([][]*replica, spec.Shards)
	for s := 0; s < spec.Shards; s++ {
		sys.replicas[s] = make([]*replica, n)
		for r := 0; r < n; r++ {
			node := spec.Net.AddNode(spec.ServerRegion(s, r), nil)
			rp := &replica{sys: sys, shard: s, rep: r, node: node, st: store.New(),
				vers: make(map[string]uint64), prepared: make(map[txn.ID]*txn.Txn),
				pkeys: make(map[string]txn.ID), applied: make(map[txn.ID]bool)}
			if spec.Seed != nil {
				spec.Seed(s, rp.st)
			}
			node.SetHandler(rp.handle)
			sys.replicas[s][r] = rp
		}
	}
	for _, reg := range spec.CoordRegions {
		node := spec.Net.AddNode(reg, nil)
		co := &coordinator{sys: sys, node: node, idx: int32(len(sys.coords) + 1),
			pending: make(map[txn.ID]*pending)}
		node.SetHandler(co.handle)
		sys.coords = append(sys.coords, co)
	}
	return sys
}

// Start is a no-op.
func (sys *System) Start() {}

// NumCoords returns the coordinator count.
func (sys *System) NumCoords() int { return len(sys.coords) }

// Store exposes a replica store (tests).
func (sys *System) Store(shard, rep int) *store.Store { return sys.replicas[shard][rep].st }

func (sys *System) superQuorum() int { return 1 + sys.spec.F + (sys.spec.F+1)/2 }

// ---- replica ----

func (rp *replica) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case prepareMsg:
		rp.onPrepare(m)
	case decideMsg:
		rp.onDecide(m)
	}
}

// onPrepare runs local OCC validation: reads must be current and no
// conflicting transaction may be prepared.
func (rp *replica) onPrepare(m prepareMsg) {
	piece := m.T.Pieces[rp.shard]
	rp.node.Work(rp.sys.spec.ExecCost)
	id := m.T.ID
	if rp.applied[id] {
		return
	}
	ok := true
	for _, k := range piece.ReadSet {
		if owner, locked := rp.pkeys[k]; locked && owner != id {
			ok = false
			break
		}
	}
	if ok {
		for _, k := range piece.WriteSet {
			if owner, locked := rp.pkeys[k]; locked && owner != id {
				ok = false
				break
			}
		}
	}
	rep := prepareRep{Shard: rp.shard, Replica: rp.rep, ID: id, Try: m.Try, OK: ok}
	if ok {
		rp.prepared[id] = m.T
		for _, k := range piece.WriteSet {
			rp.pkeys[k] = id
		}
		rep.Reads = make(map[string]uint64, len(piece.ReadSet))
		for _, k := range piece.ReadSet {
			rep.Reads[k] = rp.vers[k]
		}
		ret, _ := executeBuffered(rp.st, piece)
		rep.Ret = ret
	}
	rp.node.Send(m.Coord, rep)
}

func (rp *replica) onDecide(m decideMsg) {
	id := m.ID
	if t, ok := rp.prepared[id]; ok {
		p := t.Pieces[rp.shard]
		for _, k := range p.WriteSet {
			if rp.pkeys[k] == id {
				delete(rp.pkeys, k)
			}
		}
		delete(rp.prepared, id)
	}
	if m.Commit && !rp.applied[id] {
		rp.applied[id] = true
		piece := m.T.Pieces[rp.shard]
		_, writes := executeBuffered(rp.st, piece)
		for k, v := range writes {
			rp.st.Seed(k, v)
			rp.vers[k]++
		}
	}
	if m.Slow {
		rp.node.Send(m.Coord, decideAck{Shard: rp.shard, Replica: rp.rep, ID: id, Try: m.Try})
	}
}

func executeBuffered(st *store.Store, p *txn.Piece) ([]byte, map[string][]byte) {
	v := &bufView{st: st, writes: make(map[string][]byte)}
	ret := p.Exec(v)
	return ret, v.writes
}

type bufView struct {
	st     *store.Store
	writes map[string][]byte
}

func (v *bufView) Get(k string) []byte {
	if w, ok := v.writes[k]; ok {
		return w
	}
	return v.st.Get(k)
}

func (v *bufView) Put(k string, val []byte) { v.writes[k] = val }

// ---- coordinator ----

type pending struct {
	t       *txn.Txn
	done    func(txn.Result)
	votes   map[int]map[int]prepareRep // shard -> replica -> vote
	acks    map[int]map[int]bool
	rets    map[int][]byte
	slow    bool
	decided bool
	retries int
}

type coordinator struct {
	sys     *System
	node    *simnet.Node
	idx     int32
	seq     uint64
	pending map[txn.ID]*pending
}

// Submit runs TAPIR's prepare/decide protocol for t.
func (sys *System) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	sys.coords[coord].submit(t, done, 0)
}

func (co *coordinator) submit(t *txn.Txn, done func(txn.Result), retries int) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := &pending{t: t, done: done, retries: retries,
		votes: make(map[int]map[int]prepareRep), acks: make(map[int]map[int]bool)}
	co.pending[t.ID] = p
	m := prepareMsg{T: t, Coord: co.node.ID(), Try: retries}
	for _, sh := range t.Shards() {
		for r := 0; r < 2*co.sys.spec.F+1; r++ {
			co.node.Send(co.sys.replicas[sh][r].node.ID(), m)
		}
	}
}

func (co *coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case prepareRep:
		co.onVote(m)
	case decideAck:
		co.onAck(m)
	}
}

func (co *coordinator) onVote(m prepareRep) {
	p := co.pending[m.ID]
	if p == nil || p.decided || m.Try != p.retries {
		return
	}
	byRep := p.votes[m.Shard]
	if byRep == nil {
		byRep = make(map[int]prepareRep)
		p.votes[m.Shard] = byRep
	}
	byRep[m.Replica] = m
	co.evaluate(p)
}

func (co *coordinator) evaluate(p *pending) {
	n := 2*co.sys.spec.F + 1
	sq := co.sys.superQuorum()
	allFast, anyAbortQuorum, complete := true, false, true
	for _, sh := range p.t.Shards() {
		votes := p.votes[sh]
		oks, nos := 0, 0
		for _, v := range votes {
			if v.OK {
				oks++
			} else {
				nos++
			}
		}
		switch {
		case oks >= sq:
			// fast OK on this shard
		case nos >= co.sys.spec.F+1:
			anyAbortQuorum = true
		case oks >= co.sys.spec.F+1 && len(votes) == n:
			allFast = false // classic quorum only: slow path required
		default:
			complete = false
		}
	}
	if anyAbortQuorum {
		co.decide(p, false)
		return
	}
	if !complete {
		return
	}
	co.decideSlowOrFast(p, allFast)
}

func (co *coordinator) decideSlowOrFast(p *pending, fast bool) {
	p.slow = !fast
	co.decide(p, true)
}

// decide broadcasts the decision; the slow path waits for f+1 acks per shard
// before reporting commit (one extra round trip).
func (co *coordinator) decide(p *pending, commit bool) {
	p.decided = true
	rets := make(map[int][]byte)
	if commit {
		for _, sh := range p.t.Shards() {
			// Use the execution result from the lowest-numbered PREPARE-OK
			// replica: TAPIR's inconsistent replicas may diverge, so a
			// map-order pick would make the client-visible result (and the
			// whole deterministic run) depend on map iteration.
			reps := make([]int, 0, len(p.votes[sh]))
			for rep := range p.votes[sh] {
				reps = append(reps, rep)
			}
			sort.Ints(reps)
			for _, rep := range reps {
				if v := p.votes[sh][rep]; v.OK {
					rets[sh] = v.Ret
					break
				}
			}
		}
	}
	m := decideMsg{ID: p.t.ID, T: p.t, Commit: commit, Slow: p.slow, Coord: co.node.ID(), Try: p.retries}
	for _, sh := range p.t.Shards() {
		for r := 0; r < 2*co.sys.spec.F+1; r++ {
			co.node.Send(co.sys.replicas[sh][r].node.ID(), m)
		}
	}
	if !commit {
		delete(co.pending, p.t.ID)
		if p.retries >= co.sys.spec.MaxRetries {
			co.sys.Aborts++
			p.done(txn.Result{Aborted: true, Retries: p.retries})
			return
		}
		backoff := co.sys.spec.RetryBackoff * time.Duration(p.retries+1)
		co.node.After(backoff, func() { co.submit(p.t, p.done, p.retries+1) })
		return
	}
	if !p.slow {
		delete(co.pending, p.t.ID)
		p.done(txn.Result{OK: true, FastPath: true, Retries: p.retries, PerShard: rets})
		return
	}
	// Slow path: wait for f+1 acks per shard.
	p.rets = rets
}

func (co *coordinator) onAck(m decideAck) {
	p := co.pending[m.ID]
	if p == nil || m.Try != p.retries {
		return
	}
	byRep := p.acks[m.Shard]
	if byRep == nil {
		byRep = make(map[int]bool)
		p.acks[m.Shard] = byRep
	}
	byRep[m.Replica] = true
	for _, sh := range p.t.Shards() {
		if len(p.acks[sh]) < co.sys.spec.F+1 {
			return
		}
	}
	delete(co.pending, m.ID)
	p.done(txn.Result{OK: true, FastPath: false, Retries: p.retries, PerShard: p.rets})
}
