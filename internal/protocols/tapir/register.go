package tapir

import (
	"time"

	"tiga/internal/protocol"
)

// Tapir consolidates concurrency control with inconsistent replication, so
// its per-transaction work sits between Tiga and the layered baselines.
func init() {
	protocol.Register("Tapir", protocol.CostProfile{Exec: 5, Rank: 30},
		protocol.Schema{
			{Name: "max-retries", Type: protocol.KnobInt, Default: 5,
				Doc: "coordinator retries after OCC validation aborts before reporting failure"},
			{Name: "retry-backoff", Type: protocol.KnobDuration, Default: 20 * time.Millisecond,
				Doc: "base backoff before a retry; multiplied by the attempt number"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
				ServerRegion: ctx.ServerRegion, CoordRegions: ctx.CoordRegions,
				Seed: ctx.SeedStore, ExecCost: ctx.ExecCost,
				MaxRetries:   ctx.Knobs.Int("max-retries"),
				RetryBackoff: ctx.Knobs.Duration("retry-backoff"),
			})
		})
}
