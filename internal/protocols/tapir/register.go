package tapir

import "tiga/internal/protocol"

// Tapir consolidates concurrency control with inconsistent replication, so
// its per-transaction work sits between Tiga and the layered baselines.
func init() {
	protocol.Register("Tapir", protocol.CostProfile{Exec: 5, Rank: 30},
		func(ctx *protocol.BuildContext) protocol.System {
			return New(Spec{
				Shards: ctx.Shards, F: ctx.F, Net: ctx.Net,
				ServerRegion: ctx.ServerRegion, CoordRegions: ctx.CoordRegions,
				Seed: ctx.SeedStore, ExecCost: ctx.ExecCost,
			})
		})
}
