package clocks

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectClock(t *testing.T) {
	c := Perfect{}
	if c.Read(5*time.Second) != 5*time.Second {
		t.Fatal("perfect clock should read true time")
	}
	if c.WhenReads(3*time.Second, time.Second) != 3*time.Second {
		t.Fatal("WhenReads")
	}
	if c.WhenReads(time.Second, 3*time.Second) != 3*time.Second {
		t.Fatal("WhenReads in the past should clamp to now")
	}
}

func TestOffsetClock(t *testing.T) {
	c := Offset{Off: 10 * time.Millisecond}
	if c.Read(time.Second) != time.Second+10*time.Millisecond {
		t.Fatal("Read")
	}
	at := c.WhenReads(2*time.Second, 0)
	if c.Read(at) != 2*time.Second {
		t.Fatalf("WhenReads inversion: Read(%v) = %v", at, c.Read(at))
	}
}

// Property: for every clock model, WhenReads returns a time at which Read
// meets or exceeds the target, and never before `now`.
func TestWhenReadsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, model := range []Model{ModelPerfect, ModelHuygens, ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(model, time.Minute, 11)
		for i := 0; i < 20; i++ {
			c := f.New()
			check := func(targetMs, nowMs uint16) bool {
				target := time.Duration(targetMs) * time.Millisecond
				now := time.Duration(nowMs) * time.Millisecond
				at := c.WhenReads(target, now)
				if at < now {
					return false
				}
				// Allow sub-ms slack for wandering clocks' interpolation.
				return c.Read(at) >= target-time.Millisecond
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
				t.Fatalf("model %v: %v", model, err)
			}
		}
	}
}

// Property: clocks are monotonically non-decreasing in true time.
func TestMonotonicProperty(t *testing.T) {
	for _, model := range []Model{ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(model, time.Minute, 13)
		c := f.New()
		prev := c.Read(0)
		for ms := 1; ms < 60000; ms += 7 {
			now := time.Duration(ms) * time.Millisecond
			v := c.Read(now)
			if v < prev-time.Millisecond { // slewing may dip marginally
				t.Fatalf("model %v: clock went backwards at %v: %v < %v", model, now, v, prev)
			}
			if v > prev {
				prev = v
			}
		}
	}
}

// TestErrorMagnitudes checks each model's measured error lands in the right
// regime relative to Table 3 (Huygens µs-level ≪ chrony ms-level ≪ ntpd ≪
// bad clock).
func TestErrorMagnitudes(t *testing.T) {
	measure := func(m Model) time.Duration {
		f := NewFactory(m, time.Minute, 17)
		cs := make([]Clock, 24)
		for i := range cs {
			cs[i] = f.New()
		}
		return MeasureError(cs, time.Minute, 100)
	}
	hu, ch, nt, bad := measure(ModelHuygens), measure(ModelChrony), measure(ModelNtpd), measure(ModelBad)
	if !(hu < ch && ch < nt && nt < bad) {
		t.Fatalf("error ordering wrong: huygens=%v chrony=%v ntpd=%v bad=%v", hu, ch, nt, bad)
	}
	if hu > 100*time.Microsecond {
		t.Errorf("Huygens error %v should be microsecond-scale", hu)
	}
	if ch > 10*time.Millisecond || ch < 100*time.Microsecond {
		t.Errorf("chrony error %v should be low-millisecond-scale", ch)
	}
	if bad < 5*time.Millisecond {
		t.Errorf("bad-clock error %v should be tens of ms", bad)
	}
}

func TestBoundedByAmplitude(t *testing.T) {
	for _, m := range []Model{ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(m, time.Minute, 23)
		for i := 0; i < 10; i++ {
			c := f.New()
			for ms := 0; ms < 60000; ms += 97 {
				now := time.Duration(ms) * time.Millisecond
				off := c.Read(now) - now
				if off < 0 {
					off = -off
				}
				if off > m.Err() {
					t.Fatalf("model %v offset %v exceeds amplitude %v", m, off, m.Err())
				}
			}
		}
	}
}

func TestModelStrings(t *testing.T) {
	for m, want := range map[Model]string{
		ModelPerfect: "Perfect", ModelHuygens: "Huygens", ModelChrony: "Chrony",
		ModelNtpd: "Ntpd", ModelBad: "Bad-Clock",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

// TestAdjustableTransparent: an untouched Adjustable returns exactly the
// base clock's values — wrapping every factory clock must not change a byte
// of any chaos-free run.
func TestAdjustableTransparent(t *testing.T) {
	base := NewWandering(rand.New(rand.NewSource(7)), 5*time.Millisecond, time.Second, time.Minute)
	a := NewAdjustable(base)
	for i := 0; i < 200; i++ {
		now := time.Duration(i) * 37 * time.Millisecond
		if got, want := a.Read(now), base.Read(now); got != want {
			t.Fatalf("Read(%v) = %v, want base %v", now, got, want)
		}
		target := now + 20*time.Millisecond
		if got, want := a.WhenReads(target, now), base.WhenReads(target, now); got != want {
			t.Fatalf("WhenReads(%v,%v) = %v, want base %v", target, now, got, want)
		}
	}
}

// TestAdjustableStep: a forward step jumps the reading; a backward step
// plateaus at the high-water mark (monotonic contract) until true time
// catches up.
func TestAdjustableStep(t *testing.T) {
	a := NewAdjustable(Perfect{})
	if got := a.Read(10 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("pre-step Read = %v", got)
	}
	a.Step(50 * time.Millisecond)
	if got := a.Read(10 * time.Millisecond); got != 60*time.Millisecond {
		t.Fatalf("post-step Read = %v, want 60ms", got)
	}
	// Step back past the high-water mark: the clock must not run backward.
	a.Step(-50 * time.Millisecond)
	if got := a.Read(11 * time.Millisecond); got != 60*time.Millisecond {
		t.Fatalf("plateau Read = %v, want 60ms (held at high water)", got)
	}
	// True time catches up with the high-water mark; normal ticking resumes.
	if got := a.Read(70 * time.Millisecond); got != 70*time.Millisecond {
		t.Fatalf("caught-up Read = %v, want 70ms", got)
	}
}

// TestAdjustableFreeze: a frozen clock pins its reading; unfreezing resumes
// from the frozen value, leaving the clock behind by the freeze duration.
func TestAdjustableFreeze(t *testing.T) {
	a := NewAdjustable(Perfect{})
	a.Freeze(20 * time.Millisecond)
	if !a.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if got := a.Read(35 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("frozen Read = %v, want pinned 20ms", got)
	}
	a.Unfreeze(40 * time.Millisecond)
	if got := a.Read(40 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("resume Read = %v, want 20ms (resumes from frozen value)", got)
	}
	if got := a.Read(55 * time.Millisecond); got != 35*time.Millisecond {
		t.Fatalf("post-resume Read = %v, want 35ms (20ms behind true time)", got)
	}
}

// TestAdjustableWhenReadsUnderFault: waiters never wedge — under a freeze
// WhenReads extrapolates at rate 1 (the waiter polls), and after a step the
// wait time reflects the shifted clock.
func TestAdjustableWhenReadsUnderFault(t *testing.T) {
	a := NewAdjustable(Perfect{})
	a.Freeze(10 * time.Millisecond)
	at := a.WhenReads(30*time.Millisecond, 15*time.Millisecond)
	if at != 35*time.Millisecond {
		t.Fatalf("frozen WhenReads = %v, want 35ms (rate-1 extrapolation from the 10ms pin)", at)
	}
	if got := a.Read(at); got != 10*time.Millisecond {
		t.Fatalf("the poll fires with the clock still frozen at %v — it must re-arm, not assume the target", got)
	}
	a.Unfreeze(40 * time.Millisecond)
	// Clock reads 10ms at true 40ms (30ms behind): reaching 50ms takes until
	// true time 80ms.
	if at := a.WhenReads(50*time.Millisecond, 40*time.Millisecond); at != 80*time.Millisecond {
		t.Fatalf("post-freeze WhenReads = %v, want 80ms", at)
	}
	if got := a.Read(80 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("Read at the returned time = %v, want the 50ms target", got)
	}
	// A reached target returns now.
	if at := a.WhenReads(40*time.Millisecond, 90*time.Millisecond); at != 90*time.Millisecond {
		t.Fatalf("reached-target WhenReads = %v, want now", at)
	}
}

// TestFactoryAdjustables: the factory wraps and records every clock it
// creates, in creation order.
func TestFactoryAdjustables(t *testing.T) {
	f := NewFactory(ModelChrony, time.Minute, 3)
	c0, c1 := f.New(), f.New()
	made := f.Adjustables()
	if len(made) != 2 {
		t.Fatalf("Adjustables() has %d entries, want 2", len(made))
	}
	if Clock(made[0]) != c0 || Clock(made[1]) != c1 {
		t.Fatal("Adjustables() order does not match creation order")
	}
	made[1].Step(time.Millisecond)
	if got := c1.Read(0) - made[0].Read(0); got-time.Millisecond > ModelChrony.Err()*2 || got < 0 {
		t.Logf("step visible through the factory handle (delta %v)", got)
	}
}

// TestAdjustableStepWhileFrozen: a step landing on a frozen clock moves the
// pinned value and survives the unfreeze (ntp-insanity steps random clocks,
// including the one it froze).
func TestAdjustableStepWhileFrozen(t *testing.T) {
	a := NewAdjustable(Perfect{})
	a.Freeze(20 * time.Millisecond)
	a.Step(30 * time.Millisecond)
	if got := a.Read(25 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("frozen+stepped Read = %v, want 50ms (pin moved by the step)", got)
	}
	a.Unfreeze(40 * time.Millisecond)
	if got := a.Read(40 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("post-unfreeze Read = %v, want 50ms (step not erased)", got)
	}
	if got := a.Read(60 * time.Millisecond); got != 70*time.Millisecond {
		t.Fatalf("resumed Read = %v, want 70ms (ticking from the stepped pin)", got)
	}
}
