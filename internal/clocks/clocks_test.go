package clocks

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectClock(t *testing.T) {
	c := Perfect{}
	if c.Read(5*time.Second) != 5*time.Second {
		t.Fatal("perfect clock should read true time")
	}
	if c.WhenReads(3*time.Second, time.Second) != 3*time.Second {
		t.Fatal("WhenReads")
	}
	if c.WhenReads(time.Second, 3*time.Second) != 3*time.Second {
		t.Fatal("WhenReads in the past should clamp to now")
	}
}

func TestOffsetClock(t *testing.T) {
	c := Offset{Off: 10 * time.Millisecond}
	if c.Read(time.Second) != time.Second+10*time.Millisecond {
		t.Fatal("Read")
	}
	at := c.WhenReads(2*time.Second, 0)
	if c.Read(at) != 2*time.Second {
		t.Fatalf("WhenReads inversion: Read(%v) = %v", at, c.Read(at))
	}
}

// Property: for every clock model, WhenReads returns a time at which Read
// meets or exceeds the target, and never before `now`.
func TestWhenReadsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, model := range []Model{ModelPerfect, ModelHuygens, ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(model, time.Minute, 11)
		for i := 0; i < 20; i++ {
			c := f.New()
			check := func(targetMs, nowMs uint16) bool {
				target := time.Duration(targetMs) * time.Millisecond
				now := time.Duration(nowMs) * time.Millisecond
				at := c.WhenReads(target, now)
				if at < now {
					return false
				}
				// Allow sub-ms slack for wandering clocks' interpolation.
				return c.Read(at) >= target-time.Millisecond
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
				t.Fatalf("model %v: %v", model, err)
			}
		}
	}
}

// Property: clocks are monotonically non-decreasing in true time.
func TestMonotonicProperty(t *testing.T) {
	for _, model := range []Model{ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(model, time.Minute, 13)
		c := f.New()
		prev := c.Read(0)
		for ms := 1; ms < 60000; ms += 7 {
			now := time.Duration(ms) * time.Millisecond
			v := c.Read(now)
			if v < prev-time.Millisecond { // slewing may dip marginally
				t.Fatalf("model %v: clock went backwards at %v: %v < %v", model, now, v, prev)
			}
			if v > prev {
				prev = v
			}
		}
	}
}

// TestErrorMagnitudes checks each model's measured error lands in the right
// regime relative to Table 3 (Huygens µs-level ≪ chrony ms-level ≪ ntpd ≪
// bad clock).
func TestErrorMagnitudes(t *testing.T) {
	measure := func(m Model) time.Duration {
		f := NewFactory(m, time.Minute, 17)
		cs := make([]Clock, 24)
		for i := range cs {
			cs[i] = f.New()
		}
		return MeasureError(cs, time.Minute, 100)
	}
	hu, ch, nt, bad := measure(ModelHuygens), measure(ModelChrony), measure(ModelNtpd), measure(ModelBad)
	if !(hu < ch && ch < nt && nt < bad) {
		t.Fatalf("error ordering wrong: huygens=%v chrony=%v ntpd=%v bad=%v", hu, ch, nt, bad)
	}
	if hu > 100*time.Microsecond {
		t.Errorf("Huygens error %v should be microsecond-scale", hu)
	}
	if ch > 10*time.Millisecond || ch < 100*time.Microsecond {
		t.Errorf("chrony error %v should be low-millisecond-scale", ch)
	}
	if bad < 5*time.Millisecond {
		t.Errorf("bad-clock error %v should be tens of ms", bad)
	}
}

func TestBoundedByAmplitude(t *testing.T) {
	for _, m := range []Model{ModelChrony, ModelNtpd, ModelBad} {
		f := NewFactory(m, time.Minute, 23)
		for i := 0; i < 10; i++ {
			c := f.New()
			for ms := 0; ms < 60000; ms += 97 {
				now := time.Duration(ms) * time.Millisecond
				off := c.Read(now) - now
				if off < 0 {
					off = -off
				}
				if off > m.Err() {
					t.Fatalf("model %v offset %v exceeds amplitude %v", m, off, m.Err())
				}
			}
		}
	}
}

func TestModelStrings(t *testing.T) {
	for m, want := range map[Model]string{
		ModelPerfect: "Perfect", ModelHuygens: "Huygens", ModelChrony: "Chrony",
		ModelNtpd: "Ntpd", ModelBad: "Bad-Clock",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}
