// Package clocks models synchronized physical clocks with configurable error.
//
// Tiga "depends on clock synchronization for performance but not for
// correctness" (Liskov), so the protocol consumes only a Clock interface.
// This package provides error models matching the paper's §5.7 ablation:
// Huygens (~12 µs), chrony (~4.54 ms), ntpd (~16.45 ms), and an unstable
// "bad clock" (~62.55 ms).
package clocks

import (
	"math/rand"
	"time"
)

// Clock maps simulated (true) time to a node's local clock reading.
// Implementations must be monotonically non-decreasing in simNow.
type Clock interface {
	// Read returns the local clock value at true time simNow.
	Read(simNow time.Duration) time.Duration
	// WhenReads returns the earliest true time >= simNow at which Read
	// will return at least target. It is used to set hold timers for
	// transactions waiting on their future timestamps.
	WhenReads(target, simNow time.Duration) time.Duration
}

// Perfect is an exactly synchronized clock (error = 0).
type Perfect struct{}

// Read implements Clock.
func (Perfect) Read(now time.Duration) time.Duration { return now }

// WhenReads implements Clock.
func (Perfect) WhenReads(target, now time.Duration) time.Duration {
	if target < now {
		return now
	}
	return target
}

// Offset is a clock with a constant offset from true time. A positive offset
// means the clock runs ahead.
type Offset struct{ Off time.Duration }

// Read implements Clock.
func (c Offset) Read(now time.Duration) time.Duration { return now + c.Off }

// WhenReads implements Clock.
func (c Offset) WhenReads(target, now time.Duration) time.Duration {
	t := target - c.Off
	if t < now {
		return now
	}
	return t
}

// Wandering models an NTP-style clock whose offset is re-drawn from a
// zero-mean distribution at each sync epoch and linearly interpolated in
// between (slewing). The peak error is roughly Amplitude.
type Wandering struct {
	Amplitude time.Duration // max |offset|
	Period    time.Duration // re-sync interval
	offsets   []time.Duration
}

// NewWandering builds a wandering clock with its offset trajectory drawn
// deterministically from rng. The trajectory covers `horizon` of true time;
// reads beyond the horizon clamp to the last offset.
func NewWandering(rng *rand.Rand, amplitude, period, horizon time.Duration) *Wandering {
	n := int(horizon/period) + 2
	offs := make([]time.Duration, n)
	for i := range offs {
		// Triangular-ish distribution concentrated near 0 with peaks at ±amplitude.
		u := rng.Float64()*2 - 1
		offs[i] = time.Duration(u * u * u * float64(amplitude))
	}
	return &Wandering{Amplitude: amplitude, Period: period, offsets: offs}
}

func (c *Wandering) offsetAt(now time.Duration) time.Duration {
	if c.Period <= 0 || len(c.offsets) == 0 {
		return 0
	}
	i := int(now / c.Period)
	if i >= len(c.offsets)-1 {
		return c.offsets[len(c.offsets)-1]
	}
	frac := float64(now%c.Period) / float64(c.Period)
	a, b := c.offsets[i], c.offsets[i+1]
	return a + time.Duration(frac*float64(b-a))
}

// Read implements Clock.
func (c *Wandering) Read(now time.Duration) time.Duration { return now + c.offsetAt(now) }

// WhenReads implements Clock. The offset changes slowly relative to the
// intervals being awaited, so a short fixed-point iteration converges.
func (c *Wandering) WhenReads(target, now time.Duration) time.Duration {
	t := target - c.offsetAt(now)
	for i := 0; i < 4; i++ {
		if t < now {
			t = now
		}
		r := c.Read(t)
		if r >= target {
			break
		}
		t += target - r
	}
	if t < now {
		return now
	}
	return t
}

// Adjustable wraps any Clock with runtime misbehavior hooks for the chaos
// layer: Step injects an offset jump (an NTP step), Freeze stops the clock,
// and Unfreeze resumes it from the frozen value (a stopped clock stays
// behind until something re-steps it). Read stays monotonically
// non-decreasing through a high-water mark — a backward step shows up as a
// plateau until true time catches up, the way a monotonic local clock
// exposes a step-back. Untouched, the wrapper is numerically transparent:
// it returns exactly the base clock's values, so wrapping every clock (see
// Factory.New) changes no byte of any chaos-free run.
type Adjustable struct {
	base   Clock
	off    time.Duration // accumulated Step offsets
	frozen bool
	frozAt time.Duration // Read value pinned while frozen
	hw     time.Duration // monotonicity high-water mark
	moved  bool          // any Step/Freeze ever applied (fast path off)
}

// NewAdjustable wraps base.
func NewAdjustable(base Clock) *Adjustable { return &Adjustable{base: base} }

// Read implements Clock. Reads happen in non-decreasing sim-time order, so
// the high-water clamp is deterministic.
func (a *Adjustable) Read(now time.Duration) time.Duration {
	if !a.moved {
		// Base clocks honor the monotonic contract themselves; recording the
		// high-water mark keeps monotonicity across a later backward Step.
		v := a.base.Read(now)
		if v > a.hw {
			a.hw = v
		}
		return v
	}
	v := a.frozAt
	if !a.frozen {
		v = a.base.Read(now) + a.off
	}
	if v < a.hw {
		v = a.hw
	}
	a.hw = v
	return v
}

// WhenReads implements Clock. While the clock is frozen (or plateaued after
// a backward step) no future true time is guaranteed to reach target; the
// wrapper then extrapolates at rate 1, which makes waiters poll — they fire,
// observe the clock has not advanced, and re-arm. Chaos clock faults may
// therefore delay transactions but can never wedge the Clock contract.
func (a *Adjustable) WhenReads(target, now time.Duration) time.Duration {
	if !a.moved {
		return a.base.WhenReads(target, now)
	}
	cur := a.Read(now)
	if cur >= target {
		return now
	}
	if a.frozen {
		return now + (target - cur)
	}
	t := a.base.WhenReads(target-a.off, now)
	if t < now {
		t = now
	}
	return t
}

// Step jumps the clock by d (negative d models a step back; reads plateau
// at the high-water mark until true time catches up). Stepping a frozen
// clock moves the pinned value — the step survives the unfreeze.
func (a *Adjustable) Step(d time.Duration) {
	a.moved = true
	if a.frozen {
		a.frozAt += d
		return
	}
	a.off += d
}

// Freeze stops the clock at its current reading; now is the true (sim) time
// of the freeze.
func (a *Adjustable) Freeze(now time.Duration) {
	a.moved = true
	a.frozAt = a.Read(now)
	a.frozen = true
}

// Unfreeze resumes a frozen clock from the value it froze at: the clock
// stays behind true time by the freeze duration until re-stepped.
func (a *Adjustable) Unfreeze(now time.Duration) {
	if !a.frozen {
		return
	}
	a.frozen = false
	a.off = a.frozAt - a.base.Read(now)
}

// Offset reports the accumulated step offset (tests, diagnostics).
func (a *Adjustable) Offset() time.Duration { return a.off }

// Frozen reports whether the clock is currently frozen.
func (a *Adjustable) Frozen() bool { return a.frozen }

// Model names the clock-synchronization services from the paper's Table 3.
type Model int

// Clock synchronization models evaluated in §5.7.
const (
	ModelPerfect Model = iota
	ModelHuygens
	ModelChrony
	ModelNtpd
	ModelBad
)

// String returns the service name as used in the paper.
func (m Model) String() string {
	switch m {
	case ModelPerfect:
		return "Perfect"
	case ModelHuygens:
		return "Huygens"
	case ModelChrony:
		return "Chrony"
	case ModelNtpd:
		return "Ntpd"
	case ModelBad:
		return "Bad-Clock"
	}
	return "Unknown"
}

// Err returns the model's approximate synchronization error (Table 3).
func (m Model) Err() time.Duration {
	switch m {
	case ModelHuygens:
		return 12 * time.Microsecond
	case ModelChrony:
		return 4540 * time.Microsecond
	case ModelNtpd:
		return 16450 * time.Microsecond
	case ModelBad:
		return 62550 * time.Microsecond
	}
	return 0
}

// Factory builds per-node clocks for a given model. Every clock it hands
// out is wrapped in an Adjustable and recorded, so the chaos layer can
// address deployment clock i (creation order) for steps and freezes; the
// wrapper is numerically transparent until a fault touches it.
type Factory struct {
	Model   Model
	Horizon time.Duration
	rng     *rand.Rand
	made    []*Adjustable
}

// NewFactory returns a clock factory seeded deterministically.
func NewFactory(model Model, horizon time.Duration, seed int64) *Factory {
	return &Factory{Model: model, Horizon: horizon, rng: rand.New(rand.NewSource(seed))}
}

// New returns a fresh clock for one node, wrapped for chaos adjustment.
func (f *Factory) New() Clock {
	a := NewAdjustable(f.newBase())
	f.made = append(f.made, a)
	return a
}

// Adjustables returns every clock this factory has created, in creation
// order — the chaos layer's addressing scheme for per-node clock faults.
func (f *Factory) Adjustables() []*Adjustable { return f.made }

func (f *Factory) newBase() Clock {
	switch f.Model {
	case ModelPerfect:
		return Perfect{}
	case ModelHuygens:
		// Microsecond-level error: a small constant offset captures it.
		u := f.rng.Float64()*2 - 1
		return Offset{Off: time.Duration(u * float64(ModelHuygens.Err()))}
	case ModelChrony:
		return NewWandering(f.rng, ModelChrony.Err(), 30*time.Second, f.Horizon)
	case ModelNtpd:
		return NewWandering(f.rng, ModelNtpd.Err(), 60*time.Second, f.Horizon)
	case ModelBad:
		// Unstable NTP: large offsets that change abruptly.
		return NewWandering(f.rng, ModelBad.Err(), 5*time.Second, f.Horizon)
	}
	return Perfect{}
}

// MeasureError estimates the mean absolute synchronization error across a set
// of clocks sampled over [0, horizon], mirroring the paper's use of Huygens'
// real-time monitor to report Table 3's error column.
func MeasureError(cs []Clock, horizon time.Duration, samples int) time.Duration {
	if len(cs) == 0 || samples <= 0 {
		return 0
	}
	var sum time.Duration
	var n int
	for i := 0; i < samples; i++ {
		t := time.Duration(int64(horizon) * int64(i) / int64(samples))
		for _, c := range cs {
			d := c.Read(t) - t
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	return sum / time.Duration(n)
}
