package tiga

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

func testCluster(t *testing.T, seed int64, cfg Config, pl Placement, model clocks.Model) (*simnet.Sim, *Cluster) {
	t.Helper()
	sim := simnet.NewSim(seed)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0))
	cf := clocks.NewFactory(model, time.Minute, seed+1)
	c := NewCluster(net, cfg, pl, cf, func(shard int, st *store.Store) {
		for i := 0; i < 100; i++ {
			st.Seed(fmt.Sprintf("k%d-%d", shard, i), txn.EncodeInt(0))
		}
	})
	c.Start()
	return sim, c
}

func incTxn(shards ...int) *txn.Txn {
	t := &txn.Txn{Pieces: make(map[int]*txn.Piece)}
	for _, s := range shards {
		t.Pieces[s] = txn.IncrementPiece(fmt.Sprintf("k%d-0", s))
	}
	return t
}

func TestSingleTxnFastPathColocated(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 1, cfg, ColocatedPlacement([]simnet.Region{0}), clocks.ModelPerfect)
	if c.Mode() != ModePreventive {
		t.Fatalf("expected preventive mode for co-located leaders, got %v", c.Mode())
	}
	var res *txn.Result
	sim.At(100*time.Millisecond, func() {
		c.Coords[0].Submit(incTxn(0, 1, 2), func(r txn.Result) { res = &r })
	})
	sim.Run(2 * time.Second)
	if res == nil {
		t.Fatal("transaction never committed")
	}
	if !res.OK || !res.FastPath {
		t.Fatalf("want fast-path commit, got %+v", *res)
	}
	for _, sh := range []int{0, 1, 2} {
		if got := txn.DecodeInt(res.PerShard[sh]); got != 1 {
			t.Errorf("shard %d result = %d, want 1", sh, got)
		}
	}
	// Commit latency should be ~1 WRTT + headroom: the coordinator is in
	// region 0 with leaders; the super quorum spans regions (OWD <= 62ms),
	// so expect roughly headroom (72ms) + return OWD.
}

func TestConflictingTxnsAllCommitAndReplicasConverge(t *testing.T) {
	for _, mode := range []Mode{ModePreventive, ModeDetective} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig(3, 1)
			cfg.Mode = mode
			sim, c := testCluster(t, 7, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelChrony)
			committed := 0
			const n = 60
			for i := 0; i < n; i++ {
				i := i
				co := c.Coords[i%3]
				sim.At(time.Duration(100+i)*time.Millisecond, func() {
					co.Submit(incTxn(0, 1, 2), func(r txn.Result) {
						if r.OK {
							committed++
						}
					})
				})
			}
			sim.Run(5 * time.Second)
			if committed != n {
				t.Fatalf("committed %d of %d", committed, n)
			}
			// Every replica of every shard must converge on the same store
			// and the same log prefix (wait: logs may trail by commitPoint;
			// compare leader log with synced prefixes).
			for sh := 0; sh < 3; sh++ {
				leader := c.Servers[sh][0]
				if got := txn.DecodeInt(leader.Store().Get(fmt.Sprintf("k%d-0", sh))); got != n {
					t.Errorf("shard %d counter = %d, want %d", sh, got, n)
				}
				llog := leader.LogIDs()
				for rep := 1; rep < 3; rep++ {
					f := c.Servers[sh][rep]
					flog := f.LogIDs()
					if len(flog) > len(llog) {
						t.Fatalf("follower log longer than leader's")
					}
					for i := range flog {
						if flog[i] != llog[i] {
							t.Fatalf("shard %d replica %d log diverges at %d", sh, rep, i)
						}
					}
					if f.SyncPoint() != len(llog) {
						t.Errorf("shard %d replica %d sync-point %d, want %d", sh, rep, f.SyncPoint(), len(llog))
					}
				}
			}
		})
	}
}

func TestDetectiveModeRotatedLeaders(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 11, cfg, RotatedPlacement([]simnet.Region{0, 1, 2}, 3), clocks.ModelChrony)
	if c.Mode() != ModeDetective {
		t.Fatalf("expected detective mode for rotated leaders, got %v", c.Mode())
	}
	committed := 0
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(100+i*3)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(8 * time.Second)
	// Highly contended chains can exceed the retry window near the tail;
	// require near-complete commitment.
	if committed < n*9/10 {
		t.Fatalf("committed %d of %d", committed, n)
	}
	for sh := 0; sh < 3; sh++ {
		got := txn.DecodeInt(c.Servers[sh][0].Store().Get(fmt.Sprintf("k%d-0", sh)))
		if int(got) < committed {
			t.Errorf("shard %d counter = %d < %d commits", sh, got, committed)
		}
	}
}

func TestLeaderFailureRecovery(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 13, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelPerfect)
	committed := 0
	var after int
	const n = 80
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(100+i*20) * time.Millisecond
		sim.At(at, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
					if sim.Now() > 800*time.Millisecond {
						after++
					}
				}
			})
		})
	}
	// Kill shard 1's leader mid-run.
	sim.At(700*time.Millisecond, func() { c.KillServer(1, 0) })
	sim.Run(20 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d after leader failure", committed, n)
	}
	if after == 0 {
		t.Fatal("no commits after failure — recovery did not happen")
	}
	// The new view must have elected a different leader for shard 1.
	if c.VMs[0].gview == 0 {
		t.Fatal("view manager never changed views")
	}
	newLeader := c.Leader(1)
	if newLeader.replica == 0 {
		t.Fatal("failed leader still leading")
	}
	// All shards' counters must equal n on the current leaders.
	for sh := 0; sh < 3; sh++ {
		if got := txn.DecodeInt(c.Leader(sh).Store().Get(fmt.Sprintf("k%d-0", sh))); got != n {
			t.Errorf("shard %d counter = %d, want %d", sh, got, n)
		}
	}
}
