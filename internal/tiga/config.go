// Package tiga implements the Tiga protocol (SOSP 2025): a consolidated
// concurrency-control + consensus protocol that commits strictly-serializable
// geo-distributed transactions in one wide-area round trip by proactively
// ordering them with synchronized clocks.
//
// The package follows the paper's structure:
//
//   - Coordinator (§3.1, §3.4, Alg. 3): measures one-way delays, assigns each
//     transaction a future timestamp, multicasts it, and runs the fast/slow
//     quorum checks.
//   - Server (§3.2–§3.7, Alg. 1/2): buffers transactions in a timestamp-
//     ordered priority queue, releases them when the local clock passes their
//     timestamps, executes optimistically at leaders, runs inter-leader
//     timestamp agreement, and synchronizes logs to followers.
//   - View manager (§4, Alg. 4/5/6): detects failures, elects co-located
//     leaders, and drives log reconstruction and cross-shard timestamp
//     verification during view changes.
package tiga

import (
	"time"

	"tiga/internal/hashlog"
	"tiga/internal/pool"
	"tiga/internal/simnet"
	"tiga/internal/txn"
)

// Mode selects when leaders run timestamp agreement relative to execution
// (§3.8).
type Mode int

// Agreement scheduling modes.
const (
	// ModeAuto lets the view manager pick: preventive when leaders can be
	// co-located (inter-leader OWD under the threshold), detective otherwise.
	ModeAuto Mode = iota
	// ModeDetective executes optimistically before agreement and revokes on
	// mismatch (Fig 3) — used when leaders are separated across regions.
	ModeDetective
	// ModePreventive agrees on the timestamp before executing (Fig 6) — the
	// default when all leaders share a region, eliminating rollback.
	ModePreventive
)

func (m Mode) String() string {
	switch m {
	case ModeDetective:
		return "detective"
	case ModePreventive:
		return "preventive"
	}
	return "auto"
}

// Config parameterizes a Tiga deployment.
type Config struct {
	Shards int // m
	F      int // tolerated failures per shard; 2f+1 replicas
	Mode   Mode
	// Delta is the headroom safety margin added on top of the measured
	// super-quorum OWD (Δ = 10 ms in the paper, §3.1).
	Delta time.Duration
	// HeadroomDelta is the experiment knob from §5.6 (Fig 13): an offset
	// added to the estimated headroom, possibly negative.
	HeadroomDelta time.Duration
	// ZeroHeadroom reproduces the 0-Hdrm baseline of Fig 13: the sending
	// time is used directly as the timestamp.
	ZeroHeadroom bool
	// EpsilonBound, when positive, enables the coordination-free mode
	// sketched in §6: leaders skip inter-leader timestamp agreement and
	// instead hold each transaction until their clock passes T.t + ε.
	EpsilonBound time.Duration
	// ColocationThreshold is the maximum inter-leader OWD for which the view
	// manager still chooses the preventive mode (10 ms in the paper, §3.8).
	ColocationThreshold time.Duration
	// ExecCost is the CPU time charged per piece execution.
	ExecCost time.Duration
	// PQCost is the CPU time charged per priority-queue operation.
	PQCost time.Duration
	// RetryTimeout is how long a coordinator waits before re-submitting.
	RetryTimeout time.Duration
	// SyncPointEvery is how often followers report sync-points to leaders.
	SyncPointEvery time.Duration
	// HeartbeatEvery / HeartbeatTimeout drive failure detection (§4).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// BatchSlowReplies enables the Appendix E optimization: followers answer
	// periodic coordinator inquiries instead of pushing per-entry replies.
	BatchSlowReplies bool
	// CheckpointEvery triggers a store snapshot every N committed entries.
	CheckpointEvery int
	// LocalReads enables the local snapshot-read path: servers retain
	// committed version history, maintain monotonic safe-time watermarks
	// (leaders from their synchronized clocks, followers from leader
	// broadcasts over applied log prefixes), and serve read-only
	// transactions from the nearest replica at 0 WRTT. Default off: the
	// machinery adds messages and timers, so golden runs stay byte-
	// identical without it.
	LocalReads bool
	// ReadStaleness is how far in the past local read-only transactions
	// pick their snapshot. 0 gives strong (freshest-possible) reads that
	// block for the SAFETIME delay whenever the serving replica's
	// watermark lags the coordinator's clock; a positive bound trades
	// staleness for near-zero waits.
	ReadStaleness time.Duration
	// VersionGC prunes committed version history that no snapshot read can
	// observe anymore: the leader's safe-time tick computes a GC horizon
	// from the minimum replica watermark minus ReadStaleness (and a fixed
	// in-flight slack) and piggybacks it on the existing safe-time
	// broadcast. Only meaningful with LocalReads (the default mode already
	// garbage-collects at commit time).
	VersionGC bool
	// AdmitCap bounds a coordinator's admitted in-flight transactions;
	// <= 0 disables admission control (default). Under open-loop arrival
	// this is the backpressure that turns overload into bounded-latency
	// shedding instead of congestion collapse.
	AdmitCap int
	// AdmitQueue bounds the admission wait queue once AdmitCap is reached.
	AdmitQueue int
	// ShedOldest selects the shed policy when the queue is full: evict the
	// oldest queued transaction (true) or refuse the newcomer (false).
	ShedOldest bool
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig(shards, f int) Config {
	return Config{
		Shards:              shards,
		F:                   f,
		Mode:                ModeAuto,
		Delta:               10 * time.Millisecond,
		ColocationThreshold: 10 * time.Millisecond,
		ExecCost:            1200 * time.Nanosecond,
		PQCost:              300 * time.Nanosecond,
		RetryTimeout:        1200 * time.Millisecond,
		SyncPointEvery:      5 * time.Millisecond,
		HeartbeatEvery:      300 * time.Millisecond,
		HeartbeatTimeout:    1200 * time.Millisecond,
		CheckpointEvery:     2000,
	}
}

// Replicas returns the replication degree 2f+1.
func (c Config) Replicas() int { return 2*c.F + 1 }

// SuperQuorum returns the fast-path quorum size 1+f+⌈f/2⌉ (§3.4).
func (c Config) SuperQuorum() int { return 1 + c.F + (c.F+1)/2 }

// ---- Wire messages ----
// All messages carry view identifiers; receivers reject mismatching views
// (Appendix A).
//
// The per-transaction messages (txnMsg, fastReply, slowReply, tsNotification,
// logSyncMsg) and the per-tick ones (syncPointMsg, safeTimeMsg) travel as
// pooled pointers drawn from the cluster's freelists below; the low-rate
// view-change, probe, and fetch messages stay plain values. Lifecycle
// discipline for pooled messages:
//
//   - the sender Gets a fresh object per destination — one object is never
//     shared across Sends, so a multicast is N pooled copies;
//   - the receiver's handle() recycles the object after its handler returns,
//     which requires handlers to copy (never alias) anything they retain —
//     pendingSync, safePairs, and the coordinator reply arrays all store
//     struct copies, while pointers reaching THROUGH a message (*txn.Txn,
//     result bytes) are not pool-owned and may be kept;
//   - messages dropped in flight (loss, partitions, crashes) simply leak from
//     the freelist and are re-allocated on demand.
//
// All Gets and Puts happen on one simulation's event loop, so recycling order
// is deterministic and runs stay byte-identical across -workers settings.

// msgPools holds one cluster's wire-message freelists (see pool.Free for the
// determinism rationale; pool.Check arms double-free detection in tests).
type msgPools struct {
	txn      *pool.Free[txnMsg]
	fastRep  *pool.Free[fastReply]
	slowRep  *pool.Free[slowReply]
	tsNote   *pool.Free[tsNotification]
	logSync  *pool.Free[logSyncMsg]
	syncPt   *pool.Free[syncPointMsg]
	safeTime *pool.Free[safeTimeMsg]
}

func newMsgPools() *msgPools {
	return &msgPools{
		txn:      pool.New[txnMsg](),
		fastRep:  pool.New[fastReply](),
		slowRep:  pool.New[slowReply](),
		tsNote:   pool.New[tsNotification](),
		logSync:  pool.New[logSyncMsg](),
		syncPt:   pool.New[syncPointMsg](),
		safeTime: pool.New[safeTimeMsg](),
	}
}

type viewInfo struct {
	GView int
	LView int
}

// txnMsg is the coordinator's multicast (step 1, Fig 3).
type txnMsg struct {
	T         *txn.Txn
	TS        txn.Timestamp
	SendClock time.Duration // coordinator clock at send, for OWD sampling
	Coord     simnet.NodeID
	GView     int
	Retry     int
}

// fastReply is a server's fast-path reply (§3.4).
type fastReply struct {
	viewInfo
	Shard    int
	Replica  int
	ID       txn.ID
	TS       txn.Timestamp
	Hash     hashlog.Hash
	Ret      []byte // execution result; nil from followers
	IsLeader bool
	LogPos   int           // leader only: assigned log position (Appendix E)
	OWD      time.Duration // measured arrival delay sample for the estimator

	// Span stamps (internal/trace): the server-side lifecycle of this
	// attempt in sim time, carried on the reply so the coordinator can
	// reconstruct the decisive chain at finish without any tracker-side
	// state. ArriveS = txnMsg arrival, EligS = future-timestamp expiry
	// (became eligible for release), RelS = priority-queue release, DoneS =
	// execution departure. RecvS is stamped by the coordinator when the
	// reply arrives. All zero on untraced runs.
	ArriveS, EligS, RelS, DoneS, RecvS time.Duration
}

// slowReply notifies the coordinator a follower synced the entry (§3.7).
type slowReply struct {
	viewInfo
	Shard   int
	Replica int
	ID      txn.ID
	TS      txn.Timestamp
	// RecvS is the coordinator-side arrival stamp (see fastReply).
	RecvS time.Duration
}

// tsNotification is the inter-leader timestamp agreement message (§3.5).
type tsNotification struct {
	viewInfo
	Shard int // sender's shard
	ID    txn.ID
	TS    txn.Timestamp
	Round int // 1 or 2
	T     *txn.Txn
}

// logSyncMsg replicates a log entry from leader to followers (§3.7).
type logSyncMsg struct {
	viewInfo
	Shard       int
	Pos         int
	ID          txn.ID
	TS          txn.Timestamp
	T           *txn.Txn
	CommitPoint int
}

// syncPointMsg is a follower's periodic sync-point report. W piggybacks the
// follower's adopted safe-time watermark (zero when local reads are off) so
// the leader can compute the version-GC horizon without extra messages.
type syncPointMsg struct {
	viewInfo
	Shard     int
	Replica   int
	SyncPoint int
	W         time.Duration
}

// safeTimeMsg is the leader's periodic safe-time broadcast for the local
// snapshot-read path (sent only when Config.LocalReads is on): watermark W
// is valid for the log prefix [0, N) — a follower adopts W once it has
// applied N entries, because every transaction that commits with timestamp
// <= W is contained in that prefix (admission keeps later arrivals above
// the published watermark). CP piggybacks the leader's commit-point so
// followers can apply without waiting for the next log-sync message.
// GC piggybacks the leader's version-GC horizon (zero unless
// Config.VersionGC): every committed version with a strictly older
// replacement at or below GC is unobservable by any live or future snapshot
// read, so followers prune to it when they adopt the watermark.
type safeTimeMsg struct {
	viewInfo
	Shard int
	W     time.Duration
	N     int
	CP    int
	GC    time.Duration
}

// slowInquiry / slowInquiryRep implement the Appendix E batched slow path:
// the coordinator periodically asks followers for their views + sync-points.
type slowInquiry struct {
	Coord simnet.NodeID
}

type slowInquiryRep struct {
	viewInfo
	Shard     int
	Replica   int
	SyncPoint int
}

// probeMsg / probeRep bootstrap the coordinator's OWD estimates (§3.1).
type probeMsg struct {
	SendClock time.Duration
	Coord     simnet.NodeID
}

type probeRep struct {
	Shard   int
	Replica int
	OWD     time.Duration
}

// ---- View change messages (§4, Appendix B) ----

type heartbeatMsg struct {
	Shard   int
	Replica int
}

type viewChangeReq struct {
	GView int
	GVec  []int
	GMode Mode
}

type viewChangeMsg struct {
	GView     int
	GVec      []int
	GMode     Mode
	LView     int
	Shard     int
	Replica   int
	LNV       int // last normal local view
	SyncPoint int
	Log       []logEntry
}

type tsVerification struct {
	GView int
	Shard int
	Info  []verifyEntry
}

type verifyEntry struct {
	ID     txn.ID
	TS     txn.Timestamp
	T      *txn.Txn
	Shards []int
}

type startViewMsg struct {
	GView int
	GVec  []int
	GMode Mode
	LView int
	Shard int
	Log   []logEntry
}

type stateTransferReq struct {
	GView   int
	LView   int
	Shard   int
	Replica int
}

type stateTransferRep struct {
	GView     int
	LView     int
	Log       []logEntry
	SyncPoint int
}

// vmInquire / vmInfo let coordinators and rejoining servers fetch the view.
type vmInquire struct{ From simnet.NodeID }

type vmInfo struct {
	GView int
	GVec  []int
	GMode Mode
}

// VM-internal replication (Algorithm 4).
type cmPrepare struct {
	VView  int
	PGView int
	PGVec  []int
	PGMode Mode
}

type cmPrepareReply struct {
	VView  int
	VRid   int
	PGView int
}

type cmCommit struct {
	VView int
	GView int
	GVec  []int
	GMode Mode
}

// fetchTxnReq asks another leader for a transaction body the coordinator
// failed to deliver here (Appendix B, coordinator failure).
type fetchTxnReq struct {
	Shard int
	ID    txn.ID
}

type fetchTxnRep struct {
	ID txn.ID
	T  *txn.Txn
	TS txn.Timestamp
}
