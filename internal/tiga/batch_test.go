package tiga

import (
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/txn"
)

// TestBatchedSlowReplies exercises the Appendix E optimization end to end:
// followers answer periodic coordinator inquiries instead of pushing
// per-entry slow replies, and transactions still commit.
func TestBatchedSlowReplies(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.BatchSlowReplies = true
	sim, c := testCluster(t, 71, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelChrony)
	committed := 0
	const n = 30
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(100+i*20)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(6 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d with batched slow replies", committed, n)
	}
}
