package tiga

import (
	"slices"
	"sort"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/hashlog"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Server status values (Figure 4).
type status int

const (
	statusNormal status = iota
	statusViewChange
	statusRecovering
)

// logEntry is one entry of the replicated log: a transaction with its agreed
// timestamp.
type logEntry struct {
	ID txn.ID
	TS txn.Timestamp
	T  *txn.Txn
}

// rec is the server's bookkeeping for one transaction.
type rec struct {
	id    txn.ID
	t     *txn.Txn
	piece *txn.Piece
	ts    txn.Timestamp // this server's current view of T.t
	coord simnet.NodeID

	inPQ     bool
	held     bool // follower: arrived too late, waiting for log-sync
	executed bool
	released bool
	result   []byte
	owd      time.Duration

	// Timestamp agreement state (§3.5). round1/round2 hold, per shard, the
	// timestamp that shard's leader announced in that round.
	proposed  bool // preventive mode: round-1 notification sent
	round     int
	round1    tsSet
	round2    tsSet
	agreed    bool // agreement finished; safe to release once (re-)executed
	replyHash hashlog.Hash
	fetching  bool

	// Span stamps (internal/trace), in sim time, copied onto outgoing fast
	// replies: arriveS = txnMsg arrival, eligS = first expired-prefix scan
	// that reached the record (timestamp expiry), relS = picked for
	// release/execution. Plain field writes — no per-txn cost beyond them.
	arriveS, eligS, relS time.Duration
}

func (r *rec) multiShard() bool { return r.t != nil && len(r.t.Pieces) > 1 }

// shardTS is one shard leader's announced timestamp in an agreement round.
type shardTS struct {
	shard int
	ts    txn.Timestamp
}

// tsSet is a small shard -> timestamp map backed by an inline array: the
// agreement state of a transaction spans its involved shards (2–4 in every
// workload here), so a linear scan beats hashing and — crucially for the
// per-transaction allocation budget — the zero value is ready to use and
// single-shard transactions and followers never populate it at all, where
// the map form cost two eager allocations per rec on every replica. Entries
// alias the inline buffer, so a rec must not be copied once populated (recs
// travel by pointer only).
type tsSet struct {
	items []shardTS
	buf   [4]shardTS
}

func (s *tsSet) set(shard int, ts txn.Timestamp) {
	for i := range s.items {
		if s.items[i].shard == shard {
			s.items[i].ts = ts
			return
		}
	}
	if s.items == nil {
		s.items = s.buf[:0]
	}
	s.items = append(s.items, shardTS{shard: shard, ts: ts})
}

// get returns the zero timestamp for an absent shard, like a map lookup.
func (s *tsSet) get(shard int) txn.Timestamp {
	for i := range s.items {
		if s.items[i].shard == shard {
			return s.items[i].ts
		}
	}
	return txn.Timestamp{}
}

func (s *tsSet) len() int { return len(s.items) }

// prioQueue holds pending transactions ordered by timestamp (pq, Figure 4).
type prioQueue struct{ items []*rec }

func (q *prioQueue) len() int { return len(q.items) }

func (q *prioQueue) insert(r *rec) {
	i := sort.Search(len(q.items), func(i int) bool { return r.ts.Less(q.items[i].ts) })
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = r
	r.inPQ = true
}

func (q *prioQueue) erase(r *rec) {
	if !r.inPQ {
		return
	}
	i := sort.Search(len(q.items), func(i int) bool { return !q.items[i].ts.Less(r.ts) })
	for ; i < len(q.items); i++ {
		if q.items[i] == r {
			q.items = append(q.items[:i], q.items[i+1:]...)
			r.inPQ = false
			return
		}
		if r.ts.Less(q.items[i].ts) {
			break
		}
	}
	// Fallback linear scan (should not happen; keeps the queue consistent).
	for i, it := range q.items {
		if it == r {
			q.items = append(q.items[:i], q.items[i+1:]...)
			break
		}
	}
	r.inPQ = false
}

func (q *prioQueue) reposition(r *rec, ts txn.Timestamp) {
	q.erase(r)
	r.ts = ts
	q.insert(r)
}

// Server is one Tiga replica of one shard (Algorithm 1/2).
type Server struct {
	cfg     Config
	cluster *Cluster
	node    *simnet.Node
	clock   clocks.Clock

	shard   int
	replica int

	gview  int
	lview  int
	gvec   []int
	gmode  Mode
	status status
	lnv    int // last-normal-view

	st   *store.Store
	pq   prioQueue
	recs map[txn.ID]*rec
	rMap map[string]txn.Timestamp
	wMap map[string]txn.Timestamp

	log     []logEntry // leader: the log; follower: synced prefix
	tail    map[txn.ID]logEntry
	relHash hashlog.Incremental

	syncPoint   int
	commitPoint int
	applied     int // follower: entries applied to the store
	pendingSync map[int]logSyncMsg

	followerSP map[int]int // leader: replica -> reported sync-point

	checkpoint    *store.Store
	checkpointPos int
	checkpointIDs []txn.ID

	pumpAt  time.Duration // earliest scheduled pump deadline (0 = none)
	pumpSeq uint64
	pumping bool
	repump  bool

	// Reused hot-path scratch. blockedR/blockedW are pumpOnce's conflict
	// shadow sets (cleared after each pump instead of reallocated per pump);
	// spScratch backs the commit-point quantile in onSyncPoint; idScratch
	// backs resendAgreements' deterministic ID ordering; pumpFire/flushFire
	// are the persistent bodies of the gated pump and safe-flush timers.
	blockedR  map[string]bool
	blockedW  map[string]bool
	spScratch []int
	idScratch []txn.ID
	pumpFire  func()
	flushFire func()

	// Local snapshot-read state (active only with Config.LocalReads).
	safeTime  time.Duration    // monotonic safe-time watermark (clock domain)
	safeLie   time.Duration    // test hook: fault-injected watermark inflation
	safePairs []safeTimeMsg    // follower: (W, N) pairs awaiting applied >= N
	waiters   snapread.Waiters // reads blocked behind the watermark
	flushSeq  uint64           // dedup for the leader's waiter-flush timer
	flushAt   time.Duration
	followerW map[int]time.Duration // leader: replica -> reported watermark (version GC)
	gcHorizon time.Duration         // monotonic version-GC horizon (Config.VersionGC)

	// View change state (Algorithm 5).
	vQuorum map[int]*viewChangeMsg
	tQuorum map[int]*tsVerification
	rebuilt bool

	// Stats exposed to the harness.
	Rollbacks  int64
	Executions int64
	PumpCalls  int64
	PumpScan   int64
}

// newServer wires a server into the cluster (called by NewCluster).
func newServer(c *Cluster, shard, replica int, node *simnet.Node, clk clocks.Clock) *Server {
	s := &Server{
		cfg: c.Cfg, cluster: c, node: node, clock: clk,
		shard: shard, replica: replica,
		gvec:  make([]int, c.Cfg.Shards),
		gmode: c.initialMode,
		st:    store.New(),
		recs:  make(map[txn.ID]*rec),
		rMap:  make(map[string]txn.Timestamp),
		wMap:  make(map[string]txn.Timestamp),
		tail:  make(map[txn.ID]logEntry),

		pendingSync: make(map[int]logSyncMsg),
		followerSP:  make(map[int]int),
		followerW:   make(map[int]time.Duration),
		checkpoint:  store.New(),
	}
	copy(s.gvec, c.initialGVec)
	s.lview = s.gvec[shard]
	if c.Cfg.LocalReads {
		s.st.EnableSnapshots()
	}
	s.pumpFire = func() { s.pumpAt = 0; s.pump() }
	s.flushFire = func() { s.flushAt = 0; s.advanceSafeTime() }
	node.SetHandler(s.handle)
	return s
}

// Store exposes the shard store (tests, workload seeding).
func (s *Server) Store() *store.Store { return s.st }

// Log returns a copy of the server's log entries (tests).
func (s *Server) Log() []logEntry { return append([]logEntry(nil), s.log...) }

// LogIDs returns the ids of synced log entries in order (tests).
func (s *Server) LogIDs() []txn.ID {
	out := make([]txn.ID, len(s.log))
	for i, e := range s.log {
		out[i] = e.ID
	}
	return out
}

// SyncPoint returns the current sync-point (tests).
func (s *Server) SyncPoint() int { return s.syncPoint }

// CommitPoint returns the current commit-point (tests).
func (s *Server) CommitPoint() int { return s.commitPoint }

// IsLeader reports whether this server leads its shard in its current view.
func (s *Server) IsLeader() bool { return s.lview%(s.cfg.Replicas()) == s.replica }

// Node returns the underlying simnet node.
func (s *Server) Node() *simnet.Node { return s.node }

func (s *Server) now() time.Duration { return s.clock.Read(s.cluster.Net.Sim().Now()) }

// start launches the server's periodic tasks.
func (s *Server) start() {
	// Periodic sweep: drain any expired queue prefix. The timer chain in
	// schedulePump is the low-latency path; this bounds staleness even if a
	// deadline is missed. Followers also report sync-points; everyone
	// heartbeats the view manager.
	s.node.Every(s.cfg.SyncPointEvery, func() bool {
		s.pump()
		if s.status == statusNormal && !s.IsLeader() {
			m := s.cluster.msgs.syncPt.Get()
			*m = syncPointMsg{
				viewInfo:  s.views(),
				Shard:     s.shard,
				Replica:   s.replica,
				SyncPoint: s.syncPoint,
				W:         s.safeTime,
			}
			s.node.Send(s.leaderNode(), m)
		}
		if s.cfg.LocalReads && s.status == statusNormal && s.IsLeader() {
			s.broadcastSafeTime()
		}
		return true
	})
	s.node.Every(s.cfg.HeartbeatEvery, func() bool {
		s.node.Send(s.cluster.vmLeaderNode(), heartbeatMsg{Shard: s.shard, Replica: s.replica})
		return true
	})
	// Re-broadcast stalled agreements (lost notifications) and re-send
	// view-change messages if a view change stalls (lost start-view).
	s.node.Every(s.cfg.RetryTimeout/2, func() bool {
		s.resendAgreements()
		if s.status == statusViewChange && !s.IsLeader() {
			s.node.Send(s.leaderNode(), viewChangeMsg{
				GView: s.gview, GVec: append([]int(nil), s.gvec...), GMode: s.gmode,
				LView: s.lview, Shard: s.shard, Replica: s.replica,
				LNV: s.lnv, SyncPoint: s.syncPoint, Log: s.flushLog(),
			})
		}
		return true
	})
}

func (s *Server) views() viewInfo { return viewInfo{GView: s.gview, LView: s.lview} }

func (s *Server) leaderNode() simnet.NodeID {
	return s.cluster.serverNode(s.shard, s.lview%s.cfg.Replicas())
}

// handle dispatches incoming messages. Pooled hot-path messages are recycled
// here, after their handler returns — handlers copy whatever they retain.
func (s *Server) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *txnMsg:
		s.onTxn(from, m)
		s.cluster.msgs.txn.Put(m)
	case *tsNotification:
		s.onTsNotification(from, m)
		s.cluster.msgs.tsNote.Put(m)
	case *logSyncMsg:
		s.onLogSync(m)
		s.cluster.msgs.logSync.Put(m)
	case *syncPointMsg:
		s.onSyncPoint(m)
		s.cluster.msgs.syncPt.Put(m)
	case *safeTimeMsg:
		s.onSafeTime(m)
		s.cluster.msgs.safeTime.Put(m)
	case snapread.Req:
		s.onSnapRead(from, m)
	case probeMsg:
		s.node.Send(m.Coord, probeRep{Shard: s.shard, Replica: s.replica, OWD: s.now() - m.SendClock})
	case slowInquiry:
		s.node.Send(m.Coord, slowInquiryRep{viewInfo: s.views(), Shard: s.shard, Replica: s.replica, SyncPoint: s.syncPoint})
	case fetchTxnReq:
		s.onFetchTxn(from, m)
	case fetchTxnRep:
		s.onFetchTxnRep(m)
	case viewChangeReq:
		s.onViewChangeReq(m)
	case viewChangeMsg:
		s.onViewChange(&m)
	case tsVerification:
		s.onTsVerification(&m)
	case startViewMsg:
		s.onStartView(m)
	case stateTransferReq:
		s.onStateTransferReq(from, m)
	case stateTransferRep:
		s.onStateTransferRep(m)
	case vmInfo:
		s.onVMInfo(m)
	}
}

// ---- §3.2 Conflict detection and timestamp update ----

// conflictOK reports whether ts is larger than every released conflicting
// transaction's timestamp on the given read/write sets (Alg. 1 line 2).
func (s *Server) conflictOK(p *txn.Piece, ts txn.Timestamp) bool {
	for _, k := range p.ReadSet {
		if w, ok := s.wMap[k]; ok && !w.Less(ts) {
			return false
		}
	}
	for _, k := range p.WriteSet {
		if w, ok := s.wMap[k]; ok && !w.Less(ts) {
			return false
		}
		if r, ok := s.rMap[k]; ok && !r.Less(ts) {
			return false
		}
	}
	return true
}

// minAcceptable returns the smallest timestamp time that passes conflict
// detection for piece p (used for leader timestamp updates).
func (s *Server) minAcceptable(p *txn.Piece) time.Duration {
	var max txn.Timestamp
	for _, k := range p.ReadSet {
		if w, ok := s.wMap[k]; ok && max.Less(w) {
			max = w
		}
	}
	for _, k := range p.WriteSet {
		if w, ok := s.wMap[k]; ok && max.Less(w) {
			max = w
		}
		if r, ok := s.rMap[k]; ok && max.Less(r) {
			max = r
		}
	}
	return max.Time + 1
}

func (s *Server) onTxn(from simnet.NodeID, m *txnMsg) {
	if s.status != statusNormal || m.GView != s.gview {
		return
	}
	if r, ok := s.recs[m.ID()]; ok {
		// Duplicate (coordinator retry / retransmission): at-most-once —
		// re-send the reply instead of re-processing. The record may have
		// been created by log-sync or a leader fetch, so (re)learn the
		// coordinator address from the message.
		r.coord = m.Coord
		if r.t == nil {
			// The record is a placeholder from a timestamp notification
			// (the original multicast was lost): adopt the body now.
			r.t = m.T
			r.piece = m.T.Pieces[s.shard]
			r.ts = m.TS
			r.owd = s.now() - m.SendClock
			r.arriveS = s.cluster.Net.Sim().Now()
			s.admit(r)
			s.checkAgreement(r)
			return
		}
		if !r.released && !r.agreed && r.ts.Less(m.TS) && m.Retry >= 2 {
			// Retry with a larger timestamp (Appendix B): re-position the
			// pending transaction so every leader's queue re-converges on
			// the retry timestamp, breaking cross-leader blocking cycles
			// caused by divergent local timestamp bumps. An optimistic
			// execution at the stale timestamp is revoked (as in Case-3).
			if r.executed {
				s.st.Revoke(r.id)
				s.relHash.Remove(r.id, r.ts)
				r.executed = false
				r.result = nil
				s.Rollbacks++
			}
			if r.inPQ {
				s.pq.reposition(r, m.TS)
				s.node.Work(s.cfg.PQCost)
			} else {
				r.ts = m.TS
				if r.held && s.conflictOK(r.piece, r.ts) {
					r.held = false
					s.pq.insert(r)
				}
			}
			s.schedulePump(r.ts.Time)
			s.pump()
			return
		}
		s.resendReply(r)
		return
	}
	r := &rec{
		id:      m.ID(),
		t:       m.T,
		piece:   m.T.Pieces[s.shard],
		ts:      m.TS,
		coord:   m.Coord,
		owd:     s.now() - m.SendClock,
		arriveS: s.cluster.Net.Sim().Now(),
	}
	s.recs[r.id] = r
	s.admit(r)
}

// admit runs conflict detection and queue insertion for a new transaction
// (Alg. 1 lines 1–5).
func (s *Server) admit(r *rec) {
	s.node.Work(s.cfg.PQCost)
	if s.cfg.LocalReads && s.IsLeader() && r.ts.Time <= s.safeTime {
		// A straggler below the published safe-time watermark: lift it
		// above the watermark so no transaction ever commits under a
		// snapshot already served. The coordinator sees the changed
		// timestamp and falls back to the slow path, as with any bump.
		r.ts = txn.Timestamp{Time: s.safeTime + 1, Coord: r.ts.Coord, Seq: r.ts.Seq}
	}
	if s.conflictOK(r.piece, r.ts) {
		s.pq.insert(r)
	} else if s.IsLeader() {
		// Leader updates the timestamp to its local clock (line 4), pushed
		// past any released conflicting transaction.
		t := s.now()
		if min := s.minAcceptable(r.piece); min > t {
			t = min
		}
		r.ts = txn.Timestamp{Time: t, Coord: r.ts.Coord, Seq: r.ts.Seq}
		s.pq.insert(r)
	} else {
		// Follower: hold and wait for the slow path (§3.2).
		r.held = true
		return
	}
	s.schedulePump(r.ts.Time)
}

func (m txnMsg) ID() txn.ID { return m.T.ID }

func (s *Server) resendReply(r *rec) {
	if !r.released && !r.executed {
		return
	}
	if s.IsLeader() {
		// Resend the reply as originally issued (hash at release time).
		m := s.cluster.msgs.fastRep.Get()
		*m = fastReply{
			viewInfo: s.views(), Shard: s.shard, Replica: s.replica,
			ID: r.id, TS: r.ts, Hash: r.replyHash, Ret: r.result,
			IsLeader: true, LogPos: len(s.log),
		}
		s.node.Send(r.coord, m)
	} else if r.released {
		// Synced already? Then the slow reply is what the coordinator needs.
		if _, inTail := s.tail[r.id]; !inTail {
			m := s.cluster.msgs.slowRep.Get()
			*m = slowReply{viewInfo: s.views(), Shard: s.shard, Replica: s.replica, ID: r.id, TS: r.ts}
			s.node.Send(r.coord, m)
		} else {
			m := s.cluster.msgs.fastRep.Get()
			*m = fastReply{
				viewInfo: s.views(), Shard: s.shard, Replica: s.replica,
				ID: r.id, TS: r.ts, Hash: r.replyHash,
			}
			s.node.Send(r.coord, m)
		}
	}
}

// ---- §3.3 release & optimistic execution ----

// schedulePump arranges for pump to run once the local clock passes tsTime.
// At most one timer is pending at a time: scheduling an earlier deadline
// supersedes the pending one (the stale timer no-ops via the sequence check).
func (s *Server) schedulePump(tsTime time.Duration) {
	if s.cfg.EpsilonBound > 0 {
		tsTime += s.cfg.EpsilonBound
	}
	simNow := s.cluster.Net.Sim().Now()
	at := s.clock.WhenReads(tsTime, simNow)
	if s.pumpAt != 0 && s.pumpAt <= at {
		return // an earlier-or-equal pump is already pending
	}
	s.pumpAt = at
	s.pumpSeq++
	d := at - simNow
	if d < 0 {
		d = 0
	}
	// Gated timer: a stale arm (superseded by an earlier deadline, which
	// bumped pumpSeq) no-ops at fire time, and the persistent pumpFire body
	// replaces a capturing closure per arm. pumpSeq cannot change between the
	// gate check and the CPU-queued run: re-arming requires a deadline
	// strictly before pumpAt, and pumpAt is the deadline firing right now.
	s.node.AfterGate(d, &s.pumpSeq, s.pumpSeq, s.pumpFire)
}

// pump scans the expired prefix of the priority queue in timestamp order and
// processes every transaction not blocked by an earlier conflicting one
// (Alg. 1 lines 6–31). Because the queue is timestamp-ordered and expiry is a
// timestamp threshold, expired transactions always form a prefix.
func (s *Server) pump() {
	if s.status != statusNormal {
		return
	}
	if s.pumping {
		s.repump = true
		return
	}
	s.pumping = true
	defer func() { s.pumping = false }()
	for {
		s.repump = false
		s.pumpOnce()
		if !s.repump {
			return
		}
	}
}

func (s *Server) pumpOnce() {
	s.PumpCalls++
	now := s.now()
	hold := time.Duration(0)
	if s.cfg.EpsilonBound > 0 {
		hold = s.cfg.EpsilonBound
	}
	// The conflict shadow sets are server-owned scratch, cleared after the
	// scan instead of reallocated per pump — pumps run on every sync tick and
	// every release, so fresh maps here dominated the allocation profile.
	dirty := false
	i := 0
	simNow := s.cluster.Net.Sim().Now()
	for i < len(s.pq.items) {
		r := s.pq.items[i]
		if r.ts.Time+hold > now {
			break
		}
		s.PumpScan++
		if r.eligS == 0 {
			// First expired-prefix scan that reached the record: the
			// future-timestamp headroom wait ends here.
			r.eligS = simNow
		}
		if s.blockedBy(r.piece) {
			// Blocked behind an earlier conflicting transaction: it stays,
			// and its own keys block later conflicting transactions too.
			s.addBlocked(r.piece)
			dirty = true
			i++
			continue
		}
		before := len(s.pq.items)
		s.process(r)
		if len(s.pq.items) == before && s.pq.items[i] == r {
			// Still pending (e.g. awaiting agreement): it blocks conflicts.
			s.addBlocked(r.piece)
			dirty = true
			i++
		}
		// If process released or repositioned r, re-examine index i.
	}
	if dirty {
		clear(s.blockedR)
		clear(s.blockedW)
	}
	if i < len(s.pq.items) {
		s.schedulePump(s.pq.items[i].ts.Time)
	}
}

func (s *Server) blockedBy(p *txn.Piece) bool {
	br, bw := s.blockedR, s.blockedW
	if bw != nil {
		for _, k := range p.ReadSet {
			if bw[k] {
				return true
			}
		}
	}
	for _, k := range p.WriteSet {
		if bw != nil && bw[k] {
			return true
		}
		if br != nil && br[k] {
			return true
		}
	}
	return false
}

func (s *Server) addBlocked(p *txn.Piece) {
	if s.blockedR == nil {
		s.blockedR = make(map[string]bool)
		s.blockedW = make(map[string]bool)
	}
	for _, k := range p.ReadSet {
		s.blockedR[k] = true
	}
	for _, k := range p.WriteSet {
		s.blockedW[k] = true
	}
}

// process handles one expired, unblocked transaction.
func (s *Server) process(r *rec) {
	if !s.IsLeader() {
		// Follower: release without executing (§3.3) and fast-reply.
		s.recordMaps(r)
		s.releaseFollower(r)
		return
	}
	preventive := s.gmode == ModePreventive && r.multiShard() && s.cfg.EpsilonBound == 0
	if preventive {
		if !r.proposed {
			s.recordMaps(r)
			r.proposed = true
			r.round = 1
			r.round1.set(s.shard, r.ts)
			s.broadcastNotification(r, 1, r.ts)
			s.checkAgreement(r)
		} else if r.agreed && !r.executed {
			s.executeLeader(r)
			s.releaseLeader(r)
		}
		return
	}
	// Detective mode (or single shard / epsilon mode).
	if !r.executed {
		s.recordMaps(r)
		s.executeLeader(r)
		if !r.multiShard() || s.cfg.EpsilonBound > 0 {
			// Single-shard transactions need no inter-leader agreement; the
			// ε-bound mode replaces agreement with the extended hold (§6).
			s.releaseLeader(r)
			return
		}
		if r.round == 0 {
			r.round = 1
			r.round1.set(s.shard, r.ts)
			s.broadcastNotification(r, 1, r.ts)
		}
		if r.agreed {
			// Case-3 re-execution with agreement already complete.
			s.releaseLeader(r)
			return
		}
		s.checkAgreement(r)
		return
	}
	if r.agreed {
		s.releaseLeader(r)
	}
}

// recordMaps updates rMap/wMap with r's access sets (Alg. 1 lines 14–15).
func (s *Server) recordMaps(r *rec) {
	for _, k := range r.piece.ReadSet {
		if cur, ok := s.rMap[k]; !ok || cur.Less(r.ts) {
			s.rMap[k] = r.ts
		}
	}
	for _, k := range r.piece.WriteSet {
		if cur, ok := s.wMap[k]; !ok || cur.Less(r.ts) {
			s.wMap[k] = r.ts
		}
	}
}

func (s *Server) executeLeader(r *rec) {
	r.relS = s.cluster.Net.Sim().Now()
	s.node.Work(s.cfg.ExecCost)
	r.result = s.st.Execute(r.id, r.ts, r.piece)
	r.executed = true
	s.Executions++
	s.relHash.Add(r.id, r.ts)
	s.sendFastReply(r)
}

func (s *Server) sendFastReply(r *rec) {
	r.replyHash = s.relHash.Sum()
	m := s.cluster.msgs.fastRep.Get()
	*m = fastReply{
		viewInfo: s.views(), Shard: s.shard, Replica: s.replica,
		ID: r.id, TS: r.ts, Hash: r.replyHash, Ret: r.result,
		IsLeader: true, LogPos: len(s.log), OWD: r.owd,
		ArriveS: r.arriveS, EligS: r.eligS, RelS: r.relS, DoneS: s.node.Busy(),
	}
	s.node.Send(r.coord, m)
}

// releaseLeader appends r to the log, synchronizes followers, and removes it
// from the queue (Alg. 1 lines 24–25).
func (s *Server) releaseLeader(r *rec) {
	s.recordMaps(r) // timestamps may have grown during agreement
	s.pq.erase(r)
	s.node.Work(s.cfg.PQCost)
	r.released = true
	e := logEntry{ID: r.id, TS: r.ts, T: r.t}
	s.log = append(s.log, e)
	s.syncPoint = len(s.log)
	pos := len(s.log) - 1
	for rep := 0; rep < s.cfg.Replicas(); rep++ {
		if rep == s.replica {
			continue
		}
		m := s.cluster.msgs.logSync.Get()
		*m = logSyncMsg{
			viewInfo: s.views(), Shard: s.shard,
			Pos: pos, ID: e.ID, TS: e.TS, T: e.T, CommitPoint: s.commitPoint,
		}
		s.node.Send(s.cluster.serverNode(s.shard, rep), m)
	}
	if s.cfg.LocalReads {
		// The released entry may have been the queue head holding the
		// watermark down; reads blocked on it can be served now.
		s.advanceSafeTime()
	}
}

// releaseFollower appends to the optimistic tail and fast-replies (§3.3).
func (s *Server) releaseFollower(r *rec) {
	r.relS = s.cluster.Net.Sim().Now()
	s.pq.erase(r)
	s.node.Work(s.cfg.PQCost)
	r.released = true
	s.tail[r.id] = logEntry{ID: r.id, TS: r.ts, T: r.t}
	s.relHash.Add(r.id, r.ts)
	r.replyHash = s.relHash.Sum()
	m := s.cluster.msgs.fastRep.Get()
	*m = fastReply{
		viewInfo: s.views(), Shard: s.shard, Replica: s.replica,
		ID: r.id, TS: r.ts, Hash: r.replyHash, OWD: r.owd,
		ArriveS: r.arriveS, EligS: r.eligS, RelS: r.relS, DoneS: s.node.Busy(),
	}
	s.node.Send(r.coord, m)
}

// ---- §3.5 timestamp agreement ----

func (s *Server) broadcastNotification(r *rec, round int, ts txn.Timestamp) {
	for _, sh := range r.t.Shards() {
		if sh == s.shard {
			continue
		}
		lead := s.gvec[sh] % s.cfg.Replicas()
		m := s.cluster.msgs.tsNote.Get()
		*m = tsNotification{
			viewInfo: s.views(), Shard: s.shard, ID: r.id, TS: ts, Round: round,
		}
		s.node.Send(s.cluster.serverNode(sh, lead), m)
	}
}

func (s *Server) onTsNotification(from simnet.NodeID, m *tsNotification) {
	if s.status != statusNormal || m.GView != s.gview || !s.IsLeader() {
		return
	}
	if m.LView != s.gvec[m.Shard] {
		return // not from the current leader of that shard
	}
	r := s.recs[m.ID]
	if r == nil {
		// Notification before the coordinator's multicast arrived (or the
		// coordinator failed mid-multicast, Appendix B): remember the
		// timestamps and fetch the body if it never shows up.
		r = &rec{id: m.ID}
		s.recs[m.ID] = r
		s.scheduleFetch(r, from)
	}
	switch m.Round {
	case 1:
		r.round1.set(m.Shard, m.TS)
	case 2:
		r.round2.set(m.Shard, m.TS)
	}
	s.checkAgreement(r)
}

// checkAgreement evaluates Cases 1–3 of §3.5 once all round-1 timestamps are
// known.
func (s *Server) checkAgreement(r *rec) {
	if r.t == nil || r.agreed {
		return
	}
	if s.gmode == ModePreventive {
		if !r.proposed {
			return
		}
	} else if !r.executed {
		return
	}
	nShards := len(r.t.Pieces)
	if r.round1.len() < nShards {
		return
	}
	agreed := r.round1.get(s.shard)
	mismatch := false
	for _, e := range r.round1.items {
		if agreed.Less(e.ts) {
			agreed = e.ts
		}
	}
	for _, e := range r.round1.items {
		if !e.ts.Equal(agreed) {
			mismatch = true
			break
		}
	}
	if !mismatch {
		// Case-1: all timestamps match — agreement completes in 0.5 WRTT.
		r.agreed = true
		s.finishAgreement(r)
		return
	}
	if r.round < 2 {
		r.round = 2
		r.round2.set(s.shard, agreed)
		s.broadcastNotification(r, 2, agreed)
		if r.ts.Less(agreed) {
			// Case-3: our optimistic execution (if any) used a stale
			// timestamp — revoke and reposition (§3.5).
			if r.executed {
				s.st.Revoke(r.id)
				s.relHash.Remove(r.id, r.ts)
				r.executed = false
				r.result = nil
				s.Rollbacks++
			}
			s.pq.reposition(r, agreed)
			s.node.Work(s.cfg.PQCost)
			s.schedulePump(agreed.Time)
		}
		// Case-2 (r.ts == agreed): execution stays valid but we must not
		// release until round 2 confirms every leader adopted the timestamp
		// — otherwise timestamp inversion (§3.6, Fig 5).
	}
	if r.round2.len() >= nShards {
		r.agreed = true
		s.finishAgreement(r)
	}
}

// finishAgreement releases the transaction if it is already (re-)executed;
// otherwise pump will execute and release it when it reaches the head again.
func (s *Server) finishAgreement(r *rec) {
	if r.executed && !r.released {
		s.releaseLeader(r)
	}
	// Unblock conflicting successors (and, in the preventive mode or
	// Case-3, execute r itself once it is expired and unblocked).
	s.pump()
	if !r.executed {
		s.schedulePump(r.ts.Time)
	}
}

// resendAgreements re-broadcasts notifications for stalled agreements
// (message loss tolerance).
func (s *Server) resendAgreements() {
	if s.status != statusNormal || !s.IsLeader() {
		return
	}
	// Broadcast in a deterministic ID order — rebroadcast sends feed the
	// simulation's event order. The ID slice is server-owned scratch.
	ids := s.idScratch[:0]
	for id, r := range s.recs {
		if r.t == nil || r.agreed || r.released || !r.multiShard() {
			continue
		}
		ids = append(ids, id)
	}
	sortIDs(ids)
	s.idScratch = ids
	for _, id := range ids {
		r := s.recs[id]
		switch r.round {
		case 1:
			s.broadcastNotification(r, 1, r.round1.get(s.shard))
		case 2:
			s.broadcastNotification(r, 2, r.round2.get(s.shard))
		}
	}
}

// ---- Appendix B: coordinator failure / missing transaction bodies ----

func (s *Server) scheduleFetch(r *rec, from simnet.NodeID) {
	if r.fetching {
		return
	}
	r.fetching = true
	var again func()
	again = func() {
		if r.t != nil || s.status != statusNormal {
			return
		}
		s.node.Send(from, fetchTxnReq{Shard: s.shard, ID: r.id})
		// Keep retrying: the fetch or its reply may be lost.
		s.node.After(s.cfg.RetryTimeout/2, again)
	}
	s.node.After(s.cfg.RetryTimeout/4, again)
}

func (s *Server) onFetchTxn(from simnet.NodeID, m fetchTxnReq) {
	r := s.recs[m.ID]
	if r == nil || r.t == nil {
		return
	}
	s.node.Send(from, fetchTxnRep{ID: m.ID, T: r.t, TS: r.ts})
}

func (s *Server) onFetchTxnRep(m fetchTxnRep) {
	r := s.recs[m.ID]
	if r == nil || r.t != nil || s.status != statusNormal {
		return
	}
	r.t = m.T
	r.piece = m.T.Pieces[s.shard]
	r.ts = m.TS
	r.coord = s.cluster.coordNode(m.ID.Coord)
	s.admit(r)
	s.checkAgreement(r)
}

// ---- §3.7 log synchronization and slow path ----

func (s *Server) onLogSync(m *logSyncMsg) {
	if s.status != statusNormal || m.GView != s.gview || m.LView != s.lview || s.IsLeader() {
		return
	}
	if m.Pos < s.syncPoint {
		s.advanceCommitPoint(m.CommitPoint)
		return // duplicate
	}
	s.pendingSync[m.Pos] = *m // copy: the message is recycled after return
	for {
		next, ok := s.pendingSync[s.syncPoint]
		if !ok {
			break
		}
		delete(s.pendingSync, s.syncPoint)
		s.applySync(next)
	}
	s.advanceCommitPoint(m.CommitPoint)
}

// applySync reconciles one leader log entry into the follower's log (§3.7):
// update timestamps of entries both hold, adopt entries the follower lacks,
// and move optimistically released entries into the synced prefix.
func (s *Server) applySync(m logSyncMsg) {
	e := logEntry{ID: m.ID, TS: m.TS, T: m.T}
	if old, ok := s.tail[m.ID]; ok {
		delete(s.tail, m.ID)
		if !old.TS.Equal(m.TS) {
			s.relHash.Remove(old.ID, old.TS)
			s.relHash.Add(m.ID, m.TS)
		}
	} else {
		r := s.recs[m.ID]
		switch {
		case r != nil && r.inPQ:
			s.pq.erase(r)
			s.relHash.Add(m.ID, m.TS)
		case r != nil && r.held:
			r.held = false
			s.relHash.Add(m.ID, m.TS)
		case r == nil || !r.released:
			s.relHash.Add(m.ID, m.TS)
		}
	}
	if r := s.recs[m.ID]; r != nil {
		r.released = true
		r.ts = m.TS
	} else {
		s.recs[m.ID] = &rec{id: m.ID, t: m.T, ts: m.TS, released: true}
	}
	s.log = append(s.log, e)
	s.syncPoint = len(s.log)
	// Conflict maps must also reflect synced entries.
	if p := m.T.Pieces[s.shard]; p != nil {
		for _, k := range p.ReadSet {
			if cur, ok := s.rMap[k]; !ok || cur.Less(m.TS) {
				s.rMap[k] = m.TS
			}
		}
		for _, k := range p.WriteSet {
			if cur, ok := s.wMap[k]; !ok || cur.Less(m.TS) {
				s.wMap[k] = m.TS
			}
		}
	}
	if !s.cfg.BatchSlowReplies {
		coord := s.cluster.coordNode(m.ID.Coord)
		sr := s.cluster.msgs.slowRep.Get()
		*sr = slowReply{viewInfo: s.views(), Shard: s.shard, Replica: s.replica, ID: m.ID, TS: m.TS}
		s.node.Send(coord, sr)
	}
}

// advanceCommitPoint lets the follower execute committed entries and
// checkpoint (§3.7, §4).
func (s *Server) advanceCommitPoint(cp int) {
	if cp > s.syncPoint {
		cp = s.syncPoint
	}
	if cp <= s.commitPoint {
		return
	}
	s.commitPoint = cp
	for s.applied < s.commitPoint {
		e := s.log[s.applied]
		if p := e.T.Pieces[s.shard]; p != nil && !s.st.Executed(e.ID) {
			s.node.Work(s.cfg.ExecCost)
			s.st.Execute(e.ID, e.TS, p)
		}
		s.st.Commit(e.ID)
		s.applied++
	}
	s.maybeCheckpoint(s.applied)
	if s.cfg.LocalReads {
		s.adoptSafePairs()
	}
}

func (s *Server) maybeCheckpoint(pos int) {
	if s.cfg.CheckpointEvery <= 0 || pos-s.checkpointPos < s.cfg.CheckpointEvery {
		return
	}
	s.checkpoint = s.st.Snapshot()
	s.checkpointPos = pos
	// Reuse the previous checkpoint's ID slice when it has the capacity.
	if cap(s.checkpointIDs) < pos {
		s.checkpointIDs = make([]txn.ID, pos)
	} else {
		s.checkpointIDs = s.checkpointIDs[:pos]
	}
	for i := 0; i < pos && i < len(s.log); i++ {
		s.checkpointIDs[i] = s.log[i].ID
	}
}

// onSyncPoint is the leader's handler for follower sync-point reports: it
// advances the commit-point once f+1 servers (leader included) hold an entry,
// and retransmits log entries to followers that fell behind (lost log-sync
// messages would otherwise stall their contiguous prefixes forever).
func (s *Server) onSyncPoint(m *syncPointMsg) {
	if !s.IsLeader() || m.GView != s.gview || m.LView != s.lview {
		return
	}
	if m.SyncPoint < len(s.log) {
		end := m.SyncPoint + 32
		if end > len(s.log) {
			end = len(s.log)
		}
		dst := s.cluster.serverNode(s.shard, m.Replica)
		for pos := m.SyncPoint; pos < end; pos++ {
			e := s.log[pos]
			ls := s.cluster.msgs.logSync.Get()
			*ls = logSyncMsg{
				viewInfo: s.views(), Shard: s.shard,
				Pos: pos, ID: e.ID, TS: e.TS, T: e.T, CommitPoint: s.commitPoint,
			}
			s.node.Send(dst, ls)
		}
	}
	if m.SyncPoint > s.followerSP[m.Replica] {
		s.followerSP[m.Replica] = m.SyncPoint
	}
	if m.W > s.followerW[m.Replica] {
		s.followerW[m.Replica] = m.W
	}
	sps := s.spScratch[:0]
	for _, sp := range s.followerSP {
		sps = append(sps, sp)
	}
	slices.Sort(sps)
	s.spScratch = sps
	if len(sps) < s.cfg.F {
		return
	}
	cp := sps[len(sps)-s.cfg.F] // f followers + the leader = f+1 servers
	if cp <= s.commitPoint {
		return
	}
	s.commitPoint = cp
	for i := s.applied; i < s.commitPoint; i++ {
		s.st.Commit(s.log[i].ID)
	}
	s.applied = s.commitPoint
	s.maybeCheckpoint(s.applied)
	if s.cfg.LocalReads {
		// The commit-point advance just made the released prefix durable —
		// the leader watermark (held below undurable entries) can move, and
		// reads blocked on it can be served without waiting for the next
		// broadcast tick.
		s.advanceSafeTime()
	}
}

// ---- Local snapshot reads (safe-time watermarks) ----

// advanceSafeTime recomputes the leader's watermark: one tick below its
// synchronized clock, capped below every pending (unreleased) transaction in
// the priority queue AND below every released entry the commit point has not
// yet passed. Safe because (a) versions become visible to reads only at the
// commit-point Commit, and the watermark trails the earliest timestamp still
// awaiting it, (b) everything unreleased sits in the queue, and (c) admission
// lifts any later arrival above the current watermark — so no transaction can
// ever commit at or below it. Holding the watermark at the commit point
// (rather than release) means a leader read never observes a prefix that a
// failover could roll back; the cost is commit-point lag (~1 OWD + sync-point
// cadence) on strong leader reads, measured in EXPERIMENTS.md. Monotonic by
// construction: the watermark only moves forward.
func (s *Server) advanceSafeTime() {
	if !s.IsLeader() || s.status != statusNormal {
		return
	}
	w := s.now() - 1
	if len(s.pq.items) > 0 {
		if m := s.pq.items[0].ts.Time - 1; m < w {
			w = m
		}
	}
	// The log is release-ordered, not timestamp-ordered, so scan the whole
	// undurable suffix (bounded by the replication lag) for its minimum.
	if s.commitPoint < len(s.log) {
		for _, e := range s.log[s.commitPoint:] {
			if m := e.TS.Time - 1; m < w {
				w = m
			}
		}
	}
	if w > s.safeTime {
		s.safeTime = w
		s.flushWaiters()
	}
}

// broadcastSafeTime is the leader's periodic watermark publication, riding
// the sync-point tick. Tiga's log is release-ordered, not timestamp-ordered,
// so the watermark W is only valid for a log prefix: the pair (W, N=len(log))
// promises every transaction committing with timestamp <= W is among the
// first N entries (later releases get larger timestamps via admission).
func (s *Server) broadcastSafeTime() {
	s.advanceSafeTime()
	if s.cfg.VersionGC {
		s.advanceGCHorizon()
	}
	for rep := 0; rep < s.cfg.Replicas(); rep++ {
		if rep == s.replica {
			continue
		}
		m := s.cluster.msgs.safeTime.Get()
		*m = safeTimeMsg{
			viewInfo: s.views(), Shard: s.shard,
			W: s.safeTime, N: len(s.log), CP: s.commitPoint, GC: s.gcHorizon,
		}
		s.node.Send(s.cluster.serverNode(s.shard, rep), m)
	}
}

// onSafeTime is the follower side: adopt the leader's watermark once the
// promised log prefix is applied locally. The piggybacked commit-point lets
// the follower apply entries without waiting for the next log-sync message,
// shortening watermark lag by roughly one sync interval.
func (s *Server) onSafeTime(m *safeTimeMsg) {
	if !s.cfg.LocalReads || s.status != statusNormal || s.IsLeader() ||
		m.GView != s.gview || m.LView != s.lview {
		return
	}
	s.advanceCommitPoint(m.CP)
	if s.applied >= m.N {
		if m.W > s.safeTime {
			s.safeTime = m.W
			s.flushWaiters()
		}
		s.pruneTo(m.GC)
		return
	}
	s.safePairs = append(s.safePairs, *m) // copy: m is recycled after return
}

// adoptSafePairs folds buffered (W, N) watermark pairs whose log prefixes
// this follower has now applied; called whenever the applied prefix grows.
func (s *Server) adoptSafePairs() {
	if len(s.safePairs) == 0 {
		return
	}
	keep := s.safePairs[:0]
	advanced := false
	gc := time.Duration(0)
	for _, p := range s.safePairs {
		if s.applied >= p.N {
			if p.W > s.safeTime {
				s.safeTime = p.W
				advanced = true
			}
			if p.GC > gc {
				gc = p.GC
			}
		} else {
			keep = append(keep, p)
		}
	}
	s.safePairs = keep
	if advanced {
		s.flushWaiters()
	}
	s.pruneTo(gc)
}

// gcSlack is the fixed safety margin subtracted from the version-GC horizon
// on top of the read-staleness bound. It covers snapshot reads that are
// already in flight when the horizon advances: a read carries a snapshot
// timestamp minted when it was issued, and between minting and serving lie
// one network delivery plus at most one coordinator re-drive (400 ms retry
// interval), both well under a second. Strictly more conservative than the
// min-watermark − staleness horizon alone — see EXPERIMENTS.md deviations.
const gcSlack = time.Second

// advanceGCHorizon recomputes the leader's version-GC horizon: the minimum
// watermark across all replicas (followers report theirs on the sync-point
// tick) minus the read-staleness bound and gcSlack. Any snapshot read, live
// or future, uses a snapshot timestamp above that, and PruneTo keeps the
// newest committed version at or below the horizon, so GetAt results are
// invariant under the prune. Until every follower has reported, there is no
// safe horizon and the leader keeps full history.
func (s *Server) advanceGCHorizon() {
	h := s.safeTime
	for rep := 0; rep < s.cfg.Replicas(); rep++ {
		if rep == s.replica {
			continue
		}
		w, ok := s.followerW[rep]
		if !ok {
			return
		}
		if w < h {
			h = w
		}
	}
	h -= s.cfg.ReadStaleness + gcSlack
	if h > s.gcHorizon {
		s.gcHorizon = h
		s.st.PruneTo(h)
	}
}

// pruneTo applies a leader-published GC horizon on a follower (monotonic).
func (s *Server) pruneTo(gc time.Duration) {
	if !s.cfg.VersionGC || gc <= s.gcHorizon {
		return
	}
	s.gcHorizon = gc
	s.st.PruneTo(gc)
}

func (s *Server) flushWaiters() {
	if s.waiters.Len() == 0 {
		return
	}
	s.waiters.Flush(s.safeTime+s.safeLie, s.cluster.Net.Sim().Now())
}

// onSnapRead serves a local snapshot read: immediately when the watermark
// already covers the requested snapshot, otherwise after the SAFETIME delay.
// Reads arriving during a view change are dropped — the read path has no
// retransmission, so a partitioned or recovering replica simply stalls its
// coordinator (delay, never lie; the chaos experiment exercises this).
func (s *Server) onSnapRead(from simnet.NodeID, m snapread.Req) {
	if !s.cfg.LocalReads || s.status != statusNormal {
		return
	}
	// Leaders answer at clock freshness rather than tick freshness.
	s.advanceSafeTime()
	arriveS := s.cluster.Net.Sim().Now()
	if m.At <= s.safeTime+s.safeLie {
		s.serveSnapRead(from, m, 0, arriveS)
		return
	}
	s.waiters.Add(m.At, arriveS, func(waited time.Duration) {
		s.serveSnapRead(from, m, waited, arriveS)
	})
	if s.IsLeader() {
		s.scheduleSafeFlush(m.At)
	}
}

func (s *Server) serveSnapRead(to simnet.NodeID, m snapread.Req, waited time.Duration, arriveS time.Duration) {
	s.node.Work(s.cfg.ExecCost)
	vals := make([][]byte, len(m.Keys))
	seen := make([]txn.Timestamp, len(m.Keys))
	if len(m.KeyIDs) == len(m.Keys) {
		for i, id := range m.KeyIDs {
			vals[i], seen[i], _ = s.st.GetAtID(id, m.At)
		}
	} else {
		for i, k := range m.Keys {
			vals[i], seen[i], _ = s.st.GetAt(k, m.At)
		}
	}
	s.node.Send(to, snapread.Rep{Shard: s.shard, Seq: m.Seq, Vals: vals, Seen: seen, Waited: waited,
		ArriveS: arriveS, ServedS: s.node.Busy()})
}

// scheduleSafeFlush arms a timer for the moment the leader's clock passes at,
// so a read blocked only on clock progress (not on a queued transaction) is
// served without waiting for the next periodic tick. Followers don't need
// this: their watermark only moves on leader broadcasts, which flush.
func (s *Server) scheduleSafeFlush(at time.Duration) {
	simNow := s.cluster.Net.Sim().Now()
	when := s.clock.WhenReads(at+1, simNow)
	if s.flushAt != 0 && s.flushAt <= when {
		return // an earlier (or equal) flush is already armed
	}
	s.flushAt = when
	s.flushSeq++
	// Gated timer (see schedulePump): superseded arms no-op at fire time, and
	// flushFire is one persistent closure. If the queue head still pins the
	// watermark below at, the read keeps waiting; releaseLeader and the
	// periodic tick will flush it.
	s.node.AfterGate(when-simNow, &s.flushSeq, s.flushSeq, s.flushFire)
}

// SafeTime exposes the replica's current watermark (harness staleness
// probes, tests).
func (s *Server) SafeTime() time.Duration { return s.safeTime }

// LieSafeTime inflates the served watermark by ahead without moving the real
// one — a fault-injection hook that makes the replica answer reads it cannot
// yet cover, which the snapshot-read checker must catch (tests only).
func (s *Server) LieSafeTime(ahead time.Duration) { s.safeLie = ahead }

// PQLen returns the priority queue length (diagnostics).
func (s *Server) PQLen() int { return s.pq.len() }

// RecCount returns the number of tracked transaction records (diagnostics).
func (s *Server) RecCount() int { return len(s.recs) }
