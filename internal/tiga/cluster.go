package tiga

import (
	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// Placement decides where servers, coordinators, and view-manager replicas
// live. The paper's default places replica r of every shard in region r
// (leaders co-located); the "rotation" experiment (§5.5, Table 2) offsets the
// replica column per shard so leaders land in different regions.
type Placement struct {
	// ServerRegion maps (shard, replica) to a region.
	ServerRegion func(shard, replica int) simnet.Region
	// CoordRegions lists one region per coordinator.
	CoordRegions []simnet.Region
	// VMRegions lists the view-manager replica regions (3 by default).
	VMRegions []simnet.Region
}

// ColocatedPlacement is the paper's common full-replication deployment:
// replica r of every shard lives in region r.
func ColocatedPlacement(coordRegions []simnet.Region) Placement {
	return Placement{
		ServerRegion: func(_, replica int) simnet.Region { return simnet.Region(replica) },
		CoordRegions: coordRegions,
		VMRegions:    []simnet.Region{0, 1, 2},
	}
}

// RotatedPlacement rotates shard/replica ids so servers with the same
// replica-id land in different regions — the §5.5 "leaders separated" setup.
func RotatedPlacement(coordRegions []simnet.Region, regions int) Placement {
	return Placement{
		ServerRegion: func(shard, replica int) simnet.Region {
			return simnet.Region((replica + shard) % regions)
		},
		CoordRegions: coordRegions,
		VMRegions:    []simnet.Region{0, 1, 2},
	}
}

// Cluster is a complete Tiga deployment inside one simulated network.
type Cluster struct {
	Cfg Config
	Net *simnet.Network
	// Seed pre-populates a shard's store; it is also used to rebuild stores
	// during recovery replay.
	Seed func(shard int, st *store.Store)

	Servers [][]*Server // [shard][replica]
	Coords  []*Coordinator
	VMs     []*vmReplica

	serverNodes [][]simnet.NodeID
	coordNodes  []simnet.NodeID
	vmNodes     []simnet.NodeID

	// msgs are the cluster-wide wire-message freelists (see config.go). They
	// are shared by every node of this cluster but only ever touched from the
	// owning simulation's single-threaded event loop.
	msgs *msgPools

	initialGVec []int
	initialMode Mode
}

// NewCluster builds the full deployment: m×(2f+1) servers, the given
// coordinators, and 3 view-manager replicas, each with its own clock.
func NewCluster(net *simnet.Network, cfg Config, pl Placement, cf *clocks.Factory,
	seed func(int, *store.Store)) *Cluster {

	c := &Cluster{Cfg: cfg, Net: net, Seed: seed, initialGVec: make([]int, cfg.Shards),
		msgs: newMsgPools()}

	// Mode selection (§3.8): preventive iff the initial leaders (replica 0
	// of each shard) are mutually within the co-location threshold.
	leaders := make([]int, cfg.Shards)
	c.initialModeFromPlacement(pl, leaders)

	c.serverNodes = make([][]simnet.NodeID, cfg.Shards)
	c.Servers = make([][]*Server, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		c.serverNodes[s] = make([]simnet.NodeID, cfg.Replicas())
		c.Servers[s] = make([]*Server, cfg.Replicas())
		for r := 0; r < cfg.Replicas(); r++ {
			node := net.AddNode(pl.ServerRegion(s, r), nil)
			c.serverNodes[s][r] = node.ID()
			c.Servers[s][r] = newServer(c, s, r, node, cf.New())
			if seed != nil {
				seed(s, c.Servers[s][r].st)
			}
		}
	}
	for i, reg := range pl.CoordRegions {
		node := net.AddNode(reg, nil)
		c.coordNodes = append(c.coordNodes, node.ID())
		c.Coords = append(c.Coords, newCoordinator(c, int32(i+1), node, cf.New()))
	}
	vmRegions := pl.VMRegions
	if len(vmRegions) == 0 {
		vmRegions = []simnet.Region{0, 1, 2}
	}
	for i, reg := range vmRegions {
		node := net.AddNode(reg, nil)
		c.vmNodes = append(c.vmNodes, node.ID())
		c.VMs = append(c.VMs, newVMReplica(c, i, node))
	}
	return c
}

func (c *Cluster) initialModeFromPlacement(pl Placement, leaders []int) {
	switch c.Cfg.Mode {
	case ModePreventive, ModeDetective:
		c.initialMode = c.Cfg.Mode
		return
	}
	c.initialMode = ModePreventive
	for a := 0; a < c.Cfg.Shards; a++ {
		for b := a + 1; b < c.Cfg.Shards; b++ {
			ra, rb := pl.ServerRegion(a, leaders[a]), pl.ServerRegion(b, leaders[b])
			if c.Net.BaseOWD(ra, rb) > c.Cfg.ColocationThreshold {
				c.initialMode = ModeDetective
				return
			}
		}
	}
}

// chooseMode recomputes the agreement mode for a candidate leader set (§3.8,
// view manager step 1).
func (c *Cluster) chooseMode(newLeaders []int) Mode {
	switch c.Cfg.Mode {
	case ModePreventive, ModeDetective:
		return c.Cfg.Mode
	}
	for a := 0; a < c.Cfg.Shards; a++ {
		for b := a + 1; b < c.Cfg.Shards; b++ {
			ra := c.Net.Node(c.serverNodes[a][newLeaders[a]]).Region()
			rb := c.Net.Node(c.serverNodes[b][newLeaders[b]]).Region()
			if c.Net.BaseOWD(ra, rb) > c.Cfg.ColocationThreshold {
				return ModeDetective
			}
		}
	}
	return ModePreventive
}

// Start launches all periodic tasks. Call once before running the simulator.
func (c *Cluster) Start() {
	for _, shard := range c.Servers {
		for _, s := range shard {
			s.start()
		}
	}
	for _, co := range c.Coords {
		co.start()
	}
	for _, v := range c.VMs {
		v.start()
	}
}

func (c *Cluster) serverNode(shard, replica int) simnet.NodeID { return c.serverNodes[shard][replica] }

// coordNode maps a txn.ID.Coord (1-based) to its network node.
func (c *Cluster) coordNode(idx int32) simnet.NodeID { return c.coordNodes[idx-1] }

func (c *Cluster) vmLeaderNode() simnet.NodeID { return c.vmNodes[0] }

// Leader returns the current leader server of a shard according to the VM.
func (c *Cluster) Leader(shard int) *Server {
	gvec := c.VMs[0].gvec
	return c.Servers[shard][gvec[shard]%c.Cfg.Replicas()]
}

// ServerGrid reports the replica grid (protocol.Faultable).
func (c *Cluster) ServerGrid() (shards, replicas int) { return c.Cfg.Shards, c.Cfg.Replicas() }

// KillServer crashes a server (it drops all messages and timers).
func (c *Cluster) KillServer(shard, replica int) {
	c.Servers[shard][replica].node.Crash()
}

// RestartServer reboots a crashed server with empty state; it rejoins via
// Algorithm 6 (view inquiry + state transfer).
func (c *Cluster) RestartServer(shard, replica int) {
	s := c.Servers[shard][replica]
	s.node.Restart()
	fresh := newServer(c, shard, replica, s.node, s.clock)
	c.Servers[shard][replica] = fresh
	fresh.start()
	fresh.Rejoin()
}

// TotalRollbacks sums Case-3 revocations across all servers (Fig 13).
func (c *Cluster) TotalRollbacks() int64 {
	var n int64
	for _, shard := range c.Servers {
		for _, s := range shard {
			n += s.Rollbacks
		}
	}
	return n
}

// TotalVersions sums retained committed-version counts across every replica
// store in the cluster — the version-GC tests' memory signal (leaders prune
// on the safe-time tick, followers at watermark adoption, so the total is
// what must plateau under sustained writes).
func (c *Cluster) TotalVersions() int {
	var n int
	for _, shard := range c.Servers {
		for _, s := range shard {
			n += s.st.Versions()
		}
	}
	return n
}

// Mode returns the currently active agreement mode.
func (c *Cluster) Mode() Mode { return c.initialMode }

// Submit routes a transaction through the given coordinator (harness
// interface shared with the baseline protocols).
func (c *Cluster) Submit(coord int, t *txn.Txn, done func(txn.Result)) {
	c.Coords[coord].Submit(t, done)
}

// NumCoords returns the coordinator count.
func (c *Cluster) NumCoords() int { return len(c.Coords) }
