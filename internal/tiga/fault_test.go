package tiga

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// TestMessageLoss: with 5% loss, retransmission (coordinator retries,
// agreement re-broadcast, ordered log sync) still commits everything and
// applies effects exactly once.
func TestMessageLoss(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.RetryTimeout = 400 * time.Millisecond
	sim := simnet.NewSim(31)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(500*time.Microsecond, 0.05))
	cf := clocks.NewFactory(clocks.ModelChrony, 2*time.Minute, 32)
	c := NewCluster(net, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), cf, seed100)
	c.Start()
	committed := 0
	const n = 60
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(100+i*25)*time.Millisecond, func() {
			tx := &txn.Txn{Pieces: map[int]*txn.Piece{
				0: txn.IncrementPiece(fmt.Sprintf("k0-%d", i)),
				1: txn.IncrementPiece(fmt.Sprintf("k1-%d", i)),
				2: txn.IncrementPiece(fmt.Sprintf("k2-%d", i)),
			}}
			c.Coords[i%3].Submit(tx, func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(30 * time.Second)
	// Liveness: most transactions complete despite loss (client-visible
	// commits can lag server-side commits when final replies are lost).
	if committed < n*2/3 {
		t.Fatalf("committed %d of %d under 5%% loss", committed, n)
	}
	// Safety: effects applied at most once — each key's increment happened
	// 0 or 1 times, and at least every client-visible commit is present.
	for sh := 0; sh < 3; sh++ {
		var sum int64
		for i := 0; i < n; i++ {
			v := txn.DecodeInt(c.Servers[sh][0].Store().Get(fmt.Sprintf("k%d-%d", sh, i)))
			if v > 1 {
				t.Fatalf("key k%d-%d incremented %d times (duplicate execution)", sh, i, v)
			}
			sum += v
		}
		if sum < int64(committed) {
			t.Errorf("shard %d sum %d < %d client-visible commits (lost effects)", sh, sum, committed)
		}
	}
}

func seed100(shard int, st *store.Store) {
	for i := 0; i < 100; i++ {
		st.Seed(fmt.Sprintf("k%d-%d", shard, i), txn.EncodeInt(0))
	}
}

// TestFollowerCrashDoesNotBlockCommits: killing one follower leaves the
// fast path unavailable (super quorum = 3 of 3 for f=1) but the slow path
// commits through the remaining follower.
func TestFollowerCrashDoesNotBlockCommits(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 41, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelPerfect)
	sim.At(50*time.Millisecond, func() { c.KillServer(0, 2) })
	committed := 0
	const n = 30
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(200+i*30)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(10 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d with one follower down", committed, n)
	}
}

// TestFollowerRejoin: a crashed follower rejoins via state transfer
// (Algorithm 6) and catches up to the leader's log.
func TestFollowerRejoin(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 43, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelPerfect)
	sim.At(50*time.Millisecond, func() { c.KillServer(1, 1) })
	committed := 0
	const n = 30
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(200+i*30)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.At(2*time.Second, func() { c.RestartServer(1, 1) })
	sim.Run(12 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	rejoined := c.Servers[1][1]
	leader := c.Servers[1][0]
	if rejoined.SyncPoint() < leader.SyncPoint()-1 {
		t.Fatalf("rejoined follower sync-point %d lags leader %d", rejoined.SyncPoint(), leader.SyncPoint())
	}
	ll, fl := leader.LogIDs(), rejoined.LogIDs()
	for i := 0; i < len(fl) && i < len(ll); i++ {
		if ll[i] != fl[i] {
			t.Fatalf("rejoined log diverges at %d", i)
		}
	}
}

// TestLeaderPartition: isolating a leader (network partition, not crash)
// triggers a view change; when healed, the old leader must not disrupt the
// new view (its messages carry a stale view and are rejected).
func TestLeaderPartition(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	sim, c := testCluster(t, 47, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelPerfect)
	old := c.Servers[2][0]
	sim.At(600*time.Millisecond, func() { c.Net.Isolate(old.Node().ID()) })
	sim.At(8*time.Second, func() { c.Net.Heal(old.Node().ID()) })
	committed := 0
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(100+i*120)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				}
			})
		})
	}
	sim.Run(30 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d across a leader partition", committed, n)
	}
	if c.VMs[0].gview == 0 {
		t.Fatal("no view change happened")
	}
	for sh := 0; sh < 3; sh++ {
		if got := txn.DecodeInt(c.Leader(sh).Store().Get(fmt.Sprintf("k%d-0", sh))); got != n {
			t.Errorf("shard %d counter = %d, want %d", sh, got, n)
		}
	}
}

// TestEpsilonMode: the §6 coordination-free mode commits without
// inter-leader agreement when clocks have a trusted bound.
func TestEpsilonMode(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.EpsilonBound = 5 * time.Millisecond
	sim, c := testCluster(t, 53, cfg, ColocatedPlacement([]simnet.Region{0, 1, 2}), clocks.ModelHuygens)
	committed, aborted := 0, 0
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(100+i*10)*time.Millisecond, func() {
			c.Coords[i%3].Submit(incTxn(0, 1, 2), func(r txn.Result) {
				if r.OK {
					committed++
				} else {
					aborted++
				}
			})
		})
	}
	sim.Run(6 * time.Second)
	if committed < n*9/10 {
		t.Fatalf("epsilon mode committed only %d of %d (aborted %d)", committed, n, aborted)
	}
}

// TestHeadroomControlsRollbacks: in detective mode, negative headroom makes
// transactions arrive after their timestamps, forcing Case-3 revocations;
// generous headroom eliminates them (Fig 13's mechanism).
func TestHeadroomControlsRollbacks(t *testing.T) {
	run := func(delta time.Duration, zero bool) (int64, int) {
		cfg := DefaultConfig(3, 1)
		cfg.Mode = ModeDetective
		cfg.HeadroomDelta = delta
		cfg.ZeroHeadroom = zero
		sim, c := testCluster(t, 59, cfg, RotatedPlacement([]simnet.Region{0, 1, 2}, 3), clocks.ModelChrony)
		committed := 0
		const n = 60
		for i := 0; i < n; i++ {
			i := i
			sim.At(time.Duration(100+i*8)*time.Millisecond, func() {
				// All conflict on one hot key per shard to stress ordering.
				tx := &txn.Txn{Pieces: map[int]*txn.Piece{
					0: txn.IncrementPiece("k0-0"),
					1: txn.IncrementPiece("k1-0"),
					2: txn.IncrementPiece("k2-0"),
				}}
				c.Coords[i%3].Submit(tx, func(r txn.Result) {
					if r.OK {
						committed++
					}
				})
			})
		}
		sim.Run(15 * time.Second)
		return c.TotalRollbacks(), committed
	}
	rbZero, cZero := run(0, true) // 0-Hdrm: worst
	rbPlus, cPlus := run(30*time.Millisecond, false)
	if cZero == 0 || cPlus == 0 {
		t.Fatal("no commits")
	}
	if rbPlus > rbZero {
		t.Fatalf("rollbacks with +30ms headroom (%d) exceed 0-Hdrm (%d)", rbPlus, rbZero)
	}
	if rbZero == 0 {
		t.Log("note: 0-Hdrm produced no rollbacks at this load (timing-dependent)")
	}
}
