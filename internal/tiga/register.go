package tiga

import (
	"tiga/internal/protocol"
	"tiga/internal/store"
)

// Tiga's consolidated design makes its per-transaction server work the
// cheapest of the evaluated protocols: a timestamp comparison plus
// priority-queue maintenance (the Aux component) instead of lock tables or
// dependency graphs.
func init() {
	protocol.Register("Tiga", protocol.CostProfile{Exec: 1, Aux: 3, Rank: 90},
		func(ctx *protocol.BuildContext) protocol.System {
			cfg := DefaultConfig(ctx.Shards, ctx.F)
			cfg.ExecCost = ctx.ExecCost
			cfg.PQCost = ctx.AuxCost
			if ctx.Tune != nil {
				ctx.Tune(&cfg)
			}
			pl := ColocatedPlacement(ctx.CoordRegions)
			if ctx.Rotated {
				pl = RotatedPlacement(ctx.CoordRegions, ctx.Regions)
			}
			return NewCluster(ctx.Net, cfg, pl, ctx.Clocks, ctx.SeedStore)
		})
}

// LeaderStore returns the current leader replica's store for a shard
// (protocol.Checkable).
func (c *Cluster) LeaderStore(shard int) *store.Store {
	return c.Leader(shard).Store()
}
