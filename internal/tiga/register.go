package tiga

import (
	"time"

	"tiga/internal/protocol"
	"tiga/internal/store"
)

// Tiga's consolidated design makes its per-transaction server work the
// cheapest of the evaluated protocols: a timestamp comparison plus
// priority-queue maintenance (the Aux component) instead of lock tables or
// dependency graphs.
//
// The knob defaults mirror DefaultConfig (a unit test pins the equality), so
// building with no overrides reproduces the evaluation configuration.
func init() {
	protocol.Register("Tiga", protocol.CostProfile{Exec: 1, Aux: 3, Rank: 90},
		protocol.Schema{
			{Name: "delta", Type: protocol.KnobDuration, Default: 10 * time.Millisecond,
				Doc: "headroom safety margin Δ added to the measured super-quorum OWD (§3.1)"},
			{Name: "headroom-delta", Type: protocol.KnobDuration, Default: time.Duration(0),
				Doc: "offset added to the estimated headroom, possibly negative (§5.6, Fig 13)"},
			{Name: "zero-headroom", Type: protocol.KnobBool, Default: false,
				Doc: "use the sending time directly as the timestamp (Fig 13's 0-Hdrm baseline)"},
			{Name: "epsilon-bound", Type: protocol.KnobDuration, Default: time.Duration(0),
				Doc: "trusted clock-error bound ε enabling the coordination-free mode (§6); 0 keeps timestamp agreement"},
			{Name: "colocation-threshold", Type: protocol.KnobDuration, Default: 10 * time.Millisecond,
				Doc: "max inter-leader OWD for which the view manager still picks the preventive mode (§3.8)"},
			{Name: "retry-timeout", Type: protocol.KnobDuration, Default: 1200 * time.Millisecond,
				Doc: "coordinator wait before re-submitting a transaction"},
			{Name: "sync-point-every", Type: protocol.KnobDuration, Default: 5 * time.Millisecond,
				Doc: "follower sync-point report interval (§3.7)"},
			{Name: "batch-slow-replies", Type: protocol.KnobBool, Default: false,
				Doc: "Appendix E: followers answer periodic coordinator inquiries instead of per-entry slow replies"},
			{Name: "checkpoint-every", Type: protocol.KnobInt, Default: 2000,
				Doc: "store snapshot every N committed entries (recovery replay bound)"},
			{Name: "local-reads", Type: protocol.KnobBool, Default: false,
				Doc: "serve read-only transactions from the nearest replica at 0 WRTT, gated by per-replica safe-time watermarks"},
			{Name: "read-staleness", Type: protocol.KnobDuration, Default: time.Duration(0),
				Doc: "snapshot age for local reads: 0 = strong reads that wait out watermark lag; positive bounds trade staleness for near-zero waits"},
			{Name: "version-gc", Type: protocol.KnobBool, Default: false,
				Doc: "with local-reads: prune committed version history below the min replica watermark − read-staleness, piggybacked on the safe-time tick"},
			{Name: "admit-cap", Type: protocol.KnobInt, Default: 0,
				Doc: "max admitted in-flight transactions per coordinator (0 = no admission control)"},
			{Name: "admit-queue", Type: protocol.KnobInt, Default: 0,
				Doc: "admission wait-queue depth once admit-cap is reached; overflow is shed"},
			{Name: "shed-oldest", Type: protocol.KnobBool, Default: false,
				Doc: "shed policy on queue overflow: evict the oldest queued transaction instead of refusing the newcomer"},
		},
		func(ctx *protocol.BuildContext) protocol.System {
			cfg := DefaultConfig(ctx.Shards, ctx.F)
			cfg.ExecCost = ctx.ExecCost
			cfg.PQCost = ctx.AuxCost
			cfg.Delta = ctx.Knobs.Duration("delta")
			cfg.HeadroomDelta = ctx.Knobs.Duration("headroom-delta")
			cfg.ZeroHeadroom = ctx.Knobs.Bool("zero-headroom")
			cfg.EpsilonBound = ctx.Knobs.Duration("epsilon-bound")
			cfg.ColocationThreshold = ctx.Knobs.Duration("colocation-threshold")
			cfg.RetryTimeout = ctx.Knobs.Duration("retry-timeout")
			cfg.SyncPointEvery = ctx.Knobs.Duration("sync-point-every")
			cfg.BatchSlowReplies = ctx.Knobs.Bool("batch-slow-replies")
			cfg.CheckpointEvery = ctx.Knobs.Int("checkpoint-every")
			cfg.LocalReads = ctx.Knobs.Bool("local-reads")
			cfg.ReadStaleness = ctx.Knobs.Duration("read-staleness")
			cfg.VersionGC = ctx.Knobs.Bool("version-gc")
			cfg.AdmitCap = ctx.Knobs.Int("admit-cap")
			cfg.AdmitQueue = ctx.Knobs.Int("admit-queue")
			cfg.ShedOldest = ctx.Knobs.Bool("shed-oldest")
			pl := ColocatedPlacement(ctx.CoordRegions)
			if ctx.Rotated {
				pl = RotatedPlacement(ctx.CoordRegions, ctx.Regions)
			}
			// The harness mapping wraps replica ids past the topology's
			// region count (F=2 puts 2F+1=5 replicas on geo4's 4 regions);
			// the canned placements above assume replicas <= regions.
			pl.ServerRegion = ctx.ServerRegion
			return NewCluster(ctx.Net, cfg, pl, ctx.Clocks, ctx.SeedStore)
		})
}

// LeaderStore returns the current leader replica's store for a shard
// (protocol.Checkable).
func (c *Cluster) LeaderStore(shard int) *store.Store {
	return c.Leader(shard).Store()
}
