package tiga

import (
	"sort"
	"time"

	"tiga/internal/admit"
	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/txn"
)

// pendingTxn tracks one outstanding transaction at the coordinator.
type pendingTxn struct {
	t       *txn.Txn
	ts      txn.Timestamp
	start   time.Duration
	done    func(txn.Result)
	fast    map[int]map[int]fastReply // shard -> replica -> newest reply
	slow    map[int]map[int]slowReply
	retries int
}

// Coordinator submits transactions per §3.1 (future-timestamp initialization)
// and §3.4/§3.7 (fast/slow quorum checks, Algorithm 3). Coordinators are
// stateless with respect to the servers: any coordinator can recover another's
// transaction, and a rebooted coordinator just refetches the view.
type Coordinator struct {
	cfg     Config
	cluster *Cluster
	node    *simnet.Node
	clock   clocks.Clock

	idx int32 // coordinator id; txn.ID.Coord
	seq uint64

	gview int
	gvec  []int
	gmode Mode

	// owd holds the EWMA one-way-delay estimate per server node, measured
	// with the synchronized clocks (§3.1). Clock error feeds directly into
	// these estimates, which is how bad clocks hurt Tiga's latency (§5.7).
	owd map[simnet.NodeID]time.Duration

	pending map[txn.ID]*pendingTxn

	// Local snapshot reads (Config.LocalReads): outstanding reads by Seq
	// and the cached nearest replica per shard (see snapreads.go).
	reads   map[uint64]*pendingRead
	nearest []int

	// gate is the admission-control gate (Config.AdmitCap etc.); disabled
	// by default, it passes submissions straight through.
	gate admit.Gate

	// Retries counts protocol-level re-submissions (stats for the harness).
	Retries int64
	Aborts  int64
}

func newCoordinator(c *Cluster, idx int32, node *simnet.Node, clk clocks.Clock) *Coordinator {
	co := &Coordinator{
		cfg: c.Cfg, cluster: c, node: node, clock: clk, idx: idx,
		gvec:    make([]int, c.Cfg.Shards),
		gmode:   c.initialMode,
		owd:     make(map[simnet.NodeID]time.Duration),
		pending: make(map[txn.ID]*pendingTxn),
		reads:   make(map[uint64]*pendingRead),
	}
	co.gate = admit.Gate{
		Cap: c.Cfg.AdmitCap, Queue: c.Cfg.AdmitQueue, ShedOldest: c.Cfg.ShedOldest,
		Now: func() time.Duration { return c.Net.Sim().Now() },
	}
	copy(co.gvec, c.initialGVec)
	node.SetHandler(co.handle)
	return co
}

// Node returns the coordinator's simnet node.
func (co *Coordinator) Node() *simnet.Node { return co.node }

func (co *Coordinator) now() time.Duration { return co.clock.Read(co.cluster.Net.Sim().Now()) }

// start probes every server to seed the OWD estimates.
func (co *Coordinator) start() {
	for sh := 0; sh < co.cfg.Shards; sh++ {
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			n := co.cluster.serverNode(sh, rep)
			// Seed with the true base OWD so early transactions are sane;
			// probes and reply samples keep refining it.
			co.owd[n] = co.cluster.Net.BaseOWD(co.node.Region(), co.cluster.Net.Node(n).Region())
			co.node.Send(n, probeMsg{SendClock: co.now(), Coord: co.node.ID()})
		}
	}
	if co.cfg.BatchSlowReplies {
		co.node.Every(10*time.Millisecond, func() bool {
			co.inquireSlow()
			return true
		})
	}
}

func (co *Coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case fastReply:
		co.onFastReply(from, m)
	case slowReply:
		co.onSlowReply(m)
	case slowInquiryRep:
		co.onSlowInquiryRep(from, m)
	case snapread.Rep:
		co.onSnapRep(m)
	case probeRep:
		co.updateOWD(from, m.OWD)
	case vmInfo:
		co.onVMInfo(m)
	case viewChangeReq:
		co.adoptView(m.GView, m.GVec, m.GMode)
	}
}

func (co *Coordinator) updateOWD(n simnet.NodeID, sample time.Duration) {
	if sample < 0 {
		sample = 0
	}
	cur, ok := co.owd[n]
	if !ok {
		co.owd[n] = sample
		return
	}
	co.owd[n] = cur + (sample-cur)/4 // EWMA, α = 0.25
}

// headroom computes the future-timestamp headroom (§3.1): the maximum over
// involved shards of the super-quorum-th smallest OWD, plus Δ.
func (co *Coordinator) headroom(t *txn.Txn) time.Duration {
	if co.cfg.ZeroHeadroom {
		return 0
	}
	var h time.Duration
	for _, sh := range t.Shards() {
		owds := make([]time.Duration, 0, co.cfg.Replicas())
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			owds = append(owds, co.owd[co.cluster.serverNode(sh, rep)])
		}
		// Super quorum of the closest replicas.
		for i := 1; i < len(owds); i++ {
			for j := i; j > 0 && owds[j] < owds[j-1]; j-- {
				owds[j], owds[j-1] = owds[j-1], owds[j]
			}
		}
		sq := co.cfg.SuperQuorum()
		if sq > len(owds) {
			sq = len(owds)
		}
		if d := owds[sq-1]; d > h {
			h = d
		}
	}
	h += co.cfg.Delta + co.cfg.HeadroomDelta
	if h < 0 {
		h = 0
	}
	return h
}

// Submit hands t to the admission gate; admitted transactions launch into
// the protocol via launch, queued ones wait for a slot, and overflow is shed
// with Result.Shed. With admission control off (the default) the gate is a
// straight pass-through.
func (co *Coordinator) Submit(t *txn.Txn, done func(txn.Result)) {
	co.gate.Submit(t, done, co.launch)
}

// launch multicasts t to every replica of its involved shards with a future
// timestamp and invokes done when the transaction commits.
func (co *Coordinator) launch(t *txn.Txn, done func(txn.Result)) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := &pendingTxn{
		t:     t,
		start: co.cluster.Net.Sim().Now(),
		done:  done,
		fast:  make(map[int]map[int]fastReply),
		slow:  make(map[int]map[int]slowReply),
	}
	co.pending[t.ID] = p
	co.multicast(p)
	co.armRetry(p)
}

func (co *Coordinator) multicast(p *pendingTxn) {
	sendClock := co.now()
	// Retries carry a fresh, larger timestamp (Appendix B): servers
	// re-position the pending transaction to it, which re-converges the
	// leaders' queue orders when local timestamp bumps made them diverge.
	p.ts = txn.Timestamp{Time: sendClock + co.headroom(p.t), Coord: co.idx, Seq: p.t.ID.Seq}
	m := txnMsg{T: p.t, TS: p.ts, SendClock: sendClock, Coord: co.node.ID(), GView: co.gview, Retry: p.retries}
	for _, sh := range p.t.Shards() {
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			co.node.Send(co.cluster.serverNode(sh, rep), m)
		}
	}
}

func (co *Coordinator) armRetry(p *pendingTxn) {
	id := p.t.ID
	co.node.After(co.cfg.RetryTimeout, func() {
		cur, ok := co.pending[id]
		if !ok || cur != p {
			return
		}
		p.retries++
		co.Retries++
		// The view may have changed under us — refresh, then resubmit.
		co.node.Send(co.cluster.vmLeaderNode(), vmInquire{From: co.node.ID()})
		co.multicast(p)
		co.armRetry(p)
	})
}

func (co *Coordinator) onFastReply(from simnet.NodeID, m fastReply) {
	if m.GView > co.gview {
		co.node.Send(co.cluster.vmLeaderNode(), vmInquire{From: co.node.ID()})
		return
	}
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	p, ok := co.pending[m.ID]
	if !ok {
		return
	}
	if m.OWD > 0 {
		co.updateOWD(from, m.OWD)
	}
	byRep := p.fast[m.Shard]
	if byRep == nil {
		byRep = make(map[int]fastReply)
		p.fast[m.Shard] = byRep
	}
	if prev, ok := byRep[m.Replica]; ok && m.TS.Less(prev.TS) {
		return // stale (a newer reply with a larger timestamp already arrived)
	}
	byRep[m.Replica] = m
	co.evaluate(p)
}

func (co *Coordinator) onSlowReply(m slowReply) {
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	p, ok := co.pending[m.ID]
	if !ok {
		return
	}
	byRep := p.slow[m.Shard]
	if byRep == nil {
		byRep = make(map[int]slowReply)
		p.slow[m.Shard] = byRep
	}
	if prev, ok := byRep[m.Replica]; ok && m.TS.Less(prev.TS) {
		return
	}
	byRep[m.Replica] = m
	co.evaluate(p)
}

// inquireSlow implements the Appendix E optimization: instead of per-entry
// slow replies, periodically ask followers for their sync-points.
func (co *Coordinator) inquireSlow() {
	if len(co.pending) == 0 {
		return
	}
	shards := make(map[int]bool)
	for _, p := range co.pending {
		for _, sh := range p.t.Shards() {
			shards[sh] = true
		}
	}
	// Deterministic send order: the simulation's event order follows it.
	order := make([]int, 0, len(shards))
	for sh := range shards {
		order = append(order, sh)
	}
	sort.Ints(order)
	for _, sh := range order {
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			if rep == co.gvec[sh]%co.cfg.Replicas() {
				continue
			}
			co.node.Send(co.cluster.serverNode(sh, rep), slowInquiry{Coord: co.node.ID()})
		}
	}
}

func (co *Coordinator) onSlowInquiryRep(from simnet.NodeID, m slowInquiryRep) {
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	// A follower whose sync-point passed the leader-assigned log position of
	// a pending transaction counts as a slow reply for it.
	for _, p := range co.pending {
		lf, ok := p.fast[m.Shard][co.gvec[m.Shard]%co.cfg.Replicas()]
		if !ok || m.SyncPoint <= lf.LogPos {
			continue
		}
		byRep := p.slow[m.Shard]
		if byRep == nil {
			byRep = make(map[int]slowReply)
			p.slow[m.Shard] = byRep
		}
		byRep[m.Replica] = slowReply{viewInfo: m.viewInfo, Shard: m.Shard, Replica: m.Replica, ID: p.t.ID, TS: lf.TS}
	}
	// Evaluate in submission order: completions run client callbacks and
	// sends, so map-iteration order here would diverge runs.
	for _, id := range co.pendingInOrder() {
		if p, ok := co.pending[id]; ok {
			co.evaluate(p)
		}
	}
}

// sortIDs orders transaction IDs deterministically by (Coord, Seq) — the
// canonical ordering every map-keyed scan must apply before its results feed
// message sends or callbacks, or whole simulation runs diverge.
func sortIDs(ids []txn.ID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Coord != ids[j].Coord {
			return ids[i].Coord < ids[j].Coord
		}
		return ids[i].Seq < ids[j].Seq
	})
}

// pendingInOrder returns the pending transaction IDs in submission (sequence)
// order; all of a coordinator's IDs share its Coord component.
func (co *Coordinator) pendingInOrder() []txn.ID {
	ids := make([]txn.ID, 0, len(co.pending))
	for id := range co.pending {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// evaluate runs Algorithm 3's quorum checks and completes the transaction
// when every involved shard fast- or slow-committed with a consistent
// leader timestamp.
func (co *Coordinator) evaluate(p *pendingTxn) {
	shards := p.t.Shards()
	var agreedTS txn.Timestamp
	results := make(map[int][]byte, len(shards))
	fastPath := true
	leaderReplies := make([]fastReply, 0, len(shards))
	for _, sh := range shards {
		leaderRep := co.gvec[sh] % co.cfg.Replicas()
		lf, ok := p.fast[sh][leaderRep]
		if !ok {
			return // no leader reply yet (line 15–16)
		}
		leaderReplies = append(leaderReplies, lf)
		fastQ := 1 // the leader
		for rep, fr := range p.fast[sh] {
			if rep != leaderRep && fr.Hash == lf.Hash && fr.TS.Equal(lf.TS) {
				fastQ++
			}
		}
		slowQ := 0
		for rep, sr := range p.slow[sh] {
			if rep != leaderRep && sr.TS.Equal(lf.TS) {
				slowQ++
			}
		}
		if fastQ >= co.cfg.SuperQuorum() {
			// fast-committed on this shard
		} else if slowQ >= co.cfg.F {
			fastPath = false // slow-committed
		} else {
			return // not committed yet (line 26–27)
		}
		results[sh] = lf.Ret
		if agreedTS.IsZero() {
			agreedTS = lf.TS
		}
	}
	// Leaders must all have used the same timestamp (line 28–32).
	for _, lf := range leaderReplies {
		if !lf.TS.Equal(agreedTS) {
			if co.cfg.EpsilonBound > 0 {
				// Coordination-free mode has no agreement to converge the
				// timestamps; abort and let the application retry (§6).
				co.finish(p, txn.Result{Aborted: true, Retries: p.retries})
				co.Aborts++
			}
			return
		}
	}
	co.finish(p, txn.Result{OK: true, PerShard: results, FastPath: fastPath, Retries: p.retries, TS: agreedTS})
}

func (co *Coordinator) finish(p *pendingTxn, res txn.Result) {
	delete(co.pending, p.t.ID)
	if p.done != nil {
		p.done(res)
	}
}

// Latency returns the submission time of a pending transaction (harness).
func (p *pendingTxn) Latency(now time.Duration) time.Duration { return now - p.start }

// Outstanding returns the number of in-flight transactions.
func (co *Coordinator) Outstanding() int { return len(co.pending) }

func (co *Coordinator) onVMInfo(m vmInfo) { co.adoptView(m.GView, m.GVec, m.GMode) }

func (co *Coordinator) adoptView(gv int, gvec []int, mode Mode) {
	if gv <= co.gview {
		return
	}
	co.gview = gv
	copy(co.gvec, gvec)
	co.gmode = mode
	// Replies gathered under the old view are useless; resubmit in the new
	// view (§4: "In case of a view change, the coordinator retries"), in
	// deterministic submission order.
	for _, id := range co.pendingInOrder() {
		p := co.pending[id]
		p.fast = make(map[int]map[int]fastReply)
		p.slow = make(map[int]map[int]slowReply)
		co.multicast(p)
	}
}
