package tiga

import (
	"sort"
	"time"

	"tiga/internal/admit"
	"tiga/internal/clocks"
	"tiga/internal/pool"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/trace"
	"tiga/internal/txn"
)

// pendingTxn tracks one outstanding transaction at the coordinator. It is
// drawn from the coordinator's freelist at launch and recycled at finish, so
// the reply arrays are reused across transactions: fast/slow hold the newest
// reply per (involved shard, replica), indexed shardPos*replicas+replica,
// with the parallel set flags distinguishing "no reply yet" from a zero one.
type pendingTxn struct {
	t       *txn.Txn
	ts      txn.Timestamp
	start   time.Duration
	done    func(txn.Result)
	retries int
	shards  []int // t.Shards(), cached (memoized, not owned — never mutated)
	fast    []fastReply
	fastSet []bool
	slow    []slowReply
	slowSet []bool
}

// shardPos returns the index of sh in the involved-shard list, or -1 when the
// transaction does not touch sh (e.g. a broadcast inquiry reply).
func (p *pendingTxn) shardPos(sh int) int {
	for i, s := range p.shards {
		if s == sh {
			return i
		}
	}
	return -1
}

// Coordinator submits transactions per §3.1 (future-timestamp initialization)
// and §3.4/§3.7 (fast/slow quorum checks, Algorithm 3). Coordinators are
// stateless with respect to the servers: any coordinator can recover another's
// transaction, and a rebooted coordinator just refetches the view.
type Coordinator struct {
	cfg     Config
	cluster *Cluster
	node    *simnet.Node
	clock   clocks.Clock

	idx int32 // coordinator id; txn.ID.Coord
	seq uint64

	gview int
	gvec  []int
	gmode Mode

	// owd holds the EWMA one-way-delay estimate per server node, measured
	// with the synchronized clocks (§3.1). Clock error feeds directly into
	// these estimates, which is how bad clocks hurt Tiga's latency (§5.7).
	owd map[simnet.NodeID]time.Duration

	pending map[txn.ID]*pendingTxn

	// Local snapshot reads (Config.LocalReads): outstanding reads by Seq
	// and the cached nearest replica per shard (see snapreads.go).
	reads   map[uint64]*pendingRead
	nearest []int

	// gate is the admission-control gate (Config.AdmitCap etc.); disabled
	// by default, it passes submissions straight through.
	gate admit.Gate

	// ptPool recycles pendingTxn envelopes (launch -> finish lifecycle, all
	// on this coordinator). The scratch slices below back headroom's OWD
	// sort, pendingInOrder's deterministic ordering, and inquireSlow's
	// involved-shard set — per-call allocations otherwise.
	ptPool     *pool.Free[pendingTxn]
	owdScratch []time.Duration
	idScratch  []txn.ID
	shardSeen  []bool
	shardOrder []int

	// Retries counts protocol-level re-submissions (stats for the harness).
	Retries int64
	Aborts  int64
}

func newCoordinator(c *Cluster, idx int32, node *simnet.Node, clk clocks.Clock) *Coordinator {
	co := &Coordinator{
		cfg: c.Cfg, cluster: c, node: node, clock: clk, idx: idx,
		gvec:    make([]int, c.Cfg.Shards),
		gmode:   c.initialMode,
		owd:     make(map[simnet.NodeID]time.Duration),
		pending: make(map[txn.ID]*pendingTxn),
		reads:   make(map[uint64]*pendingRead),
		ptPool:  pool.New[pendingTxn](),
	}
	co.gate = admit.Gate{
		Cap: c.Cfg.AdmitCap, Queue: c.Cfg.AdmitQueue, ShedOldest: c.Cfg.ShedOldest,
		Now: func() time.Duration { return c.Net.Sim().Now() },
	}
	copy(co.gvec, c.initialGVec)
	node.SetHandler(co.handle)
	return co
}

// Node returns the coordinator's simnet node.
func (co *Coordinator) Node() *simnet.Node { return co.node }

func (co *Coordinator) now() time.Duration { return co.clock.Read(co.cluster.Net.Sim().Now()) }

// start probes every server to seed the OWD estimates.
func (co *Coordinator) start() {
	for sh := 0; sh < co.cfg.Shards; sh++ {
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			n := co.cluster.serverNode(sh, rep)
			// Seed with the true base OWD so early transactions are sane;
			// probes and reply samples keep refining it.
			co.owd[n] = co.cluster.Net.BaseOWD(co.node.Region(), co.cluster.Net.Node(n).Region())
			co.node.Send(n, probeMsg{SendClock: co.now(), Coord: co.node.ID()})
		}
	}
	if co.cfg.BatchSlowReplies {
		co.node.Every(10*time.Millisecond, func() bool {
			co.inquireSlow()
			return true
		})
	}
}

func (co *Coordinator) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *fastReply:
		co.onFastReply(from, m)
		co.cluster.msgs.fastRep.Put(m)
	case *slowReply:
		co.onSlowReply(m)
		co.cluster.msgs.slowRep.Put(m)
	case slowInquiryRep:
		co.onSlowInquiryRep(from, m)
	case snapread.Rep:
		co.onSnapRep(m)
	case probeRep:
		co.updateOWD(from, m.OWD)
	case vmInfo:
		co.onVMInfo(m)
	case viewChangeReq:
		co.adoptView(m.GView, m.GVec, m.GMode)
	}
}

func (co *Coordinator) updateOWD(n simnet.NodeID, sample time.Duration) {
	if sample < 0 {
		sample = 0
	}
	cur, ok := co.owd[n]
	if !ok {
		co.owd[n] = sample
		return
	}
	co.owd[n] = cur + (sample-cur)/4 // EWMA, α = 0.25
}

// headroom computes the future-timestamp headroom (§3.1): the maximum over
// involved shards of the super-quorum-th smallest OWD, plus Δ.
func (co *Coordinator) headroom(t *txn.Txn) time.Duration {
	if co.cfg.ZeroHeadroom {
		return 0
	}
	var h time.Duration
	for _, sh := range t.Shards() {
		owds := co.owdScratch[:0]
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			owds = append(owds, co.owd[co.cluster.serverNode(sh, rep)])
		}
		co.owdScratch = owds
		// Super quorum of the closest replicas.
		for i := 1; i < len(owds); i++ {
			for j := i; j > 0 && owds[j] < owds[j-1]; j-- {
				owds[j], owds[j-1] = owds[j-1], owds[j]
			}
		}
		sq := co.cfg.SuperQuorum()
		if sq > len(owds) {
			sq = len(owds)
		}
		if d := owds[sq-1]; d > h {
			h = d
		}
	}
	h += co.cfg.Delta + co.cfg.HeadroomDelta
	if h < 0 {
		h = 0
	}
	return h
}

// Submit hands t to the admission gate; admitted transactions launch into
// the protocol via launch, queued ones wait for a slot, and overflow is shed
// with Result.Shed. With admission control off (the default) the gate is a
// straight pass-through.
func (co *Coordinator) Submit(t *txn.Txn, done func(txn.Result)) {
	co.gate.Submit(t, done, co.launch)
}

// launch multicasts t to every replica of its involved shards with a future
// timestamp and invokes done when the transaction commits.
func (co *Coordinator) launch(t *txn.Txn, done func(txn.Result)) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	p := co.ptPool.Get()
	p.t = t
	p.ts = txn.Timestamp{}
	p.start = co.cluster.Net.Sim().Now()
	p.done = done
	p.retries = 0
	p.shards = t.Shards()
	n := len(p.shards) * co.cfg.Replicas()
	if cap(p.fast) < n {
		p.fast = make([]fastReply, n)
		p.fastSet = make([]bool, n)
		p.slow = make([]slowReply, n)
		p.slowSet = make([]bool, n)
	} else {
		p.fast = p.fast[:n]
		p.fastSet = p.fastSet[:n]
		p.slow = p.slow[:n]
		p.slowSet = p.slowSet[:n]
		clear(p.fast) // drop stale Ret references along with the flags
		clear(p.fastSet)
		clear(p.slow)
		clear(p.slowSet)
	}
	co.pending[t.ID] = p
	co.multicast(p)
	co.armRetry(p)
}

func (co *Coordinator) multicast(p *pendingTxn) {
	p.t.Trace.Mark(co.cluster.Net.Sim().Now(), trace.PhaseDispatch)
	sendClock := co.now()
	// Retries carry a fresh, larger timestamp (Appendix B): servers
	// re-position the pending transaction to it, which re-converges the
	// leaders' queue orders when local timestamp bumps made them diverge.
	p.ts = txn.Timestamp{Time: sendClock + co.headroom(p.t), Coord: co.idx, Seq: p.t.ID.Seq}
	for _, sh := range p.shards {
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			m := co.cluster.msgs.txn.Get()
			*m = txnMsg{T: p.t, TS: p.ts, SendClock: sendClock, Coord: co.node.ID(), GView: co.gview, Retry: p.retries}
			co.node.Send(co.cluster.serverNode(sh, rep), m)
		}
	}
}

func (co *Coordinator) armRetry(p *pendingTxn) {
	id := p.t.ID
	co.node.After(co.cfg.RetryTimeout, func() {
		cur, ok := co.pending[id]
		if !ok || cur != p {
			return
		}
		p.retries++
		co.Retries++
		// The wait that expired into this timeout is retry-attributed: the
		// mark advances the trace cursor, so stale stamps from the abandoned
		// attempt clamp to zero in the breakdown walk.
		p.t.Trace.Mark(co.cluster.Net.Sim().Now(), trace.PhaseRetry)
		// The view may have changed under us — refresh, then resubmit.
		co.node.Send(co.cluster.vmLeaderNode(), vmInquire{From: co.node.ID()})
		co.multicast(p)
		co.armRetry(p)
	})
}

func (co *Coordinator) onFastReply(from simnet.NodeID, m *fastReply) {
	if m.GView > co.gview {
		co.node.Send(co.cluster.vmLeaderNode(), vmInquire{From: co.node.ID()})
		return
	}
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	p, ok := co.pending[m.ID]
	if !ok {
		return
	}
	if m.OWD > 0 {
		co.updateOWD(from, m.OWD)
	}
	if i := p.shardPos(m.Shard); i >= 0 {
		j := i*co.cfg.Replicas() + m.Replica
		if p.fastSet[j] && m.TS.Less(p.fast[j].TS) {
			return // stale (a newer reply with a larger timestamp already arrived)
		}
		p.fast[j] = *m // copy: the message is recycled after return
		p.fast[j].RecvS = co.cluster.Net.Sim().Now()
		p.fastSet[j] = true
	}
	co.evaluate(p)
}

func (co *Coordinator) onSlowReply(m *slowReply) {
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	p, ok := co.pending[m.ID]
	if !ok {
		return
	}
	if i := p.shardPos(m.Shard); i >= 0 {
		j := i*co.cfg.Replicas() + m.Replica
		if p.slowSet[j] && m.TS.Less(p.slow[j].TS) {
			return
		}
		p.slow[j] = *m
		p.slow[j].RecvS = co.cluster.Net.Sim().Now()
		p.slowSet[j] = true
	}
	co.evaluate(p)
}

// inquireSlow implements the Appendix E optimization: instead of per-entry
// slow replies, periodically ask followers for their sync-points.
func (co *Coordinator) inquireSlow() {
	if len(co.pending) == 0 {
		return
	}
	if co.shardSeen == nil {
		co.shardSeen = make([]bool, co.cfg.Shards)
	}
	order := co.shardOrder[:0]
	for _, p := range co.pending {
		for _, sh := range p.shards {
			if !co.shardSeen[sh] {
				co.shardSeen[sh] = true
				order = append(order, sh)
			}
		}
	}
	// Deterministic send order: the simulation's event order follows it.
	sort.Ints(order)
	co.shardOrder = order
	for _, sh := range order {
		co.shardSeen[sh] = false
		for rep := 0; rep < co.cfg.Replicas(); rep++ {
			if rep == co.gvec[sh]%co.cfg.Replicas() {
				continue
			}
			co.node.Send(co.cluster.serverNode(sh, rep), slowInquiry{Coord: co.node.ID()})
		}
	}
}

func (co *Coordinator) onSlowInquiryRep(from simnet.NodeID, m slowInquiryRep) {
	if m.GView != co.gview || m.LView != co.gvec[m.Shard] {
		return
	}
	// A follower whose sync-point passed the leader-assigned log position of
	// a pending transaction counts as a slow reply for it.
	R := co.cfg.Replicas()
	leaderRep := co.gvec[m.Shard] % R
	for _, p := range co.pending {
		i := p.shardPos(m.Shard)
		if i < 0 || !p.fastSet[i*R+leaderRep] {
			continue
		}
		lf := &p.fast[i*R+leaderRep]
		if m.SyncPoint <= lf.LogPos {
			continue
		}
		j := i*R + m.Replica
		p.slow[j] = slowReply{viewInfo: m.viewInfo, Shard: m.Shard, Replica: m.Replica, ID: p.t.ID, TS: lf.TS,
			RecvS: co.cluster.Net.Sim().Now()}
		p.slowSet[j] = true
	}
	// Evaluate in submission order: completions run client callbacks and
	// sends, so map-iteration order here would diverge runs.
	for _, id := range co.pendingInOrder() {
		if p, ok := co.pending[id]; ok {
			co.evaluate(p)
		}
	}
}

// sortIDs orders transaction IDs deterministically by (Coord, Seq) — the
// canonical ordering every map-keyed scan must apply before its results feed
// message sends or callbacks, or whole simulation runs diverge.
func sortIDs(ids []txn.ID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Coord != ids[j].Coord {
			return ids[i].Coord < ids[j].Coord
		}
		return ids[i].Seq < ids[j].Seq
	})
}

// pendingInOrder returns the pending transaction IDs in submission (sequence)
// order; all of a coordinator's IDs share its Coord component. The returned
// slice is coordinator-owned scratch, valid until the next call.
func (co *Coordinator) pendingInOrder() []txn.ID {
	ids := co.idScratch[:0]
	for id := range co.pending {
		ids = append(ids, id)
	}
	sortIDs(ids)
	co.idScratch = ids
	return ids
}

// evaluate runs Algorithm 3's quorum checks and completes the transaction
// when every involved shard fast- or slow-committed with a consistent
// leader timestamp. Evaluate runs on every reply, so the not-yet-committed
// paths allocate nothing: the result map is only built once the transaction
// actually commits.
func (co *Coordinator) evaluate(p *pendingTxn) {
	var agreedTS txn.Timestamp
	fastPath := true
	mismatch := false
	R := co.cfg.Replicas()
	for i, sh := range p.shards {
		leaderRep := co.gvec[sh] % R
		if !p.fastSet[i*R+leaderRep] {
			return // no leader reply yet (line 15–16)
		}
		lf := &p.fast[i*R+leaderRep]
		fastQ := 1 // the leader
		slowQ := 0
		for rep := 0; rep < R; rep++ {
			if rep == leaderRep {
				continue
			}
			j := i*R + rep
			if p.fastSet[j] && p.fast[j].Hash == lf.Hash && p.fast[j].TS.Equal(lf.TS) {
				fastQ++
			}
			if p.slowSet[j] && p.slow[j].TS.Equal(lf.TS) {
				slowQ++
			}
		}
		if fastQ >= co.cfg.SuperQuorum() {
			// fast-committed on this shard
		} else if slowQ >= co.cfg.F {
			fastPath = false // slow-committed
		} else {
			return // not committed yet (line 26–27)
		}
		if agreedTS.IsZero() {
			agreedTS = lf.TS
		} else if !lf.TS.Equal(agreedTS) {
			mismatch = true
		}
	}
	// Leaders must all have used the same timestamp (line 28–32).
	if mismatch {
		if co.cfg.EpsilonBound > 0 {
			// Coordination-free mode has no agreement to converge the
			// timestamps; abort and let the application retry (§6).
			co.finish(p, txn.Result{Aborted: true, Retries: p.retries})
			co.Aborts++
		}
		return
	}
	results := make(map[int][]byte, len(p.shards))
	for i, sh := range p.shards {
		results[sh] = p.fast[i*R+co.gvec[sh]%R].Ret
	}
	co.traceCommitPath(p, fastPath)
	co.finish(p, txn.Result{OK: true, PerShard: results, FastPath: fastPath, Retries: p.retries, TS: agreedTS})
}

// traceCommitPath reconstructs the committing transaction's critical path
// from the span stamps its replies carried back, and marks it on the trace.
// The decisive reply is the latest-arriving fast reply — the last leg the
// coordinator actually waited for; its server-side stamps decompose the
// round trip into flight out, headroom wait, queue reorder, execution, and
// flight back. Slow-path commits additionally waited for follower sync
// acknowledgements, attributed to replication. Stamps older than the trace
// cursor (stale attempts superseded by a retry) clamp to zero in the
// breakdown walk, so the sum invariant holds unconditionally.
func (co *Coordinator) traceCommitPath(p *pendingTxn, fastPath bool) {
	tr := p.t.Trace
	if tr == nil {
		return
	}
	var dec *fastReply
	for j := range p.fast {
		if p.fastSet[j] && (dec == nil || p.fast[j].RecvS > dec.RecvS) {
			dec = &p.fast[j]
		}
	}
	if dec != nil {
		tr.Mark(dec.ArriveS, trace.PhaseFlight)
		tr.Mark(dec.EligS, trace.PhaseHeadroom)
		tr.Mark(dec.RelS, trace.PhasePQ)
		tr.Mark(dec.DoneS, trace.PhaseExec)
		tr.Mark(dec.RecvS, trace.PhaseFlight)
	}
	if !fastPath {
		var srecv time.Duration
		for j := range p.slow {
			if p.slowSet[j] && p.slow[j].RecvS > srecv {
				srecv = p.slow[j].RecvS
			}
		}
		tr.Mark(srecv, trace.PhaseRepl)
	}
	tr.Mark(co.cluster.Net.Sim().Now(), trace.PhaseDecision)
}

func (co *Coordinator) finish(p *pendingTxn, res txn.Result) {
	delete(co.pending, p.t.ID)
	if p.done != nil {
		p.done(res)
	}
	// Recycle after the callback: done may synchronously submit the next
	// transaction (closed-loop clients), which draws from the same pool.
	co.ptPool.Put(p)
}

// Latency returns the submission time of a pending transaction (harness).
func (p *pendingTxn) Latency(now time.Duration) time.Duration { return now - p.start }

// Outstanding returns the number of in-flight transactions.
func (co *Coordinator) Outstanding() int { return len(co.pending) }

func (co *Coordinator) onVMInfo(m vmInfo) { co.adoptView(m.GView, m.GVec, m.GMode) }

func (co *Coordinator) adoptView(gv int, gvec []int, mode Mode) {
	if gv <= co.gview {
		return
	}
	co.gview = gv
	copy(co.gvec, gvec)
	co.gmode = mode
	// Replies gathered under the old view are useless; resubmit in the new
	// view (§4: "In case of a view change, the coordinator retries"), in
	// deterministic submission order.
	for _, id := range co.pendingInOrder() {
		p := co.pending[id]
		clear(p.fast)
		clear(p.fastSet)
		clear(p.slow)
		clear(p.slowSet)
		co.multicast(p)
	}
}
