package tiga

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiga/internal/txn"
)

func mkRec(tsv int64, coord int32, seq uint64) *rec {
	return &rec{
		id: txn.ID{Coord: coord, Seq: seq},
		ts: txn.Timestamp{Time: time.Duration(tsv), Coord: coord, Seq: seq},
	}
}

func sorted(q *prioQueue) bool {
	for i := 1; i < len(q.items); i++ {
		if q.items[i].ts.Less(q.items[i-1].ts) {
			return false
		}
	}
	return true
}

func TestPQInsertOrder(t *testing.T) {
	var q prioQueue
	for _, v := range []int64{5, 1, 9, 3, 7} {
		q.insert(mkRec(v, 1, uint64(v)))
	}
	if !sorted(&q) {
		t.Fatal("queue not sorted after inserts")
	}
	if q.items[0].ts.Time != 1 || q.items[4].ts.Time != 9 {
		t.Fatal("head/tail wrong")
	}
}

func TestPQEraseMiddleAndDuplicateTimes(t *testing.T) {
	var q prioQueue
	// Several records with the SAME ts.Time but different tie-breaks.
	a, b, c := mkRec(5, 1, 1), mkRec(5, 1, 2), mkRec(5, 2, 1)
	q.insert(a)
	q.insert(c)
	q.insert(b)
	q.erase(b)
	if q.len() != 2 || !a.inPQ == false && false {
		t.Fatal("erase")
	}
	for _, it := range q.items {
		if it == b {
			t.Fatal("erased record still present")
		}
	}
	if b.inPQ {
		t.Fatal("inPQ flag not cleared")
	}
	q.erase(b) // double erase is a no-op
	if q.len() != 2 {
		t.Fatal("double erase corrupted the queue")
	}
}

func TestPQReposition(t *testing.T) {
	var q prioQueue
	a, b := mkRec(1, 1, 1), mkRec(5, 1, 2)
	q.insert(a)
	q.insert(b)
	q.reposition(a, txn.Timestamp{Time: 9, Coord: 1, Seq: 1})
	if q.items[0] != b || q.items[1] != a {
		t.Fatal("reposition did not move the record")
	}
	if !sorted(&q) {
		t.Fatal("unsorted after reposition")
	}
}

// Property: any interleaving of insert/erase/reposition keeps the queue
// sorted, keeps inPQ flags accurate, and never loses or duplicates records.
func TestPQOperationsProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		TS    uint16
		Which uint8
	}
	check := func(ops []op) bool {
		var q prioQueue
		var live []*rec
		seq := uint64(0)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // insert
				seq++
				r := mkRec(int64(o.TS), 1, seq)
				q.insert(r)
				live = append(live, r)
			case 1: // erase
				if len(live) == 0 {
					continue
				}
				i := int(o.Which) % len(live)
				q.erase(live[i])
				live = append(live[:i], live[i+1:]...)
			case 2: // reposition
				if len(live) == 0 {
					continue
				}
				i := int(o.Which) % len(live)
				r := live[i]
				q.reposition(r, txn.Timestamp{Time: time.Duration(o.TS), Coord: r.ts.Coord, Seq: r.ts.Seq})
			}
			if !sorted(&q) || q.len() != len(live) {
				return false
			}
		}
		// Every live record present exactly once with inPQ set.
		seen := make(map[*rec]int)
		for _, it := range q.items {
			seen[it]++
			if !it.inPQ {
				return false
			}
		}
		for _, r := range live {
			if seen[r] != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the expired prefix invariant pump relies on — every record with
// ts <= cutoff precedes every record with ts > cutoff.
func TestPQExpiredPrefixProperty(t *testing.T) {
	check := func(tss []uint16, cutoff uint16) bool {
		var q prioQueue
		for i, v := range tss {
			q.insert(mkRec(int64(v), 1, uint64(i+1)))
		}
		passed := false
		for _, it := range q.items {
			expired := it.ts.Time <= time.Duration(cutoff)
			if passed && expired {
				return false // expired record after an unexpired one
			}
			if !expired {
				passed = true
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
