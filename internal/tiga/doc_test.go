package tiga_test

import (
	"fmt"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/tiga"
	"tiga/internal/txn"
)

// Example demonstrates the minimal end-to-end flow: build a simulated
// geo-distributed cluster, submit a multi-shard transaction, and commit it in
// one wide-area round trip.
func Example() {
	sim := simnet.NewSim(1)
	net := simnet.NewNetwork(sim, simnet.GeoConfig(0, 0))
	cluster := tiga.NewCluster(net, tiga.DefaultConfig(2, 1),
		tiga.ColocatedPlacement([]simnet.Region{simnet.RegionSouthCarolina}),
		clocks.NewFactory(clocks.ModelPerfect, time.Minute, 1),
		func(shard int, st *store.Store) {
			st.Seed(fmt.Sprintf("balance-%d", shard), txn.EncodeInt(100))
		})
	cluster.Start()

	sim.At(10*time.Millisecond, func() {
		transfer := &txn.Txn{Pieces: map[int]*txn.Piece{
			0: txn.IncrementPiece("balance-0"),
			1: txn.IncrementPiece("balance-1"),
		}}
		cluster.Coords[0].Submit(transfer, func(r txn.Result) {
			fmt.Printf("committed=%v fastPath=%v\n", r.OK, r.FastPath)
		})
	})
	sim.Run(time.Second)
	// Output: committed=true fastPath=true
}
