package tiga

import (
	"time"

	"tiga/internal/protocol"
	"tiga/internal/simnet"
	"tiga/internal/snapread"
	"tiga/internal/trace"
	"tiga/internal/txn"
)

// This file is the coordinator side of the local snapshot-read path
// (Config.LocalReads): read-only transactions skip the timestamp-agreement
// machinery entirely and instead ask the nearest replica of each touched
// shard for a consistent snapshot at one timestamp — 0 WRTT when the
// replicas are local, against the coordinator path's 1 WRTT floor.

// pendingRead tracks one outstanding local read-only transaction: one
// snapshot request per involved shard, each sent to that shard's nearest
// replica.
type pendingRead struct {
	t       *txn.Txn
	at      time.Duration // snapshot timestamp (coordinator clock domain)
	start   time.Duration
	done    func(txn.Result)
	got     map[int]bool // shards answered (dedups retried replies)
	vals    map[int][]byte
	waited  time.Duration // max SAFETIME delay across shards
	reads   []txn.ReadObs
	retries int
}

// SubmitLocalRead serves t (which must be read-only) at a single snapshot
// timestamp: the coordinator's clock minus the configured staleness bound.
// With ReadStaleness 0 the read is strong — the serving replicas block until
// their watermarks cover "now", which costs watermark lag (tiny at leaders
// with Tiga's synchronized clocks, a durability round-trip at followers). A
// positive bound trades that wait for bounded staleness.
func (co *Coordinator) SubmitLocalRead(t *txn.Txn, done func(txn.Result)) {
	co.seq++
	t.ID = txn.ID{Coord: co.idx, Seq: co.seq}
	at := co.now() - co.cfg.ReadStaleness
	if at < 0 {
		at = 0
	}
	pr := &pendingRead{
		t: t, at: at, start: co.cluster.Net.Sim().Now(), done: done,
		got: make(map[int]bool),
	}
	co.reads[co.seq] = pr
	co.sendSnapReqs(pr)
	co.armReadRetry(pr)
}

func (co *Coordinator) sendSnapReqs(pr *pendingRead) {
	for _, sh := range pr.t.Shards() {
		if pr.got[sh] {
			continue
		}
		piece := pr.t.Pieces[sh]
		req := snapread.Req{
			Shard: sh, Coord: co.idx, Seq: pr.t.ID.Seq, At: pr.at, Keys: piece.ReadSet,
		}
		if piece.Interned() {
			req.KeyIDs = piece.ReadIDs
		}
		co.node.Send(co.cluster.serverNode(sh, co.nearestReplica(sh)), req)
	}
}

// armReadRetry re-sends unanswered snapshot requests after the retry
// timeout. A read to a partitioned or crashed replica is therefore delayed
// until the fault heals, never answered wrongly and never silently lost —
// the property the chaos-armed localreads experiment checks.
func (co *Coordinator) armReadRetry(pr *pendingRead) {
	seq := pr.t.ID.Seq
	co.node.After(co.cfg.RetryTimeout, func() {
		cur, ok := co.reads[seq]
		if !ok || cur != pr {
			return
		}
		pr.retries++
		co.Retries++
		pr.t.Trace.Mark(co.cluster.Net.Sim().Now(), trace.PhaseRetry)
		co.sendSnapReqs(pr)
		co.armReadRetry(pr)
	})
}

func (co *Coordinator) onSnapRep(m snapread.Rep) {
	pr, ok := co.reads[m.Seq]
	if !ok || pr.got[m.Shard] {
		return
	}
	pr.got[m.Shard] = true
	if m.Waited > pr.waited {
		pr.waited = m.Waited
	}
	keys := pr.t.Pieces[m.Shard].ReadSet
	for i := range keys {
		if i < len(m.Seen) {
			pr.reads = append(pr.reads, txn.ReadObs{Key: keys[i], TS: m.Seen[i]})
		}
	}
	if pr.vals == nil {
		pr.vals = make(map[int][]byte, len(pr.t.Pieces))
	}
	if len(m.Vals) > 0 {
		pr.vals[m.Shard] = m.Vals[0]
	}
	if len(pr.got) < len(pr.t.Pieces) {
		return
	}
	delete(co.reads, m.Seq)
	// The decisive reply is this one — it completed the read. Its stamps
	// split the round trip into flight out, SAFETIME wait at the replica
	// (watermark lag, including the serve cost), and flight back.
	if tr := pr.t.Trace; tr != nil {
		tr.Mark(m.ArriveS, trace.PhaseFlight)
		tr.Mark(m.ServedS, trace.PhaseSafeTime)
		tr.Mark(co.cluster.Net.Sim().Now(), trace.PhaseFlight)
	}
	pr.done(txn.Result{
		OK: true, FastPath: true, Retries: pr.retries, PerShard: pr.vals,
		SnapshotAt: pr.at, Waited: pr.waited, Reads: pr.reads,
	})
}

// nearestReplica picks (and caches) the lowest-RTT replica of a shard from
// this coordinator's region, using the network's base delays — the same
// ground truth the OWD probes converge to.
func (co *Coordinator) nearestReplica(sh int) int {
	if co.nearest == nil {
		co.nearest = make([]int, co.cfg.Shards)
		for i := range co.nearest {
			co.nearest[i] = -1
		}
	}
	if co.nearest[sh] < 0 {
		net := co.cluster.Net
		co.nearest[sh] = snapread.Nearest(net, co.node.Region(), co.cfg.Replicas(),
			func(rep int) simnet.Region {
				return net.Node(co.cluster.serverNode(sh, rep)).Region()
			})
	}
	return co.nearest[sh]
}

// SubmitLocalRead implements protocol.SnapshotReadable.
func (c *Cluster) SubmitLocalRead(coord int, t *txn.Txn, done func(txn.Result)) {
	c.Coords[coord].SubmitLocalRead(t, done)
}

// SafeTimes implements protocol.SnapshotReadable: every replica's current
// watermark in shard-major order.
func (c *Cluster) SafeTimes() []time.Duration {
	out := make([]time.Duration, 0, c.Cfg.Shards*c.Cfg.Replicas())
	for _, shard := range c.Servers {
		for _, s := range shard {
			out = append(out, s.safeTime)
		}
	}
	return out
}

// LieSafeTime makes one replica advertise a watermark ahead of its real one —
// fault injection for the snapshot-read checker tests.
func (c *Cluster) LieSafeTime(shard, replica int, ahead time.Duration) {
	c.Servers[shard][replica].LieSafeTime(ahead)
}

var _ protocol.SnapshotReadable = (*Cluster)(nil)
