package tiga

import (
	"sort"

	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// This file implements the server side of failure recovery (§4, Appendix B):
// global view changes (Algorithm 5) and server rejoin (Algorithm 6).

// flushLog empties the priority queue and optimistic tail into a log snapshot
// ordered by timestamp, appended after the synced prefix (Algorithm 5 lines
// 7–9). It does not mutate the server's own log.
func (s *Server) flushLog() []logEntry {
	out := make([]logEntry, 0, len(s.log)+len(s.tail)+s.pq.len())
	out = append(out, s.log...)
	var extra []logEntry
	for _, e := range s.tail {
		extra = append(extra, e)
	}
	for _, r := range s.pq.items {
		extra = append(extra, logEntry{ID: r.id, TS: r.ts, T: r.t})
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].TS.Less(extra[j].TS) })
	return append(out, extra...)
}

func (s *Server) onViewChangeReq(m viewChangeReq) {
	if m.GView <= s.gview || s.status == statusRecovering {
		return
	}
	s.enterView(m.GView, m.GVec, m.GMode)
	lead := s.gvec[s.shard] % s.cfg.Replicas()
	msg := viewChangeMsg{
		GView: s.gview, GVec: append([]int(nil), s.gvec...), GMode: s.gmode,
		LView: s.lview, Shard: s.shard, Replica: s.replica,
		LNV: s.lnv, SyncPoint: s.syncPoint, Log: s.flushLog(),
	}
	if lead == s.replica {
		s.onViewChange(&msg)
	} else {
		s.node.Send(s.cluster.serverNode(s.shard, lead), msg)
	}
}

// enterView switches to a newer global view and stops normal processing.
func (s *Server) enterView(gview int, gvec []int, mode Mode) {
	s.gview = gview
	copy(s.gvec, gvec)
	s.gmode = mode
	s.lview = s.gvec[s.shard]
	s.status = statusViewChange
	s.vQuorum = make(map[int]*viewChangeMsg)
	s.tQuorum = make(map[int]*tsVerification)
	s.rebuilt = false
}

func (s *Server) onViewChange(m *viewChangeMsg) {
	if m.GView < s.gview || s.status == statusRecovering {
		return
	}
	if m.GView > s.gview {
		// The VM's request raced behind a peer's view-change message
		// (Algorithm 5 line 22): adopt the view from the message.
		s.enterView(m.GView, m.GVec, m.GMode)
		own := viewChangeMsg{
			GView: s.gview, GVec: append([]int(nil), s.gvec...), GMode: s.gmode,
			LView: s.lview, Shard: s.shard, Replica: s.replica,
			LNV: s.lnv, SyncPoint: s.syncPoint, Log: s.flushLog(),
		}
		s.vQuorum[s.replica] = &own
	}
	if s.status == statusNormal {
		// We already completed this view change; the sender missed the
		// start-view message — resend it.
		if s.IsLeader() && m.GView == s.gview {
			s.node.Send(s.cluster.serverNode(s.shard, m.Replica), startViewMsg{
				GView: s.gview, GVec: append([]int(nil), s.gvec...), GMode: s.gmode,
				LView: s.lview, Shard: s.shard, Log: s.log,
			})
		}
		return
	}
	if s.gvec[s.shard]%s.cfg.Replicas() != s.replica {
		return // not the new leader
	}
	s.vQuorum[m.Replica] = m
	if len(s.vQuorum) >= s.cfg.F+1 && !s.rebuilt {
		s.rebuildLog()
		s.verifyTimestamps()
	}
}

// rebuildLog reconstructs the shard log from f+1 surviving servers
// (Algorithm 5, rebuild-log): part (a) copies the log prefix of the server
// with the freshest view and largest sync-point; part (b) keeps any remaining
// entry present on at least ⌈f/2⌉+1 participants, ordered by timestamp.
func (s *Server) rebuildLog() {
	s.rebuilt = true
	largestLNV := -1
	for _, m := range s.vQuorum {
		if m.LNV > largestLNV {
			largestLNV = m.LNV
		}
	}
	var best *viewChangeMsg
	for _, m := range s.vQuorum {
		if m.LNV == largestLNV && (best == nil || m.SyncPoint > best.SyncPoint) {
			best = m
		}
	}
	newLog := append([]logEntry(nil), best.Log[:min(best.SyncPoint, len(best.Log))]...)
	inLog := make(map[txn.ID]int, len(newLog))
	for i, e := range newLog {
		inLog[e.ID] = i
	}
	// Part (b): count candidates across all participants.
	count := make(map[txn.ID]int)
	bodies := make(map[txn.ID]logEntry)
	for _, m := range s.vQuorum {
		seen := make(map[txn.ID]bool)
		for _, e := range m.Log {
			if _, ok := inLog[e.ID]; ok || seen[e.ID] {
				continue
			}
			seen[e.ID] = true
			count[e.ID]++
			if b, ok := bodies[e.ID]; !ok || b.TS.Less(e.TS) {
				bodies[e.ID] = e
			}
		}
	}
	need := (s.cfg.F+1)/2 + 1 // ⌈f/2⌉+1
	var partB []logEntry
	for id, c := range count {
		if c >= need {
			partB = append(partB, bodies[id])
		}
	}
	sort.Slice(partB, func(i, j int) bool { return partB[i].TS.Less(partB[j].TS) })
	s.log = append(newLog, partB...)
}

// verifyTimestamps starts the cross-shard timestamp verification (§4 step 4):
// new leaders exchange their recovered multi-shard entries, adopt entries
// recovered elsewhere that involve this shard, and take the maximum
// timestamp for entries recovered with inconsistent timestamps.
func (s *Server) verifyTimestamps() {
	if s.cfg.Shards == 1 {
		s.finishViewChange()
		return
	}
	var info []verifyEntry
	for _, e := range s.log {
		if len(e.T.Pieces) > 1 {
			info = append(info, verifyEntry{ID: e.ID, TS: e.TS, T: e.T, Shards: e.T.Shards()})
		}
	}
	for sh := 0; sh < s.cfg.Shards; sh++ {
		if sh == s.shard {
			continue
		}
		lead := s.gvec[sh] % s.cfg.Replicas()
		s.node.Send(s.cluster.serverNode(sh, lead), tsVerification{GView: s.gview, Shard: s.shard, Info: info})
	}
	s.maybeFinishVerification()
}

func (s *Server) onTsVerification(m *tsVerification) {
	if m.GView < s.gview {
		return
	}
	// Verification from a view we have not entered yet is stashed; the
	// completeness check validates views at use time.
	s.tQuorum[m.Shard] = m
	s.maybeFinishVerification()
}

func (s *Server) maybeFinishVerification() {
	if s.status != statusViewChange || !s.rebuilt {
		return
	}
	got := 0
	for _, m := range s.tQuorum {
		if m.GView == s.gview {
			got++
		}
	}
	if got < s.cfg.Shards-1 {
		return
	}
	// Merge: adopt missing entries involving this shard; max timestamps.
	pos := make(map[txn.ID]int, len(s.log))
	for i, e := range s.log {
		pos[e.ID] = i
	}
	for _, m := range s.tQuorum {
		if m.GView != s.gview {
			continue
		}
		for _, ve := range m.Info {
			involved := false
			for _, sh := range ve.Shards {
				if sh == s.shard {
					involved = true
					break
				}
			}
			if !involved {
				continue
			}
			if i, ok := pos[ve.ID]; ok {
				if s.log[i].TS.Less(ve.TS) {
					s.log[i].TS = ve.TS
				}
			} else {
				pos[ve.ID] = len(s.log)
				s.log = append(s.log, logEntry{ID: ve.ID, TS: ve.TS, T: ve.T})
			}
		}
	}
	sort.SliceStable(s.log, func(i, j int) bool { return s.log[i].TS.Less(s.log[j].TS) })
	s.finishViewChange()
}

// finishViewChange installs the recovered log, replays the store, broadcasts
// start-view to the shard's followers, and resumes normal processing.
func (s *Server) finishViewChange() {
	s.installLog(s.log)
	for rep := 0; rep < s.cfg.Replicas(); rep++ {
		if rep == s.replica {
			continue
		}
		s.node.Send(s.cluster.serverNode(s.shard, rep), startViewMsg{
			GView: s.gview, GVec: append([]int(nil), s.gvec...), GMode: s.gmode,
			LView: s.lview, Shard: s.shard, Log: s.log,
		})
	}
	s.lnv = s.lview
	s.status = statusNormal
}

func (s *Server) onStartView(m startViewMsg) {
	if m.GView < s.gview || s.status == statusRecovering {
		return
	}
	if m.GView > s.gview {
		s.enterView(m.GView, m.GVec, m.GMode)
	}
	if s.status != statusViewChange || m.LView != s.lview {
		return
	}
	s.installLog(m.Log)
	s.lnv = s.lview
	s.status = statusNormal
}

// installLog replaces the server's log and rebuilds all derived state: the
// store (from the latest valid checkpoint, else full replay), conflict maps,
// incremental hash, and commit/sync points.
func (s *Server) installLog(log []logEntry) {
	s.log = append([]logEntry(nil), log...)
	s.tail = make(map[txn.ID]logEntry)
	s.pq = prioQueue{}
	s.pendingSync = make(map[int]logSyncMsg)
	s.followerSP = make(map[int]int)
	s.recs = make(map[txn.ID]*rec)
	s.rMap = make(map[string]txn.Timestamp)
	s.wMap = make(map[string]txn.Timestamp)
	s.relHash.Reset()

	start := 0
	if s.checkpointPos > 0 && s.checkpointPos <= len(s.log) && s.checkpointValid() {
		s.st = s.checkpoint.Snapshot()
		start = s.checkpointPos
	} else {
		s.st = store.New()
		if s.cluster.Seed != nil {
			s.cluster.Seed(s.shard, s.st)
		}
		s.checkpointPos = 0
	}
	for i := 0; i < len(s.log); i++ {
		e := s.log[i]
		var res []byte
		if i >= start {
			if p := e.T.Pieces[s.shard]; p != nil {
				s.node.Work(s.cfg.ExecCost)
				res = s.st.Execute(e.ID, e.TS, p)
			}
			s.st.Commit(e.ID)
		}
		s.relHash.Add(e.ID, e.TS)
		if p := e.T.Pieces[s.shard]; p != nil {
			for _, k := range p.ReadSet {
				if cur, ok := s.rMap[k]; !ok || cur.Less(e.TS) {
					s.rMap[k] = e.TS
				}
			}
			for _, k := range p.WriteSet {
				if cur, ok := s.wMap[k]; !ok || cur.Less(e.TS) {
					s.wMap[k] = e.TS
				}
			}
		}
		s.recs[e.ID] = &rec{id: e.ID, t: e.T, piece: e.T.Pieces[s.shard], ts: e.TS,
			coord: s.cluster.coordNode(e.ID.Coord), executed: true, released: true, result: res}
	}
	s.syncPoint = len(s.log)
	s.commitPoint = len(s.log)
	s.applied = len(s.log)
}

// checkpointValid reports whether the recovered log prefix matches the basis
// of the last checkpoint (so the snapshot can seed the replay).
func (s *Server) checkpointValid() bool {
	if len(s.checkpointIDs) != s.checkpointPos || s.checkpointPos > len(s.log) {
		return false
	}
	for i, id := range s.checkpointIDs {
		if s.log[i].ID != id {
			return false
		}
	}
	return true
}

// ---- Rejoin (Algorithm 6) ----

// Rejoin restarts a crashed server as a recovering follower: it refetches the
// view from the view manager and state-transfers the log from its leader.
func (s *Server) Rejoin() {
	s.status = statusRecovering
	s.node.Send(s.cluster.vmLeaderNode(), vmInquire{From: s.node.ID()})
}

func (s *Server) onVMInfo(m vmInfo) {
	if s.status != statusRecovering {
		return
	}
	s.gview = m.GView
	copy(s.gvec, m.GVec)
	s.gmode = m.GMode
	s.lview = s.gvec[s.shard]
	if s.IsLeader() {
		// A recovering server cannot resume as leader; wait for the VM to
		// move leadership, then retry.
		s.node.After(s.cfg.HeartbeatEvery, func() { s.Rejoin() })
		return
	}
	s.node.Send(s.leaderNode(), stateTransferReq{GView: s.gview, LView: s.lview, Shard: s.shard, Replica: s.replica})
}

func (s *Server) onStateTransferReq(from simnet.NodeID, m stateTransferReq) {
	if s.status != statusNormal || m.GView != s.gview || m.LView != s.lview || !s.IsLeader() {
		return
	}
	s.node.Send(from, stateTransferRep{GView: s.gview, LView: s.lview, Log: s.log, SyncPoint: s.syncPoint})
}

func (s *Server) onStateTransferRep(m stateTransferRep) {
	if s.status != statusRecovering || m.GView != s.gview || m.LView != s.lview {
		return
	}
	s.installLog(m.Log)
	s.lnv = s.lview
	s.status = statusNormal
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
