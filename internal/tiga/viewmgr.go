package tiga

import (
	"time"

	"tiga/internal/simnet"
)

// vmReplica is one replica of the view manager (§4, Algorithm 4): a small
// replicated state machine holding <g-view, g-vec, g-mode>. It detects leader
// failures via heartbeats and drives global view changes. It is off the
// critical path of transaction processing.
type vmReplica struct {
	cluster *Cluster
	node    *simnet.Node
	rid     int

	vview int // view of the VM's own replication group (static here)

	gview int
	gvec  []int
	gmode Mode

	prepGView int
	prepGVec  []int
	prepGMode Mode
	prepQ     map[int]bool

	lastHB   map[[2]int]time.Duration
	inflight bool
}

func newVMReplica(c *Cluster, rid int, node *simnet.Node) *vmReplica {
	v := &vmReplica{
		cluster: c, node: node, rid: rid,
		gvec:   append([]int(nil), c.initialGVec...),
		gmode:  c.initialMode,
		lastHB: make(map[[2]int]time.Duration),
	}
	node.SetHandler(v.handle)
	return v
}

func (v *vmReplica) start() {
	if v.rid != 0 {
		return
	}
	now := v.cluster.Net.Sim().Now()
	for s := 0; s < v.cluster.Cfg.Shards; s++ {
		for r := 0; r < v.cluster.Cfg.Replicas(); r++ {
			v.lastHB[[2]int{s, r}] = now
		}
	}
	v.node.Every(v.cluster.Cfg.HeartbeatEvery, func() bool {
		v.checkFailures()
		return true
	})
}

func (v *vmReplica) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case heartbeatMsg:
		v.lastHB[[2]int{m.Shard, m.Replica}] = v.cluster.Net.Sim().Now()
	case vmInquire:
		v.node.Send(m.From, vmInfo{GView: v.gview, GVec: append([]int(nil), v.gvec...), GMode: v.gmode})
	case cmPrepare:
		v.onPrepare(from, m)
	case cmPrepareReply:
		v.onPrepareReply(m)
	case cmCommit:
		v.onCommit(m)
	}
}

func (v *vmReplica) alive(shard, rep int) bool {
	now := v.cluster.Net.Sim().Now()
	return now-v.lastHB[[2]int{shard, rep}] <= v.cluster.Cfg.HeartbeatTimeout
}

// checkFailures launches a view change when any current leader stops
// heartbeating (Algorithm 4).
func (v *vmReplica) checkFailures() {
	if v.inflight {
		return
	}
	n := v.cluster.Cfg.Replicas()
	failed := false
	for s := 0; s < v.cluster.Cfg.Shards; s++ {
		if !v.alive(s, v.gvec[s]%n) {
			failed = true
			break
		}
	}
	if !failed {
		return
	}
	newLeaders := v.findNewLeaders()
	v.prepGView = v.gview + 1
	v.prepGVec = make([]int, len(v.gvec))
	for s := range v.gvec {
		rOld := v.gvec[s] % n
		rNew := newLeaders[s]
		v.prepGVec[s] = v.gvec[s] + ((rNew-rOld)%n+n)%n
		if rNew != rOld && v.prepGVec[s] == v.gvec[s] {
			v.prepGVec[s] += n
		}
	}
	v.prepGMode = v.cluster.chooseMode(newLeaders)
	v.prepQ = map[int]bool{v.rid: true}
	v.inflight = true
	// Guard against a stalled change (lost prepares).
	v.node.After(4*v.cluster.Cfg.HeartbeatTimeout, func() { v.inflight = false })
	for _, nd := range v.cluster.vmNodes {
		if nd != v.node.ID() {
			v.node.Send(nd, cmPrepare{VView: v.vview, PGView: v.prepGView, PGVec: append([]int(nil), v.prepGVec...), PGMode: v.prepGMode})
		}
	}
}

// findNewLeaders picks one leader per shard, preferring a single replica
// column whose servers are all alive (co-located leaders, Algorithm 4
// find-new-leaders), else the column with the most alive servers.
func (v *vmReplica) findNewLeaders() []int {
	m, n := v.cluster.Cfg.Shards, v.cluster.Cfg.Replicas()
	for r := 0; r < n; r++ {
		all := true
		for s := 0; s < m; s++ {
			if !v.alive(s, r) {
				all = false
				break
			}
		}
		if all {
			out := make([]int, m)
			for s := range out {
				out[s] = r
			}
			return out
		}
	}
	best, bestCnt := 0, -1
	for r := 0; r < n; r++ {
		cnt := 0
		for s := 0; s < m; s++ {
			if v.alive(s, r) {
				cnt++
			}
		}
		if cnt > bestCnt {
			best, bestCnt = r, cnt
		}
	}
	out := make([]int, m)
	for s := 0; s < m; s++ {
		if v.alive(s, best) {
			out[s] = best
			continue
		}
		for r := 0; r < n; r++ {
			if v.alive(s, r) {
				out[s] = r
				break
			}
		}
	}
	return out
}

func (v *vmReplica) onPrepare(from simnet.NodeID, m cmPrepare) {
	if m.VView != v.vview {
		return
	}
	v.prepGView = m.PGView
	v.prepGVec = append([]int(nil), m.PGVec...)
	v.prepGMode = m.PGMode
	v.node.Send(from, cmPrepareReply{VView: v.vview, VRid: v.rid, PGView: m.PGView})
}

func (v *vmReplica) onPrepareReply(m cmPrepareReply) {
	if m.VView != v.vview || m.PGView != v.prepGView || v.prepQ == nil {
		return
	}
	v.prepQ[m.VRid] = true
	if len(v.prepQ) < 2 || v.prepGView <= v.gview { // f+1 of 3 VM replicas
		return
	}
	v.gview = v.prepGView
	v.gvec = append([]int(nil), v.prepGVec...)
	v.gmode = v.prepGMode
	v.inflight = false
	// Commit at VM followers and broadcast the new view to every server and
	// coordinator.
	for _, nd := range v.cluster.vmNodes {
		if nd != v.node.ID() {
			v.node.Send(nd, cmCommit{VView: v.vview, GView: v.gview, GVec: append([]int(nil), v.gvec...), GMode: v.gmode})
		}
	}
	req := viewChangeReq{GView: v.gview, GVec: append([]int(nil), v.gvec...), GMode: v.gmode}
	for s := 0; s < v.cluster.Cfg.Shards; s++ {
		for r := 0; r < v.cluster.Cfg.Replicas(); r++ {
			v.node.Send(v.cluster.serverNode(s, r), req)
		}
	}
	for _, nd := range v.cluster.coordNodes {
		v.node.Send(nd, req)
	}
}

func (v *vmReplica) onCommit(m cmCommit) {
	if m.VView != v.vview || m.GView <= v.gview {
		return
	}
	v.gview = m.GView
	v.gvec = append([]int(nil), m.GVec...)
	v.gmode = m.GMode
}
