package tpcc

import (
	"math/rand"
	"testing"

	"tiga/internal/store"
	"tiga/internal/txn"
)

func seededStores(g *Gen, shards int) []*store.Store {
	sts := make([]*store.Store, shards)
	for s := range sts {
		sts[s] = store.New()
		g.Seed(s, sts[s])
	}
	return sts
}

func execAll(t *testing.T, sts []*store.Store, tx *txn.Txn, seq *uint64) *txn.Result {
	t.Helper()
	*seq++
	res := &txn.Result{OK: true, PerShard: make(map[int][]byte)}
	for sh, p := range tx.Pieces {
		res.PerShard[sh] = sts[sh].Execute(txn.ID{Coord: 9, Seq: *seq}, txn.Timestamp{}, p)
		sts[sh].Commit(txn.ID{Coord: 9, Seq: *seq})
	}
	return res
}

func TestMixDistribution(t *testing.T) {
	g := New(TestConfig(3))
	rng := rand.New(rand.NewSource(1))
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next(rng).Label]++
	}
	check := func(label string, want float64) {
		got := float64(counts[label]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s fraction %.3f, want ~%.2f", label, got, want)
		}
	}
	check("neworder", 0.45)
	check("payment", 0.43)
	check("orderstatus", 0.04)
	check("delivery", 0.04)
	check("stocklevel", 0.04)
}

func TestNewOrderSemantics(t *testing.T) {
	g := New(TestConfig(3))
	sts := seededStores(g, 3)
	rng := rand.New(rand.NewSource(2))
	var seq uint64
	for i := 0; i < 50; i++ {
		tx := g.NewOrder(rng)
		if len(tx.Pieces) < 1 {
			t.Fatal("neworder must have pieces")
		}
		for _, p := range tx.Pieces {
			if len(p.WriteSet) == 0 {
				t.Fatal("neworder pieces write")
			}
		}
		execAll(t, sts, tx, &seq)
	}
	// d_next_o_id advanced: sum across districts == initial + #orders.
	var totalNext int64
	districts := 0
	for w := 1; w <= 3; w++ {
		sh := g.ShardOf(w)
		for d := 1; d <= g.cfg.Districts; d++ {
			totalNext += txn.DecodeInt(sts[sh].Get(kDNextOID(w, d)))
			districts++
		}
	}
	if totalNext != int64(districts)+50 {
		t.Fatalf("next_o_id sum %d, want %d", totalNext, districts+50)
	}
}

func TestNewOrderDeclaredSetsCoverAccesses(t *testing.T) {
	g := New(TestConfig(3))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tx := g.NewOrder(rng)
		for sh, p := range tx.Pieces {
			declared := make(map[string]bool)
			for _, k := range p.ReadSet {
				declared[k] = true
			}
			for _, k := range p.WriteSet {
				declared[k] = true
			}
			tr := &trackingKV{declared: declared, t: t, shard: sh}
			p.Exec(tr)
		}
	}
}

type trackingKV struct {
	declared map[string]bool
	t        *testing.T
	shard    int
	vals     map[string][]byte
}

func (k *trackingKV) Get(key string) []byte {
	if !k.declared[key] {
		k.t.Fatalf("undeclared read of %q on shard %d", key, k.shard)
	}
	if k.vals == nil {
		return txn.EncodeInt(100)
	}
	return k.vals[key]
}

func (k *trackingKV) Put(key string, v []byte) {
	if !k.declared[key] {
		k.t.Fatalf("undeclared write of %q on shard %d", key, k.shard)
	}
	if k.vals == nil {
		k.vals = make(map[string][]byte)
	}
	k.vals[key] = v
}

func TestPaymentChainMovesMoney(t *testing.T) {
	g := New(TestConfig(3))
	sts := seededStores(g, 3)
	rng := rand.New(rand.NewSource(4))
	var seq uint64
	ic := g.Payment(rng)
	// Drive the chain by hand.
	var prev *txn.Result
	stage := 0
	for {
		tx, done, abort := ic.Next(stage, prev)
		if abort {
			t.Fatal("unexpected abort on quiescent store")
		}
		if done {
			break
		}
		prev = execAll(t, sts, tx, &seq)
		stage++
	}
	// Some w_ytd must have increased.
	var ytd int64
	for w := 1; w <= 3; w++ {
		ytd += txn.DecodeInt(sts[g.ShardOf(w)].Get(kWYtd(w)))
	}
	if ytd <= 0 {
		t.Fatalf("w_ytd sum %d after payment", ytd)
	}
}

func TestPaymentValidationAbortsOnIntervening(t *testing.T) {
	g := New(TestConfig(1))
	sts := seededStores(g, 1)
	rng := rand.New(rand.NewSource(5))
	var seq uint64
	ic := g.Payment(rng)
	tx0, _, _ := ic.Next(0, nil)
	prev := execAll(t, sts, tx0, &seq)
	// Intervene: another payment writes the same customer's balance.
	// Find the read key of stage 0 and bump it.
	for _, p := range tx0.Pieces {
		for _, k := range p.ReadSet {
			cur := txn.DecodeInt(sts[0].Get(k))
			sts[0].Seed(k, txn.EncodeInt(cur-777))
		}
	}
	tx1, _, _ := ic.Next(1, prev)
	prev1 := execAll(t, sts, tx1, &seq)
	_, done, abort := ic.Next(2, prev1)
	if !abort {
		t.Fatalf("stale balance must abort the chain (done=%v)", done)
	}
}

func TestDeliveryAdvancesHeads(t *testing.T) {
	g := New(TestConfig(1))
	sts := seededStores(g, 1)
	rng := rand.New(rand.NewSource(6))
	var seq uint64
	// Create some orders first.
	for i := 0; i < 30; i++ {
		execAll(t, sts, g.NewOrder(rng), &seq)
	}
	ic := g.Delivery(rng)
	var prev *txn.Result
	stage := 0
	for {
		tx, done, abort := ic.Next(stage, prev)
		if abort {
			t.Fatal("delivery abort")
		}
		if done {
			break
		}
		prev = execAll(t, sts, tx, &seq)
		stage++
	}
	var heads int64
	for d := 1; d <= g.cfg.Districts; d++ {
		heads += txn.DecodeInt(sts[0].Get(kNoHead(1, d)))
	}
	if heads == 0 {
		t.Fatal("delivery advanced no district heads despite pending orders")
	}
}

func TestStockLevelReadOnly(t *testing.T) {
	g := New(TestConfig(2))
	rng := rand.New(rand.NewSource(7))
	tx := g.StockLevel(rng)
	if !tx.ReadOnly {
		t.Fatal("stocklevel must be read-only")
	}
	for _, p := range tx.Pieces {
		if len(p.WriteSet) != 0 {
			t.Fatal("stocklevel writes")
		}
		if len(p.ReadSet) != 21 { // district cursor + 20 stock keys
			t.Fatalf("read set size %d", len(p.ReadSet))
		}
	}
}

func TestOrderStatusFollowsLastOrder(t *testing.T) {
	g := New(TestConfig(1))
	sts := seededStores(g, 1)
	rng := rand.New(rand.NewSource(8))
	var seq uint64
	for i := 0; i < 40; i++ {
		execAll(t, sts, g.NewOrder(rng), &seq)
	}
	// Run many order-status chains; all must terminate without abort.
	for i := 0; i < 20; i++ {
		ic := g.OrderStatus(rng)
		var prev *txn.Result
		stage := 0
		for {
			tx, done, abort := ic.Next(stage, prev)
			if abort {
				t.Fatal("orderstatus abort")
			}
			if done {
				break
			}
			prev = execAll(t, sts, tx, &seq)
			stage++
		}
	}
}

func TestShardOf(t *testing.T) {
	g := New(TestConfig(3))
	if g.ShardOf(1) != 0 || g.ShardOf(2) != 1 || g.ShardOf(4) != 0 {
		t.Fatal("warehouse sharding")
	}
}
