// Package tpcc implements the TPC-C benchmark (§5.1, §5.3) over the shared
// transaction model: all five transaction types per the specification, with
// warehouse-based sharding and a column-keyed data layout (as in the Janus
// codebase the paper builds on, where transactions conflict whenever they
// write the same column). Following NCC's methodology, Payment and
// Order-Status run as multi-shot (interactive) transactions via the
// decomposition technique of Appendix F; Delivery also decomposes because its
// read set is data-dependent.
package tpcc

import (
	"fmt"
	"math/rand"

	"tiga/internal/protocol"
	"tiga/internal/store"
	"tiga/internal/txn"
	"tiga/internal/workload"
)

// Config scales the benchmark. Production TPC-C uses 10 districts, 3000
// customers/district, and 100k items; tests shrink these.
type Config struct {
	Shards     int
	Warehouses int // default: one per shard
	Districts  int
	Customers  int // per district
	Items      int
}

// DefaultConfig returns the paper-scale configuration for the given shards.
func DefaultConfig(shards int) Config {
	return Config{Shards: shards, Warehouses: shards, Districts: 10, Customers: 3000, Items: 100000}
}

// TestConfig returns a down-scaled configuration for unit tests.
func TestConfig(shards int) Config {
	return Config{Shards: shards, Warehouses: shards, Districts: 4, Customers: 50, Items: 200}
}

// Gen generates TPC-C jobs.
type Gen struct {
	cfg Config
	uid uint64
	// seeds caches each shard's pre-population (keys and encoded values are
	// built once), so seeding replicas 2..R replays cached pairs instead of
	// re-running fmt.Sprintf and EncodeInt for every row. Generators are
	// private to one experiment point, so the cache needs no locking.
	seeds map[int][]seedPair
}

// seedPair is one cached pre-population row.
type seedPair struct {
	key string
	val []byte
}

// New builds a TPC-C generator.
func New(cfg Config) *Gen {
	if cfg.Warehouses == 0 {
		cfg.Warehouses = cfg.Shards
	}
	return &Gen{cfg: cfg}
}

func init() {
	workload.Register(workload.Def{
		Name:   "tpcc",
		Doc:    "TPC-C interactive mix (all five transaction types; Payment/Order-Status/Delivery run multi-shot); keys scales Customers (keys/10, floor 50) and Items (keys, floor 500)",
		Params: nil, // scaled through the shared per-shard keys parameter
		New: func(shards, keys int, _ protocol.Values) workload.Generator {
			cfg := DefaultConfig(shards)
			cfg.Customers = keys / 10
			if cfg.Customers < 50 {
				cfg.Customers = 50
			}
			cfg.Items = keys
			if cfg.Items < 500 {
				cfg.Items = 500
			}
			return New(cfg)
		},
	})
}

// ShardOf maps a warehouse (1-based) to its shard.
func (g *Gen) ShardOf(w int) int { return (w - 1) % g.cfg.Shards }

// ---- column keys ----

func kWTax(w int) string                   { return fmt.Sprintf("w_tax:%d", w) }
func kWYtd(w int) string                   { return fmt.Sprintf("w_ytd:%d", w) }
func kDTax(w, d int) string                { return fmt.Sprintf("d_tax:%d:%d", w, d) }
func kDYtd(w, d int) string                { return fmt.Sprintf("d_ytd:%d:%d", w, d) }
func kDNextOID(w, d int) string            { return fmt.Sprintf("d_next_o_id:%d:%d", w, d) }
func kNoHead(w, d int) string              { return fmt.Sprintf("no_head:%d:%d", w, d) }
func kCBal(w, d, c int) string             { return fmt.Sprintf("c_bal:%d:%d:%d", w, d, c) }
func kCYtd(w, d, c int) string             { return fmt.Sprintf("c_ytd:%d:%d:%d", w, d, c) }
func kCCnt(w, d, c int) string             { return fmt.Sprintf("c_cnt:%d:%d:%d", w, d, c) }
func kCDisc(w, d, c int) string            { return fmt.Sprintf("c_disc:%d:%d:%d", w, d, c) }
func kCLastO(w, d, c int) string           { return fmt.Sprintf("c_last_o:%d:%d:%d", w, d, c) }
func kIPrice(w, i int) string              { return fmt.Sprintf("i_price:%d:%d", w, i) }
func kSQty(w, i int) string                { return fmt.Sprintf("s_qty:%d:%d", w, i) }
func kSYtd(w, i int) string                { return fmt.Sprintf("s_ytd:%d:%d", w, i) }
func kSCnt(w, i int) string                { return fmt.Sprintf("s_cnt:%d:%d", w, i) }
func kOrder(w, d int, uid uint64) string   { return fmt.Sprintf("o:%d:%d:%d", w, d, uid) }
func kOTotal(w, d int, uid uint64) string  { return fmt.Sprintf("o_total:%d:%d:%d", w, d, uid) }
func kOCarrier(w, d int, idx int64) string { return fmt.Sprintf("o_carrier:%d:%d:%d", w, d, idx) }
func kHistory(w, d int, uid uint64) string { return fmt.Sprintf("h:%d:%d:%d", w, d, uid) }

// Seed pre-populates one shard's store with its warehouses, replaying the
// shard's cached pre-population rows (built on first use).
func (g *Gen) Seed(shard int, st *store.Store) {
	if g.seeds == nil {
		g.seeds = make(map[int][]seedPair)
	}
	rows, ok := g.seeds[shard]
	if !ok {
		add := func(k string, v int64) { rows = append(rows, seedPair{k, txn.EncodeInt(v)}) }
		for w := 1; w <= g.cfg.Warehouses; w++ {
			if g.ShardOf(w) != shard {
				continue
			}
			add(kWTax(w), 7)
			add(kWYtd(w), 0)
			for d := 1; d <= g.cfg.Districts; d++ {
				add(kDTax(w, d), 8)
				add(kDYtd(w, d), 0)
				add(kDNextOID(w, d), 1)
				add(kNoHead(w, d), 0)
				for c := 1; c <= g.cfg.Customers; c++ {
					add(kCBal(w, d, c), -1000)
					add(kCYtd(w, d, c), 1000)
					add(kCCnt(w, d, c), 1)
					add(kCDisc(w, d, c), 5)
					add(kCLastO(w, d, c), 0)
				}
			}
			for i := 1; i <= g.cfg.Items; i++ {
				add(kIPrice(w, i), int64(100+i%900))
				add(kSQty(w, i), 100)
				add(kSYtd(w, i), 0)
				add(kSCnt(w, i), 0)
			}
		}
		g.seeds[shard] = rows
	}
	st.Reserve(len(rows))
	for _, p := range rows {
		st.Seed(p.key, p.val)
	}
}

// Next draws a transaction per the TPC-C mix: New-Order 45%, Payment 43%,
// Order-Status 4%, Delivery 4%, Stock-Level 4%.
func (g *Gen) Next(rng *rand.Rand) workload.Job {
	g.uid++
	x := rng.Float64()
	switch {
	case x < 0.45:
		return workload.Job{T: g.NewOrder(rng), Label: "neworder"}
	case x < 0.88:
		return workload.Job{I: g.Payment(rng), Label: "payment"}
	case x < 0.92:
		return workload.Job{I: g.OrderStatus(rng), Label: "orderstatus"}
	case x < 0.96:
		return workload.Job{I: g.Delivery(rng), Label: "delivery"}
	default:
		return workload.Job{T: g.StockLevel(rng), Label: "stocklevel"}
	}
}

func (g *Gen) randWarehouse(rng *rand.Rand) int { return 1 + rng.Intn(g.cfg.Warehouses) }

// NewOrder builds the one-shot New-Order transaction: it increments the
// district's next-order id (the hot column), reads tax/discount columns,
// decrements stock for 5–15 items (1% from a remote warehouse), and inserts
// the order and order-line rows under a unique id.
func (g *Gen) NewOrder(rng *rand.Rand) *txn.Txn {
	w := g.randWarehouse(rng)
	d := 1 + rng.Intn(g.cfg.Districts)
	c := 1 + rng.Intn(g.cfg.Customers)
	uid := g.nextUID(rng)
	nItems := 5 + rng.Intn(11)
	type line struct{ w, i, qty int }
	lines := make([]line, nItems)
	for i := range lines {
		sw := w
		if g.cfg.Warehouses > 1 && rng.Float64() < 0.01 {
			for sw == w {
				sw = g.randWarehouse(rng)
			}
		}
		lines[i] = line{w: sw, i: 1 + rng.Intn(g.cfg.Items), qty: 1 + rng.Intn(10)}
	}

	t := &txn.Txn{Pieces: make(map[int]*txn.Piece), Label: "neworder"}
	home := g.ShardOf(w)

	// Group stock lines per shard.
	perShard := make(map[int][]line)
	for _, ln := range lines {
		perShard[g.ShardOf(ln.w)] = append(perShard[g.ShardOf(ln.w)], ln)
	}
	for sh, lns := range perShard {
		lns := lns
		reads := []string{}
		writes := []string{}
		for _, ln := range lns {
			reads = append(reads, kIPrice(ln.w, ln.i))
			writes = append(writes, kSQty(ln.w, ln.i), kSYtd(ln.w, ln.i), kSCnt(ln.w, ln.i))
		}
		piece := &txn.Piece{
			ReadSet:  append(reads, writes...),
			WriteSet: writes,
			Exec: func(kv txn.KV) []byte {
				var total int64
				for _, ln := range lns {
					price := txn.DecodeInt(kv.Get(kIPrice(ln.w, ln.i)))
					qty := txn.DecodeInt(kv.Get(kSQty(ln.w, ln.i)))
					qty -= int64(ln.qty)
					if qty < 10 {
						qty += 91
					}
					kv.Put(kSQty(ln.w, ln.i), txn.EncodeInt(qty))
					kv.Put(kSYtd(ln.w, ln.i), txn.EncodeInt(txn.DecodeInt(kv.Get(kSYtd(ln.w, ln.i)))+int64(ln.qty)))
					kv.Put(kSCnt(ln.w, ln.i), txn.EncodeInt(txn.DecodeInt(kv.Get(kSCnt(ln.w, ln.i)))+1))
					total += price * int64(ln.qty)
				}
				return txn.EncodeInt(total)
			},
		}
		t.Pieces[sh] = piece
	}

	// Home-district piece: order insertion + next-order-id bump.
	homeReads := []string{kWTax(w), kDTax(w, d), kCDisc(w, d, c), kDNextOID(w, d)}
	homeWrites := []string{kDNextOID(w, d), kOrder(w, d, uid), kOTotal(w, d, uid), kCLastO(w, d, c)}
	homePiece := &txn.Piece{
		ReadSet:  homeReads,
		WriteSet: homeWrites,
		Exec: func(kv txn.KV) []byte {
			oid := txn.DecodeInt(kv.Get(kDNextOID(w, d)))
			kv.Put(kDNextOID(w, d), txn.EncodeInt(oid+1))
			kv.Put(kOrder(w, d, uid), txn.EncodeInt(oid))
			kv.Put(kOTotal(w, d, uid), txn.EncodeInt(int64(nItems)))
			kv.Put(kCLastO(w, d, c), txn.EncodeInt(int64(uid)))
			wt := txn.DecodeInt(kv.Get(kWTax(w)))
			dt := txn.DecodeInt(kv.Get(kDTax(w, d)))
			disc := txn.DecodeInt(kv.Get(kCDisc(w, d, c)))
			return txn.EncodeInt(oid*1000 + wt + dt + disc)
		},
	}
	if existing, ok := t.Pieces[home]; ok {
		t.Pieces[home] = mergePieces(existing, homePiece)
	} else {
		t.Pieces[home] = homePiece
	}
	return t
}

func (g *Gen) nextUID(rng *rand.Rand) uint64 {
	g.uid++
	return g.uid<<20 | uint64(rng.Intn(1<<20))
}

// mergePieces combines two pieces on the same shard.
func mergePieces(a, b *txn.Piece) *txn.Piece {
	return &txn.Piece{
		ReadSet:  append(append([]string(nil), a.ReadSet...), b.ReadSet...),
		WriteSet: append(append([]string(nil), a.WriteSet...), b.WriteSet...),
		Exec: func(kv txn.KV) []byte {
			ra := a.Exec(kv)
			rb := b.Exec(kv)
			return append(ra, rb...)
		},
	}
}

// Payment is a multi-shot transaction (decomposed per Appendix F): stage 0
// reads the customer balance; stage 1 updates warehouse/district YTD and the
// customer, validating the balance read in stage 0 (abort and restart on a
// conflicting intervening write). 15% of customers belong to a remote
// warehouse.
func (g *Gen) Payment(rng *rand.Rand) *txn.Interactive {
	w := g.randWarehouse(rng)
	d := 1 + rng.Intn(g.cfg.Districts)
	cw := w
	if g.cfg.Warehouses > 1 && rng.Float64() < 0.15 {
		for cw == w {
			cw = g.randWarehouse(rng)
		}
	}
	c := 1 + rng.Intn(g.cfg.Customers)
	amount := int64(1 + rng.Intn(5000))
	home, cust := g.ShardOf(w), g.ShardOf(cw)
	uid := g.nextUID(rng)

	return &txn.Interactive{
		Label: "payment",
		Next: func(stage int, prev *txn.Result) (*txn.Txn, bool, bool) {
			switch stage {
			case 0:
				t := &txn.Txn{Label: "payment-read", ReadOnly: true, Pieces: map[int]*txn.Piece{
					cust: txn.ReadPiece(kCBal(cw, d, c)),
				}}
				return t, false, false
			case 1:
				seen := txn.DecodeInt(prev.PerShard[cust])
				t := &txn.Txn{Label: "payment-write", Pieces: make(map[int]*txn.Piece)}
				custPiece := &txn.Piece{
					ReadSet:  []string{kCBal(cw, d, c), kCYtd(cw, d, c), kCCnt(cw, d, c)},
					WriteSet: []string{kCBal(cw, d, c), kCYtd(cw, d, c), kCCnt(cw, d, c)},
					Exec: func(kv txn.KV) []byte {
						cur := txn.DecodeInt(kv.Get(kCBal(cw, d, c)))
						if cur != seen {
							return txn.EncodeInt(-1) // validation failed
						}
						kv.Put(kCBal(cw, d, c), txn.EncodeInt(cur-amount))
						kv.Put(kCYtd(cw, d, c), txn.EncodeInt(txn.DecodeInt(kv.Get(kCYtd(cw, d, c)))+amount))
						kv.Put(kCCnt(cw, d, c), txn.EncodeInt(txn.DecodeInt(kv.Get(kCCnt(cw, d, c)))+1))
						return txn.EncodeInt(cur - amount)
					},
				}
				homePiece := &txn.Piece{
					ReadSet:  []string{kWYtd(w), kDYtd(w, d)},
					WriteSet: []string{kWYtd(w), kDYtd(w, d), kHistory(w, d, uid)},
					Exec: func(kv txn.KV) []byte {
						kv.Put(kWYtd(w), txn.EncodeInt(txn.DecodeInt(kv.Get(kWYtd(w)))+amount))
						kv.Put(kDYtd(w, d), txn.EncodeInt(txn.DecodeInt(kv.Get(kDYtd(w, d)))+amount))
						kv.Put(kHistory(w, d, uid), txn.EncodeInt(amount))
						return txn.EncodeInt(0)
					},
				}
				if home == cust {
					t.Pieces[home] = mergePieces(homePiece, custPiece)
				} else {
					t.Pieces[home] = homePiece
					t.Pieces[cust] = custPiece
				}
				return t, false, false
			default:
				// Validate stage 1: the customer piece returns -1 on a failed
				// balance check.
				if prev != nil {
					ret := prev.PerShard[cust]
					if home == cust && len(ret) >= 8 {
						// merged piece: home result (8B) then customer result
						ret = ret[len(ret)-8:]
					}
					if txn.DecodeInt(ret) == -1 {
						return nil, true, true // abort: restart the chain
					}
				}
				return nil, true, false
			}
		},
	}
}

// OrderStatus is a read-only multi-shot transaction: stage 0 reads the
// customer's balance and last order id; stage 1 reads that order.
func (g *Gen) OrderStatus(rng *rand.Rand) *txn.Interactive {
	w := g.randWarehouse(rng)
	d := 1 + rng.Intn(g.cfg.Districts)
	c := 1 + rng.Intn(g.cfg.Customers)
	sh := g.ShardOf(w)
	return &txn.Interactive{
		Label: "orderstatus",
		Next: func(stage int, prev *txn.Result) (*txn.Txn, bool, bool) {
			switch stage {
			case 0:
				t := &txn.Txn{Label: "orderstatus-c", ReadOnly: true, Pieces: map[int]*txn.Piece{
					sh: {
						ReadSet: []string{kCBal(w, d, c), kCLastO(w, d, c)},
						Exec: func(kv txn.KV) []byte {
							return append(kv.Get(kCBal(w, d, c)), kv.Get(kCLastO(w, d, c))...)
						},
					},
				}}
				return t, false, false
			case 1:
				var last uint64
				if prev != nil && len(prev.PerShard[sh]) >= 16 {
					last = uint64(txn.DecodeInt(prev.PerShard[sh][8:16]))
				}
				if last == 0 {
					return nil, true, false // customer has no orders yet
				}
				t := &txn.Txn{Label: "orderstatus-o", ReadOnly: true, Pieces: map[int]*txn.Piece{
					sh: {
						ReadSet: []string{kOrder(w, d, last), kOTotal(w, d, last)},
						Exec: func(kv txn.KV) []byte {
							return append(kv.Get(kOrder(w, d, last)), kv.Get(kOTotal(w, d, last))...)
						},
					},
				}}
				return t, false, false
			default:
				return nil, true, false
			}
		},
	}
}

// Delivery decomposes because its read set is data-dependent: stage 0 reads
// each district's delivered-count and next-order-id; stage 1 advances the
// delivery head of every district with undelivered orders, assigns carriers,
// and credits customer balances (the full 10-district sweep of the spec).
func (g *Gen) Delivery(rng *rand.Rand) *txn.Interactive {
	w := g.randWarehouse(rng)
	sh := g.ShardOf(w)
	carrier := int64(1 + rng.Intn(10))
	custs := make([]int, g.cfg.Districts+1)
	for d := 1; d <= g.cfg.Districts; d++ {
		custs[d] = 1 + rng.Intn(g.cfg.Customers)
	}
	nd := g.cfg.Districts
	return &txn.Interactive{
		Label: "delivery",
		Next: func(stage int, prev *txn.Result) (*txn.Txn, bool, bool) {
			switch stage {
			case 0:
				reads := make([]string, 0, 2*nd)
				for d := 1; d <= nd; d++ {
					reads = append(reads, kNoHead(w, d), kDNextOID(w, d))
				}
				t := &txn.Txn{Label: "delivery-scan", ReadOnly: true, Pieces: map[int]*txn.Piece{
					sh: {
						ReadSet: reads,
						Exec: func(kv txn.KV) []byte {
							out := make([]byte, 0, 16*nd)
							for d := 1; d <= nd; d++ {
								out = append(out, kv.Get(kNoHead(w, d))...)
								out = append(out, kv.Get(kDNextOID(w, d))...)
							}
							return out
						},
					},
				}}
				return t, false, false
			case 1:
				buf := prev.PerShard[sh]
				type dd struct {
					d    int
					head int64
				}
				var todo []dd
				for d := 1; d <= nd; d++ {
					off := (d - 1) * 16
					if len(buf) < off+16 {
						break
					}
					head := txn.DecodeInt(buf[off : off+8])
					next := txn.DecodeInt(buf[off+8 : off+16])
					if head+1 < next {
						todo = append(todo, dd{d: d, head: head})
					}
				}
				if len(todo) == 0 {
					return nil, true, false
				}
				var reads, writes []string
				for _, x := range todo {
					reads = append(reads, kNoHead(w, x.d), kCBal(w, x.d, custs[x.d]))
					writes = append(writes, kNoHead(w, x.d), kOCarrier(w, x.d, x.head+1), kCBal(w, x.d, custs[x.d]))
				}
				t := &txn.Txn{Label: "delivery-run", Pieces: map[int]*txn.Piece{
					sh: {
						ReadSet:  reads,
						WriteSet: writes,
						Exec: func(kv txn.KV) []byte {
							var n int64
							for _, x := range todo {
								head := txn.DecodeInt(kv.Get(kNoHead(w, x.d)))
								if head != x.head {
									continue // another delivery got here first
								}
								kv.Put(kNoHead(w, x.d), txn.EncodeInt(head+1))
								kv.Put(kOCarrier(w, x.d, head+1), txn.EncodeInt(carrier))
								bal := txn.DecodeInt(kv.Get(kCBal(w, x.d, custs[x.d])))
								kv.Put(kCBal(w, x.d, custs[x.d]), txn.EncodeInt(bal+100))
								n++
							}
							return txn.EncodeInt(n)
						},
					},
				}}
				return t, false, false
			default:
				return nil, true, false
			}
		},
	}
}

// StockLevel is the one-shot read-only analysis transaction: it reads the
// district cursor and the stock quantities of 20 recently-sold items,
// counting those below a threshold.
func (g *Gen) StockLevel(rng *rand.Rand) *txn.Txn {
	w := g.randWarehouse(rng)
	d := 1 + rng.Intn(g.cfg.Districts)
	sh := g.ShardOf(w)
	threshold := int64(10 + rng.Intn(11))
	items := make([]int, 20)
	for i := range items {
		items[i] = 1 + rng.Intn(g.cfg.Items)
	}
	reads := []string{kDNextOID(w, d)}
	for _, i := range items {
		reads = append(reads, kSQty(w, i))
	}
	return &txn.Txn{Label: "stocklevel", ReadOnly: true, Pieces: map[int]*txn.Piece{
		sh: {
			ReadSet: reads,
			Exec: func(kv txn.KV) []byte {
				var low int64
				for _, i := range items {
					if txn.DecodeInt(kv.Get(kSQty(w, i))) < threshold {
						low++
					}
				}
				return txn.EncodeInt(low)
			},
		},
	}}
}
