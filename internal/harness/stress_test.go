package harness

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/tiga"
	"tiga/internal/txn"
	"tiga/internal/workload"
)

// TestStrictSerializabilityStress drives Tiga with a hot-key (high conflict)
// workload across both agreement modes and several clock models, validating
// the paper's core correctness claims on every run:
//   - strict serializability (Theorem C.5): the agreed-timestamp order never
//     contradicts real-time order;
//   - total order (Lemma C.4): serialization timestamps are unique;
//   - exactly-once effects on the leader stores.
func TestStrictSerializabilityStress(t *testing.T) {
	cases := []struct {
		name    string
		rotated bool
		clock   clocks.Model
		skew    float64
		rate    float64
		keys    int
	}{
		// Preventive agreement is LAN-cheap, so hot keys sustain high rates;
		// detective agreement serializes conflicting transactions at
		// 0.5–1 WRTT each (§6), so its hot-key load must stay under the
		// conflict-chain capacity (~1/WRTT per hot key).
		{"preventive/chrony/hot", false, clocks.ModelChrony, 0.99, 60, 40},
		{"preventive/ntpd/hot", false, clocks.ModelNtpd, 0.99, 60, 40},
		{"detective/chrony/hot", true, clocks.ModelChrony, 0.99, 12, 150},
		{"detective/bad-clock/hot", true, clocks.ModelBad, 0.9, 12, 150},
		{"preventive/bad-clock/mixed", false, clocks.ModelBad, 0.5, 60, 40},
	}
	for i, tc := range cases {
		tc := tc
		seed := int64(1000 + i*17)
		t.Run(tc.name, func(t *testing.T) {
			// Tiny keyspace => heavy conflicts; bad clocks => frequent
			// timestamp updates and Case-2/3 agreements.
			gen := workload.NewMicroBench(3, tc.keys, tc.skew)
			spec := ClusterSpec{
				Protocol: "Tiga", Shards: 3, F: 1, Rotated: tc.rotated,
				Clock: tc.clock, CoordsPerRegion: 1, CoordsRemote: 1,
				Seed: seed, Gen: gen,
			}
			d := Build(spec)
			res := RunLoad(d, gen, LoadSpec{
				RatePerCoord: tc.rate, Warmup: 0,
				Duration: 3 * time.Second, Seed: seed + 1, Check: true,
			})
			run := res.Run
			if run.Counters.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if cr := run.Counters.CommitRate(); cr < 80 {
				t.Fatalf("commit rate %.1f%% too low under contention", cr)
			}
			if err := checker.StrictSerializability(res.Commits); err != nil {
				t.Fatalf("STRICT SERIALIZABILITY VIOLATED: %v", err)
			}
			if err := checker.UniqueTimestamps(res.Commits); err != nil {
				t.Fatalf("serialization order not total: %v", err)
			}
			// No committed effect may be lost (in-flight transactions at
			// shutdown can add effects beyond the client-visible count).
			c := d.Sys.(*tiga.Cluster)
			err := res.Counter.VerifyAtLeast(func(key string) int64 {
				var sh, idx int
				fmt.Sscanf(key, "k%d-%d", &sh, &idx)
				return txn.DecodeInt(c.LeaderStore(sh).Get(key))
			})
			if err != nil {
				t.Fatalf("effect mismatch: %v", err)
			}
			if tc.rotated && c.Mode() != tiga.ModeDetective {
				t.Fatal("rotation should force the detective mode")
			}
			t.Logf("%s: %s rollbacks=%d", tc.name, run, c.TotalRollbacks())
		})
	}
}

// TestStrictSerializabilityUnderLeaderFailure repeats the check across a
// leader crash and the ensuing view change: recovered transactions must keep
// their serialization guarantees (Lemmas C.1/C.2).
func TestStrictSerializabilityUnderLeaderFailure(t *testing.T) {
	gen := workload.NewMicroBench(3, 100, 0.9)
	spec := ClusterSpec{
		Protocol: "Tiga", Shards: 3, F: 1,
		Clock: clocks.ModelChrony, CoordsPerRegion: 1, CoordsRemote: 1,
		Seed: 77, Gen: gen,
	}
	d := Build(spec)
	faulty := d.Sys.(protocol.Faultable)
	d.Sim.At(2*time.Second, func() { faulty.KillServer(0, 0) })
	res := RunLoad(d, gen, LoadSpec{
		RatePerCoord: 50, Warmup: 0, Duration: 10 * time.Second,
		Seed: 78, Check: true,
	})
	if res.Run.Counters.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := checker.StrictSerializability(res.Commits); err != nil {
		t.Fatalf("strict serializability violated across view change: %v", err)
	}
	if err := checker.UniqueTimestamps(res.Commits); err != nil {
		t.Fatal(err)
	}
	// Progress after the failure.
	var after int
	for _, s := range res.Samples {
		_ = s
	}
	post := res.Run.Thpt.Rate()
	for i := 6; i < len(post); i++ {
		if post[i] > 0 {
			after++
		}
	}
	if after == 0 {
		t.Fatal("no commits after the leader failure")
	}
}
