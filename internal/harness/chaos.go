package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tiga/internal/chaos"
	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/protocol"
	"tiga/internal/report"
	"tiga/internal/simnet"
)

// This file wires the declarative fault-plan model (internal/chaos) into the
// harness: ApplyPlan is the fault-event scheduler — it instantiates a
// registered plan against a built deployment and schedules every event on
// the deployment's simulator, dispatching each kind to the capability that
// implements it (protocol.Faultable for crashes, the simulated network for
// partitions and link faults, the clock factory's adjustable clocks for
// clock misbehavior). ChaosMatrix then sweeps protocol × plan and reports
// throughput, commit rate, and tail latency before, during, and after each
// plan's fault window — with the strict-serializability checker running
// under every plan, because "depends on clock synchronization for
// performance but not for correctness" is a testable claim.

// chaosSeedOffset separates the plan-instantiation rng from the simulator
// and workload seeds derived from the same spec seed.
const chaosSeedOffset = 1_000_003

// ApplyPlan instantiates the named fault plan for the deployment's shape
// and schedules its events on the simulator. It panics on an unregistered
// name (the CLI validates first and exits 2, mirroring -exp/-topo). Call it
// after Build and before driving load; the sweep driver does this for any
// SpecRun with a Chaos name.
func ApplyPlan(d *Deployment, spec ClusterSpec, planName string) {
	plan, ok := chaos.Lookup(planName)
	if !ok {
		panic(fmt.Sprintf("unknown chaos plan %q (registered: %v)", planName, chaos.Names()))
	}
	for _, e := range plan.Events(chaosEnv(d, spec)) {
		e := e
		d.Sim.At(e.At, func() { applyEvent(d, e) })
	}
}

// chaosEnv describes the deployment to a plan. The server grid comes from
// the system itself when it supports faults (protocol.Faultable.ServerGrid)
// and from the spec otherwise, so plans see the same shape the applier will
// address.
func chaosEnv(d *Deployment, spec ClusterSpec) chaos.Env {
	shards, replicas := spec.Shards, 2*spec.F+1
	if f, ok := d.Sys.(protocol.Faultable); ok {
		shards, replicas = f.ServerGrid()
	}
	horizon := spec.Horizon
	if horizon == 0 {
		horizon = time.Minute // Build's default
	}
	seed := spec.Seed + chaosSeedOffset
	return chaos.Env{
		Seed:          seed,
		Horizon:       horizon,
		Shards:        shards,
		Replicas:      replicas,
		ServerRegions: d.Topology.ServerRegions,
		ServerRegion:  func(s, r int) int { return int(spec.serverRegion(s, r)) },
		Clocks:        len(d.Clocks.Adjustables()),
		Rand:          rand.New(rand.NewSource(seed)),
	}
}

// applyEvent dispatches one fault event to the deployment capability that
// implements it. Events a deployment cannot express are no-ops: crashes
// against a system without fault hooks (the matrix excludes those rows by
// design), clock faults against a system that never reads a clock.
func applyEvent(d *Deployment, e chaos.Event) {
	switch e.Op {
	case chaos.OpCrash, chaos.OpReboot:
		f, ok := d.Sys.(protocol.Faultable)
		if !ok {
			return
		}
		shards, replicas := f.ServerGrid()
		if e.Shard < 0 || e.Shard >= shards || e.Replica < 0 || e.Replica >= replicas {
			return
		}
		if e.Op == chaos.OpCrash {
			f.KillServer(e.Shard, e.Replica)
		} else {
			f.RestartServer(e.Shard, e.Replica)
		}
	case chaos.OpPartition:
		d.Net.PartitionRegions(toRegions(e.GroupA), toRegions(e.GroupB))
	case chaos.OpHeal:
		d.Net.HealRegions(toRegions(e.GroupA), toRegions(e.GroupB))
	case chaos.OpDegradeLink:
		d.Net.DegradeLink(simnet.Region(e.LinkA), simnet.Region(e.LinkB), simnet.LinkFault{
			Extra: simnet.Latency{Base: e.ExtraOWD, Jitter: e.ExtraJitter},
			Loss:  e.Loss,
		})
	case chaos.OpRestoreLink:
		d.Net.RestoreLink(simnet.Region(e.LinkA), simnet.Region(e.LinkB))
	case chaos.OpClockStep:
		for _, a := range clockTargets(d, e.Clock) {
			a.Step(e.Step)
		}
	case chaos.OpClockFreeze:
		for _, a := range clockTargets(d, e.Clock) {
			a.Freeze(d.Sim.Now())
		}
	case chaos.OpClockUnfreeze:
		for _, a := range clockTargets(d, e.Clock) {
			a.Unfreeze(d.Sim.Now())
		}
	}
}

func toRegions(ids []int) []simnet.Region {
	out := make([]simnet.Region, len(ids))
	for i, id := range ids {
		out[i] = simnet.Region(id)
	}
	return out
}

// clockTargets resolves a clock event's target set against the deployment's
// adjustable clocks (creation order; chaos.AllClocks = every clock).
func clockTargets(d *Deployment, idx int) []*clocks.Adjustable {
	all := d.Clocks.Adjustables()
	if idx == chaos.AllClocks {
		return all
	}
	if idx < 0 || idx >= len(all) {
		return nil
	}
	return all[idx : idx+1]
}

func mustPlan(name string) chaos.Plan {
	p, ok := chaos.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("unknown chaos plan %q (registered: %v)", name, chaos.Names()))
	}
	return p
}

// ---- the chaos-matrix experiment ----

// ChaosRow is one protocol × plan × phase cell of the chaos matrix.
type ChaosRow struct {
	Protocol string
	Plan     string
	Phase    string // "pre", "fault", "post"
	Thpt     float64
	Commit   float64 // % of completions in the phase that committed
	P99      time.Duration
}

// chaosPlans resolves the matrix's plan axis, panicking on unregistered
// names (the CLI validates first and exits 2).
func (o Options) chaosPlans() []string {
	if len(o.Plans) == 0 {
		return chaos.Names()
	}
	for _, name := range o.Plans {
		if _, ok := chaos.Lookup(name); !ok {
			panic(fmt.Sprintf("unknown chaos plan %q (registered: %v)", name, chaos.Names()))
		}
	}
	return o.Plans
}

// failureRunLength is the Fig 11 family's driven duration: long enough that
// the canned 5 s – 9 s fault window leaves pre, fault, and post phases.
func (o Options) failureRunLength() time.Duration {
	if o.Quick {
		return 12 * time.Second
	}
	return 16 * time.Second
}

// protoCaps probes a protocol's optional capabilities by building a minimal
// throwaway deployment: whether its system accepts crash/reboot faults,
// whether its commits carry checkable serialization timestamps, and whether
// it maintains safe-time watermarks for local snapshot reads.
type protoCaps struct {
	faultable bool
	checkable bool
	snapshot  bool
}

func probeCaps(proto string) protoCaps {
	d := Build(ClusterSpec{Protocol: proto, Shards: 2, F: 1, CoordsPerRegion: 1, Seed: 1})
	_, f := d.Sys.(protocol.Faultable)
	_, c := d.Sys.(protocol.Checkable)
	_, s := d.Sys.(protocol.SnapshotReadable)
	return protoCaps{faultable: f, checkable: c, snapshot: s}
}

// chaosPoint prepares one matrix cell: the fig11b/c deployment and operating
// point (MicroBench skew 0.5, 300 txns/s/coord, 600 outstanding — overridden
// per protocol by Options.Ops), with the named plan scheduled and the
// serializability checker armed.
func (o Options) chaosPoint(proto, plan string, total time.Duration) SpecRun {
	spec, _ := o.microSpec(proto, 0.5, false, clocks.ModelChrony)
	if proto == "2PL+Paxos" || proto == "OCC+Paxos" {
		// As in fig11b: dial the vote timeout down from its inert 10 s
		// default so transactions stranded by a fault presume-abort and
		// retry instead of outliving the run.
		spec.setKnobDefault(proto, "vote-timeout", time.Second)
	}
	rate, outstanding := 300.0, 600
	if op, ok := o.opFor(proto, specTopoName(spec)); ok {
		if op.SaturationRate > 0 {
			rate = op.SaturationRate
		}
		if op.Outstanding > 0 {
			outstanding = op.Outstanding
		}
	}
	return SpecRun{
		Spec:  spec,
		Chaos: plan,
		Load: LoadSpec{
			RatePerCoord: rate, Outstanding: outstanding, Warmup: 0, Duration: total,
			Seed: o.Seed + 5, TrackSamples: true, Check: true,
		},
	}
}

// phaseStats folds a run's commit/abort samples into one phase's throughput,
// commit rate, and p99 latency. Transactions that never complete (hung
// inside an outage — NCC+'s documented no-retry behavior) count in no phase.
func phaseStats(res *RunResult, from, to time.Duration) (thpt, commit float64, p99 time.Duration) {
	var lat metrics.Latency
	commits, aborts := 0, 0
	for _, s := range res.Samples {
		if s.At >= from && s.At < to {
			commits++
			lat.Add(s.Lat)
		}
	}
	for _, s := range res.Aborts {
		if s.At >= from && s.At < to {
			aborts++
		}
	}
	if sec := (to - from).Seconds(); sec > 0 {
		thpt = float64(commits) / sec
	}
	if commits+aborts > 0 {
		commit = 100 * float64(commits) / float64(commits+aborts)
	}
	return thpt, commit, lat.Percentile(99)
}

// checkStatus runs the strict-serializability and timestamp-uniqueness
// checks over a run's committed history.
func checkStatus(res *RunResult, caps protoCaps) string {
	if !caps.checkable {
		return "n/a (no agreed serialization timestamps)"
	}
	if err := checker.StrictSerializability(res.Commits); err != nil {
		return "FAIL: " + err.Error()
	}
	if err := checker.UniqueTimestamps(res.Commits); err != nil {
		return "FAIL: " + err.Error()
	}
	return fmt.Sprintf("ok (%d commits)", len(res.Commits))
}

// ChaosMatrix sweeps every selected protocol across the selected fault
// plans, reporting per-phase throughput, commit rate, and p99 latency —
// before the fault window, inside it, and after it — one table per plan.
// Crash plans run only against systems implementing protocol.Faultable (the
// rest are excluded by design, with a note); network and clock plans run
// against everything. The strict-serializability checker runs under every
// plan for every checkable system: faults may only hurt performance, never
// correctness.
func ChaosMatrix(o Options) (*report.Report, []ChaosRow) {
	rep := report.New("chaos")
	plans := o.chaosPlans()
	names, remark := o.sweepProtocols()
	total := o.failureRunLength()
	rep.Add(&report.Table{
		ID: "chaos-banner", Gap: true,
		Title: fmt.Sprintf("Chaos matrix — %d protocols × %d fault plans, %v runs, MicroBench skew 0.5, 300/coord",
			len(names), len(plans), total),
	})
	if remark != "" {
		rep.AddNote(remark)
	}
	caps := make(map[string]protoCaps, len(names))
	for _, p := range names {
		caps[p] = probeCaps(p)
	}
	planProtos := make(map[string][]string, len(plans))
	var runs []SpecRun
	for _, planName := range plans {
		plan := mustPlan(planName)
		pnames := names
		if plan.Crashes {
			pnames = nil
			for _, p := range names {
				if caps[p].faultable {
					pnames = append(pnames, p)
				}
			}
		}
		planProtos[planName] = pnames
		for _, p := range pnames {
			runs = append(runs, o.chaosPoint(p, planName, total))
		}
	}
	// Chaos × topology: replay the wan-partition plan on planet5's
	// asymmetric WAN — the severed region 0↔1 link's return path runs 15%
	// longer than its forward path, so replication reroutes through Tokyo at
	// a different cost in each direction. Rides along whenever wan-partition
	// is among the selected plans.
	wanTopo := ""
	for _, p := range plans {
		if p == "wan-partition" {
			wanTopo = "planet5"
		}
	}
	topoBase := len(runs)
	if wanTopo != "" {
		for _, p := range names {
			sr := o.chaosPoint(p, "wan-partition", total)
			sr.Spec.Topology = wanTopo
			runs = append(runs, sr)
		}
	}
	results := RunSpecs(runs, o.Workers)

	var rows []ChaosRow
	i := 0
	for _, planName := range plans {
		plan := mustPlan(planName)
		tab := rep.Add(&report.Table{
			ID: "chaos/" + planName, Gap: true,
			Title: fmt.Sprintf("[plan=%s] %s", planName, plan.Doc),
			Columns: []report.Column{
				report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
				report.Col("phase", "phase", report.String, report.None, 6).AlignLeft(),
				report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
				report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
				report.Col("p99", "p99", report.Duration, report.Nanos, 12),
			},
		})
		o.stamp(tab, o.classicTopology().Name, "micro",
			"chaos", planName, "skew", "0.5", "clock", clocks.ModelChrony.String(),
			"window", fmt.Sprintf("%v-%v", plan.Window.Start, plan.Window.End))
		if plan.Crashes && len(planProtos[planName]) < len(names) {
			var excluded []string
			for _, p := range names {
				if !caps[p].faultable {
					excluded = append(excluded, p)
				}
			}
			tab.Note("(crash plan: %s excluded by design — no protocol.Faultable hooks)",
				strings.Join(excluded, ", "))
		}
		phases := []struct {
			name     string
			from, to time.Duration
		}{
			{"pre", 0, plan.Window.Start},
			{"fault", plan.Window.Start, plan.Window.End},
			{"post", plan.Window.End, total},
		}
		var checks, opNotes []string
		for _, p := range planProtos[planName] {
			res := results[i]
			cellRate := runs[i].Load.RatePerCoord
			i++
			for _, ph := range phases {
				thpt, commit, p99 := phaseStats(res, ph.from, ph.to)
				row := ChaosRow{Protocol: p, Plan: planName, Phase: ph.name,
					Thpt: thpt, Commit: commit, P99: p99}
				rows = append(rows, row)
				tab.AddRow(report.Str(p), report.Str(ph.name), report.Num(thpt),
					report.Num(commit), report.Dur(p99))
			}
			checks = append(checks, fmt.Sprintf("%s: %s", p, checkStatus(res, caps[p])))
			if cellRate != 300 {
				opNotes = append(opNotes, fmt.Sprintf("%s=%v/coord", p, cellRate))
			}
		}
		tab.Note("serializability under %s — %s", planName, strings.Join(checks, "; "))
		if len(opNotes) > 0 {
			tab.Note("(per-cell operating points: %s)", strings.Join(opNotes, ", "))
			tab.SetMeta("cell_rates", strings.Join(opNotes, ","))
		}
	}
	if wanTopo != "" {
		plan := mustPlan("wan-partition")
		tab := rep.Add(&report.Table{
			ID: "chaos/wan-partition@" + wanTopo, Gap: true,
			Title: fmt.Sprintf("[plan=wan-partition topology=%s] %s — asymmetric links: the healed path costs more one way than the other",
				wanTopo, plan.Doc),
			Columns: []report.Column{
				report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
				report.Col("phase", "phase", report.String, report.None, 6).AlignLeft(),
				report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
				report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
				report.Col("p99", "p99", report.Duration, report.Nanos, 12),
			},
		})
		o.stamp(tab, wanTopo, "micro",
			"chaos", "wan-partition", "skew", "0.5", "clock", clocks.ModelChrony.String(),
			"window", fmt.Sprintf("%v-%v", plan.Window.Start, plan.Window.End))
		phases := []struct {
			name     string
			from, to time.Duration
		}{
			{"pre", 0, plan.Window.Start},
			{"fault", plan.Window.Start, plan.Window.End},
			{"post", plan.Window.End, total},
		}
		var checks []string
		for j, p := range names {
			res := results[topoBase+j]
			for _, ph := range phases {
				thpt, commit, p99 := phaseStats(res, ph.from, ph.to)
				row := ChaosRow{Protocol: p, Plan: "wan-partition@" + wanTopo, Phase: ph.name,
					Thpt: thpt, Commit: commit, P99: p99}
				rows = append(rows, row)
				tab.AddRow(report.Str(p), report.Str(ph.name), report.Num(thpt),
					report.Num(commit), report.Dur(p99))
			}
			checks = append(checks, fmt.Sprintf("%s: %s", p, checkStatus(res, caps[p])))
		}
		tab.Note("serializability under wan-partition@%s — %s", wanTopo, strings.Join(checks, "; "))
	}
	return rep, rows
}
