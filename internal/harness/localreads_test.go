package harness

import (
	"testing"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/protocol"
)

// localReadTestSpec builds a small local-reads deployment for the safe-time
// tests: the classic WAN, a read-heavy YCSB-T mix, and the "local-reads"
// knob armed.
func localReadTestSpec(t *testing.T, proto string, readRatio float64) ClusterSpec {
	t.Helper()
	spec := ClusterSpec{
		Protocol: proto, Workload: "ycsbt", WorkloadKeys: 300,
		WorkloadParams: map[string]any{"skew": 0.7, "read-ratio": readRatio},
		Shards:         3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 7,
	}
	spec.SetKnob(proto, "local-reads", true)
	if proto == "2PL+Paxos" || proto == "OCC+Paxos" {
		spec.SetKnob(proto, "vote-timeout", time.Second)
	}
	if err := spec.EnsureGen(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// runWatermarkMonotonic drives load through the named chaos plan while
// sampling every replica's safe-time watermark every 50 ms, failing on any
// decrease not excused by allowReset (crash/reboot wipes a replica's state,
// so ITS watermark may restart from zero; everyone else must stay monotonic
// even while clocks step backwards).
func runWatermarkMonotonic(t *testing.T, proto, plan string, allowReset func(idx int) bool) {
	t.Helper()
	spec := localReadTestSpec(t, proto, 0.9)
	d := Build(spec)
	ApplyPlan(d, spec, plan)
	snap, ok := d.Sys.(protocol.SnapshotReadable)
	if !ok {
		t.Fatalf("%s does not implement protocol.SnapshotReadable", proto)
	}
	last := snap.SafeTimes()
	var sample func()
	sample = func() {
		cur := snap.SafeTimes()
		for i := range cur {
			if cur[i] < last[i] && (allowReset == nil || !allowReset(i)) {
				t.Errorf("%s under %s: replica %d watermark went backwards at %v: %v -> %v",
					proto, plan, i, d.Sim.Now(), last[i], cur[i])
			}
		}
		last = cur
		d.Sim.After(50*time.Millisecond, sample)
	}
	d.Sim.After(50*time.Millisecond, sample)
	RunLoad(d, spec.Gen, LoadSpec{
		RatePerCoord: 100, Outstanding: 100, Duration: 11 * time.Second,
		Seed: 3, LocalReads: true,
	})
}

// TestWatermarkMonotonicUnderClockChaos pins the safe-time invariant that
// everything else rests on: watermarks never move backwards, even when the
// chaos layer steps clocks forward and back (Tiga) or wall time jumps under
// the prepare-low rule (the layered baselines).
func TestWatermarkMonotonicUnderClockChaos(t *testing.T) {
	for _, proto := range []string{"Tiga", "2PL+Paxos"} {
		runWatermarkMonotonic(t, proto, "clock-step", nil)
		runWatermarkMonotonic(t, proto, "ntp-insanity", nil)
	}
}

// TestWatermarkMonotonicUnderCrashReboot allows the crashed replica (the
// leader-crash plan's victim, shard 1 replica 0) to restart from zero but
// holds every surviving replica to strict monotonicity through the crash,
// the view change, and the reboot.
func TestWatermarkMonotonicUnderCrashReboot(t *testing.T) {
	victim := 1*3 + 0 // shard-major index of the leader-crash plan's target
	for _, proto := range []string{"Tiga", "2PL+Paxos"} {
		runWatermarkMonotonic(t, proto, "leader-crash", func(idx int) bool {
			return idx == victim
		})
	}
}

// TestLyingReplicaCaught fault-injects a watermark lie: every replica
// advertises a safe time one second ahead of its real one, so local reads
// are served immediately against stores that have not yet applied writes
// with timestamps below the snapshot. The snapshot-read checker must catch
// the resulting stale reads — this is the test that the checker is not
// vacuous.
func TestLyingReplicaCaught(t *testing.T) {
	type liar interface {
		LieSafeTime(shard, replica int, ahead time.Duration)
	}
	for _, proto := range []string{"Tiga", "2PL+Paxos"} {
		spec := localReadTestSpec(t, proto, 0.6)
		d := Build(spec)
		l, ok := d.Sys.(liar)
		if !ok {
			t.Fatalf("%s system has no LieSafeTime fault hook", proto)
		}
		for sh := 0; sh < spec.Shards; sh++ {
			for r := 0; r < 2*spec.F+1; r++ {
				l.LieSafeTime(sh, r, time.Second)
			}
		}
		res := RunLoad(d, spec.Gen, LoadSpec{
			RatePerCoord: 150, Outstanding: 200, Duration: 8 * time.Second,
			Seed: 11, Check: true, LocalReads: true,
		})
		if len(res.SnapReads) == 0 {
			t.Fatalf("%s: no snapshot-read observations collected", proto)
		}
		if err := checker.SnapshotReads(res.SnapReads, res.Writes); err == nil {
			t.Errorf("%s: every replica lied its watermark 1s ahead, yet the snapshot-read checker found nothing", proto)
		}
	}
}

// TestTigaLocalReadLatency is the headline acceptance check: with a modest
// staleness bound (covering the watermark lag), Tiga serves YCSB-T read-only
// transactions from the nearest replica with a p50 below one WAN OWD (the
// cheapest geo4 cross-region link is 55 ms one way; the coordinator commit
// path costs a full WRTT or more), with the snapshot-read checker armed and
// passing. The watermark is held at the commit point — not release — so it
// lags by the replication round trip (~1 WRTT + the sync-point cadence) and
// the staleness bound must cover that lag for reads to stay wait-free; the
// breakdown experiment measures what tighter bounds cost in SAFETIME wait.
func TestTigaLocalReadLatency(t *testing.T) {
	spec := localReadTestSpec(t, "Tiga", 0.95)
	spec.SetKnob("Tiga", "read-staleness", 400*time.Millisecond)
	d := Build(spec)
	res := RunLoad(d, spec.Gen, LoadSpec{
		RatePerCoord: 150, Outstanding: 200, Duration: 8 * time.Second,
		Seed: 13, Check: true, LocalReads: true,
	})
	if res.Run.Counters.LocalReads == 0 {
		t.Fatal("no read-only transactions took the local path")
	}
	if err := checker.SnapshotReads(res.SnapReads, res.Writes); err != nil {
		t.Fatalf("snapshot-read checker: %v", err)
	}
	owd := 55 * time.Millisecond
	if p50 := res.Run.ReadLat.Percentile(50); p50 >= owd {
		t.Errorf("local-read p50 = %v, want < 1 OWD (%v)", p50, owd)
	}
}
