package harness

import (
	"fmt"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/report"
	"tiga/internal/trace"
)

// Breakdown is the observability experiment: per-protocol critical-path
// latency decomposition from txn-lifecycle traces (internal/trace). Every run
// here arms LoadSpec.Trace, so each committed transaction's end-to-end
// latency is split — exactly, by construction — across the coarse buckets:
// message flight (WRTT), admission queueing, future-timestamp headroom
// (plus pq reorder and SAFETIME waits), lock/validation waits, replication,
// and everything else (dispatch, execution, decision, retries).
//
// The point of the table is the structural contrast the paper argues
// qualitatively: Tiga's commit latency is headroom-dominated (the bounded,
// self-tuning price of executing in timestamp order, overlapping the WAN
// flight), while the layered baselines pay for the same serialization in
// lock/validation windows plus an extra replication round — unbounded under
// contention. The read table decomposes the 0-WRTT local-read path, where
// the SAFETIME share measures what the safe-time watermark's lag actually
// costs — including the commit-point (durability) hold on leader watermarks.
func Breakdown(o Options) (*report.Report, map[string]trace.Breakdown) {
	rep := report.New("breakdown")
	topo := o.classicTopology()
	out := map[string]trace.Breakdown{}
	warm, dur := o.durations()

	bucketCols := func(lead ...report.Column) []report.Column {
		cols := append([]report.Column{}, lead...)
		cols = append(cols,
			report.Col("mean", "Mean", report.Duration, report.Nanos, 11),
			report.Col("wrtt", "WRTT", report.Duration, report.Nanos, 11),
			report.Col("queue", "Queue", report.Duration, report.Nanos, 10),
			report.Col("headroom", "Headroom", report.Duration, report.Nanos, 11),
			report.Col("lockval", "Lock/Val", report.Duration, report.Nanos, 11),
			report.Col("repl", "Repl", report.Duration, report.Nanos, 11),
			report.Col("other", "Other", report.Duration, report.Nanos, 10),
			report.Col("domshare", "Top share", report.Float, report.Percent, 10).WithPrec(1),
		)
		return cols
	}
	bucketCells := func(s *trace.Summary) []report.Cell {
		var dom trace.Bucket
		for b := trace.Bucket(0); b < trace.Bucket(trace.NumBuckets); b++ {
			if s.Phase[b] > s.Phase[dom] {
				dom = b
			}
		}
		return []report.Cell{
			report.Dur(s.MeanTotal()),
			report.Dur(s.Mean(trace.BucketWRTT)),
			report.Dur(s.Mean(trace.BucketQueue)),
			report.Dur(s.Mean(trace.BucketHeadroom)),
			report.Dur(s.Mean(trace.BucketLockVal)),
			report.Dur(s.Mean(trace.BucketRepl)),
			report.Dur(s.Mean(trace.BucketOther)),
			report.Num(s.Share(dom)),
		}
	}

	// ---- commit path ----
	// The instrumented protocols: Tiga and the layered baselines share the
	// phase taxonomy; their traces decompose the full commit path.
	protos := []string{"Tiga", "2PL+Paxos", "OCC+Paxos"}
	runs := make([]SpecRun, 0, len(protos))
	for i, p := range protos {
		spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		spec.CostScale = CPUScale
		seed := o.Seed + 41 + int64(i)
		runs = append(runs, SpecRun{Spec: spec, Load: LoadSpec{
			RatePerCoord: 150, Outstanding: 64, Warmup: warm, Duration: dur,
			Seed: seed, Trace: &trace.Config{Seed: seed},
		}})
	}
	tab := rep.Add(&report.Table{
		ID: "breakdown/commit", Gap: true,
		Title: "[commit path] mean per-txn latency by critical-path phase, MicroBench skew 0.5 (exact: buckets sum to end-to-end)",
		Columns: bucketCols(
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("txns", "Txns", report.Float, report.None, 7).WithPrec(0),
		),
	})
	o.stamp(tab, topo.Name, "micro", "skew", "0.5", "rate", "150")
	results := RunSpecs(runs, o.Workers)
	for i, p := range protos {
		s := results[i].Trace
		if s == nil || s.Count == 0 {
			tab.AddRow(report.Str(p), report.Num(0))
			continue
		}
		out[p] = s.Phase
		cells := append([]report.Cell{report.Str(p), report.Num(float64(s.Count))}, bucketCells(s)...)
		tab.AddRow(cells...)
	}
	tab.Note("Headroom bucket = future-timestamp wait + pq reorder + SAFETIME; Other = dispatch/exec/decision/retry.")

	// ---- local-read path ----
	// Read-only transactions through the nearest-replica snapshot path. The
	// staleness axis shows the watermark-lag cost at its extremes: strong
	// reads (staleness 0) wait out the full lag — for Tiga leaders, the
	// commit-point hold (replication round trip + sync-point cadence) — and
	// a bounded-staleness read absorbs it into the bound.
	readProtos := []string{"Tiga", "2PL+Paxos"}
	stalenesses := []time.Duration{0, 200 * time.Millisecond}
	rruns := make([]SpecRun, 0, len(readProtos)*len(stalenesses))
	for i, p := range readProtos {
		for j, st := range stalenesses {
			spec := o.localReadSpec(p, st, true)
			seed := o.Seed + 71 + int64(i*len(stalenesses)+j)
			rruns = append(rruns, SpecRun{Spec: spec, Load: LoadSpec{
				RatePerCoord: o.localReadRate(), Outstanding: 64, Warmup: warm, Duration: dur,
				Seed: seed, LocalReads: true, Trace: &trace.Config{Seed: seed},
			}})
		}
	}
	rtab := rep.Add(&report.Table{
		ID: "breakdown/reads", Gap: true,
		Title: "[local-read path] YCSB-T 95% reads via nearest-replica snapshots; Headroom bucket = SAFETIME watermark wait",
		Columns: bucketCols(
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("staleness", "staleness", report.Duration, report.Nanos, 10),
			report.Col("txns", "Txns", report.Float, report.None, 7).WithPrec(0),
		),
	})
	o.stamp(rtab, topo.Name, "ycsbt", "read-ratio", "0.95")
	rresults := RunSpecs(rruns, o.Workers)
	for i, p := range readProtos {
		for j, st := range stalenesses {
			s := rresults[i*len(stalenesses)+j].Trace
			if s == nil || s.Count == 0 {
				rtab.AddRow(report.Str(p), report.Dur(st), report.Num(0))
				continue
			}
			out[fmt.Sprintf("%s reads@%v", p, st)] = s.Phase
			cells := append([]report.Cell{report.Str(p), report.Dur(st),
				report.Num(float64(s.Count))}, bucketCells(s)...)
			rtab.AddRow(cells...)
		}
	}
	rtab.Note("All txns traced: the 5%% write mix rides the commit path and folds into the means. Strong reads (staleness 0) pay the watermark lag; Tiga leaders hold it at the commit point, so the wait is the replication round trip.")
	return rep, out
}
