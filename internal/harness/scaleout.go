package harness

import (
	"fmt"
	"strings"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/report"
)

// This file holds the scale-out serving experiment: a shards × replication
// sweep over a fixed million-key dataset, driven open-loop (Poisson arrivals,
// LoadSpec.Arrival) at an offered rate that grows linearly with the shard
// count. Closed-loop saturation hides scale-out losses — a slow cell simply
// issues less — so this sweep keeps offering the linear-scaling load and lets
// each coordinator's admission gate shed what the cell cannot absorb. The
// figure of merit is scale-out efficiency: the throughput ratio over the
// smallest deployment, divided by the shard-count ratio (1.0 = perfectly
// linear). Queue wait is reported separately from service latency, so a cell
// that holds p99 by queueing (rather than by serving faster) is visible.

// ScaleOutRow is one protocol × shards × F cell.
type ScaleOutRow struct {
	Protocol string
	Shards   int
	F        int
	KeysPer  int     // per-shard keyspace (total is fixed across the row's sweep)
	Offered  float64 // aggregate open-loop arrival rate, txn/s across all coordinators
	Thpt     float64
	Commit   float64 // of admitted (non-shed) transactions
	ShedPct  float64 // share of arrivals refused by admission gates
	P99      time.Duration
	QueueP99 time.Duration
	Eff      float64 // (thpt ratio vs the 3-shard cell at the same F) / (shard ratio)
}

// scaleoutShards is the sweep's shard axis; the paper's WAN deploys 3 shards,
// so 3 is the efficiency baseline.
func (o Options) scaleoutShards() []int {
	if o.Quick {
		return []int{3, 6}
	}
	return []int{3, 6, 9}
}

// scaleoutReplication is the fault-tolerance axis (replicas per shard =
// 2F+1).
func (o Options) scaleoutReplication() []int {
	if o.Quick {
		return []int{1}
	}
	return []int{1, 2}
}

// scaleoutTotalKeys is the dataset size the sweep re-shards. Unlike the other
// experiments (where Options.Keys is a per-shard keyspace), scale-out fixes
// the TOTAL keyspace so every cell serves the same data: growing the shard
// count shrinks each shard's slice, which is what scaling out means. -keys
// overrides the total (CI smoke uses a reduced dataset).
func (o Options) scaleoutTotalKeys() int {
	if o.Keys > 0 {
		return o.Keys
	}
	if o.Quick {
		return 120_000
	}
	return 1_200_000
}

// admissionProtocols filters the sweep down to protocols whose schema
// declares the admission-control knobs (admit-cap). Open-loop overload
// without an admission gate is congestion collapse by construction — the
// backlog grows without bound and the measurement (and the simulator heap)
// with it — so gate-less protocols are excluded by design, not by omission.
func (o Options) admissionProtocols() (in, out []string, remark string) {
	names, remark := o.sweepProtocols()
	for _, p := range names {
		if s, ok := protocol.Knobs(p); ok {
			if _, found := s.Find("admit-cap"); found {
				in = append(in, p)
				continue
			}
		}
		out = append(out, p)
	}
	return in, out, remark
}

// scaleoutBaseRate is the per-coordinator offered rate for the 3-shard
// baseline cell: the protocol's recorded saturation operating point when one
// is given (-op), else the shared micro saturation rate. Cells with more
// shards scale this linearly — the whole point is to offer the load a
// linearly-scaling system should absorb.
func (o Options) scaleoutBaseRate(proto, topo string) float64 {
	if op, ok := o.opFor(proto, topo); ok && op.SaturationRate > 0 {
		return op.SaturationRate
	}
	return 3000
}

// scaleoutGate resolves the admission-gate sizing for one cell: cap at the
// protocol's outstanding operating point (default 300, the saturation cap),
// queue as deep as the cap.
func (o Options) scaleoutGate(proto, topo string) int {
	if op, ok := o.opFor(proto, topo); ok && op.Outstanding > 0 {
		return op.Outstanding
	}
	return 300
}

// ScaleOut sweeps shards × replication over a fixed total keyspace per
// admission-capable protocol, drives each cell open-loop at a linearly-scaled
// Poisson rate, and reports throughput, service/queue latency, shed rate, and
// scale-out efficiency against the 3-shard baseline.
func ScaleOut(o Options) (*report.Report, []ScaleOutRow) {
	rep := report.New("scaleout")
	names, excluded, remark := o.admissionProtocols()
	if remark != "" {
		rep.AddNote(remark)
	}
	topo := o.classicTopology()
	shards := o.scaleoutShards()
	fs := o.scaleoutReplication()
	totalKeys := o.scaleoutTotalKeys()
	rep.Add(&report.Table{
		ID: "scaleout-banner", Gap: true,
		Title: fmt.Sprintf("Scale-out serving — %d protocols, MicroBench %d keys total, open-loop Poisson arrivals",
			len(names), totalKeys),
	})
	if len(excluded) > 0 {
		rep.AddNote(fmt.Sprintf("(excluded by design — no admission gate, open-loop overload would collapse unbounded: %s)",
			strings.Join(excluded, ", ")))
	}
	if len(names) == 0 {
		return rep, nil
	}

	warm, dur := o.durations()
	baseShards := shards[0]
	type cell struct {
		proto     string
		shards, f int
		rate      float64 // per-coordinator offered rate
		gate      int
	}
	var cells []cell
	for _, p := range names {
		base := o.scaleoutBaseRate(p, topo.Name)
		gate := o.scaleoutGate(p, topo.Name)
		for _, f := range fs {
			for _, n := range shards {
				// Both the offered load and the admission gate scale with
				// the shard count: the gate sizes to the capacity the cell
				// is provisioned for, so it sheds overload rather than
				// becoming the bottleneck itself (a fixed cap would pin
				// every cell to the same Little's-law ceiling and hide the
				// scaling being measured).
				cells = append(cells, cell{
					proto: p, shards: n, f: f,
					rate: base * float64(n) / float64(baseShards),
					gate: gate * n / baseShards,
				})
			}
		}
	}
	runs := make([]SpecRun, len(cells))
	for i, c := range cells {
		spec := ClusterSpec{
			Protocol: c.proto, Topology: topo.Name,
			Workload: "micro", WorkloadKeys: totalKeys / c.shards,
			WorkloadParams: map[string]any{"skew": 0.5},
			Shards:         c.shards, F: c.f, Clock: clocks.ModelChrony,
			CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed,
			CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
		}
		// Same overload hygiene as the saturation experiments: stretch Tiga's
		// retry timer so driving past capacity measures the protocol, not a
		// retransmission storm. The admission gate is the experiment's
		// backpressure, so it is experiment-imposed (setKnobDefault still
		// lets an explicit -knob override win).
		spec.setKnobDefault("Tiga", "retry-timeout", 10*time.Second)
		spec.setKnobDefault(c.proto, "admit-cap", c.gate)
		spec.setKnobDefault(c.proto, "admit-queue", c.gate)
		runs[i] = SpecRun{Spec: spec, Load: LoadSpec{
			Arrival: "poisson", RatePerCoord: c.rate,
			Warmup: warm, Duration: dur, Seed: o.Seed + 101 + int64(i),
		}}
	}
	results := RunSpecs(runs, o.Workers)

	tab := rep.Add(&report.Table{
		ID: "scaleout/cells", Gap: true,
		Title: "[shards × replication] open-loop serving over a fixed keyspace; efficiency vs linear scaling of the 3-shard cell",
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("shards", "shards", report.Float, report.None, 7).WithPrec(0),
			report.Col("f", "F", report.Float, report.None, 3).WithPrec(0),
			report.Col("keys", "keys/shard", report.Float, report.None, 11).WithPrec(0),
			report.Col("offered", "Offered(txn/s)", report.Float, report.Rate, 15),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
			report.Col("shed", "Shed%", report.Float, report.Percent, 7).WithPrec(1),
			report.Col("p99", "svc p99", report.Duration, report.Nanos, 12),
			report.Col("qp99", "queue p99", report.Duration, report.Nanos, 12),
			report.Col("eff", "Eff", report.Float, report.None, 6).WithPrec(2),
		},
	})
	o.stamp(tab, topo.Name, "micro",
		"arrival", "poisson", "total-keys", fmt.Sprintf("%d", totalKeys),
		"clock", clocks.ModelChrony.String())

	// Efficiency baseline: the same protocol × F at the smallest shard count.
	baseThpt := make(map[string]float64, len(names)*len(fs))
	for i, c := range cells {
		if c.shards == baseShards {
			baseThpt[fmt.Sprintf("%s/%d", c.proto, c.f)] = results[i].Run.Throughput()
		}
	}
	var rows []ScaleOutRow
	for i, c := range cells {
		run := results[i].Run
		offered := c.rate * float64(len(runs[i].Spec.CoordRegionList()))
		shedPct := 0.0
		if run.Counters.Submitted > 0 {
			shedPct = 100 * float64(run.Counters.Shed) / float64(run.Counters.Submitted)
		}
		eff := 0.0
		if base := baseThpt[fmt.Sprintf("%s/%d", c.proto, c.f)]; base > 0 {
			eff = (run.Throughput() / base) / (float64(c.shards) / float64(baseShards))
		}
		// Commit% is over admitted arrivals: shedding is the gate doing its
		// job and is reported on its own axis, not as protocol aborts.
		commit := 0.0
		if admitted := run.Counters.Submitted - run.Counters.Shed; admitted > 0 {
			commit = 100 * float64(run.Counters.Committed) / float64(admitted)
		}
		row := ScaleOutRow{
			Protocol: c.proto, Shards: c.shards, F: c.f,
			KeysPer: totalKeys / c.shards, Offered: offered,
			Thpt: run.Throughput(), Commit: commit,
			ShedPct: shedPct,
			P99:     run.Lat.Percentile(99), QueueP99: run.QueueLat.Percentile(99),
			Eff: eff,
		}
		rows = append(rows, row)
		tab.AddRow(report.Str(row.Protocol), report.Num(float64(row.Shards)),
			report.Num(float64(row.F)), report.Num(float64(row.KeysPer)),
			report.Num(row.Offered), report.Num(row.Thpt), report.Num(row.Commit),
			report.Num(row.ShedPct), report.Dur(row.P99), report.Dur(row.QueueP99),
			report.Num(row.Eff))
	}
	tab.Note("(offered load scales linearly with shards; the admission gate — admit-cap/admit-queue at the protocol's outstanding point — sheds the excess, so Shed%% reads as headroom exhausted; svc p99 excludes queue wait)")
	return rep, rows
}
