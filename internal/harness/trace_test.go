package harness

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/pool"
	"tiga/internal/trace"
)

// traceTestSpec builds a small commit-path deployment for the tracing tests:
// the classic WAN, MicroBench, three shards.
func traceTestSpec(t *testing.T, proto string) ClusterSpec {
	t.Helper()
	spec := ClusterSpec{
		Protocol: proto, Workload: "micro", WorkloadKeys: 2000,
		Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 42,
		CostScale: CPUScale,
	}
	if err := spec.EnsureGen(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestTraceBreakdownExactness pins the trace model's core invariant at the
// harness level, per protocol: every committed transaction's phase breakdown
// sums EXACTLY to its end-to-end latency, so the run-level accumulators agree
// to the nanosecond with the independently recorded latency samples. This
// holds by construction (the clamped monotone walk in internal/trace), but
// the test also pins what the walk cannot guarantee alone — that the harness
// keeps exactly the in-window committed set (Count == samples) and seals
// traces at the same instant it samples latency.
func TestTraceBreakdownExactness(t *testing.T) {
	for _, proto := range []string{"Tiga", "2PL+Paxos", "OCC+Paxos"} {
		spec := traceTestSpec(t, proto)
		d := Build(spec)
		res := RunLoad(d, spec.Gen, LoadSpec{
			RatePerCoord: 150, Outstanding: 64,
			Warmup: 500 * time.Millisecond, Duration: 3 * time.Second,
			Seed: 17, TrackSamples: true,
			Trace: &trace.Config{Seed: 17},
		})
		s := res.Trace
		if s == nil || s.Count == 0 {
			t.Fatalf("%s: traced run produced no trace summary", proto)
		}
		if s.Count != len(res.Samples) {
			t.Errorf("%s: trace kept %d txns but the run sampled %d commits",
				proto, s.Count, len(res.Samples))
		}
		var want time.Duration
		for _, smp := range res.Samples {
			want += smp.Lat
		}
		if got := s.Phase.Total(); got != want {
			t.Errorf("%s: phase breakdown sums to %v, committed latency sums to %v (diff %v)",
				proto, got, want, got-want)
		}
		// The instrumentation actually attributes phases: every protocol
		// crosses the WAN, so flight time must be nonzero — an all-Other
		// breakdown would mean the marks never landed.
		if s.Phase[trace.BucketWRTT] == 0 {
			t.Errorf("%s: WRTT bucket is zero — no flight marks recorded", proto)
		}
		for _, ex := range s.Exemplars {
			bd := ex.Breakdown()
			if bd.Total() != ex.Latency() {
				t.Errorf("%s: exemplar idx=%d breakdown %v != latency %v",
					proto, ex.Idx, bd.Total(), ex.Latency())
			}
		}
	}
}

// TestTraceDeterminismAcrossWorkers pins the tracer to the simulator's core
// guarantee: with a fixed seed, the process-wide trace sink drains the same
// summaries — same accumulators, same retained exemplars, same Chrome
// trace-event bytes — whether the sweep points ran serially or on eight
// workers. Retention is hash-of-(seed,idx), never wall clock; the sink sorts
// by content-derived keys; and the double-free detector is armed so a pooled
// trace recycled across runs fails loudly.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full load windows; skipped under -short")
	}
	pool.Check = true
	defer func() { pool.Check = false }()

	chrome := func(workers int) []byte {
		EnableTracing(trace.Config{Seed: 5})
		defer DisableTracing()
		o := Options{Quick: true, Keys: 800, Seed: 42, Workers: workers}
		protos := []string{"Tiga", "2PL+Paxos", "OCC+Paxos", "Tiga"}
		runs := make([]SpecRun, 0, len(protos))
		for i, p := range protos {
			spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
			spec.CostScale = CPUScale
			runs = append(runs, SpecRun{Spec: spec, Load: LoadSpec{
				RatePerCoord: 150, Outstanding: 64,
				Warmup: 500 * time.Millisecond, Duration: 2 * time.Second,
				Seed: o.Seed + int64(i),
			}})
		}
		RunSpecs(runs, workers)
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, CollectTraces()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := chrome(1), chrome(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Chrome trace export differs between -workers 1 and 8\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
}

// TestTracingDisabledAllocBudget pins the disabled path's cost: with no
// Trace config on the load and the sink unarmed, every tracing hook is a nil
// test or a plain stamp write into a pooled message, so the allocation
// budget per committed transaction must not move. The measurement mirrors
// the simbench txn-path row (fresh deployment, allocator deltas around
// RunLoad divided by commits): PR 9 pinned that budget at ~53 allocs/txn,
// CI's benchdiff gate allows a 10% rise, and the ceiling here sits just
// above that gate — far below the cost of even one boxed mark or span per
// transaction, which is what a disabled-path regression would add.
// pool.Check is armed so a recycle bug fails as itself, not as an
// allocation anomaly.
func TestTracingDisabledAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full load windows; skipped under -short")
	}
	pool.Check = true
	defer func() { pool.Check = false }()

	spec := traceTestSpec(t, "Tiga")
	d := Build(spec)
	load := LoadSpec{
		RatePerCoord: 500, Outstanding: 100,
		Warmup: 200 * time.Millisecond, Duration: time.Second, Seed: 43,
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := RunLoad(d, spec.Gen, load)
	runtime.ReadMemStats(&m1)
	if res.Trace != nil {
		t.Fatal("untraced run carries a trace summary")
	}
	committed := res.Run.Counters.Committed
	if committed == 0 {
		t.Fatal("no commits in the measurement run")
	}
	perTxn := float64(m1.Mallocs-m0.Mallocs) / float64(committed)
	const ceiling = 60.0
	t.Logf("tracing disabled: %.1f allocs per committed txn (%d commits)", perTxn, committed)
	if perTxn > ceiling {
		t.Errorf("tracing-disabled run allocates %.1f per committed txn, budget %.0f — the disabled path must stay allocation-free",
			perTxn, ceiling)
	}
}
