package harness

import (
	"sync"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/workload"
)

// TestRunSpecsSerialParallelIdentical pins RunSpecs's core guarantee: the
// worker count changes only wall-clock time, never results. A regression
// here means shared mutable state (or map-iteration order reaching a message
// send) leaked into Build/RunLoad — the bug class that makes whole
// experiment runs nondeterministic.
func TestRunSpecsSerialParallelIdentical(t *testing.T) {
	mkRuns := func() []SpecRun {
		var runs []SpecRun
		for _, p := range []string{"2PL+Paxos", "Tapir", "Janus", "Tiga"} {
			runs = append(runs, SpecRun{
				Spec: ClusterSpec{
					Protocol: p, Shards: 3, F: 1, Clock: clocks.ModelChrony,
					CoordsPerRegion: 1, CoordsRemote: 1, Seed: 77,
					Gen: workload.NewMicroBench(3, 1000, 0.5),
				},
				Load: LoadSpec{RatePerCoord: 40, Warmup: 500 * time.Millisecond,
					Duration: 2 * time.Second, Seed: 9},
			})
		}
		return runs
	}
	serial := RunSpecs(mkRuns(), 1)
	parallel := RunSpecs(mkRuns(), 4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i].Run, parallel[i].Run
		if s.Counters != p.Counters {
			t.Errorf("point %d: counters diverge: serial %+v parallel %+v", i, s.Counters, p.Counters)
		}
		if s.Throughput() != p.Throughput() {
			t.Errorf("point %d: throughput diverges: %v vs %v", i, s.Throughput(), p.Throughput())
		}
		for _, pct := range []float64{50, 90, 99} {
			if sl, pl := s.Lat.Percentile(pct), p.Lat.Percentile(pct); sl != pl {
				t.Errorf("point %d: p%.0f diverges: %v vs %v", i, pct, sl, pl)
			}
		}
	}
}

// TestRunSpecsConcurrentBatchesShareThePool pins the shared-pool contract:
// multiple RunSpecs calls in flight at once (the -exp all shape, where every
// experiment submits its own batch and the workers steal across them)
// return the same input-ordered, byte-identical results as serial runs.
func TestRunSpecsConcurrentBatchesShareThePool(t *testing.T) {
	mkRuns := func(seed int64) []SpecRun {
		var runs []SpecRun
		for _, p := range []string{"Tiga", "Janus", "Calvin+"} {
			runs = append(runs, SpecRun{
				Spec: ClusterSpec{
					Protocol: p, Shards: 3, F: 1, Clock: clocks.ModelChrony,
					CoordsPerRegion: 1, Seed: seed,
					Gen: workload.NewMicroBench(3, 500, 0.5),
				},
				Load: LoadSpec{RatePerCoord: 30, Warmup: 300 * time.Millisecond,
					Duration: time.Second, Seed: seed + 1},
			})
		}
		return runs
	}
	serial := [][]*RunResult{RunSpecs(mkRuns(3), 1), RunSpecs(mkRuns(4), 1)}
	var wg sync.WaitGroup
	concurrent := make([][]*RunResult, 2)
	for b := 0; b < 2; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrent[b] = RunSpecs(mkRuns(int64(3+b)), 2)
		}()
	}
	wg.Wait()
	for b := 0; b < 2; b++ {
		for i := range serial[b] {
			s, c := serial[b][i].Run, concurrent[b][i].Run
			if s.Counters != c.Counters || s.Throughput() != c.Throughput() {
				t.Errorf("batch %d point %d diverges: serial %+v concurrent %+v",
					b, i, s.Counters, c.Counters)
			}
		}
	}
}

// TestRunSpecsDropsDeployments verifies sweep points release their simulators
// unless explicitly retained — otherwise a large sweep pins every
// deployment's stores in memory until the whole sweep finishes.
func TestRunSpecsDropsDeployments(t *testing.T) {
	gen := workload.NewMicroBench(3, 200, 0.5)
	base := SpecRun{
		Spec: ClusterSpec{
			Protocol: "Tiga", Shards: 3, F: 1, Clock: clocks.ModelChrony,
			CoordsPerRegion: 1, Seed: 3, Gen: gen,
		},
		Load: LoadSpec{RatePerCoord: 20, Duration: time.Second, Seed: 4},
	}
	kept := base
	kept.KeepDeployment = true
	res := RunSpecs([]SpecRun{base, kept}, 1)
	if res[0].Deployment != nil {
		t.Error("default point retained its Deployment")
	}
	if res[1].Deployment == nil {
		t.Error("KeepDeployment point lost its Deployment")
	} else if _, ok := res[1].Deployment.Sys.(protocol.Checkable); !ok {
		t.Error("retained deployment lost capability access")
	}
}
