package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/protocol"
	"tiga/internal/report"
	"tiga/internal/simnet"
	"tiga/internal/tpcc"
	"tiga/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§5). The simulated testbed stands in for Google Cloud, so absolute
// throughput is scaled: per-operation CPU costs are multiplied by CPUScale,
// which divides all throughput numbers by roughly the same factor while
// preserving the protocols' relative ordering, the latency structure, and
// the crossover points. EXPERIMENTS.md records the paper-vs-measured values.
//
// Every experiment BUILDS a report.Report — named tables of typed cells —
// instead of printing: the text renderer reproduces the paper's presentation
// byte-for-byte on defaults (pinned by the golden tests), while the JSON and
// CSV emitters turn the same model into the machine-readable artifacts CI
// archives. Region labels come from the deployment's topology, never from
// literal geo4 names, so `-topo us-eu3 -exp fig7` reads naturally.
//
// Sweeps enumerate the protocol registry (protocol.Names()) and execute
// their independent points on the parallel driver (RunSpecs): every point
// owns a private simulator, so the output is identical to a serial run while
// the wall clock scales down with the core count.
const CPUScale = 10

// Options shapes an experiment run.
type Options struct {
	Seed int64
	// Quick shrinks sweeps and durations so the full suite runs in minutes
	// (used by the benchmark harness); the CLI default is a fuller run.
	Quick bool
	// Keys per shard for MicroBench (paper: 1M; default here 100k to bound
	// simulator memory across 9 replicated copies).
	Keys int
	// Workers caps the parallel sweep driver's pool (0 = all cores,
	// 1 = serial). The Keys memory bound holds per deployment; peak sweep
	// memory is roughly Workers times that, so cap the pool on machines
	// with many cores and little RAM.
	Workers int
	// Protocols restricts multi-protocol sweeps to a subset of
	// protocol.Names() (nil = every registered protocol).
	Protocols []string
	// Topologies selects the WAN(s): the classic experiments deploy on the
	// first entry (default: geo4, the paper's WAN), with region labels
	// resolved through the topology; the scenario matrix sweeps every entry
	// (nil = every registered topology).
	Topologies []string
	// Workloads restricts the scenario matrix's workload axis to a subset
	// of workload.Names() (nil = the default mix: micro plus the two
	// scenario-layer generators, ycsbt and hotwrite).
	Workloads []string
	// Plans restricts the chaos matrix's fault-plan axis to a subset of
	// chaos.Names() (nil = every registered plan).
	Plans []string
	// Knobs holds per-protocol knob overrides (protocol name -> knob name ->
	// value) applied to every spec the experiments construct. User overrides
	// win over experiment-imposed operating conditions (the saturation
	// retry-timeout stretch) but not over the parameters an experiment
	// exists to sweep (Fig 13's headroom, the ablation toggles).
	Knobs map[string]map[string]any
	// Ops overrides the driving operating point per protocol. The sweeps
	// otherwise share one saturation rate and outstanding cap across every
	// system, which under- or over-drives protocols whose capacity differs
	// by an order of magnitude (geo-distributed operating points are
	// inherently per-protocol). A key may also name a protocol × topology
	// pair ("Tiga@us-eu3"), which overlays the protocol-wide key on that
	// topology field by field (zero fields inherit) — the scenario matrix
	// uses this to drive each cell at its own saturation point.
	Ops map[string]OpPoint
}

// OpPoint is one protocol's driving operating point.
type OpPoint struct {
	// SaturationRate replaces the shared per-coordinator rate in the
	// maximum-throughput experiments (Tables 1 and 2) and in scenario-matrix
	// cells. 0 keeps the shared rate.
	SaturationRate float64
	// Outstanding replaces the shared in-flight cap per coordinator in
	// every experiment. 0 keeps the shared cap.
	Outstanding int
}

// copyKnobs deep-copies a knob override map so each spec owns its inner
// maps: experiments layer spec-specific knobs on top, and shared inner maps
// would leak one point's overrides into every other point of the sweep.
func copyKnobs(in map[string]map[string]any) map[string]map[string]any {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]map[string]any, len(in))
	for p, m := range in {
		mm := make(map[string]any, len(m))
		for k, v := range m {
			mm[k] = v
		}
		out[p] = mm
	}
	return out
}

func (o Options) keys() int {
	if o.Keys > 0 {
		return o.Keys
	}
	if o.Quick {
		return 20000
	}
	return 100000
}

func (o Options) durations() (warmup, dur time.Duration) {
	if o.Quick {
		return 400 * time.Millisecond, 1200 * time.Millisecond
	}
	return time.Second, 3 * time.Second
}

// classicTopology resolves the WAN the classic (paper) experiments deploy
// on: the first selected topology, defaulting to the paper's geo4. Region
// labels in titles, headers, and latency buckets all come from here, so a
// classic experiment on us-eu3 reports Virginia/Frankfurt instead of empty
// geo4 buckets.
func (o Options) classicTopology() *simnet.Topology {
	name := simnet.DefaultTopology
	if len(o.Topologies) > 0 {
		name = o.Topologies[0]
	}
	t, ok := simnet.LookupTopology(name)
	if !ok {
		panic(fmt.Sprintf("unknown topology %q (registered: %v)", name, simnet.TopologyNames()))
	}
	return t
}

// protocols returns the registered protocol names the sweeps enumerate, in
// the registry's canonical order, filtered by Options.Protocols.
func (o Options) protocols() []string {
	names := protocol.Names()
	if len(o.Protocols) == 0 {
		return names
	}
	keep := make(map[string]bool, len(o.Protocols))
	for _, p := range o.Protocols {
		keep[p] = true
	}
	var out []string
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// without filters one name out of a protocol list.
func without(names []string, drop string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

// sweepProtocols applies an experiment's by-design exclusions to the
// selected protocol list. The returned remark is non-empty exactly when
// nothing is left to run — e.g. -protocols Detock against a table that
// excludes Detock would otherwise render bare headers with no explanation;
// the experiment places it where the rows would have gone.
func (o Options) sweepProtocols(drop ...string) (names []string, remark string) {
	names = o.protocols()
	for _, d := range drop {
		names = without(names, d)
	}
	if len(names) == 0 {
		remark = "(no rows: none of the selected protocols run in this experiment"
		if len(drop) > 0 {
			remark += "; excluded by design: " + strings.Join(drop, ", ")
		}
		remark += ")"
	}
	return names, remark
}

// microSkew reads the skew factor back off a MicroBench spec, so sweep rows
// are labeled from the run itself rather than loop-shape index arithmetic.
func microSkew(spec ClusterSpec) float64 {
	return spec.Gen.(*workload.MicroBench).Skew
}

func (o Options) microSpec(protocol string, skew float64, rotated bool, clock clocks.Model) (ClusterSpec, *workload.MicroBench) {
	gen := workload.NewMicroBench(3, o.keys(), skew)
	return ClusterSpec{
		Protocol: protocol, Topology: o.classicTopology().Name,
		Shards: 3, F: 1, Rotated: rotated, Clock: clock,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: gen,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}, gen
}

func (o Options) tpccSpec(protocol string) ClusterSpec {
	tg := tpcc.New(tpccConfig(o))
	return ClusterSpec{
		Protocol: protocol, Topology: o.classicTopology().Name,
		Shards: 6, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: tg,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}
}

// opFor resolves the operating point for proto deployed on topo. The
// protocol × topology key ("Tiga@us-eu3") overlays the protocol-wide key
// field by field: a zero field in the cell entry inherits the protocol-wide
// value, so `-op 2PL+Paxos=250,200 -op 2PL+Paxos@us-eu3=300` keeps the 200
// outstanding cap on us-eu3.
func (o Options) opFor(proto, topo string) (OpPoint, bool) {
	base, ok := o.Ops[proto]
	cell, cok := o.Ops[proto+"@"+topo]
	if !cok {
		return base, ok
	}
	if cell.SaturationRate == 0 {
		cell.SaturationRate = base.SaturationRate
	}
	if cell.Outstanding == 0 {
		cell.Outstanding = base.Outstanding
	}
	return cell, true
}

func specTopoName(spec ClusterSpec) string {
	if spec.Topology != "" {
		return spec.Topology
	}
	return simnet.DefaultTopology
}

// saturate prepares one maximum-throughput point: the system is driven at a
// saturating rate with Tiga's coordinator retry timer stretched so
// saturation does not trigger retransmission storms that would distort the
// measurement. A per-protocol operating point (Options.Ops) replaces the
// shared rate and outstanding cap.
func (o Options) saturate(spec ClusterSpec, perCoordRate float64) SpecRun {
	spec.setKnobDefault("Tiga", "retry-timeout", 10*time.Second)
	spec.CostScale = CPUScale
	outstanding := 300
	if op, ok := o.opFor(spec.Protocol, specTopoName(spec)); ok {
		if op.SaturationRate > 0 {
			perCoordRate = op.SaturationRate
		}
		if op.Outstanding > 0 {
			outstanding = op.Outstanding
		}
	}
	warm, dur := o.durations()
	return SpecRun{Spec: spec, Load: LoadSpec{
		RatePerCoord: perCoordRate, Outstanding: outstanding,
		Warmup: warm, Duration: dur, Seed: o.Seed + 1,
	}}
}

// point prepares one fixed-rate sweep point with the standard outstanding
// cap (or the protocol's operating-point override; the rate is the sweep's
// X axis and stays shared).
func (o Options) point(spec ClusterSpec, rate float64, seedOffset int64) SpecRun {
	spec.CostScale = CPUScale
	outstanding := 400
	if op, ok := o.opFor(spec.Protocol, specTopoName(spec)); ok && op.Outstanding > 0 {
		outstanding = op.Outstanding
	}
	warm, dur := o.durations()
	return SpecRun{Spec: spec, Load: LoadSpec{
		RatePerCoord: rate, Outstanding: outstanding,
		Warmup: warm, Duration: dur, Seed: o.Seed + seedOffset,
	}}
}

// ---- report plumbing ----

// stamp records the self-describing metadata every data table carries into
// the JSON artifact: run seed, the WAN, the workload, experiment extras
// (protocol, clock, rates), and the user's knob / operating-point overrides.
func (o Options) stamp(t *report.Table, topo, workloadName string, kv ...string) *report.Table {
	t.SetMeta("seed", strconv.FormatInt(o.Seed, 10))
	t.SetMeta("topology", topo)
	if workloadName != "" {
		t.SetMeta("workload", workloadName)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		t.SetMeta(kv[i], kv[i+1])
	}
	if s := flattenKnobs(o.Knobs); s != "" {
		t.SetMeta("knobs", s)
	}
	if s := flattenOps(o.Ops); s != "" {
		t.SetMeta("ops", s)
	}
	return t
}

// flattenKnobs renders the user's knob overrides as one sorted
// "proto.knob=value" list for table metadata.
func flattenKnobs(knobs map[string]map[string]any) string {
	var parts []string
	for p, m := range knobs {
		for k, v := range m {
			parts = append(parts, fmt.Sprintf("%s.%s=%v", p, k, v))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// flattenOps renders the operating-point overrides as one sorted
// "key=rate/outstanding" list for table metadata.
func flattenOps(ops map[string]OpPoint) string {
	var parts []string
	for k, op := range ops {
		parts = append(parts, fmt.Sprintf("%s=%v/%d", k, op.SaturationRate, op.Outstanding))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// sweepColumns is the shared six-column layout of the rate/skew sweeps.
func sweepColumns(xName, xHeader string, xUnit report.Unit) []report.Column {
	return []report.Column{
		report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
		report.Col(xName, xHeader, report.Float, xUnit, 10).WithPrec(2),
		report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
		report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
		report.Col("p50", "p50", report.Duration, report.Nanos, 12),
		report.Col("p90", "p90", report.Duration, report.Nanos, 12),
	}
}

// addSweepRow appends one SweepRow to a sweep-column table.
func addSweepRow(t *report.Table, r SweepRow) {
	t.AddRow(report.Str(r.Protocol), report.Num(r.X), report.Num(r.Thpt),
		report.Num(r.Commit), report.Dur(r.P50), report.Dur(r.P90))
}

// Table1 reproduces Table 1: maximum throughput under MicroBench (skew 0.5)
// and TPC-C for every registered protocol.
func Table1(o Options) (*report.Report, map[string]map[string]float64) {
	out := map[string]map[string]float64{"MicroBench": {}, "TPC-C": {}}
	rep := report.New("table1")
	topo := o.classicTopology()
	tab := rep.Add(&report.Table{
		ID:    "table1",
		Title: fmt.Sprintf("Table 1. Maximum throughput (txns/s, simulated testbed; paper numbers are ~%dx larger)", CPUScale),
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("micro", "MicroBench", report.Float, report.Rate, 12),
			report.Col("tpcc", "TPC-C", report.Float, report.Rate, 12),
		},
	})
	o.stamp(tab, topo.Name, "micro+tpcc", "skew", "0.5", "clock", clocks.ModelChrony.String())
	// Table 1 reports NCC; NCC+ appears in Figs 7–8.
	names, remark := o.sweepProtocols("NCC+")
	if remark != "" {
		tab.Note("%s", remark)
	}
	runs := make([]SpecRun, 0, 2*len(names))
	for _, p := range names {
		spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec, 3000))
		// TPC-C at saturation (6 shards per the paper's setup).
		runs = append(runs, o.saturate(o.tpccSpec(p), 1000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, p := range names {
		micro := results[2*i].Run.Throughput()
		tpc := results[2*i+1].Run.Throughput()
		out["MicroBench"][p] = micro
		out["TPC-C"][p] = tpc
		tab.AddRow(report.Str(p), report.Num(micro), report.Num(tpc))
	}
	return rep, out
}

func tpccConfig(o Options) tpcc.Config {
	cfg := tpcc.DefaultConfig(6)
	if o.Quick {
		cfg.Customers = 200
		cfg.Items = 2000
	} else {
		cfg.Customers = 500
		cfg.Items = 10000
	}
	return cfg
}

// SweepRow is one point of a rate/skew sweep.
type SweepRow struct {
	Protocol string
	X        float64 // rate (txns/s per coordinator) or skew factor
	Thpt     float64
	Commit   float64
	P50      time.Duration
	P90      time.Duration
}

func (o Options) rates() []float64 {
	if o.Quick {
		return []float64{250, 1000, 2500}
	}
	return []float64{100, 250, 500, 1000, 1500, 2500}
}

func regionLatency(run *metrics.Run, region string) *metrics.Latency {
	if lat := run.ByRegion[region]; lat != nil {
		return lat
	}
	return &metrics.Latency{}
}

// Fig7And8 reproduces Figures 7 and 8: MicroBench (skew 0.5) with varying
// per-coordinator rates; latency reported separately for the topology's
// local region (geo4: South Carolina, Fig 7) and its remote-coordinator
// region (geo4: Hong Kong, Fig 8).
func Fig7And8(o Options) (rep *report.Report, local, remote []SweepRow) {
	rep = report.New("fig7")
	topo := o.classicTopology()
	localName := topo.RegionName(0)
	remoteName := topo.RegionName(topo.RemoteCoordRegion)
	regions := []string{localName, remoteName}
	var banner *report.Table
	for _, region := range regions {
		fig := fmt.Sprintf("Fig 7 (local region: %s)", localName)
		if region == remoteName {
			fig = fmt.Sprintf("Fig 8 (remote region: %s)", remoteName)
		}
		banner = rep.Add(&report.Table{
			ID: "fig7-banner", Gap: true,
			Title:   fmt.Sprintf("%s — MicroBench skew 0.5, varying per-coordinator rate", fig),
			Columns: sweepColumns("rate", "rate/coord", report.Rate),
		})
		if region == remoteName {
			banner.ID = "fig8-banner"
		}
	}
	names, remark := o.sweepProtocols()
	if remark != "" {
		banner.Note("%s", remark)
	}
	rates := o.rates()
	var runs []SpecRun
	for _, p := range names {
		for _, rate := range rates {
			spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
			runs = append(runs, o.point(spec, rate, 2))
		}
	}
	results := RunSpecs(runs, o.Workers)
	for i, res := range results {
		run := res.Run
		p := runs[i].Spec.Protocol
		rate := runs[i].Load.RatePerCoord
		for _, region := range regions {
			lat := regionLatency(run, region)
			row := SweepRow{Protocol: p, X: rate, Thpt: run.Throughput(),
				Commit: run.Counters.CommitRate(), P50: lat.Percentile(50), P90: lat.Percentile(90)}
			if region == localName {
				local = append(local, row)
			} else {
				remote = append(remote, row)
			}
		}
	}
	for fi, rows := range [][]SweepRow{local, remote} {
		id, region := "fig7", localName
		if fi == 1 {
			id, region = "fig8", remoteName
		}
		tab := rep.Add(&report.Table{
			ID: id, Gap: true,
			Title:   fmt.Sprintf("Fig %d rows (%s):", 7+fi, region),
			Columns: sweepColumns("rate", "rate/coord", report.Rate),
		})
		o.stamp(tab, topo.Name, "micro", "skew", "0.5", "clock", clocks.ModelChrony.String(), "region", region)
		for _, r := range rows {
			addSweepRow(tab, r)
		}
	}
	return rep, local, remote
}

func (o Options) skews() []float64 {
	if o.Quick {
		return []float64{0.5, 0.9, 0.99}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
}

// Fig9 reproduces Figure 9: MicroBench with fixed rate and varying skew.
func Fig9(o Options) (*report.Report, []SweepRow) {
	rep := report.New("fig9")
	topo := o.classicTopology()
	rate := 800.0
	if o.Quick {
		rate = 600
	}
	tab := rep.Add(&report.Table{
		ID: "fig9", Gap: true,
		Title:   "Fig 9 — MicroBench, fixed rate, varying skew factor (all regions)",
		Columns: sweepColumns("skew", "skew", report.None),
	})
	o.stamp(tab, topo.Name, "micro", "rate", fmt.Sprintf("%v", rate), "clock", clocks.ModelChrony.String())
	names, remark := o.sweepProtocols()
	if remark != "" {
		tab.Note("%s", remark)
	}
	skews := o.skews()
	var runs []SpecRun
	for _, p := range names {
		for _, skew := range skews {
			spec, _ := o.microSpec(p, skew, false, clocks.ModelChrony)
			runs = append(runs, o.point(spec, rate, 3))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		run := res.Run
		row := SweepRow{Protocol: runs[i].Spec.Protocol, X: microSkew(runs[i].Spec),
			Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
			P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
		addSweepRow(tab, row)
		rows = append(rows, row)
	}
	return rep, rows
}

// Fig10 reproduces Figure 10: TPC-C with varying rates (all regions).
func Fig10(o Options) (*report.Report, []SweepRow) {
	rep := report.New("fig10")
	topo := o.classicTopology()
	tab := rep.Add(&report.Table{
		ID: "fig10", Gap: true,
		Title:   "Fig 10 — TPC-C, varying per-coordinator rate (all regions)",
		Columns: sweepColumns("rate", "rate/coord", report.Rate),
	})
	o.stamp(tab, topo.Name, "tpcc", "clock", clocks.ModelChrony.String())
	rates := []float64{50, 125, 250, 500}
	if o.Quick {
		rates = []float64{100, 400}
	}
	names, remark := o.sweepProtocols("NCC+")
	if remark != "" {
		tab.Note("%s", remark)
	}
	var runs []SpecRun
	for _, p := range names {
		for _, rate := range rates {
			runs = append(runs, o.point(o.tpccSpec(p), rate, 4))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		run := res.Run
		row := SweepRow{Protocol: runs[i].Spec.Protocol, X: runs[i].Load.RatePerCoord,
			Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
			P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
		addSweepRow(tab, row)
		rows = append(rows, row)
	}
	return rep, rows
}

// Fig11Result carries the failure-recovery timeline.
type Fig11Result struct {
	ThptPerSec  []float64
	HKP50       []time.Duration // per-second p50 in the remote region
	RecoverySec float64
}

// Fig11 reproduces Figure 11: Tiga's throughput and remote-region median
// latency before and after killing one shard leader mid-run; the paper
// reports a ~3.8 s gap until throughput recovers. The crash arrives through
// the chaos layer's leader-kill plan (crash, no reboot: only Tiga's view
// change can restore service), so the schedule is shared with the chaos
// matrix instead of being this figure's private code.
func Fig11(o Options) (*report.Report, Fig11Result) {
	const plan = "leader-kill"
	rep := report.New("fig11")
	total := o.failureRunLength()
	killAt := mustPlan(plan).Window.Start
	res, rate := o.chaosFailover("Tiga", plan, 1000, 600, total)
	title := fmt.Sprintf("Fig 11 — Tiga leader failure at t=%v (paper: ~3.8 s recovery)", killAt)
	tab, out := o.recoveryTimeline("fig11", title, res, total, killAt)
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", "Tiga",
		"rate", fmt.Sprintf("%v", rate), "chaos", plan)
	rep.Add(tab)
	return rep, out
}

// recoveryTimeline folds a sample stream into the Fig 11 presentation:
// per-second throughput, per-second remote-region median latency, and the
// recovery time (first bucket after the kill back at >= 80% of the
// pre-failure average). The remote region — geo4's Hong Kong — is resolved
// from the run's topology.
func (o Options) recoveryTimeline(id, title string, res *RunResult, total, killAt time.Duration) (*report.Table, Fig11Result) {
	topo := o.classicTopology()
	remoteName := topo.RegionName(topo.RemoteCoordRegion)
	remoteCode := topo.RegionCode(topo.RemoteCoordRegion)
	secs := int(total/time.Second) + 1
	thpt := make([]float64, secs)
	hk := make([][]time.Duration, secs)
	for _, s := range res.Samples {
		i := int(s.At / time.Second)
		if i >= secs {
			continue
		}
		thpt[i]++
		if s.Region == remoteName {
			hk[i] = append(hk[i], s.Lat)
		}
	}
	out := Fig11Result{ThptPerSec: thpt, HKP50: make([]time.Duration, secs)}
	for i, ls := range hk {
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
		out.HKP50[i] = ls[len(ls)/2]
	}
	var pre float64
	kill := int(killAt / time.Second)
	for i := 1; i < kill; i++ {
		pre += thpt[i]
	}
	pre /= float64(kill - 1)
	rec := -1.0
	for i := kill; i < secs; i++ {
		if thpt[i] >= 0.8*pre {
			rec = float64(i) - killAt.Seconds()
			break
		}
	}
	out.RecoverySec = rec
	tab := &report.Table{
		ID: id, Gap: true, Title: title,
		Columns: []report.Column{
			report.Col("sec", "sec", report.Int, report.Seconds, 5),
			report.Col("thpt", "thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("remote_p50", remoteCode+" p50", report.Duration, report.Nanos, 12),
		},
	}
	for i := 0; i < secs; i++ {
		tab.AddRow(report.CountOf(int64(i)), report.Num(thpt[i]), report.Dur(out.HKP50[i]))
	}
	tab.Note("recovery time: %.1f s", out.RecoverySec)
	return tab, out
}

// chaosFailover runs one Fig 11-family failure scenario: the named protocol
// under the named chaos plan at the figure's operating point (overridable
// via Options.Ops), sampled for the recovery timeline. The plan — not the
// figure — owns the fault schedule; the old per-figure failover helpers are
// gone. The resolved driving rate is returned so figures stamp the rate the
// run was actually driven at.
func (o Options) chaosFailover(proto, plan string, rate float64, outstanding int,
	total time.Duration) (*RunResult, float64) {
	spec, _ := o.microSpec(proto, 0.5, false, clocks.ModelChrony)
	if proto == "2PL+Paxos" {
		// Dial the vote-timeout knob down from its inert 10 s default so
		// transactions caught in the outage presume-abort and retry instead
		// of hanging, and undelivered commit decisions are re-sent to the
		// rebooted leader.
		spec.setKnobDefault(proto, "vote-timeout", time.Second)
	}
	if op, ok := o.opFor(proto, specTopoName(spec)); ok {
		if op.SaturationRate > 0 {
			rate = op.SaturationRate
		}
		if op.Outstanding > 0 {
			outstanding = op.Outstanding
		}
	}
	return RunSpecs([]SpecRun{{
		Spec:  spec,
		Chaos: plan,
		Load: LoadSpec{
			RatePerCoord: rate, Outstanding: outstanding, Warmup: 0, Duration: total,
			Seed: o.Seed + 5, TrackSamples: true,
		},
	}}, 1)[0], rate
}

// Fig11Baseline runs the Fig 11 failure scenario against a Paxos-backed
// baseline — the first non-Tiga recovery curve — through the chaos layer's
// leader-crash plan (crash at 5 s, reboot at 9 s; the reboot rebuilds the
// log from the surviving replicas). The vote-timeout knob is dialed down
// from its inert 10 s default so transactions caught in the outage
// presume-abort and retry instead of hanging, and undelivered commit
// decisions are re-sent to the rebooted leader. Unlike Tiga (whose view
// change elects a co-located replacement in ~3.8 s), the baseline has no
// leader election: throughput on transactions touching the dead shard stays
// depressed until the reboot.
func Fig11Baseline(o Options) (*report.Report, Fig11Result) {
	const proto = "2PL+Paxos"
	const plan = "leader-crash"
	rep := report.New("fig11b")
	total := o.failureRunLength()
	win := mustPlan(plan).Window
	res, _ := o.chaosFailover(proto, plan, 300, 600, total)
	title := fmt.Sprintf("Fig 11b — %s leader failure at t=%v, reboot at t=%v (no election: outage lasts until the reboot)",
		proto, win.Start, win.End)
	tab, out := o.recoveryTimeline("fig11b", title, res, total, win.Start)
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", proto, "chaos", plan)
	rep.Add(tab)
	return rep, out
}

// Fig11NCC runs the Fig 11 failure scenario against NCC+ — the third
// recovery curve, on the same leader-crash plan as fig11b (crash at 5 s,
// reboot at 9 s rebuilding the store from the surviving Paxos followers'
// logs). NCC coordinators have no retry timer, so the curve differs from
// both Tiga (fig11) and 2PL+Paxos (fig11b): throughput hits a hard zero
// plateau once the in-flight window drains, pre-crash requests replayed
// from the survivor log re-reply at reboot with multi-second latencies, and
// transactions swallowed inside the outage window hang forever — each one
// permanently pinning an outstanding slot at its coordinator. That hang is
// the documented cost of the no-retry design, not a bug in the recovery
// path.
func Fig11NCC(o Options) (*report.Report, Fig11Result) {
	const proto = "NCC+"
	const plan = "leader-crash"
	rep := report.New("fig11c")
	total := o.failureRunLength()
	win := mustPlan(plan).Window
	res, _ := o.chaosFailover(proto, plan, 300, 600, total)
	title := fmt.Sprintf("Fig 11c — %s serving-replica failure at t=%v, reboot at t=%v (no retry timer: outage-window transactions hang)",
		proto, win.Start, win.End)
	tab, out := o.recoveryTimeline("fig11c", title, res, total, win.Start)
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", proto, "chaos", plan)
	rep.Add(tab)
	if out.RecoverySec < 0 {
		tab.Note("(no recovery to 80%% of the pre-crash rate: hung outage-window transactions pin their coordinators' outstanding slots)")
	}
	return rep, out
}

// Table2 reproduces Table 2: maximum throughput and p50 latency after server
// rotation (leaders separated across regions), with deltas vs co-location.
// Detock is excluded as in the paper (its home directories are already
// spread across regions); NCC+ as in Table 1.
func Table2(o Options) (*report.Report, map[string][4]float64) {
	rep := report.New("table2")
	tab := rep.Add(&report.Table{
		ID: "table2", Gap: true,
		Title: "Table 2 — server rotation (leaders separated)",
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("dthpt", "Δthpt%", report.Float, report.Percent, 8).WithPrec(1).WithSign(),
			report.Col("p50", "p50(ms)", report.Float, report.Millis, 10),
			report.Col("dp50", "Δp50%", report.Float, report.Percent, 8).WithPrec(1).WithSign(),
		},
	})
	o.stamp(tab, o.classicTopology().Name, "micro", "skew", "0.5", "rotated", "true")
	out := make(map[string][4]float64)
	names, remark := o.sweepProtocols("NCC+", "Detock")
	if remark != "" {
		tab.Note("%s", remark)
	}
	runs := make([]SpecRun, 0, 2*len(names))
	for _, p := range names {
		spec0, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec0, 3000))
		spec1, _ := o.microSpec(p, 0.5, true, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec1, 3000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, p := range names {
		base, rot := results[2*i].Run, results[2*i+1].Run
		dThpt := 100 * (rot.Throughput() - base.Throughput()) / base.Throughput()
		p50b := float64(base.Lat.Percentile(50)) / float64(time.Millisecond)
		p50r := float64(rot.Lat.Percentile(50)) / float64(time.Millisecond)
		dLat := 100 * (p50r - p50b) / p50b
		out[p] = [4]float64{rot.Throughput(), dThpt, p50r, dLat}
		tab.AddRow(report.Str(p), report.Num(rot.Throughput()), report.Num(dThpt),
			report.Num(p50r), report.Num(dLat))
	}
	return rep, out
}

// Fig12 reproduces Figure 12: Tiga-Colocate vs Tiga-Separate p50 latency with
// varying skew, in the local and remote regions.
func Fig12(o Options) (*report.Report, []SweepRow) {
	rep := report.New("fig12")
	topo := o.classicTopology()
	localName, remoteName := topo.RegionName(0), topo.RegionName(topo.RemoteCoordRegion)
	tab := rep.Add(&report.Table{
		ID: "fig12", Gap: true,
		Title: "Fig 12 — Tiga-Colocate vs Tiga-Separate, p50 vs skew",
		Columns: []report.Column{
			report.Col("variant", "Variant", report.String, report.None, 16).AlignLeft(),
			report.Col("skew", "skew", report.Float, report.None, 6).WithPrec(2),
			report.Col("local_p50", topo.RegionCode(0)+" p50", report.Duration, report.Nanos, 16),
			report.Col("remote_p50", topo.RegionCode(topo.RemoteCoordRegion)+" p50", report.Duration, report.Nanos, 16),
		},
	})
	o.stamp(tab, topo.Name, "micro", "protocol", "Tiga", "rate", "80")
	skews := o.skews()
	var runs []SpecRun
	for _, rotated := range []bool{false, true} {
		for _, skew := range skews {
			spec, _ := o.microSpec("Tiga", skew, rotated, clocks.ModelChrony)
			pt := o.point(spec, 80, 6)
			pt.Load.Outstanding = 100
			runs = append(runs, pt)
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		name := "Tiga-Colocate"
		if runs[i].Spec.Rotated {
			name = "Tiga-Separate"
		}
		run := res.Run
		skew := microSkew(runs[i].Spec)
		sc, hk := regionLatency(run, localName), regionLatency(run, remoteName)
		tab.AddRow(report.Str(name), report.Num(skew),
			report.Dur(sc.Percentile(50)), report.Dur(hk.Percentile(50)))
		rows = append(rows, SweepRow{Protocol: name, X: skew, P50: sc.Percentile(50), P90: hk.Percentile(50)})
	}
	return rep, rows
}

// Fig13Row is one headroom-delta point.
type Fig13Row struct {
	DeltaMs  float64 // headroom offset; -1e9 marks the 0-Hdrm variant
	SCP50    time.Duration
	HKP50    time.Duration
	Rollback float64 // rollback rate %
}

// Fig13 reproduces Figure 13: Tiga's latency and rollback rate with varying
// headroom deltas (plus the 0-Hdrm baseline), skew 0.99, leaders separated.
// The rollback counts come from the protocol.RollbackReporter capability.
func Fig13(o Options) (*report.Report, []Fig13Row) {
	rep := report.New("fig13")
	topo := o.classicTopology()
	tab := rep.Add(&report.Table{
		ID: "fig13", Gap: true,
		Title: "Fig 13 — headroom sensitivity (skew 0.99, leaders separated)",
		Columns: []report.Column{
			report.Col("delta", "delta(ms)", report.String, report.None, 10).AlignLeft(),
			report.Col("local_p50", topo.RegionCode(0)+" p50", report.Duration, report.Nanos, 14),
			report.Col("remote_p50", topo.RegionCode(topo.RemoteCoordRegion)+" p50", report.Duration, report.Nanos, 14),
			report.Col("rollback", "rollback%", report.Float, report.Percent, 12).WithPrec(1),
		},
	})
	o.stamp(tab, topo.Name, "micro", "protocol", "Tiga", "skew", "0.99", "rotated", "true")
	deltas := []float64{-50, -25, 0, 25, 50}
	if o.Quick {
		deltas = []float64{-25, 0, 25}
	}
	type variant struct {
		label   string
		zero    bool
		deltaMs float64
	}
	variants := []variant{{"0-Hdrm", true, 0}}
	for _, dm := range deltas {
		variants = append(variants, variant{fmt.Sprintf("%+.0f", dm), false, dm})
	}
	runs := make([]SpecRun, 0, len(variants))
	for _, v := range variants {
		spec, _ := o.microSpec("Tiga", 0.99, true, clocks.ModelChrony)
		spec.SetKnob("Tiga", "zero-headroom", v.zero)
		spec.SetKnob("Tiga", "headroom-delta", time.Duration(v.deltaMs*float64(time.Millisecond)))
		pt := o.point(spec, 20, 7)
		pt.Load.Outstanding = 100
		pt.KeepDeployment = true // rollback counts are read post-run
		runs = append(runs, pt)
	}
	results := RunSpecs(runs, o.Workers)
	localName, remoteName := topo.RegionName(0), topo.RegionName(topo.RemoteCoordRegion)
	var rows []Fig13Row
	for i, v := range variants {
		res := results[i]
		runm := res.Run
		sc, hk := regionLatency(runm, localName), regionLatency(runm, remoteName)
		rb := 0.0
		if rr, ok := res.Deployment.Sys.(protocol.RollbackReporter); ok && runm.Counters.Committed > 0 {
			rb = 100 * float64(rr.TotalRollbacks()) / float64(runm.Counters.Committed)
		}
		row := Fig13Row{DeltaMs: v.deltaMs, SCP50: sc.Percentile(50), HKP50: hk.Percentile(50), Rollback: rb}
		if v.zero {
			row.DeltaMs = -1e9
		}
		rows = append(rows, row)
		tab.AddRow(report.Str(v.label), report.Dur(row.SCP50), report.Dur(row.HKP50), report.Num(rb))
	}
	return rep, rows
}

// Table3 reproduces Table 3: Tiga throughput and measured clock error under
// ntpd, chrony, Huygens, and an unstable "bad clock" (skew 0.99).
func Table3(o Options) (*report.Report, map[string][2]float64) {
	rep := report.New("table3")
	tab := rep.Add(&report.Table{
		ID: "table3", Gap: true,
		Title: "Table 3 — Tiga with different clocks (skew 0.99)",
		Columns: []report.Column{
			report.Col("clock", "Clock", report.String, report.None, 10).AlignLeft(),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 14),
			report.Col("err", "clock err (ms)", report.Float, report.Millis, 16).WithPrec(3),
		},
	})
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", "Tiga", "skew", "0.99")
	out := make(map[string][2]float64)
	models := []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelHuygens, clocks.ModelBad}
	runs := make([]SpecRun, 0, len(models))
	for _, m := range models {
		spec, _ := o.microSpec("Tiga", 0.99, false, m)
		runs = append(runs, o.saturate(spec, 3000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, m := range models {
		run := results[i].Run
		// Measure the error the same way the paper does (a real-time clock
		// monitor): sample a population of this model's clocks.
		cf := clocks.NewFactory(m, time.Minute, o.Seed+9)
		cs := make([]clocks.Clock, 16)
		for j := range cs {
			cs[j] = cf.New()
		}
		errMs := float64(clocks.MeasureError(cs, time.Minute, 64)) / float64(time.Millisecond)
		out[m.String()] = [2]float64{run.Throughput(), errMs}
		tab.AddRow(report.Str(m.String()), report.Num(run.Throughput()), report.Num(errMs))
	}
	return rep, out
}

// Fig14 reproduces Figure 14: Tiga p50 latency vs rate for each clock model,
// in the local and remote regions.
func Fig14(o Options) (*report.Report, []SweepRow) {
	rep := report.New("fig14")
	topo := o.classicTopology()
	localName, remoteName := topo.RegionName(0), topo.RegionName(topo.RemoteCoordRegion)
	tab := rep.Add(&report.Table{
		ID: "fig14", Gap: true,
		Title: "Fig 14 — Tiga latency with different clocks",
		Columns: []report.Column{
			report.Col("clock", "Clock", report.String, report.None, 10).AlignLeft(),
			report.Col("rate", "rate", report.Float, report.Rate, 10),
			report.Col("local_p50", topo.RegionCode(0)+" p50", report.Duration, report.Nanos, 14),
			report.Col("remote_p50", topo.RegionCode(topo.RemoteCoordRegion)+" p50", report.Duration, report.Nanos, 14),
		},
	})
	o.stamp(tab, topo.Name, "micro", "protocol", "Tiga", "skew", "0.99")
	models := []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelBad, clocks.ModelHuygens}
	rates := o.rates()
	var runs []SpecRun
	for _, m := range models {
		for _, rate := range rates {
			spec, _ := o.microSpec("Tiga", 0.99, false, m)
			runs = append(runs, o.point(spec, rate, 8))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		m := runs[i].Spec.Clock
		rate := runs[i].Load.RatePerCoord
		run := res.Run
		sc, hk := regionLatency(run, localName), regionLatency(run, remoteName)
		tab.AddRow(report.Str(m.String()), report.Num(rate),
			report.Dur(sc.Percentile(50)), report.Dur(hk.Percentile(50)))
		rows = append(rows, SweepRow{Protocol: m.String(), X: rate, P50: sc.Percentile(50), P90: hk.Percentile(50)})
	}
	return rep, rows
}

// AblationEpsilon exercises the §6 coordination-free mode: with a trusted
// error bound ε, leaders skip timestamp agreement and hold transactions for
// ts+ε instead.
func AblationEpsilon(o Options) *report.Report {
	rep := report.New("ablations")
	tab := rep.Add(&report.Table{
		ID: "ablation-epsilon", Gap: true,
		Title: "Ablation — coordination-free ε-bound mode (§6) vs timestamp agreement",
		Columns: []report.Column{
			report.Col("variant", "Variant", report.String, report.None, 22).AlignLeft(),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
			report.Col("p50", "p50", report.Duration, report.Nanos, 12),
		},
	})
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", "Tiga", "clock", clocks.ModelHuygens.String())
	epsilons := []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond}
	runs := make([]SpecRun, 0, len(epsilons))
	for _, eps := range epsilons {
		spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelHuygens)
		spec.SetKnob("Tiga", "epsilon-bound", eps)
		runs = append(runs, o.point(spec, 800, 10))
	}
	results := RunSpecs(runs, o.Workers)
	for i, eps := range epsilons {
		res := results[i]
		name := "agreement (ε=0)"
		if eps > 0 {
			name = fmt.Sprintf("coordination-free ε=%v", eps)
		}
		tab.AddRow(report.Str(name), report.Num(res.Run.Throughput()),
			report.Num(res.Run.Counters.CommitRate()), report.Dur(res.Run.Lat.Percentile(50)))
	}
	return rep
}

// AblationSlowReply compares per-entry slow replies against the Appendix E
// batched periodic-inquiry optimization.
func AblationSlowReply(o Options) *report.Report {
	rep := report.New("ablations")
	tab := rep.Add(&report.Table{
		ID: "ablation-slowreply", Gap: true,
		Title: "Ablation — per-entry slow replies vs Appendix E batched inquiries",
		Columns: []report.Column{
			report.Col("variant", "Variant", report.String, report.None, 12).AlignLeft(),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("p50", "p50", report.Duration, report.Nanos, 12),
			report.Col("msgs", "msgs sent", report.Int, report.Count, 14),
		},
	})
	o.stamp(tab, o.classicTopology().Name, "micro", "protocol", "Tiga")
	variants := []bool{false, true}
	runs := make([]SpecRun, 0, len(variants))
	for _, batch := range variants {
		spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
		spec.SetKnob("Tiga", "batch-slow-replies", batch)
		pt := o.point(spec, 800, 11)
		pt.KeepDeployment = true // message counts are read post-run
		runs = append(runs, pt)
	}
	results := RunSpecs(runs, o.Workers)
	for i, batch := range variants {
		res := results[i]
		name := "per-entry"
		if batch {
			name = "batched"
		}
		tab.AddRow(report.Str(name), report.Num(res.Run.Throughput()),
			report.Dur(res.Run.Lat.Percentile(50)), report.CountOf(res.Deployment.Net.Sent))
	}
	return rep
}

// Ablations bundles the extra ablations into one experiment report.
func Ablations(o Options) *report.Report {
	rep := AblationEpsilon(o)
	rep.Tables = append(rep.Tables, AblationSlowReply(o).Tables...)
	return rep
}

// Fig10ForProtocol runs one protocol's TPC-C point (bench harness helper).
func Fig10ForProtocol(o Options, protocol string, rate float64) []SweepRow {
	res := RunSpecs([]SpecRun{o.point(o.tpccSpec(protocol), rate, 4)}, 1)[0]
	run := res.Run
	return []SweepRow{{Protocol: protocol, X: rate, Thpt: run.Throughput(),
		Commit: run.Counters.CommitRate(), P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}}
}
