package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/tiga"
	"tiga/internal/tpcc"
	"tiga/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§5). The simulated testbed stands in for Google Cloud, so absolute
// throughput is scaled: per-operation CPU costs are multiplied by CPUScale,
// which divides all throughput numbers by roughly the same factor while
// preserving the protocols' relative ordering, the latency structure, and
// the crossover points. EXPERIMENTS.md records the paper-vs-measured values.
const CPUScale = 10

// Options shapes an experiment run.
type Options struct {
	Seed int64
	// Quick shrinks sweeps and durations so the full suite runs in minutes
	// (used by the benchmark harness); the CLI default is a fuller run.
	Quick bool
	// Keys per shard for MicroBench (paper: 1M; default here 100k to bound
	// simulator memory across 9 replicated copies).
	Keys int
}

func (o Options) keys() int {
	if o.Keys > 0 {
		return o.Keys
	}
	if o.Quick {
		return 20000
	}
	return 100000
}

func (o Options) durations() (warmup, dur time.Duration) {
	if o.Quick {
		return 400 * time.Millisecond, 1200 * time.Millisecond
	}
	return time.Second, 3 * time.Second
}

func (o Options) microSpec(protocol string, skew float64, rotated bool, clock clocks.Model) (ClusterSpec, *workload.MicroBench) {
	gen := workload.NewMicroBench(3, o.keys(), skew)
	return ClusterSpec{
		Protocol: protocol, Shards: 3, F: 1, Rotated: rotated, Clock: clock,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: gen,
		CostScale: CPUScale,
	}, gen
}

// buildScaled builds a deployment with the experiment CPU scale applied.
func buildScaled(spec ClusterSpec) *Deployment {
	spec.CostScale = CPUScale
	return Build(spec)
}

// maxThroughput drives the system at a saturating rate and returns the run.
// Coordinator retry timers are stretched so saturation does not trigger
// retransmission storms that would distort the measurement.
func (o Options) maxThroughput(protocol string, gen workload.Generator, spec ClusterSpec, perCoordRate float64) *metrics.Run {
	base := spec.Tiga
	spec.Tiga = func(cfg *tiga.Config) {
		if base != nil {
			base(cfg)
		}
		cfg.RetryTimeout = 10 * time.Second
	}
	d := buildScaled(spec)
	warm, dur := o.durations()
	res := RunLoad(d, gen, LoadSpec{
		RatePerCoord: perCoordRate, Outstanding: 300,
		Warmup: warm, Duration: dur, Seed: o.Seed + 1,
	})
	return res.Run
}

// Table1 reproduces Table 1: maximum throughput under MicroBench (skew 0.5)
// and TPC-C for every protocol.
func Table1(w io.Writer, o Options) map[string]map[string]float64 {
	out := map[string]map[string]float64{"MicroBench": {}, "TPC-C": {}}
	fmt.Fprintf(w, "Table 1. Maximum throughput (txns/s, simulated testbed; paper numbers are ~%dx larger)\n", CPUScale)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "Protocol", "MicroBench", "TPC-C")
	for _, p := range Protocols {
		if p == "NCC+" {
			continue // Table 1 reports NCC; NCC+ appears in Figs 7–8
		}
		// MicroBench at saturation.
		spec, gen := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		run := o.maxThroughput(p, gen, spec, 3000)
		micro := run.Throughput()
		out["MicroBench"][p] = micro

		// TPC-C at saturation (6 shards per the paper's setup).
		tg := tpcc.New(tpccConfig(o))
		tspec := ClusterSpec{
			Protocol: p, Shards: 6, F: 1, Clock: clocks.ModelChrony,
			CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: tg,
			CostScale: CPUScale,
		}
		trun := o.maxThroughput(p, tg, tspec, 1000)
		tpc := trun.Throughput()
		out["TPC-C"][p] = tpc
		fmt.Fprintf(w, "%-12s %12.0f %12.0f\n", p, micro, tpc)
	}
	return out
}

func tpccConfig(o Options) tpcc.Config {
	cfg := tpcc.DefaultConfig(6)
	if o.Quick {
		cfg.Customers = 200
		cfg.Items = 2000
	} else {
		cfg.Customers = 500
		cfg.Items = 10000
	}
	return cfg
}

// SweepRow is one point of a rate/skew sweep.
type SweepRow struct {
	Protocol string
	X        float64 // rate (txns/s per coordinator) or skew factor
	Thpt     float64
	Commit   float64
	P50      time.Duration
	P90      time.Duration
}

func sweepHeader(w io.Writer, xName string) {
	fmt.Fprintf(w, "%-12s %10s %12s %9s %12s %12s\n", "Protocol", xName, "Thpt(txn/s)", "Commit%", "p50", "p90")
}

func (r SweepRow) print(w io.Writer) {
	fmt.Fprintf(w, "%-12s %10.2f %12.0f %9.1f %12v %12v\n", r.Protocol, r.X, r.Thpt, r.Commit, r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond))
}

func (o Options) rates() []float64 {
	if o.Quick {
		return []float64{250, 1000, 2500}
	}
	return []float64{100, 250, 500, 1000, 1500, 2500}
}

// Fig7And8 reproduces Figures 7 and 8: MicroBench (skew 0.5) with varying
// per-coordinator rates; latency reported separately for the local region
// (South Carolina, Fig 7) and the remote region (Hong Kong, Fig 8).
func Fig7And8(w io.Writer, o Options) (local, remote []SweepRow) {
	warm, dur := o.durations()
	for _, region := range []string{"South Carolina", "Hong Kong"} {
		fig := "Fig 7 (local region: South Carolina)"
		if region == "Hong Kong" {
			fig = "Fig 8 (remote region: Hong Kong)"
		}
		fmt.Fprintf(w, "\n%s — MicroBench skew 0.5, varying per-coordinator rate\n", fig)
		sweepHeader(w, "rate/coord")
	}
	for _, p := range Protocols {
		for _, rate := range o.rates() {
			spec, gen := o.microSpec(p, 0.5, false, clocks.ModelChrony)
			d := buildScaled(spec)
			res := RunLoad(d, gen, LoadSpec{RatePerCoord: rate, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 2})
			run := res.Run
			for _, region := range []string{"South Carolina", "Hong Kong"} {
				lat := run.ByRegion[region]
				if lat == nil {
					lat = &metrics.Latency{}
				}
				row := SweepRow{Protocol: p, X: rate, Thpt: run.Throughput(),
					Commit: run.Counters.CommitRate(), P50: lat.Percentile(50), P90: lat.Percentile(90)}
				if region == "South Carolina" {
					local = append(local, row)
				} else {
					remote = append(remote, row)
				}
			}
		}
	}
	fmt.Fprintln(w, "\nFig 7 rows (South Carolina):")
	sweepHeader(w, "rate/coord")
	for _, r := range local {
		r.print(w)
	}
	fmt.Fprintln(w, "\nFig 8 rows (Hong Kong):")
	sweepHeader(w, "rate/coord")
	for _, r := range remote {
		r.print(w)
	}
	return local, remote
}

func (o Options) skews() []float64 {
	if o.Quick {
		return []float64{0.5, 0.9, 0.99}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
}

// Fig9 reproduces Figure 9: MicroBench with fixed rate and varying skew.
func Fig9(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 9 — MicroBench, fixed rate, varying skew factor (all regions)")
	sweepHeader(w, "skew")
	warm, dur := o.durations()
	rate := 800.0
	if o.Quick {
		rate = 600
	}
	var rows []SweepRow
	for _, p := range Protocols {
		for _, skew := range o.skews() {
			spec, gen := o.microSpec(p, skew, false, clocks.ModelChrony)
			d := buildScaled(spec)
			res := RunLoad(d, gen, LoadSpec{RatePerCoord: rate, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 3})
			run := res.Run
			row := SweepRow{Protocol: p, X: skew, Thpt: run.Throughput(),
				Commit: run.Counters.CommitRate(), P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
			row.print(w)
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig10 reproduces Figure 10: TPC-C with varying rates (all regions).
func Fig10(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 10 — TPC-C, varying per-coordinator rate (all regions)")
	sweepHeader(w, "rate/coord")
	warm, dur := o.durations()
	rates := []float64{50, 125, 250, 500}
	if o.Quick {
		rates = []float64{100, 400}
	}
	var rows []SweepRow
	for _, p := range Protocols {
		if p == "NCC+" {
			continue
		}
		for _, rate := range rates {
			tg := tpcc.New(tpccConfig(o))
			spec := ClusterSpec{
				Protocol: p, Shards: 6, F: 1, Clock: clocks.ModelChrony,
				CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: tg,
				CostScale: CPUScale,
			}
			d := buildScaled(spec)
			res := RunLoad(d, tg, LoadSpec{RatePerCoord: rate, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 4})
			run := res.Run
			row := SweepRow{Protocol: p, X: rate, Thpt: run.Throughput(),
				Commit: run.Counters.CommitRate(), P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
			row.print(w)
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig11Result carries the failure-recovery timeline.
type Fig11Result struct {
	ThptPerSec  []float64
	HKP50       []time.Duration // per-second p50 in Hong Kong
	RecoverySec float64
}

// Fig11 reproduces Figure 11: Tiga's throughput and Hong Kong median latency
// before and after killing one shard leader mid-run; the paper reports a
// ~3.8 s gap until throughput recovers.
func Fig11(w io.Writer, o Options) Fig11Result {
	spec, gen := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
	d := buildScaled(spec)
	total := 16 * time.Second
	if o.Quick {
		total = 12 * time.Second
	}
	killAt := 5 * time.Second
	d.Sim.At(killAt, func() { d.TigaCluster.KillServer(1, 0) })
	res := RunLoad(d, gen, LoadSpec{
		RatePerCoord: 1000, Outstanding: 600, Warmup: 0, Duration: total,
		Seed: o.Seed + 5, TrackSamples: true,
	})
	// Build per-second series.
	secs := int(total/time.Second) + 1
	thpt := make([]float64, secs)
	hk := make([][]time.Duration, secs)
	for _, s := range res.Samples {
		i := int(s.At / time.Second)
		if i >= secs {
			continue
		}
		thpt[i]++
		if s.Region == "Hong Kong" {
			hk[i] = append(hk[i], s.Lat)
		}
	}
	out := Fig11Result{ThptPerSec: thpt, HKP50: make([]time.Duration, secs)}
	for i, ls := range hk {
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
		out.HKP50[i] = ls[len(ls)/2]
	}
	// Recovery time: first sub-second bucket after the kill where throughput
	// returns to >= 80% of the pre-failure average.
	var pre float64
	kill := int(killAt / time.Second)
	for i := 1; i < kill; i++ {
		pre += thpt[i]
	}
	pre /= float64(kill - 1)
	rec := -1.0
	for i := kill; i < secs; i++ {
		if thpt[i] >= 0.8*pre {
			rec = float64(i) - killAt.Seconds()
			break
		}
	}
	out.RecoverySec = rec
	fmt.Fprintf(w, "\nFig 11 — Tiga leader failure at t=%v (paper: ~3.8 s recovery)\n", killAt)
	fmt.Fprintf(w, "%5s %12s %12s\n", "sec", "thpt(txn/s)", "HK p50")
	for i := 0; i < secs; i++ {
		fmt.Fprintf(w, "%5d %12.0f %12v\n", i, thpt[i], out.HKP50[i].Round(time.Millisecond))
	}
	fmt.Fprintf(w, "recovery time: %.1f s\n", out.RecoverySec)
	return out
}

// Table2 reproduces Table 2: maximum throughput and p50 latency after server
// rotation (leaders separated across regions), with deltas vs co-location.
// Detock is excluded as in the paper (its home directories are already
// spread across regions).
func Table2(w io.Writer, o Options) map[string][4]float64 {
	fmt.Fprintln(w, "\nTable 2 — server rotation (leaders separated)")
	fmt.Fprintf(w, "%-12s %12s %8s %10s %8s\n", "Protocol", "Thpt(txn/s)", "Δthpt%", "p50(ms)", "Δp50%")
	out := make(map[string][4]float64)
	for _, p := range []string{"2PL+Paxos", "OCC+Paxos", "Tapir", "Janus", "Calvin+", "NCC", "Tiga"} {
		spec0, gen0 := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		base := o.maxThroughput(p, gen0, spec0, 3000)
		spec1, gen1 := o.microSpec(p, 0.5, true, clocks.ModelChrony)
		rot := o.maxThroughput(p, gen1, spec1, 3000)
		dThpt := 100 * (rot.Throughput() - base.Throughput()) / base.Throughput()
		p50b := float64(base.Lat.Percentile(50)) / float64(time.Millisecond)
		p50r := float64(rot.Lat.Percentile(50)) / float64(time.Millisecond)
		dLat := 100 * (p50r - p50b) / p50b
		out[p] = [4]float64{rot.Throughput(), dThpt, p50r, dLat}
		fmt.Fprintf(w, "%-12s %12.0f %+8.1f %10.0f %+8.1f\n", p, rot.Throughput(), dThpt, p50r, dLat)
	}
	return out
}

// Fig12 reproduces Figure 12: Tiga-Colocate vs Tiga-Separate p50 latency with
// varying skew, in South Carolina and Hong Kong.
func Fig12(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 12 — Tiga-Colocate vs Tiga-Separate, p50 vs skew")
	fmt.Fprintf(w, "%-16s %6s %16s %16s\n", "Variant", "skew", "SC p50", "HK p50")
	warm, dur := o.durations()
	var rows []SweepRow
	for _, rotated := range []bool{false, true} {
		name := "Tiga-Colocate"
		if rotated {
			name = "Tiga-Separate"
		}
		for _, skew := range o.skews() {
			spec, gen := o.microSpec("Tiga", skew, rotated, clocks.ModelChrony)
			d := buildScaled(spec)
			res := RunLoad(d, gen, LoadSpec{RatePerCoord: 80, Outstanding: 100, Warmup: warm, Duration: dur, Seed: o.Seed + 6})
			run := res.Run
			sc, hk := run.ByRegion["South Carolina"], run.ByRegion["Hong Kong"]
			if sc == nil {
				sc = &metrics.Latency{}
			}
			if hk == nil {
				hk = &metrics.Latency{}
			}
			fmt.Fprintf(w, "%-16s %6.2f %16v %16v\n", name, skew,
				sc.Percentile(50).Round(time.Millisecond), hk.Percentile(50).Round(time.Millisecond))
			rows = append(rows, SweepRow{Protocol: name, X: skew, P50: sc.Percentile(50), P90: hk.Percentile(50)})
		}
	}
	return rows
}

// Fig13Row is one headroom-delta point.
type Fig13Row struct {
	DeltaMs  float64 // headroom offset; -1e9 marks the 0-Hdrm variant
	SCP50    time.Duration
	HKP50    time.Duration
	Rollback float64 // rollback rate %
}

// Fig13 reproduces Figure 13: Tiga's latency and rollback rate with varying
// headroom deltas (plus the 0-Hdrm baseline), skew 0.99, leaders separated.
func Fig13(w io.Writer, o Options) []Fig13Row {
	fmt.Fprintln(w, "\nFig 13 — headroom sensitivity (skew 0.99, leaders separated)")
	fmt.Fprintf(w, "%-10s %14s %14s %12s\n", "delta(ms)", "SC p50", "HK p50", "rollback%")
	warm, dur := o.durations()
	deltas := []float64{-50, -25, 0, 25, 50}
	if o.Quick {
		deltas = []float64{-25, 0, 25}
	}
	var rows []Fig13Row
	run := func(label string, zero bool, deltaMs float64) {
		spec, gen := o.microSpec("Tiga", 0.99, true, clocks.ModelChrony)
		base := spec.Tiga
		spec.Tiga = func(cfg *tiga.Config) {
			if base != nil {
				base(cfg)
			}
			cfg.ZeroHeadroom = zero
			cfg.HeadroomDelta = time.Duration(deltaMs * float64(time.Millisecond))
		}
		d := buildScaled(spec)
		res := RunLoad(d, gen, LoadSpec{RatePerCoord: 20, Outstanding: 100, Warmup: warm, Duration: dur, Seed: o.Seed + 7})
		runm := res.Run
		sc, hk := runm.ByRegion["South Carolina"], runm.ByRegion["Hong Kong"]
		if sc == nil {
			sc = &metrics.Latency{}
		}
		if hk == nil {
			hk = &metrics.Latency{}
		}
		rb := 0.0
		if runm.Counters.Committed > 0 {
			rb = 100 * float64(d.TigaCluster.TotalRollbacks()) / float64(runm.Counters.Committed)
		}
		row := Fig13Row{DeltaMs: deltaMs, SCP50: sc.Percentile(50), HKP50: hk.Percentile(50), Rollback: rb}
		if zero {
			row.DeltaMs = -1e9
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %14v %14v %12.1f\n", label,
			row.SCP50.Round(time.Millisecond), row.HKP50.Round(time.Millisecond), rb)
	}
	run("0-Hdrm", true, 0)
	for _, dm := range deltas {
		run(fmt.Sprintf("%+.0f", dm), false, dm)
	}
	return rows
}

// Table3 reproduces Table 3: Tiga throughput and measured clock error under
// ntpd, chrony, Huygens, and an unstable "bad clock" (skew 0.99).
func Table3(w io.Writer, o Options) map[string][2]float64 {
	fmt.Fprintln(w, "\nTable 3 — Tiga with different clocks (skew 0.99)")
	fmt.Fprintf(w, "%-10s %14s %16s\n", "Clock", "Thpt(txn/s)", "clock err (ms)")
	out := make(map[string][2]float64)
	for _, m := range []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelHuygens, clocks.ModelBad} {
		spec, gen := o.microSpec("Tiga", 0.99, false, m)
		run := o.maxThroughput("Tiga", gen, spec, 3000)
		// Measure the error the same way the paper does (a real-time clock
		// monitor): sample a population of this model's clocks.
		cf := clocks.NewFactory(m, time.Minute, o.Seed+9)
		cs := make([]clocks.Clock, 16)
		for i := range cs {
			cs[i] = cf.New()
		}
		errMs := float64(clocks.MeasureError(cs, time.Minute, 64)) / float64(time.Millisecond)
		out[m.String()] = [2]float64{run.Throughput(), errMs}
		fmt.Fprintf(w, "%-10s %14.0f %16.3f\n", m.String(), run.Throughput(), errMs)
	}
	return out
}

// Fig14 reproduces Figure 14: Tiga p50 latency vs rate for each clock model,
// in South Carolina and Hong Kong.
func Fig14(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 14 — Tiga latency with different clocks")
	fmt.Fprintf(w, "%-10s %10s %14s %14s\n", "Clock", "rate", "SC p50", "HK p50")
	warm, dur := o.durations()
	var rows []SweepRow
	for _, m := range []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelBad, clocks.ModelHuygens} {
		for _, rate := range o.rates() {
			spec, gen := o.microSpec("Tiga", 0.99, false, m)
			d := buildScaled(spec)
			res := RunLoad(d, gen, LoadSpec{RatePerCoord: rate, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 8})
			run := res.Run
			sc, hk := run.ByRegion["South Carolina"], run.ByRegion["Hong Kong"]
			if sc == nil {
				sc = &metrics.Latency{}
			}
			if hk == nil {
				hk = &metrics.Latency{}
			}
			fmt.Fprintf(w, "%-10s %10.0f %14v %14v\n", m.String(), rate,
				sc.Percentile(50).Round(time.Millisecond), hk.Percentile(50).Round(time.Millisecond))
			rows = append(rows, SweepRow{Protocol: m.String(), X: rate, P50: sc.Percentile(50), P90: hk.Percentile(50)})
		}
	}
	return rows
}

// AblationEpsilon exercises the §6 coordination-free mode: with a trusted
// error bound ε, leaders skip timestamp agreement and hold transactions for
// ts+ε instead.
func AblationEpsilon(w io.Writer, o Options) {
	fmt.Fprintln(w, "\nAblation — coordination-free ε-bound mode (§6) vs timestamp agreement")
	fmt.Fprintf(w, "%-22s %12s %9s %12s\n", "Variant", "Thpt(txn/s)", "Commit%", "p50")
	warm, dur := o.durations()
	for _, eps := range []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond} {
		spec, gen := o.microSpec("Tiga", 0.5, false, clocks.ModelHuygens)
		base := spec.Tiga
		eps := eps
		spec.Tiga = func(cfg *tiga.Config) {
			if base != nil {
				base(cfg)
			}
			cfg.EpsilonBound = eps
		}
		d := buildScaled(spec)
		res := RunLoad(d, gen, LoadSpec{RatePerCoord: 800, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 10})
		name := "agreement (ε=0)"
		if eps > 0 {
			name = fmt.Sprintf("coordination-free ε=%v", eps)
		}
		fmt.Fprintf(w, "%-22s %12.0f %9.1f %12v\n", name, res.Run.Throughput(),
			res.Run.Counters.CommitRate(), res.Run.Lat.Percentile(50).Round(time.Millisecond))
	}
}

// AblationSlowReply compares per-entry slow replies against the Appendix E
// batched periodic-inquiry optimization.
func AblationSlowReply(w io.Writer, o Options) {
	fmt.Fprintln(w, "\nAblation — per-entry slow replies vs Appendix E batched inquiries")
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "Variant", "Thpt(txn/s)", "p50", "msgs sent")
	warm, dur := o.durations()
	for _, batch := range []bool{false, true} {
		spec, gen := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
		base := spec.Tiga
		batch := batch
		spec.Tiga = func(cfg *tiga.Config) {
			if base != nil {
				base(cfg)
			}
			cfg.BatchSlowReplies = batch
		}
		d := buildScaled(spec)
		res := RunLoad(d, gen, LoadSpec{RatePerCoord: 800, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 11})
		name := "per-entry"
		if batch {
			name = "batched"
		}
		fmt.Fprintf(w, "%-12s %12.0f %12v %14d\n", name, res.Run.Throughput(),
			res.Run.Lat.Percentile(50).Round(time.Millisecond), d.Net.Sent)
	}
}

// Fig10ForProtocol runs one protocol's TPC-C point (bench harness helper).
func Fig10ForProtocol(w io.Writer, o Options, protocol string, rate float64) []SweepRow {
	warm, dur := o.durations()
	tg := tpcc.New(tpccConfig(o))
	spec := ClusterSpec{
		Protocol: protocol, Shards: 6, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: tg,
		CostScale: CPUScale,
	}
	d := buildScaled(spec)
	res := RunLoad(d, tg, LoadSpec{RatePerCoord: rate, Outstanding: 400, Warmup: warm, Duration: dur, Seed: o.Seed + 4})
	run := res.Run
	row := SweepRow{Protocol: protocol, X: rate, Thpt: run.Throughput(),
		Commit: run.Counters.CommitRate(), P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
	row.print(w)
	return []SweepRow{row}
}
