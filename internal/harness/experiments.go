package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/protocol"
	"tiga/internal/tpcc"
	"tiga/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§5). The simulated testbed stands in for Google Cloud, so absolute
// throughput is scaled: per-operation CPU costs are multiplied by CPUScale,
// which divides all throughput numbers by roughly the same factor while
// preserving the protocols' relative ordering, the latency structure, and
// the crossover points. EXPERIMENTS.md records the paper-vs-measured values.
//
// Sweeps enumerate the protocol registry (protocol.Names()) and execute
// their independent points on the parallel driver (RunSpecs): every point
// owns a private simulator, so the output is identical to a serial run while
// the wall clock scales down with the core count.
const CPUScale = 10

// Options shapes an experiment run.
type Options struct {
	Seed int64
	// Quick shrinks sweeps and durations so the full suite runs in minutes
	// (used by the benchmark harness); the CLI default is a fuller run.
	Quick bool
	// Keys per shard for MicroBench (paper: 1M; default here 100k to bound
	// simulator memory across 9 replicated copies).
	Keys int
	// Workers caps the parallel sweep driver's pool (0 = all cores,
	// 1 = serial). The Keys memory bound holds per deployment; peak sweep
	// memory is roughly Workers times that, so cap the pool on machines
	// with many cores and little RAM.
	Workers int
	// Protocols restricts multi-protocol sweeps to a subset of
	// protocol.Names() (nil = every registered protocol).
	Protocols []string
	// Topologies restricts the scenario matrix's topology axis to a subset
	// of simnet.TopologyNames() (nil = every registered topology).
	Topologies []string
	// Workloads restricts the scenario matrix's workload axis to a subset
	// of workload.Names() (nil = the default mix: micro plus the two
	// scenario-layer generators, ycsbt and hotwrite).
	Workloads []string
	// Knobs holds per-protocol knob overrides (protocol name -> knob name ->
	// value) applied to every spec the experiments construct. User overrides
	// win over experiment-imposed operating conditions (the saturation
	// retry-timeout stretch) but not over the parameters an experiment
	// exists to sweep (Fig 13's headroom, the ablation toggles).
	Knobs map[string]map[string]any
	// Ops overrides the driving operating point per protocol. The sweeps
	// otherwise share one saturation rate and outstanding cap across every
	// system, which under- or over-drives protocols whose capacity differs
	// by an order of magnitude (geo-distributed operating points are
	// inherently per-protocol).
	Ops map[string]OpPoint
}

// OpPoint is one protocol's driving operating point.
type OpPoint struct {
	// SaturationRate replaces the shared per-coordinator rate in the
	// maximum-throughput experiments (Tables 1 and 2). 0 keeps the shared
	// rate.
	SaturationRate float64
	// Outstanding replaces the shared in-flight cap per coordinator in
	// every experiment. 0 keeps the shared cap.
	Outstanding int
}

// copyKnobs deep-copies a knob override map so each spec owns its inner
// maps: experiments layer spec-specific knobs on top, and shared inner maps
// would leak one point's overrides into every other point of the sweep.
func copyKnobs(in map[string]map[string]any) map[string]map[string]any {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]map[string]any, len(in))
	for p, m := range in {
		mm := make(map[string]any, len(m))
		for k, v := range m {
			mm[k] = v
		}
		out[p] = mm
	}
	return out
}

func (o Options) keys() int {
	if o.Keys > 0 {
		return o.Keys
	}
	if o.Quick {
		return 20000
	}
	return 100000
}

func (o Options) durations() (warmup, dur time.Duration) {
	if o.Quick {
		return 400 * time.Millisecond, 1200 * time.Millisecond
	}
	return time.Second, 3 * time.Second
}

// protocols returns the registered protocol names the sweeps enumerate, in
// the registry's canonical order, filtered by Options.Protocols.
func (o Options) protocols() []string {
	names := protocol.Names()
	if len(o.Protocols) == 0 {
		return names
	}
	keep := make(map[string]bool, len(o.Protocols))
	for _, p := range o.Protocols {
		keep[p] = true
	}
	var out []string
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// without filters one name out of a protocol list.
func without(names []string, drop string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

// sweepProtocols applies an experiment's by-design exclusions to the
// selected protocol list and notes on w when nothing is left to run — e.g.
// -protocols Detock against a table that excludes Detock would otherwise
// print bare headers and exit 0 silently.
func (o Options) sweepProtocols(w io.Writer, drop ...string) []string {
	names := o.protocols()
	for _, d := range drop {
		names = without(names, d)
	}
	if len(names) == 0 {
		fmt.Fprint(w, "(no rows: none of the selected protocols run in this experiment")
		if len(drop) > 0 {
			fmt.Fprintf(w, "; excluded by design: %s", strings.Join(drop, ", "))
		}
		fmt.Fprintln(w, ")")
	}
	return names
}

// microSkew reads the skew factor back off a MicroBench spec, so sweep rows
// are labeled from the run itself rather than loop-shape index arithmetic.
func microSkew(spec ClusterSpec) float64 {
	return spec.Gen.(*workload.MicroBench).Skew
}

func (o Options) microSpec(protocol string, skew float64, rotated bool, clock clocks.Model) (ClusterSpec, *workload.MicroBench) {
	gen := workload.NewMicroBench(3, o.keys(), skew)
	return ClusterSpec{
		Protocol: protocol, Shards: 3, F: 1, Rotated: rotated, Clock: clock,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: gen,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}, gen
}

func (o Options) tpccSpec(protocol string) ClusterSpec {
	tg := tpcc.New(tpccConfig(o))
	return ClusterSpec{
		Protocol: protocol, Shards: 6, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 2, CoordsRemote: 2, Seed: o.Seed, Gen: tg,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}
}

// saturate prepares one maximum-throughput point: the system is driven at a
// saturating rate with Tiga's coordinator retry timer stretched so
// saturation does not trigger retransmission storms that would distort the
// measurement. A per-protocol operating point (Options.Ops) replaces the
// shared rate and outstanding cap.
func (o Options) saturate(spec ClusterSpec, perCoordRate float64) SpecRun {
	spec.setKnobDefault("Tiga", "retry-timeout", 10*time.Second)
	spec.CostScale = CPUScale
	outstanding := 300
	if op, ok := o.Ops[spec.Protocol]; ok {
		if op.SaturationRate > 0 {
			perCoordRate = op.SaturationRate
		}
		if op.Outstanding > 0 {
			outstanding = op.Outstanding
		}
	}
	warm, dur := o.durations()
	return SpecRun{Spec: spec, Load: LoadSpec{
		RatePerCoord: perCoordRate, Outstanding: outstanding,
		Warmup: warm, Duration: dur, Seed: o.Seed + 1,
	}}
}

// point prepares one fixed-rate sweep point with the standard outstanding
// cap (or the protocol's operating-point override; the rate is the sweep's
// X axis and stays shared).
func (o Options) point(spec ClusterSpec, rate float64, seedOffset int64) SpecRun {
	spec.CostScale = CPUScale
	outstanding := 400
	if op, ok := o.Ops[spec.Protocol]; ok && op.Outstanding > 0 {
		outstanding = op.Outstanding
	}
	warm, dur := o.durations()
	return SpecRun{Spec: spec, Load: LoadSpec{
		RatePerCoord: rate, Outstanding: outstanding,
		Warmup: warm, Duration: dur, Seed: o.Seed + seedOffset,
	}}
}

// Table1 reproduces Table 1: maximum throughput under MicroBench (skew 0.5)
// and TPC-C for every registered protocol.
func Table1(w io.Writer, o Options) map[string]map[string]float64 {
	out := map[string]map[string]float64{"MicroBench": {}, "TPC-C": {}}
	fmt.Fprintf(w, "Table 1. Maximum throughput (txns/s, simulated testbed; paper numbers are ~%dx larger)\n", CPUScale)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "Protocol", "MicroBench", "TPC-C")
	// Table 1 reports NCC; NCC+ appears in Figs 7–8.
	names := o.sweepProtocols(w, "NCC+")
	runs := make([]SpecRun, 0, 2*len(names))
	for _, p := range names {
		spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec, 3000))
		// TPC-C at saturation (6 shards per the paper's setup).
		runs = append(runs, o.saturate(o.tpccSpec(p), 1000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, p := range names {
		micro := results[2*i].Run.Throughput()
		tpc := results[2*i+1].Run.Throughput()
		out["MicroBench"][p] = micro
		out["TPC-C"][p] = tpc
		fmt.Fprintf(w, "%-12s %12.0f %12.0f\n", p, micro, tpc)
	}
	return out
}

func tpccConfig(o Options) tpcc.Config {
	cfg := tpcc.DefaultConfig(6)
	if o.Quick {
		cfg.Customers = 200
		cfg.Items = 2000
	} else {
		cfg.Customers = 500
		cfg.Items = 10000
	}
	return cfg
}

// SweepRow is one point of a rate/skew sweep.
type SweepRow struct {
	Protocol string
	X        float64 // rate (txns/s per coordinator) or skew factor
	Thpt     float64
	Commit   float64
	P50      time.Duration
	P90      time.Duration
}

func sweepHeader(w io.Writer, xName string) {
	fmt.Fprintf(w, "%-12s %10s %12s %9s %12s %12s\n", "Protocol", xName, "Thpt(txn/s)", "Commit%", "p50", "p90")
}

func (r SweepRow) print(w io.Writer) {
	fmt.Fprintf(w, "%-12s %10.2f %12.0f %9.1f %12v %12v\n", r.Protocol, r.X, r.Thpt, r.Commit, r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond))
}

func (o Options) rates() []float64 {
	if o.Quick {
		return []float64{250, 1000, 2500}
	}
	return []float64{100, 250, 500, 1000, 1500, 2500}
}

func regionLatency(run *metrics.Run, region string) *metrics.Latency {
	if lat := run.ByRegion[region]; lat != nil {
		return lat
	}
	return &metrics.Latency{}
}

// Fig7And8 reproduces Figures 7 and 8: MicroBench (skew 0.5) with varying
// per-coordinator rates; latency reported separately for the local region
// (South Carolina, Fig 7) and the remote region (Hong Kong, Fig 8).
func Fig7And8(w io.Writer, o Options) (local, remote []SweepRow) {
	for _, region := range []string{"South Carolina", "Hong Kong"} {
		fig := "Fig 7 (local region: South Carolina)"
		if region == "Hong Kong" {
			fig = "Fig 8 (remote region: Hong Kong)"
		}
		fmt.Fprintf(w, "\n%s — MicroBench skew 0.5, varying per-coordinator rate\n", fig)
		sweepHeader(w, "rate/coord")
	}
	names := o.sweepProtocols(w)
	rates := o.rates()
	var runs []SpecRun
	for _, p := range names {
		for _, rate := range rates {
			spec, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
			runs = append(runs, o.point(spec, rate, 2))
		}
	}
	results := RunSpecs(runs, o.Workers)
	for i, res := range results {
		run := res.Run
		p := runs[i].Spec.Protocol
		rate := runs[i].Load.RatePerCoord
		for _, region := range []string{"South Carolina", "Hong Kong"} {
			lat := regionLatency(run, region)
			row := SweepRow{Protocol: p, X: rate, Thpt: run.Throughput(),
				Commit: run.Counters.CommitRate(), P50: lat.Percentile(50), P90: lat.Percentile(90)}
			if region == "South Carolina" {
				local = append(local, row)
			} else {
				remote = append(remote, row)
			}
		}
	}
	fmt.Fprintln(w, "\nFig 7 rows (South Carolina):")
	sweepHeader(w, "rate/coord")
	for _, r := range local {
		r.print(w)
	}
	fmt.Fprintln(w, "\nFig 8 rows (Hong Kong):")
	sweepHeader(w, "rate/coord")
	for _, r := range remote {
		r.print(w)
	}
	return local, remote
}

func (o Options) skews() []float64 {
	if o.Quick {
		return []float64{0.5, 0.9, 0.99}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
}

// Fig9 reproduces Figure 9: MicroBench with fixed rate and varying skew.
func Fig9(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 9 — MicroBench, fixed rate, varying skew factor (all regions)")
	sweepHeader(w, "skew")
	rate := 800.0
	if o.Quick {
		rate = 600
	}
	names := o.sweepProtocols(w)
	skews := o.skews()
	var runs []SpecRun
	for _, p := range names {
		for _, skew := range skews {
			spec, _ := o.microSpec(p, skew, false, clocks.ModelChrony)
			runs = append(runs, o.point(spec, rate, 3))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		run := res.Run
		row := SweepRow{Protocol: runs[i].Spec.Protocol, X: microSkew(runs[i].Spec),
			Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
			P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
		row.print(w)
		rows = append(rows, row)
	}
	return rows
}

// Fig10 reproduces Figure 10: TPC-C with varying rates (all regions).
func Fig10(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 10 — TPC-C, varying per-coordinator rate (all regions)")
	sweepHeader(w, "rate/coord")
	rates := []float64{50, 125, 250, 500}
	if o.Quick {
		rates = []float64{100, 400}
	}
	names := o.sweepProtocols(w, "NCC+")
	var runs []SpecRun
	for _, p := range names {
		for _, rate := range rates {
			runs = append(runs, o.point(o.tpccSpec(p), rate, 4))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		run := res.Run
		row := SweepRow{Protocol: runs[i].Spec.Protocol, X: runs[i].Load.RatePerCoord,
			Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
			P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
		row.print(w)
		rows = append(rows, row)
	}
	return rows
}

// Fig11Result carries the failure-recovery timeline.
type Fig11Result struct {
	ThptPerSec  []float64
	HKP50       []time.Duration // per-second p50 in Hong Kong
	RecoverySec float64
}

// Fig11 reproduces Figure 11: Tiga's throughput and Hong Kong median latency
// before and after killing one shard leader mid-run; the paper reports a
// ~3.8 s gap until throughput recovers. The crash is injected through the
// protocol.Faultable capability, so any protocol registering fault hooks can
// reuse this experiment.
func Fig11(w io.Writer, o Options) Fig11Result {
	spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
	total := 16 * time.Second
	if o.Quick {
		total = 12 * time.Second
	}
	killAt := 5 * time.Second
	res := RunSpecs([]SpecRun{{
		Spec: spec,
		Load: LoadSpec{
			RatePerCoord: 1000, Outstanding: 600, Warmup: 0, Duration: total,
			Seed: o.Seed + 5, TrackSamples: true,
		},
		Setup: func(d *Deployment) {
			faulty := d.Sys.(protocol.Faultable)
			d.Sim.At(killAt, func() { faulty.KillServer(1, 0) })
		},
	}}, 1)[0]
	title := fmt.Sprintf("Fig 11 — Tiga leader failure at t=%v (paper: ~3.8 s recovery)", killAt)
	return recoveryTimeline(w, title, res, total, killAt)
}

// recoveryTimeline folds a sample stream into the Fig 11 presentation:
// per-second throughput, per-second Hong Kong median latency, and the
// recovery time (first bucket after the kill back at >= 80% of the
// pre-failure average).
func recoveryTimeline(w io.Writer, title string, res *RunResult, total, killAt time.Duration) Fig11Result {
	secs := int(total/time.Second) + 1
	thpt := make([]float64, secs)
	hk := make([][]time.Duration, secs)
	for _, s := range res.Samples {
		i := int(s.At / time.Second)
		if i >= secs {
			continue
		}
		thpt[i]++
		if s.Region == "Hong Kong" {
			hk[i] = append(hk[i], s.Lat)
		}
	}
	out := Fig11Result{ThptPerSec: thpt, HKP50: make([]time.Duration, secs)}
	for i, ls := range hk {
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
		out.HKP50[i] = ls[len(ls)/2]
	}
	var pre float64
	kill := int(killAt / time.Second)
	for i := 1; i < kill; i++ {
		pre += thpt[i]
	}
	pre /= float64(kill - 1)
	rec := -1.0
	for i := kill; i < secs; i++ {
		if thpt[i] >= 0.8*pre {
			rec = float64(i) - killAt.Seconds()
			break
		}
	}
	out.RecoverySec = rec
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%5s %12s %12s\n", "sec", "thpt(txn/s)", "HK p50")
	for i := 0; i < secs; i++ {
		fmt.Fprintf(w, "%5d %12.0f %12v\n", i, thpt[i], out.HKP50[i].Round(time.Millisecond))
	}
	fmt.Fprintf(w, "recovery time: %.1f s\n", out.RecoverySec)
	return out
}

// Fig11Baseline runs the Fig 11 failure scenario against a Paxos-backed
// baseline — the first non-Tiga recovery curve. The 2PL+Paxos shard-1 leader
// is crashed mid-run and rebooted 4 s later (rebuilding its log from the
// surviving replicas); the vote-timeout knob is dialed down from its inert
// 10 s default so transactions caught in the outage presume-abort and retry
// instead of hanging, and undelivered commit decisions are re-sent to the
// rebooted leader. Unlike Tiga (whose view change elects a co-located
// replacement in ~3.8 s), the baseline has no leader election: throughput
// on transactions touching the dead shard stays depressed until the reboot.
func Fig11Baseline(w io.Writer, o Options) Fig11Result {
	const proto = "2PL+Paxos"
	spec, _ := o.microSpec(proto, 0.5, false, clocks.ModelChrony)
	spec.setKnobDefault(proto, "vote-timeout", time.Second)
	total := 16 * time.Second
	if o.Quick {
		total = 12 * time.Second
	}
	killAt := 5 * time.Second
	restartAt := killAt + 4*time.Second
	rate, outstanding := 300.0, 600
	if op, ok := o.Ops[proto]; ok {
		if op.SaturationRate > 0 {
			rate = op.SaturationRate
		}
		if op.Outstanding > 0 {
			outstanding = op.Outstanding
		}
	}
	res := RunSpecs([]SpecRun{{
		Spec: spec,
		Load: LoadSpec{
			RatePerCoord: rate, Outstanding: outstanding, Warmup: 0, Duration: total,
			Seed: o.Seed + 5, TrackSamples: true,
		},
		Setup: func(d *Deployment) {
			faulty := d.Sys.(protocol.Faultable)
			d.Sim.At(killAt, func() { faulty.KillServer(1, 0) })
			d.Sim.At(restartAt, func() { faulty.RestartServer(1, 0) })
		},
	}}, 1)[0]
	title := fmt.Sprintf("Fig 11b — %s leader failure at t=%v, reboot at t=%v (no election: outage lasts until the reboot)",
		proto, killAt, restartAt)
	return recoveryTimeline(w, title, res, total, killAt)
}

// Table2 reproduces Table 2: maximum throughput and p50 latency after server
// rotation (leaders separated across regions), with deltas vs co-location.
// Detock is excluded as in the paper (its home directories are already
// spread across regions); NCC+ as in Table 1.
func Table2(w io.Writer, o Options) map[string][4]float64 {
	fmt.Fprintln(w, "\nTable 2 — server rotation (leaders separated)")
	fmt.Fprintf(w, "%-12s %12s %8s %10s %8s\n", "Protocol", "Thpt(txn/s)", "Δthpt%", "p50(ms)", "Δp50%")
	out := make(map[string][4]float64)
	names := o.sweepProtocols(w, "NCC+", "Detock")
	runs := make([]SpecRun, 0, 2*len(names))
	for _, p := range names {
		spec0, _ := o.microSpec(p, 0.5, false, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec0, 3000))
		spec1, _ := o.microSpec(p, 0.5, true, clocks.ModelChrony)
		runs = append(runs, o.saturate(spec1, 3000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, p := range names {
		base, rot := results[2*i].Run, results[2*i+1].Run
		dThpt := 100 * (rot.Throughput() - base.Throughput()) / base.Throughput()
		p50b := float64(base.Lat.Percentile(50)) / float64(time.Millisecond)
		p50r := float64(rot.Lat.Percentile(50)) / float64(time.Millisecond)
		dLat := 100 * (p50r - p50b) / p50b
		out[p] = [4]float64{rot.Throughput(), dThpt, p50r, dLat}
		fmt.Fprintf(w, "%-12s %12.0f %+8.1f %10.0f %+8.1f\n", p, rot.Throughput(), dThpt, p50r, dLat)
	}
	return out
}

// Fig12 reproduces Figure 12: Tiga-Colocate vs Tiga-Separate p50 latency with
// varying skew, in South Carolina and Hong Kong.
func Fig12(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 12 — Tiga-Colocate vs Tiga-Separate, p50 vs skew")
	fmt.Fprintf(w, "%-16s %6s %16s %16s\n", "Variant", "skew", "SC p50", "HK p50")
	skews := o.skews()
	var runs []SpecRun
	for _, rotated := range []bool{false, true} {
		for _, skew := range skews {
			spec, _ := o.microSpec("Tiga", skew, rotated, clocks.ModelChrony)
			pt := o.point(spec, 80, 6)
			pt.Load.Outstanding = 100
			runs = append(runs, pt)
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		name := "Tiga-Colocate"
		if runs[i].Spec.Rotated {
			name = "Tiga-Separate"
		}
		run := res.Run
		skew := microSkew(runs[i].Spec)
		sc, hk := regionLatency(run, "South Carolina"), regionLatency(run, "Hong Kong")
		fmt.Fprintf(w, "%-16s %6.2f %16v %16v\n", name, skew,
			sc.Percentile(50).Round(time.Millisecond), hk.Percentile(50).Round(time.Millisecond))
		rows = append(rows, SweepRow{Protocol: name, X: skew, P50: sc.Percentile(50), P90: hk.Percentile(50)})
	}
	return rows
}

// Fig13Row is one headroom-delta point.
type Fig13Row struct {
	DeltaMs  float64 // headroom offset; -1e9 marks the 0-Hdrm variant
	SCP50    time.Duration
	HKP50    time.Duration
	Rollback float64 // rollback rate %
}

// Fig13 reproduces Figure 13: Tiga's latency and rollback rate with varying
// headroom deltas (plus the 0-Hdrm baseline), skew 0.99, leaders separated.
// The rollback counts come from the protocol.RollbackReporter capability.
func Fig13(w io.Writer, o Options) []Fig13Row {
	fmt.Fprintln(w, "\nFig 13 — headroom sensitivity (skew 0.99, leaders separated)")
	fmt.Fprintf(w, "%-10s %14s %14s %12s\n", "delta(ms)", "SC p50", "HK p50", "rollback%")
	deltas := []float64{-50, -25, 0, 25, 50}
	if o.Quick {
		deltas = []float64{-25, 0, 25}
	}
	type variant struct {
		label   string
		zero    bool
		deltaMs float64
	}
	variants := []variant{{"0-Hdrm", true, 0}}
	for _, dm := range deltas {
		variants = append(variants, variant{fmt.Sprintf("%+.0f", dm), false, dm})
	}
	runs := make([]SpecRun, 0, len(variants))
	for _, v := range variants {
		spec, _ := o.microSpec("Tiga", 0.99, true, clocks.ModelChrony)
		spec.SetKnob("Tiga", "zero-headroom", v.zero)
		spec.SetKnob("Tiga", "headroom-delta", time.Duration(v.deltaMs*float64(time.Millisecond)))
		pt := o.point(spec, 20, 7)
		pt.Load.Outstanding = 100
		pt.KeepDeployment = true // rollback counts are read post-run
		runs = append(runs, pt)
	}
	results := RunSpecs(runs, o.Workers)
	var rows []Fig13Row
	for i, v := range variants {
		res := results[i]
		runm := res.Run
		sc, hk := regionLatency(runm, "South Carolina"), regionLatency(runm, "Hong Kong")
		rb := 0.0
		if rr, ok := res.Deployment.Sys.(protocol.RollbackReporter); ok && runm.Counters.Committed > 0 {
			rb = 100 * float64(rr.TotalRollbacks()) / float64(runm.Counters.Committed)
		}
		row := Fig13Row{DeltaMs: v.deltaMs, SCP50: sc.Percentile(50), HKP50: hk.Percentile(50), Rollback: rb}
		if v.zero {
			row.DeltaMs = -1e9
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %14v %14v %12.1f\n", v.label,
			row.SCP50.Round(time.Millisecond), row.HKP50.Round(time.Millisecond), rb)
	}
	return rows
}

// Table3 reproduces Table 3: Tiga throughput and measured clock error under
// ntpd, chrony, Huygens, and an unstable "bad clock" (skew 0.99).
func Table3(w io.Writer, o Options) map[string][2]float64 {
	fmt.Fprintln(w, "\nTable 3 — Tiga with different clocks (skew 0.99)")
	fmt.Fprintf(w, "%-10s %14s %16s\n", "Clock", "Thpt(txn/s)", "clock err (ms)")
	out := make(map[string][2]float64)
	models := []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelHuygens, clocks.ModelBad}
	runs := make([]SpecRun, 0, len(models))
	for _, m := range models {
		spec, _ := o.microSpec("Tiga", 0.99, false, m)
		runs = append(runs, o.saturate(spec, 3000))
	}
	results := RunSpecs(runs, o.Workers)
	for i, m := range models {
		run := results[i].Run
		// Measure the error the same way the paper does (a real-time clock
		// monitor): sample a population of this model's clocks.
		cf := clocks.NewFactory(m, time.Minute, o.Seed+9)
		cs := make([]clocks.Clock, 16)
		for j := range cs {
			cs[j] = cf.New()
		}
		errMs := float64(clocks.MeasureError(cs, time.Minute, 64)) / float64(time.Millisecond)
		out[m.String()] = [2]float64{run.Throughput(), errMs}
		fmt.Fprintf(w, "%-10s %14.0f %16.3f\n", m.String(), run.Throughput(), errMs)
	}
	return out
}

// Fig14 reproduces Figure 14: Tiga p50 latency vs rate for each clock model,
// in South Carolina and Hong Kong.
func Fig14(w io.Writer, o Options) []SweepRow {
	fmt.Fprintln(w, "\nFig 14 — Tiga latency with different clocks")
	fmt.Fprintf(w, "%-10s %10s %14s %14s\n", "Clock", "rate", "SC p50", "HK p50")
	models := []clocks.Model{clocks.ModelNtpd, clocks.ModelChrony, clocks.ModelBad, clocks.ModelHuygens}
	rates := o.rates()
	var runs []SpecRun
	for _, m := range models {
		for _, rate := range rates {
			spec, _ := o.microSpec("Tiga", 0.99, false, m)
			runs = append(runs, o.point(spec, rate, 8))
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []SweepRow
	for i, res := range results {
		m := runs[i].Spec.Clock
		rate := runs[i].Load.RatePerCoord
		run := res.Run
		sc, hk := regionLatency(run, "South Carolina"), regionLatency(run, "Hong Kong")
		fmt.Fprintf(w, "%-10s %10.0f %14v %14v\n", m.String(), rate,
			sc.Percentile(50).Round(time.Millisecond), hk.Percentile(50).Round(time.Millisecond))
		rows = append(rows, SweepRow{Protocol: m.String(), X: rate, P50: sc.Percentile(50), P90: hk.Percentile(50)})
	}
	return rows
}

// AblationEpsilon exercises the §6 coordination-free mode: with a trusted
// error bound ε, leaders skip timestamp agreement and hold transactions for
// ts+ε instead.
func AblationEpsilon(w io.Writer, o Options) {
	fmt.Fprintln(w, "\nAblation — coordination-free ε-bound mode (§6) vs timestamp agreement")
	fmt.Fprintf(w, "%-22s %12s %9s %12s\n", "Variant", "Thpt(txn/s)", "Commit%", "p50")
	epsilons := []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond}
	runs := make([]SpecRun, 0, len(epsilons))
	for _, eps := range epsilons {
		spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelHuygens)
		spec.SetKnob("Tiga", "epsilon-bound", eps)
		runs = append(runs, o.point(spec, 800, 10))
	}
	results := RunSpecs(runs, o.Workers)
	for i, eps := range epsilons {
		res := results[i]
		name := "agreement (ε=0)"
		if eps > 0 {
			name = fmt.Sprintf("coordination-free ε=%v", eps)
		}
		fmt.Fprintf(w, "%-22s %12.0f %9.1f %12v\n", name, res.Run.Throughput(),
			res.Run.Counters.CommitRate(), res.Run.Lat.Percentile(50).Round(time.Millisecond))
	}
}

// AblationSlowReply compares per-entry slow replies against the Appendix E
// batched periodic-inquiry optimization.
func AblationSlowReply(w io.Writer, o Options) {
	fmt.Fprintln(w, "\nAblation — per-entry slow replies vs Appendix E batched inquiries")
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "Variant", "Thpt(txn/s)", "p50", "msgs sent")
	variants := []bool{false, true}
	runs := make([]SpecRun, 0, len(variants))
	for _, batch := range variants {
		spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
		spec.SetKnob("Tiga", "batch-slow-replies", batch)
		pt := o.point(spec, 800, 11)
		pt.KeepDeployment = true // message counts are read post-run
		runs = append(runs, pt)
	}
	results := RunSpecs(runs, o.Workers)
	for i, batch := range variants {
		res := results[i]
		name := "per-entry"
		if batch {
			name = "batched"
		}
		fmt.Fprintf(w, "%-12s %12.0f %12v %14d\n", name, res.Run.Throughput(),
			res.Run.Lat.Percentile(50).Round(time.Millisecond), res.Deployment.Net.Sent)
	}
}

// Fig10ForProtocol runs one protocol's TPC-C point (bench harness helper).
func Fig10ForProtocol(w io.Writer, o Options, protocol string, rate float64) []SweepRow {
	res := RunSpecs([]SpecRun{o.point(o.tpccSpec(protocol), rate, 4)}, 1)[0]
	run := res.Run
	row := SweepRow{Protocol: protocol, X: rate, Thpt: run.Throughput(),
		Commit: run.Counters.CommitRate(), P50: run.Lat.Percentile(50), P90: run.Lat.Percentile(90)}
	row.print(w)
	return []SweepRow{row}
}
