// Package harness assembles complete deployments of Tiga and every baseline
// protocol on the simulated WAN and drives them with the paper's open-loop
// evaluation method (§5.1): each coordinator submits transactions at a fixed
// rate with a cap on outstanding transactions, and the harness measures
// throughput, commit rate, and per-region latency percentiles.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/protocols/calvin"
	"tiga/internal/protocols/detock"
	"tiga/internal/protocols/janus"
	"tiga/internal/protocols/lockocc"
	"tiga/internal/protocols/ncc"
	"tiga/internal/protocols/tapir"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/tiga"
	"tiga/internal/txn"
	"tiga/internal/workload"
)

// System is the protocol-independent submission interface.
type System interface {
	Submit(coord int, t *txn.Txn, done func(txn.Result))
	NumCoords() int
	Start()
}

// Protocol names accepted by Build.
var Protocols = []string{"2PL+Paxos", "OCC+Paxos", "Tapir", "Janus", "Calvin+", "NCC", "NCC+", "Detock", "Tiga"}

// ClusterSpec describes a deployment for one experiment run.
type ClusterSpec struct {
	Protocol string
	Shards   int
	F        int
	// Rotated separates leaders across regions (§5.5, Table 2).
	Rotated bool
	Clock   clocks.Model
	Jitter  time.Duration
	Loss    float64
	// CoordsPerRegion places this many coordinators in each server region;
	// CoordsRemote places coordinators in Hong Kong (§5.1).
	CoordsPerRegion int
	CoordsRemote    int
	Seed            int64
	Horizon         time.Duration
	// Gen seeds the stores and generates load.
	Gen workload.Generator
	// Tiga lets experiments override Tiga's configuration (headroom deltas,
	// epsilon mode, batching, ...).
	Tiga func(*tiga.Config)
	// CostScale multiplies every CPU cost (message handling, execution,
	// graph work) by an integer factor. The experiment harness uses it to
	// shrink absolute throughput while preserving the protocols' relative
	// ordering (see EXPERIMENTS.md).
	CostScale int
}

// Deployment bundles a built system with its simulator and metadata.
type Deployment struct {
	Sim          *simnet.Sim
	Net          *simnet.Network
	Sys          System
	CoordRegions []simnet.Region
	// TigaCluster is non-nil when Protocol == "Tiga".
	TigaCluster *tiga.Cluster
}

// CoordRegionList returns the paper's coordinator placement.
func (s ClusterSpec) CoordRegionList() []simnet.Region {
	var out []simnet.Region
	for r := 0; r < 3; r++ {
		for i := 0; i < s.CoordsPerRegion; i++ {
			out = append(out, simnet.Region(r))
		}
	}
	for i := 0; i < s.CoordsRemote; i++ {
		out = append(out, simnet.RegionHongKong)
	}
	return out
}

func (s ClusterSpec) serverRegion(shard, replica int) simnet.Region {
	if s.Rotated {
		return simnet.Region((replica + shard) % 3)
	}
	return simnet.Region(replica)
}

// Build constructs the deployment for the spec.
func Build(spec ClusterSpec) *Deployment {
	if spec.Horizon == 0 {
		spec.Horizon = time.Minute
	}
	if spec.Jitter == 0 {
		spec.Jitter = 500 * time.Microsecond
	}
	scale := spec.CostScale
	if scale <= 0 {
		scale = 1
	}
	sim := simnet.NewSim(spec.Seed)
	netCfg := simnet.GeoConfig(spec.Jitter, spec.Loss)
	netCfg.DefaultCost = time.Duration(scale) * time.Microsecond
	net := simnet.NewNetwork(sim, netCfg)
	coords := spec.CoordRegionList()
	seedFn := func(shard int, st *store.Store) {
		if spec.Gen != nil {
			spec.Gen.Seed(shard, st)
		}
	}
	d := &Deployment{Sim: sim, Net: net, CoordRegions: coords}

	// Per-protocol CPU cost model: a per-piece execution budget calibrated
	// once against Table 1's MicroBench saturation throughputs (the paper's
	// n2-standard-16 testbed), then held fixed across every experiment. The
	// multipliers reflect each protocol's per-transaction server work:
	// Tiga's timestamp ordering is the cheapest; lock managers, per-replica
	// OCC validation, RTC bookkeeping, and dependency graphs cost more.
	exec := time.Duration(scale) * 1200 * time.Nanosecond
	tick := time.Duration(scale) * 100 * time.Nanosecond

	switch spec.Protocol {
	case "Tiga":
		cfg := tiga.DefaultConfig(spec.Shards, spec.F)
		cfg.ExecCost = exec
		cfg.PQCost = 3 * tick
		if spec.Tiga != nil {
			spec.Tiga(&cfg)
		}
		cf := clocks.NewFactory(spec.Clock, spec.Horizon, spec.Seed+1)
		pl := tiga.ColocatedPlacement(coords)
		if spec.Rotated {
			pl = tiga.RotatedPlacement(coords, 3)
		}
		c := tiga.NewCluster(net, cfg, pl, cf, seedFn)
		d.Sys, d.TigaCluster = c, c
	case "2PL+Paxos", "OCC+Paxos":
		cc, cost := lockocc.TwoPL, 17*exec
		if spec.Protocol == "OCC+Paxos" {
			cc, cost = lockocc.OCC, 18*exec
		}
		d.Sys = lockocc.New(lockocc.Spec{
			CC: cc, Shards: spec.Shards, F: spec.F, Net: net,
			ServerRegion: spec.serverRegion, CoordRegions: coords,
			Seed: seedFn, ExecCost: cost,
		})
	case "Tapir":
		d.Sys = tapir.New(tapir.Spec{
			Shards: spec.Shards, F: spec.F, Net: net,
			ServerRegion: spec.serverRegion, CoordRegions: coords,
			Seed: seedFn, ExecCost: 5 * exec,
		})
	case "Janus":
		d.Sys = janus.New(janus.Spec{
			Shards: spec.Shards, F: spec.F, Net: net,
			ServerRegion: spec.serverRegion, CoordRegions: coords,
			Seed: seedFn, ExecCost: 5 * exec, GraphCost: 3 * tick,
		})
	case "Calvin+":
		d.Sys = calvin.New(calvin.Spec{
			Shards: spec.Shards, Regions: 3, Net: net, CoordRegions: coords,
			Seed: seedFn, ExecCost: 9 * exec, Epoch: 10 * time.Millisecond,
		})
	case "Detock":
		d.Sys = detock.New(detock.Spec{
			Shards: spec.Shards, Regions: 3, Net: net, CoordRegions: coords,
			Seed: seedFn, ExecCost: 10 * exec, GraphCost: 5 * tick,
		})
	case "NCC", "NCC+":
		s := ncc.Spec{
			Shards: spec.Shards, F: spec.F, Net: net,
			HomeRegion: simnet.RegionSouthCarolina, CoordRegions: coords,
			Seed: seedFn, ExecCost: 13 * exec,
			Replicated: spec.Protocol == "NCC+",
		}
		if spec.Rotated {
			s.HomeRegionOf = func(shard int) simnet.Region { return simnet.Region(shard % 3) }
		}
		d.Sys = ncc.New(s)
	default:
		panic(fmt.Sprintf("unknown protocol %q", spec.Protocol))
	}
	return d
}

// LoadSpec drives the open-loop workload.
type LoadSpec struct {
	RatePerCoord float64 // txns/s per coordinator
	Outstanding  int     // cap on in-flight transactions per coordinator
	Warmup       time.Duration
	Duration     time.Duration
	Seed         int64
	// MaxChainRestarts bounds interactive-transaction restarts.
	MaxChainRestarts int
	// Check enables the strict-serializability checker (Tiga only — the
	// baselines do not expose serialization timestamps).
	Check bool
	// TrackSamples records every commit as a (time, latency, region) sample
	// for time-series plots (Fig 11).
	TrackSamples bool
}

// Sample is one commit observation.
type Sample struct {
	At     time.Duration
	Lat    time.Duration
	Region string
}

// RunResult bundles the metrics and checker state of one run.
type RunResult struct {
	Run     *metrics.Run
	Commits []checker.Commit
	Counter *checker.Counter
	Samples []Sample
}

// RunLoad executes the open-loop workload against a built deployment and
// returns its metrics. The simulator is advanced to warmup+duration.
func RunLoad(d *Deployment, gen workload.Generator, spec LoadSpec) *RunResult {
	if spec.Outstanding == 0 {
		spec.Outstanding = 1000
	}
	if spec.MaxChainRestarts == 0 {
		spec.MaxChainRestarts = 10
	}
	d.Sys.Start()
	run := metrics.NewRun()
	run.Start = spec.Warmup
	run.End = spec.Warmup + spec.Duration
	res := &RunResult{Run: run, Counter: checker.NewCounter()}

	interval := time.Duration(float64(time.Second) / spec.RatePerCoord)
	for ci := 0; ci < d.Sys.NumCoords(); ci++ {
		ci := ci
		region := simnet.RegionName(d.CoordRegions[ci])
		rng := rand.New(rand.NewSource(spec.Seed + int64(ci)*7919))
		outstanding := 0
		var tick func()
		tick = func() {
			if d.Sim.Now() >= run.End {
				return
			}
			d.Sim.After(interval, tick)
			if outstanding >= spec.Outstanding {
				return
			}
			job := gen.Next(rng)
			outstanding++
			start := d.Sim.Now()
			inWindow := start >= run.Start && start < run.End
			if inWindow {
				run.Counters.Submitted++
			}
			finish := func(r txn.Result, t *txn.Txn) {
				outstanding--
				now := d.Sim.Now()
				if !inWindow {
					return
				}
				if !r.OK {
					run.Counters.Aborted++
					return
				}
				if spec.TrackSamples {
					res.Samples = append(res.Samples, Sample{At: now, Lat: now - start, Region: region})
				}
				run.RecordCommit(now, now-start, region, r.FastPath)
				run.Counters.Retries += int64(r.Retries)
				if spec.Check && t != nil {
					res.Counter.Committed(t)
					res.Commits = append(res.Commits, checker.Commit{
						ID: t.ID, TS: r.TS, Submit: start, Complete: now,
					})
				}
			}
			if job.T != nil {
				d.Sys.Submit(ci, job.T, func(r txn.Result) { finish(r, job.T) })
			} else {
				runChain(d, ci, job.I, 0, spec.MaxChainRestarts, finish)
			}
		}
		// Stagger coordinator start offsets deterministically.
		d.Sim.After(time.Duration(rng.Int63n(int64(interval)+1)), tick)
	}
	d.Sim.Run(run.End + 2*time.Second) // drain tail completions
	return res
}

// runChain drives a multi-shot (interactive) transaction: it submits the
// stages produced by Next in sequence, restarting the whole chain when a
// validation stage aborts (Appendix F).
func runChain(d *Deployment, coord int, ic *txn.Interactive, restarts, maxRestarts int,
	finish func(txn.Result, *txn.Txn)) {

	var stage func(n int, prev *txn.Result, retries int)
	stage = func(n int, prev *txn.Result, retries int) {
		t, done, abort := ic.Next(n, prev)
		if abort {
			if restarts >= maxRestarts {
				finish(txn.Result{Aborted: true, Retries: retries}, nil)
				return
			}
			// Brief randomized-by-position backoff, then restart.
			d.Sim.After(5*time.Millisecond, func() {
				runChain(d, coord, ic, restarts+1, maxRestarts, finish)
			})
			return
		}
		if done || t == nil {
			r := txn.Result{OK: true, Retries: retries + restarts}
			if prev != nil {
				r.PerShard = prev.PerShard
				r.FastPath = prev.FastPath
				r.TS = prev.TS
			}
			finish(r, nil)
			return
		}
		d.Sys.Submit(coord, t, func(r txn.Result) {
			if !r.OK {
				if restarts >= maxRestarts {
					finish(txn.Result{Aborted: true, Retries: retries + r.Retries}, nil)
					return
				}
				d.Sim.After(5*time.Millisecond, func() {
					runChain(d, coord, ic, restarts+1, maxRestarts, finish)
				})
				return
			}
			stage(n+1, &r, retries+r.Retries)
		})
	}
	stage(0, nil, 0)
}
