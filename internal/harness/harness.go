// Package harness assembles complete deployments of Tiga and every baseline
// protocol on the simulated WAN and drives them with the paper's open-loop
// evaluation method (§5.1): each coordinator submits transactions at a fixed
// rate with a cap on outstanding transactions, and the harness measures
// throughput, commit rate, and per-region latency percentiles.
//
// The harness knows no concrete protocol type: deployments are resolved
// through the protocol registry (see internal/protocol), which each protocol
// package joins via init-time self-registration. The blank imports below pull
// those registrations in; adding a protocol means writing a package with a
// protocol.Register call and listing it here (or importing it from the
// binary that needs it).
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/metrics"
	"tiga/internal/pool"
	"tiga/internal/protocol"
	"tiga/internal/simnet"
	"tiga/internal/store"
	"tiga/internal/trace"
	"tiga/internal/txn"
	"tiga/internal/workload"

	// Registered protocols. The harness never names a concrete protocol
	// type; the blank imports only pull in the init-time registrations.
	_ "tiga/internal/protocols/calvin"
	_ "tiga/internal/protocols/detock"
	_ "tiga/internal/protocols/janus"
	_ "tiga/internal/protocols/lockocc"
	_ "tiga/internal/protocols/ncc"
	_ "tiga/internal/protocols/tapir"
	_ "tiga/internal/tiga"
)

// ClusterSpec describes a deployment for one experiment run.
type ClusterSpec struct {
	// Protocol names a registered protocol (see protocol.Names()).
	Protocol string
	// Topology names a registered WAN layout (simnet.TopologyNames());
	// empty selects simnet.DefaultTopology, the paper's geo4. The topology
	// supplies the OWD matrix, region names, server-region count, and the
	// remote-coordinator region, so experiments pick a WAN by name.
	Topology string
	Shards   int
	F        int
	// Rotated separates leaders across regions (§5.5, Table 2).
	Rotated bool
	Clock   clocks.Model
	// Jitter and Loss override the topology's defaults when nonzero.
	Jitter time.Duration
	Loss   float64
	// CoordsPerRegion places this many coordinators in each server region;
	// CoordsRemote places coordinators in the topology's remote region
	// (Hong Kong under geo4, §5.1).
	CoordsPerRegion int
	CoordsRemote    int
	Seed            int64
	Horizon         time.Duration
	// Gen seeds the stores and generates load. When nil, EnsureGen resolves
	// Workload/WorkloadParams/WorkloadKeys through the workload registry; an
	// explicit Gen always wins (tests construct their own generators).
	Gen workload.Generator
	// Workload names a registered workload (workload.Names()), used by
	// EnsureGen when Gen is nil.
	Workload string
	// WorkloadParams are typed parameters for the named workload, validated
	// against its registered schema (workload.Lookup(name).Params).
	WorkloadParams map[string]any
	// WorkloadKeys is the per-shard keyspace handed to the named workload's
	// factory (0 = 2000, a unit-test-sized keyspace).
	WorkloadKeys int
	// Knobs holds per-protocol knob overrides, keyed by protocol name then
	// knob name (see protocol.Knobs for each protocol's schema). Only the
	// map under Knobs[Protocol] reaches the deployment being built; entries
	// for other protocols are inert, so one knob set can be shared across a
	// sweep's specs. Build panics (via the registry's validation) on unknown
	// knob names or type mismatches.
	//
	// This replaces the pre-knob `Tiga func(*tiga.Config)` field: the
	// harness no longer references any concrete protocol type.
	Knobs map[string]map[string]any
	// CostScale multiplies every CPU cost (message handling, execution,
	// graph work) by an integer factor. The experiment harness uses it to
	// shrink absolute throughput while preserving the protocols' relative
	// ordering (see EXPERIMENTS.md).
	CostScale int
}

// Deployment bundles a built system with its simulator and metadata. The
// system is protocol-agnostic; optional abilities are discovered by
// asserting d.Sys against the protocol capability interfaces
// (protocol.Checkable, protocol.Faultable, protocol.RollbackReporter).
type Deployment struct {
	Sim          *simnet.Sim
	Net          *simnet.Network
	Sys          protocol.System
	CoordRegions []simnet.Region
	// Protocol is the registered protocol name the deployment was built
	// for; trace labels and post-run reporting key on it.
	Protocol string
	// Topology is the resolved WAN layout the deployment runs on; it names
	// the regions latency metrics are bucketed under.
	Topology *simnet.Topology
	// Clocks is the factory every per-node clock came from; the chaos
	// applier addresses Clocks.Adjustables() (creation order) for clock
	// steps and freezes.
	Clocks *clocks.Factory
}

// SetKnob records a knob override for proto, allocating the maps as needed.
func (s *ClusterSpec) SetKnob(proto, knob string, v any) {
	if s.Knobs == nil {
		s.Knobs = make(map[string]map[string]any)
	}
	m := s.Knobs[proto]
	if m == nil {
		m = make(map[string]any)
		s.Knobs[proto] = m
	}
	m[knob] = v
}

// setKnobDefault records a knob override only when the caller has not set
// one, so experiment-imposed operating conditions (e.g. the saturation
// retry-timeout stretch) never clobber an explicit user override.
func (s *ClusterSpec) setKnobDefault(proto, knob string, v any) {
	if m := s.Knobs[proto]; m != nil {
		if _, ok := m[knob]; ok {
			return
		}
	}
	s.SetKnob(proto, knob, v)
}

// topology resolves the spec's WAN layout through the simnet registry,
// defaulting to the paper's geo4. It panics on unknown names (mirroring the
// protocol-registry validation in Build).
func (s ClusterSpec) topology() *simnet.Topology {
	name := s.Topology
	if name == "" {
		name = simnet.DefaultTopology
	}
	t, ok := simnet.LookupTopology(name)
	if !ok {
		panic(fmt.Sprintf("unknown topology %q (registered: %v)", name, simnet.TopologyNames()))
	}
	return t
}

// EnsureGen resolves Spec.Workload through the workload registry when Gen is
// nil, so the same generator instance both seeds the stores and drives the
// load. An explicit Gen always wins; a spec with neither is left alone
// (stores stay unseeded, as before).
func (s *ClusterSpec) EnsureGen() error {
	if s.Gen != nil || s.Workload == "" {
		return nil
	}
	keys := s.WorkloadKeys
	if keys == 0 {
		keys = 2000
	}
	gen, err := workload.Build(s.Workload, s.Shards, keys, s.WorkloadParams)
	if err != nil {
		return err
	}
	s.Gen = gen
	return nil
}

// CoordRegionList returns the coordinator placement: CoordsPerRegion
// coordinators in each of the topology's server regions, then CoordsRemote
// in its remote region (the paper's Hong Kong analogue).
func (s ClusterSpec) CoordRegionList() []simnet.Region {
	topo := s.topology()
	var out []simnet.Region
	for r := 0; r < topo.ServerRegions; r++ {
		for i := 0; i < s.CoordsPerRegion; i++ {
			out = append(out, simnet.Region(r))
		}
	}
	for i := 0; i < s.CoordsRemote; i++ {
		out = append(out, topo.RemoteCoordRegion)
	}
	return out
}

func (s ClusterSpec) serverRegion(shard, replica int) simnet.Region {
	n := s.topology().ServerRegions
	if s.Rotated {
		return simnet.Region((replica + shard) % n)
	}
	return simnet.Region(replica % n)
}

// Base CPU cost units: the per-piece execution budget and the auxiliary tick
// (graph work, PQ maintenance), calibrated once against Table 1's MicroBench
// saturation throughputs and scaled per-protocol by each CostProfile.
const (
	baseExecUnit = 1200 * time.Nanosecond
	baseTickUnit = 100 * time.Nanosecond
)

// Build constructs the deployment for the spec by dispatching through the
// protocol, topology, and workload registries. It panics on an unregistered
// name. Callers that rely on a named workload (Spec.Workload) and drive the
// load themselves should call EnsureGen first so they hold the same
// generator instance that seeded the stores; the sweep driver (RunSpecs)
// does this automatically.
func Build(spec ClusterSpec) *Deployment {
	if spec.Horizon == 0 {
		spec.Horizon = time.Minute
	}
	if err := spec.EnsureGen(); err != nil {
		panic(err)
	}
	scale := spec.CostScale
	if scale <= 0 {
		scale = 1
	}
	topo := spec.topology()
	sim := simnet.NewSim(spec.Seed)
	netCfg := topo.Config(spec.Jitter, spec.Loss)
	netCfg.DefaultCost = time.Duration(scale) * time.Microsecond
	net := simnet.NewNetwork(sim, netCfg)
	coords := spec.CoordRegionList()
	clockFactory := clocks.NewFactory(spec.Clock, spec.Horizon, spec.Seed+1)

	ctx := &protocol.BuildContext{
		Net:          net,
		Shards:       spec.Shards,
		F:            spec.F,
		Regions:      topo.ServerRegions,
		Rotated:      spec.Rotated,
		CoordRegions: coords,
		ServerRegion: spec.serverRegion,
		SeedStore: func(shard int, st *store.Store) {
			if spec.Gen != nil {
				spec.Gen.Seed(shard, st)
			}
		},
		Clocks: clockFactory,
		Knobs:  spec.Knobs[spec.Protocol],
	}
	sys, err := protocol.Build(spec.Protocol, ctx,
		time.Duration(scale)*baseExecUnit, time.Duration(scale)*baseTickUnit)
	if err != nil {
		panic(err)
	}
	return &Deployment{Sim: sim, Net: net, Sys: sys, CoordRegions: coords,
		Protocol: spec.Protocol, Topology: topo, Clocks: clockFactory}
}

// LoadSpec drives the open-loop workload.
type LoadSpec struct {
	RatePerCoord float64 // txns/s per coordinator
	Outstanding  int     // cap on in-flight transactions per coordinator
	Warmup       time.Duration
	Duration     time.Duration
	Seed         int64
	// MaxChainRestarts bounds interactive-transaction restarts.
	MaxChainRestarts int
	// Check enables the strict-serializability checker. It is ignored for
	// systems that do not implement protocol.Checkable (their results carry
	// no serialization timestamps).
	Check bool
	// TrackSamples records every commit as a (time, latency, region) sample
	// for time-series plots (Fig 11).
	TrackSamples bool
	// LocalReads routes read-only transactions down the local snapshot-read
	// path when the system implements protocol.SnapshotReadable (and was
	// built with its "local-reads" knob). Ignored otherwise. With Check set,
	// the run also gathers the observations the snapshot-read checker
	// validates (RunResult.SnapReads against RunResult.Writes).
	LocalReads bool
	// Arrival selects a registered open-loop arrival process
	// (workload.ArrivalNames: poisson, diurnal, flashcrowd, surge). When
	// set, RunLoad switches to true open-loop mode (see openloop.go): jobs
	// arrive on the process's rate curve with RatePerCoord as the base
	// rate, regardless of completions, and Outstanding is ignored —
	// backpressure belongs to the protocol's admission gate. Queueing
	// delay (Result.Queued) is then accounted in Run.QueueLat separately
	// from service latency in Run.Lat. Empty keeps the default
	// fixed-interval, outstanding-capped loop untouched.
	Arrival string
	// ArrivalParams are typed parameter overrides for the named arrival
	// process (validated against its registered schema).
	ArrivalParams map[string]any
	// Trace enables the txn-lifecycle span recorder for this run (see
	// internal/trace): every submission gets a trace whose phase breakdown
	// feeds Run.Phase and RunResult.Trace. Nil leaves tracing off (the
	// default, zero-allocation path) unless EnableTracing armed the
	// process-wide sink.
	Trace *trace.Config
}

// Sample is one commit observation.
type Sample struct {
	At     time.Duration
	Lat    time.Duration
	Region string
}

// RunResult bundles the metrics and checker state of one run.
type RunResult struct {
	Run     *metrics.Run
	Commits []checker.Commit
	Counter *checker.Counter
	Samples []Sample
	// Aborts records every client-visible abort as a (time, latency, region)
	// sample when TrackSamples is on, so fault-window experiments can report
	// a per-phase commit rate. Transactions that never complete (hung inside
	// an outage) appear in neither slice.
	Aborts []Sample
	// SnapReads and Writes feed checker.SnapshotReads when the run used the
	// local-read path with Check on: every version a local read observed,
	// and every committed write event (key, commit timestamp) from the
	// coordinator path.
	SnapReads []checker.SnapshotRead
	Writes    []checker.WriteEvent
	// Deployment is the deployment the run was driven against, for
	// post-run inspection (net counters, capability interfaces).
	Deployment *Deployment
	// Trace is the run's sealed trace summary (phase accumulators + tail
	// exemplars) when the run was traced; nil otherwise.
	Trace *trace.Summary
}

// clState is the closed loop's per-run shared context, mirroring olState in
// openloop.go (the two loops account completions differently, so each keeps
// its own envelope type).
type clState struct {
	d          *Deployment
	spec       LoadSpec
	run        *metrics.Run
	res        *RunResult
	checkReads bool
	jobs       *pool.Free[clJob]
	// tracer is the run's span recorder; nil on untraced runs (the
	// default), making every per-job hook a pointer test.
	tracer *trace.Tracer
}

// clJob is one closed-loop submission's envelope — pooled like olJob, bound
// callbacks amortized to the pool's high-water mark — plus a pointer to its
// coordinator's outstanding counter, which completion decrements.
type clJob struct {
	st          *clState
	outstanding *int
	region      string
	start       time.Duration
	inWindow    bool
	t           *txn.Txn
	tr          *trace.T

	finish      func(txn.Result, *txn.Txn)
	finishSub   func(txn.Result)
	finishLocal func(txn.Result)
}

// finishTrace seals a traced job's span record: the breakdown of a committed
// in-window transaction feeds Run.Phase, and the trace is retained or
// recycled by the tracer. Called before the in-window early-outs so every
// trace is sealed exactly once.
func finishTrace(tracer *trace.Tracer, tr *trace.T, t *txn.Txn,
	run *metrics.Run, now time.Duration, keep bool) {
	if t != nil {
		t.Trace = nil
	}
	bd := tracer.Finish(tr, now, keep)
	if keep {
		run.Phase.Add(bd)
	}
}

func (st *clState) get() *clJob {
	j := st.jobs.Get()
	if j.st == nil {
		j.st = st
		j.finish = j.onFinish
		j.finishSub = func(r txn.Result) { j.onFinish(r, j.t) }
		j.finishLocal = j.onFinishLocal
	}
	return j
}

func (j *clJob) onFinish(r txn.Result, t *txn.Txn) {
	st := j.st
	defer st.jobs.Put(j)
	*j.outstanding--
	run, res, spec := st.run, st.res, &st.spec
	now := st.d.Sim.Now()
	if j.tr != nil {
		finishTrace(st.tracer, j.tr, t, run, now, r.OK && j.inWindow)
		j.tr = nil
	}
	if !j.inWindow {
		return
	}
	if !r.OK {
		run.Counters.Aborted++
		if spec.TrackSamples {
			res.Aborts = append(res.Aborts, Sample{At: now, Lat: now - j.start, Region: j.region})
		}
		return
	}
	if spec.TrackSamples {
		res.Samples = append(res.Samples, Sample{At: now, Lat: now - j.start, Region: j.region})
	}
	run.RecordCommit(now, now-j.start, j.region, r.FastPath)
	run.Counters.Retries += int64(r.Retries)
	if t != nil && t.ReadOnly {
		run.ReadLat.Add(now - j.start)
	}
	if spec.Check && t != nil {
		res.Counter.Committed(t)
		res.Commits = append(res.Commits, checker.Commit{
			ID: t.ID, TS: r.TS, Submit: j.start, Complete: now,
		})
	}
	if st.checkReads && t != nil && !t.ReadOnly && !r.TS.IsZero() {
		for _, p := range t.Pieces {
			for _, k := range p.WriteSet {
				res.Writes = append(res.Writes, checker.WriteEvent{Key: k, TS: r.TS})
			}
		}
	}
}

// onFinishLocal handles a local snapshot read, which bypasses the commit
// protocol entirely: its result carries read observations instead of a
// serialization timestamp, so it is validated by the snapshot-read checker,
// not the strict-serializability one.
func (j *clJob) onFinishLocal(r txn.Result) {
	st := j.st
	defer st.jobs.Put(j)
	*j.outstanding--
	run, res, spec := st.run, st.res, &st.spec
	now := st.d.Sim.Now()
	if j.tr != nil {
		finishTrace(st.tracer, j.tr, j.t, run, now, r.OK && j.inWindow)
		j.tr = nil
	}
	if !j.inWindow {
		return
	}
	if !r.OK {
		run.Counters.Aborted++
		if spec.TrackSamples {
			res.Aborts = append(res.Aborts, Sample{At: now, Lat: now - j.start, Region: j.region})
		}
		return
	}
	if spec.TrackSamples {
		res.Samples = append(res.Samples, Sample{At: now, Lat: now - j.start, Region: j.region})
	}
	run.RecordLocalRead(now, now-j.start, r.Waited, j.region)
	run.Counters.Retries += int64(r.Retries)
	if st.checkReads {
		for _, ro := range r.Reads {
			res.SnapReads = append(res.SnapReads, checker.SnapshotRead{
				Key: ro.Key, At: r.SnapshotAt, Saw: ro.TS,
			})
		}
	}
}

// RunLoad executes the open-loop workload against a built deployment and
// returns its metrics. The simulator is advanced to warmup+duration.
func RunLoad(d *Deployment, gen workload.Generator, spec LoadSpec) *RunResult {
	if spec.Arrival != "" {
		return runOpenLoop(d, gen, spec)
	}
	if spec.Outstanding == 0 {
		spec.Outstanding = 1000
	}
	if spec.MaxChainRestarts == 0 {
		spec.MaxChainRestarts = 10
	}
	wantCheck := spec.Check
	if _, ok := d.Sys.(protocol.Checkable); !ok {
		spec.Check = false
	}
	snap, _ := d.Sys.(protocol.SnapshotReadable)
	useLocal := spec.LocalReads && snap != nil
	// checkReads gates the snapshot-read validation data (RunResult.SnapReads
	// and Writes). Unlike the strict-serializability checker it does not need
	// protocol.Checkable: the local-read machinery itself mints the commit
	// timestamps it relies on, so systems without checkable coordinator-path
	// timestamps (the layered baselines) still get their local reads audited.
	checkReads := wantCheck && useLocal
	d.Sys.Start()
	run := metrics.NewRun()
	run.Start = spec.Warmup
	run.End = spec.Warmup + spec.Duration
	res := &RunResult{Run: run, Counter: checker.NewCounter(), Deployment: d}
	tracer, publish := newRunTracer(d, &spec)
	st := &clState{d: d, spec: spec, run: run, res: res, checkReads: checkReads,
		jobs: pool.New[clJob](), tracer: tracer}

	// Pre-size the sample buffers: the open loop submits about rate ×
	// duration transactions per coordinator inside the measurement window,
	// so steady-state recording never reallocates mid-run.
	if expected := int(spec.RatePerCoord*spec.Duration.Seconds()) * d.Sys.NumCoords(); expected > 0 {
		run.Lat.Grow(expected)
		if spec.TrackSamples {
			res.Samples = make([]Sample, 0, expected)
		}
	}

	interval := time.Duration(float64(time.Second) / spec.RatePerCoord)
	for ci := 0; ci < d.Sys.NumCoords(); ci++ {
		ci := ci
		region := d.Topology.RegionName(d.CoordRegions[ci])
		rng := rand.New(rand.NewSource(spec.Seed + int64(ci)*7919))
		outstanding := new(int)
		var tick func()
		tick = func() {
			if d.Sim.Now() >= run.End {
				return
			}
			d.Sim.After(interval, tick)
			if *outstanding >= spec.Outstanding {
				return
			}
			job := gen.Next(rng)
			*outstanding++
			j := st.get()
			j.outstanding = outstanding
			j.region = region
			j.start = d.Sim.Now()
			j.inWindow = j.start >= run.Start && j.start < run.End
			j.t = job.T
			j.tr = nil
			if st.tracer != nil && job.T != nil {
				j.tr = st.tracer.Begin(job.T.Label, j.start)
				job.T.Trace = j.tr
			}
			if j.inWindow {
				run.Counters.Submitted++
			}
			if job.T != nil {
				if useLocal && job.T.ReadOnly {
					snap.SubmitLocalRead(ci, job.T, j.finishLocal)
				} else {
					d.Sys.Submit(ci, job.T, j.finishSub)
				}
			} else {
				runChain(d, ci, job.I, 0, spec.MaxChainRestarts, j.finish)
			}
		}
		// Stagger coordinator start offsets deterministically.
		d.Sim.After(time.Duration(rng.Int63n(int64(interval)+1)), tick)
	}
	d.Sim.Run(run.End + 2*time.Second) // drain tail completions
	sealTrace(res, tracer, publish)
	return res
}

// runChain drives a multi-shot (interactive) transaction: it submits the
// stages produced by Next in sequence, restarting the whole chain when a
// validation stage aborts (Appendix F).
func runChain(d *Deployment, coord int, ic *txn.Interactive, restarts, maxRestarts int,
	finish func(txn.Result, *txn.Txn)) {

	var stage func(n int, prev *txn.Result, retries int)
	stage = func(n int, prev *txn.Result, retries int) {
		t, done, abort := ic.Next(n, prev)
		if abort {
			if restarts >= maxRestarts {
				finish(txn.Result{Aborted: true, Retries: retries}, nil)
				return
			}
			// Brief randomized-by-position backoff, then restart.
			d.Sim.After(5*time.Millisecond, func() {
				runChain(d, coord, ic, restarts+1, maxRestarts, finish)
			})
			return
		}
		if done || t == nil {
			r := txn.Result{OK: true, Retries: retries + restarts}
			if prev != nil {
				r.PerShard = prev.PerShard
				r.FastPath = prev.FastPath
				r.TS = prev.TS
			}
			finish(r, nil)
			return
		}
		d.Sys.Submit(coord, t, func(r txn.Result) {
			if !r.OK {
				if restarts >= maxRestarts {
					finish(txn.Result{Aborted: true, Retries: retries + r.Retries}, nil)
					return
				}
				d.Sim.After(5*time.Millisecond, func() {
					runChain(d, coord, ic, restarts+1, maxRestarts, finish)
				})
				return
			}
			stage(n+1, &r, retries+r.Retries)
		})
	}
	stage(0, nil, 0)
}
