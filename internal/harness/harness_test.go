package harness

import (
	"fmt"
	"testing"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/tiga"
	"tiga/internal/tpcc"
	"tiga/internal/txn"
	"tiga/internal/workload"
)

func microSpec(protocol string, seed int64) (ClusterSpec, *workload.MicroBench) {
	gen := workload.NewMicroBench(3, 2000, 0.5)
	return ClusterSpec{
		Protocol: protocol, Shards: 3, F: 1,
		Clock: clocks.ModelChrony, CoordsPerRegion: 1, CoordsRemote: 1,
		Seed: seed, Gen: gen,
	}, gen
}

// TestAllProtocolsMicroBench runs every registered protocol on a small
// MicroBench load and requires a high commit rate plus sane latencies.
func TestAllProtocolsMicroBench(t *testing.T) {
	for _, p := range protocol.Names() {
		p := p
		t.Run(p, func(t *testing.T) {
			spec, gen := microSpec(p, 42)
			d := Build(spec)
			res := RunLoad(d, gen, LoadSpec{
				RatePerCoord: 50, Warmup: time.Second, Duration: 4 * time.Second,
				Seed: 7, Check: true, // ignored unless the system is Checkable
			})
			run := res.Run
			if run.Counters.Submitted == 0 {
				t.Fatal("no transactions submitted")
			}
			cr := run.Counters.CommitRate()
			// The optimistic / lock-based baselines abort under contention
			// even at modest load; require a lower floor for them.
			floor := 95.0
			switch p {
			case "2PL+Paxos", "OCC+Paxos", "Tapir":
				floor = 60
			}
			if cr < floor {
				t.Fatalf("commit rate %.1f%% too low (%d/%d committed)", cr,
					run.Counters.Committed, run.Counters.Submitted)
			}
			p50 := run.Lat.Percentile(50)
			if p50 <= 0 || p50 > 3*time.Second {
				t.Fatalf("implausible p50 latency %v", p50)
			}
			if _, ok := d.Sys.(protocol.Checkable); ok {
				if len(res.Commits) == 0 {
					t.Fatal("checkable system recorded no commits")
				}
				if err := checker.StrictSerializability(res.Commits); err != nil {
					t.Fatal(err)
				}
				if err := checker.UniqueTimestamps(res.Commits); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("%s: %s", p, run)
		})
	}
}

// TestLatencyOrdering checks the headline latency relationships of Figs 7–8:
// in the remote region (Hong Kong), Tiga's fast path beats the layered
// protocols by multiple WRTTs.
func TestLatencyOrdering(t *testing.T) {
	p50 := make(map[string]time.Duration)
	for _, p := range []string{"Tiga", "2PL+Paxos", "Janus"} {
		spec, gen := microSpec(p, 99)
		d := Build(spec)
		res := RunLoad(d, gen, LoadSpec{RatePerCoord: 40, Warmup: time.Second, Duration: 4 * time.Second, Seed: 3})
		hk := res.Run.ByRegion["Hong Kong"]
		if hk == nil || hk.Count() == 0 {
			t.Fatalf("%s: no Hong Kong commits", p)
		}
		p50[p] = hk.Percentile(50)
		t.Logf("%s HK p50 = %v", p, p50[p])
	}
	// Tiga's 1-WRTT fast path must beat both the consolidated 2-WRTT design
	// and the layered 3-WRTT design by a wide margin (Fig 8).
	if p50["Tiga"] >= p50["Janus"] {
		t.Errorf("Tiga HK p50 (%v) should beat Janus (%v)", p50["Tiga"], p50["Janus"])
	}
	if p50["Tiga"] >= p50["2PL+Paxos"] {
		t.Errorf("Tiga HK p50 (%v) should beat 2PL+Paxos (%v)", p50["Tiga"], p50["2PL+Paxos"])
	}
}

// TestTigaTPCC runs the TPC-C mix (including multi-shot Payment/Order-Status)
// on Tiga and verifies money conservation: every committed Payment moved its
// amount exactly once.
func TestTigaTPCC(t *testing.T) {
	gen := tpcc.New(tpcc.TestConfig(3))
	spec := ClusterSpec{
		Protocol: "Tiga", Shards: 3, F: 1,
		Clock: clocks.ModelChrony, CoordsPerRegion: 1, CoordsRemote: 1,
		Seed: 5, Gen: gen,
	}
	d := Build(spec)
	res := RunLoad(d, gen, LoadSpec{RatePerCoord: 30, Warmup: time.Second, Duration: 4 * time.Second, Seed: 11})
	run := res.Run
	if run.Counters.CommitRate() < 90 {
		t.Fatalf("TPC-C commit rate %.1f%% too low (%d/%d)", run.Counters.CommitRate(),
			run.Counters.Committed, run.Counters.Submitted)
	}
	t.Logf("tpcc on tiga: %s", run)
	// Replica consistency: leaders and followers converge per shard. Log
	// inspection is Tiga-specific, so reach past the registry here.
	c := d.Sys.(*tiga.Cluster)
	for sh := 0; sh < 3; sh++ {
		lead := c.Servers[sh][0]
		for rep := 1; rep < 3; rep++ {
			f := c.Servers[sh][rep]
			ll, fl := lead.LogIDs(), f.LogIDs()
			n := len(fl)
			if len(ll) < n {
				n = len(ll)
			}
			for i := 0; i < n; i++ {
				if ll[i] != fl[i] {
					t.Fatalf("shard %d: replica %d log diverges at %d", sh, rep, i)
				}
			}
		}
	}
}

// TestTPCCOnBaselines exercises the interactive chains on a layered protocol
// and a deterministic protocol.
func TestTPCCOnBaselines(t *testing.T) {
	for _, p := range []string{"2PL+Paxos", "Calvin+", "Janus"} {
		p := p
		t.Run(p, func(t *testing.T) {
			gen := tpcc.New(tpcc.TestConfig(3))
			spec := ClusterSpec{
				Protocol: p, Shards: 3, F: 1,
				Clock: clocks.ModelChrony, CoordsPerRegion: 1,
				Seed: 6, Gen: gen,
			}
			d := Build(spec)
			res := RunLoad(d, gen, LoadSpec{RatePerCoord: 15, Warmup: time.Second, Duration: 3 * time.Second, Seed: 13})
			if res.Run.Counters.CommitRate() < 70 {
				t.Fatalf("%s TPC-C commit rate %.1f%% too low", p, res.Run.Counters.CommitRate())
			}
			t.Logf("%s: %s", p, res.Run)
		})
	}
}

// TestTigaEffectExactlyOnce verifies committed MicroBench increments are
// applied exactly once on the leader stores.
func TestTigaEffectExactlyOnce(t *testing.T) {
	spec, gen := microSpec("Tiga", 21)
	d := Build(spec)
	res := RunLoad(d, gen, LoadSpec{RatePerCoord: 40, Warmup: 0, Duration: 3 * time.Second, Seed: 17, Check: true})
	if res.Run.Counters.Committed == 0 {
		t.Fatal("nothing committed")
	}
	c := d.Sys.(protocol.Checkable)
	err := res.Counter.Verify(func(key string) int64 {
		var sh int
		var idx int
		fmt.Sscanf(key, "k%d-%d", &sh, &idx)
		return txn.DecodeInt(c.LeaderStore(sh).Get(key))
	})
	if err != nil {
		t.Fatal(err)
	}
}
