package harness

import (
	"bytes"
	"testing"

	"tiga/internal/pool"
	"tiga/internal/report"
)

// TestTxnPathDeterminism pins the allocation work of the txn path — interned
// keys, pooled wire messages and records, scratch-slice reuse — to the
// simulator's core guarantee: a fixed seed renders byte-identical reports no
// matter how many sweep workers run the points. A regression here means some
// recycled object leaked state between transactions, or a pool was touched
// from outside its owning simulation. The double-free detector (pool.Check)
// is armed for the duration so a recycle bug fails loudly rather than as a
// silent byte diff.
func TestTxnPathDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full (quick-mode) experiment cells; skipped under -short")
	}
	pool.Check = true
	defer func() { pool.Check = false }()

	render := func(rep *report.Report) []byte {
		var buf bytes.Buffer
		report.Render(&buf, rep)
		return buf.Bytes()
	}
	cases := []struct {
		name string
		run  func(workers int) []byte
	}{
		// table1 drives the closed-loop saturation search: pooled Tiga
		// messages, pendingTxn envelopes, and the slice-backed store.
		{"table1", func(workers int) []byte {
			o := Options{Quick: true, Keys: 800, Seed: 42, Workers: workers,
				Protocols: []string{"Tiga"}}
			rep, _ := Table1(o)
			return render(rep)
		}},
		// scaleout drives the open-loop path: pooled job envelopes, the
		// admission gate, and the lockocc record freelists (2PL+Paxos).
		{"scaleout", func(workers int) []byte {
			o := Options{Quick: true, Keys: 24_000, Seed: 42, Workers: workers,
				Protocols: []string{"Tiga", "2PL+Paxos"},
				Ops: map[string]OpPoint{
					"Tiga":      {SaturationRate: 500, Outstanding: 150},
					"2PL+Paxos": {SaturationRate: 250, Outstanding: 100},
				}}
			rep, _ := ScaleOut(o)
			return render(rep)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial, parallel := tc.run(1), tc.run(8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("%s: rendered report differs between -workers 1 and 8\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					tc.name, serial, parallel)
			}
		})
	}
}
