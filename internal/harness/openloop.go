package harness

import (
	"fmt"
	"math/rand"
	"time"

	"tiga/internal/checker"
	"tiga/internal/metrics"
	"tiga/internal/pool"
	"tiga/internal/protocol"
	"tiga/internal/trace"
	"tiga/internal/txn"
	"tiga/internal/workload"
)

// olState is the per-run shared context of the open-loop driver: everything a
// job's completion callback needs that is not per-arrival.
type olState struct {
	d          *Deployment
	spec       LoadSpec
	run        *metrics.Run
	res        *RunResult
	checkReads bool
	// jobs recycles arrival envelopes. One pool per run, touched only from
	// the run's single-threaded simulator loop (see internal/pool).
	jobs *pool.Free[olJob]
	// tracer is the run's span recorder; nil on untraced runs.
	tracer *trace.Tracer
}

// olJob is one arrival's envelope: the submit-time facts its completion
// callback needs, plus that callback itself. The callbacks are bound once per
// envelope lifetime (first Get) and survive recycling — the envelope's fields
// are rewritten each arrival — so the three per-arrival closures the driver
// used to allocate are amortized down to the pool's high-water mark. An
// envelope whose transaction never completes (lost in an outage, or still in
// flight when the horizon ends) simply never returns to the pool.
type olJob struct {
	st       *olState
	region   string
	start    time.Duration
	inWindow bool
	t        *txn.Txn
	tr       *trace.T

	finish      func(txn.Result, *txn.Txn)
	finishSub   func(txn.Result)
	finishLocal func(txn.Result)
}

func (st *olState) get() *olJob {
	j := st.jobs.Get()
	if j.st == nil {
		j.st = st
		j.finish = j.onFinish
		j.finishSub = func(r txn.Result) { j.onFinish(r, j.t) }
		j.finishLocal = j.onFinishLocal
	}
	return j
}

// onFinish handles a coordinator-path completion. Accounting differs from the
// closed loop in one way: time spent waiting in an admission queue
// (Result.Queued) is recorded in Run.QueueLat, and Run.Lat holds service
// latency (end-to-end minus queue wait), so the two decompose a committed
// transaction's end-to-end time. Shed transactions count in Counters.Shed
// (and Aborted).
func (j *olJob) onFinish(r txn.Result, t *txn.Txn) {
	st := j.st
	defer st.jobs.Put(j)
	run, res, spec := st.run, st.res, &st.spec
	now := st.d.Sim.Now()
	if j.tr != nil {
		finishTrace(st.tracer, j.tr, t, run, now, r.OK && j.inWindow)
		j.tr = nil
	}
	if !j.inWindow {
		return
	}
	if r.Shed {
		run.Counters.Shed++
	}
	if !r.OK {
		run.Counters.Aborted++
		if spec.TrackSamples {
			res.Aborts = append(res.Aborts, Sample{At: now, Lat: now - j.start, Region: j.region})
		}
		return
	}
	// Service latency excludes the admission-queue wait, which is
	// accounted separately.
	lat := now - j.start - r.Queued
	run.QueueLat.Add(r.Queued)
	if spec.TrackSamples {
		res.Samples = append(res.Samples, Sample{At: now, Lat: lat, Region: j.region})
	}
	run.RecordCommit(now, lat, j.region, r.FastPath)
	run.Counters.Retries += int64(r.Retries)
	if t != nil && t.ReadOnly {
		run.ReadLat.Add(lat)
	}
	if spec.Check && t != nil {
		res.Counter.Committed(t)
		res.Commits = append(res.Commits, checker.Commit{
			ID: t.ID, TS: r.TS, Submit: j.start, Complete: now,
		})
	}
	if st.checkReads && t != nil && !t.ReadOnly && !r.TS.IsZero() {
		for _, p := range t.Pieces {
			for _, k := range p.WriteSet {
				res.Writes = append(res.Writes, checker.WriteEvent{Key: k, TS: r.TS})
			}
		}
	}
}

// onFinishLocal handles a local snapshot-read completion.
func (j *olJob) onFinishLocal(r txn.Result) {
	st := j.st
	defer st.jobs.Put(j)
	run, res, spec := st.run, st.res, &st.spec
	now := st.d.Sim.Now()
	if j.tr != nil {
		finishTrace(st.tracer, j.tr, j.t, run, now, r.OK && j.inWindow)
		j.tr = nil
	}
	if !j.inWindow {
		return
	}
	if !r.OK {
		run.Counters.Aborted++
		if spec.TrackSamples {
			res.Aborts = append(res.Aborts, Sample{At: now, Lat: now - j.start, Region: j.region})
		}
		return
	}
	if spec.TrackSamples {
		res.Samples = append(res.Samples, Sample{At: now, Lat: now - j.start, Region: j.region})
	}
	run.RecordLocalRead(now, now-j.start, r.Waited, j.region)
	run.Counters.Retries += int64(r.Retries)
	if st.checkReads {
		for _, ro := range r.Reads {
			res.SnapReads = append(res.SnapReads, checker.SnapshotRead{
				Key: ro.Key, At: r.SnapshotAt, Saw: ro.TS,
			})
		}
	}
}

// runOpenLoop is RunLoad's true open-loop mode (LoadSpec.Arrival): every
// coordinator draws inter-arrival gaps from a registered arrival process and
// submits on that schedule no matter how many transactions are still in
// flight — completions never gate arrivals, so offered load is a property of
// the curve, not of the system under test. That is what makes overload
// measurable: a congestion-collapsing protocol keeps receiving work, and the
// coordinator admission gate (admit-cap/admit-queue knobs) is what turns the
// excess into bounded-latency shedding.
//
// Determinism matches RunLoad: one rng per coordinator seeded from
// (Seed, coordinator index), all scheduling through the simulator, so a
// fixed seed is byte-identical across -workers.
func runOpenLoop(d *Deployment, gen workload.Generator, spec LoadSpec) *RunResult {
	if spec.MaxChainRestarts == 0 {
		spec.MaxChainRestarts = 10
	}
	wantCheck := spec.Check
	if _, ok := d.Sys.(protocol.Checkable); !ok {
		spec.Check = false
	}
	snap, _ := d.Sys.(protocol.SnapshotReadable)
	useLocal := spec.LocalReads && snap != nil
	checkReads := wantCheck && useLocal
	d.Sys.Start()
	run := metrics.NewRun()
	run.Start = spec.Warmup
	run.End = spec.Warmup + spec.Duration
	res := &RunResult{Run: run, Counter: checker.NewCounter(), Deployment: d}
	tracer, publish := newRunTracer(d, &spec)
	st := &olState{d: d, spec: spec, run: run, res: res, checkReads: checkReads,
		jobs: pool.New[olJob](), tracer: tracer}

	// Pre-size the sample buffers at the base rate (curves swing around it);
	// steady-state recording then rarely reallocates mid-run.
	if expected := int(spec.RatePerCoord*spec.Duration.Seconds()) * d.Sys.NumCoords(); expected > 0 {
		run.Lat.Grow(expected)
		run.QueueLat.Grow(expected)
		if spec.TrackSamples {
			res.Samples = make([]Sample, 0, expected)
		}
	}

	for ci := 0; ci < d.Sys.NumCoords(); ci++ {
		ci := ci
		region := d.Topology.RegionName(d.CoordRegions[ci])
		rng := rand.New(rand.NewSource(spec.Seed + int64(ci)*7919))
		arr, err := workload.BuildArrival(spec.Arrival, spec.RatePerCoord,
			ci, d.Sys.NumCoords(), int(d.CoordRegions[ci]), spec.ArrivalParams)
		if err != nil {
			panic(fmt.Sprintf("open-loop load: %v", err))
		}
		var tick func()
		tick = func() {
			if d.Sim.Now() >= run.End {
				return
			}
			// Schedule the next arrival before submitting: the gap draw
			// must not depend on what the submission does with rng.
			d.Sim.After(arr.Next(d.Sim.Now(), rng), tick)
			job := gen.Next(rng)
			j := st.get()
			j.region = region
			j.start = d.Sim.Now()
			j.inWindow = j.start >= run.Start && j.start < run.End
			j.t = job.T
			j.tr = nil
			if st.tracer != nil && job.T != nil {
				j.tr = st.tracer.Begin(job.T.Label, j.start)
				job.T.Trace = j.tr
			}
			if j.inWindow {
				run.Counters.Submitted++
			}
			if job.T != nil {
				if useLocal && job.T.ReadOnly {
					snap.SubmitLocalRead(ci, job.T, j.finishLocal)
				} else {
					d.Sys.Submit(ci, job.T, j.finishSub)
				}
			} else {
				runChain(d, ci, job.I, 0, spec.MaxChainRestarts, j.finish)
			}
		}
		// The first arrival is itself a draw from the process, so the
		// coordinators de-phase exactly like the steady state.
		d.Sim.After(arr.Next(0, rng), tick)
	}
	d.Sim.Run(run.End + 2*time.Second) // drain tail completions
	sealTrace(res, tracer, publish)
	return res
}
