package harness

import (
	"fmt"
	"strings"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/report"
	"tiga/internal/simnet"
	"tiga/internal/workload"
)

// This file holds the scenario-matrix experiment: the paper evaluates one
// WAN (geo4) and two workloads, but protocol rankings are known to flip as
// the WAN geometry, link quality, and mix change. With topologies and
// workloads lifted into registries, the matrix sweeps protocol × topology ×
// workload and reports one row per cell.
//
// Every cell defaults to one shared moderate rate, which under-drives the
// fast designs and over-drives the slow ones; the Options.Ops machinery
// (keyed protocol or protocol × topology, e.g. -op Tiga@us-eu3=2000) drives
// a cell at its own saturation operating point instead, so the matrix can
// report saturation rather than a compromise rate. Cells whose driving rate
// deviates from the shared rate are called out in a per-section note and in
// the table metadata.

// MatrixRow is one protocol × topology × workload cell.
type MatrixRow struct {
	Protocol string
	Topology string
	Workload string
	Rate     float64 // driving rate per coordinator (shared, unless an operating point overrode it)
	Thpt     float64
	Commit   float64
	P50      time.Duration
	P99      time.Duration
}

// scenarioTopologies resolves the matrix's topology axis, panicking on
// unregistered names (the CLI validates first and exits 2; programmatic
// callers get the same fail-fast behavior as unknown protocols).
func (o Options) scenarioTopologies() []string {
	if len(o.Topologies) == 0 {
		return simnet.TopologyNames()
	}
	for _, name := range o.Topologies {
		if _, ok := simnet.LookupTopology(name); !ok {
			panic(fmt.Sprintf("unknown topology %q (registered: %v)", name, simnet.TopologyNames()))
		}
	}
	return o.Topologies
}

// scenarioWorkloads resolves the matrix's workload axis. The default mix is
// MicroBench (the anchor against the classic experiments) plus the two
// scenario-layer generators; tpcc and uniform stay selectable via
// Options.Workloads / -workload.
func (o Options) scenarioWorkloads() []string {
	if len(o.Workloads) == 0 {
		return []string{"micro", "ycsbt", "hotwrite"}
	}
	for _, name := range o.Workloads {
		if _, ok := workload.Lookup(name); !ok {
			panic(fmt.Sprintf("unknown workload %q (registered: %v)", name, workload.Names()))
		}
	}
	return o.Workloads
}

// scenarioSpec prepares one matrix cell's deployment spec. The generator is
// resolved by name through the workload registry (EnsureGen, on the sweep
// driver), so each cell owns a private generator.
func (o Options) scenarioSpec(proto, topo, wl string) ClusterSpec {
	return ClusterSpec{
		Protocol: proto, Topology: topo, Workload: wl, WorkloadKeys: o.keys(),
		Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 2, Seed: o.Seed,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}
}

func (o Options) scenarioRate() float64 {
	if o.Quick {
		return 250
	}
	return 400
}

// cellPoint prepares one matrix cell's run at its resolved operating point:
// the protocol × topology key wins over the protocol-wide key, and the
// shared moderate rate is the fallback.
func (o Options) cellPoint(proto, topo, wl string, shared float64) SpecRun {
	pt := o.point(o.scenarioSpec(proto, topo, wl), shared, 12)
	if op, ok := o.opFor(proto, topo); ok && op.SaturationRate > 0 {
		pt.Load.RatePerCoord = op.SaturationRate
	}
	return pt
}

// ScenarioMatrix sweeps every selected protocol across the selected
// topologies and workloads, reporting per-cell throughput, commit rate, and
// p50/p99 latency. All cells are independent points on the shared sweep
// driver, so the matrix parallelizes like any other experiment and is
// byte-identical across worker counts.
func ScenarioMatrix(o Options) (*report.Report, []MatrixRow) {
	rep := report.New("scenarios")
	topos := o.scenarioTopologies()
	wls := o.scenarioWorkloads()
	names, remark := o.sweepProtocols()
	if remark != "" {
		rep.AddNote(remark)
	}
	rate := o.scenarioRate()
	rep.Add(&report.Table{
		ID: "scenarios-banner", Gap: true,
		Title: fmt.Sprintf("Scenario matrix — %d protocols × %d topologies × %d workloads, %v/coord",
			len(names), len(topos), len(wls), rate),
	})
	var runs []SpecRun
	for _, topo := range topos {
		for _, wl := range wls {
			for _, p := range names {
				runs = append(runs, o.cellPoint(p, topo, wl, rate))
			}
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []MatrixRow
	i := 0
	for _, topo := range topos {
		for _, wl := range wls {
			tab := rep.Add(&report.Table{
				ID: fmt.Sprintf("scenarios/%s/%s", topo, wl), Gap: true,
				Title: fmt.Sprintf("[topology=%s workload=%s]", topo, wl),
				Columns: []report.Column{
					report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
					report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
					report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
					report.Col("p50", "p50", report.Duration, report.Nanos, 12),
					report.Col("p99", "p99", report.Duration, report.Nanos, 12),
				},
			})
			o.stamp(tab, topo, wl, "rate", fmt.Sprintf("%v", rate))
			var opNotes []string
			for _, p := range names {
				cellRate := runs[i].Load.RatePerCoord
				run := results[i].Run
				i++
				row := MatrixRow{
					Protocol: p, Topology: topo, Workload: wl, Rate: cellRate,
					Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
					P50: run.Lat.Percentile(50), P99: run.Lat.Percentile(99),
				}
				rows = append(rows, row)
				tab.AddRow(report.Str(p), report.Num(row.Thpt), report.Num(row.Commit),
					report.Dur(row.P50), report.Dur(row.P99))
				if cellRate != rate {
					opNotes = append(opNotes, fmt.Sprintf("%s=%v/coord", p, cellRate))
				}
			}
			if len(opNotes) > 0 {
				tab.Note("(per-cell operating points: %s)", strings.Join(opNotes, ", "))
				tab.SetMeta("cell_rates", strings.Join(opNotes, ","))
			}
		}
	}
	return rep, rows
}
