package harness

import (
	"fmt"
	"io"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/workload"
)

// This file holds the scenario-matrix experiment: the paper evaluates one
// WAN (geo4) and two workloads, but protocol rankings are known to flip as
// the WAN geometry, link quality, and mix change. With topologies and
// workloads lifted into registries, the matrix sweeps protocol × topology ×
// workload and reports one row per cell.

// MatrixRow is one protocol × topology × workload cell.
type MatrixRow struct {
	Protocol string
	Topology string
	Workload string
	Thpt     float64
	Commit   float64
	P50      time.Duration
	P99      time.Duration
}

// scenarioTopologies resolves the matrix's topology axis, panicking on
// unregistered names (the CLI validates first and exits 2; programmatic
// callers get the same fail-fast behavior as unknown protocols).
func (o Options) scenarioTopologies() []string {
	if len(o.Topologies) == 0 {
		return simnet.TopologyNames()
	}
	for _, name := range o.Topologies {
		if _, ok := simnet.LookupTopology(name); !ok {
			panic(fmt.Sprintf("unknown topology %q (registered: %v)", name, simnet.TopologyNames()))
		}
	}
	return o.Topologies
}

// scenarioWorkloads resolves the matrix's workload axis. The default mix is
// MicroBench (the anchor against the classic experiments) plus the two
// scenario-layer generators; tpcc and uniform stay selectable via
// Options.Workloads / -workload.
func (o Options) scenarioWorkloads() []string {
	if len(o.Workloads) == 0 {
		return []string{"micro", "ycsbt", "hotwrite"}
	}
	for _, name := range o.Workloads {
		if _, ok := workload.Lookup(name); !ok {
			panic(fmt.Sprintf("unknown workload %q (registered: %v)", name, workload.Names()))
		}
	}
	return o.Workloads
}

// scenarioSpec prepares one matrix cell's deployment spec. The generator is
// resolved by name through the workload registry (EnsureGen, on the sweep
// driver), so each cell owns a private generator.
func (o Options) scenarioSpec(proto, topo, wl string) ClusterSpec {
	return ClusterSpec{
		Protocol: proto, Topology: topo, Workload: wl, WorkloadKeys: o.keys(),
		Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 2, Seed: o.Seed,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}
}

func (o Options) scenarioRate() float64 {
	if o.Quick {
		return 250
	}
	return 400
}

// ScenarioMatrix sweeps every selected protocol across the selected
// topologies and workloads at a fixed moderate rate, reporting per-cell
// throughput, commit rate, and p50/p99 latency. All cells are independent
// points on the shared sweep driver, so the matrix parallelizes like any
// other experiment and is byte-identical across worker counts.
func ScenarioMatrix(w io.Writer, o Options) []MatrixRow {
	topos := o.scenarioTopologies()
	wls := o.scenarioWorkloads()
	names := o.sweepProtocols(w)
	rate := o.scenarioRate()
	fmt.Fprintf(w, "\nScenario matrix — %d protocols × %d topologies × %d workloads, %v/coord\n",
		len(names), len(topos), len(wls), rate)
	var runs []SpecRun
	for _, topo := range topos {
		for _, wl := range wls {
			for _, p := range names {
				runs = append(runs, o.point(o.scenarioSpec(p, topo, wl), rate, 12))
			}
		}
	}
	results := RunSpecs(runs, o.Workers)
	var rows []MatrixRow
	i := 0
	for _, topo := range topos {
		for _, wl := range wls {
			fmt.Fprintf(w, "\n[topology=%s workload=%s]\n", topo, wl)
			fmt.Fprintf(w, "%-12s %12s %9s %12s %12s\n", "Protocol", "Thpt(txn/s)", "Commit%", "p50", "p99")
			for _, p := range names {
				run := results[i].Run
				i++
				row := MatrixRow{
					Protocol: p, Topology: topo, Workload: wl,
					Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
					P50: run.Lat.Percentile(50), P99: run.Lat.Percentile(99),
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%-12s %12.0f %9.1f %12v %12v\n", p, row.Thpt, row.Commit,
					row.P50.Round(time.Millisecond), row.P99.Round(time.Millisecond))
			}
		}
	}
	return rows
}
