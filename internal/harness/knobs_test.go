package harness

import (
	"strings"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/tiga"
	"tiga/internal/workload"
)

// TestKnobsReachProtocol verifies the generic ClusterSpec.Knobs plumbing
// lands in the protocol's config: an override set under the running
// protocol's name takes effect, and overrides for other protocols are inert.
func TestKnobsReachProtocol(t *testing.T) {
	spec, _ := microSpec("Tiga", 42)
	spec.SetKnob("Tiga", "retry-timeout", 7*time.Second)
	spec.SetKnob("Tiga", "delta", 20*time.Millisecond)
	spec.SetKnob("Calvin+", "epoch", time.Millisecond) // inert: not the built protocol
	d := Build(spec)
	cfg := d.Sys.(*tiga.Cluster).Cfg
	if cfg.RetryTimeout != 7*time.Second {
		t.Fatalf("retry-timeout knob did not reach the config: %v", cfg.RetryTimeout)
	}
	if cfg.Delta != 20*time.Millisecond {
		t.Fatalf("delta knob did not reach the config: %v", cfg.Delta)
	}
	if cfg.SyncPointEvery != tiga.DefaultConfig(3, 1).SyncPointEvery {
		t.Fatalf("untouched knob lost its default: %v", cfg.SyncPointEvery)
	}
}

// TestBuildRejectsBadKnob pins the failure mode: an unknown knob name (or a
// type mismatch) panics out of Build with the validation error, rather than
// being silently ignored.
func TestBuildRejectsBadKnob(t *testing.T) {
	spec, _ := microSpec("Tiga", 42)
	spec.SetKnob("Tiga", "no-such-knob", 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build accepted an unknown knob")
		}
		if !strings.Contains(strings.ToLower(strings.TrimSpace(toString(r))), "unknown knob") {
			t.Fatalf("panic %v does not name the unknown knob", r)
		}
	}()
	Build(spec)
}

func toString(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// TestOpPointOverrideChangesOnlyThatProtocol is the operating-point
// regression: overriding one protocol's operating point changes that
// protocol's sweep row and leaves every other row byte-identical.
func TestOpPointOverrideChangesOnlyThatProtocol(t *testing.T) {
	protocols := []string{"Tiga", "Janus"}
	run := func(o Options) []*RunResult {
		var runs []SpecRun
		for _, p := range protocols {
			gen := workload.NewMicroBench(3, 2000, 0.5)
			spec := ClusterSpec{
				Protocol: p, Shards: 3, F: 1, Clock: clocks.ModelChrony,
				CoordsPerRegion: 1, CoordsRemote: 1, Seed: 42, Gen: gen,
			}
			runs = append(runs, o.point(spec, 100, 2))
		}
		return RunSpecs(runs, 1)
	}
	base := run(Options{Quick: true})
	override := run(Options{Quick: true, Ops: map[string]OpPoint{
		"Janus": {Outstanding: 1}, // throttle Janus to one in-flight txn per coordinator
	}})
	for i, p := range protocols {
		b, o := base[i].Run, override[i].Run
		same := b.Counters.Committed == o.Counters.Committed && b.Throughput() == o.Throughput()
		if p == "Janus" && same {
			t.Fatalf("Janus operating-point override changed nothing (committed %d)", b.Counters.Committed)
		}
		if p != "Janus" && !same {
			t.Fatalf("%s row changed although only Janus was overridden: %d/%f vs %d/%f",
				p, b.Counters.Committed, b.Throughput(), o.Counters.Committed, o.Throughput())
		}
	}
}

// TestBaselineCrashRecoveryThroughRegistry drives the lockocc Faultable
// implementation the way Fig11Baseline does — through the registry and the
// vote-timeout knob, with no lockocc import: kill the shard-1 leader
// mid-run, reboot it, and require commits to resume afterwards.
func TestBaselineCrashRecoveryThroughRegistry(t *testing.T) {
	spec, gen := microSpec("2PL+Paxos", 42)
	spec.SetKnob("2PL+Paxos", "vote-timeout", 300*time.Millisecond)
	spec.SetKnob("2PL+Paxos", "max-retries", 12)
	d := Build(spec)
	faulty, ok := d.Sys.(protocol.Faultable)
	if !ok {
		t.Fatal("2PL+Paxos does not implement protocol.Faultable")
	}
	killAt, restartAt := time.Second, 2500*time.Millisecond
	d.Sim.At(killAt, func() { faulty.KillServer(1, 0) })
	d.Sim.At(restartAt, func() { faulty.RestartServer(1, 0) })
	res := RunLoad(d, gen, LoadSpec{
		RatePerCoord: 30, Warmup: 0, Duration: 6 * time.Second,
		Seed: 7, TrackSamples: true,
	})
	var pre, post int
	for _, s := range res.Samples {
		if s.At < killAt {
			pre++
		}
		if s.At > restartAt+time.Second {
			post++
		}
	}
	if pre == 0 {
		t.Fatal("no commits before the crash")
	}
	if post == 0 {
		t.Fatalf("no commits after the reboot (total %d)", len(res.Samples))
	}
	t.Logf("pre=%d post=%d commit rate %.1f%%", pre, post, res.Run.Counters.CommitRate())
}

// TestSaturateUsesOpPointRate checks the saturation-rate half of OpPoint at
// the SpecRun level: only the overridden protocol's driving rate changes.
func TestSaturateUsesOpPointRate(t *testing.T) {
	o := Options{Quick: true, Ops: map[string]OpPoint{"2PL+Paxos": {SaturationRate: 750, Outstanding: 120}}}
	specT, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
	specL, _ := o.microSpec("2PL+Paxos", 0.5, false, clocks.ModelChrony)
	st := o.saturate(specT, 3000)
	sl := o.saturate(specL, 3000)
	if st.Load.RatePerCoord != 3000 || st.Load.Outstanding != 300 {
		t.Fatalf("Tiga saturation point changed without an override: %+v", st.Load)
	}
	if sl.Load.RatePerCoord != 750 || sl.Load.Outstanding != 120 {
		t.Fatalf("2PL+Paxos operating point not applied: %+v", sl.Load)
	}
}
