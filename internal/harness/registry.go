package harness

import "tiga/internal/report"

// Experiment is one runnable, named experiment: the unit the CLI selects
// with -exp, the JSON artifact indexes by name, and the CI smoke check
// enumerates. Run builds the experiment's full report; rendering is the
// caller's choice (text, JSON, CSV — see internal/report).
type Experiment struct {
	// Name is the -exp selector ("table1", "fig7", ...).
	Name string
	// Doc is a one-line description surfaced by discovery tooling
	// (cmd/tigabench -exp list).
	Doc string
	// Run executes the experiment and returns its report.
	Run func(o Options) *report.Report
}

// experimentList enumerates every experiment in presentation order — the
// order `-exp all` renders. fig8 is an alias handled by the CLI: the harness
// records both regions in the fig7 pass.
var experimentList = []Experiment{
	{"table1", "Table 1: maximum throughput (MicroBench + TPC-C)", func(o Options) *report.Report {
		r, _ := Table1(o)
		return r
	}},
	{"fig7", "Figs 7+8: rate sweep, local + remote region latency", func(o Options) *report.Report {
		r, _, _ := Fig7And8(o)
		return r
	}},
	{"fig9", "Fig 9: skew sweep", func(o Options) *report.Report {
		r, _ := Fig9(o)
		return r
	}},
	{"fig10", "Fig 10: TPC-C rate sweep", func(o Options) *report.Report {
		r, _ := Fig10(o)
		return r
	}},
	{"fig11", "Fig 11: Tiga leader failure recovery", func(o Options) *report.Report {
		r, _ := Fig11(o)
		return r
	}},
	{"fig11b", "Fig 11 analogue: 2PL+Paxos leader crash + reboot", func(o Options) *report.Report {
		r, _ := Fig11Baseline(o)
		return r
	}},
	{"fig11c", "Fig 11 analogue: NCC+ crash + reboot (no retry timer: outage txns hang)", func(o Options) *report.Report {
		r, _ := Fig11NCC(o)
		return r
	}},
	{"table2", "Table 2: server rotation", func(o Options) *report.Report {
		r, _ := Table2(o)
		return r
	}},
	{"fig12", "Fig 12: colocate vs separate", func(o Options) *report.Report {
		r, _ := Fig12(o)
		return r
	}},
	{"fig13", "Fig 13: headroom sensitivity", func(o Options) *report.Report {
		r, _ := Fig13(o)
		return r
	}},
	{"table3", "Table 3: clock ablation", func(o Options) *report.Report {
		r, _ := Table3(o)
		return r
	}},
	{"fig14", "Fig 14: latency per clock model", func(o Options) *report.Report {
		r, _ := Fig14(o)
		return r
	}},
	{"ablations", "extra ablations (ε-mode, Appendix E)", Ablations},
	{"scenarios", "protocol × topology × workload matrix", func(o Options) *report.Report {
		r, _ := ScenarioMatrix(o)
		return r
	}},
	{"chaos", "protocol × fault-plan matrix (crashes, partitions, link faults, clock steps)", func(o Options) *report.Report {
		r, _ := ChaosMatrix(o)
		return r
	}},
	{"localreads", "local snapshot reads: 0-WRTT read-only txns vs replica staleness, watermark lag, partition chaos", func(o Options) *report.Report {
		r, _ := LocalReads(o)
		return r
	}},
	{"scaleout", "scale-out serving: shards × replication over a fixed million-key dataset, open-loop arrivals, admission-gated overload", func(o Options) *report.Report {
		r, _ := ScaleOut(o)
		return r
	}},
	{"breakdown", "critical-path latency decomposition: per-phase breakdown from txn-lifecycle traces, commit and local-read paths", func(o Options) *report.Report {
		r, _ := Breakdown(o)
		return r
	}},
}

// Experiments returns every registered experiment in presentation order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experimentList))
	copy(out, experimentList)
	return out
}

// ExperimentNames returns the registered experiment names in presentation
// order.
func ExperimentNames() []string {
	out := make([]string, len(experimentList))
	for i, e := range experimentList {
		out[i] = e.Name
	}
	return out
}
