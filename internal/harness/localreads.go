package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
	"tiga/internal/protocol"
	"tiga/internal/report"
)

// This file holds the local-snapshot-read experiment: read-only transactions
// served at 0 WRTT from the nearest replica of each shard, gated by
// per-replica safe-time watermarks (protocol.SnapshotReadable). The
// experiment contrasts the coordinator commit path against the local path
// across a read-staleness axis — staleness 0 is a strong read that waits out
// the replica's watermark lag; positive staleness trades bounded-stale data
// for near-zero SAFETIME waits — and reports each protocol's watermark lag
// per replica, which is the structural story: Tiga's leader watermark tracks
// its synchronized clock (lag ≈ queued headroom), while a 2PC/Paxos leader
// holds its watermark below every in-flight prepare (lag ≈ the prepare
// window) and followers everywhere trail by replication delay. A chaos-armed
// variant runs the same load through a WAN partition and validates with the
// snapshot-read checker that partitioned replicas delay reads but never
// serve a wrong version.

// LocalReadRow is one protocol × path × staleness cell.
type LocalReadRow struct {
	Protocol  string
	Path      string        // "coord" (baseline commit path) or "local"
	Staleness time.Duration // read-staleness knob; meaningful on the local path
	Thpt      float64
	Commit    float64
	ReadP50   time.Duration // end-to-end read-only latency
	ReadP90   time.Duration
	WaitP50   time.Duration // SAFETIME delay spent blocked on the watermark
	Local     int64         // read-only txns served from a nearby replica
}

// localReadStalenesses is the experiment's staleness axis: strong reads,
// one jitter-scale bound, and one replication-scale bound.
var localReadStalenesses = []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond}

// localReadSpec prepares one cell's deployment: the classic WAN, YCSB-T
// (95% read-only transactions, moderate skew), and — on the local path —
// the protocol's "local-reads" knob plus the cell's staleness bound.
func (o Options) localReadSpec(proto string, staleness time.Duration, local bool) ClusterSpec {
	spec := ClusterSpec{
		Protocol: proto, Workload: "ycsbt", WorkloadKeys: o.keys(),
		WorkloadParams: map[string]any{"skew": 0.7, "read-ratio": 0.95},
		Shards:         3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 2, Seed: o.Seed,
		CostScale: CPUScale, Knobs: copyKnobs(o.Knobs),
	}
	if local {
		spec.setKnobDefault(proto, "local-reads", true)
		spec.setKnobDefault(proto, "read-staleness", staleness)
	}
	return spec
}

func (o Options) localReadRate() float64 {
	if o.Quick {
		return 250
	}
	return 400
}

// snapshotProtocols filters the sweep's protocol list down to systems that
// implement protocol.SnapshotReadable, returning the excluded names for the
// report note.
func (o Options) snapshotProtocols() (in, out []string, remark string) {
	names, remark := o.sweepProtocols()
	for _, p := range names {
		if probeCaps(p).snapshot {
			in = append(in, p)
		} else {
			out = append(out, p)
		}
	}
	return in, out, remark
}

// lagCapture is one mid-run snapshot of every replica's watermark, taken by
// a Setup-scheduled simulator callback so the lag is measured under load,
// not after the run has quiesced.
type lagCapture struct {
	at   time.Duration
	safe []time.Duration
}

// watermarkLagSetup returns a SpecRun.Setup hook that samples SafeTimes at
// the middle of the measurement window into out[idx].
func watermarkLagSetup(out []lagCapture, idx int, at time.Duration) func(d *Deployment) {
	return func(d *Deployment) {
		d.Sim.At(at, func() {
			if s, ok := d.Sys.(protocol.SnapshotReadable); ok {
				out[idx] = lagCapture{at: d.Sim.Now(), safe: s.SafeTimes()}
			}
		})
	}
}

// lagStats folds one capture into min/median/max watermark lag across the
// deployment's replicas.
func (c lagCapture) lagStats() (min, med, max time.Duration) {
	if len(c.safe) == 0 {
		return 0, 0, 0
	}
	lags := make([]time.Duration, len(c.safe))
	for i, w := range c.safe {
		lags[i] = c.at - w
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	return lags[0], lags[len(lags)/2], lags[len(lags)-1]
}

// snapReadStatus validates a run's local-read observations against its
// committed write history.
func snapReadStatus(res *RunResult) string {
	if err := checker.SnapshotReads(res.SnapReads, res.Writes); err != nil {
		return "FAIL: " + err.Error()
	}
	return fmt.Sprintf("ok (%d local reads, %d read obs, %d writes)",
		res.Run.Counters.LocalReads, len(res.SnapReads), len(res.Writes))
}

// LocalReads sweeps every SnapshotReadable protocol across the read path
// (coordinator baseline vs nearest-replica local) and the staleness axis,
// reports each protocol's per-replica watermark lag sampled under load, and
// re-runs the local path through a WAN partition with the snapshot-read
// checker armed.
func LocalReads(o Options) (*report.Report, []LocalReadRow) {
	rep := report.New("localreads")
	names, excluded, remark := o.snapshotProtocols()
	if remark != "" {
		rep.AddNote(remark)
	}
	rate := o.localReadRate()
	rep.Add(&report.Table{
		ID: "localreads-banner", Gap: true,
		Title: fmt.Sprintf("Local snapshot reads — %d protocols, YCSB-T 95%% reads skew 0.7, %v/coord",
			len(names), rate),
	})
	if len(excluded) > 0 {
		rep.AddNote(fmt.Sprintf("(excluded by design — no safe-time watermarks: %s)",
			strings.Join(excluded, ", ")))
	}
	if len(names) == 0 {
		return rep, nil
	}

	// One baseline point plus one local point per staleness, per protocol;
	// the staleness-0 local point also samples watermark lag mid-run. The
	// chaos-armed points ride in the same batch.
	warm, dur := o.durations()
	type cell struct {
		proto     string
		local     bool
		staleness time.Duration
	}
	var cells []cell
	for _, p := range names {
		cells = append(cells, cell{proto: p})
		for _, st := range localReadStalenesses {
			cells = append(cells, cell{proto: p, local: true, staleness: st})
		}
	}
	lags := make([]lagCapture, len(cells))
	runs := make([]SpecRun, len(cells))
	for i, c := range cells {
		sr := o.point(o.localReadSpec(c.proto, c.staleness, c.local), rate, 21+int64(i))
		sr.Load.Check = true
		sr.Load.LocalReads = c.local
		if c.local && c.staleness == 0 {
			sr.Setup = watermarkLagSetup(lags, i, warm+dur/2)
		}
		runs[i] = sr
	}
	chaosTotal := o.failureRunLength()
	chaosBase := len(runs)
	for i, p := range names {
		spec := o.localReadSpec(p, 0, true)
		if p == "2PL+Paxos" || p == "OCC+Paxos" {
			// As in the chaos matrix: dial the vote timeout down from its
			// inert 10 s default so 2PCs stranded by the partition presume-
			// abort instead of holding locks (and pinning the safe-time
			// watermark below their prepare) past the heal.
			spec.setKnobDefault(p, "vote-timeout", time.Second)
		}
		sr := SpecRun{
			Spec:  spec,
			Chaos: "wan-partition",
			Load: LoadSpec{
				RatePerCoord: rate, Outstanding: 400, Warmup: 0, Duration: chaosTotal,
				Seed: o.Seed + 61 + int64(i), TrackSamples: true, Check: true, LocalReads: true,
			},
		}
		runs = append(runs, sr)
	}
	results := RunSpecs(runs, o.Workers)

	var rows []LocalReadRow
	tab := rep.Add(&report.Table{
		ID: "localreads/paths", Gap: true,
		Title: "[read path × staleness] coordinator commit path vs nearest-replica snapshot reads",
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("path", "path", report.String, report.None, 6).AlignLeft(),
			report.Col("staleness", "staleness", report.Duration, report.Nanos, 10),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
			report.Col("readp50", "read p50", report.Duration, report.Nanos, 12),
			report.Col("readp90", "read p90", report.Duration, report.Nanos, 12),
			report.Col("waitp50", "wait p50", report.Duration, report.Nanos, 12),
			report.Col("local", "Local", report.Float, report.None, 9).WithPrec(0),
		},
	})
	o.stamp(tab, o.classicTopology().Name, "ycsbt",
		"rate", fmt.Sprintf("%v", rate), "read-ratio", "0.95", "skew", "0.7",
		"clock", clocks.ModelChrony.String())
	var checks []string
	for i, c := range cells {
		run := results[i].Run
		path := "coord"
		if c.local {
			path = "local"
		}
		row := LocalReadRow{
			Protocol: c.proto, Path: path, Staleness: c.staleness,
			Thpt: run.Throughput(), Commit: run.Counters.CommitRate(),
			ReadP50: run.ReadLat.Percentile(50), ReadP90: run.ReadLat.Percentile(90),
			WaitP50: run.LocalWait.Percentile(50), Local: run.Counters.LocalReads,
		}
		rows = append(rows, row)
		tab.AddRow(report.Str(row.Protocol), report.Str(row.Path), report.Dur(row.Staleness),
			report.Num(row.Thpt), report.Num(row.Commit),
			report.Dur(row.ReadP50), report.Dur(row.ReadP90), report.Dur(row.WaitP50),
			report.Num(float64(row.Local)))
		if c.local {
			checks = append(checks, fmt.Sprintf("%s@%v: %s", c.proto, c.staleness, snapReadStatus(results[i])))
		}
	}
	tab.Note("snapshot-read check — %s", strings.Join(checks, "; "))

	lagTab := rep.Add(&report.Table{
		ID: "localreads/watermark-lag", Gap: true,
		Title: "[watermark lag] per-replica safe-time lag behind the sampling instant, mid-run under load",
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("min", "lag min", report.Duration, report.Nanos, 12),
			report.Col("med", "lag median", report.Duration, report.Nanos, 12),
			report.Col("max", "lag max", report.Duration, report.Nanos, 12),
		},
	})
	o.stamp(lagTab, o.classicTopology().Name, "ycsbt",
		"sampled-at", fmt.Sprintf("%v", warm+dur/2))
	for i, c := range cells {
		if !c.local || c.staleness != 0 {
			continue
		}
		min, med, max := lags[i].lagStats()
		lagTab.AddRow(report.Str(c.proto), report.Dur(min), report.Dur(med), report.Dur(max))
	}
	lagTab.Note("(leader lag ≈ clock headroom for Tiga vs the in-flight prepare window for 2PC/Paxos; max is the slowest follower)")

	chaosTab := rep.Add(&report.Table{
		ID: "localreads/wan-partition", Gap: true,
		Title: fmt.Sprintf("[chaos] local reads through %s, %v runs — partitioned replicas delay reads, never lie",
			"wan-partition", chaosTotal),
		Columns: []report.Column{
			report.Col("protocol", "Protocol", report.String, report.None, 12).AlignLeft(),
			report.Col("phase", "phase", report.String, report.None, 6).AlignLeft(),
			report.Col("thpt", "Thpt(txn/s)", report.Float, report.Rate, 12),
			report.Col("commit", "Commit%", report.Float, report.Percent, 9).WithPrec(1),
			report.Col("p99", "p99", report.Duration, report.Nanos, 12),
		},
	})
	plan := mustPlan("wan-partition")
	o.stamp(chaosTab, o.classicTopology().Name, "ycsbt",
		"chaos", "wan-partition",
		"window", fmt.Sprintf("%v-%v", plan.Window.Start, plan.Window.End))
	phases := []struct {
		name     string
		from, to time.Duration
	}{
		{"pre", 0, plan.Window.Start},
		{"fault", plan.Window.Start, plan.Window.End},
		{"post", plan.Window.End, chaosTotal},
	}
	var chaosChecks []string
	for i, p := range names {
		res := results[chaosBase+i]
		for _, ph := range phases {
			thpt, commit, p99 := phaseStats(res, ph.from, ph.to)
			chaosTab.AddRow(report.Str(p), report.Str(ph.name), report.Num(thpt),
				report.Num(commit), report.Dur(p99))
		}
		chaosChecks = append(chaosChecks, fmt.Sprintf("%s: %s, %d retries",
			p, snapReadStatus(res), res.Run.Counters.Retries))
	}
	chaosTab.Note("snapshot-read check under partition — %s", strings.Join(chaosChecks, "; "))
	return rep, rows
}
