package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tiga/internal/report"
)

// The golden files under testdata/ were captured from the pre-report-model
// experiment code (PR 3), which fmt.Fprintf'd its presentation directly, at
// the cheap fixed configurations below. These tests replay the same
// configurations through the report model + text renderer and require
// byte-identical output: the refactor moved every experiment onto typed
// tables without changing a single rendered byte on defaults.
//
// The configurations restrict protocols/axes to keep the replay affordable
// on one core; the formats they exercise cover every column layout the
// experiments use (the remaining layouts are pinned cell-by-cell in
// internal/report's unit tests).

func goldenOpts() Options {
	return Options{Quick: true, Keys: 800, Seed: 42, Workers: 1}
}

func checkGolden(t *testing.T, name string, rep *report.Report) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	var buf bytes.Buffer
	report.Render(&buf, rep)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s: rendered text differs from the pre-refactor golden\n--- got ---\n%s\n--- want ---\n%s",
			name, buf.String(), want)
	}
}

// TestGoldenTextRenderer is the byte-identical pin for the report-model
// refactor. Each sub-test rebuilds one experiment at the captured
// configuration and compares the rendered text against the PR 3 bytes.
func TestGoldenTextRenderer(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replays run full (quick-mode) experiments; skipped under -short")
	}
	cases := []struct {
		name string
		run  func(t *testing.T) *report.Report
	}{
		{"table1", func(t *testing.T) *report.Report {
			o := goldenOpts()
			o.Protocols = []string{"Janus"}
			rep, _ := Table1(o)
			return rep
		}},
		{"fig7", func(t *testing.T) *report.Report {
			o := goldenOpts()
			o.Protocols = []string{"Janus"}
			rep, _, _ := Fig7And8(o)
			return rep
		}},
		{"fig9", func(t *testing.T) *report.Report {
			o := goldenOpts()
			o.Protocols = []string{"Tiga", "Janus"}
			rep, _ := Fig9(o)
			return rep
		}},
		{"fig11b", func(t *testing.T) *report.Report {
			rep, _ := Fig11Baseline(goldenOpts())
			return rep
		}},
		{"fig11c", func(t *testing.T) *report.Report {
			// Captured from the PR 4 code (pre-chaos-layer baselineFailover);
			// the chaos-plan rewrite must not change a byte.
			rep, _ := Fig11NCC(goldenOpts())
			return rep
		}},
		{"fig12", func(t *testing.T) *report.Report {
			rep, _ := Fig12(goldenOpts())
			return rep
		}},
		{"fig13", func(t *testing.T) *report.Report {
			rep, _ := Fig13(goldenOpts())
			return rep
		}},
		{"ablations", func(t *testing.T) *report.Report {
			return Ablations(goldenOpts())
		}},
		{"scenarios", func(t *testing.T) *report.Report {
			o := goldenOpts()
			o.Protocols = []string{"Tiga", "Janus"}
			o.Topologies = []string{"us-eu3", "geo4-degraded"}
			o.Workloads = []string{"micro", "ycsbt"}
			rep, _ := ScenarioMatrix(o)
			return rep
		}},
		{"breakdown", func(t *testing.T) *report.Report {
			// Captured at PR 10 (tracing introduction): pins the phase
			// decomposition — and, transitively, the trace determinism the
			// breakdown experiment rides on — at the golden configuration.
			rep, _ := Breakdown(goldenOpts())
			return rep
		}},
		{"emptysel", func(t *testing.T) *report.Report {
			// The by-design exclusion remark: Detock-only against Table 2
			// renders the title, the header, and the explanatory note.
			o := goldenOpts()
			o.Protocols = []string{"Detock"}
			rep, _ := Table2(o)
			return rep
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, tc.name, tc.run(t))
		})
	}
}

// TestGoldenJSONRoundTrip re-renders a decoded artifact: one real experiment
// is built, emitted as a JSON document, decoded back, and its re-rendered
// text must equal both the direct render and the pre-refactor golden. This
// is the end-to-end guarantee that the archived BENCH artifact carries the
// full presentation, not a lossy summary.
func TestGoldenJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (quick-mode) experiment; skipped under -short")
	}
	rep, _ := Fig12(goldenOpts())
	doc := &report.Document{
		Generated:   report.Generated{Seed: 42, Quick: true, CPUScale: CPUScale},
		Experiments: []*report.Report{rep},
	}
	var enc bytes.Buffer
	if err := doc.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	back, err := report.Decode(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].Name != "fig12" {
		t.Fatalf("decoded document lost the experiment: %+v", back.Experiments)
	}
	checkGolden(t, "fig12", back.Experiments[0])
	// The decoded table keeps its metadata (self-describing artifact).
	tab := back.Experiments[0].Find("fig12")
	if tab == nil || tab.Meta["topology"] != "geo4" || tab.Meta["seed"] != "42" {
		t.Fatalf("decoded table lost its metadata: %+v", tab)
	}
}
