package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SpecRun is one independent experiment point for the parallel sweep driver:
// a deployment spec plus the load to drive through it. Spec.Gen both seeds
// the stores and generates the load — and it MUST be a fresh generator owned
// by this run: generators may be stateful (e.g. tpcc.Gen allocates unique
// order ids), so sharing one across points races under parallel workers and
// breaks the serial-identical guarantee. The Options helpers (microSpec,
// tpccSpec) already construct one per point.
type SpecRun struct {
	Spec ClusterSpec
	Load LoadSpec
	// Setup, when non-nil, runs after Build and before RunLoad — e.g. to
	// schedule a mid-run fault on the deployment's simulator.
	Setup func(d *Deployment)
	// KeepDeployment preserves RunResult.Deployment for post-run inspection
	// (net counters, capability interfaces). Off by default: a sweep's
	// deployments would otherwise all stay reachable until the whole sweep
	// finishes, multiplying peak memory by the point count.
	KeepDeployment bool
}

// RunSpecs executes independent experiment points on a worker pool and
// returns their results in input order. Every point owns a private simulator
// seeded from its spec, so the results are identical to running the points
// serially — scheduling only changes wall-clock time, not output. workers <= 0
// uses all available cores. Peak memory scales with the worker count (each
// in-flight point holds a full deployment: stores on every replica, lock
// tables, logs); pass a smaller pool on memory-constrained machines.
func RunSpecs(runs []SpecRun, workers int) []*RunResult {
	out := make([]*RunResult, len(runs))
	if len(runs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	runOne := func(i int) {
		r := runs[i]
		d := Build(r.Spec)
		if r.Setup != nil {
			r.Setup(d)
		}
		out[i] = RunLoad(d, r.Spec.Gen, r.Load)
		if !r.KeepDeployment {
			out[i].Deployment = nil // let the point's simulator be collected
		}
	}
	if workers == 1 {
		for i := range runs {
			runOne(i)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(runs) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return out
}
