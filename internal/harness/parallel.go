package harness

import (
	"runtime"
	"sync"
)

// SpecRun is one independent experiment point for the parallel sweep driver:
// a deployment spec plus the load to drive through it. Spec.Gen both seeds
// the stores and generates the load — and it MUST be a fresh generator owned
// by this run: generators may be stateful (e.g. tpcc.Gen allocates unique
// order ids), so sharing one across points races under parallel workers and
// breaks the serial-identical guarantee. The Options helpers (microSpec,
// tpccSpec) already construct one per point, and a named workload
// (Spec.Workload) is resolved into a private generator per point.
type SpecRun struct {
	Spec ClusterSpec
	Load LoadSpec
	// Chaos names a registered fault plan (chaos.Names()) to schedule on
	// the deployment before the load starts; see ApplyPlan. Empty = no
	// faults. The plan's events are deterministic in the spec's seed, so a
	// chaotic point stays byte-identical across worker counts like any
	// other point.
	Chaos string
	// Setup, when non-nil, runs after Build and before RunLoad — e.g. to
	// schedule a mid-run fault on the deployment's simulator. Chaos plans
	// are scheduled first.
	Setup func(d *Deployment)
	// KeepDeployment preserves RunResult.Deployment for post-run inspection
	// (net counters, capability interfaces). Off by default: a sweep's
	// deployments would otherwise all stay reachable until the whole sweep
	// finishes, multiplying peak memory by the point count.
	KeepDeployment bool
}

// runOne executes one experiment point end to end. It resolves a named
// workload first so the generator that seeds the stores is the one that
// drives the load.
func (r *SpecRun) runOne() *RunResult {
	if err := r.Spec.EnsureGen(); err != nil {
		panic(err)
	}
	d := Build(r.Spec)
	if r.Chaos != "" {
		ApplyPlan(d, r.Spec, r.Chaos)
	}
	if r.Setup != nil {
		r.Setup(d)
	}
	res := RunLoad(d, r.Spec.Gen, r.Load)
	if !r.KeepDeployment {
		res.Deployment = nil // let the point's simulator be collected
	}
	return res
}

// The shared pool: every RunSpecs call feeds one process-wide set of workers
// instead of spawning its own. Concurrent RunSpecs callers (tigabench -exp
// all runs the experiments concurrently) therefore work-steal from each
// other — while one experiment's tail point finishes, idle workers pull the
// next experiment's points — without the total in-flight deployment count
// ever exceeding the largest single cap requested (the -workers memory
// bound holds globally, not per call).
type poolBatch struct {
	runs []SpecRun
	out  []*RunResult
	next int // next un-started index
	live int // in-flight points
	cap  int // max concurrent points for this batch
	done int // finished points
	wg   sync.WaitGroup
}

var (
	poolMu      sync.Mutex
	poolCond    = sync.NewCond(&poolMu)
	poolBatches []*poolBatch
	poolWorkers int
)

// poolWorker scans the active batches in submission order and runs the first
// available point; it parks when every batch is either drained or at its
// concurrency cap. Workers are spawned on demand and live for the process.
func poolWorker() {
	poolMu.Lock()
	for {
		var b *poolBatch
		for _, cand := range poolBatches {
			if cand.next < len(cand.runs) && cand.live < cand.cap {
				b = cand
				break
			}
		}
		if b == nil {
			poolCond.Wait()
			continue
		}
		i := b.next
		b.next++
		b.live++
		poolMu.Unlock()
		b.out[i] = (&b.runs[i]).runOne()
		poolMu.Lock()
		b.live--
		b.done++
		if b.done == len(b.runs) {
			for j, cand := range poolBatches {
				if cand == b {
					poolBatches = append(poolBatches[:j], poolBatches[j+1:]...)
					break
				}
			}
		}
		b.wg.Done()
	}
}

// RunSpecs executes independent experiment points on the shared worker pool
// and returns their results in input order. Every point owns a private
// simulator seeded from its spec, so the results are identical to running
// the points serially — scheduling only changes wall-clock time, not output.
// workers <= 0 uses all available cores; workers == 1 runs the points one at
// a time (the old serial behavior). At most `workers` points of this call
// are in flight at once — and because the pool never grows past the largest
// cap requested, that bound holds globally even when several experiments'
// batches are in flight (tigabench -exp all): each in-flight point holds a
// full deployment (stores on every replica, lock tables, logs), so pass a
// smaller -workers on memory-constrained machines.
func RunSpecs(runs []SpecRun, workers int) []*RunResult {
	out := make([]*RunResult, len(runs))
	if len(runs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	b := &poolBatch{runs: runs, out: out, cap: workers}
	b.wg.Add(len(runs))
	poolMu.Lock()
	poolBatches = append(poolBatches, b)
	// Grow the pool to the largest cap ever requested — never the sum of
	// concurrent caps, so the -workers memory bound holds across
	// concurrently running experiments.
	for poolWorkers < workers {
		poolWorkers++
		go poolWorker()
	}
	poolCond.Broadcast()
	poolMu.Unlock()
	b.wg.Wait()
	return out
}
