package harness

import (
	"testing"
	"time"

	"tiga/internal/checker"
	"tiga/internal/clocks"
)

// TestScaleOutDeterministic is the open-loop determinism pin: a fixed-seed
// shards × replication sweep — Poisson arrivals, admission gates armed — is
// byte-identical across runs and across -workers settings. A regression here
// means rng state leaked between the arrival draw and the submission, or the
// admission gate picked up wall-clock state.
func TestScaleOutDeterministic(t *testing.T) {
	o := Options{Quick: true, Keys: 24_000, Seed: 42,
		Protocols: []string{"Tiga", "2PL+Paxos"},
		// Modest operating points keep the sweep fast; the production rates
		// are the experiment's business, not the determinism pin's.
		Ops: map[string]OpPoint{
			"Tiga":      {SaturationRate: 500, Outstanding: 150},
			"2PL+Paxos": {SaturationRate: 250, Outstanding: 100},
		},
	}
	run := func(workers int) []ScaleOutRow {
		oo := o
		oo.Workers = workers
		_, rows := ScaleOut(oo)
		return rows
	}
	a, b := run(1), run(4)
	if len(a) != 4 { // 2 protocols × shards {3,6} × F {1}
		t.Fatalf("scale-out sweep produced %d rows, want 4", len(a))
	}
	committed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across -workers settings:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i].Thpt > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no scale-out cell committed anything")
	}
}

// TestAdmissionShedsNotWedges drives OCC+Paxos — the recorded congestion
// collapser (saturation 250/coord, EXPERIMENTS.md operating points) — at 3×
// its saturation rate under open-loop Poisson arrival with the admission gate
// armed. The pin is the ISSUE's overload contract: the coordinator sheds the
// excess (Shed > 0) while the protocol keeps serving to the end of the run
// (commits in the last quarter of the window) at bounded service latency,
// instead of the unbounded-backlog collapse the no-fault control rows show.
func TestAdmissionShedsNotWedges(t *testing.T) {
	spec := ClusterSpec{
		Protocol: "OCC+Paxos", Workload: "micro", WorkloadKeys: 2000,
		WorkloadParams: map[string]any{"skew": 0.5},
		Shards:         3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 21,
	}
	spec.SetKnob("OCC+Paxos", "admit-cap", 200)
	spec.SetKnob("OCC+Paxos", "admit-queue", 200)
	spec.SetKnob("OCC+Paxos", "vote-timeout", time.Second)
	if err := spec.EnsureGen(); err != nil {
		t.Fatal(err)
	}
	d := Build(spec)
	dur := 8 * time.Second
	res := RunLoad(d, spec.Gen, LoadSpec{
		Arrival: "poisson", RatePerCoord: 750,
		Duration: dur, Seed: 22, TrackSamples: true,
	})
	run := res.Run
	if run.Counters.Shed == 0 {
		t.Fatal("3× saturation shed nothing — the admission gate is not engaging")
	}
	if run.Counters.Committed == 0 {
		t.Fatal("nothing committed under overload")
	}
	var lastQuarter int
	for _, s := range res.Samples {
		if s.At >= run.End-dur/4 {
			lastQuarter++
		}
	}
	if lastQuarter == 0 {
		t.Fatalf("no commits in the last quarter of the window — the system wedged (committed=%d shed=%d)",
			run.Counters.Committed, run.Counters.Shed)
	}
	if p99 := run.Lat.Percentile(99); p99 >= 5*time.Second {
		t.Errorf("service p99 = %v under shedding, want bounded (< 5s)", p99)
	}
	if qp99 := run.QueueLat.Percentile(99); qp99 >= 5*time.Second {
		t.Errorf("queue p99 = %v with a 200-deep queue, want bounded (< 5s)", qp99)
	}
	t.Logf("OCC+Paxos @3×: %s shed=%d queue-p99=%v",
		run, run.Counters.Shed, run.QueueLat.Percentile(99))
}

// TestFTwoPlacementWraps pins the replica→region wrap: F=2 puts 2F+1 = 5
// replicas per shard on geo4's 4 regions, so replica 4 must wrap back to
// region 0 instead of indexing past the topology's OWD matrix. The quick
// sweeps only exercise F=1, and the Tiga factory used to build its own
// unwrapped placement — the scale-out sweep's F=2 column panicked at Build.
func TestFTwoPlacementWraps(t *testing.T) {
	for _, proto := range []string{"Tiga", "2PL+Paxos"} {
		spec := ClusterSpec{
			Protocol: proto, Workload: "micro", WorkloadKeys: 1000,
			WorkloadParams: map[string]any{"skew": 0.5},
			Shards:         3, F: 2, Clock: clocks.ModelChrony,
			CoordsPerRegion: 1, CoordsRemote: 1, Seed: 3,
		}
		if proto == "2PL+Paxos" {
			spec.SetKnob(proto, "vote-timeout", time.Second)
		}
		if err := spec.EnsureGen(); err != nil {
			t.Fatal(err)
		}
		d := Build(spec)
		res := RunLoad(d, spec.Gen, LoadSpec{
			Arrival: "poisson", RatePerCoord: 100,
			Duration: 2 * time.Second, Seed: 4,
		})
		if res.Run.Counters.Committed == 0 {
			t.Errorf("%s: nothing committed at F=2 (5 replicas on 4 regions)", proto)
		}
	}
}

// versionCounter is the diagnostic both GC-capable systems expose: retained
// committed-version count summed across every replica store.
type versionCounter interface{ TotalVersions() int }

// gcPlateauRun drives one sustained write-heavy run with local reads on and
// version-gc per the flag, sampling the cluster-wide retained version count
// early (t1) and late (t2).
func gcPlateauRun(t *testing.T, proto string, gc bool, t1, t2 time.Duration) (v1, v2 int, res *RunResult) {
	t.Helper()
	spec := ClusterSpec{
		Protocol: proto, Workload: "ycsbt", WorkloadKeys: 150,
		WorkloadParams: map[string]any{"skew": 0.9, "read-ratio": 0.2},
		Shards:         3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, CoordsRemote: 1, Seed: 5,
	}
	spec.SetKnob(proto, "local-reads", true)
	spec.SetKnob(proto, "read-staleness", 50*time.Millisecond)
	spec.SetKnob(proto, "version-gc", gc)
	if proto == "2PL+Paxos" || proto == "OCC+Paxos" {
		spec.SetKnob(proto, "vote-timeout", time.Second)
	}
	if err := spec.EnsureGen(); err != nil {
		t.Fatal(err)
	}
	d := Build(spec)
	vc, ok := d.Sys.(versionCounter)
	if !ok {
		t.Fatalf("%s system has no TotalVersions diagnostic", proto)
	}
	d.Sim.At(t1, func() { v1 = vc.TotalVersions() })
	d.Sim.At(t2, func() { v2 = vc.TotalVersions() })
	res = RunLoad(d, spec.Gen, LoadSpec{
		RatePerCoord: 150, Outstanding: 200, Duration: t2 + time.Second,
		Seed: 9, Check: true, LocalReads: true,
	})
	return v1, v2, res
}

// TestVersionGCPlateau is the ISSUE's memory pin: with local reads and
// version-gc on, the retained version count plateaus under sustained write
// load (the GC horizon trails the replica watermarks by the staleness bound
// plus slack, so steady state retains a bounded window), while the GC-off
// control keeps growing. The snapshot-read checker stays armed on the GC run:
// every local read must still observe the newest committed version at-or-below
// its snapshot, i.e. pruning never changed a result a live read could see.
func TestVersionGCPlateau(t *testing.T) {
	const t1, t2 = 4 * time.Second, 11 * time.Second
	for _, proto := range []string{"Tiga", "2PL+Paxos"} {
		v1, v2, res := gcPlateauRun(t, proto, true, t1, t2)
		if v1 == 0 {
			t.Fatalf("%s: no versions retained by %v — the multi-version store is not engaged", proto, t1)
		}
		if float64(v2) > 1.25*float64(v1) {
			t.Errorf("%s: versions grew %d -> %d over %v of sustained writes with GC on, want plateau (≤ 1.25×)",
				proto, v1, v2, t2-t1)
		}
		if res.Run.Counters.LocalReads == 0 {
			t.Fatalf("%s: no local reads issued — the GC-safety check is vacuous", proto)
		}
		if len(res.SnapReads) == 0 {
			t.Fatalf("%s: no snapshot-read observations collected", proto)
		}
		if err := checker.SnapshotReads(res.SnapReads, res.Writes); err != nil {
			t.Errorf("%s: GC changed a live read's result: %v", proto, err)
		}

		c1, c2, _ := gcPlateauRun(t, proto, false, t1, t2)
		if float64(c2) < 1.8*float64(c1) {
			t.Errorf("%s control: versions %d -> %d with GC off, want unbounded growth (≥ 1.8×) — the plateau assertion above is not measuring GC",
				proto, c1, c2)
		}
		t.Logf("%s: gc on %d -> %d, gc off %d -> %d", proto, v1, v2, c1, c2)
	}
}
