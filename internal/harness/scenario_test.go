package harness

import (
	"strings"
	"testing"
	"time"

	"tiga/internal/clocks"
	"tiga/internal/simnet"
	"tiga/internal/workload"
)

// TestTopologyReachesDeployment verifies the ClusterSpec.Topology plumbing:
// a named topology shapes the coordinator placement, the region labels, and
// the WAN the deployment runs on; the default stays geo4.
func TestTopologyReachesDeployment(t *testing.T) {
	spec, gen := microSpec("Tiga", 42)
	d := Build(spec)
	if d.Topology == nil || d.Topology.Name != simnet.DefaultTopology {
		t.Fatalf("default deployment topology = %v, want geo4", d.Topology)
	}

	spec2, gen2 := microSpec("Tiga", 42)
	spec2.Topology = "us-eu3"
	d2 := Build(spec2)
	if d2.Topology.Name != "us-eu3" {
		t.Fatalf("topology = %q, want us-eu3", d2.Topology.Name)
	}
	// Remote coordinators land in the topology's remote region (Frankfurt),
	// not geo4's Hong Kong.
	last := d2.CoordRegions[len(d2.CoordRegions)-1]
	if name := d2.Topology.RegionName(last); name != "Frankfurt" {
		t.Fatalf("remote coordinator in %q, want Frankfurt", name)
	}
	// And the latency buckets use the topology's names.
	res := RunLoad(d2, gen2, LoadSpec{RatePerCoord: 20, Warmup: 500 * time.Millisecond,
		Duration: 2 * time.Second, Seed: 5})
	if res.Run.Counters.Committed == 0 {
		t.Fatal("us-eu3 deployment committed nothing")
	}
	for region := range res.Run.ByRegion {
		switch region {
		case "Virginia", "Oregon", "Frankfurt":
		default:
			t.Fatalf("unexpected region bucket %q under us-eu3", region)
		}
	}
	// Same spec on geo4 must differ — the WAN is part of the result.
	res1 := RunLoad(d, gen, LoadSpec{RatePerCoord: 20, Warmup: 500 * time.Millisecond,
		Duration: 2 * time.Second, Seed: 5})
	if res1.Run.Lat.Percentile(50) == res.Run.Lat.Percentile(50) {
		t.Log("note: geo4 and us-eu3 p50 coincide (possible but unlikely)")
	}
}

// TestUnknownTopologyPanics pins the failure mode, mirroring unknown
// protocols: Build fails fast naming the registered topologies.
func TestUnknownTopologyPanics(t *testing.T) {
	spec, _ := microSpec("Tiga", 42)
	spec.Topology = "nosuch"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build accepted an unknown topology")
		}
		if s, _ := r.(string); !strings.Contains(s, "geo4") {
			t.Fatalf("panic %v does not list the registered topologies", r)
		}
	}()
	Build(spec)
}

// TestEnsureGenResolvesWorkload verifies the ClusterSpec.Workload plumbing:
// a named workload resolves through the registry exactly once (the same
// generator seeds the stores and drives the load), typed parameters reach
// the generator, an explicit Gen wins, and unknown names error with the
// valid list.
func TestEnsureGenResolvesWorkload(t *testing.T) {
	spec := ClusterSpec{
		Protocol: "Tiga", Shards: 3, F: 1, Clock: clocks.ModelChrony,
		CoordsPerRegion: 1, Seed: 42,
		Workload: "micro", WorkloadKeys: 500,
		WorkloadParams: map[string]any{"skew": 0.9},
	}
	if err := spec.EnsureGen(); err != nil {
		t.Fatal(err)
	}
	mb, ok := spec.Gen.(*workload.MicroBench)
	if !ok {
		t.Fatalf("workload %q resolved to %T", spec.Workload, spec.Gen)
	}
	if mb.Skew != 0.9 || mb.Keys != 500 {
		t.Fatalf("params did not reach the generator: %+v", mb)
	}

	explicit := workload.NewMicroBench(3, 100, 0.5)
	spec2 := spec
	spec2.Gen = explicit
	if err := spec2.EnsureGen(); err != nil || spec2.Gen != explicit {
		t.Fatal("explicit Gen did not win over the named workload")
	}

	spec3 := spec
	spec3.Gen, spec3.Workload = nil, "nosuch"
	if err := spec3.EnsureGen(); err == nil || !strings.Contains(err.Error(), "micro") {
		t.Fatalf("unknown workload error %v does not list the registered names", err)
	}

	spec4 := spec
	spec4.Gen, spec4.WorkloadParams = nil, map[string]any{"nosuch": 1}
	if err := spec4.EnsureGen(); err == nil {
		t.Fatal("unknown workload parameter accepted")
	}
}

// TestScenarioMatrixDeterministic is the scenario-layer determinism pin: a
// fixed-seed matrix cell over non-default topologies and the new workloads
// is byte-identical across two runs and across -workers settings. A
// regression here means shared mutable state leaked into the registries or
// the resolved generators.
func TestScenarioMatrixDeterministic(t *testing.T) {
	o := Options{Quick: true, Keys: 800, Seed: 42,
		Protocols:  []string{"Tiga", "Janus"},
		Topologies: []string{"us-eu3", "planet5"},
		Workloads:  []string{"ycsbt", "hotwrite"},
	}
	run := func(workers int) []MatrixRow {
		oo := o
		oo.Workers = workers
		_, rows := ScenarioMatrix(oo)
		return rows
	}
	a, b := run(1), run(4) // two runs, different -workers settings
	if len(a) != 8 {
		t.Fatalf("matrix produced %d rows, want 8 (2 protocols × 2 topologies × 2 workloads)", len(a))
	}
	committed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs/-workers settings:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i].Thpt > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no matrix cell committed anything")
	}
}

// TestScenarioMatrixPanicsOnUnknownAxis pins the programmatic failure mode
// (the CLI validates first and exits 2).
func TestScenarioMatrixPanicsOnUnknownAxis(t *testing.T) {
	for _, o := range []Options{
		{Quick: true, Topologies: []string{"nosuch"}},
		{Quick: true, Workloads: []string{"nosuch"}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ScenarioMatrix accepted an unknown axis name")
				}
			}()
			ScenarioMatrix(o)
		}()
	}
}

// TestCellOperatingPointResolution pins the matrix operating-point lookup
// order without running any simulation: the protocol × topology key wins
// over the protocol-wide key, which wins over the shared rate; outstanding
// caps resolve the same way through o.point.
func TestCellOperatingPointResolution(t *testing.T) {
	o := Options{Quick: true, Keys: 500, Seed: 42, Ops: map[string]OpPoint{
		"Tiga":          {SaturationRate: 900, Outstanding: 150},
		"Tiga@us-eu3":   {SaturationRate: 2000},
		"Janus@planet5": {SaturationRate: 700, Outstanding: 50},
	}}
	cases := []struct {
		proto, topo string
		wantRate    float64
		wantOut     int
	}{
		{"Tiga", "us-eu3", 2000, 150}, // cell key overlays: rate from the cell, cap inherited from the protocol-wide key
		{"Tiga", "planet5", 900, 150}, // falls back to the protocol-wide key
		{"Janus", "planet5", 700, 50}, // cell key, both fields
		{"Janus", "us-eu3", 250, 400}, // no key at all: shared quick rate + default cap
		{"Detock", "geo4", 250, 400},  // untouched protocol
	}
	for _, tc := range cases {
		pt := o.cellPoint(tc.proto, tc.topo, "micro", o.scenarioRate())
		if pt.Load.RatePerCoord != tc.wantRate || pt.Load.Outstanding != tc.wantOut {
			t.Errorf("%s@%s: rate/outstanding = %v/%d, want %v/%d",
				tc.proto, tc.topo, pt.Load.RatePerCoord, pt.Load.Outstanding, tc.wantRate, tc.wantOut)
		}
	}
}

// TestClassicTopologySelection pins the classic experiments' WAN choice: the
// first selected topology wins, the default is geo4, and the region labels
// the experiments print come from the topology.
func TestClassicTopologySelection(t *testing.T) {
	if got := (Options{}).classicTopology().Name; got != simnet.DefaultTopology {
		t.Fatalf("default classic topology = %q", got)
	}
	o := Options{Topologies: []string{"us-eu3", "planet5"}}
	topo := o.classicTopology()
	if topo.Name != "us-eu3" {
		t.Fatalf("classic topology = %q, want us-eu3 (first selected)", topo.Name)
	}
	if topo.RegionName(0) != "Virginia" || topo.RegionCode(topo.RemoteCoordRegion) != "FR" {
		t.Fatalf("labels did not resolve: %q / %q", topo.RegionName(0), topo.RegionCode(topo.RemoteCoordRegion))
	}
	spec, _ := o.microSpec("Tiga", 0.5, false, clocks.ModelChrony)
	if spec.Topology != "us-eu3" {
		t.Fatalf("microSpec topology = %q, want us-eu3", spec.Topology)
	}
}
