package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tiga/internal/trace"
)

// The process-wide trace sink: `tigabench -trace out.json` arms it once, and
// every subsequent run — whichever experiment spawned it, on whatever worker
// — records a span summary here. Collection sorts by a content-derived key,
// so the exported file is byte-identical across -workers settings even
// though runs *finish* in nondeterministic order.
//
// Experiments that want their own tracer (the breakdown experiment) set
// LoadSpec.Trace instead; those summaries stay on the RunResult and are not
// published to the sink.

var (
	traceSinkMu  sync.Mutex
	traceSinkCfg *trace.Config
	traceSink    []*trace.Summary
)

// EnableTracing arms the process-wide trace sink: every run started after
// this call records spans under cfg (a zero Seed defers to each run's load
// seed) and publishes its summary for CollectTraces.
func EnableTracing(cfg trace.Config) {
	traceSinkMu.Lock()
	defer traceSinkMu.Unlock()
	c := cfg
	traceSinkCfg = &c
	traceSink = nil
}

// DisableTracing disarms the sink and drops any collected summaries.
func DisableTracing() {
	traceSinkMu.Lock()
	defer traceSinkMu.Unlock()
	traceSinkCfg = nil
	traceSink = nil
}

// CollectTraces drains the sink, sorted deterministically (label, then
// summary content), ready for trace.WriteChrome.
func CollectTraces() []*trace.Summary {
	traceSinkMu.Lock()
	out := traceSink
	traceSink = nil
	traceSinkMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return summaryKey(out[i]) < summaryKey(out[j])
	})
	return out
}

// summaryKey derives a total order on summaries from their content alone:
// completion order (which varies with worker scheduling) never leaks into
// the export. Two summaries with equal keys are byte-identical in the
// export, so their relative order is immaterial.
func summaryKey(s *trace.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d|%v", s.Label, s.Begun, s.Count, s.Phase)
	for _, ex := range s.Exemplars {
		fmt.Fprintf(&b, "|%d:%d", ex.Idx, ex.Latency())
	}
	return b.String()
}

// newRunTracer resolves a run's tracer: an explicit LoadSpec.Trace wins and
// stays private to the RunResult; otherwise the armed process-wide sink
// provides the config and the summary is published at seal time. Returns
// (nil, false) — tracing off — when neither is set.
func newRunTracer(d *Deployment, spec *LoadSpec) (*trace.Tracer, bool) {
	label := fmt.Sprintf("%s seed=%d rate=%g", d.Protocol, spec.Seed, spec.RatePerCoord)
	if spec.Arrival != "" {
		label += " arrival=" + spec.Arrival
	}
	if spec.Trace != nil {
		return trace.New(label, *spec.Trace), false
	}
	traceSinkMu.Lock()
	cfg := traceSinkCfg
	traceSinkMu.Unlock()
	if cfg == nil {
		return nil, false
	}
	c := *cfg
	if c.Seed == 0 {
		c.Seed = spec.Seed
	}
	return trace.New(label, c), true
}

// sealTrace finalizes a traced run: the summary lands on the RunResult, and
// sink-armed runs also publish it for CollectTraces.
func sealTrace(res *RunResult, tracer *trace.Tracer, publish bool) {
	if tracer == nil {
		return
	}
	res.Trace = tracer.Summary()
	if publish {
		traceSinkMu.Lock()
		traceSink = append(traceSink, res.Trace)
		traceSinkMu.Unlock()
	}
}
