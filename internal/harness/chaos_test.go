package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tiga/internal/chaos"
	"tiga/internal/report"
)

// TestApplyPlanPartitionLifecycle pins the partition semantics end to end:
// the wan-partition plan cuts server regions 0 and 1 at 5 s (messages across
// the cut are dropped) and heals them at 9 s (traffic flows again).
func TestApplyPlanPartitionLifecycle(t *testing.T) {
	spec := ClusterSpec{Protocol: "Tiga", Shards: 2, F: 1, CoordsPerRegion: 1, Seed: 7}
	d := Build(spec)
	ApplyPlan(d, spec, "wan-partition")
	if d.Net.Partitioned(0, 1) {
		t.Fatal("partition installed before its scheduled time")
	}
	d.Sim.Run(6 * time.Second)
	if !d.Net.Partitioned(0, 1) || !d.Net.Partitioned(1, 0) {
		t.Fatal("wan-partition did not cut regions 0<->1 (both directions)")
	}
	if d.Net.Partitioned(0, 2) || d.Net.Partitioned(2, 1) {
		t.Fatal("partition leaked onto region 2, which is on neither side")
	}
	dropped := d.Net.Dropped
	d.Net.Send(d.Net.Node(0).ID(), d.Net.Node(0).ID(), nil) // same region: flows
	d.Sim.Run(7 * time.Second)
	if d.Net.Dropped != dropped {
		t.Fatal("intra-region traffic dropped during the partition")
	}
	d.Sim.Run(10 * time.Second)
	if d.Net.Partitioned(0, 1) {
		t.Fatal("heal event did not remove the partition")
	}
}

// TestApplyPlanClockEvents: the clock-step plan steps the first deployment
// clock +60ms at 5 s and back at 9 s, addressed through the deployment's
// clock factory.
func TestApplyPlanClockEvents(t *testing.T) {
	spec := ClusterSpec{Protocol: "Tiga", Shards: 2, F: 1, CoordsPerRegion: 1, Seed: 7}
	d := Build(spec)
	if len(d.Clocks.Adjustables()) == 0 {
		t.Fatal("Tiga deployment created no adjustable clocks")
	}
	ApplyPlan(d, spec, "clock-step")
	d.Sim.Run(6 * time.Second)
	if off := d.Clocks.Adjustables()[0].Offset(); off != 60*time.Millisecond {
		t.Fatalf("after the step event: offset %v, want 60ms", off)
	}
	d.Sim.Run(10 * time.Second)
	if off := d.Clocks.Adjustables()[0].Offset(); off != 0 {
		t.Fatalf("after the step-back event: offset %v, want 0", off)
	}
}

// TestApplyPlanUnknownPanics: programmatic callers get the same fail-fast
// behavior the CLI turns into exit 2.
func TestApplyPlanUnknownPanics(t *testing.T) {
	spec := ClusterSpec{Protocol: "Tiga", Shards: 2, F: 1, CoordsPerRegion: 1, Seed: 7}
	d := Build(spec)
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyPlan accepted an unregistered plan")
		}
	}()
	ApplyPlan(d, spec, "nosuch-plan")
}

// TestChaosClockFaultsNoOpWithoutClocks: clock events against a protocol
// that never reads a clock must be inert, not crash the applier.
func TestChaosClockFaultsNoOpWithoutClocks(t *testing.T) {
	spec := ClusterSpec{Protocol: "2PL+Paxos", Shards: 2, F: 1, CoordsPerRegion: 1, Seed: 7}
	d := Build(spec)
	if n := len(d.Clocks.Adjustables()); n != 0 {
		t.Fatalf("2PL+Paxos created %d clocks; expected none", n)
	}
	ApplyPlan(d, spec, "ntp-insanity")
	d.Sim.Run(12 * time.Second) // all events fire against zero clocks
}

// TestChaosMatrixDeterministicAcrossWorkers: a fixed-seed chaos matrix
// renders byte-identically no matter how the parallel driver schedules its
// cells — the same guarantee every other sweep carries, extended to runs
// with mid-flight faults.
func TestChaosMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full (quick-mode) fault-window experiments; skipped under -short")
	}
	render := func(workers int) []byte {
		o := Options{Quick: true, Keys: 800, Seed: 42, Workers: workers,
			Protocols: []string{"Tiga"}, Plans: []string{"leader-crash", "clock-step"},
			// Halve the driven rate to keep the double run affordable; the
			// off-default operating point is itself part of the rendered
			// bytes being compared.
			Ops: map[string]OpPoint{"Tiga": {SaturationRate: 150, Outstanding: 300}}}
		rep, _ := ChaosMatrix(o)
		var buf bytes.Buffer
		report.Render(&buf, rep)
		return buf.Bytes()
	}
	serial, parallel := render(1), render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("chaos matrix differs across -workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestChaosMatrixCheckerPassesEveryPlan is the acceptance pin for the
// paper's claim under chaos: across every registered plan — crashes,
// partitions, link faults, clock steps and freezes — Tiga's committed
// history stays strictly serializable with unique timestamps. Clock
// misbehavior may only hurt performance, never correctness.
func TestChaosMatrixCheckerPassesEveryPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one fault-window experiment per registered plan; skipped under -short")
	}
	o := Options{Quick: true, Keys: 800, Seed: 42, Protocols: []string{"Tiga"},
		// A gentler operating point keeps 7 fault-window runs affordable;
		// the checker's verdict does not depend on the driving rate.
		Ops: map[string]OpPoint{"Tiga": {SaturationRate: 150, Outstanding: 300}}}
	rep, rows := ChaosMatrix(o)
	var buf bytes.Buffer
	report.Render(&buf, rep)
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Fatalf("serializability check failed under a chaos plan:\n%s", out)
	}
	if !strings.Contains(out, "Tiga: ok (") {
		t.Fatalf("checker did not run for Tiga:\n%s", out)
	}
	// +1: whenever wan-partition is selected, the matrix replays it on
	// planet5's asymmetric WAN as an extra chaos × topology section.
	if want := 3 * (len(chaos.Names()) + 1); len(rows) != want {
		t.Fatalf("matrix produced %d rows, want %d (3 phases × (%d plans + planet5 rider))",
			len(rows), want, len(chaos.Names()))
	}
	// Every plan's fault window must actually have driven load on each side
	// of it (pre phase commits for a working protocol).
	for _, r := range rows {
		if r.Phase == "pre" && r.Thpt == 0 {
			t.Errorf("plan %s: no pre-fault throughput — the fault window ate the whole run", r.Plan)
		}
	}
}
