// Package snapread holds the protocol-independent pieces of the local
// snapshot-read path: the wire messages a coordinator exchanges with the
// nearest replica of each shard, the server-side queue of reads waiting for
// the replica's safe-time watermark to pass their snapshot (the SAFETIME
// delay), and the nearest-replica picker.
//
// The rule every implementing protocol must uphold: a replica answers a
// read at snapshot timestamp At only once its monotonic safe-time watermark
// W satisfies At <= W, where W promises that every transaction that will
// ever commit at this replica with timestamp <= W is already applied. A
// lagging replica therefore delays a read (it queues in Waiters) but never
// lies; the checker validates the returned version timestamps against the
// global commit history.
package snapread

import (
	"time"

	"tiga/internal/simnet"
	"tiga/internal/txn"
)

// Req asks one replica of a shard for the values of Keys at snapshot
// timestamp At. (Coord, Seq) identify the read-only transaction; Seq is the
// coordinator's own sequence, so replies can be matched to the pending read.
type Req struct {
	Shard int
	Coord int32
	Seq   uint64
	At    time.Duration
	Keys  []string
	// KeyIDs is the interned form of Keys (positionally parallel), set when
	// the transaction's piece carries ids for its whole read set. Servers
	// then serve the read through the store's ID fast path (GetAtID) without
	// hashing a single key string.
	KeyIDs []txn.KeyID
}

// Rep carries one shard's answer: values and observed commit timestamps
// aligned with Req.Keys, plus how long the read waited behind the replica's
// watermark (zero when served immediately).
type Rep struct {
	Shard  int
	Seq    uint64
	Vals   [][]byte
	Seen   []txn.Timestamp
	Waited time.Duration
	// Span stamps (internal/trace), in sim time: ArriveS = request arrival
	// at the replica, ServedS = the moment the read was actually served
	// (after any SAFETIME wait). The coordinator turns them into flight /
	// safetime marks on the transaction's trace. Zero on untraced runs'
	// decisive paths is harmless: the breakdown walk clamps stale stamps.
	ArriveS, ServedS time.Duration
}

type waiter struct {
	at    time.Duration
	since time.Duration
	serve func(waited time.Duration)
}

// Waiters queues snapshot reads whose timestamp is ahead of the replica's
// watermark. Flush releases, in (snapshot, arrival) order, every read the
// advancing watermark now covers — a deterministic order, so the replies it
// sends keep the simulation reproducible.
type Waiters struct {
	ws []waiter
}

// Add enqueues a read blocked until the watermark reaches at; now is the
// enqueue time. When the watermark gets there, serve is called with the
// SAFETIME delay the read spent queued.
func (w *Waiters) Add(at, now time.Duration, serve func(waited time.Duration)) {
	// Insert sorted by snapshot with arrival order breaking ties: the
	// queue is short and mostly append-ordered, snapshots grow with time.
	i := len(w.ws)
	for i > 0 && w.ws[i-1].at > at {
		i--
	}
	w.ws = append(w.ws, waiter{})
	copy(w.ws[i+1:], w.ws[i:])
	w.ws[i] = waiter{at: at, since: now, serve: serve}
}

// Flush serves every queued read with snapshot <= watermark, in queue
// order, charging each the simulated time it waited.
func (w *Waiters) Flush(watermark, now time.Duration) {
	n := 0
	for n < len(w.ws) && w.ws[n].at <= watermark {
		n++
	}
	if n == 0 {
		return
	}
	ready := append([]waiter(nil), w.ws[:n]...)
	w.ws = w.ws[:copy(w.ws, w.ws[n:])]
	for i := range ready {
		ready[i].serve(now - ready[i].since)
	}
}

// Len reports how many reads are currently blocked.
func (w *Waiters) Len() int { return len(w.ws) }

// Nearest picks the replica with the smallest round-trip estimate from a
// coordinator's region, preferring the lowest index on ties — replica
// placement maps indices to regions, so on the paper topologies this is the
// same-region replica whenever one exists.
func Nearest(net *simnet.Network, from simnet.Region, replicas int, regionOf func(replica int) simnet.Region) int {
	best, bestRTT := 0, time.Duration(-1)
	for r := 0; r < replicas; r++ {
		reg := regionOf(r)
		rtt := net.BaseOWD(from, reg) + net.BaseOWD(reg, from)
		if bestRTT < 0 || rtt < bestRTT {
			best, bestRTT = r, rtt
		}
	}
	return best
}
