package txn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampTotalOrder(t *testing.T) {
	a := Timestamp{Time: 1, Coord: 1, Seq: 1}
	b := Timestamp{Time: 1, Coord: 1, Seq: 2}
	c := Timestamp{Time: 1, Coord: 2, Seq: 1}
	d := Timestamp{Time: 2, Coord: 0, Seq: 0}
	for _, pair := range [][2]Timestamp{{a, b}, {a, c}, {b, c}, {c, d}} {
		if !pair[0].Less(pair[1]) || pair[1].Less(pair[0]) {
			t.Fatalf("order violated for %v < %v", pair[0], pair[1])
		}
	}
	if a.Less(a) {
		t.Fatal("irreflexivity")
	}
	if !a.Max(d).Equal(d) || !d.Max(a).Equal(d) {
		t.Fatal("Max")
	}
}

// Property: Less is a strict total order (trichotomy + transitivity on
// random triples).
func TestTimestampOrderProperty(t *testing.T) {
	gen := func(v uint32) Timestamp {
		return Timestamp{Time: time.Duration(v % 7), Coord: int32(v>>3) % 5, Seq: uint64(v>>6) % 5}
	}
	check := func(x, y, z uint32) bool {
		a, b, c := gen(x), gen(y), gen(z)
		// Trichotomy.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		if n != 1 {
			return false
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConflicts(t *testing.T) {
	w := &Piece{WriteSet: []string{"a"}}
	r := &Piece{ReadSet: []string{"a"}}
	r2 := &Piece{ReadSet: []string{"b"}}
	w2 := &Piece{WriteSet: []string{"b"}}
	if !Conflicts(w, r) || !Conflicts(r, w) {
		t.Fatal("read-write conflict missed")
	}
	if !Conflicts(w, w) {
		t.Fatal("write-write conflict missed")
	}
	if Conflicts(r, r) {
		t.Fatal("read-read is not a conflict")
	}
	if Conflicts(w, r2) || Conflicts(w, w2) {
		t.Fatal("disjoint keys conflict")
	}
	if Conflicts(nil, w) {
		t.Fatal("nil piece conflicts")
	}
}

func TestTxnConflictsWith(t *testing.T) {
	a := &Txn{Pieces: map[int]*Piece{0: {WriteSet: []string{"x"}}, 1: {WriteSet: []string{"y"}}}}
	b := &Txn{Pieces: map[int]*Piece{1: {ReadSet: []string{"y"}}}}
	c := &Txn{Pieces: map[int]*Piece{2: {WriteSet: []string{"x"}}}} // same key, other shard
	if !a.ConflictsWith(b) {
		t.Fatal("shard-1 conflict missed")
	}
	if a.ConflictsWith(c) {
		t.Fatal("conflicts must be per shard")
	}
}

func TestShardsSorted(t *testing.T) {
	tx := &Txn{Pieces: map[int]*Piece{5: {}, 1: {}, 3: {}}}
	got := tx.Shards()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shards() = %v", got)
		}
	}
}

func TestEncodeDecodeInt(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if DecodeInt(EncodeInt(v)) != v {
			t.Fatalf("roundtrip %d", v)
		}
	}
	if DecodeInt(nil) != 0 || DecodeInt([]byte{1, 2}) != 0 {
		t.Fatal("short decode should be 0")
	}
}

type fakeKV map[string][]byte

func (m fakeKV) Get(k string) []byte    { return m[k] }
func (m fakeKV) Put(k string, v []byte) { m[k] = v }

func TestIncrementPiece(t *testing.T) {
	kv := fakeKV{}
	p := IncrementPiece("a", "b")
	if len(p.ReadSet) != 2 || len(p.WriteSet) != 2 {
		t.Fatal("sets")
	}
	ret := p.Exec(kv)
	if DecodeInt(kv["a"]) != 1 || DecodeInt(kv["b"]) != 1 || DecodeInt(ret) != 1 {
		t.Fatal("increment semantics")
	}
	p.Exec(kv)
	if DecodeInt(kv["a"]) != 2 {
		t.Fatal("second increment")
	}
}

func TestReadWritePieces(t *testing.T) {
	kv := fakeKV{"x": EncodeInt(9)}
	if DecodeInt(ReadPiece("x").Exec(kv)) != 9 {
		t.Fatal("ReadPiece")
	}
	WritePiece("y", EncodeInt(3)).Exec(kv)
	if DecodeInt(kv["y"]) != 3 {
		t.Fatal("WritePiece")
	}
}
