// Package txn defines the transaction model shared by Tiga and all baseline
// protocols: one-shot stored procedures split into per-shard pieces with
// declared read/write sets, plus the decomposition machinery (paper
// Appendix F) that turns interactive transactions into chains of one-shot
// transactions.
package txn

import (
	"encoding/binary"
	"sort"
	"time"

	"tiga/internal/trace"
)

// ID uniquely identifies a transaction: the coordinator attaches a sequence
// number at submission (paper §3.7 footnote).
type ID struct {
	Coord int32
	Seq   uint64
}

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id.Coord == 0 && id.Seq == 0 }

// Timestamp is Tiga's transaction timestamp. Time is the future timestamp in
// simulated nanoseconds; (Coord, Seq) break ties deterministically so the
// timestamp order is total.
type Timestamp struct {
	Time  time.Duration
	Coord int32
	Seq   uint64
}

// Less reports whether a orders strictly before b.
func (a Timestamp) Less(b Timestamp) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Coord != b.Coord {
		return a.Coord < b.Coord
	}
	return a.Seq < b.Seq
}

// Equal reports whether the two timestamps are identical.
func (a Timestamp) Equal(b Timestamp) bool { return a == b }

// IsZero reports whether the timestamp is unset.
func (a Timestamp) IsZero() bool { return a == Timestamp{} }

// Max returns the larger of a and b.
func (a Timestamp) Max(b Timestamp) Timestamp {
	if a.Less(b) {
		return b
	}
	return a
}

// KV is the store view a piece executes against.
type KV interface {
	Get(key string) []byte
	Put(key string, val []byte)
}

// KeyID is a dense per-shard interned key index: key i of a shard's seeded
// keyspace (store.SeedBulk order, which the workload generators make equal to
// their own key index). A piece executes on exactly one shard, so its ids
// need no shard qualifier. IDs exist alongside — never instead of — the
// string names: wire formats, checkers, and TPC-C stay on strings.
type KeyID = uint32

// IDKV is the interned fast path a store view may additionally implement:
// slice-indexed reads and writes that never hash a key string. Piece
// executors type-assert for it and fall back to the string KV when absent
// (e.g. lockocc's buffered-write view).
type IDKV interface {
	GetID(id KeyID) []byte
	PutID(id KeyID, val []byte)
}

// PieceFunc executes one shard's piece of a transaction against the shard's
// store and returns an opaque per-shard result.
type PieceFunc func(kv KV) []byte

// Piece is the fragment of a one-shot transaction executed by a single shard.
// ReadSet and WriteSet are declared up front (one-shot stored procedure), so
// servers can do conflict detection without executing.
type Piece struct {
	ReadSet  []string
	WriteSet []string
	// ReadIDs/WriteIDs are the interned forms of ReadSet/WriteSet, set by
	// workloads whose keyspace is seeded densely (micro/uniform/ycsbt/
	// hotwrite); nil for string-only workloads. When set, they are
	// positionally parallel to the string sets.
	ReadIDs  []KeyID
	WriteIDs []KeyID
	Exec     PieceFunc
}

// Interned reports whether the piece carries ids for its whole declared
// read/write set, making the ID fast paths usable.
func (p *Piece) Interned() bool {
	return len(p.ReadIDs) == len(p.ReadSet) && len(p.WriteIDs) == len(p.WriteSet) &&
		(len(p.ReadIDs) > 0 || len(p.WriteIDs) > 0)
}

// Conflicts reports whether two pieces have a read-write or write-write
// conflict on any key.
func Conflicts(a, b *Piece) bool {
	if a == nil || b == nil {
		return false
	}
	for _, k := range a.WriteSet {
		if containsKey(b.WriteSet, k) || containsKey(b.ReadSet, k) {
			return true
		}
	}
	for _, k := range a.ReadSet {
		if containsKey(b.WriteSet, k) {
			return true
		}
	}
	return false
}

func containsKey(set []string, k string) bool {
	for _, s := range set {
		if s == k {
			return true
		}
	}
	return false
}

// Txn is a one-shot transaction spanning one or more shards.
type Txn struct {
	ID       ID
	Pieces   map[int]*Piece // shard id -> piece
	ReadOnly bool
	// Label tags the transaction type for metrics (e.g. "neworder").
	Label string
	// Trace is the transaction's span recorder (internal/trace), attached by
	// the load driver when the run is traced and nil otherwise — protocol
	// hooks call methods on it unconditionally, and the nil receiver makes
	// every hook a free no-op on untraced runs.
	Trace *trace.T
	// shards memoizes Shards(): the involved-shard list is asked for on
	// every coordinator evaluation tick, and Pieces never changes after
	// construction.
	shards []int
}

// Shards returns the involved shard ids in ascending order. The slice is
// memoized and shared — callers must not mutate it.
func (t *Txn) Shards() []int {
	if t.shards == nil {
		out := make([]int, 0, len(t.Pieces))
		for s := range t.Pieces {
			out = append(out, s)
		}
		sort.Ints(out)
		t.shards = out
	}
	return t.shards
}

// ConflictsWith reports whether t and o conflict on any common shard.
func (t *Txn) ConflictsWith(o *Txn) bool {
	for s, p := range t.Pieces {
		if op, ok := o.Pieces[s]; ok && Conflicts(p, op) {
			return true
		}
	}
	return false
}

// Result carries the per-shard execution results back to the client.
type Result struct {
	OK      bool
	Aborted bool
	// PerShard maps shard id to the piece's return value.
	PerShard map[int][]byte
	// FastPath reports whether the commit used the protocol's fast path.
	FastPath bool
	// Retries counts protocol-level retries before the final outcome.
	Retries int
	// TS is the agreed commit timestamp (Tiga only): the serialization
	// point used by the strict-serializability checker.
	TS Timestamp
	// SnapshotAt is the snapshot timestamp a local read-only transaction
	// was served at (zero for the coordinator path).
	SnapshotAt time.Duration
	// Waited is the SAFETIME delay a local read spent blocked behind a
	// lagging replica watermark (max across the shards it touched).
	Waited time.Duration
	// Reads records, per key, which committed version a local read-only
	// transaction observed — the evidence the snapshot-read checker
	// validates against the commit history.
	Reads []ReadObs
	// Queued is the time the transaction spent waiting in a coordinator
	// admission queue before the protocol started working on it (zero when
	// admission control is off or the gate had a free slot). Open-loop runs
	// report it separately from service latency.
	Queued time.Duration
	// Shed reports that a coordinator admission gate refused the
	// transaction without running the protocol (Aborted is also set).
	Shed bool
}

// ReadObs is one observed read of a snapshot transaction: the key and the
// commit timestamp of the version it saw (zero for seeded initial values).
type ReadObs struct {
	Key string
	TS  Timestamp
}

// Interactive is a multi-shot (dependent) transaction decomposed into a chain
// of one-shot transactions per Appendix F. Next produces stage i given the
// results of stage i-1; done=true ends the chain; abort=true means the
// validation stage failed and the whole chain must restart from stage 0.
type Interactive struct {
	Label string
	Next  func(stage int, prev *Result) (t *Txn, done bool, abort bool)
}

// EncodeInt encodes an int64 as an 8-byte little-endian value — the value
// format used by MicroBench counters and TPC-C numeric columns.
func EncodeInt(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

// DecodeInt decodes a value written by EncodeInt; nil decodes to 0.
func DecodeInt(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// IncrementPiece returns a piece that atomically increments the given keys —
// the MicroBench read-modify-write operation.
func IncrementPiece(keys ...string) *Piece {
	ks := append([]string(nil), keys...)
	return &Piece{
		ReadSet:  ks,
		WriteSet: ks,
		Exec: func(kv KV) []byte {
			var last int64
			for _, k := range ks {
				last = DecodeInt(kv.Get(k)) + 1
				kv.Put(k, EncodeInt(last))
			}
			return EncodeInt(last)
		},
	}
}

// IncrementPieceID is IncrementPiece for one interned key: the executor uses
// the store's slice-indexed fast path when offered one and falls back to the
// string KV otherwise, writing identical values either way.
func IncrementPieceID(key string, id KeyID) *Piece {
	ks := []string{key}
	ids := []KeyID{id}
	return &Piece{
		ReadSet: ks, WriteSet: ks, ReadIDs: ids, WriteIDs: ids,
		Exec: func(kv KV) []byte {
			if ikv, ok := kv.(IDKV); ok {
				out := EncodeInt(DecodeInt(ikv.GetID(id)) + 1)
				ikv.PutID(id, out)
				return out
			}
			out := EncodeInt(DecodeInt(kv.Get(key)) + 1)
			kv.Put(key, out)
			return out
		},
	}
}

// ReadPiece returns a read-only piece fetching one key.
func ReadPiece(key string) *Piece {
	return &Piece{
		ReadSet: []string{key},
		Exec:    func(kv KV) []byte { return kv.Get(key) },
	}
}

// ReadPieceID is ReadPiece for one interned key.
func ReadPieceID(key string, id KeyID) *Piece {
	return &Piece{
		ReadSet: []string{key},
		ReadIDs: []KeyID{id},
		Exec: func(kv KV) []byte {
			if ikv, ok := kv.(IDKV); ok {
				return ikv.GetID(id)
			}
			return kv.Get(key)
		},
	}
}

// WritePiece returns a blind-write piece setting one key.
func WritePiece(key string, val []byte) *Piece {
	return &Piece{
		WriteSet: []string{key},
		Exec: func(kv KV) []byte {
			kv.Put(key, val)
			return nil
		},
	}
}
