package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestArrivalRegistryComplete pins the canonical arrival-process set.
func TestArrivalRegistryComplete(t *testing.T) {
	want := []string{"diurnal", "flashcrowd", "poisson", "surge"}
	got := ArrivalNames()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
		if d, ok := LookupArrival(want[i]); !ok || d.Doc == "" {
			t.Fatalf("%s not lookupable or undocumented", want[i])
		}
	}
}

// TestBuildArrivalValidation pins the failure modes: unknown names list the
// registry, bad parameters and non-positive rates error.
func TestBuildArrivalValidation(t *testing.T) {
	if _, err := BuildArrival("nosuch", 100, 0, 1, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "poisson") {
		t.Fatalf("unknown-process error %v does not list registered names", err)
	}
	if _, err := BuildArrival("diurnal", 100, 0, 1, 0, map[string]any{"nosuch": 1}); err == nil {
		t.Fatal("bad parameter accepted")
	}
	if _, err := BuildArrival("poisson", 0, 0, 1, 0, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// drawGaps collects n inter-arrival gaps walking virtual time forward, the
// way the open-loop driver uses a process.
func drawGaps(t *testing.T, name string, rate float64, region int, seed int64, n int) []time.Duration {
	t.Helper()
	arr, err := BuildArrival(name, rate, 0, 4, region, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	gaps := make([]time.Duration, n)
	now := time.Duration(0)
	for i := range gaps {
		gaps[i] = arr.Next(now, rng)
		now += gaps[i]
	}
	return gaps
}

// TestArrivalsDeterministic: every process is a pure function of (seed, now),
// so two walks with the same seed are identical — the property open-loop
// byte-identity across -workers rests on.
func TestArrivalsDeterministic(t *testing.T) {
	for _, name := range ArrivalNames() {
		a := drawGaps(t, name, 500, 0, 42, 2000)
		b := drawGaps(t, name, 500, 0, 42, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs across identical seeds: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// meanGapIn averages the gaps drawn while virtual time is inside [from, to).
func meanGapIn(gaps []time.Duration, from, to time.Duration) time.Duration {
	var sum time.Duration
	var n int
	now := time.Duration(0)
	for _, g := range gaps {
		if now >= from && now < to {
			sum += g
			n++
		}
		now += g
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TestPoissonMeanGap: the fixed-rate process averages 1/rate.
func TestPoissonMeanGap(t *testing.T) {
	gaps := drawGaps(t, "poisson", 1000, 0, 7, 20000)
	mean := meanGapIn(gaps, 0, time.Hour)
	want := time.Millisecond
	if mean < want*8/10 || mean > want*12/10 {
		t.Fatalf("poisson mean gap %v, want ≈%v", mean, want)
	}
}

// TestFlashcrowdSpikesDuringWindow: gaps shrink ~factor× inside the spike
// window and recover after.
func TestFlashcrowdSpikesDuringWindow(t *testing.T) {
	gaps := drawGaps(t, "flashcrowd", 1000, 0, 7, 30000)
	base := meanGapIn(gaps, 0, 2*time.Second)
	spike := meanGapIn(gaps, 2*time.Second, 3*time.Second) // default at=2s width=1s factor=4
	after := meanGapIn(gaps, 3*time.Second, 5*time.Second)
	if spike == 0 || base == 0 || after == 0 {
		t.Fatalf("empty phase: base=%v spike=%v after=%v", base, spike, after)
	}
	if ratio := float64(base) / float64(spike); ratio < 3 || ratio > 5 {
		t.Fatalf("spike speedup %.2f×, want ≈4×", ratio)
	}
	if ratio := float64(after) / float64(base); ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("rate did not recover after the spike: base=%v after=%v", base, after)
	}
}

// TestSurgeIsRegional: only the configured region's coordinators surge.
func TestSurgeIsRegional(t *testing.T) {
	surging := drawGaps(t, "surge", 1000, 0, 7, 30000) // default region 0, at=2s width=2s factor=3
	calm := drawGaps(t, "surge", 1000, 2, 7, 30000)
	sIn := meanGapIn(surging, 2*time.Second, 4*time.Second)
	cIn := meanGapIn(calm, 2*time.Second, 4*time.Second)
	sBase := meanGapIn(surging, 0, 2*time.Second)
	if ratio := float64(sBase) / float64(sIn); ratio < 2.2 || ratio > 3.8 {
		t.Fatalf("surging region speedup %.2f×, want ≈3×", ratio)
	}
	cBase := meanGapIn(calm, 0, 2*time.Second)
	if ratio := float64(cBase) / float64(cIn); ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("non-surging region rate moved: base=%v during=%v", cBase, cIn)
	}
}

// TestDiurnalSwings: the sinusoid's peak quarter runs faster than the trough
// quarter by roughly (1+amp)/(1-amp).
func TestDiurnalSwings(t *testing.T) {
	// Default period 8s, amplitude 0.6: peak around t=2s, trough around t=6s.
	gaps := drawGaps(t, "diurnal", 1000, 0, 7, 60000)
	peak := meanGapIn(gaps, 1500*time.Millisecond, 2500*time.Millisecond)
	trough := meanGapIn(gaps, 5500*time.Millisecond, 6500*time.Millisecond)
	if peak == 0 || trough == 0 {
		t.Fatalf("empty phase: peak=%v trough=%v", peak, trough)
	}
	want := (1 + 0.6) / (1 - 0.6) // = 4
	if ratio := float64(trough) / float64(peak); ratio < want*0.7 || ratio > want*1.3 {
		t.Fatalf("diurnal swing %.2f×, want ≈%.1f×", ratio, want)
	}
}
