package workload

import (
	"math/rand"

	"tiga/internal/protocol"
	"tiga/internal/store"
	"tiga/internal/txn"
)

// YCSBT is a YCSB-T-style read-heavy single-shot mix: each transaction
// touches TxnKeys keys on distinct shards, each key read with probability
// ReadRatio and incremented otherwise, with Zipfian-skewed key selection per
// shard. A transaction whose keys all come up reads is marked read-only,
// letting protocols with a read-only fast path exploit it.
type YCSBT struct {
	Shards    int
	Keys      int
	Skew      float64
	ReadRatio float64
	TxnKeys   int
	zipf      *Zipfian
	names     keycache
}

// NewYCSBT builds the generator.
func NewYCSBT(shards, keys int, skew, readRatio float64, txnKeys int) *YCSBT {
	if txnKeys < 1 {
		txnKeys = 1
	}
	if txnKeys > shards {
		txnKeys = shards
	}
	return &YCSBT{Shards: shards, Keys: keys, Skew: skew, ReadRatio: readRatio,
		TxnKeys: txnKeys, zipf: NewZipfian(keys, skew)}
}

// Seed pre-populates a shard (values start at zero).
func (y *YCSBT) Seed(shard int, st *store.Store) {
	st.SeedBulk(y.names.shard(shard, y.Keys), zeroValue)
}

// Next generates one transaction over TxnKeys consecutive shards.
func (y *YCSBT) Next(rng *rand.Rand) Job {
	t := &txn.Txn{Pieces: make(map[int]*txn.Piece, y.TxnKeys), Label: "ycsbt"}
	start := rng.Intn(y.Shards)
	readOnly := true
	for i := 0; i < y.TxnKeys; i++ {
		sh := (start + i) % y.Shards
		idx := y.zipf.Next(rng)
		k := y.names.key(sh, y.Keys, idx)
		if rng.Float64() < y.ReadRatio {
			t.Pieces[sh] = txn.ReadPieceID(k, KeyID(idx))
		} else {
			t.Pieces[sh] = txn.IncrementPieceID(k, KeyID(idx))
			readOnly = false
		}
	}
	t.ReadOnly = readOnly
	return Job{T: t, Label: "ycsbt"}
}

// HotWrite is a write-heavy hot-key stress mix: every transaction increments
// TxnKeys keys on distinct shards, drawn Zipfian-skewed from a small hot set
// of HotKeys keys per shard rather than the whole keyspace. It concentrates
// write-write conflicts far beyond MicroBench at the same skew — the regime
// where lock-based and optimistic baselines collapse and the deterministic
// designs keep committing.
type HotWrite struct {
	Shards  int
	Keys    int
	HotKeys int
	Skew    float64
	TxnKeys int
	zipf    *Zipfian
	names   keycache
}

// NewHotWrite builds the generator; the hot set is clamped to the keyspace.
func NewHotWrite(shards, keys, hotKeys int, skew float64, txnKeys int) *HotWrite {
	if hotKeys < 1 {
		hotKeys = 1
	}
	if hotKeys > keys {
		hotKeys = keys
	}
	if txnKeys < 1 {
		txnKeys = 1
	}
	if txnKeys > shards {
		txnKeys = shards
	}
	return &HotWrite{Shards: shards, Keys: keys, HotKeys: hotKeys, Skew: skew,
		TxnKeys: txnKeys, zipf: NewZipfian(hotKeys, skew)}
}

// Seed pre-populates a shard (values start at zero).
func (h *HotWrite) Seed(shard int, st *store.Store) {
	st.SeedBulk(h.names.shard(shard, h.Keys), zeroValue)
}

// Next generates one all-write transaction over the hot set.
func (h *HotWrite) Next(rng *rand.Rand) Job {
	t := &txn.Txn{Pieces: make(map[int]*txn.Piece, h.TxnKeys), Label: "hotwrite"}
	start := rng.Intn(h.Shards)
	for i := 0; i < h.TxnKeys; i++ {
		sh := (start + i) % h.Shards
		idx := h.zipf.Next(rng)
		t.Pieces[sh] = txn.IncrementPieceID(h.names.key(sh, h.Keys, idx), KeyID(idx))
	}
	return Job{T: t, Label: "hotwrite"}
}

func init() {
	Register(Def{
		Name: "ycsbt",
		Doc:  "YCSB-T-style read-heavy single-shot mix: Zipfian keys across shards, read-only fast-path eligible",
		Params: protocol.Schema{
			{Name: "skew", Type: protocol.KnobFloat, Default: 0.7,
				Doc: "Zipfian skew factor θ in [0, 1)"},
			{Name: "read-ratio", Type: protocol.KnobFloat, Default: 0.95,
				Doc: "per-key probability of a read instead of an increment"},
			{Name: "txn-keys", Type: protocol.KnobInt, Default: 3,
				Doc: "keys (and distinct shards) touched per transaction; clamped to the shard count"},
		},
		New: func(shards, keys int, p protocol.Values) Generator {
			return NewYCSBT(shards, keys, p.Float("skew"), p.Float("read-ratio"), p.Int("txn-keys"))
		},
	})
	Register(Def{
		Name: "hotwrite",
		Doc:  "write-heavy hot-key stress: all-write transactions Zipfian-drawn from a small per-shard hot set",
		Params: protocol.Schema{
			{Name: "skew", Type: protocol.KnobFloat, Default: 0.99,
				Doc: "Zipfian skew factor θ over the hot set"},
			{Name: "hot-keys", Type: protocol.KnobInt, Default: 64,
				Doc: "hot-set size per shard; clamped to the keyspace"},
			{Name: "txn-keys", Type: protocol.KnobInt, Default: 3,
				Doc: "keys (and distinct shards) incremented per transaction; clamped to the shard count"},
		},
		New: func(shards, keys int, p protocol.Values) Generator {
			return NewHotWrite(shards, keys, p.Int("hot-keys"), p.Float("skew"), p.Int("txn-keys"))
		},
	})
}
