package workload_test

// The registry tests live in an external test package so they can see the
// full registration set, including tpcc's init-time self-registration (which
// the workload package itself cannot import without a cycle).

import (
	"math/rand"
	"strings"
	"testing"

	"tiga/internal/store"
	"tiga/internal/tpcc" // importing tpcc registers the "tpcc" workload
	"tiga/internal/workload"
)

// TestWorkloadRegistryComplete pins the canonical workload set.
func TestWorkloadRegistryComplete(t *testing.T) {
	want := []string{"hotwrite", "micro", "tpcc", "uniform", "ycsbt"}
	got := workload.Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	for _, name := range want {
		def, ok := workload.Lookup(name)
		if !ok || def.Doc == "" {
			t.Fatalf("Lookup(%q) = %v, %v; want a documented definition", name, def, ok)
		}
	}
}

// TestWorkloadBuildValidation pins the failure modes: unknown workload names
// and bad parameters error with the valid alternatives named.
func TestWorkloadBuildValidation(t *testing.T) {
	if _, err := workload.Build("nosuch", 3, 100, nil); err == nil ||
		!strings.Contains(err.Error(), "micro") {
		t.Fatalf("unknown workload error %v does not list the registered names", err)
	}
	if _, err := workload.Build("ycsbt", 3, 100, map[string]any{"nosuch": 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown knob") {
		t.Fatalf("unknown parameter error = %v", err)
	}
	if _, err := workload.Build("ycsbt", 3, 100, map[string]any{"skew": "high"}); err == nil {
		t.Fatal("type-mismatched parameter accepted")
	}
}

// TestWorkloadBuildEveryGenerator builds each registered workload with
// defaults, seeds a store, and generates jobs — a new workload cannot
// register without producing executable transactions.
func TestWorkloadBuildEveryGenerator(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			gen, err := workload.Build(name, 3, 500, nil)
			if err != nil {
				t.Fatal(err)
			}
			st := store.New()
			gen.Seed(0, st)
			if st.Len() == 0 {
				t.Fatal("Seed populated nothing")
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 50; i++ {
				job := gen.Next(rng)
				if job.T == nil && job.I == nil {
					t.Fatal("generator produced an empty job")
				}
			}
		})
	}
}

// TestYCSBTShape pins the new read-heavy mix: defaults produce mostly
// read-only transactions spanning 3 shards, and the read-ratio parameter is
// honored at the extremes.
func TestYCSBTShape(t *testing.T) {
	gen, err := workload.Build("ycsbt", 3, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	readOnly := 0
	const n = 2000
	for i := 0; i < n; i++ {
		job := gen.Next(rng)
		if len(job.T.Pieces) != 3 {
			t.Fatalf("txn spans %d shards, want 3", len(job.T.Pieces))
		}
		if job.T.ReadOnly {
			readOnly++
		}
	}
	// P(all 3 keys read) = 0.95^3 ≈ 0.857.
	if frac := float64(readOnly) / n; frac < 0.80 || frac > 0.92 {
		t.Fatalf("read-only fraction %.3f outside the expected band for read-ratio 0.95", frac)
	}
	allWrites, err := workload.Build("ycsbt", 3, 1000, map[string]any{"read-ratio": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if job := allWrites.Next(rng); job.T.ReadOnly {
		t.Fatal("read-ratio 0 still produced a read-only txn")
	}
}

// TestHotWriteShape pins the stress mix: all writes, confined to the hot set.
func TestHotWriteShape(t *testing.T) {
	hot := 16
	gen, err := workload.Build("hotwrite", 3, 1000, map[string]any{"hot-keys": hot})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		job := gen.Next(rng)
		if job.T.ReadOnly {
			t.Fatal("hotwrite produced a read-only txn")
		}
		for sh, p := range job.T.Pieces {
			if len(p.WriteSet) != 1 {
				t.Fatal("each piece writes exactly one key")
			}
			for idx := 0; idx < hot; idx++ {
				if p.WriteSet[0] == workload.Key(sh, idx) {
					goto ok
				}
			}
			t.Fatalf("key %q outside the %d-key hot set", p.WriteSet[0], hot)
		ok:
		}
	}
}

// TestTPCCRegistryScaling checks the keys parameter reaches TPC-C's tables.
func TestTPCCRegistryScaling(t *testing.T) {
	gen, err := workload.Build("tpcc", 3, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gen.(*tpcc.Gen); !ok {
		t.Fatalf("tpcc workload built a %T", gen)
	}
	st := store.New()
	gen.Seed(0, st)
	if st.Len() == 0 {
		t.Fatal("tpcc seeded nothing")
	}
}
