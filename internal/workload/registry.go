package workload

import (
	"fmt"
	"sort"

	"tiga/internal/protocol"
)

// Def describes one registered workload: a name, a doc line for discovery
// tooling, a typed parameter schema, and a factory. The schema reuses the
// protocol knob machinery (protocol.Schema/Values), so workload parameters
// get the same validation, defaults, and CLI parsing as protocol knobs.
type Def struct {
	// Name is the registry key (see Names).
	Name string
	// Doc is a one-line description (cmd/tigabench -workload list).
	Doc string
	// Params declares the workload's typed parameters.
	Params protocol.Schema
	// New builds a fresh generator for a deployment of `shards` shards with
	// a per-shard keyspace of `keys` (interpreted workload-specifically;
	// TPC-C scales its Customers/Items tables from it). Every experiment
	// point must own a private generator — generators may be stateful, and
	// sharing one across points breaks the parallel driver's
	// serial-identical guarantee.
	New func(shards, keys int, p protocol.Values) Generator
}

var registry = map[string]Def{}

// Register makes a workload available under its name. It is intended to be
// called from package init functions and panics on duplicate names, missing
// factories, or malformed parameter schemas (mirroring protocol.Register).
func Register(def Def) {
	if def.Name == "" || def.New == nil {
		panic("workload: Register requires a name and a factory")
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", def.Name))
	}
	def.Params.Validate("workload " + def.Name)
	registry[def.Name] = def
}

// Names returns every registered workload name in alphabetical order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the registered definition for name (discovery: the CLI's
// -workload listing and parameter validation).
func Lookup(name string) (Def, bool) {
	d, ok := registry[name]
	return d, ok
}

// Build resolves a named workload: it validates raw parameter overrides
// against the registered schema (unknown names and type mismatches are
// errors, defaults fill in) and invokes the factory. It returns an error
// naming the valid workloads when name is unknown.
func Build(name string, shards, keys int, raw map[string]any) (Generator, error) {
	def, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (registered: %v)", name, Names())
	}
	vals, err := def.Params.Resolve(raw)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	return def.New(shards, keys, vals), nil
}
