package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tiga/internal/protocol"
)

// Arrival is an open-loop arrival process: jobs arrive on a rate curve
// independent of completions (the closed-loop path re-issues on completion
// instead). Next returns the gap until the next arrival given the current
// virtual time. Implementations must be deterministic functions of (now, rng)
// so fixed-seed runs are byte-identical regardless of worker count; rng is
// the caller's per-coordinator stream.
type Arrival interface {
	Next(now time.Duration, rng *rand.Rand) time.Duration
}

// ArrivalDef describes one registered arrival process: a name, a doc line for
// discovery tooling, a typed parameter schema (reusing the protocol knob
// machinery like workload Defs do), and a factory.
type ArrivalDef struct {
	// Name is the registry key (see ArrivalNames).
	Name string
	// Doc is a one-line description (cmd/tigabench -arrival list).
	Doc string
	// Params declares the process's typed parameters.
	Params protocol.Schema
	// New builds a process for one coordinator: rate is the base arrival
	// rate in txn/s per coordinator, coord/coords identify the coordinator
	// within the deployment, and region is its region index (regional
	// processes key off it). Every coordinator owns a private process —
	// processes may be stateful.
	New func(rate float64, coord, coords, region int, p protocol.Values) Arrival
}

var arrivalRegistry = map[string]ArrivalDef{}

// RegisterArrival makes an arrival process available under its name. It is
// intended for package init functions and panics on duplicate names, missing
// factories, or malformed parameter schemas (mirroring Register).
func RegisterArrival(def ArrivalDef) {
	if def.Name == "" || def.New == nil {
		panic("workload: RegisterArrival requires a name and a factory")
	}
	if _, dup := arrivalRegistry[def.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate arrival registration of %q", def.Name))
	}
	def.Params.Validate("arrival " + def.Name)
	arrivalRegistry[def.Name] = def
}

// ArrivalNames returns every registered arrival process in alphabetical order.
func ArrivalNames() []string {
	out := make([]string, 0, len(arrivalRegistry))
	for name := range arrivalRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LookupArrival returns the registered definition for name.
func LookupArrival(name string) (ArrivalDef, bool) {
	d, ok := arrivalRegistry[name]
	return d, ok
}

// BuildArrival resolves a named arrival process for one coordinator,
// validating raw parameter overrides against the registered schema.
func BuildArrival(name string, rate float64, coord, coords, region int, raw map[string]any) (Arrival, error) {
	def, ok := arrivalRegistry[name]
	if !ok {
		return nil, fmt.Errorf("unknown arrival process %q (registered: %v)", name, ArrivalNames())
	}
	vals, err := def.Params.Resolve(raw)
	if err != nil {
		return nil, fmt.Errorf("arrival %s: %w", name, err)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("arrival %s: rate must be positive, got %g", name, rate)
	}
	return def.New(rate, coord, coords, region, vals), nil
}

// expGap draws an exponential inter-arrival gap for a Poisson process at
// `rate` txn/s, floored at 1ns so the event loop always advances.
func expGap(rate float64, rng *rand.Rand) time.Duration {
	g := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	if g < time.Nanosecond {
		g = time.Nanosecond
	}
	return g
}

// rateCurve is a Poisson process whose instantaneous rate is a function of
// virtual time — the shared implementation behind diurnal/flashcrowd/surge.
// It thins nothing: the gap is drawn at the rate in effect now, which is the
// standard piecewise approximation and keeps every draw O(1).
type rateCurve struct {
	rate func(now time.Duration) float64
}

func (c rateCurve) Next(now time.Duration, rng *rand.Rand) time.Duration {
	r := c.rate(now)
	if r <= 0 {
		// Dormant phase: probe again in 10ms without emitting a job
		// (factories return strictly positive rates, so this is unused
		// today but keeps custom curves safe).
		return 10 * time.Millisecond
	}
	return expGap(r, rng)
}

func init() {
	RegisterArrival(ArrivalDef{
		Name: "poisson",
		Doc:  "fixed-rate Poisson arrivals: exponential inter-arrival gaps at the base rate",
		New: func(rate float64, coord, coords, region int, p protocol.Values) Arrival {
			return rateCurve{rate: func(time.Duration) float64 { return rate }}
		},
	})
	RegisterArrival(ArrivalDef{
		Name: "diurnal",
		Doc:  "sinusoidal day/night curve around the base rate (rate·(1 + amp·sin(2πt/period)))",
		Params: protocol.Schema{
			{Name: "period", Type: protocol.KnobDuration, Default: 8 * time.Second,
				Doc: "length of one simulated day"},
			{Name: "amplitude", Type: protocol.KnobFloat, Default: 0.6,
				Doc: "relative swing around the base rate, in [0,1)"},
		},
		New: func(rate float64, coord, coords, region int, p protocol.Values) Arrival {
			period := p.Duration("period")
			amp := p.Float("amplitude")
			return rateCurve{rate: func(now time.Duration) float64 {
				phase := 2 * math.Pi * float64(now) / float64(period)
				return rate * (1 + amp*math.Sin(phase))
			}}
		},
	})
	RegisterArrival(ArrivalDef{
		Name: "flashcrowd",
		Doc:  "base-rate Poisson with a transient spike of rate·factor for `width` starting at `at`",
		Params: protocol.Schema{
			{Name: "at", Type: protocol.KnobDuration, Default: 2 * time.Second,
				Doc: "virtual time the crowd arrives"},
			{Name: "width", Type: protocol.KnobDuration, Default: time.Second,
				Doc: "duration of the spike"},
			{Name: "factor", Type: protocol.KnobFloat, Default: 4.0,
				Doc: "rate multiplier during the spike"},
		},
		New: func(rate float64, coord, coords, region int, p protocol.Values) Arrival {
			at, width, factor := p.Duration("at"), p.Duration("width"), p.Float("factor")
			return rateCurve{rate: func(now time.Duration) float64 {
				if now >= at && now < at+width {
					return rate * factor
				}
				return rate
			}}
		},
	})
	RegisterArrival(ArrivalDef{
		Name: "surge",
		Doc:  "regional surge: coordinators in one region spike to rate·factor, the rest stay at base rate",
		Params: protocol.Schema{
			{Name: "region", Type: protocol.KnobInt, Default: 0,
				Doc: "region index whose coordinators surge"},
			{Name: "at", Type: protocol.KnobDuration, Default: 2 * time.Second,
				Doc: "virtual time the surge starts"},
			{Name: "width", Type: protocol.KnobDuration, Default: 2 * time.Second,
				Doc: "duration of the surge"},
			{Name: "factor", Type: protocol.KnobFloat, Default: 3.0,
				Doc: "rate multiplier in the surging region"},
		},
		New: func(rate float64, coord, coords, region int, p protocol.Values) Arrival {
			at, width, factor := p.Duration("at"), p.Duration("width"), p.Float("factor")
			if region != p.Int("region") {
				return rateCurve{rate: func(time.Duration) float64 { return rate }}
			}
			return rateCurve{rate: func(now time.Duration) float64 {
				if now >= at && now < at+width {
					return rate * factor
				}
				return rate
			}}
		},
	})
}
